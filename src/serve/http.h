// Minimal embedded HTTP/1.1 observability listener for `fsct serve`.
//
// This is deliberately not a web server: GET-only, Connection: close on
// every response, one request per connection, connections handled
// sequentially on the accept thread.  It exists so Prometheus-style
// scrapers, load-balancer health checks and `fsct stat` can read the
// daemon's /metrics, /healthz, /readyz and /statusz pages without pulling
// in any dependency — it reuses the same net.{h,cpp} listeners and
// io_util.h EINTR-safe I/O the NDJSON request plane is built on.
//
// The scrape plane is intentionally separate from the request plane: a
// scrape never enters the job queue, never touches a worker thread, and
// keeps answering while the daemon drains (that is the whole point of
// /readyz) — so handlers must only take short-lived snapshot locks.
#pragma once

#include <functional>
#include <string>
#include <thread>

namespace fsct {

/// What a handler returns.  The server adds the status line, Content-Type,
/// Content-Length and Connection: close framing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Routes a request path ("/metrics", "/statusz", ...; query string already
/// stripped) to a response.  Called on the accept thread — must be fast and
/// must not block on daemon work (scrapes stay responsive during drain).
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

struct HttpOptions {
  /// Unix-domain socket path to serve on (empty = no unix listener).
  std::string unix_path;
  /// Loopback TCP port to serve on (-1 = no TCP listener, 0 = ephemeral).
  int tcp_port = -1;
};

/// Accept-loop HTTP listener.  The constructor binds (throwing
/// std::runtime_error on failure) and starts the accept thread; the
/// destructor stops and joins it.  At least one of unix_path / tcp_port
/// must be configured.
class HttpServer {
 public:
  HttpServer(const HttpOptions& opts, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Port the TCP listener is actually bound to (resolves an ephemeral 0),
  /// or -1 when TCP is not configured.
  int port() const { return port_; }

 private:
  void loop();
  void handle_connection(int fd);

  HttpOptions opts_;
  HttpHandler handler_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int port_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread thread_;
};

/// Client side, shared by `fsct stat` and the integration tests.
struct HttpResult {
  int status = 0;
  std::string body;
};

/// Performs one GET for `target` over an already-connected stream fd
/// (connect_unix / connect_tcp), reads the full response and closes the fd.
/// Throws std::runtime_error on I/O or malformed responses.
HttpResult http_get_fd(int fd, const std::string& target);

}  // namespace fsct
