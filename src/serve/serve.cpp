#include "serve/serve.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "core/io_util.h"
#include "core/json.h"
#include "core/obs.h"
#include "fault/fault.h"
#include "netlist/bench_io.h"
#include "serve/http.h"
#include "serve/net.h"
#include "sim/soa_circuit.h"

namespace fsct {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// Integers print as integers (counter values must round-trip bytewise);
/// everything else gets enough digits to be unambiguous.
std::string fmt_num(double d) {
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

bool normalized_drop(const std::string& key) {
  // The "serve" section is daemon metadata (request_id) stamped into the
  // report at response time: per-daemon state, not a screening result, so
  // the served-vs-CLI bitwise identity contract must not see it.  "shard"
  // (process topology + resume provenance) and "pool" (scheduler-dependent
  // worker stats) are likewise execution-shape metadata, not results.
  return key == "serve" || key == "shard" || key == "pool" ||
         key.find("seconds") != std::string::npos ||
         key.find("time") != std::string::npos ||
         key.find("passes") != std::string::npos ||
         key.find("cycles") != std::string::npos ||
         key.find("rss") != std::string::npos;
}

void dump_normalized(const JVal& v, std::string& out) {
  switch (v.kind) {
    case JVal::Null: out += "null"; break;
    case JVal::Bool: out += v.b ? "true" : "false"; break;
    case JVal::Num: out += fmt_num(v.num); break;
    case JVal::Str:
      out += '"';
      out += json_escape(v.str);
      out += '"';
      break;
    case JVal::Arr:
      out += '[';
      for (std::size_t i = 0; i < v.arr.size(); ++i) {
        if (i) out += ',';
        dump_normalized(v.arr[i], out);
      }
      out += ']';
      break;
    case JVal::Obj: {
      std::vector<const std::pair<std::string, JVal>*> kept;
      for (const auto& kv : v.obj) {
        if (!normalized_drop(kv.first)) kept.push_back(&kv);
      }
      std::sort(kept.begin(), kept.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      out += '{';
      for (std::size_t i = 0; i < kept.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(kept[i]->first);
        out += "\":";
        dump_normalized(kept[i]->second, out);
      }
      out += '}';
      break;
    }
  }
}

std::string id_of(const JVal& v) {
  const JVal* id = v.find("id");
  if (!id) return "";
  if (id->kind == JVal::Str) return id->str;
  if (id->kind == JVal::Num) return fmt_num(id->num);
  return "";
}

/// `request_id` is the server-assigned id (0 = none assigned yet: requests
/// rejected before the daemon committed to running them).
std::string error_event(const std::string& id, const char* code,
                        const std::string& message,
                        std::uint64_t request_id = 0) {
  std::string out = "{\"id\": \"" + json_escape(id) + "\"";
  if (request_id) out += ", \"request_id\": " + std::to_string(request_id);
  out += ", \"event\": \"result\", \"status\": \"error\", \"code\": \"";
  out += code;
  out += "\", \"message\": \"" + json_escape(message) + "\"}";
  return out;
}

std::string progress_event(const std::string& id, std::uint64_t request_id,
                           const std::string& line) {
  return "{\"id\": \"" + json_escape(id) +
         "\", \"request_id\": " + std::to_string(request_id) +
         ", \"event\": \"progress\", \"line\": \"" + json_escape(line) +
         "\"}";
}

/// Stamps the daemon's "serve" section (request_id) into a single-line run
/// report, just before its closing brace.  normalized_report drops the
/// section, so stamping is invisible to the determinism contract — which is
/// also why the result cache stores the *un*stamped report and every replay
/// is stamped fresh with its own request_id.
std::string with_serve_section(std::string report, std::uint64_t request_id) {
  const std::size_t brace = report.rfind('}');
  if (brace == std::string::npos) return report;  // not JSON; leave it alone
  report.insert(brace,
                ", \"serve\": {\"request_id\": " + std::to_string(request_id) +
                    "}");
  return report;
}

/// Microseconds elapsed since `t0`.
std::uint64_t us_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::string circuit_hash_of(const std::string& circuit) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(circuit)));
  return buf;
}

int int_field(const JsonParser& p, const JVal& obj, const char* key,
              int fallback, int lo, int hi) {
  const double d = json_num(p, obj, key, fallback);
  const int n = static_cast<int>(d);
  if (static_cast<double>(n) != d || n < lo || n > hi) {
    throw std::runtime_error(std::string("config field \"") + key +
                             "\" must be an integer in [" +
                             std::to_string(lo) + ", " + std::to_string(hi) +
                             "]");
  }
  return n;
}

bool bool_field(const JVal& obj, const char* key, bool fallback) {
  const JVal* v = obj.find(key);
  if (!v) return fallback;
  if (v->kind != JVal::Bool) {
    throw std::runtime_error(std::string("field \"") + key +
                             "\" must be a boolean");
  }
  return v->b;
}

ServeRequest parse_request(const std::string& line) {
  JsonParser p(line, "request");
  const JVal v = p.parse();
  if (v.kind != JVal::Obj) throw std::runtime_error("request must be an object");
  ServeRequest req;
  req.id = id_of(v);
  const JVal* circuit = v.find("circuit");
  if (!circuit || circuit->kind != JVal::Str || circuit->str.empty()) {
    throw std::runtime_error("request needs a non-empty \"circuit\" string");
  }
  req.circuit = circuit->str;
  req.priority = int_field(p, v, "priority", 0, -1000, 1000);
  req.progress = bool_field(v, "progress", false);
  req.use_result_cache = bool_field(v, "use_result_cache", true);
  if (const JVal* cfg = v.find("config")) {
    if (cfg->kind != JVal::Obj) {
      throw std::runtime_error("\"config\" must be an object");
    }
    req.chains = int_field(p, *cfg, "chains", req.chains, 1, 64);
    req.partial = int_field(p, *cfg, "partial", req.partial, 0, 1000);
    req.jobs = int_field(p, *cfg, "jobs", req.jobs, 0, 1024);
    req.simd_width = int_field(p, *cfg, "simd_width", req.simd_width, 0, 4096);
    if (req.simd_width != 0 && !is_valid_simd_width(req.simd_width)) {
      throw std::runtime_error("simd_width must be 0, 64, 256 or 512");
    }
    req.dominance = bool_field(*cfg, "dominance", req.dominance);
    req.verify_easy = bool_field(*cfg, "verify_easy", req.verify_easy);
  }
  return req;
}

std::string model_key_of(const ServeRequest& req) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%016llx:%d:%d",
                static_cast<unsigned long long>(fnv1a64(req.circuit)),
                req.chains, req.partial);
  return buf;
}

/// Everything the served result may depend on beyond the model key, in a
/// fixed field order.  jobs and simd_width are included conservatively:
/// per-fault outcomes are bitwise identical across both (the determinism
/// contract), but the report's pool statistics and pass counters are not.
std::string canonical_config(const ServeRequest& req) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "chains=%d;partial=%d;jobs=%d;simd=%d;dom=%d;veasy=%d",
                req.chains, req.partial, req.jobs,
                req.simd_width ? req.simd_width : default_simd_width(),
                req.dominance ? 1 : 0, req.verify_easy ? 1 : 0);
  return buf;
}

std::shared_ptr<const CompiledModel> build_model(const ServeRequest& req) {
  auto cm = std::make_shared<CompiledModel>();
  cm->nl = read_bench_string(req.circuit, "request");
  if (cm->nl.find("scan_mode") != kNullNode) {
    throw std::runtime_error(
        "circuit already contains a scan_mode input — send the pre-scan "
        "netlist (the daemon inserts the scan chain itself)");
  }
  TpiOptions topt;
  topt.num_chains = req.chains;
  topt.scan_permille = req.partial;
  cm->design = run_tpi(cm->nl, topt);
  cm->lv = std::make_unique<Levelizer>(cm->nl);
  cm->model = std::make_unique<ScanModeModel>(*cm->lv, cm->design);
  if (const std::string err = cm->model->check(); !err.empty()) {
    throw std::runtime_error("scan-mode invariant violated: " + err);
  }
  cm->faults = collapsed_fault_list(cm->nl);

  // Precompute the dominance artifacts exactly as run_fsct_pipeline would
  // (same inputs, same calls — reuse must be invisible to results).
  cm->compiled.dom =
      std::make_shared<DominanceInfo>(collapse_dominant(cm->nl, cm->faults));
  cm->compiled.domsets = std::make_shared<std::vector<std::vector<std::size_t>>>(
      dominated_sets(cm->nl, cm->faults));
  std::vector<char> controllable(cm->nl.size(), 0);
  for (NodeId pi : cm->nl.inputs()) {
    controllable[pi] = !cm->design.is_constrained(pi);
  }
  for (const ScanChain& c : cm->design.chains) {
    for (NodeId ff : c.ffs) controllable[ff] = 1;
  }
  cm->compiled.fcost = std::make_shared<std::vector<Cost>>(
      fault_excitation_costs(*cm->lv, controllable, cm->faults));

  // Warm the SoA memo so every engine of every request served from this
  // model shares one flat compilation (soa_compile_count() counts this one).
  SoaCircuit::compile(*cm->lv);

  // LRU accounting: a deliberate over-estimate per node/fault/artifact (the
  // exact footprint is not observable; the budget only has to be honest
  // enough that --cache-mb bounds the resident set's order of magnitude).
  std::size_t bytes = 1 << 16;
  bytes += cm->nl.size() * 160;
  bytes += cm->faults.size() * 64;
  for (const auto& s : *cm->compiled.domsets) bytes += 16 + s.size() * 8;
  bytes += cm->compiled.fcost->size() * sizeof(Cost);
  cm->approx_bytes = bytes;
  return cm;
}

// Drain signal plumbing: the handler only writes one byte to the running
// server's self-pipe (async-signal-safe); run()'s poll loop does the rest.
std::atomic<int> g_serve_stop_fd{-1};

void serve_stop_handler(int) {
  const int fd = g_serve_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char c = 'x';
#ifndef _WIN32
    [[maybe_unused]] const auto r = ::write(fd, &c, 1);
#endif
  }
}

}  // namespace

std::string normalized_report(const std::string& report_json) {
  JsonParser p(report_json, "report");
  const JVal v = p.parse();
  std::string out;
  dump_normalized(v, out);
  return out;
}

ServeServer::Conn::~Conn() {
#ifndef _WIN32
  if (fd >= 0) ::close(fd);
#endif
}

ServeServer::ServeServer(ServeOptions opt) : opt_(std::move(opt)) {
  if (!opt_.log) {
    opt_.log = [](const std::string& line) {
      write_line(2, "[fsct-serve] " + line);
    };
  }
  if (opt_.workers < 1) opt_.workers = 1;
  if (opt_.queue_limit < 1) opt_.queue_limit = 1;
  if (opt_.result_cache_entries < 1) opt_.result_cache_entries = 1;
#ifndef _WIN32
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
#endif
  if (!opt_.unix_path.empty()) {
    listen_fd_ = listen_unix(opt_.unix_path);
  } else if (opt_.tcp_port >= 0) {
    listen_fd_ = listen_tcp(opt_.tcp_port);
    port_ = bound_tcp_port(listen_fd_);
  } else {
    throw std::runtime_error("serve: need a unix socket path or a TCP port");
  }

  ring_cap_ = std::min(std::max<std::size_t>(opt_.status_ring, 1),
                       kStatusRingMax);
#ifndef _WIN32
  if (!opt_.request_log_path.empty()) {
    request_log_fd_ = ::open(opt_.request_log_path.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (request_log_fd_ < 0) {
      throw std::runtime_error("serve: cannot open request log " +
                               opt_.request_log_path + ": " +
                               std::strerror(errno));
    }
  }
#endif
  if (!opt_.http_unix_path.empty() || opt_.http_port >= 0) {
    HttpOptions hopt;
    hopt.unix_path = opt_.http_unix_path;
    hopt.tcp_port = opt_.http_port;
    // The scrape plane outlives run()'s drain on purpose: /readyz keeps
    // answering 503 and /metrics stays scrapeable while in-flight work
    // finishes.  The destructor tears it down.
    http_ = std::make_unique<HttpServer>(
        hopt, [this](const std::string& path) { return handle_http(path); });
  }
}

ServeServer::~ServeServer() {
  // Stop the scrape listener before any member it snapshots goes away.
  http_.reset();
#ifndef _WIN32
  if (request_log_fd_ >= 0) ::close(request_log_fd_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  }
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
#endif
}

int ServeServer::http_port() const { return http_ ? http_->port() : -1; }

void ServeServer::request_stop() {
  const char c = 'x';
  write_all(stop_pipe_[1], &c, 1);
}

ServeStats ServeServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_m_);
  return stats_;
}

void ServeServer::log_line(const std::string& line) {
  if (opt_.verbose) opt_.log(line);
}

std::shared_ptr<const CompiledModel> ServeServer::model_for(
    const ServeRequest& req, bool& cache_hit) {
  const std::string key = model_key_of(req);
  {
    std::lock_guard<std::mutex> lk(cache_m_);
    const auto it = models_.find(key);
    if (it != models_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      cache_hit = true;
      std::lock_guard<std::mutex> slk(stats_m_);
      ++stats_.model_cache_hits;
      return it->second.model;
    }
  }
  // Compile outside the cache lock: a slow build must not block requests for
  // circuits that are already cached.  Two concurrent first requests for the
  // same circuit may both compile; the first insert wins.
  cache_hit = false;
  std::shared_ptr<const CompiledModel> cm = build_model(req);
  {
    std::lock_guard<std::mutex> slk(stats_m_);
    ++stats_.models_compiled;
  }
  std::lock_guard<std::mutex> lk(cache_m_);
  const auto it = models_.find(key);
  if (it != models_.end()) return it->second.model;  // lost the race
  lru_.push_front(key);
  models_[key] = {cm, lru_.begin()};
  model_bytes_ += cm->approx_bytes;
  const std::size_t budget = opt_.cache_mb << 20;
  while (model_bytes_ > budget && models_.size() > 1) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto vit = models_.find(victim);
    model_bytes_ -= vit->second.model->approx_bytes;
    models_.erase(vit);
    std::lock_guard<std::mutex> slk(stats_m_);
    ++stats_.model_evictions;
  }
  return cm;
}

std::string ServeServer::run_request(
    const ServeRequest& req,
    const std::function<void(const std::string&)>* progress_sink,
    RequestRecord& rec) {
  const std::string model_key = model_key_of(req);
  const std::string result_key = model_key + "|" + canonical_config(req);
  rec.result_cache = req.use_result_cache ? "miss" : "off";
  if (req.use_result_cache) {
    std::lock_guard<std::mutex> lk(cache_m_);
    const auto it = results_.find(result_key);
    if (it != results_.end()) {
      result_lru_.splice(result_lru_.begin(), result_lru_, it->second.lru_it);
      {
        std::lock_guard<std::mutex> slk(stats_m_);
        ++stats_.result_cache_hits;
        ++stats_.ok;
      }
      // A replayed result never consults the model cache (the compiled
      // model may even have been evicted since), so the tag is "skipped",
      // not a claimed hit.
      rec.model_cache = "skipped";
      rec.result_cache = "hit";
      rec.status = "ok";
      return "{\"id\": \"" + json_escape(req.id) +
             "\", \"request_id\": " + std::to_string(rec.request_id) +
             ", \"event\": \"result\", \"status\": \"ok\", "
             "\"model_cache\": \"skipped\", \"result_cache\": \"hit\", "
             "\"report\": " +
             with_serve_section(it->second.report, rec.request_id) + "}";
    }
    std::lock_guard<std::mutex> slk(stats_m_);
    ++stats_.result_cache_misses;
  }

  // Per-session registry, exactly like `fsct test --metrics`: observation
  // never changes results (the null-sink rule), and each session's counters
  // stay its own even with concurrent workers.  Constructed before the
  // SessionGuard so /statusz's pointer into it is unregistered first.
  ObsRegistry reg;
  reg.set_context(req.id.empty() ? std::string("request") : req.id);
  // RAII /statusz registration.  Declared *after* reg, so it unregisters
  // (dropping the map's pointer into reg, under sessions_m_) before reg is
  // destroyed — a concurrent scrape can never read a dangling registry.
  struct SessionGuard {
    ServeServer* s;
    std::uint64_t rid;
    SessionGuard(ServeServer* s, std::uint64_t rid, SessionInfo info)
        : s(s), rid(rid) {
      std::lock_guard<std::mutex> lk(s->sessions_m_);
      s->sessions_[rid] = std::move(info);
    }
    ~SessionGuard() {
      std::lock_guard<std::mutex> lk(s->sessions_m_);
      s->sessions_.erase(rid);
    }
  } session(this, rec.request_id,
            SessionInfo{req.id, rec.circuit_hash,
                        std::chrono::steady_clock::now(), &reg});

  const auto t_compile = std::chrono::steady_clock::now();
  bool model_hit = false;
  const std::shared_ptr<const CompiledModel> cm = model_for(req, model_hit);
  rec.compile_us = us_since(t_compile);
  rec.model_cache = model_hit ? "hit" : "miss";

  PipelineOptions popt;
  // Deterministic work budgets only: the wall-clock ATPG limits are zeroed
  // so a served report depends on the request alone, never on machine load
  // (the §5j bitwise determinism contract — on a loaded or sanitized host a
  // wall budget truncates PODEM at a load-dependent point). The backtrack
  // limits still bound every call, deterministically.
  popt.comb_time_limit_ms = 0;
  popt.seq_time_limit_ms = 0;
  popt.final_time_limit_ms = 0;
  popt.verify_easy = req.verify_easy;
  popt.jobs = req.jobs;
  popt.simd_width = req.simd_width;
  popt.dominance = req.dominance;
  popt.compiled = &cm->compiled;
  popt.obs = &reg;
  std::unique_ptr<ObsMonitor> monitor;
  if (req.progress && progress_sink) {
    const std::string id = req.id;
    const std::uint64_t rid = rec.request_id;
    const auto sink = *progress_sink;
    reg.progress = [id, rid, sink](const std::string& line) {
      sink(progress_event(id, rid, line));
    };
    ObsMonitor::Options mopt;
    mopt.heartbeat = true;
    mopt.heartbeat_ms = 250;
    mopt.registry = &reg;
    mopt.sigusr1 = false;  // per-session monitor: no global signal ownership
    mopt.sink = [id, rid, sink](const std::string& line) {
      sink(progress_event(id, rid, line));
    };
    monitor = std::make_unique<ObsMonitor>(mopt);
  }

  const auto t_pipeline = std::chrono::steady_clock::now();
  const PipelineResult r = run_fsct_pipeline(*cm->model, cm->faults, popt);
  rec.pipeline_us = us_since(t_pipeline);
  monitor.reset();  // stop heartbeats before the result line

  const auto t_serialize = std::chrono::steady_clock::now();
  std::ostringstream ms;
  reg.write_run_report(ms, r, nullptr);
  std::string report = ms.str();
  // The report is pretty-printed; NDJSON needs one line.  Newline -> space
  // is invisible to any JSON consumer (and to normalized_report).
  std::replace(report.begin(), report.end(), '\n', ' ');

  // Fold the finished session into the daemon-lifetime registry: /metrics
  // exposes cumulative pipeline counters across all requests.  Shard
  // atomics, safe concurrently with scrapes and other workers.
  daemon_reg_.merge_from(reg);

  if (req.use_result_cache) {
    std::lock_guard<std::mutex> lk(cache_m_);
    if (results_.find(result_key) == results_.end()) {
      result_lru_.push_front(result_key);
      // Cache the *un*stamped report: a replay belongs to a different
      // request and gets stamped with that request's id.
      results_[result_key] = {report, result_lru_.begin()};
      while (results_.size() > opt_.result_cache_entries) {
        results_.erase(result_lru_.back());
        result_lru_.pop_back();
        std::lock_guard<std::mutex> slk(stats_m_);
        ++stats_.result_cache_evictions;
      }
    }
  }
  {
    std::lock_guard<std::mutex> slk(stats_m_);
    ++stats_.ok;
  }
  std::string resp =
      "{\"id\": \"" + json_escape(req.id) +
      "\", \"request_id\": " + std::to_string(rec.request_id) +
      ", \"event\": \"result\", \"status\": \"ok\", \"model_cache\": \"" +
      rec.model_cache + "\", \"result_cache\": \"" + rec.result_cache +
      "\", \"report\": " + with_serve_section(std::move(report),
                                              rec.request_id) +
      "}";
  rec.serialize_us = us_since(t_serialize);
  rec.status = "ok";
  return resp;
}

std::string ServeServer::process_line(
    const std::string& line,
    const std::function<void(const std::string&)>* progress_sink) {
  // Direct (non-socket) callers never waited in the queue.
  return process_line_timed(line, progress_sink, 0);
}

std::string ServeServer::process_line_timed(
    const std::string& line,
    const std::function<void(const std::string&)>* progress_sink,
    std::uint64_t queue_us) {
  RequestRecord rec;
  rec.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  rec.queue_us = queue_us;
  {
    std::lock_guard<std::mutex> slk(stats_m_);
    ++stats_.requests;
  }
  ServeRequest req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> slk(stats_m_);
      ++stats_.errors;
    }
    rec.status = "bad_request";
    record_request(rec);
    return error_event("", "bad_request", e.what(), rec.request_id);
  }
  rec.client_id = req.id;
  rec.circuit_hash = circuit_hash_of(req.circuit);
  rec.priority = req.priority;
  try {
    const std::string resp = run_request(req, progress_sink, rec);
    record_request(rec);
    return resp;
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> slk(stats_m_);
      ++stats_.errors;
    }
    rec.status = "bad_request";
    record_request(rec);
    return error_event(req.id, "bad_request", e.what(), rec.request_id);
  }
}

void ServeServer::record_request(const RequestRecord& rec) {
  {
    std::lock_guard<std::mutex> slk(stats_m_);
    const auto observe = [this](LatPhase p, std::uint64_t us) {
      LatHist& h = lat_[p];
      ++h.buckets[ObsRegistry::bucket(us)];
      h.sum += us;
      ++h.count;
    };
    observe(kLatQueue, rec.queue_us);
    observe(kLatCompile, rec.compile_us);
    observe(kLatPipeline, rec.pipeline_us);
    observe(kLatSerialize, rec.serialize_us);
  }
  std::string j = "{\"request_id\": " + std::to_string(rec.request_id) +
                  ", \"id\": \"" + json_escape(rec.client_id) +
                  "\", \"circuit\": \"" + rec.circuit_hash +
                  "\", \"priority\": " + std::to_string(rec.priority) +
                  ", \"model_cache\": \"" + rec.model_cache +
                  "\", \"result_cache\": \"" + rec.result_cache +
                  "\", \"status\": \"" + rec.status +
                  "\", \"queue_us\": " + std::to_string(rec.queue_us) +
                  ", \"compile_us\": " + std::to_string(rec.compile_us) +
                  ", \"pipeline_us\": " + std::to_string(rec.pipeline_us) +
                  ", \"serialize_us\": " + std::to_string(rec.serialize_us) +
                  "}";
  std::lock_guard<std::mutex> lk(log_m_);
  recent_.push_back(std::move(j));
  while (recent_.size() > ring_cap_) recent_.pop_front();
  if (request_log_fd_ >= 0) write_line(request_log_fd_, recent_.back());
}

HttpResponse ServeServer::handle_http(const std::string& path) {
  const char* text = "text/plain; charset=utf-8";
  if (path == "/metrics") {
    std::ostringstream os;
    write_metrics(os);
    return {200,
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            os.str()};
  }
  if (path == "/healthz") {
    // Liveness: the scrape plane answering *is* the signal.  Stays 200
    // through a drain (the process is healthy, just leaving).
    return {200, text, "ok\n"};
  }
  if (path == "/readyz") {
    // Readiness: a draining daemon must stop receiving new work from a
    // balancer even though in-flight requests are still finishing.
    if (draining_.load(std::memory_order_relaxed)) {
      return {503, text, "draining\n"};
    }
    return {200, text, "ok\n"};
  }
  if (path == "/statusz") {
    return {200, "application/json; charset=utf-8", statusz_json()};
  }
  return {404, text, "not found\n"};
}

namespace {

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

/// One OpenMetrics histogram family in the exact shape
/// ObsRegistry::write_openmetrics_body emits (log2 buckets: le="0",
/// le=2^i-1, tail le="+Inf"; cumulative counts; _sum/_count).
void emit_hist(std::ostream& os, const char* family,
               const std::array<std::uint64_t, kHistBuckets>& buckets,
               std::uint64_t sum) {
  os << "# TYPE " << family << " histogram\n";
  std::uint64_t cum = 0;
  for (std::size_t j = 0; j < kHistBuckets; ++j) {
    cum += buckets[j];
    os << family << "_bucket{le=\"";
    if (j == 0) {
      os << "0";
    } else if (j + 1 < kHistBuckets) {
      os << ((std::uint64_t{1} << j) - 1);
    } else {
      os << "+Inf";
    }
    os << "\"} " << cum << "\n";
  }
  os << family << "_sum " << sum << "\n";
  os << family << "_count " << cum << "\n";
}

}  // namespace

void ServeServer::write_metrics(std::ostream& os) {
  const auto counter = [&os](const char* family, std::uint64_t v) {
    os << "# TYPE " << family << " counter\n"
       << family << "_total " << v << "\n";
  };
  const auto gauge = [&os](const char* family, const std::string& v) {
    os << "# TYPE " << family << " gauge\n" << family << " " << v << "\n";
  };

  gauge("fsct_serve_uptime_seconds",
        fmt_seconds(static_cast<double>(us_since(start_)) / 1e6));
  gauge("fsct_serve_draining",
        draining_.load(std::memory_order_relaxed) ? "1" : "0");
  gauge("fsct_serve_workers", std::to_string(opt_.workers));

  const ServeStats s = stats();
  counter("fsct_serve_requests", s.requests);
  counter("fsct_serve_requests_ok", s.ok);
  counter("fsct_serve_requests_error", s.errors);
  counter("fsct_serve_rejected_busy", s.rejected_busy);
  counter("fsct_serve_rejected_draining", s.rejected_draining);
  counter("fsct_serve_model_cache_hits", s.model_cache_hits);
  counter("fsct_serve_model_cache_misses", s.models_compiled);
  counter("fsct_serve_model_cache_evictions", s.model_evictions);
  counter("fsct_serve_result_cache_hits", s.result_cache_hits);
  counter("fsct_serve_result_cache_misses", s.result_cache_misses);
  counter("fsct_serve_result_cache_evictions", s.result_cache_evictions);
  gauge("fsct_serve_queue_highwater", std::to_string(s.queue_highwater));

  {
    std::lock_guard<std::mutex> lk(queue_m_);
    gauge("fsct_serve_queue_depth", std::to_string(queue_size_));
  }
  {
    std::lock_guard<std::mutex> lk(cache_m_);
    gauge("fsct_serve_model_cache_bytes", std::to_string(model_bytes_));
    gauge("fsct_serve_model_cache_entries", std::to_string(models_.size()));
    gauge("fsct_serve_result_cache_entries", std::to_string(results_.size()));
  }
  {
    std::lock_guard<std::mutex> lk(sessions_m_);
    gauge("fsct_serve_active_sessions", std::to_string(sessions_.size()));
  }

  static const char* const kLatFamilies[kLatCount] = {
      "fsct_serve_latency_queue_us", "fsct_serve_latency_compile_us",
      "fsct_serve_latency_pipeline_us", "fsct_serve_latency_serialize_us"};
  std::array<LatHist, kLatCount> lat;
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    lat = lat_;
  }
  for (std::size_t i = 0; i < kLatCount; ++i) {
    emit_hist(os, kLatFamilies[i], lat[i].buckets, lat[i].sum);
  }

  // The cumulative pipeline counters of every finished session, exactly as
  // `fsct test --metrics-out` would expose them for one run.
  daemon_reg_.write_openmetrics_body(os);
  os << "# EOF\n";
}

std::string ServeServer::statusz_json() {
  std::string out = "{\"uptime_seconds\": " +
                    fmt_seconds(static_cast<double>(us_since(start_)) / 1e6) +
                    ", \"draining\": " +
                    (draining_.load(std::memory_order_relaxed) ? "true"
                                                               : "false");
  {
    std::lock_guard<std::mutex> lk(queue_m_);
    out += ", \"queue_depth\": " + std::to_string(queue_size_);
  }
  out += ", \"active_sessions\": [";
  {
    std::lock_guard<std::mutex> lk(sessions_m_);
    bool first = true;
    for (const auto& [rid, info] : sessions_) {
      if (!first) out += ", ";
      first = false;
      out += "{\"request_id\": " + std::to_string(rid) + ", \"id\": \"" +
             json_escape(info.client_id) + "\", \"circuit\": \"" +
             info.circuit_hash + "\", \"elapsed_seconds\": " +
             fmt_seconds(static_cast<double>(us_since(info.start)) / 1e6);
      const ObsRegistry::PhaseProgress p =
          info.reg ? info.reg->phase_progress()
                   : ObsRegistry::PhaseProgress{};
      if (p.name) {
        out += ", \"phase\": \"" + json_escape(p.name) +
               "\", \"done\": " + std::to_string(p.done) +
               ", \"total\": " + std::to_string(p.total);
      } else {
        out += ", \"phase\": null";
      }
      out += "}";
    }
  }
  out += "], \"recent\": [";
  {
    std::lock_guard<std::mutex> lk(log_m_);
    bool first = true;
    for (const std::string& j : recent_) {
      if (!first) out += ", ";
      first = false;
      out += j;
    }
  }
  out += "]}";
  return out;
}

bool ServeServer::enqueue(Job job, int priority) {
  {
    std::lock_guard<std::mutex> lk(queue_m_);
    if (queue_size_ >= opt_.queue_limit) return false;
    queue_[priority].push_back(std::move(job));
    ++queue_size_;
    // High-water update nests stats_m_ inside queue_m_ (the only place the
    // two are held together; nothing takes them in the other order).
    std::lock_guard<std::mutex> slk(stats_m_);
    if (queue_size_ > stats_.queue_highwater) {
      stats_.queue_highwater = queue_size_;
    }
  }
  queue_cv_.notify_one();
  return true;
}

bool ServeServer::dequeue(Job& out) {
  std::unique_lock<std::mutex> lk(queue_m_);
  queue_cv_.wait(lk, [this] {
    return queue_size_ > 0 || draining_.load(std::memory_order_relaxed);
  });
  if (queue_size_ == 0) return false;  // draining and nothing left
  const auto it = queue_.begin();     // highest priority, FIFO within
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queue_.erase(it);
  --queue_size_;
  return true;
}

void ServeServer::respond(const std::shared_ptr<Conn>& conn,
                          const std::string& line) {
  std::lock_guard<std::mutex> lk(conn->write_m);
  write_line(conn->fd, line);  // peer may be gone; nothing useful to do then
}

void ServeServer::reader(std::shared_ptr<Conn> conn, std::uint64_t id) {
  LineReader lr(conn->fd);
  std::string line;
  while (lr.next(line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // Peek id/priority without committing to a full parse; a malformed line
    // still queues and gets its error from the worker.
    std::string id;
    int priority = 0;
    try {
      JsonParser p(line, "request");
      const JVal v = p.parse();
      id = id_of(v);
      // Mirror int_field's [-1000, 1000] range before casting: the double is
      // client-supplied and unvalidated here (1e300 or NaN would make the
      // plain cast UB); the worker's full parse still reports the precise
      // error for out-of-range values.
      const double d = json_num(p, v, "priority", 0);
      priority = std::isfinite(d)
                     ? static_cast<int>(std::clamp(d, -1000.0, 1000.0))
                     : 0;
    } catch (const std::exception&) {
    }
    if (draining_.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> slk(stats_m_);
        ++stats_.rejected_draining;
      }
      respond(conn, error_event(id, "draining",
                                "daemon is draining; not accepting requests"));
      continue;
    }
    if (!enqueue(Job{conn, line, std::chrono::steady_clock::now()},
                 priority)) {
      {
        std::lock_guard<std::mutex> slk(stats_m_);
        ++stats_.rejected_busy;
      }
      respond(conn, error_event(id, "busy", "request queue is full"));
    }
  }
  // Disconnected: release this connection's bookkeeping now rather than at
  // drain.  The fd closes when the last Conn reference drops (a queued
  // job's response may still be in flight), and the accept loop joins the
  // thread handle queued here.
  std::lock_guard<std::mutex> lk(conns_m_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
  finished_readers_.push_back(id);
}

void ServeServer::reap_finished_readers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (const std::uint64_t id : finished_readers_) {
      const auto it = reader_threads_.find(id);
      if (it != reader_threads_.end()) {
        done.push_back(std::move(it->second));
        reader_threads_.erase(it);
      }
    }
    finished_readers_.clear();
  }
  // Join outside the lock: the exiting thread's last act under conns_m_ was
  // queueing its id, so the join cannot deadlock and barely blocks.
  for (std::thread& t : done) t.join();
}

void ServeServer::worker() {
  Job job;
  while (dequeue(job)) {
    const std::uint64_t queue_us = us_since(job.enqueued);
    const std::shared_ptr<Conn> conn = job.conn;
    const std::function<void(const std::string&)> sink =
        [this, conn](const std::string& line) { respond(conn, line); };
    const std::string resp = process_line_timed(job.line, &sink, queue_us);
    respond(conn, resp);
  }
}

void ServeServer::run() {
#ifdef _WIN32
  throw std::runtime_error("fsct serve requires POSIX sockets");
#else
  // SIGTERM/SIGINT trigger the drain via the self-pipe.  sigaction with
  // save/restore, no SA_RESTART (the poll below must wake), exactly like the
  // SIGUSR1 handling in core/obs.cpp.
  g_serve_stop_fd.store(stop_pipe_[1], std::memory_order_relaxed);
  struct sigaction sa {};
  sa.sa_handler = serve_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction prev_term {}, prev_int {};
  sigaction(SIGTERM, &sa, &prev_term);
  sigaction(SIGINT, &sa, &prev_int);
  // A client that disconnects before its response arrives would otherwise
  // turn the next respond()/progress write into process-fatal SIGPIPE.
  // Ignored, the write returns EPIPE and write_all reports an ordinary
  // error (the io_util.h contract assumes exactly this disposition).
  struct sigaction sa_pipe {};
  sa_pipe.sa_handler = SIG_IGN;
  sigemptyset(&sa_pipe.sa_mask);
  sa_pipe.sa_flags = 0;
  struct sigaction prev_pipe {};
  sigaction(SIGPIPE, &sa_pipe, &prev_pipe);

  for (int i = 0; i < opt_.workers; ++i) {
    worker_threads_.emplace_back([this] { worker(); });
  }
  std::string listening =
      "listening on " +
      (opt_.unix_path.empty() ? "tcp port " + std::to_string(port_)
                              : opt_.unix_path) +
      " (" + std::to_string(opt_.workers) + " workers, queue " +
      std::to_string(opt_.queue_limit) + ", cache " +
      std::to_string(opt_.cache_mb) + " MB)";
  if (http_) {
    listening += "; metrics on " +
                 (opt_.http_unix_path.empty()
                      ? "http port " + std::to_string(http_->port())
                      : opt_.http_unix_path);
  }
  log_line(listening);

  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain requested
    if (fds[0].revents == 0) continue;
    reap_finished_readers();
    int cfd;
    do {
      cfd = ::accept(listen_fd_, nullptr, nullptr);
    } while (cfd < 0 && errno == EINTR);
    if (cfd < 0) continue;
    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    std::lock_guard<std::mutex> lk(conns_m_);
    conns_.push_back(conn);
    const std::uint64_t id = next_reader_id_++;
    reader_threads_.emplace(
        id, std::thread([this, conn, id] { reader(conn, id); }));
  }

  // --- graceful drain -------------------------------------------------------
  draining_.store(true, std::memory_order_relaxed);
  log_line("draining: finishing queued and in-flight requests");
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());

  // Workers exit once the queue is empty; everything already queued is
  // finished and its response flushed first.
  queue_cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();

  // A reader may have raced one last job past the workers' exit; answer it
  // with a drain rejection rather than dropping it silently.
  {
    std::lock_guard<std::mutex> lk(queue_m_);
    for (auto& [prio, jobs] : queue_) {
      for (Job& j : jobs) {
        std::string id;
        try {
          JsonParser p(j.line, "request");
          id = id_of(p.parse());
        } catch (const std::exception&) {
        }
        respond(j.conn, error_event(id, "draining",
                                    "daemon drained before this request ran"));
      }
    }
    queue_.clear();
    queue_size_ = 0;
  }

  // Unblock the readers still connected and wait for every reader thread
  // (finished ones included); each reader erased its Conn on exit, and the
  // Conn destructor closes the fd when the last reference drops.
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (auto& [id, t] : reader_threads_) readers.push_back(std::move(t));
    reader_threads_.clear();
  }
  for (std::thread& t : readers) t.join();
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    finished_readers_.clear();
    conns_.clear();
  }

  sigaction(SIGTERM, &prev_term, nullptr);
  sigaction(SIGINT, &prev_int, nullptr);
  sigaction(SIGPIPE, &prev_pipe, nullptr);
  g_serve_stop_fd.store(-1, std::memory_order_relaxed);

  const ServeStats s = stats();
  log_line("drained: " + std::to_string(s.requests) + " requests, " +
           std::to_string(s.ok) + " ok, " + std::to_string(s.errors) +
           " errors, " + std::to_string(s.rejected_busy) + " busy, " +
           std::to_string(s.models_compiled) + " models compiled, " +
           std::to_string(s.model_cache_hits) + " model hits, " +
           std::to_string(s.result_cache_hits) + " result hits");
#endif
}

}  // namespace fsct
