#include "serve/http.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

#include "core/io_util.h"
#include "serve/net.h"

namespace fsct {

namespace {

/// HTTP request heads are tiny; anything longer than this per line is a
/// misbehaving (or malicious) peer.  Far below LineReader::kMaxLine — the
/// scrape plane never carries circuits.
constexpr std::size_t kHttpMaxLine = 8u << 10;  // 8 KB

/// A whole request head (request line + headers) is bounded too, so a peer
/// drip-feeding headers cannot hold the accept thread's memory hostage.
constexpr std::size_t kHttpMaxHeaderLines = 64;

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void strip_cr(std::string& s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
}

void send_response(int fd, const HttpResponse& r) {
  std::ostringstream os;
  os << "HTTP/1.1 " << r.status << ' ' << reason_phrase(r.status) << "\r\n"
     << "Content-Type: " << r.content_type << "\r\n"
     << "Content-Length: " << r.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << r.body;
  const std::string out = os.str();
  write_all(fd, out.data(), out.size());  // peer hang-up: nothing to do
}

}  // namespace

#ifndef _WIN32

HttpServer::HttpServer(const HttpOptions& opts, HttpHandler handler)
    : opts_(opts), handler_(std::move(handler)) {
  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    throw std::runtime_error("http: no listener configured");
  }
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error(std::string("http: pipe: ") +
                             std::strerror(errno));
  }
  try {
    if (!opts_.unix_path.empty()) unix_fd_ = listen_unix(opts_.unix_path);
    if (opts_.tcp_port >= 0) {
      tcp_fd_ = listen_tcp(opts_.tcp_port);
      port_ = bound_tcp_port(tcp_fd_);
    }
  } catch (...) {
    if (unix_fd_ >= 0) ::close(unix_fd_);
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
    throw;
  }
  thread_ = std::thread([this] { loop(); });
}

HttpServer::~HttpServer() {
  // Wake the accept loop; closing the listeners after the join keeps the
  // poll set valid for the loop's whole lifetime.
  char b = 'q';
  (void)!::write(stop_pipe_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
}

void HttpServer::loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {stop_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    const int pr = ::poll(fds, n, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;  // unrecoverable poll error: scrape plane goes dark, daemon
               // request plane keeps running
    }
    if (fds[0].revents != 0) return;  // destructor asked us to stop
    for (nfds_t i = 1; i < n; ++i) {
      if (fds[i].revents == 0) continue;
      const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
      if (cfd < 0) continue;  // transient (ECONNABORTED, EINTR, ...)
      handle_connection(cfd);
    }
  }
}

void HttpServer::handle_connection(int fd) {
  // Bound how long a slow or silent peer can hold the accept thread: reads
  // past the timeout fail with EAGAIN, LineReader::next() returns false,
  // and the connection is dropped.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  // Strict terminator mode: a peer that closes mid-request-line gets a
  // clean reject instead of its partial bytes being parsed as a request.
  LineReader reader(fd, kHttpMaxLine, /*require_terminator=*/true);
  std::string line;
  if (!reader.next(line)) {
    ::close(fd);  // nothing parseable arrived; no response owed
    return;
  }
  strip_cr(line);

  // "METHOD SP target SP version"
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    send_response(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    ::close(fd);
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  // Drain the header block (we ignore headers — every request is framed the
  // same way) up to a hard line count, so drip-fed headers can't pin us.
  bool headers_ok = false;
  for (std::size_t i = 0; i < kHttpMaxHeaderLines; ++i) {
    if (!reader.next(line)) break;  // EOF/timeout before blank line
    strip_cr(line);
    if (line.empty()) {
      headers_ok = true;
      break;
    }
  }
  if (!headers_ok) {
    send_response(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    ::close(fd);
    return;
  }
  if (method != "GET") {
    send_response(fd,
                  {405, "text/plain; charset=utf-8", "method not allowed\n"});
    ::close(fd);
    return;
  }
  const std::size_t q = target.find('?');
  if (q != std::string::npos) target.erase(q);
  if (target.empty() || target[0] != '/') {
    send_response(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    ::close(fd);
    return;
  }
  send_response(fd, handler_(target));
  ::close(fd);
}

HttpResult http_get_fd(int fd, const std::string& target) {
  const std::string req = "GET " + target +
                          " HTTP/1.1\r\nHost: fsct\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, req.data(), req.size())) {
    ::close(fd);
    throw std::runtime_error("http: send failed");
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const long r = read_retry(fd, chunk, sizeof chunk);
    if (r < 0) {
      ::close(fd);
      throw std::runtime_error("http: read failed");
    }
    if (r == 0) break;
    raw.append(chunk, static_cast<std::size_t>(r));
  }
  ::close(fd);
  // "HTTP/1.1 NNN ..." — all we need is the status code and the body.
  if (raw.compare(0, 5, "HTTP/") != 0) {
    throw std::runtime_error("http: malformed response");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    throw std::runtime_error("http: malformed status line");
  }
  HttpResult res;
  res.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    throw std::runtime_error("http: missing header terminator");
  }
  res.body = raw.substr(hdr_end + 4);
  return res;
}

#else  // _WIN32: serve (and its scrape plane) is POSIX-only.

HttpServer::HttpServer(const HttpOptions&, HttpHandler) {
  throw std::runtime_error("fsct serve http requires POSIX sockets");
}
HttpServer::~HttpServer() = default;
void HttpServer::loop() {}
void HttpServer::handle_connection(int) {}

HttpResult http_get_fd(int, const std::string&) {
  throw std::runtime_error("fsct serve http requires POSIX sockets");
}

#endif

}  // namespace fsct
