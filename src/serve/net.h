// Minimal socket plumbing for `fsct serve`: Unix-domain / loopback-TCP
// listeners, client-side connects (used by the integration tests), and a
// buffered newline-delimited line reader.  Everything retries EINTR through
// core/io_util.h — the daemon's signal handlers are installed without
// SA_RESTART, so every blocking call here can and will be interrupted.
#pragma once

#include <cstddef>
#include <string>

namespace fsct {

/// Creates, binds and listens on a Unix-domain stream socket at `path`
/// (unlinking a stale socket file first).  Returns the listening fd; throws
/// std::runtime_error on failure.
int listen_unix(const std::string& path);

/// Creates, binds and listens on loopback TCP `port` (0 = ephemeral).
/// Returns the listening fd; throws std::runtime_error on failure.
int listen_tcp(int port);

/// Port a listening TCP fd is actually bound to (resolves port 0).
int bound_tcp_port(int fd);

/// Client-side connect; throw std::runtime_error on failure.
int connect_unix(const std::string& path);
int connect_tcp(int port);

/// Buffered reader splitting an fd's byte stream into '\n'-terminated lines
/// (terminator stripped).  next() blocks until a full line, EOF or error;
/// EINTR is retried.  A final unterminated fragment before EOF is returned
/// as a line.  A single line is capped at kMaxLine — an unterminated line
/// beyond that is treated as a read error (false) instead of growing the
/// buffer without bound on a peer that never sends '\n'.
class LineReader {
 public:
  /// One line's upper bound.  Circuits ride inline in serve requests (with
  /// JSON escaping overhead), so the cap is generous; it only exists so a
  /// misbehaving client cannot grow daemon memory arbitrarily.
  static constexpr std::size_t kMaxLine = 256u << 20;  // 256 MB

  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF (with no pending fragment), on a read error, or on an
  /// unterminated line exceeding kMaxLine.
  bool next(std::string& line);

 private:
  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;  // start of unconsumed bytes in buf_
  bool eof_ = false;
};

}  // namespace fsct
