// Minimal socket plumbing for `fsct serve`: Unix-domain / loopback-TCP
// listeners, client-side connects (used by the integration tests), and a
// buffered newline-delimited line reader.  Everything retries EINTR through
// core/io_util.h — the daemon's signal handlers are installed without
// SA_RESTART, so every blocking call here can and will be interrupted.
#pragma once

#include <cstddef>
#include <string>

namespace fsct {

/// Creates, binds and listens on a Unix-domain stream socket at `path`
/// (unlinking a stale socket file first).  Returns the listening fd; throws
/// std::runtime_error on failure.
int listen_unix(const std::string& path);

/// Creates, binds and listens on loopback TCP `port` (0 = ephemeral).
/// Returns the listening fd; throws std::runtime_error on failure.
int listen_tcp(int port);

/// Port a listening TCP fd is actually bound to (resolves port 0).
int bound_tcp_port(int fd);

/// Client-side connect; throw std::runtime_error on failure.
int connect_unix(const std::string& path);
int connect_tcp(int port);

/// Buffered reader splitting an fd's byte stream into '\n'-terminated lines
/// (terminator stripped).  next() blocks until a full line, EOF or error;
/// EINTR is retried.  By default a final unterminated fragment before EOF is
/// returned as a line; `require_terminator` turns that fragment into a hard
/// false instead — the HTTP parser uses it so a peer that closes mid-request
/// line is rejected cleanly rather than having its partial bytes treated as
/// a complete request.  A single line is capped at `max_line` — an
/// unterminated line beyond that is treated as a read error (false) instead
/// of growing the buffer without bound on a peer that never sends '\n'.
class LineReader {
 public:
  /// Default per-line upper bound.  Circuits ride inline in serve requests
  /// (with JSON escaping overhead), so the cap is generous; it only exists
  /// so a misbehaving client cannot grow daemon memory arbitrarily.  HTTP
  /// request heads pass a far smaller cap (kHttpMaxLine in serve/http.cpp).
  static constexpr std::size_t kMaxLine = 256u << 20;  // 256 MB

  explicit LineReader(int fd, std::size_t max_line = kMaxLine,
                      bool require_terminator = false)
      : fd_(fd), max_line_(max_line), require_terminator_(require_terminator) {}

  /// False on EOF (with no pending fragment, or with one when
  /// require_terminator is set), on a read error, or on an unterminated
  /// line exceeding the cap.  Once false, every later call is false too —
  /// the stream is dead; a caller looping on next() always terminates.
  bool next(std::string& line);

 private:
  int fd_;
  std::size_t max_line_;
  bool require_terminator_;
  std::string buf_;
  std::size_t pos_ = 0;  // start of unconsumed bytes in buf_
  bool eof_ = false;
  bool failed_ = false;  // capped or read error: the stream is poisoned
};

}  // namespace fsct
