#include "serve/net.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "core/io_util.h"

namespace fsct {

#ifndef _WIN32

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  ::unlink(path.c_str());  // a stale socket file from a killed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    fail_errno("bind " + path);
  }
  if (::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    fail_errno("listen " + path);
  }
  return fd;
}

int listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only: no remote
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    fail_errno("bind port " + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    fail_errno("listen port " + std::to_string(port));
  }
  return fd;
}

int bound_tcp_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  int r;
  do {
    r = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (r != 0 && errno == EINTR);
  if (r != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    fail_errno("connect " + path);
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  int r;
  do {
    r = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (r != 0 && errno == EINTR);
  if (r != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    fail_errno("connect port " + std::to_string(port));
  }
  return fd;
}

#else  // _WIN32: serve is POSIX-only; every entry point reports that.

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error("fsct serve requires POSIX sockets");
}
}  // namespace

int listen_unix(const std::string&) { unsupported(); }
int listen_tcp(int) { unsupported(); }
int bound_tcp_port(int) { unsupported(); }
int connect_unix(const std::string&) { unsupported(); }
int connect_tcp(int) { unsupported(); }

#endif

bool LineReader::next(std::string& line) {
  if (failed_) return false;
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      return true;
    }
    // No newline yet: refuse to buffer past the cap (a peer streaming an
    // endless unterminated line must not grow daemon memory without bound).
    if (buf_.size() - pos_ > max_line_) {
      failed_ = true;
      return false;
    }
    if (eof_) {
      if (pos_ < buf_.size() && !require_terminator_) {
        // Trailing unterminated fragment: returned as a line in lenient
        // mode; strict (HTTP) mode drops it so a peer that closed
        // mid-request-line never has partial bytes parsed as a request.
        line.assign(buf_, pos_, buf_.size() - pos_);
        pos_ = buf_.size();
        return true;
      }
      failed_ = true;
      return false;
    }
    char chunk[4096];
    const long r = read_retry(fd_, chunk, sizeof chunk);
    if (r < 0) {
      failed_ = true;
      return false;
    }
    if (r == 0) {
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(r));
  }
}

}  // namespace fsct
