// `fsct serve`: a long-running screening daemon that amortizes circuit
// compilation across requests (ROADMAP item 2).
//
// Protocol: newline-delimited JSON over a Unix-domain or loopback-TCP
// stream.  One request per line:
//
//   {"id": "r1", "circuit": "INPUT(G0)\n...", "priority": 5,
//    "progress": false, "use_result_cache": true,
//    "config": {"chains": 1, "partial": 1000, "jobs": 1, "simd_width": 0,
//               "dominance": true, "verify_easy": true}}
//
// `circuit` is the .bench text itself (the daemon never touches the client's
// filesystem).  Every config field is optional; the defaults above mirror
// `fsct test`.  Responses are one JSON object per line, tagged by request id:
//
//   {"id": "r1", "event": "progress", "line": "..."}            (0..n, opt-in)
//   {"id": "r1", "event": "result", "status": "ok",
//    "model_cache": "hit|miss|skipped", "result_cache": "hit|miss|off",
//    "report": { ...fsct-run-report-v2... }}
//
// A result-cache hit replays the stored report without consulting the model
// cache at all, so it tags "model_cache": "skipped" rather than claiming a
// hit on a model that may since have been evicted.
//   {"id": "r1", "event": "result", "status": "error",
//    "code": "bad_request|busy|draining", "message": "..."}
//
// Caching: the compiled-model cache is keyed by (FNV-1a 64 hash of the
// circuit text, chains, partial) — everything run_tpi's netlist mutation
// depends on — and holds the post-TPI netlist, Levelizer, ScanModeModel,
// collapsed fault list, dominance artifacts (PipelineCompiled) and the SoA
// compilation (via the Levelizer memo) behind one shared_ptr<const>, shared
// read-only across concurrent requests and LRU-evicted against --cache-mb.
// The result cache maps (model key, canonicalized config) to the finished
// report.  Determinism contract: a served report, timings/RSS stripped (see
// normalized_report), is bitwise identical to the same request through
// `fsct test --metrics` — caches only skip recomputing pure functions.
//
// Drain: SIGTERM/SIGINT (or request_stop()) stops accepting, rejects new
// requests with code "draining", finishes everything queued and in flight,
// flushes the responses, then joins all threads and returns from run().
//
// Observability plane (PR 9): an embedded GET-only HTTP listener
// (serve/http.h) mounts /metrics (OpenMetrics: daemon fsct_serve_* series +
// the daemon-lifetime pipeline registry), /healthz, /readyz (draining ⇒ 503)
// and /statusz (JSON snapshot of in-flight sessions + the recent-request
// ring).  Every request gets a server-assigned `request_id`, echoed on its
// progress/result events, stamped into the report's "serve" section (which
// normalized_report drops — serve metadata stays out of the deterministic
// slice) and used to key one NDJSON line in the structured request log.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/obs.h"
#include "core/pipeline.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "scan/scan_mode_model.h"
#include "scan/tpi.h"

namespace fsct {

/// FNV-1a 64-bit over the raw bytes; the compiled-model cache's content hash.
std::uint64_t fnv1a64(const std::string& s);

/// Canonical comparison form of a run report: parsed, every key containing
/// "seconds"/"time"/"passes"/"cycles"/"rss" dropped recursively (the width-
/// sweep normalization: timings, RSS and pass counts legitimately vary),
/// keys sorted, re-serialized compactly.  Two reports describe the same
/// screening result iff their normalized forms are bytewise equal.
std::string normalized_report(const std::string& report_json);

/// One parsed screening request (defaults mirror `fsct test`).
struct ServeRequest {
  std::string id;
  std::string circuit;        ///< .bench text
  int chains = 1;
  int partial = 1000;         ///< scan permille
  int jobs = 1;
  int simd_width = 0;         ///< 0 = process default
  bool dominance = true;
  bool verify_easy = true;
  int priority = 0;           ///< higher runs first
  bool progress = false;      ///< stream heartbeat/progress events
  bool use_result_cache = true;
};

/// Everything derivable from (circuit text, chains, partial) alone, compiled
/// once and shared read-only (the pipeline only reads it; see
/// PipelineCompiled).  Heap-allocated and never copied or moved: lv/model
/// hold references into nl/design.
struct CompiledModel {
  Netlist nl;  ///< post-TPI
  ScanDesign design;
  std::unique_ptr<Levelizer> lv;
  std::unique_ptr<ScanModeModel> model;
  std::vector<Fault> faults;
  PipelineCompiled compiled;
  std::size_t approx_bytes = 0;  ///< LRU accounting estimate
};

/// Counters the tests, the drain log and the /metrics exposition read;
/// returned by value as one consistent snapshot.  Every field is written and
/// read under stats_m_ only (the lock-discipline audit /metrics relies on);
/// cache sizes/bytes live under cache_m_ and queue depth under queue_m_ —
/// those are sampled separately by the scrape handler under their own locks.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t models_compiled = 0;  ///< == model-cache misses
  std::uint64_t model_cache_hits = 0;
  std::uint64_t model_evictions = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  std::uint64_t result_cache_evictions = 0;
  std::uint64_t queue_highwater = 0;  ///< deepest queue ever observed
};

struct ServeOptions {
  std::string unix_path;  ///< Unix-domain socket path; "" = use tcp_port
  int tcp_port = -1;      ///< loopback TCP port (0 = ephemeral); -1 = off
  int workers = 1;        ///< concurrent screening sessions
  std::size_t queue_limit = 16;   ///< queued requests beyond in-flight
  std::size_t cache_mb = 256;     ///< compiled-model cache budget
  std::size_t result_cache_entries = 128;
  bool verbose = false;
  /// Observability HTTP listener (serve/http.h): /metrics, /healthz,
  /// /readyz, /statusz.  Off unless a unix path or a port (-1 = off,
  /// 0 = ephemeral) is configured.
  std::string http_unix_path;
  int http_port = -1;
  /// Structured NDJSON request log: one line per request (request_id,
  /// circuit hash, priority, cache outcomes, phase latencies, status).
  /// Truncated at daemon start; "" = off.
  std::string request_log_path;
  /// Entries kept in the in-memory recent-request ring shown on /statusz;
  /// clamped to [1, kStatusRingMax] so no flood of tiny requests can grow
  /// daemon memory through it (same rationale as LineReader's line cap).
  std::size_t status_ring = 32;
  /// Daemon log sink (one line, no trailing newline); default writes
  /// "[fsct-serve] <line>" to stderr through the EINTR-safe path.
  std::function<void(const std::string&)> log;
};

/// Hard ceiling for ServeOptions::status_ring.
inline constexpr std::size_t kStatusRingMax = 256;

class HttpServer;
struct HttpResponse;

class ServeServer {
 public:
  /// Binds the listener (so clients can connect as soon as the constructor
  /// returns) but accepts nothing until run().  Throws on bind failure.
  explicit ServeServer(ServeOptions opt);
  ~ServeServer();
  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Serves until SIGTERM/SIGINT or request_stop(), then drains: stops
  /// accepting, finishes queued + in-flight requests, flushes responses,
  /// joins every thread.  Blocking; call from the owning thread.
  void run();

  /// In-process drain trigger (what the signal handler does); safe from any
  /// thread, idempotent.
  void request_stop();

  /// Actual TCP port when listening on TCP (resolves tcp_port = 0).
  int port() const { return port_; }

  /// Actual observability HTTP TCP port (resolves http_port = 0); -1 when
  /// the HTTP plane has no TCP listener.
  int http_port() const;

  ServeStats stats() const;

  /// Handles one request line synchronously and returns the result event
  /// line; progress events go to `progress_sink` when provided.  This is the
  /// exact path the socket workers run — exposed so tests can drive the
  /// cache and determinism contracts without a live socket.
  std::string process_line(
      const std::string& line,
      const std::function<void(const std::string&)>* progress_sink = nullptr);

 private:
  /// One client connection.  The fd closes when the last shared_ptr drops —
  /// normally right after the reader exits, later if a queued job's response
  /// is still being written.
  struct Conn {
    ~Conn();
    int fd = -1;
    std::mutex write_m;  ///< serializes response/progress lines
  };
  struct Job {
    std::shared_ptr<Conn> conn;
    std::string line;
    std::chrono::steady_clock::time_point enqueued;  ///< queue-wait t0
  };

  /// Per-request observability record, filled along the request path and
  /// flushed to the latency histograms + request log by process_line_timed.
  struct RequestRecord {
    std::uint64_t request_id = 0;
    std::string client_id;
    std::string circuit_hash;  ///< fnv1a64 of the circuit text, %016llx
    int priority = 0;
    const char* model_cache = "n/a";
    const char* result_cache = "n/a";
    const char* status = "error";
    std::uint64_t queue_us = 0, compile_us = 0, pipeline_us = 0,
                  serialize_us = 0;
  };

  /// One latency histogram (µs, ObsRegistry log2 buckets); lat_ is indexed
  /// by request phase and guarded by stats_m_.
  struct LatHist {
    std::array<std::uint64_t, kHistBuckets> buckets{};
    std::uint64_t sum = 0, count = 0;
  };
  enum LatPhase : std::size_t { kLatQueue, kLatCompile, kLatPipeline,
                                kLatSerialize, kLatCount };

  /// An in-flight screening session as /statusz sees it.  `reg` points at
  /// the session's stack ObsRegistry for phase/done/total; the entry is
  /// erased (under sessions_m_) before that registry is destroyed.
  struct SessionInfo {
    std::string client_id;
    std::string circuit_hash;
    std::chrono::steady_clock::time_point start;
    const ObsRegistry* reg = nullptr;
  };

  void reader(std::shared_ptr<Conn> conn, std::uint64_t id);
  void worker();
  void reap_finished_readers();  ///< joins reader threads that have exited
  bool enqueue(Job job, int priority);  ///< false when full
  bool dequeue(Job& out);               ///< false when draining and empty
  void respond(const std::shared_ptr<Conn>& conn, const std::string& line);
  std::shared_ptr<const CompiledModel> model_for(const ServeRequest& req,
                                                 bool& cache_hit);
  std::string run_request(
      const ServeRequest& req,
      const std::function<void(const std::string&)>* progress_sink,
      RequestRecord& rec);
  std::string process_line_timed(
      const std::string& line,
      const std::function<void(const std::string&)>* progress_sink,
      std::uint64_t queue_us);
  void log_line(const std::string& line);

  // --- observability plane -------------------------------------------------
  HttpResponse handle_http(const std::string& path);
  void write_metrics(std::ostream& os);
  std::string statusz_json();
  void record_request(const RequestRecord& rec);  ///< histograms + log + ring

  ServeOptions opt_;
  int listen_fd_ = -1;
  int port_ = 0;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};

  // Request queue: priority-major, FIFO within a priority.
  std::mutex queue_m_;
  std::condition_variable queue_cv_;
  std::map<int, std::list<Job>, std::greater<int>> queue_;
  std::size_t queue_size_ = 0;

  // Compiled-model LRU (front = most recent) + result cache.
  mutable std::mutex cache_m_;
  std::list<std::string> lru_;
  struct ModelEntry {
    std::shared_ptr<const CompiledModel> model;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, ModelEntry> models_;
  std::size_t model_bytes_ = 0;
  std::list<std::string> result_lru_;
  struct ResultEntry {
    std::string report;  ///< single-line report JSON
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, ResultEntry> results_;

  mutable std::mutex stats_m_;
  ServeStats stats_;
  std::array<LatHist, kLatCount> lat_;  ///< guarded by stats_m_

  // --- observability plane -------------------------------------------------
  std::unique_ptr<HttpServer> http_;  ///< scrape listener; null = off
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> next_request_id_{1};

  /// Daemon-lifetime pipeline registry: each finished session's ObsRegistry
  /// is folded in (merge_from), so /metrics exposes cumulative fsct_*
  /// pipeline counters across all requests.  merge_from / reads are shard
  /// atomics — no lock.
  ObsRegistry daemon_reg_;

  /// In-flight sessions for /statusz, keyed by request_id.
  std::mutex sessions_m_;
  std::map<std::uint64_t, SessionInfo> sessions_;

  /// Request log fd + recent-request ring (serialized NDJSON objects,
  /// newest last, capped at ring_cap_), both under log_m_.
  std::mutex log_m_;
  int request_log_fd_ = -1;
  std::size_t ring_cap_ = 32;
  std::deque<std::string> recent_;

  // Live connections and their reader threads.  A reader that sees EOF
  // erases its Conn from conns_ and queues its id on finished_readers_; the
  // accept loop joins those handles (reap_finished_readers), so a daemon
  // serving many short-lived connections holds bookkeeping only for live
  // ones.  All three are guarded by conns_m_.
  std::mutex conns_m_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::uint64_t next_reader_id_ = 0;
  std::unordered_map<std::uint64_t, std::thread> reader_threads_;
  std::vector<std::uint64_t> finished_readers_;
  std::vector<std::thread> worker_threads_;
};

}  // namespace fsct
