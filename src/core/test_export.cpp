#include "core/test_export.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "scan/scan_sequences.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("test program parse error, line " +
                           std::to_string(line) + ": " + msg);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string t;
  while (is >> t) out.push_back(t);
  return out;
}

}  // namespace

TestProgram make_test_program(const ScanModeModel& model,
                              TestSequence stimulus,
                              std::vector<NodeId> observe) {
  const Levelizer& lv = model.levelizer();
  const Netlist& nl = lv.netlist();
  if (observe.empty()) {
    observe = nl.outputs();
    for (NodeId so : model.scan_outs()) {
      if (std::find(observe.begin(), observe.end(), so) == observe.end()) {
        observe.push_back(so);
      }
    }
  }
  TestProgram p;
  p.circuit = nl.name();
  for (NodeId pi : nl.inputs()) p.input_names.push_back(nl.node_name(pi));
  for (NodeId o : observe) p.observe_names.push_back(nl.node_name(o));
  p.stimulus = std::move(stimulus);

  SeqSim sim(lv);
  p.expected.reserve(p.stimulus.size());
  for (const auto& pi : p.stimulus) {
    const auto& v = sim.step(pi);
    std::vector<Val> row;
    row.reserve(observe.size());
    for (NodeId o : observe) row.push_back(v[o]);
    p.expected.push_back(std::move(row));
  }
  return p;
}

void write_test_program(std::ostream& os, const TestProgram& p) {
  os << "FSCT-TEST 1\n";
  os << "circuit " << p.circuit << "\n";
  os << "inputs";
  for (const auto& n : p.input_names) os << ' ' << n;
  os << "\nobserve";
  for (const auto& n : p.observe_names) os << ' ' << n;
  os << "\ncycles " << p.stimulus.size() << "\n";
  for (std::size_t t = 0; t < p.stimulus.size(); ++t) {
    os << "v ";
    for (Val v : p.stimulus[t]) os << val_char(v);
    os << " | ";
    for (Val v : p.expected[t]) os << val_char(v);
    os << "\n";
  }
}

std::string write_test_program_string(const TestProgram& p) {
  std::ostringstream os;
  write_test_program(os, p);
  return os.str();
}

TestProgram read_test_program(std::istream& is) {
  TestProgram p;
  std::string line;
  int ln = 0;

  auto next = [&]() -> bool {
    while (std::getline(is, line)) {
      ++ln;
      if (auto h = line.find('#'); h != std::string::npos) line.erase(h);
      if (!split_ws(line).empty()) return true;
    }
    return false;
  };

  if (!next() || split_ws(line) != std::vector<std::string>{"FSCT-TEST", "1"}) {
    fail(ln, "missing FSCT-TEST 1 header");
  }
  std::size_t cycles = 0;
  bool have_cycles = false;
  while (!have_cycles) {
    if (!next()) fail(ln, "unexpected end of header");
    auto toks = split_ws(line);
    if (toks[0] == "circuit") {
      if (toks.size() != 2) fail(ln, "circuit takes one name");
      p.circuit = toks[1];
    } else if (toks[0] == "inputs") {
      p.input_names.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == "observe") {
      p.observe_names.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == "cycles") {
      if (toks.size() != 2) fail(ln, "cycles takes one number");
      // std::stoul alone would accept "12abc" and throw context-free
      // exceptions on overflow or garbage.
      std::size_t pos = 0;
      unsigned long v = 0;
      try {
        v = std::stoul(toks[1], &pos);
      } catch (const std::exception&) {
        fail(ln, "invalid cycle count '" + toks[1] + "'");
      }
      if (pos != toks[1].size() || v > 100000000) {
        fail(ln, "invalid cycle count '" + toks[1] + "'");
      }
      cycles = static_cast<std::size_t>(v);
      have_cycles = true;
    } else {
      fail(ln, "unknown directive '" + toks[0] + "'");
    }
  }
  for (std::size_t t = 0; t < cycles; ++t) {
    if (!next()) fail(ln, "missing vector line");
    const auto toks = split_ws(line);
    if (toks.size() != 4 || toks[0] != "v" || toks[2] != "|") {
      fail(ln, "expected 'v <stimulus> | <expected>'");
    }
    if (toks[1].size() != p.input_names.size()) {
      fail(ln, "stimulus width != #inputs");
    }
    if (toks[3].size() != p.observe_names.size()) {
      fail(ln, "expected-response width != #observe");
    }
    std::vector<Val> stim, exp;
    try {
      for (char c : toks[1]) stim.push_back(val_from_char(c));
      for (char c : toks[3]) exp.push_back(val_from_char(c));
    } catch (const std::invalid_argument&) {
      fail(ln, "vector contains a character other than 0/1/X");
    }
    p.stimulus.push_back(std::move(stim));
    p.expected.push_back(std::move(exp));
  }
  return p;
}

TestProgram read_test_program_string(const std::string& text) {
  std::istringstream is(text);
  return read_test_program(is);
}

BoundTestProgram bind_test_program(const Netlist& nl, const TestProgram& p) {
  if (p.input_names.size() != nl.inputs().size()) {
    throw std::runtime_error("bind: program has " +
                             std::to_string(p.input_names.size()) +
                             " inputs, netlist has " +
                             std::to_string(nl.inputs().size()));
  }
  // Program order -> netlist inputs() order.
  std::vector<std::size_t> perm(p.input_names.size());
  for (std::size_t i = 0; i < p.input_names.size(); ++i) {
    const NodeId id = nl.find(p.input_names[i]);
    if (id == kNullNode) {
      throw std::runtime_error("bind: unknown input " + p.input_names[i]);
    }
    bool found = false;
    for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
      if (nl.inputs()[k] == id) {
        perm[i] = k;
        found = true;
      }
    }
    if (!found) {
      throw std::runtime_error("bind: " + p.input_names[i] +
                               " is not a primary input");
    }
  }
  BoundTestProgram b;
  b.stimulus.reserve(p.stimulus.size());
  for (const auto& row : p.stimulus) {
    std::vector<Val> v(nl.inputs().size(), Val::X);
    for (std::size_t i = 0; i < row.size(); ++i) v[perm[i]] = row[i];
    b.stimulus.push_back(std::move(v));
  }
  for (const auto& n : p.observe_names) {
    const NodeId id = nl.find(n);
    if (id == kNullNode) {
      throw std::runtime_error("bind: unknown observe net " + n);
    }
    b.observe.push_back(id);
  }
  b.expected = &p.expected;
  return b;
}

std::size_t run_test_program(const Levelizer& lv, const TestProgram& p,
                             const Fault* fault) {
  const BoundTestProgram b = bind_test_program(lv.netlist(), p);
  SeqSim sim(lv);
  Injection inj[1];
  std::span<const Injection> injections;
  if (fault != nullptr) {
    inj[0] = to_injection(*fault);
    injections = std::span<const Injection>(inj, 1);
  }
  std::size_t mismatches = 0;
  for (std::size_t t = 0; t < b.stimulus.size(); ++t) {
    const auto& v = sim.step(b.stimulus[t], injections);
    for (std::size_t o = 0; o < b.observe.size(); ++o) {
      const Val want = (*b.expected)[t][o];
      const Val got = v[b.observe[o]];
      if (want != Val::X && got != Val::X && want != got) ++mismatches;
    }
  }
  return mismatches;
}

TestProgram make_chain_test_program(const ScanModeModel& model,
                                    const PipelineResult& result) {
  const Netlist& nl = model.levelizer().netlist();
  const ScanSequenceBuilder sb(nl, model.design());
  const std::size_t maxlen = model.max_chain_length();

  TestSequence stimulus = sb.alternating(2 * maxlen + 8);
  for (const ScanVector& v : result.vectors) {
    const TestSequence seq =
        sb.apply_comb_vector(v.ff_state, v.pi_vals, maxlen + 2);
    stimulus.insert(stimulus.end(), seq.begin(), seq.end());
  }
  for (const TestSequence& seq : result.s3_sequences) {
    stimulus.insert(stimulus.end(), seq.begin(), seq.end());
  }
  return make_test_program(model, std::move(stimulus));
}

}  // namespace fsct
