#include "core/report.h"

#include <cstdio>
#include <ostream>

namespace fsct {
namespace {

std::string pct(std::size_t part, std::size_t whole) {
  char buf[32];
  const double p = whole ? 100.0 * static_cast<double>(part) /
                               static_cast<double>(whole)
                         : 0.0;
  std::snprintf(buf, sizeof buf, "(%.1f%%)", p);
  return buf;
}

std::string secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fs", s);
  return buf;
}

void row(std::ostream& os, std::initializer_list<std::string> cells,
         std::initializer_list<int> widths) {
  auto w = widths.begin();
  for (const std::string& c : cells) {
    const int width = (w != widths.end()) ? *w++ : 10;
    os << c;
    for (int i = static_cast<int>(c.size()); i < width; ++i) os << ' ';
    os << ' ';
  }
  os << '\n';
}

}  // namespace

void print_table1_header(std::ostream& os) {
  row(os, {"name", "#gates", "#FFs", "#faults", "#chains"},
      {10, 8, 6, 8, 7});
}

void print_table1_row(std::ostream& os, const Table1Row& r) {
  row(os,
      {r.name, std::to_string(r.gates), std::to_string(r.ffs),
       std::to_string(r.faults), std::to_string(r.chains)},
      {10, 8, 6, 8, 7});
}

void print_table2_header(std::ostream& os) {
  row(os, {"name", "#easy", "", "#hard", "", "CPU"},
      {10, 8, 8, 8, 8, 10});
}

void print_table2_row(std::ostream& os, const Table2Row& r) {
  row(os,
      {r.name, std::to_string(r.easy), pct(r.easy, r.total_faults),
       std::to_string(r.hard), pct(r.hard, r.total_faults), secs(r.seconds)},
      {10, 8, 8, 8, 8, 10});
}

void print_table2_total(std::ostream& os, const Table2Row& total) {
  print_table2_row(os, total);
}

void print_table3_header(std::ostream& os) {
  row(os,
      {"name", "#det", "#undetectable", "#undetected", "CPU", "#circ",
       "#det", "#undetectable", "#undetected", "CPU"},
      {10, 7, 13, 11, 9, 9, 7, 13, 11, 9});
}

void print_table3_row(std::ostream& os, const Table3Row& r) {
  row(os,
      {r.name, std::to_string(r.s2_det), std::to_string(r.s2_undetectable),
       std::to_string(r.s2_undetected), secs(r.s2_seconds),
       std::to_string(r.circ_group) + "," + std::to_string(r.circ_final),
       std::to_string(r.s3_det), std::to_string(r.s3_undetectable),
       std::to_string(r.s3_undetected), secs(r.s3_seconds)},
      {10, 7, 13, 11, 9, 9, 7, 13, 11, 9});
}

void print_table3_total(std::ostream& os, const Table3Row& total) {
  print_table3_row(os, total);
}

void print_hotspot_header(std::ostream& os) {
  row(os,
      {"#", "fault", "lvl", "calls", "decisions", "backtracks", "seq_cycles",
       "credits", "wall"},
      {4, 24, 4, 6, 10, 10, 10, 8, 10});
}

void print_hotspot_row(std::ostream& os, const HotspotRow& r) {
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.2fms", r.wall_ms);
  row(os,
      {std::to_string(r.id), r.name.empty() ? "(fault)" : r.name,
       r.level >= 0 ? std::to_string(r.level) : "?",
       std::to_string(r.podem_calls), std::to_string(r.decisions),
       std::to_string(r.backtracks), std::to_string(r.seq_cycles),
       std::to_string(r.credits), wall},
      {4, 24, 4, 6, 10, 10, 10, 8, 10});
}

Table2Row to_table2(const std::string& name, const PipelineResult& r) {
  Table2Row t;
  t.name = name;
  t.total_faults = r.total_faults;
  t.easy = r.easy;
  t.hard = r.hard;
  t.seconds = r.classify_seconds;
  return t;
}

Table3Row to_table3(const std::string& name, const PipelineResult& r) {
  Table3Row t;
  t.name = name;
  t.s2_det = r.s2_detected;
  t.s2_undetectable = r.s2_undetectable;
  t.s2_undetected = r.s2_undetected;
  t.s2_seconds = r.s2_seconds;
  t.circ_group = r.s3_circuits_group;
  t.circ_final = r.s3_circuits_final;
  t.s3_det = r.s3_detected;
  t.s3_undetectable = r.s3_undetectable;
  t.s3_undetected = r.s3_undetected;
  t.s3_seconds = r.s3_seconds;
  return t;
}

}  // namespace fsct
