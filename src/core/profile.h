// Hotspot profiler over the per-fault work-attribution ledger and the trace
// span tree.
//
// build_profile turns a finished run's ObsRegistry into a ProfileDoc: the
// top-K hardest faults (ranked by attributed PODEM wall, then decisions, then
// resolved sequential cycles), per-gate and per-level activity rollups
// (through AttrContext, which maps fault ids to gates/levels/dominance
// representatives), and a per-phase self/total aggregation of the recorded
// spans.  The document serializes as versioned `fsct-profile-v1` JSON, as a
// folded-stack flamegraph ("path;leaf self_us" lines, one per stack, the
// format flamegraph.pl and speedscope ingest), and as a human table (`fsct
// profile`).  parse_profile_json re-reads a profile document — or the
// attribution section of a `fsct-run-report-v2` — so saved reports can be
// re-ranked offline.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/obs.h"
#include "fault/fault.h"
#include "netlist/levelize.h"

namespace fsct {

/// One profiled fault: its identity plus the full attribution row
/// (kNumAttrs columns in Attr order; WallNanos last).
struct ProfileFaultRow {
  std::size_t id = 0;
  std::string name;
  std::int32_t rep = -1;    ///< dominance representative fault id
  std::int32_t gate = -1;   ///< owning gate NodeId
  std::int32_t level = -1;  ///< owning gate's logic level
  std::array<std::uint64_t, kNumAttrs> work{};
};

/// Activity rolled up by gate or by level.
struct ProfileAgg {
  std::int32_t key = -1;       ///< gate NodeId / level number
  std::string name;            ///< gate net name (empty for levels)
  std::uint64_t faults = 0;    ///< distinct fault ids charged under this key
  std::array<std::uint64_t, kNumAttrs> work{};
};

/// One node of the span-tree aggregation: spans with the same ancestry path
/// are merged; self excludes time covered by direct children.
struct ProfilePhase {
  std::string path;  ///< ';'-joined span names root-first, e.g. "step3.groups;s3.group"
  std::uint64_t count = 0;
  double total_us = 0;
  double self_us = 0;
};

struct ProfileDoc {
  std::string circuit;
  std::size_t faults = 0;            ///< ledger size (total fault ids)
  std::size_t active = 0;            ///< fault ids with any charge
  std::vector<ProfileFaultRow> top;  ///< ranked hotlist, hardest first
  std::vector<ProfileAgg> gates;     ///< nonzero gates, same ranking
  std::vector<ProfileAgg> levels;    ///< per level, ascending
  std::vector<ProfilePhase> phases;  ///< span tree, path order
};

/// Builds the fault-id naming sidecar from the model: names via fault_name,
/// gate = the fault's node, level from the levelizer, and the dominance
/// representative via DominanceInfo::rep (identity when `dominance` is off —
/// matching what the pipeline targeted).
AttrContext make_attr_context(const Levelizer& lv, std::span<const Fault> faults,
                              bool dominance);

/// Snapshots `reg`'s attribution ledger + trace spans into a ProfileDoc.
/// `top_k` bounds the fault hotlist and the per-gate rollup (0 = all).
ProfileDoc build_profile(const ObsRegistry& reg, const AttrContext& ctx,
                         const std::string& circuit, std::size_t top_k = 20);

/// Versioned machine-readable form (`"schema": "fsct-profile-v1"`).
void write_profile_json(std::ostream& os, const ProfileDoc& doc);

/// Folded-stack flamegraph export: one "a;b;c self_us" line per phase node
/// with nonzero self time (flamegraph.pl / speedscope format).
void write_folded(std::ostream& os, const ProfileDoc& doc);

/// Parses `fsct-profile-v1` JSON, or the `attribution` section of a
/// `fsct-run-report-v2`, back into a ProfileDoc.  Throws JsonParseError
/// (with "<name>: line N:" anchoring) on malformed or unsupported input.
ProfileDoc parse_profile_json(const std::string& text, const std::string& name);

/// Human-readable rendering: the hardest-fault table, the top gates, and the
/// phase self/total breakdown.
void print_profile(std::ostream& os, const ProfileDoc& doc,
                   std::size_t top_k = 20);

}  // namespace fsct
