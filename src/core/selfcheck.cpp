#include "core/selfcheck.h"

#include <algorithm>
#include <optional>
#include <random>
#include <sstream>
#include <stdexcept>

#include "bench_circuits/generator.h"
#include "core/classify.h"
#include "core/test_export.h"
#include "fault/comb_fault_sim.h"
#include "fault/seq_fault_sim.h"
#include "netlist/bench_io.h"
#include "netlist/levelize.h"
#include "scan/mux_scan.h"
#include "scan/scan_sequences.h"
#include "scan/tpi.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

constexpr const char* kOracleNames[kNumOracles] = {
    "packed-sim", "ppsfp-seq", "cat3-scanout", "jobs-identity",
    "export-replay", "dominance", "simd", "shard"};

ShardOracleHook g_shard_oracle_hook = nullptr;

/// splitmix64: decorrelates per-iteration / per-oracle seeds so running a
/// subset of oracles (e.g. during shrinking) draws the same random data as
/// the full run.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Val rand_bit(std::mt19937_64& rng) {
  return (rng() & 1) ? Val::One : Val::Zero;
}

/// The scan-inserted circuit plus everything the oracles need.  The netlist
/// is owned here, so Levelizer/model references stay valid.
struct ScannedWorld {
  Netlist nl;
  ScanDesign design;
  std::optional<Levelizer> lv;
  std::optional<ScanModeModel> model;
  std::vector<Fault> faults;           // collapsed universe
  std::vector<ChainFaultInfo> info;    // per fault
  std::size_t chain_ffs = 0;           // total FFs on chains
};

std::string build_world(const Netlist& pre_scan, const SelfcheckConfig& cfg,
                        ScannedWorld& w) {
  w.nl = pre_scan;
  try {
    if (cfg.use_tpi) {
      TpiOptions topt;
      topt.num_chains = cfg.chains;
      topt.scan_permille = cfg.scan_permille;
      w.design = run_tpi(w.nl, topt);
    } else {
      MuxScanOptions mopt;
      mopt.num_chains = cfg.chains;
      w.design = insert_mux_scan(w.nl, mopt);
    }
  } catch (const std::exception& e) {
    return std::string("scan insertion threw: ") + e.what();
  }
  if (std::string err = w.nl.validate(); !err.empty()) {
    return "scan insertion produced invalid netlist: " + err;
  }
  w.lv.emplace(w.nl);
  w.model.emplace(*w.lv, w.design);
  if (std::string err = w.model->check(); !err.empty()) {
    return "scan-mode invariant violated: " + err;
  }
  for (const ScanChain& c : w.design.chains) w.chain_ffs += c.length();
  w.faults = collapsed_fault_list(w.nl);
  ChainFaultClassifier cls(*w.model);
  w.info = cls.classify_all(w.faults);
  return "";
}

// ---- O1: packed combinational sim == scalar sim on binary inputs ----------

std::string oracle_packed_sim(const ScannedWorld& w, std::mt19937_64 rng) {
  const Netlist& nl = w.nl;
  std::vector<NodeId> sources = nl.inputs();
  for (NodeId ff : nl.dffs()) sources.push_back(ff);

  std::vector<PackedVal> packed(nl.size());
  std::vector<std::vector<Val>> scalar_src(64,
                                           std::vector<Val>(sources.size()));
  for (unsigned k = 0; k < 64; ++k) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const Val v = rand_bit(rng);
      scalar_src[k][s] = v;
      packed[sources[s]].set(k, v);
    }
  }
  PackedCombSim psim(*w.lv);
  psim.run(packed);

  CombSim csim(*w.lv);
  std::vector<Val> values(nl.size(), Val::X);
  for (unsigned k = 0; k < 64; ++k) {
    std::fill(values.begin(), values.end(), Val::X);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      values[sources[s]] = scalar_src[k][s];
    }
    csim.run(values);
    for (NodeId id = 0; id < nl.size(); ++id) {
      if (packed[id].at(k) != values[id]) {
        return std::string(kOracleNames[0]) + ": net " + nl.node_name(id) +
               " pattern " + std::to_string(k) + ": packed=" +
               val_char(packed[id].at(k)) + " serial=" + val_char(values[id]);
      }
    }
  }
  return "";
}

// ---- O2: PPSFP detections of chain-untouched faults reproduce as scan
//          sequences (full-scan designs only) -------------------------------

std::string oracle_ppsfp_seq(const ScannedWorld& w, std::mt19937_64 rng) {
  const Netlist& nl = w.nl;
  if (w.chain_ffs != nl.dffs().size() || w.chain_ffs == 0) return "";

  const ScanSequenceBuilder sb(nl, w.design);
  const std::size_t maxlen = w.model->max_chain_length();
  const std::vector<Val> base = sb.base_vector(Val::Zero);

  // 64 random scan-mode patterns.  Scan-in PIs are held at the shift fill
  // value (0) so the pattern matches what apply_comb_vector presents during
  // the observe cycles.  A quarter of the free bits are X: PPSFP detection is
  // binary-opposite-only, and refining X to a concrete value (which the scan
  // load does for FF state) can never flip a binary node, so any detection
  // claimed here must survive the conversion.
  std::vector<char> is_scan_in(nl.size(), 0);
  for (const ScanChain& c : w.design.chains) is_scan_in[c.scan_in] = 1;
  auto rand_3val = [&rng]() {
    const auto r = rng() & 7;
    return r < 2 ? Val::X : (r & 1) ? Val::One : Val::Zero;
  };
  std::vector<CombPattern> pats(64);
  for (auto& p : pats) {
    p.resize(nl.inputs().size() + nl.dffs().size());
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const NodeId pi = nl.inputs()[i];
      p[i] = w.design.is_constrained(pi) ? base[i]
             : is_scan_in[pi]            ? Val::Zero
                                         : rand_3val();
    }
    for (std::size_t i = nl.inputs().size(); i < p.size(); ++i) {
      p[i] = rand_3val();
    }
  }

  std::vector<NodeId> comb_observe = nl.outputs();
  for (NodeId ff : nl.dffs()) comb_observe.push_back(ff);
  const CombFaultSim ppsfp(*w.lv, comb_observe);
  const CombFaultSimResult cr = ppsfp.run(pats, w.faults);

  std::vector<NodeId> seq_observe = nl.outputs();
  for (NodeId so : w.model->scan_outs()) {
    if (std::find(seq_observe.begin(), seq_observe.end(), so) ==
        seq_observe.end()) {
      seq_observe.push_back(so);
    }
  }
  const SeqFaultSim ssim(*w.lv, seq_observe);

  int converted = 0;
  for (std::size_t fi = 0; fi < w.faults.size(); ++fi) {
    if (cr.detect_pattern[fi] < 0) continue;
    if (w.info[fi].category != ChainFaultCategory::NotAffecting) continue;
    if (++converted > 24) break;  // bound per-circuit cost
    const CombPattern& p =
        pats[static_cast<std::size_t>(cr.detect_pattern[fi])];
    const std::vector<Val> pi_vals(p.begin(),
                                   p.begin() + static_cast<std::ptrdiff_t>(
                                                   nl.inputs().size()));
    const std::vector<Val> ff_state(
        p.begin() + static_cast<std::ptrdiff_t>(nl.inputs().size()), p.end());
    const TestSequence seq = sb.apply_comb_vector(ff_state, pi_vals,
                                                  maxlen + 2);
    const Fault one[1] = {w.faults[fi]};
    if (ssim.run_serial(seq, one).detect_cycle[0] < 0) {
      return std::string(kOracleNames[1]) + ": " + fault_name(nl, w.faults[fi]) +
             " detected by PPSFP pattern " +
             std::to_string(cr.detect_pattern[fi]) +
             " but its converted scan sequence misses it";
    }
  }
  return "";
}

// ---- O3: category-3 faults never corrupt the scan-out stream --------------

std::string oracle_cat3(const ScannedWorld& w, std::mt19937_64 rng) {
  const Netlist& nl = w.nl;
  std::vector<Fault> cat3;
  for (std::size_t i = 0; i < w.faults.size(); ++i) {
    if (w.info[i].category == ChainFaultCategory::NotAffecting) {
      cat3.push_back(w.faults[i]);
    }
  }
  std::vector<NodeId> scan_outs = w.model->scan_outs();
  scan_outs.erase(std::remove(scan_outs.begin(), scan_outs.end(), kNullNode),
                  scan_outs.end());
  if (cat3.empty() || scan_outs.empty()) return "";

  // Random shift data AND random free-PI data: chain transparency is
  // established structurally by TPI, so category-3 cleanliness may not depend
  // on the mission inputs either.
  const ScanSequenceBuilder sb(nl, w.design);
  std::vector<char> is_scan_in(nl.size(), 0);
  for (const ScanChain& c : w.design.chains) is_scan_in[c.scan_in] = 1;
  const std::size_t cycles = 2 * w.model->max_chain_length() + 16;
  TestSequence seq;
  seq.reserve(cycles);
  for (std::size_t t = 0; t < cycles; ++t) {
    std::vector<Val> v = sb.base_vector(Val::Zero);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      if (!w.design.is_constrained(nl.inputs()[i])) v[i] = rand_bit(rng);
    }
    seq.push_back(std::move(v));
  }

  const SeqFaultSim sim(*w.lv, scan_outs);
  const SeqFaultSimResult r = sim.run(seq, cat3);
  for (std::size_t i = 0; i < cat3.size(); ++i) {
    if (r.detect_cycle[i] >= 0) {
      return std::string(kOracleNames[2]) + ": " + fault_name(nl, cat3[i]) +
             " classified category-3 but corrupts the scan-out at cycle " +
             std::to_string(r.detect_cycle[i]);
    }
  }
  return "";
}

// ---- O4/O5 shared pipeline run --------------------------------------------

PipelineOptions fuzz_pipeline_options(int jobs) {
  PipelineOptions opt;
  opt.jobs = jobs;
  opt.verify_easy = true;
  opt.verify_seq = true;
  // Wall-clock budgets off: outcomes must depend only on the inputs for the
  // jobs-identity comparison to be meaningful.
  opt.comb_time_limit_ms = 0;
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  opt.comb_backtrack_limit = 300;
  opt.seq_backtrack_limit = 600;
  opt.final_backtrack_limit = 1200;
  opt.random_patterns = 16;
  opt.frame_cap = 48;
  opt.final_extra_frames = 4;
  return opt;
}

std::string oracle_jobs_identity(const ScannedWorld& w,
                                 const PipelineResult& serial, int jobs) {
  const PipelineResult parallel_r =
      run_fsct_pipeline(*w.model, w.faults, fuzz_pipeline_options(jobs));
  if (std::string d = diff_pipeline_results(serial, parallel_r); !d.empty()) {
    return std::string(kOracleNames[3]) + ": jobs=1 vs jobs=" +
           std::to_string(jobs) + ": " + d;
  }
  return "";
}

std::string oracle_shard(const ScannedWorld& w, const PipelineResult& serial,
                         std::mt19937_64 rng) {
  if (g_shard_oracle_hook == nullptr) {
    return std::string(kOracleNames[7]) +
           ": oracle requested but no sharded runner is registered "
           "(call register_shard_oracle() at startup)";
  }
  const int shards = 2 + static_cast<int>(rng() % 3);
  PipelineResult sharded;
  try {
    sharded =
        g_shard_oracle_hook(*w.model, w.faults, fuzz_pipeline_options(1),
                            shards);
  } catch (const std::exception& e) {
    return std::string(kOracleNames[7]) + ": shards=" +
           std::to_string(shards) + " threw: " + e.what();
  }
  if (std::string d = diff_pipeline_results(serial, sharded); !d.empty()) {
    return std::string(kOracleNames[7]) + ": 1 process vs shards=" +
           std::to_string(shards) + ": " + d;
  }
  return "";
}

std::string oracle_export_replay(const ScannedWorld& w,
                                 const PipelineResult& serial,
                                 std::mt19937_64 rng) {
  const Netlist& nl = w.nl;
  const TestProgram p = make_chain_test_program(*w.model, serial);
  TestProgram q;
  try {
    q = read_test_program_string(write_test_program_string(p));
  } catch (const std::exception& e) {
    return std::string(kOracleNames[4]) + ": round-trip parse threw: " +
           e.what();
  }
  if (q.input_names != p.input_names || q.observe_names != p.observe_names ||
      q.stimulus != p.stimulus || q.expected != p.expected) {
    return std::string(kOracleNames[4]) +
           ": program changed across write/read round-trip";
  }
  if (const std::size_t mm = run_test_program(*w.lv, q); mm != 0) {
    return std::string(kOracleNames[4]) + ": fault-free replay reports " +
           std::to_string(mm) + " strobe mismatches";
  }
  // Covered faults must be killed on replay (3-valued monotonicity: a test
  // verified from the all-X state still detects from any concrete state).
  std::vector<std::size_t> covered;
  for (std::size_t i = 0; i < w.faults.size(); ++i) {
    const FaultOutcome o = serial.outcome[i];
    if (o == FaultOutcome::EasyAlternating && serial.easy_verified !=
        serial.easy) {
      continue;  // only sample easy faults when step 1 verified all of them
    }
    if (o == FaultOutcome::EasyAlternating ||
        o == FaultOutcome::DetectedFlush || o == FaultOutcome::DetectedComb ||
        o == FaultOutcome::DetectedSeq || o == FaultOutcome::DetectedFinal) {
      covered.push_back(i);
    }
  }
  std::shuffle(covered.begin(), covered.end(), rng);
  if (covered.size() > 6) covered.resize(6);
  for (std::size_t i : covered) {
    if (run_test_program(*w.lv, q, &w.faults[i]) == 0) {
      return std::string(kOracleNames[4]) + ": " + fault_name(nl, w.faults[i]) +
             " is covered by the program but replay shows no mismatch";
    }
  }
  return "";
}

// ---- O6: dominance + ledger credit agrees with the plain pipeline ----------
//
// The two modes may legitimately disagree on *how* a fault is covered (a
// comb-untestable fault can still be flush-detectable; vector sets and abort
// budgets differ once the target order changes), so raw outcome equality is
// the wrong check.  The ground truth is the exported program: whenever the
// detected status differs, the side claiming detection must back the claim
// with real strobe mismatches on replay.

bool claims_detected(FaultOutcome o) {
  return o == FaultOutcome::DetectedFlush || o == FaultOutcome::DetectedComb ||
         o == FaultOutcome::DetectedSeq || o == FaultOutcome::DetectedFinal;
}

std::string oracle_dominance(const ScannedWorld& w,
                             const PipelineResult& dom_r,
                             std::mt19937_64 rng) {
  const Netlist& nl = w.nl;
  PipelineOptions nopt = fuzz_pipeline_options(1);
  nopt.dominance = false;
  const PipelineResult plain = run_fsct_pipeline(*w.model, w.faults, nopt);

  if (dom_r.easy != plain.easy || dom_r.hard != plain.hard) {
    return std::string(kOracleNames[5]) +
           ": classification depends on the dominance flag (easy " +
           std::to_string(dom_r.easy) + " vs " + std::to_string(plain.easy) +
           ", hard " + std::to_string(dom_r.hard) + " vs " +
           std::to_string(plain.hard) + ")";
  }
  if (plain.dominance_targets != 0 || plain.flush_detected != 0 ||
      plain.ledger_dropped != 0) {
    return std::string(kOracleNames[5]) +
           ": --no-dominance run reports dominance-layer activity";
  }

  const TestProgram dp = make_chain_test_program(*w.model, dom_r);
  const TestProgram pp = make_chain_test_program(*w.model, plain);
  std::vector<std::size_t> credit_sample;  // agreeing dominance detections
  for (std::size_t i = 0; i < w.faults.size(); ++i) {
    const bool d1 = claims_detected(dom_r.outcome[i]);
    const bool d0 = claims_detected(plain.outcome[i]);
    if (d1 == d0) {
      // Spot-check the credit paths even when both sides agree: flush and
      // ledger verdicts (DetectedFlush / DetectedSeq) rest on simulation
      // credit, so sample them for replay below.
      if (d1 && (dom_r.outcome[i] == FaultOutcome::DetectedFlush ||
                 dom_r.outcome[i] == FaultOutcome::DetectedSeq)) {
        credit_sample.push_back(i);
      }
      continue;
    }
    const TestProgram& claim = d1 ? dp : pp;
    if (run_test_program(*w.lv, claim, &w.faults[i]) == 0) {
      return std::string(kOracleNames[5]) + ": " + fault_name(nl, w.faults[i]) +
             (d1 ? " detected only with dominance"
                 : " detected only without dominance") +
             " and the claiming program shows no mismatch on replay";
    }
  }
  std::shuffle(credit_sample.begin(), credit_sample.end(), rng);
  if (credit_sample.size() > 6) credit_sample.resize(6);
  for (std::size_t i : credit_sample) {
    if (run_test_program(*w.lv, dp, &w.faults[i]) == 0) {
      return std::string(kOracleNames[5]) + ": " + fault_name(nl, w.faults[i]) +
             " carries dominance-mode detection credit but the exported "
             "program shows no mismatch on replay";
    }
  }
  return "";
}

// ---- O7: serial vs W-wide sequential fault simulation ----------------------

std::string oracle_simd(const ScannedWorld& w, std::mt19937_64 rng) {
  const Netlist& nl = w.nl;
  std::vector<NodeId> observe = nl.outputs();
  for (NodeId so : w.model->scan_outs()) {
    if (so != kNullNode &&
        std::find(observe.begin(), observe.end(), so) == observe.end()) {
      observe.push_back(so);
    }
  }
  if (observe.empty()) return "";

  // Random stimulus with a mix of binary and X data, long enough for fault
  // effects to reach the chain; random initial state.
  const std::size_t cycles = w.model->max_chain_length() + 8;
  auto rand_3val = [&rng]() {
    const auto r = rng() & 7;
    return r < 2 ? Val::X : (r & 1) ? Val::One : Val::Zero;
  };
  TestSequence seq;
  seq.reserve(cycles);
  for (std::size_t t = 0; t < cycles; ++t) {
    std::vector<Val> v(nl.inputs().size());
    for (Val& x : v) x = rand_3val();
    seq.push_back(std::move(v));
  }
  const Val init = (rng() & 1) ? Val::X : Val::Zero;

  // Enough random faults to span several packed words at every width.
  std::vector<Fault> fs = w.faults;
  std::shuffle(fs.begin(), fs.end(), rng);
  if (fs.size() > 96) fs.resize(96);

  const SeqFaultSim ref(*w.lv, observe, 64);
  const SeqFaultSimResult want = ref.run_serial(seq, fs, init);

  for (const int width : kSimdWidths) {
    const SeqFaultSim sim(*w.lv, observe, width);
    const SeqFaultSimResult got = sim.run(seq, fs, init);
    for (std::size_t i = 0; i < fs.size(); ++i) {
      if (got.detect_cycle[i] != want.detect_cycle[i]) {
        return std::string(kOracleNames[6]) + ": " + fault_name(nl, fs[i]) +
               " width " + std::to_string(width) + " run() detect cycle " +
               std::to_string(got.detect_cycle[i]) + " vs serial " +
               std::to_string(want.detect_cycle[i]);
      }
    }
    std::vector<FaultSeqPair> pairs;
    pairs.reserve(fs.size());
    for (const Fault& f : fs) pairs.push_back({f, &seq});
    const std::vector<int> pg = sim.run_pairs(pairs, init);
    for (std::size_t i = 0; i < fs.size(); ++i) {
      if (pg[i] != want.detect_cycle[i]) {
        return std::string(kOracleNames[6]) + ": " + fault_name(nl, fs[i]) +
               " width " + std::to_string(width) + " run_pairs() detect cycle " +
               std::to_string(pg[i]) + " vs serial " +
               std::to_string(want.detect_cycle[i]);
      }
    }
  }
  return "";
}

}  // namespace

const char* oracle_name(std::size_t index) { return kOracleNames[index]; }

void set_shard_oracle_hook(ShardOracleHook hook) {
  g_shard_oracle_hook = hook;
}

unsigned parse_oracle_mask(const std::string& csv) {
  if (csv == "all" || csv.empty()) return kOracleAll;
  unsigned mask = 0;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    bool found = false;
    for (std::size_t i = 0; i < kNumOracles; ++i) {
      if (tok == kOracleNames[i]) {
        mask |= 1u << i;
        found = true;
      }
    }
    if (!found) {
      std::string names;
      for (std::size_t i = 0; i < kNumOracles; ++i) {
        names += std::string(i ? ", " : "") + kOracleNames[i];
      }
      throw std::runtime_error("unknown oracle '" + tok + "' (known: " +
                               names + ", all)");
    }
  }
  return mask;
}

std::string diff_pipeline_results(const PipelineResult& a,
                                  const PipelineResult& b) {
  auto num = [](std::size_t x) { return std::to_string(x); };
  if (a.total_faults != b.total_faults) {
    return "total_faults " + num(a.total_faults) + " vs " + num(b.total_faults);
  }
  if (a.easy != b.easy) return "easy " + num(a.easy) + " vs " + num(b.easy);
  if (a.hard != b.hard) return "hard " + num(a.hard) + " vs " + num(b.hard);
  if (a.easy_verified != b.easy_verified) {
    return "easy_verified " + num(a.easy_verified) + " vs " +
           num(b.easy_verified);
  }
  if (a.dominance_targets != b.dominance_targets) {
    return "dominance_targets " + num(a.dominance_targets) + " vs " +
           num(b.dominance_targets);
  }
  if (a.flush_detected != b.flush_detected) {
    return "flush_detected " + num(a.flush_detected) + " vs " +
           num(b.flush_detected);
  }
  if (a.ledger_dropped != b.ledger_dropped) {
    return "ledger_dropped " + num(a.ledger_dropped) + " vs " +
           num(b.ledger_dropped);
  }
  if (a.s2_detected != b.s2_detected) {
    return "s2_detected " + num(a.s2_detected) + " vs " + num(b.s2_detected);
  }
  if (a.s2_undetectable != b.s2_undetectable) {
    return "s2_undetectable " + num(a.s2_undetectable) + " vs " +
           num(b.s2_undetectable);
  }
  if (a.s2_undetected != b.s2_undetected) {
    return "s2_undetected " + num(a.s2_undetected) + " vs " +
           num(b.s2_undetected);
  }
  if (a.s2_vectors != b.s2_vectors || a.vectors != b.vectors) {
    return "step-2 vector set differs";
  }
  if (a.detection_curve != b.detection_curve) return "detection_curve differs";
  if (a.s3_circuits_group != b.s3_circuits_group ||
      a.s3_circuits_final != b.s3_circuits_final) {
    return "s3 circuit-model counts differ";
  }
  if (a.s3_detected != b.s3_detected) {
    return "s3_detected " + num(a.s3_detected) + " vs " + num(b.s3_detected);
  }
  if (a.s3_undetectable != b.s3_undetectable) {
    return "s3_undetectable " + num(a.s3_undetectable) + " vs " +
           num(b.s3_undetectable);
  }
  if (a.s3_undetected != b.s3_undetected) {
    return "s3_undetected " + num(a.s3_undetected) + " vs " +
           num(b.s3_undetected);
  }
  if (a.s3_unverified != b.s3_unverified) {
    return "s3_unverified " + num(a.s3_unverified) + " vs " +
           num(b.s3_unverified);
  }
  if (a.s3_sequence_fault != b.s3_sequence_fault) {
    return "s3 sequence fault order differs";
  }
  if (a.s3_sequences != b.s3_sequences) return "s3 sequence contents differ";
  for (std::size_t i = 0; i < a.outcome.size(); ++i) {
    if (a.outcome[i] != b.outcome[i]) {
      return "outcome[" + num(i) + "] " +
             num(static_cast<std::size_t>(a.outcome[i])) + " vs " +
             num(static_cast<std::size_t>(b.outcome[i]));
    }
  }
  return "";
}

std::string selfcheck_circuit(const Netlist& pre_scan,
                              const SelfcheckConfig& cfg,
                              std::uint64_t (*ran)[kNumOracles]) {
  ScannedWorld w;
  if (std::string err = build_world(pre_scan, cfg, w); !err.empty()) {
    return err;
  }
  if (w.chain_ffs == 0) return "";  // no chain, nothing to cross-check

  auto oracle_rng = [&](std::size_t i) {
    return std::mt19937_64(mix(cfg.check_seed + 0x517fc8ecull * (i + 1)));
  };
  auto count = [&](std::size_t i) {
    if (ran != nullptr) ++(*ran)[i];
  };

  if (cfg.oracles & kOraclePackedSim) {
    count(0);
    if (std::string d = oracle_packed_sim(w, oracle_rng(0)); !d.empty()) {
      return d;
    }
  }
  if (cfg.oracles & kOraclePpsfpSeq) {
    count(1);
    if (std::string d = oracle_ppsfp_seq(w, oracle_rng(1)); !d.empty()) {
      return d;
    }
  }
  if (cfg.oracles & kOracleCat3) {
    count(2);
    if (std::string d = oracle_cat3(w, oracle_rng(2)); !d.empty()) return d;
  }
  if (cfg.oracles & kOracleSimd) {
    count(6);
    if (std::string d = oracle_simd(w, oracle_rng(6)); !d.empty()) return d;
  }
  if (cfg.oracles &
      (kOracleJobs | kOracleExport | kOracleDominance | kOracleShard)) {
    const PipelineResult serial =
        run_fsct_pipeline(*w.model, w.faults, fuzz_pipeline_options(1));
    if (cfg.oracles & kOracleJobs) {
      count(3);
      if (std::string d = oracle_jobs_identity(w, serial, cfg.jobs);
          !d.empty()) {
        return d;
      }
    }
    if (cfg.oracles & kOracleExport) {
      count(4);
      if (std::string d = oracle_export_replay(w, serial, oracle_rng(4));
          !d.empty()) {
        return d;
      }
    }
    if (cfg.oracles & kOracleDominance) {
      count(5);
      if (std::string d = oracle_dominance(w, serial, oracle_rng(5));
          !d.empty()) {
        return d;
      }
    }
    if (cfg.oracles & kOracleShard) {
      count(7);
      if (std::string d = oracle_shard(w, serial, oracle_rng(7));
          !d.empty()) {
        return d;
      }
    }
  }
  return "";
}

// ---- shrinker --------------------------------------------------------------

namespace {

/// One structural edit applied while re-emitting the netlist as .bench text.
struct EmitEdit {
  NodeId skip = kNullNode;          ///< drop this node's definition
  NodeId replace_from = kNullNode;  ///< reads of this node ...
  NodeId replace_to = kNullNode;    ///< ... become reads of this node
  NodeId drop_po = kNullNode;       ///< remove this PO marking
  NodeId prune_gate = kNullNode;    ///< drop pin `prune_pin` of this gate
  int prune_pin = -1;
  const std::vector<char>* live = nullptr;  ///< emit only flagged nodes
};

/// Re-emits `nl` with `e` applied and reparses.  Returns nullopt when the
/// edit yields an unparsable or invalid circuit (cycle, bad arity, ...).
std::optional<Netlist> rebuild(const Netlist& nl, const EmitEdit& e) {
  auto alive = [&](NodeId id) {
    return id != e.skip && (e.live == nullptr || (*e.live)[id] != 0);
  };
  auto read_name = [&](NodeId id) -> const std::string& {
    return nl.node_name(id == e.replace_from ? e.replace_to : id);
  };
  std::ostringstream out;
  for (NodeId id : nl.inputs()) {
    if (alive(id)) out << "INPUT(" << nl.node_name(id) << ")\n";
  }
  bool have_po = false;
  for (NodeId id : nl.outputs()) {
    if (id == e.drop_po) continue;
    NodeId o = (id == e.replace_from) ? e.replace_to : id;
    if (o == e.skip || !alive(o)) continue;
    out << "OUTPUT(" << nl.node_name(o) << ")\n";
    have_po = true;
  }
  if (!have_po) return std::nullopt;
  for (NodeId id = 0; id < nl.size(); ++id) {
    if (nl.type(id) == GateType::Input || !alive(id)) continue;
    out << nl.node_name(id) << " = " << gate_type_name(nl.type(id)) << "(";
    bool first = true;
    const auto fins = nl.fanins(id);
    for (std::size_t p = 0; p < fins.size(); ++p) {
      if (id == e.prune_gate && static_cast<int>(p) == e.prune_pin) continue;
      const NodeId f = fins[p];
      if (!alive(f == e.replace_from ? e.replace_to : f)) return std::nullopt;
      if (!first) out << ", ";
      first = false;
      out << read_name(f);
    }
    out << ")\n";
  }
  try {
    Netlist c = read_bench_string(out.str(), nl.name());
    if (!c.validate().empty() || c.inputs().empty() || c.outputs().empty()) {
      return std::nullopt;
    }
    return c;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Live flags: everything backward-reachable from the POs (through DFFs).
std::vector<char> live_set(const Netlist& nl) {
  std::vector<char> live(nl.size(), 0);
  std::vector<NodeId> work;
  for (NodeId id : nl.outputs()) {
    if (!live[id]) {
      live[id] = 1;
      work.push_back(id);
    }
  }
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    for (NodeId f : nl.fanins(id)) {
      if (f != kNullNode && !live[f]) {
        live[f] = 1;
        work.push_back(f);
      }
    }
  }
  // PIs stay in the interface (dropping them is a separate, explicit edit).
  for (NodeId id : nl.inputs()) live[id] = 1;
  return live;
}

}  // namespace

Netlist shrink_netlist(const Netlist& start,
                       const std::function<bool(const Netlist&)>& still_fails,
                       int budget) {
  Netlist cur = start;
  int evals = 0;
  auto try_accept = [&](std::optional<Netlist> cand) {
    if (!cand || evals >= budget) return false;
    ++evals;
    if (!still_fails(*cand)) return false;
    cur = std::move(*cand);
    return true;
  };

  bool progress = true;
  while (progress && evals < budget) {
    progress = false;

    // Strip dead logic first: free size reduction when the failure persists.
    {
      const std::vector<char> live = live_set(cur);
      if (std::count(live.begin(), live.end(), 0) > 0) {
        EmitEdit e;
        e.live = &live;
        progress |= try_accept(rebuild(cur, e));
      }
    }

    // Bypass gates / flip-flops, highest id (latest logic) first.
    for (NodeId id = static_cast<NodeId>(cur.size()); id-- > 0 && !progress;) {
      const GateType t = cur.type(id);
      if (t == GateType::Input) continue;
      std::vector<NodeId> tried;
      for (NodeId f : cur.fanins(id)) {
        if (std::find(tried.begin(), tried.end(), f) != tried.end()) continue;
        tried.push_back(f);
        EmitEdit e;
        e.skip = id;
        e.replace_from = id;
        e.replace_to = f;
        if (try_accept(rebuild(cur, e))) {
          progress = true;
          break;
        }
        if (evals >= budget) break;
      }
    }
    if (progress) continue;

    // Drop a PO marking (keep at least one).
    if (cur.outputs().size() > 1) {
      for (NodeId po : cur.outputs()) {
        EmitEdit e;
        e.drop_po = po;
        if (try_accept(rebuild(cur, e))) {
          progress = true;
          break;
        }
        if (evals >= budget) break;
      }
    }
    if (progress) continue;

    // Prune one fanin of a multi-input gate.
    for (NodeId id = static_cast<NodeId>(cur.size()); id-- > 0 && !progress;) {
      const GateType t = cur.type(id);
      if (t == GateType::Mux || t == GateType::Dff || !is_combinational(t)) {
        continue;
      }
      const std::size_t n = cur.fanins(id).size();
      if (n < 2) continue;
      for (std::size_t p = 0; p < n; ++p) {
        EmitEdit e;
        e.prune_gate = id;
        e.prune_pin = static_cast<int>(p);
        if (try_accept(rebuild(cur, e))) {
          progress = true;
          break;
        }
        if (evals >= budget) break;
      }
    }

    // Drop an unused PI (keep at least two so TPI has a free PI to pin).
    for (std::size_t i = cur.inputs().size();
         i-- > 0 && !progress && cur.inputs().size() > 2;) {
      const NodeId pi = cur.inputs()[i];
      bool used = false;
      for (NodeId id = 0; id < cur.size() && !used; ++id) {
        for (NodeId f : cur.fanins(id)) used |= (f == pi);
      }
      if (used || cur.is_output(pi)) continue;
      EmitEdit e;
      e.skip = pi;
      if (try_accept(rebuild(cur, e))) progress = true;
      if (evals >= budget) break;
    }
  }
  return cur;
}

// ---- fuzz driver -----------------------------------------------------------

namespace {

/// Randomly corrupts bench text; the parser must reject or accept it without
/// crashing.  Returns a diagnostic only for the "crash" class we can observe
/// in-process: an exception that is not std::exception.
std::string parser_probe(const std::string& text, std::mt19937_64& rng) {
  std::string s = text;
  const int edits = 1 + static_cast<int>(rng() % 4);
  for (int k = 0; k < edits && !s.empty(); ++k) {
    switch (rng() % 5) {
      case 0:  // flip one byte to a random printable / control character
        s[rng() % s.size()] = static_cast<char>(rng() % 96 + 32);
        break;
      case 1:  // truncate
        s.resize(rng() % s.size());
        break;
      case 2:  // duplicate a slice
        {
          const std::size_t a = rng() % s.size();
          const std::size_t n = std::min<std::size_t>(rng() % 40, s.size() - a);
          s.insert(rng() % s.size(), s.substr(a, n));
        }
        break;
      case 3:  // inject a hostile line
        {
          static const char* kLines[] = {
              "x = AND()", "x = MUX(a)", "y = DFF(y)", "INPUT()",
              "OUTPUT(nosuch)", "a = FROB(b)", "= AND(a, b)", "a = AND(a, a)",
              "INPUT(pi0)", "cycles 99999999999999999999",
          };
          s.insert(rng() % s.size(),
                   std::string("\n") + kLines[rng() % 10] + "\n");
        }
        break;
      case 4:  // delete a slice
        {
          const std::size_t a = rng() % s.size();
          s.erase(a, rng() % 40);
        }
        break;
    }
  }
  try {
    const Netlist nl = read_bench_string(s, "mutated");
    (void)nl;
  } catch (const std::exception&) {
    // rejected cleanly — fine
  } catch (...) {
    return "bench parser threw a non-std exception on mutated input";
  }
  return "";
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opt) {
  FuzzReport rep;
  auto say = [&](const std::string& line) {
    if (opt.progress) opt.progress(line);
  };
  for (int i = 0; i < opt.iterations; ++i) {
    const int iter = opt.offset + i;
    std::mt19937_64 rng(mix(opt.seed ^ (0xa02bdbf7bb3c0a7ull *
                                        (static_cast<std::uint64_t>(iter) + 1))));
    RandomCircuitSpec spec;
    spec.name = "fuzz" + std::to_string(iter);
    spec.seed = rng();
    spec.num_gates = opt.min_gates +
                     static_cast<int>(rng() % static_cast<std::uint64_t>(
                                          opt.max_gates - opt.min_gates + 1));
    spec.num_ffs = opt.min_ffs +
                   static_cast<int>(rng() % static_cast<std::uint64_t>(
                                        opt.max_ffs - opt.min_ffs + 1));
    spec.num_pis = 4 + static_cast<int>(rng() % 5);
    spec.num_pos = 2 + static_cast<int>(rng() % 4);
    spec.locality_pct = 40 + static_cast<int>(rng() % 55);
    spec.control_pct = 5 + static_cast<int>(rng() % 30);

    SelfcheckConfig cfg;
    cfg.oracles = opt.oracles;
    cfg.jobs = opt.jobs;
    cfg.check_seed = rng();
    cfg.use_tpi = (rng() & 1) != 0;
    cfg.chains = 1 + static_cast<int>(rng() % 2);
    cfg.scan_permille =
        (cfg.use_tpi && rng() % 4 == 0)
            ? 600 + static_cast<int>(rng() % 401)
            : 1000;

    const Netlist pre = make_random_sequential(spec);
    std::string diag = selfcheck_circuit(pre, cfg, &rep.oracle_runs);

    if (diag.empty() && opt.parser_stress) {
      std::mt19937_64 prng(mix(cfg.check_seed ^ 0x70a3b6e5ull));
      ++rep.parser_probes;
      diag = parser_probe(write_bench_string(pre), prng);
    }

    if (!diag.empty()) {
      say("iteration " + std::to_string(iter) + " FAILED: " + diag);
      FuzzFailure f;
      f.iteration = iter;
      f.circuit_seed = spec.seed;
      f.config = cfg;
      f.diagnostic = diag;
      // Shrink against the failing configuration only (same check seed, so
      // the oracles redraw identical random data on every candidate), and
      // pinned to the same oracle: a candidate that merely breaks scan
      // insertion or trips a different check is not the same bug.
      if (opt.shrink) {
        const std::string want = diag.substr(0, diag.find(':'));
        auto still_fails = [&](const Netlist& cand) {
          const std::string d = selfcheck_circuit(cand, cfg);
          return !d.empty() && d.substr(0, d.find(':')) == want;
        };
        f.minimized = shrink_netlist(pre, still_fails, opt.shrink_budget);
        say("shrunk to " + std::to_string(f.minimized.size()) + " nodes (from " +
            std::to_string(pre.size()) + ")");
      } else {
        f.minimized = pre;
      }
      f.repro = "fsct fuzz --seed " + std::to_string(opt.seed) + " --offset " +
                std::to_string(iter) + " --iters 1";
      rep.failures.push_back(std::move(f));
    }
    ++rep.iterations;
  }
  return rep;
}

}  // namespace fsct
