#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <random>
#include <thread>

#include "core/obs.h"
#include "core/parallel.h"
#include "core/pipeline_exec.h"
#include "fault/comb_fault_sim.h"

namespace fsct {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// The pipeline skeleton.  Control flow, merge order and counter charging live
// here and ONLY here; the data-parallel per-fault/per-group work is delegated
// to a PipelineExec (LocalExec by default, the sharded coordinator when
// opt.exec is set).  Every merge walks items in canonical order, so the
// result is bitwise identical for any executor — the same argument that makes
// `--jobs N` deterministic.
//
// Checkpoint/resume: opt.hooks->safe_point fires at phase boundaries, after
// every PODEM target and (with an exec that reports item completion) after
// every step-3 group/final item.  opt.resume restores the state such a
// callback observed and skips the completed work.  Step-3 outcome/counter
// merges happen only in the post-phase merge loops, so mid-phase checkpoints
// never contain half-merged state: the groups_done/finals_done maps carry the
// completed items and the merge runs exactly once, in the run that finishes
// the phase.
PipelineResult run_fsct_pipeline(const ScanModeModel& model,
                                 std::span<const Fault> faults,
                                 const PipelineOptions& opt) {
  const Levelizer& lv = model.levelizer();
  const Netlist& nl = lv.netlist();
  ThreadPool pool(opt.jobs);
  ObsRegistry* const obs = opt.obs;
  PipelineResult res;

  const PipelineResume* const rz = opt.resume;
  const PipelinePhase start = rz ? rz->phase : PipelinePhase::Classify;
  if (rz && start > PipelinePhase::Classify) {
    res = rz->partial;
    if (res.outcome.size() != faults.size() ||
        res.info.size() != faults.size()) {
      throw std::runtime_error(
          "resume: checkpoint fault count does not match this run's "
          "collapsed fault list");
    }
  } else {
    res.outcome.assign(faults.size(), FaultOutcome::NotAffecting);
  }
  res.jobs_used = pool.jobs();
  res.total_faults = faults.size();

  const std::size_t maxlen = model.max_chain_length();
  if (obs) {
    obs->set_gauge(Gauge::Jobs, static_cast<std::int64_t>(res.jobs_used));
    obs->set_gauge(Gauge::HardwareConcurrency,
                   static_cast<std::int64_t>(
                       std::thread::hardware_concurrency()));
    obs->set_gauge(Gauge::TotalFaults,
                   static_cast<std::int64_t>(faults.size()));
    obs->set_gauge(Gauge::MaxChainLength, static_cast<std::int64_t>(maxlen));
    // Expose this run to the SIGUSR1 / heartbeat monitor and let live
    // status dumps snapshot the pool while phases run.
    obs->attach_pool(&pool);
    // Size the per-fault attribution ledger before any task can charge it
    // (fault ids used throughout are indices into `faults`).
    if (obs->attribution_requested()) obs->init_attribution(faults.size());
  }
  // Detach + restore on every exit path, including PipelineStopped.
  struct ObsGuard {
    ObsRegistry* obs = nullptr;
    ObsRegistry* prev = nullptr;
    ~ObsGuard() {
      if (obs) {
        obs->detach_pool();
        set_status_registry(prev);
      }
    }
  } obs_guard;
  if (obs) {
    obs_guard.prev = set_status_registry(obs);
    obs_guard.obs = obs;
  }
  char pbuf[192];
  const bool verbose = obs != nullptr && obs->progress_enabled();
  const DistanceParams dist =
      opt.auto_dist ? DistanceParams::from_maxsize(maxlen) : opt.dist;

  LocalExec local(model, faults, opt, pool);
  PipelineExec* const exec = opt.exec ? opt.exec : &local;

  // Safe-point plumbing.  `pg` views live skeleton storage; hook_check
  // refreshes the cheap fields and reports the callback's verdict, safe_point
  // turns a stop verdict into PipelineStopped.
  std::vector<char> comb_covered(faults.size(), 0);  // PPSFP-screened
  if (rz && start == PipelinePhase::S2Podem) {
    if (rz->comb_covered.size() != faults.size()) {
      throw std::runtime_error(
          "resume: checkpoint comb-covered set does not match fault count");
    }
    comb_covered = rz->comb_covered;
  }
  std::size_t podem_done =
      (rz && start == PipelinePhase::S2Podem) ? rz->podem_next : 0;
  PipelineProgress pg;
  auto hook_check = [&](PipelinePhase next) -> bool {
    if (!opt.hooks || !opt.hooks->safe_point) return true;
    pg.next = next;
    pg.res = &res;
    pg.comb_covered = &comb_covered;
    pg.podem_next = podem_done;
    return opt.hooks->safe_point(pg);
  };
  auto safe_point = [&](PipelinePhase next) {
    if (!hook_check(next)) {
      throw PipelineStopped(std::string("pipeline stopped before ") +
                            pipeline_phase_name(next));
    }
  };
  if (verbose && rz) {
    std::snprintf(pbuf, sizeof pbuf, "resume: continuing at phase %s",
                  pipeline_phase_name(start));
    obs->progress_line(pbuf);
  }

  // ---- step 0: classification ---------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  double cpu0 = process_cpu_seconds();
  std::vector<std::size_t> hard_idx;
  if (start <= PipelinePhase::Classify) {
    if (obs) obs->begin_phase("classify", faults.size());
    test_phase_sleep("classify");
    {
      const ObsSpan phase(obs, "classify");
      std::vector<std::size_t> all_ids(faults.size());
      for (std::size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
      res.info = exec->classify(all_ids);
    }
    for (std::size_t i = 0; i < faults.size(); ++i) {
      switch (res.info[i].category) {
        case ChainFaultCategory::Easy:
          res.outcome[i] = FaultOutcome::EasyAlternating;
          ++res.easy;
          break;
        case ChainFaultCategory::Hard:
          res.outcome[i] = FaultOutcome::Undetected;  // until proven otherwise
          hard_idx.push_back(i);
          ++res.hard;
          break;
        default:
          break;
      }
    }
    res.classify_seconds = seconds_since(t0);
    res.classify_cpu_seconds = process_cpu_seconds() - cpu0;
    if (obs) obs->sample_rss("classify");
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "classify: %zu faults -> %zu easy, %zu hard (%.3fs)",
                    res.total_faults, res.easy, res.hard,
                    res.classify_seconds);
      obs->progress_line(pbuf);
    }
  } else {
    // Restored: res.info/res.outcome/easy/hard came from the checkpoint;
    // rebuild the hard-index list they imply.
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (res.info[i].category == ChainFaultCategory::Hard) {
        hard_idx.push_back(i);
      }
    }
  }

  ScanSequenceBuilder sb(nl, model.design());

  // Dominance layer: expansion table plus SCOAP excitation costs, shared by
  // the step-2 target ordering and the step-3 in-group ordering.  The table
  // is used to *order* targets, to decide which screening simulation runs
  // first, and — in the one sound direction — to transfer combinational
  // *untestability* proofs: tests(F_in) ⊆ tests(F_out) per vector, so an
  // empty test set for the dominating output fault empties every dominated
  // set too (`domsets`).  Detection credit is never transferred through the
  // table (unsound across multi-cycle sequential tests); every fault the
  // simulations miss and no proof covers still gets its own ATPG call.
  // All three artifacts are pure functions of (netlist, fault list), so a
  // resumed run rebuilds exactly the values the original run used (skipped
  // entirely when every phase that consumes them is already complete).
  std::shared_ptr<const DominanceInfo> dom;
  std::shared_ptr<const std::vector<std::vector<std::size_t>>> domsets_sp;
  std::shared_ptr<const std::vector<Cost>> fcost_sp;
  if (opt.dominance && !hard_idx.empty() && start <= PipelinePhase::S3Groups) {
    if (opt.compiled && opt.compiled->dom && opt.compiled->domsets &&
        opt.compiled->fcost) {
      // Served from a compiled-model cache: the artifacts are pure functions
      // of (netlist, fault list), so reuse is invisible to results.
      dom = opt.compiled->dom;
      domsets_sp = opt.compiled->domsets;
      fcost_sp = opt.compiled->fcost;
    } else {
      dom = std::make_shared<DominanceInfo>(collapse_dominant(nl, faults));
      domsets_sp = std::make_shared<std::vector<std::vector<std::size_t>>>(
          dominated_sets(nl, faults));
      std::vector<char> controllable(nl.size(), 0);
      for (NodeId pi : nl.inputs()) {
        controllable[pi] = !model.design().is_constrained(pi);
      }
      for (const ScanChain& c : model.design().chains) {
        for (NodeId ff : c.ffs) controllable[ff] = 1;
      }
      fcost_sp = std::make_shared<std::vector<Cost>>(
          fault_excitation_costs(lv, controllable, faults));
    }
    if (start <= PipelinePhase::Classify) {
      std::size_t dominated = 0;
      for (std::size_t j : hard_idx) {
        if (dom->rep[j] == j) {
          ++res.dominance_targets;
        } else {
          ++dominated;
        }
      }
      if (obs && dominated) obs->add(Ctr::DominanceDropped, dominated);
      if (verbose) {
        std::snprintf(pbuf, sizeof pbuf,
                      "dominance: %zu targets represent %zu hard faults",
                      res.dominance_targets, res.hard);
        obs->progress_line(pbuf);
      }
    }
  }
  const std::vector<std::vector<std::size_t>> no_domsets;
  const std::vector<Cost> no_fcost;
  const std::vector<std::vector<std::size_t>>& domsets =
      domsets_sp ? *domsets_sp : no_domsets;
  const std::vector<Cost>& fcost = fcost_sp ? *fcost_sp : no_fcost;
  // Orders fault indices by representative (cheapest excitation first) so a
  // group's faults are contiguous.  Within a group the dominating (dropped)
  // output faults go *before* the representative: if the group is untestable
  // that is proven on the output fault first and propagates down the
  // dominance table, skipping the rest; if it is testable the screening
  // simulation of the first found vector still clears the whole group.
  auto dom_less = [&](std::size_t a, std::size_t b) {
    const std::size_t ra = dom->rep[a], rb = dom->rep[b];
    if (fcost[ra] != fcost[rb]) return fcost[ra] < fcost[rb];
    if (ra != rb) return ra < rb;
    if ((a == ra) != (b == rb)) return a != ra;
    return a < b;
  };
  safe_point(PipelinePhase::Step1);

  // ---- step 1: alternating flush (optional verification) -------------------
  if (start <= PipelinePhase::Step1 && opt.verify_easy && res.easy > 0) {
    if (obs) obs->begin_phase("step1.alternating", res.easy);
    t0 = std::chrono::steady_clock::now();
    cpu0 = process_cpu_seconds();
    const ObsSpan phase(obs, "step1.alternating");
    const std::size_t cycles = opt.alternating_cycles
                                   ? opt.alternating_cycles
                                   : 2 * maxlen + 8;
    std::vector<std::size_t> easy_idx;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (res.info[i].category == ChainFaultCategory::Easy) {
        easy_idx.push_back(i);
      }
    }
    const std::vector<char> det = exec->seq_detect(sb.alternating(cycles),
                                                   easy_idx);
    res.easy_verified = 0;
    for (char d : det) res.easy_verified += d != 0;
    if (obs) {
      obs->add(Ctr::AlternatingCycles, cycles);
      obs->add(Ctr::AlternatingDetected, res.easy_verified);
    }
    res.alternating_seconds = seconds_since(t0);
    res.alternating_cpu_seconds = process_cpu_seconds() - cpu0;
    if (obs) obs->sample_rss("step1.alternating");
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "step1: alternating flush verified %zu/%zu easy (%.3fs)",
                    res.easy_verified, res.easy, res.alternating_seconds);
      obs->progress_line(pbuf);
    }
  }
  safe_point(PipelinePhase::FlushCredit);

  // ---- step 2: combinational ATPG + sequential fault simulation ------------
  if (start <= PipelinePhase::S2Verify) {
    if (obs) obs->begin_phase("step2.atpg", res.hard);
    t0 = std::chrono::steady_clock::now();
    cpu0 = process_cpu_seconds();
    test_phase_sleep("s2");
  }
  std::vector<ScanVector>& vectors = res.vectors;

  // Flush-credit pre-pass: the alternating sequence heads every exported
  // program anyway, so any category-2 fault it happens to kill needs no
  // dedicated test.  Credit is simulation-earned (definite detection from
  // the all-X start, so it survives any program position); the category-2
  // classification itself is never overruled, only the targeting.
  if (start <= PipelinePhase::FlushCredit && opt.dominance &&
      !hard_idx.empty()) {
    const ObsSpan span(obs, "step2.flush_credit");
    // Credit against a *prefix* of the exported flush: a definite detection
    // within the first cycles of the alternating stream survives in the full
    // program (all-X start, monotone).  maxlen+8 cycles see every stream bit
    // traverse the longest chain once, which catches the vast majority of
    // flush-detectable faults at half the simulation cost; late detectors
    // simply stay on the ordinary step-2 path.
    const std::size_t exported =
        opt.alternating_cycles ? opt.alternating_cycles : 2 * maxlen + 8;
    const std::size_t cycles = std::min(exported, maxlen + 8);
    const std::vector<char> det = exec->seq_detect(sb.alternating(cycles),
                                                   hard_idx);
    for (std::size_t k = 0; k < hard_idx.size(); ++k) {
      if (det[k]) {
        res.outcome[hard_idx[k]] = FaultOutcome::DetectedFlush;
        ++res.flush_detected;
        if (obs) obs->charge(Attr::CreditEvents, hard_idx[k]);
      }
    }
    if (obs && res.flush_detected) {
      obs->add(Ctr::FlushCreditDetected, res.flush_detected);
    }
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "step2: flush credit dropped %zu/%zu hard faults",
                    res.flush_detected, res.hard);
      obs->progress_line(pbuf);
    }
  }
  safe_point(PipelinePhase::S2Podem);

  if (start <= PipelinePhase::S2Podem && !hard_idx.empty()) {
    const ObsSpan s2span(obs, "step2.atpg");
    UnrollSpec cspec;
    cspec.base = &nl;
    cspec.frames = 1;
    cspec.fixed_pis = model.design().pi_constraints;
    // Only scanned flip-flops are load/observe-able through the chains; in a
    // partial-scan design the rest stay uncontrolled (X) and unobserved.
    cspec.controllable_state.assign(nl.dffs().size(), 0);
    cspec.observable_ff.assign(nl.dffs().size(), 0);
    {
      std::vector<char> on_chain(nl.size(), 0);
      for (const ScanChain& c : model.design().chains) {
        for (NodeId ff : c.ffs) on_chain[ff] = 1;
      }
      for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
        cspec.controllable_state[i] = on_chain[nl.dffs()[i]];
        cspec.observable_ff[i] = on_chain[nl.dffs()[i]];
      }
    }
    cspec.observe_pos = true;
    UnrolledModel cm = unroll(cspec);
    Levelizer clv(cm.nl);
    AtpgOptions aopt;
    aopt.backtrack_limit = opt.comb_backtrack_limit;
    aopt.time_limit_ms = opt.comb_time_limit_ms;
    aopt.obs = obs;
    Podem podem(clv, cm.controllable, cm.observe, aopt);

    std::vector<NodeId> comb_observe = nl.outputs();
    for (NodeId ff : nl.dffs()) comb_observe.push_back(ff);
    CombFaultSim ppsfp(lv, comb_observe);

    const std::vector<Val> base_pi = sb.base_vector(Val::Zero);

    // Random-pattern warm-up: cheap coverage of the easy majority of f_hard
    // so deterministic PODEM only sees the stubborn tail.  A resume that is
    // already inside the PODEM loop (podem_next > 0) has the warm-up's
    // effects in comb_covered/vectors and must not repeat it; podem_next == 0
    // means no target completed yet, so the warm-up itself reruns.
    const bool mid_podem = podem_done > 0;
    if (opt.random_patterns > 0 && !mid_podem) {
      std::mt19937_64 rng(0xf5c7);
      std::vector<Fault> open;
      std::vector<std::size_t> open_idx;
      for (std::size_t j : hard_idx) {
        if (res.outcome[j] != FaultOutcome::Undetected) continue;
        open.push_back(faults[j]);
        open_idx.push_back(j);
      }
      std::vector<CombPattern> pats(
          static_cast<std::size_t>(opt.random_patterns));
      for (auto& pat : pats) {
        pat = base_pi;
        for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
          if (!model.design().is_constrained(nl.inputs()[i])) {
            pat[i] = (rng() & 1) ? Val::One : Val::Zero;
          }
        }
        pat.resize(nl.inputs().size() + nl.dffs().size());
        for (std::size_t i = nl.inputs().size(); i < pat.size(); ++i) {
          pat[i] = (rng() & 1) ? Val::One : Val::Zero;
        }
      }
      const CombFaultSimResult fr = ppsfp.run(pats, open, &pool, obs);
      std::vector<char> pattern_useful(pats.size(), 0);
      std::uint64_t warmup_covered = 0;
      for (std::size_t k = 0; k < open.size(); ++k) {
        if (fr.detect_pattern[k] >= 0) {
          comb_covered[open_idx[k]] = 1;
          ++warmup_covered;
          pattern_useful[static_cast<std::size_t>(fr.detect_pattern[k])] = 1;
        }
      }
      if (obs) obs->phase_tick(warmup_covered);
      for (std::size_t pi = 0; pi < pats.size(); ++pi) {
        if (!pattern_useful[pi]) continue;
        ScanVector v;
        v.pi_vals.assign(pats[pi].begin(),
                         pats[pi].begin() +
                             static_cast<std::ptrdiff_t>(nl.inputs().size()));
        v.ff_state.assign(pats[pi].begin() +
                              static_cast<std::ptrdiff_t>(nl.inputs().size()),
                          pats[pi].end());
        vectors.push_back(std::move(v));
      }
    }

    // Deterministic PODEM target order.  With dominance on, groups go
    // cheapest SCOAP excitation first; inside a group the dominating output
    // faults precede the representative, so an untestable group is proven so
    // once and the proof propagates, while a testable group's first vector
    // is PPSFP-screened against the rest before PODEM sees them.
    std::vector<std::size_t> podem_order = hard_idx;
    if (dom) std::sort(podem_order.begin(), podem_order.end(), dom_less);

    for (std::size_t ti = podem_done; ti < podem_order.size(); ++ti) {
      const std::size_t idx = podem_order[ti];
      if (!comb_covered[idx] &&
          res.outcome[idx] == FaultOutcome::Undetected) {
        if (obs) obs->phase_tick();
        const AtpgResult r = podem.generate(cm.map_fault(faults[idx]),
                                            static_cast<std::int64_t>(idx));
        if (r.status == AtpgStatus::Untestable) {
          res.outcome[idx] = FaultOutcome::Undetectable;
          ++res.s2_undetectable;
          // Untestability propagates down the dominance relation: every test
          // for a dominated input fault would also detect this output fault,
          // so an empty test set here proves theirs empty too (transitively).
          // Faults a simulation already covered keep their concrete verdict.
          if (!domsets.empty()) {
            std::uint64_t propagated = 0;
            std::vector<std::size_t> work = {idx};
            while (!work.empty()) {
              const std::size_t u = work.back();
              work.pop_back();
              for (std::size_t d : domsets[u]) {
                if (comb_covered[d]) continue;
                if (res.outcome[d] != FaultOutcome::Undetected) continue;
                res.outcome[d] = FaultOutcome::Undetectable;
                ++res.s2_undetectable;
                ++propagated;
                work.push_back(d);
              }
            }
            if (obs && propagated) {
              obs->add(Ctr::UntestablePropagated, propagated);
              obs->phase_tick(propagated);
            }
          }
        } else if (r.status == AtpgStatus::Detected) {
          ScanVector v;
          v.pi_vals = base_pi;
          v.ff_state.assign(nl.dffs().size(), Val::Zero);
          for (auto [node, val] : r.assignment) {
            for (std::size_t i = 0; i < cm.init_state.size(); ++i) {
              if (cm.init_state[i] == node) v.ff_state[i] = val;
            }
            const auto& fpi = cm.frame_pi[0];
            for (std::size_t i = 0; i < fpi.size(); ++i) {
              if (fpi[i] == node) v.pi_vals[i] = val;
            }
          }
          // Screen the new vector against all still-open hard faults (PPSFP)
          // so most faults never reach PODEM.
          std::vector<Fault> open;
          std::vector<std::size_t> open_idx;
          for (std::size_t j : hard_idx) {
            if (!comb_covered[j] &&
                res.outcome[j] == FaultOutcome::Undetected) {
              open.push_back(faults[j]);
              open_idx.push_back(j);
            }
          }
          CombPattern pat = v.pi_vals;
          pat.insert(pat.end(), v.ff_state.begin(), v.ff_state.end());
          const CombFaultSimResult fr =
              ppsfp.run(std::span(&pat, 1), open, &pool, obs);
          std::uint64_t screened = 0;
          for (std::size_t k = 0; k < open.size(); ++k) {
            if (fr.detect_pattern[k] >= 0) {
              comb_covered[open_idx[k]] = 1;
              ++screened;
            }
          }
          if (obs) obs->phase_tick(screened);
          vectors.push_back(std::move(v));
        }
        // Aborted targets fall through to step 3.
      }
      podem_done = ti + 1;
      safe_point(PipelinePhase::S2Podem);
    }
    res.s2_vectors = vectors.size();
  }
  safe_point(PipelinePhase::S2Verify);

  if (start <= PipelinePhase::S2Verify) {
    if (!hard_idx.empty()) {
      // Sequential verification: the converting chain may be broken by the
      // very fault under test, so detection only counts after sequential
      // fault simulation of the full scan sequence (also yields the Figure 5
      // curve).  The exec reports, per open fault, the first vector whose
      // scan sequence detects it — equivalent to the historical per-vector
      // loop — and the curve is rebuilt here by walking vectors in order.
      if (obs) obs->begin_phase("step2.seq_verify", vectors.size());
      const ObsSpan verify_span(obs, "step2.seq_verify");
      std::vector<std::size_t> open0;
      for (std::size_t j : hard_idx) {
        if (res.outcome[j] == FaultOutcome::Undetected) open0.push_back(j);
      }
      const std::vector<int> firstv = exec->s2_first_vec(vectors, open0);
      for (std::size_t vi = 0; vi < vectors.size(); ++vi) {
        if (obs) obs->phase_tick();
        for (std::size_t k = 0; k < open0.size(); ++k) {
          if (firstv[k] == static_cast<int>(vi)) {
            res.outcome[open0[k]] = FaultOutcome::DetectedComb;
            ++res.s2_detected;
          }
        }
        res.detection_curve.push_back(res.s2_detected);
      }
    }
    res.s2_undetected = res.hard - res.flush_detected - res.s2_detected -
                        res.s2_undetectable;
    res.s2_seconds = seconds_since(t0);
    res.s2_cpu_seconds = process_cpu_seconds() - cpu0;
    if (obs) obs->sample_rss("s2");
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "step2: %zu vectors, %zu detected, %zu undetectable, "
                    "%zu remaining (%.3fs)",
                    res.s2_vectors, res.s2_detected, res.s2_undetectable,
                    res.s2_undetected, res.s2_seconds);
      obs->progress_line(pbuf);
    }
  }
  safe_point(PipelinePhase::S3Groups);

  // ---- step 3: grouped sequential ATPG on reduced circuits -----------------
  if (start <= PipelinePhase::S3Final) {
    t0 = std::chrono::steady_clock::now();
    cpu0 = process_cpu_seconds();
    test_phase_sleep("s3");
  }

  if (start <= PipelinePhase::S3Groups) {
    // Step-3 outcomes are written only by the merge loop below, so the open
    // set here is the same whether this phase runs fresh or resumes.
    std::vector<std::size_t> remaining;
    for (std::size_t j : hard_idx) {
      if (res.outcome[j] == FaultOutcome::Undetected) remaining.push_back(j);
    }
    if (!remaining.empty()) {
      std::vector<FaultWindow> windows;
      windows.reserve(remaining.size());
      for (std::size_t j : remaining) {
        windows.push_back(make_fault_window(j, res.info[j]));
      }
      std::vector<AtpgGroup> groups = make_groups(windows, dist);
      if (dom) {
        // Front the cheap representatives inside each group: their verified
        // sequences ride-along-screen the expensive tail before it is ever
        // targeted.
        for (AtpgGroup& g : groups) {
          std::sort(g.fault_indices.begin(), g.fault_indices.end(), dom_less);
        }
      }

      // One work item per group, each with its own reduced model and PODEM
      // state.  Items fill their slot of `done`; the merge below walks groups
      // (and faults within a group) in order, so counters and the
      // s3_sequences order are exactly the serial ones regardless of executor
      // or completion order.
      std::vector<GroupOutcome> done(groups.size());
      std::vector<char> gmask(groups.size(), 0);
      if (rz && start == PipelinePhase::S3Groups) {
        for (const auto& [gi, go] : rz->groups_done) {
          if (gi >= groups.size()) {
            throw std::runtime_error(
                "resume: checkpoint group index out of range");
          }
          done[gi] = go;
          gmask[gi] = 1;
        }
      }
      std::vector<std::size_t> todo;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        if (!gmask[gi]) todo.push_back(gi);
      }
      pg.groups = &done;
      pg.groups_done = &gmask;
      bool stop = false;
      PipelineExec::ItemDone on_group_done = [&](std::size_t gi) {
        gmask[gi] = 1;
        if (!hook_check(PipelinePhase::S3Groups)) {
          stop = true;
          return false;
        }
        return true;
      };
      {
        if (obs) obs->begin_phase("step3.groups", groups.size());
        const ObsSpan phase(obs, "step3.groups");
        exec->run_groups(groups, todo, done, on_group_done);
      }
      pg.groups = nullptr;
      pg.groups_done = nullptr;
      if (stop) throw PipelineStopped("pipeline stopped in s3.groups");
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        ++res.s3_circuits_group;
        if (obs) {
          obs->add(Ctr::S3Groups);
          obs->observe(Hist::S3GroupSize, groups[gi].fault_indices.size());
        }
        res.s3_unverified += done[gi].unverified;
        for (std::size_t k = 0; k < done[gi].detected.size(); ++k) {
          const std::size_t j = done[gi].detected[k];
          res.outcome[j] = FaultOutcome::DetectedSeq;
          ++res.s3_detected;
          res.s3_sequences.push_back(std::move(done[gi].seqs[k]));
          res.s3_sequence_fault.push_back(j);
        }
        for (std::size_t j : done[gi].credited) {
          res.outcome[j] = FaultOutcome::DetectedSeq;
          ++res.s3_detected;
          ++res.ledger_dropped;
        }
        if (obs && !done[gi].credited.empty()) {
          obs->add(Ctr::DroppedByLedger, done[gi].credited.size());
        }
      }
    }
  }
  safe_point(PipelinePhase::S3Ledger);

  // Cross-group ledger pass: every step-3 sequence ends up in the exported
  // program, so one packed simulation of their concatenation against the
  // still-open faults credits detections across group boundaries (the
  // verdict is established from the all-X start, hence valid in any program
  // position).  Credited faults skip the expensive final individual models.
  if (start <= PipelinePhase::S3Ledger && opt.dominance &&
      !res.s3_sequences.empty()) {
    std::vector<std::size_t> open_idx;
    for (std::size_t j : hard_idx) {
      if (res.outcome[j] == FaultOutcome::Undetected) open_idx.push_back(j);
    }
    if (!open_idx.empty()) {
      const ObsSpan span(obs, "step3.ledger");
      TestSequence all;
      for (const TestSequence& s : res.s3_sequences) {
        all.insert(all.end(), s.begin(), s.end());
      }
      const std::vector<char> det = exec->seq_detect(all, open_idx);
      std::size_t credited = 0;
      for (std::size_t k = 0; k < open_idx.size(); ++k) {
        if (det[k]) {
          res.outcome[open_idx[k]] = FaultOutcome::DetectedSeq;
          ++res.s3_detected;
          ++credited;
          if (obs) obs->charge(Attr::CreditEvents, open_idx[k]);
        }
      }
      res.ledger_dropped += credited;
      if (obs && credited) obs->add(Ctr::DroppedByLedger, credited);
      if (verbose && credited) {
        std::snprintf(pbuf, sizeof pbuf,
                      "step3: ledger credited %zu cross-group detections",
                      credited);
        obs->progress_line(pbuf);
      }
    }
  }
  safe_point(PipelinePhase::S3Final);

  // Final faults: individual maximal-window models, bigger budget.  One work
  // item per final fault; merged in `final_idx` order (identical to the
  // serial loop).  FinalOutcomes arrive verification-included, so a resumed
  // slot carries exactly the verdict the original run would have merged.
  if (start <= PipelinePhase::S3Final) {
    std::vector<std::size_t> final_idx;
    for (std::size_t j : hard_idx) {
      if (res.outcome[j] == FaultOutcome::Undetected) final_idx.push_back(j);
    }
    std::vector<std::vector<ChainWindow>> fwin;
    fwin.reserve(final_idx.size());
    for (std::size_t j : final_idx) {
      fwin.push_back(make_fault_window(j, res.info[j]).chains);
    }
    std::vector<FinalOutcome> fdone(final_idx.size());
    std::vector<char> fmask(final_idx.size(), 0);
    if (rz && start == PipelinePhase::S3Final && !rz->finals_done.empty()) {
      std::map<std::size_t, std::size_t> slot_of;
      for (std::size_t k = 0; k < final_idx.size(); ++k) {
        slot_of[final_idx[k]] = k;
      }
      for (const auto& [id, fo] : rz->finals_done) {
        const auto it = slot_of.find(id);
        if (it == slot_of.end()) {
          throw std::runtime_error(
              "resume: checkpoint final fault not in this run's final set");
        }
        fdone[it->second] = fo;
        fmask[it->second] = 1;
      }
    }
    std::vector<std::size_t> todo;
    for (std::size_t k = 0; k < final_idx.size(); ++k) {
      if (!fmask[k]) todo.push_back(k);
    }
    pg.finals = &fdone;
    pg.finals_done = &fmask;
    pg.final_ids = &final_idx;
    bool stop = false;
    PipelineExec::ItemDone on_final_done = [&](std::size_t k) {
      fmask[k] = 1;
      if (!hook_check(PipelinePhase::S3Final)) {
        stop = true;
        return false;
      }
      return true;
    };
    {
      if (obs) obs->begin_phase("step3.final", final_idx.size());
      const ObsSpan phase(obs, "step3.final");
      exec->run_finals(final_idx, fwin, todo, fdone, on_final_done);
    }
    pg.finals = nullptr;
    pg.finals_done = nullptr;
    pg.final_ids = nullptr;
    if (stop) throw PipelineStopped("pipeline stopped in s3.final");
    for (std::size_t k = 0; k < final_idx.size(); ++k) {
      const std::size_t j = final_idx[k];
      ++res.s3_circuits_final;
      if (obs) obs->add(Ctr::S3FinalFaults);
      switch (fdone[k].verdict) {
        case FinalVerdict::Detected:
          res.outcome[j] = FaultOutcome::DetectedFinal;
          ++res.s3_detected;
          res.s3_sequences.push_back(std::move(fdone[k].seq));
          res.s3_sequence_fault.push_back(j);
          break;
        case FinalVerdict::Unverified:
          ++res.s3_unverified;
          ++res.s3_undetected;  // in-model only; no silicon reproduction
          break;
        case FinalVerdict::Untestable:
          res.outcome[j] = FaultOutcome::Undetectable;
          ++res.s3_undetectable;
          break;
        case FinalVerdict::Aborted:
        case FinalVerdict::NoSites:
          ++res.s3_undetected;
          break;
      }
    }
    res.s3_seconds = seconds_since(t0);
    res.s3_cpu_seconds = process_cpu_seconds() - cpu0;
    if (obs) obs->sample_rss("s3");
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "step3: %zu group + %zu final models, %zu detected, "
                    "%zu undetectable, %zu undetected (%.3fs)",
                    res.s3_circuits_group, res.s3_circuits_final,
                    res.s3_detected, res.s3_undetectable, res.s3_undetected,
                    res.s3_seconds);
      obs->progress_line(pbuf);
    }
  }
  safe_point(PipelinePhase::Done);
  if (obs) {
    obs->capture_pool(pool);
    obs->end_phase();
  }
  return res;
}

}  // namespace fsct
