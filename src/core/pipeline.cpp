#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <random>
#include <thread>

#include "core/obs.h"
#include "core/parallel.h"
#include "fault/comb_fault_sim.h"

namespace fsct {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

PipelineResult run_fsct_pipeline(const ScanModeModel& model,
                                 std::span<const Fault> faults,
                                 const PipelineOptions& opt) {
  const Levelizer& lv = model.levelizer();
  const Netlist& nl = lv.netlist();
  ThreadPool pool(opt.jobs);
  ObsRegistry* const obs = opt.obs;
  PipelineResult res;
  res.jobs_used = pool.jobs();
  res.total_faults = faults.size();
  res.outcome.assign(faults.size(), FaultOutcome::NotAffecting);

  const std::size_t maxlen = model.max_chain_length();
  ObsRegistry* prev_status = nullptr;
  if (obs) {
    obs->set_gauge(Gauge::Jobs, static_cast<std::int64_t>(res.jobs_used));
    obs->set_gauge(Gauge::HardwareConcurrency,
                   static_cast<std::int64_t>(
                       std::thread::hardware_concurrency()));
    obs->set_gauge(Gauge::TotalFaults,
                   static_cast<std::int64_t>(faults.size()));
    obs->set_gauge(Gauge::MaxChainLength, static_cast<std::int64_t>(maxlen));
    // Expose this run to the SIGUSR1 / heartbeat monitor and let live
    // status dumps snapshot the pool while phases run.
    obs->attach_pool(&pool);
    prev_status = set_status_registry(obs);
    // Size the per-fault attribution ledger before any task can charge it
    // (fault ids used throughout are indices into `faults`).
    if (obs->attribution_requested()) obs->init_attribution(faults.size());
  }
  char pbuf[192];
  const bool verbose = obs != nullptr && obs->progress_enabled();
  const DistanceParams dist =
      opt.auto_dist ? DistanceParams::from_maxsize(maxlen) : opt.dist;
  const std::size_t observe_cycles =
      opt.observe_cycles ? opt.observe_cycles : maxlen + 2;

  // ---- step 0: classification ---------------------------------------------
  if (obs) obs->begin_phase("classify", faults.size());
  auto t0 = std::chrono::steady_clock::now();
  double cpu0 = process_cpu_seconds();
  test_phase_sleep("classify");
  {
    const ObsSpan phase(obs, "classify");
    res.info =
        ChainFaultClassifier::classify_all_parallel(model, faults, pool, obs);
  }
  std::vector<std::size_t> hard_idx;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    switch (res.info[i].category) {
      case ChainFaultCategory::Easy:
        res.outcome[i] = FaultOutcome::EasyAlternating;
        ++res.easy;
        break;
      case ChainFaultCategory::Hard:
        res.outcome[i] = FaultOutcome::Undetected;  // until proven otherwise
        hard_idx.push_back(i);
        ++res.hard;
        break;
      default:
        break;
    }
  }
  res.classify_seconds = seconds_since(t0);
  res.classify_cpu_seconds = process_cpu_seconds() - cpu0;
  if (obs) obs->sample_rss("classify");
  if (verbose) {
    std::snprintf(pbuf, sizeof pbuf,
                  "classify: %zu faults -> %zu easy, %zu hard (%.3fs)",
                  res.total_faults, res.easy, res.hard, res.classify_seconds);
    obs->progress_line(pbuf);
  }

  std::vector<NodeId> observe = nl.outputs();
  for (NodeId so : model.scan_outs()) {
    if (std::find(observe.begin(), observe.end(), so) == observe.end()) {
      observe.push_back(so);
    }
  }
  ScanSequenceBuilder sb(nl, model.design());

  // Dominance layer: expansion table plus SCOAP excitation costs, shared by
  // the step-2 target ordering and the step-3 in-group ordering.  The table
  // is used to *order* targets, to decide which screening simulation runs
  // first, and — in the one sound direction — to transfer combinational
  // *untestability* proofs: tests(F_in) ⊆ tests(F_out) per vector, so an
  // empty test set for the dominating output fault empties every dominated
  // set too (`domsets`).  Detection credit is never transferred through the
  // table (unsound across multi-cycle sequential tests); every fault the
  // simulations miss and no proof covers still gets its own ATPG call.
  std::shared_ptr<const DominanceInfo> dom;
  std::shared_ptr<const std::vector<std::vector<std::size_t>>> domsets_sp;
  std::shared_ptr<const std::vector<Cost>> fcost_sp;
  if (opt.dominance && !hard_idx.empty()) {
    if (opt.compiled && opt.compiled->dom && opt.compiled->domsets &&
        opt.compiled->fcost) {
      // Served from a compiled-model cache: the artifacts are pure functions
      // of (netlist, fault list), so reuse is invisible to results.
      dom = opt.compiled->dom;
      domsets_sp = opt.compiled->domsets;
      fcost_sp = opt.compiled->fcost;
    } else {
      dom = std::make_shared<DominanceInfo>(collapse_dominant(nl, faults));
      domsets_sp = std::make_shared<std::vector<std::vector<std::size_t>>>(
          dominated_sets(nl, faults));
      std::vector<char> controllable(nl.size(), 0);
      for (NodeId pi : nl.inputs()) {
        controllable[pi] = !model.design().is_constrained(pi);
      }
      for (const ScanChain& c : model.design().chains) {
        for (NodeId ff : c.ffs) controllable[ff] = 1;
      }
      fcost_sp = std::make_shared<std::vector<Cost>>(
          fault_excitation_costs(lv, controllable, faults));
    }
    std::size_t dominated = 0;
    for (std::size_t j : hard_idx) {
      if (dom->rep[j] == j) {
        ++res.dominance_targets;
      } else {
        ++dominated;
      }
    }
    if (obs && dominated) obs->add(Ctr::DominanceDropped, dominated);
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "dominance: %zu targets represent %zu hard faults",
                    res.dominance_targets, res.hard);
      obs->progress_line(pbuf);
    }
  }
  const std::vector<std::vector<std::size_t>> no_domsets;
  const std::vector<Cost> no_fcost;
  const std::vector<std::vector<std::size_t>>& domsets =
      domsets_sp ? *domsets_sp : no_domsets;
  const std::vector<Cost>& fcost = fcost_sp ? *fcost_sp : no_fcost;
  // Orders fault indices by representative (cheapest excitation first) so a
  // group's faults are contiguous.  Within a group the dominating (dropped)
  // output faults go *before* the representative: if the group is untestable
  // that is proven on the output fault first and propagates down the
  // dominance table, skipping the rest; if it is testable the screening
  // simulation of the first found vector still clears the whole group.
  auto dom_less = [&](std::size_t a, std::size_t b) {
    const std::size_t ra = dom->rep[a], rb = dom->rep[b];
    if (fcost[ra] != fcost[rb]) return fcost[ra] < fcost[rb];
    if (ra != rb) return ra < rb;
    if ((a == ra) != (b == rb)) return a != ra;
    return a < b;
  };

  // ---- step 1: alternating flush (optional verification) -------------------
  if (opt.verify_easy && res.easy > 0) {
    if (obs) obs->begin_phase("step1.alternating", res.easy);
    t0 = std::chrono::steady_clock::now();
    cpu0 = process_cpu_seconds();
    const ObsSpan phase(obs, "step1.alternating");
    const std::size_t cycles = opt.alternating_cycles
                                   ? opt.alternating_cycles
                                   : 2 * maxlen + 8;
    std::vector<Fault> easy_faults;
    std::vector<std::size_t> easy_idx;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (res.info[i].category == ChainFaultCategory::Easy) {
        easy_faults.push_back(faults[i]);
        easy_idx.push_back(i);
      }
    }
    SeqFaultSim sim(lv, observe, opt.simd_width);
    const SeqFaultSimResult r = sim.run(sb.alternating(cycles), easy_faults,
                                        Val::X, &pool, obs, easy_idx);
    res.easy_verified = r.num_detected();
    if (obs) {
      obs->add(Ctr::AlternatingCycles, cycles);
      obs->add(Ctr::AlternatingDetected, res.easy_verified);
    }
    res.alternating_seconds = seconds_since(t0);
    res.alternating_cpu_seconds = process_cpu_seconds() - cpu0;
    if (obs) obs->sample_rss("step1.alternating");
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "step1: alternating flush verified %zu/%zu easy (%.3fs)",
                    res.easy_verified, res.easy, res.alternating_seconds);
      obs->progress_line(pbuf);
    }
  }

  // ---- step 2: combinational ATPG + sequential fault simulation ------------
  if (obs) obs->begin_phase("step2.atpg", res.hard);
  t0 = std::chrono::steady_clock::now();
  cpu0 = process_cpu_seconds();
  test_phase_sleep("s2");
  std::vector<ScanVector>& vectors = res.vectors;
  std::vector<char> comb_covered(faults.size(), 0);  // PPSFP-screened

  // Flush-credit pre-pass: the alternating sequence heads every exported
  // program anyway, so any category-2 fault it happens to kill needs no
  // dedicated test.  Credit is simulation-earned (definite detection from
  // the all-X start, so it survives any program position); the category-2
  // classification itself is never overruled, only the targeting.
  if (opt.dominance && !hard_idx.empty()) {
    const ObsSpan span(obs, "step2.flush_credit");
    // Credit against a *prefix* of the exported flush: a definite detection
    // within the first cycles of the alternating stream survives in the full
    // program (all-X start, monotone).  maxlen+8 cycles see every stream bit
    // traverse the longest chain once, which catches the vast majority of
    // flush-detectable faults at half the simulation cost; late detectors
    // simply stay on the ordinary step-2 path.
    const std::size_t exported =
        opt.alternating_cycles ? opt.alternating_cycles : 2 * maxlen + 8;
    const std::size_t cycles = std::min(exported, maxlen + 8);
    std::vector<Fault> hard_faults;
    hard_faults.reserve(hard_idx.size());
    for (std::size_t j : hard_idx) hard_faults.push_back(faults[j]);
    SeqFaultSim fsim(lv, observe, opt.simd_width);
    const SeqFaultSimResult r = fsim.run(sb.alternating(cycles), hard_faults,
                                         Val::X, &pool, obs, hard_idx);
    for (std::size_t k = 0; k < hard_idx.size(); ++k) {
      if (r.detect_cycle[k] >= 0) {
        res.outcome[hard_idx[k]] = FaultOutcome::DetectedFlush;
        ++res.flush_detected;
        if (obs) obs->charge(Attr::CreditEvents, hard_idx[k]);
      }
    }
    if (obs && res.flush_detected) {
      obs->add(Ctr::FlushCreditDetected, res.flush_detected);
    }
    if (verbose) {
      std::snprintf(pbuf, sizeof pbuf,
                    "step2: flush credit dropped %zu/%zu hard faults",
                    res.flush_detected, res.hard);
      obs->progress_line(pbuf);
    }
  }

  if (!hard_idx.empty()) {
    std::optional<ObsSpan> s2span;
    s2span.emplace(obs, "step2.atpg");
    UnrollSpec cspec;
    cspec.base = &nl;
    cspec.frames = 1;
    cspec.fixed_pis = model.design().pi_constraints;
    // Only scanned flip-flops are load/observe-able through the chains; in a
    // partial-scan design the rest stay uncontrolled (X) and unobserved.
    cspec.controllable_state.assign(nl.dffs().size(), 0);
    cspec.observable_ff.assign(nl.dffs().size(), 0);
    {
      std::vector<char> on_chain(nl.size(), 0);
      for (const ScanChain& c : model.design().chains) {
        for (NodeId ff : c.ffs) on_chain[ff] = 1;
      }
      for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
        cspec.controllable_state[i] = on_chain[nl.dffs()[i]];
        cspec.observable_ff[i] = on_chain[nl.dffs()[i]];
      }
    }
    cspec.observe_pos = true;
    UnrolledModel cm = unroll(cspec);
    Levelizer clv(cm.nl);
    AtpgOptions aopt;
    aopt.backtrack_limit = opt.comb_backtrack_limit;
    aopt.time_limit_ms = opt.comb_time_limit_ms;
    aopt.obs = obs;
    Podem podem(clv, cm.controllable, cm.observe, aopt);

    std::vector<NodeId> comb_observe = nl.outputs();
    for (NodeId ff : nl.dffs()) comb_observe.push_back(ff);
    CombFaultSim ppsfp(lv, comb_observe);

    const std::vector<Val> base_pi = sb.base_vector(Val::Zero);

    // Random-pattern warm-up: cheap coverage of the easy majority of f_hard
    // so deterministic PODEM only sees the stubborn tail.
    if (opt.random_patterns > 0) {
      std::mt19937_64 rng(0xf5c7);
      std::vector<Fault> open;
      std::vector<std::size_t> open_idx;
      for (std::size_t j : hard_idx) {
        if (res.outcome[j] != FaultOutcome::Undetected) continue;
        open.push_back(faults[j]);
        open_idx.push_back(j);
      }
      std::vector<CombPattern> pats(
          static_cast<std::size_t>(opt.random_patterns));
      for (auto& pat : pats) {
        pat = base_pi;
        for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
          if (!model.design().is_constrained(nl.inputs()[i])) {
            pat[i] = (rng() & 1) ? Val::One : Val::Zero;
          }
        }
        pat.resize(nl.inputs().size() + nl.dffs().size());
        for (std::size_t i = nl.inputs().size(); i < pat.size(); ++i) {
          pat[i] = (rng() & 1) ? Val::One : Val::Zero;
        }
      }
      const CombFaultSimResult fr = ppsfp.run(pats, open, &pool, obs);
      std::vector<char> pattern_useful(pats.size(), 0);
      std::uint64_t warmup_covered = 0;
      for (std::size_t k = 0; k < open.size(); ++k) {
        if (fr.detect_pattern[k] >= 0) {
          comb_covered[open_idx[k]] = 1;
          ++warmup_covered;
          pattern_useful[static_cast<std::size_t>(fr.detect_pattern[k])] = 1;
        }
      }
      if (obs) obs->phase_tick(warmup_covered);
      for (std::size_t pi = 0; pi < pats.size(); ++pi) {
        if (!pattern_useful[pi]) continue;
        ScanVector v;
        v.pi_vals.assign(pats[pi].begin(),
                         pats[pi].begin() +
                             static_cast<std::ptrdiff_t>(nl.inputs().size()));
        v.ff_state.assign(pats[pi].begin() +
                              static_cast<std::ptrdiff_t>(nl.inputs().size()),
                          pats[pi].end());
        vectors.push_back(std::move(v));
      }
    }

    // Deterministic PODEM target order.  With dominance on, groups go
    // cheapest SCOAP excitation first; inside a group the dominating output
    // faults precede the representative, so an untestable group is proven so
    // once and the proof propagates, while a testable group's first vector
    // is PPSFP-screened against the rest before PODEM sees them.
    std::vector<std::size_t> podem_order = hard_idx;
    if (dom) std::sort(podem_order.begin(), podem_order.end(), dom_less);

    for (std::size_t idx : podem_order) {
      if (comb_covered[idx]) continue;
      if (res.outcome[idx] != FaultOutcome::Undetected) continue;
      if (obs) obs->phase_tick();
      const AtpgResult r = podem.generate(cm.map_fault(faults[idx]),
                                          static_cast<std::int64_t>(idx));
      if (r.status == AtpgStatus::Untestable) {
        res.outcome[idx] = FaultOutcome::Undetectable;
        ++res.s2_undetectable;
        // Untestability propagates down the dominance relation: every test
        // for a dominated input fault would also detect this output fault,
        // so an empty test set here proves theirs empty too (transitively).
        // Faults a simulation already covered keep their concrete verdict.
        if (!domsets.empty()) {
          std::uint64_t propagated = 0;
          std::vector<std::size_t> work = {idx};
          while (!work.empty()) {
            const std::size_t u = work.back();
            work.pop_back();
            for (std::size_t d : domsets[u]) {
              if (comb_covered[d]) continue;
              if (res.outcome[d] != FaultOutcome::Undetected) continue;
              res.outcome[d] = FaultOutcome::Undetectable;
              ++res.s2_undetectable;
              ++propagated;
              work.push_back(d);
            }
          }
          if (obs && propagated) {
            obs->add(Ctr::UntestablePropagated, propagated);
            obs->phase_tick(propagated);
          }
        }
        continue;
      }
      if (r.status != AtpgStatus::Detected) continue;  // aborted: to step 3
      ScanVector v;
      v.pi_vals = base_pi;
      v.ff_state.assign(nl.dffs().size(), Val::Zero);
      for (auto [node, val] : r.assignment) {
        for (std::size_t i = 0; i < cm.init_state.size(); ++i) {
          if (cm.init_state[i] == node) v.ff_state[i] = val;
        }
        const auto& fpi = cm.frame_pi[0];
        for (std::size_t i = 0; i < fpi.size(); ++i) {
          if (fpi[i] == node) v.pi_vals[i] = val;
        }
      }
      // Screen the new vector against all still-open hard faults (PPSFP) so
      // most faults never reach PODEM.
      std::vector<Fault> open;
      std::vector<std::size_t> open_idx;
      for (std::size_t j : hard_idx) {
        if (!comb_covered[j] &&
            res.outcome[j] == FaultOutcome::Undetected) {
          open.push_back(faults[j]);
          open_idx.push_back(j);
        }
      }
      CombPattern pat = v.pi_vals;
      pat.insert(pat.end(), v.ff_state.begin(), v.ff_state.end());
      const CombFaultSimResult fr =
          ppsfp.run(std::span(&pat, 1), open, &pool, obs);
      std::uint64_t screened = 0;
      for (std::size_t k = 0; k < open.size(); ++k) {
        if (fr.detect_pattern[k] >= 0) {
          comb_covered[open_idx[k]] = 1;
          ++screened;
        }
      }
      if (obs) obs->phase_tick(screened);
      vectors.push_back(std::move(v));
    }
    res.s2_vectors = vectors.size();

    // Sequential verification: the converting chain may be broken by the very
    // fault under test, so detection only counts after sequential fault
    // simulation of the full scan sequence (also yields the Figure 5 curve).
    s2span.reset();
    if (obs) obs->begin_phase("step2.seq_verify", vectors.size());
    const ObsSpan verify_span(obs, "step2.seq_verify");
    SeqFaultSim ssim(lv, observe, opt.simd_width);
    for (const ScanVector& v : vectors) {
      if (obs) obs->phase_tick();
      std::vector<Fault> open;
      std::vector<std::size_t> open_idx;
      for (std::size_t j : hard_idx) {
        if (res.outcome[j] == FaultOutcome::Undetected) {
          open.push_back(faults[j]);
          open_idx.push_back(j);
        }
      }
      if (!open.empty()) {
        const TestSequence seq =
            sb.apply_comb_vector(v.ff_state, v.pi_vals, observe_cycles);
        const SeqFaultSimResult r =
            ssim.run(seq, open, Val::X, &pool, obs, open_idx);
        for (std::size_t k = 0; k < open.size(); ++k) {
          if (r.detect_cycle[k] >= 0) {
            res.outcome[open_idx[k]] = FaultOutcome::DetectedComb;
            ++res.s2_detected;
          }
        }
      }
      res.detection_curve.push_back(res.s2_detected);
    }
  }
  res.s2_undetected = res.hard - res.flush_detected - res.s2_detected -
                      res.s2_undetectable;
  res.s2_seconds = seconds_since(t0);
  res.s2_cpu_seconds = process_cpu_seconds() - cpu0;
  if (obs) obs->sample_rss("s2");
  if (verbose) {
    std::snprintf(pbuf, sizeof pbuf,
                  "step2: %zu vectors, %zu detected, %zu undetectable, "
                  "%zu remaining (%.3fs)",
                  res.s2_vectors, res.s2_detected, res.s2_undetectable,
                  res.s2_undetected, res.s2_seconds);
    obs->progress_line(pbuf);
  }

  // ---- step 3: grouped sequential ATPG on reduced circuits -----------------
  t0 = std::chrono::steady_clock::now();
  cpu0 = process_cpu_seconds();
  test_phase_sleep("s3");
  std::vector<std::size_t> remaining;
  for (std::size_t j : hard_idx) {
    if (res.outcome[j] == FaultOutcome::Undetected) remaining.push_back(j);
  }

  SeqFaultSim s3sim(lv, observe, opt.simd_width);
  // Realises an in-model detection and (optionally) verifies it end to end.
  // Returns the realised sequence when the detection stands, nullopt when it
  // does not reproduce.  Pure w.r.t. shared state, so group/final tasks can
  // call it concurrently; the caller merges into `res` serially.
  auto realize_s3_detection =
      [&](const ReducedCircuitBuilder& bld, const ReducedModel& rm,
          const AtpgResult& ar,
          std::size_t fault_idx) -> std::optional<TestSequence> {
    const SeqTest t = bld.extract_test(rm, ar);
    TestSequence seq = bld.realize(t, maxlen + 2);
    if (opt.verify_seq) {
      const Fault one[1] = {faults[fault_idx]};
      const std::size_t aid[1] = {fault_idx};
      if (s3sim.run_serial(seq, one, Val::X, obs, aid).detect_cycle[0] < 0) {
        return std::nullopt;
      }
    }
    return seq;
  };

  ReducedModelOptions ropt;
  ropt.frame_slack = opt.frame_slack;
  ropt.frame_cap = opt.frame_cap;
  ropt.observe_pos = opt.observe_pos;
  ropt.atpg.backtrack_limit = opt.seq_backtrack_limit;
  ropt.atpg.time_limit_ms = opt.seq_time_limit_ms;
  ropt.atpg.obs = obs;
  ReducedCircuitBuilder builder(model, ropt);

  if (!remaining.empty()) {
    std::vector<FaultWindow> windows;
    windows.reserve(remaining.size());
    for (std::size_t j : remaining) {
      windows.push_back(make_fault_window(j, res.info[j]));
    }
    std::vector<AtpgGroup> groups = make_groups(windows, dist);
    if (dom) {
      // Front the cheap representatives inside each group: their verified
      // sequences ride-along-screen the expensive tail (below) before it is
      // ever targeted.
      for (AtpgGroup& g : groups) {
        std::sort(g.fault_indices.begin(), g.fault_indices.end(), dom_less);
      }
    }

    // One task per group, each with its own reduced model and PODEM state.
    // Tasks fill their slot of `done`; the merge below walks groups (and
    // faults within a group) in order, so counters and the s3_sequences
    // order are exactly the serial ones.
    struct GroupOutcome {
      std::vector<std::size_t> detected;   // fault indices, group order
      std::vector<TestSequence> seqs;      // aligned with `detected`
      std::vector<std::size_t> credited;   // detected by another fault's test
      std::size_t unverified = 0;
    };
    std::vector<GroupOutcome> done(groups.size());
    auto run_group = [&](std::size_t gi) {
      const ObsSpan span(obs, "s3.group");
      const AtpgGroup& g = groups[gi];
      std::vector<Fault> gf;
      for (std::size_t j : g.fault_indices) gf.push_back(faults[j]);
      const ReducedModel rm = builder.build(g, gf);
      std::vector<char> credited(g.fault_indices.size(), 0);
      for (std::size_t k = 0; k < g.fault_indices.size(); ++k) {
        const std::size_t j = g.fault_indices[k];
        if (credited[k]) continue;  // this group's ledger already covers it
        const auto sites = rm.um.map_fault(faults[j]);
        if (sites.empty()) continue;  // pruned away: retried in final pass
        const AtpgResult r =
            rm.podem->generate(sites, static_cast<std::int64_t>(j));
        if (r.status != AtpgStatus::Detected) continue;
        // Untestable in a *shared* window is not conclusive for absorbed
        // faults (they may have more ctrl/obs alone): final pass decides.
        auto seq = realize_s3_detection(builder, rm, r, j);
        if (!seq) {
          ++done[gi].unverified;
          continue;
        }
        // Ledger ride-along: simulate the verified sequence against the
        // group's still-open tail; whatever it detects (from the all-X
        // start, so the verdict survives concatenation into the exported
        // program) is credited instead of re-targeted.  Group-local state
        // only, so tasks stay schedule-independent.
        if (opt.dominance && k + 1 < g.fault_indices.size()) {
          std::vector<Fault> open;
          std::vector<std::size_t> open_pos;
          std::vector<std::size_t> open_ids;
          for (std::size_t m = k + 1; m < g.fault_indices.size(); ++m) {
            if (!credited[m]) {
              open.push_back(faults[g.fault_indices[m]]);
              open_pos.push_back(m);
              open_ids.push_back(g.fault_indices[m]);
            }
          }
          if (!open.empty()) {
            const SeqFaultSimResult rr =
                s3sim.run(*seq, open, Val::X, nullptr, obs, open_ids);
            for (std::size_t m = 0; m < open.size(); ++m) {
              if (rr.detect_cycle[m] >= 0) {
                credited[open_pos[m]] = 1;
                done[gi].credited.push_back(g.fault_indices[open_pos[m]]);
                // Which faults earn ride-along credit is schedule-independent
                // (group-local state), so this charge keeps the ledger
                // deterministic even though it happens inside a pool task.
                if (obs) obs->charge(Attr::CreditEvents, open_ids[m]);
              }
            }
          }
        }
        done[gi].detected.push_back(j);
        done[gi].seqs.push_back(std::move(*seq));
      }
      if (obs) obs->phase_tick();
    };
    {
      if (obs) obs->begin_phase("step3.groups", groups.size());
      const ObsSpan phase(obs, "step3.groups");
      parallel_for(pool, groups.size(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t gi = b; gi < e; ++gi) run_group(gi);
      });
    }
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      ++res.s3_circuits_group;
      if (obs) {
        obs->add(Ctr::S3Groups);
        obs->observe(Hist::S3GroupSize, groups[gi].fault_indices.size());
      }
      res.s3_unverified += done[gi].unverified;
      for (std::size_t k = 0; k < done[gi].detected.size(); ++k) {
        const std::size_t j = done[gi].detected[k];
        res.outcome[j] = FaultOutcome::DetectedSeq;
        ++res.s3_detected;
        res.s3_sequences.push_back(std::move(done[gi].seqs[k]));
        res.s3_sequence_fault.push_back(j);
      }
      for (std::size_t j : done[gi].credited) {
        res.outcome[j] = FaultOutcome::DetectedSeq;
        ++res.s3_detected;
        ++res.ledger_dropped;
      }
      if (obs && !done[gi].credited.empty()) {
        obs->add(Ctr::DroppedByLedger, done[gi].credited.size());
      }
    }
  }

  // Cross-group ledger pass: every step-3 sequence ends up in the exported
  // program, so one packed simulation of their concatenation against the
  // still-open faults credits detections across group boundaries (the
  // verdict is established from the all-X start, hence valid in any program
  // position).  Credited faults skip the expensive final individual models.
  if (opt.dominance && !res.s3_sequences.empty()) {
    std::vector<Fault> open;
    std::vector<std::size_t> open_idx;
    for (std::size_t j : remaining) {
      if (res.outcome[j] == FaultOutcome::Undetected) {
        open.push_back(faults[j]);
        open_idx.push_back(j);
      }
    }
    if (!open.empty()) {
      const ObsSpan span(obs, "step3.ledger");
      TestSequence all;
      for (const TestSequence& s : res.s3_sequences) {
        all.insert(all.end(), s.begin(), s.end());
      }
      const SeqFaultSimResult r =
          s3sim.run(all, open, Val::X, &pool, obs, open_idx);
      std::size_t credited = 0;
      for (std::size_t k = 0; k < open.size(); ++k) {
        if (r.detect_cycle[k] >= 0) {
          res.outcome[open_idx[k]] = FaultOutcome::DetectedSeq;
          ++res.s3_detected;
          ++credited;
          if (obs) obs->charge(Attr::CreditEvents, open_idx[k]);
        }
      }
      res.ledger_dropped += credited;
      if (obs && credited) obs->add(Ctr::DroppedByLedger, credited);
      if (verbose && credited) {
        std::snprintf(pbuf, sizeof pbuf,
                      "step3: ledger credited %zu cross-group detections",
                      credited);
        obs->progress_line(pbuf);
      }
    }
  }

  // Final faults: individual maximal-window models, bigger budget.
  ReducedModelOptions fopt = ropt;
  fopt.atpg.backtrack_limit = opt.final_backtrack_limit;
  fopt.atpg.time_limit_ms = opt.final_time_limit_ms;
  ReducedCircuitBuilder final_builder(model, fopt);
  std::vector<std::size_t> final_idx;
  for (std::size_t j : remaining) {
    if (res.outcome[j] == FaultOutcome::Undetected) final_idx.push_back(j);
  }

  // One task per final fault, each building its own maximal-window model;
  // merged in `final_idx` order (identical to the serial loop).
  enum class FinalVerdict : std::uint8_t {
    Detected, Unverified, Untestable, Aborted, NoSites,
  };
  struct FinalOutcome {
    FinalVerdict verdict = FinalVerdict::NoSites;
    TestSequence seq;
  };
  std::vector<FinalOutcome> fdone(final_idx.size());
  auto run_final = [&](std::size_t k) {
    const ObsSpan span(obs, "s3.final");
    struct Tick {
      ObsRegistry* obs;
      ~Tick() {
        if (obs) obs->phase_tick();
      }
    } tick{obs};
    const std::size_t j = final_idx[k];
    AtpgGroup g;
    g.kind = 1;
    g.fault_indices = {j};
    g.window = make_fault_window(j, res.info[j]).chains;
    const Fault f = faults[j];
    const ReducedModel rm =
        final_builder.build(g, std::span(&f, 1), opt.final_extra_frames);
    const auto sites = rm.um.map_fault(f);
    if (sites.empty()) return;  // NoSites
    const AtpgResult r =
        rm.podem->generate(sites, static_cast<std::int64_t>(j));
    if (r.status == AtpgStatus::Detected) {
      // Realise the in-model test now; end-to-end verification of all final
      // detections is batched below as (fault, sequence) pairs so many
      // replays retire per packed sweep.
      const SeqTest t = final_builder.extract_test(rm, r);
      fdone[k].seq = final_builder.realize(t, maxlen + 2);
      fdone[k].verdict = FinalVerdict::Detected;
    } else if (r.status == AtpgStatus::Untestable) {
      fdone[k].verdict = FinalVerdict::Untestable;
    } else {
      fdone[k].verdict = FinalVerdict::Aborted;
    }
  };
  {
    if (obs) obs->begin_phase("step3.final", final_idx.size());
    const ObsSpan phase(obs, "step3.final");
    parallel_for(pool, final_idx.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k) run_final(k);
    });
  }
  // Batched verification: each (fault, realised sequence) pair is an
  // independent replay, so the verdicts — and therefore every outcome and
  // counter below — are identical to the old one-serial-run-per-fault loop.
  if (opt.verify_seq) {
    std::vector<FaultSeqPair> vpairs;
    std::vector<std::size_t> vslot;
    std::vector<std::size_t> vids;
    for (std::size_t k = 0; k < final_idx.size(); ++k) {
      if (fdone[k].verdict == FinalVerdict::Detected) {
        vpairs.push_back({faults[final_idx[k]], &fdone[k].seq});
        vslot.push_back(k);
        vids.push_back(final_idx[k]);
      }
    }
    if (!vpairs.empty()) {
      const ObsSpan span(obs, "step3.final_verify");
      const std::vector<int> vr =
          s3sim.run_pairs(vpairs, Val::X, &pool, obs, vids);
      for (std::size_t i = 0; i < vpairs.size(); ++i) {
        if (vr[i] < 0) {
          fdone[vslot[i]].verdict = FinalVerdict::Unverified;
          fdone[vslot[i]].seq.clear();
        }
      }
    }
  }
  for (std::size_t k = 0; k < final_idx.size(); ++k) {
    const std::size_t j = final_idx[k];
    ++res.s3_circuits_final;
    if (obs) obs->add(Ctr::S3FinalFaults);
    switch (fdone[k].verdict) {
      case FinalVerdict::Detected:
        res.outcome[j] = FaultOutcome::DetectedFinal;
        ++res.s3_detected;
        res.s3_sequences.push_back(std::move(fdone[k].seq));
        res.s3_sequence_fault.push_back(j);
        break;
      case FinalVerdict::Unverified:
        ++res.s3_unverified;
        ++res.s3_undetected;  // in-model only; does not reproduce on silicon
        break;
      case FinalVerdict::Untestable:
        res.outcome[j] = FaultOutcome::Undetectable;
        ++res.s3_undetectable;
        break;
      case FinalVerdict::Aborted:
      case FinalVerdict::NoSites:
        ++res.s3_undetected;
        break;
    }
  }
  res.s3_seconds = seconds_since(t0);
  res.s3_cpu_seconds = process_cpu_seconds() - cpu0;
  if (obs) obs->sample_rss("s3");
  if (verbose) {
    std::snprintf(pbuf, sizeof pbuf,
                  "step3: %zu group + %zu final models, %zu detected, "
                  "%zu undetectable, %zu undetected (%.3fs)",
                  res.s3_circuits_group, res.s3_circuits_final,
                  res.s3_detected, res.s3_undetectable, res.s3_undetected,
                  res.s3_seconds);
    obs->progress_line(pbuf);
  }
  if (obs) {
    obs->capture_pool(pool);
    obs->end_phase();
    obs->detach_pool();
    set_status_registry(prev_status);
  }
  return res;
}

}  // namespace fsct
