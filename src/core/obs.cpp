#include "core/obs.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <ostream>
#include <sstream>

#ifndef _WIN32
#include <signal.h>  // sigaction: save/restore needs more than std::signal
#endif

#include "core/io_util.h"
#include "core/json.h"
#include "core/pipeline.h"

namespace fsct {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "classify_faults",
    "classify_implication_events",
    "alternating_cycles",
    "alternating_detected",
    "podem_calls",
    "podem_detected",
    "podem_untestable",
    "podem_aborts",
    "podem_time_limit_hits",
    "podem_decisions",
    "podem_backtracks",
    "ppsfp_blocks",
    "ppsfp_fault_sims",
    "ppsfp_events",
    "ppsfp_faults_dropped",
    "seqsim_packed_passes",
    "seqsim_serial_runs",
    "seqsim_cycles",
    "seqsim_faults_dropped",
    "s3_groups",
    "s3_final_faults",
    "dominance_dropped",
    "flush_credit_detected",
    "dropped_by_ledger",
    "untestable_propagated",
    "trace_events_dropped",
};

constexpr const char* kGaugeNames[kNumGauges] = {
    "jobs",
    "hardware_concurrency",
    "total_faults",
    "max_chain_length",
    "current_rss_kb",
    "peak_rss_kb",
};

constexpr const char* kHistNames[kNumHists] = {
    "podem_decision_depth",
    "podem_backtracks_per_call",
    "s3_group_size",
};

constexpr const char* kAttrNames[kNumAttrs] = {
    "podem_calls",
    "podem_decisions",
    "podem_backtracks",
    "seq_sims",
    "seq_cycles",
    "pair_replays",
    "credit_events",
    "wall_nanos",
};

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_ts(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

/// Histogram as a JSON array, trailing empty buckets trimmed.
std::string hist_json(const std::array<std::uint64_t, kHistBuckets>& b) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] != 0) last = i + 1;
  }
  std::string out = "[";
  for (std::size_t i = 0; i < last; ++i) {
    if (i) out += ", ";
    out += std::to_string(b[i]);
  }
  return out + "]";
}

}  // namespace

const char* counter_name(Ctr c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}
const char* gauge_name(Gauge g) {
  return kGaugeNames[static_cast<std::size_t>(g)];
}
const char* hist_name(Hist h) {
  return kHistNames[static_cast<std::size_t>(h)];
}
const char* attr_name(Attr a) {
  return kAttrNames[static_cast<std::size_t>(a)];
}

namespace {

// The status registry: one process-wide "current run" pointer the SIGUSR1 /
// heartbeat monitor reads.  The mutex covers both the pointer and every
// dereference from the monitor thread, so a registry can never be destroyed
// mid-dump (the destructor detaches under the same lock).
std::mutex g_status_m;
ObsRegistry* g_status_reg = nullptr;
// Lock-free atomic rather than volatile sig_atomic_t: the handler runs on
// whatever thread receives the signal while the monitor thread polls, so the
// flag needs both async-signal-safety and cross-thread ordering.
std::atomic<int> g_sigusr1_pending{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");

void sigusr1_handler(int) {
  g_sigusr1_pending.store(1, std::memory_order_relaxed);
}

bool take_sigusr1() {
  return g_sigusr1_pending.exchange(0, std::memory_order_relaxed) != 0;
}

// Reference-counted sigaction installation.  A monitor acquires the handler
// on start and releases it on teardown; the action that was installed before
// the *first* acquire is restored when the count reaches zero, so a daemon
// cycling one monitor per session never leaves our handler pointing at a
// dead registry.  install_sigusr1_handler() sets g_sig_pinned, which keeps
// the handler installed for the rest of the process (the CLI's behaviour).
std::mutex g_sig_m;
int g_sig_refs = 0;
bool g_sig_pinned = false;
bool g_sig_installed = false;
#ifndef _WIN32
struct sigaction g_sig_prev {};

void sigusr1_install_locked() {
  struct sigaction sa {};
  sa.sa_handler = sigusr1_handler;
  sigemptyset(&sa.sa_mask);
  // Deliberately no SA_RESTART: blocking syscalls must wake with EINTR so a
  // serving daemon's poll/accept loops notice signals promptly.  Every write
  // on the status/heartbeat paths goes through core/io_util.h's retry
  // helpers, which absorb the interruptions this causes.
  sa.sa_flags = 0;
  sigaction(SIGUSR1, &sa, &g_sig_prev);
  g_sig_installed = true;
}
#endif

void sigusr1_acquire() {
#ifndef _WIN32
  std::lock_guard<std::mutex> lk(g_sig_m);
  if (g_sig_refs++ == 0 && !g_sig_installed) sigusr1_install_locked();
#endif
}

void sigusr1_release() {
#ifndef _WIN32
  std::lock_guard<std::mutex> lk(g_sig_m);
  if (--g_sig_refs == 0 && !g_sig_pinned) {
    sigaction(SIGUSR1, &g_sig_prev, nullptr);
    g_sig_installed = false;
  }
#endif
}

}  // namespace

ObsRegistry* set_status_registry(ObsRegistry* reg) {
  std::lock_guard<std::mutex> lk(g_status_m);
  ObsRegistry* prev = g_status_reg;
  g_status_reg = reg;
  return prev;
}

void install_sigusr1_handler() {
#ifndef _WIN32
  std::lock_guard<std::mutex> lk(g_sig_m);
  g_sig_pinned = true;
  if (!g_sig_installed) sigusr1_install_locked();
#endif
}

bool sigusr1_handler_active() {
#ifndef _WIN32
  struct sigaction cur {};
  if (sigaction(SIGUSR1, nullptr, &cur) != 0) return false;
  return cur.sa_handler == &sigusr1_handler;
#else
  return false;
#endif
}

double process_cpu_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

void test_phase_sleep(const char* phase) {
  const char* spec = std::getenv("FSCT_TEST_PHASE_SLEEP");
  if (!spec) return;
  const char* colon = std::strchr(spec, ':');
  if (!colon) return;
  if (std::strncmp(spec, phase, static_cast<std::size_t>(colon - spec)) != 0 ||
      std::strlen(phase) != static_cast<std::size_t>(colon - spec)) {
    return;
  }
  const long ms = std::strtol(colon + 1, nullptr, 10);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

ObsRegistry::ObsRegistry()
    : shards_(new Shard[kShards]),
      epoch_(std::chrono::steady_clock::now()) {}

ObsRegistry::~ObsRegistry() {
  {
    // Detach from the status registry first: the monitor dereferences the
    // registry only while holding g_status_m, so after this block no other
    // thread can observe the cells we free below.
    std::lock_guard<std::mutex> lk(g_status_m);
    if (g_status_reg == this) g_status_reg = nullptr;
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    delete[] shards_[s].attr.load(std::memory_order_relaxed);
  }
}

// --- per-fault work attribution ---------------------------------------------

void ObsRegistry::init_attribution(std::size_t num_faults) {
  attr_faults_ = num_faults;
  attr_on_.store(num_faults > 0, std::memory_order_relaxed);
}

void ObsRegistry::charge_slow(Attr a, std::size_t fault, std::uint64_t n) {
  Shard& s = shard();
  std::atomic<std::uint64_t>* cells = s.attr.load(std::memory_order_acquire);
  if (!cells) {
    std::lock_guard<std::mutex> lk(attr_m_);
    cells = s.attr.load(std::memory_order_relaxed);
    if (!cells) {
      cells = new std::atomic<std::uint64_t>[attr_faults_ * kNumAttrs]();
      s.attr.store(cells, std::memory_order_release);
    }
  }
  cells[fault * kNumAttrs + static_cast<std::size_t>(a)].fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t ObsRegistry::attr_total(Attr a, std::size_t fault) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::atomic<std::uint64_t>* cells =
        shards_[s].attr.load(std::memory_order_acquire);
    if (cells) {
      sum += cells[fault * kNumAttrs + static_cast<std::size_t>(a)].load(
          std::memory_order_relaxed);
    }
  }
  return sum;
}

std::vector<std::uint64_t> ObsRegistry::attribution_table() const {
  std::vector<std::uint64_t> out(attr_faults_ * kNumDetAttrs, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::atomic<std::uint64_t>* cells =
        shards_[s].attr.load(std::memory_order_acquire);
    if (!cells) continue;
    for (std::size_t f = 0; f < attr_faults_; ++f) {
      for (std::size_t a = 0; a < kNumDetAttrs; ++a) {
        out[f * kNumDetAttrs + a] +=
            cells[f * kNumAttrs + a].load(std::memory_order_relaxed);
      }
    }
  }
  return out;
}

std::string ObsRegistry::attribution_json() const {
  const std::vector<std::uint64_t> t = attribution_table();
  std::string out = "{\"faults\": " + std::to_string(attr_faults_) +
                    ", \"columns\": [";
  for (std::size_t a = 0; a < kNumDetAttrs; ++a) {
    if (a) out += ", ";
    out += "\"";
    out += kAttrNames[a];
    out += "\"";
  }
  out += "], \"rows\": {";
  bool first = true;
  for (std::size_t f = 0; f < attr_faults_; ++f) {
    bool any = false;
    for (std::size_t a = 0; a < kNumDetAttrs; ++a) {
      any |= t[f * kNumDetAttrs + a] != 0;
    }
    if (!any) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::to_string(f) + "\": [";
    for (std::size_t a = 0; a < kNumDetAttrs; ++a) {
      if (a) out += ", ";
      out += std::to_string(t[f * kNumDetAttrs + a]);
    }
    out += "]";
  }
  return out + "}}";
}

std::size_t ObsRegistry::bucket(std::uint64_t value) {
  return std::min<std::size_t>(std::bit_width(value), kHistBuckets - 1);
}

std::uint64_t ObsRegistry::total(Ctr c) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    sum += shards_[s].counters[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  return sum;
}

std::array<std::uint64_t, kHistBuckets> ObsRegistry::hist_total(Hist h) const {
  std::array<std::uint64_t, kHistBuckets> out{};
  for (std::size_t s = 0; s < kShards; ++s) {
    const auto& hb = shards_[s].hists[static_cast<std::size_t>(h)];
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      out[i] += hb[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t ObsRegistry::hist_sum(Hist h) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    sum += shards_[s].hist_sums[static_cast<std::size_t>(h)].load(
        std::memory_order_relaxed);
  }
  return sum;
}

double ObsRegistry::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ObsRegistry::set_trace_limit_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(trace_m_);
  trace_limit_bytes_ = bytes;
}

void ObsRegistry::add_trace_event(const char* name, unsigned tid, double t0_us,
                                  double t1_us) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lk(trace_m_);
    // Conservative estimate of the two JSON lines a span becomes; keeping
    // the budget in eventual-output bytes makes --trace-max-mb honest.
    const std::size_t est = 96 + 2 * std::strlen(name);
    if (trace_limit_bytes_ != 0 && trace_bytes_ + est > trace_limit_bytes_) {
      if (!trace_truncated_) {
        trace_truncated_ = true;
        trace_events_.push_back({"trace.truncated", tid, t0_us, t1_us});
      }
      dropped = true;
    } else {
      trace_bytes_ += est;
      trace_events_.push_back({name, tid, t0_us, t1_us});
    }
  }
  if (dropped) add(Ctr::TraceEventsDropped);
}

std::size_t ObsRegistry::trace_event_count() const {
  std::lock_guard<std::mutex> lk(trace_m_);
  return trace_events_.size();
}

std::vector<ObsRegistry::SpanEvent> ObsRegistry::trace_snapshot() const {
  std::lock_guard<std::mutex> lk(trace_m_);
  std::vector<SpanEvent> out;
  out.reserve(trace_events_.size());
  for (const TraceEvent& e : trace_events_) {
    out.push_back({e.name, e.tid, e.t0_us, e.t1_us});
  }
  return out;
}

void ObsRegistry::write_trace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lk(trace_m_);
    events = trace_events_;
  }
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \"fsct pipeline\"}}";
  // One named track per executor seen in the events.
  std::vector<unsigned> tids;
  for (const TraceEvent& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (unsigned tid : tids) {
    os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": {\"name\": \""
       << (tid == 0 ? "executor 0 (caller)"
                    : "executor " + std::to_string(tid) + " (worker)")
       << "\"}}";
  }
  for (const TraceEvent& e : events) {
    os << ",\n{\"name\": \"" << e.name
       << "\", \"ph\": \"B\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << fmt_ts(e.t0_us) << "}";
    os << ",\n{\"name\": \"" << e.name
       << "\", \"ph\": \"E\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << fmt_ts(e.t1_us) << "}";
  }
  os << "\n]\n}\n";
}

void ObsRegistry::capture_pool(const ThreadPool& pool) {
  pool_stats_ = pool.worker_stats();
}

bool ObsRegistry::read_rss_kb(long& current_kb, long& peak_kb) {
  current_kb = peak_kb = 0;
#ifdef __linux__
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      current_kb = std::strtol(line.c_str() + 6, nullptr, 10);
    } else if (line.rfind("VmHWM:", 0) == 0) {
      peak_kb = std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return current_kb != 0 || peak_kb != 0;
#else
  return false;
#endif
}

void ObsRegistry::sample_rss(const char* phase) {
  long cur = 0, peak = 0;
  if (!read_rss_kb(cur, peak)) return;
  set_gauge(Gauge::CurrentRssKb, cur);
  set_gauge(Gauge::PeakRssKb, peak);
  std::lock_guard<std::mutex> lk(live_m_);
  rss_phases_.emplace_back(phase, cur);
}

std::vector<std::pair<std::string, long>> ObsRegistry::rss_phases() const {
  std::lock_guard<std::mutex> lk(live_m_);
  return rss_phases_;
}

void ObsRegistry::attach_pool(const ThreadPool* pool) {
  std::lock_guard<std::mutex> lk(live_m_);
  live_pool_ = pool;
}

void ObsRegistry::set_context(std::string ctx) {
  std::lock_guard<std::mutex> lk(live_m_);
  context_ = std::move(ctx);
}

std::string ObsRegistry::context() const {
  std::lock_guard<std::mutex> lk(live_m_);
  return context_;
}

void ObsRegistry::write_status(std::ostream& os) const {
  os << "=== fsct status ===\n";
  {
    const std::string ctx = context();
    if (!ctx.empty()) os << "run: " << ctx << "\n";
  }
  os << "elapsed: " << fmt_double(now_us() / 1e6) << "s, cpu: "
     << fmt_double(process_cpu_seconds()) << "s\n";
  const PhaseProgress p = phase_progress();
  if (p.name) {
    os << "phase: " << p.name << " " << p.done << "/" << p.total;
    if (p.total > 0) {
      os << " (" << fmt_double(100.0 * static_cast<double>(p.done) /
                               static_cast<double>(p.total))
         << "%)";
    }
    os << "\n";
  } else {
    os << "phase: (idle)\n";
  }
  long cur = 0, peak = 0;
  if (read_rss_kb(cur, peak)) {
    os << "rss: current " << cur << " kB, peak " << peak << " kB\n";
  }
  {
    std::lock_guard<std::mutex> lk(live_m_);
    if (live_pool_) {
      const auto ws = live_pool_->worker_stats();
      os << "pool: " << live_pool_->jobs() << " executors, "
         << live_pool_->pending() << " pending tasks\n";
      for (std::size_t i = 0; i < ws.size(); ++i) {
        os << "  worker " << (i + 1) << ": tasks=" << ws[i].tasks
           << " steals=" << ws[i].steals
           << " global_pops=" << ws[i].global_pops
           << " idle=" << fmt_double(ws[i].idle_seconds) << "s\n";
      }
    }
  }
  os << "counters: " << counters_json() << "\n";
  os << "=== end status ===";
}

// --- ObsMonitor --------------------------------------------------------------

ObsMonitor::ObsMonitor() : ObsMonitor(Options()) {}

ObsMonitor::ObsMonitor(Options opt) : opt_(std::move(opt)) {
  if (!opt_.sink) {
    opt_.sink = [](const std::string& line) {
      // write_line, not fprintf: a SIGUSR1/SIGTERM landing mid-write must not
      // truncate a heartbeat line (handlers are installed without SA_RESTART).
      write_line(2, "[fsct] " + line);
    };
  }
  if (opt_.sigusr1) sigusr1_acquire();
  thread_ = std::thread([this] { loop(); });
}

ObsMonitor::~ObsMonitor() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  if (opt_.sigusr1) sigusr1_release();
}

void ObsMonitor::dump_now() { emit_status(); }

void ObsMonitor::loop() {
  auto next_heartbeat = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt_.heartbeat_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait_for(lk, std::chrono::milliseconds(opt_.poll_ms),
                   [this] { return stop_; });
      if (stop_) return;
    }
    if (opt_.sigusr1 && take_sigusr1()) emit_status();
    if (opt_.heartbeat &&
        std::chrono::steady_clock::now() >= next_heartbeat) {
      emit_heartbeat();
      next_heartbeat = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(opt_.heartbeat_ms);
    }
  }
}

void ObsMonitor::emit_status() {
  std::ostringstream oss;
  if (opt_.registry) {
    opt_.registry->write_status(oss);
  } else {
    std::lock_guard<std::mutex> lk(g_status_m);
    if (!g_status_reg) {
      opt_.sink("status: no active run");
      return;
    }
    g_status_reg->write_status(oss);
  }
  // One sink call per line so custom sinks (and stderr) stay line-atomic.
  std::istringstream iss(oss.str());
  for (std::string line; std::getline(iss, line);) opt_.sink(line);
}

HeartbeatRate::Estimate HeartbeatRate::update(
    const char* phase, std::uint64_t done, std::uint64_t total,
    std::chrono::steady_clock::time_point now) {
  // Reset on phase change (the name literal's identity is the phase's
  // identity) and on done moving backwards — a fresh pipeline run reusing
  // the same phase literal must not inherit the previous run's samples.
  if (phase != phase_ || (!window_.empty() && done < window_.back().done)) {
    window_.clear();
    phase_ = phase;
  }
  window_.push_back({now, done});
  while (window_.size() > 16) window_.erase(window_.begin());
  Estimate est;
  if (window_.size() >= 2) {
    const double dt =
        std::chrono::duration<double>(now - window_.front().t).count();
    if (dt > 0) {
      est.rate = static_cast<double>(done - window_.front().done) / dt;
    }
  }
  // Totals may legitimately shrink below done mid-phase (ledger drops cut
  // step-3 totals); clamp remaining work at zero so the ETA can never go
  // negative or wrap the unsigned subtraction into centuries.
  const std::uint64_t remaining = total > done ? total - done : 0;
  if (est.rate > 0) est.eta_seconds = static_cast<double>(remaining) / est.rate;
  return est;
}

void ObsMonitor::emit_heartbeat() {
  ObsRegistry::PhaseProgress p;
  std::string ctx;
  if (opt_.registry) {
    p = opt_.registry->phase_progress();
    ctx = opt_.registry->context();
  } else {
    std::lock_guard<std::mutex> lk(g_status_m);
    if (!g_status_reg) return;
    p = g_status_reg->phase_progress();
    ctx = g_status_reg->context();
  }
  if (!p.name) return;
  const HeartbeatRate::Estimate est =
      rate_.update(p.name, p.done, p.total, std::chrono::steady_clock::now());
  char buf[384];
  char eta[32] = "?";
  if (est.eta_seconds >= 0) {
    std::snprintf(eta, sizeof eta, "%.0fs", est.eta_seconds);
  }
  long cur = 0, peak = 0;
  ObsRegistry::read_rss_kb(cur, peak);
  char run[96] = "";
  if (!ctx.empty()) std::snprintf(run, sizeof run, "[%s] ", ctx.c_str());
  std::snprintf(buf, sizeof buf,
                "heartbeat %sphase=%s done=%llu/%llu rate=%.1f/s eta=%s "
                "rss=%ldMB peak=%ldMB",
                run, p.name, static_cast<unsigned long long>(p.done),
                static_cast<unsigned long long>(p.total), est.rate, eta,
                cur / 1024, peak / 1024);
  opt_.sink(buf);
}

std::string ObsRegistry::counters_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i) out += ", ";
    out += "\"";
    out += kCounterNames[i];
    out += "\": ";
    out += std::to_string(total(static_cast<Ctr>(i)));
  }
  out += ", \"histograms\": {";
  for (std::size_t i = 0; i < kNumHists; ++i) {
    if (i) out += ", ";
    out += "\"";
    out += kHistNames[i];
    out += "\": ";
    out += hist_json(hist_total(static_cast<Hist>(i)));
  }
  return out + "}}";
}

double hist_quantile(const std::array<std::uint64_t, kHistBuckets>& buckets,
                     double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return -1;
  q = std::min(1.0, std::max(0.0, q));
  // The sample with (1-based) rank ceil(q * total); rank 0 maps to rank 1.
  const double want = q * static_cast<double>(total);
  std::uint64_t rank = static_cast<std::uint64_t>(want);
  if (static_cast<double>(rank) < want) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cum + buckets[i] >= rank) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1}
                                                           << (i - 1));
      if (i + 1 >= kHistBuckets) return lo;  // open tail: floor, no upper edge
      const double hi =
          i == 0 ? 0.0 : static_cast<double>((std::uint64_t{1} << i) - 1);
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(buckets[i]);
      return lo + (hi - lo) * frac;
    }
    cum += buckets[i];
  }
  return -1;  // unreachable: total > 0 puts some rank in some bucket
}

void ObsRegistry::merge_from(const ObsRegistry& other) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Ctr c = static_cast<Ctr>(i);
    if (const std::uint64_t n = other.total(c)) add(c, n);
  }
  Shard& s = shard();
  for (std::size_t h = 0; h < kNumHists; ++h) {
    const auto b = other.hist_total(static_cast<Hist>(h));
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (b[i]) s.hists[h][i].fetch_add(b[i], std::memory_order_relaxed);
    }
    if (const std::uint64_t sum = other.hist_sum(static_cast<Hist>(h))) {
      s.hist_sums[h].fetch_add(sum, std::memory_order_relaxed);
    }
  }
}

void ObsRegistry::import_hist(Hist h, std::span<const std::uint64_t> buckets,
                              std::uint64_t sum) {
  Shard& s = shard();
  const std::size_t hi = static_cast<std::size_t>(h);
  const std::size_t n = std::min(buckets.size(), kHistBuckets);
  for (std::size_t i = 0; i < n; ++i) {
    if (buckets[i]) {
      s.hists[hi][i].fetch_add(buckets[i], std::memory_order_relaxed);
    }
  }
  if (sum) s.hist_sums[hi].fetch_add(sum, std::memory_order_relaxed);
}

void ObsRegistry::write_openmetrics(std::ostream& os) const {
  write_openmetrics_body(os);
  os << "# EOF\n";
}

void ObsRegistry::write_openmetrics_body(std::ostream& os) const {
  // Counters: the TYPE line names the metric family, samples carry the
  // mandatory `_total` suffix.
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    os << "# TYPE fsct_" << kCounterNames[i] << " counter\n";
    os << "fsct_" << kCounterNames[i] << "_total "
       << total(static_cast<Ctr>(i)) << "\n";
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    os << "# TYPE fsct_" << kGaugeNames[i] << " gauge\n";
    os << "fsct_" << kGaugeNames[i] << " " << gauges_[i] << "\n";
  }
  // Histograms: cumulative buckets with the log2 scheme's upper bounds
  // (bucket 0 holds value 0 -> le="0"; bucket i holds [2^(i-1), 2^i - 1]
  // -> le = 2^i - 1; the tail bucket becomes le="+Inf").
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const Hist h = static_cast<Hist>(i);
    const auto b = hist_total(h);
    os << "# TYPE fsct_" << kHistNames[i] << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t j = 0; j < kHistBuckets; ++j) {
      cum += b[j];
      os << "fsct_" << kHistNames[i] << "_bucket{le=\"";
      if (j == 0) {
        os << "0";
      } else if (j + 1 < kHistBuckets) {
        os << ((std::uint64_t{1} << j) - 1);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cum << "\n";
    }
    os << "fsct_" << kHistNames[i] << "_sum " << hist_sum(h) << "\n";
    os << "fsct_" << kHistNames[i] << "_count " << cum << "\n";
  }
}

void ObsRegistry::write_run_report(std::ostream& os, const PipelineResult& r,
                                   const AttrContext* ctx) const {
  os << "{\n\"schema\": \"fsct-run-report-v2\",\n";

  // Every PipelineResult field; bulky vectors are reported as sizes plus the
  // derived data a consumer actually plots (the detection curve, the per-
  // outcome tally), never megabytes of raw test data.
  os << "\"result\": {\n";
  os << "  \"jobs_used\": " << r.jobs_used << ",\n";
  os << "  \"total_faults\": " << r.total_faults << ",\n";
  os << "  \"easy\": " << r.easy << ",\n";
  os << "  \"hard\": " << r.hard << ",\n";
  os << "  \"affecting\": " << r.affecting() << ",\n";
  os << "  \"classify_seconds\": " << fmt_double(r.classify_seconds) << ",\n";
  os << "  \"classify_cpu_seconds\": " << fmt_double(r.classify_cpu_seconds)
     << ",\n";
  os << "  \"easy_verified\": " << r.easy_verified << ",\n";
  os << "  \"alternating_seconds\": " << fmt_double(r.alternating_seconds)
     << ",\n";
  os << "  \"alternating_cpu_seconds\": "
     << fmt_double(r.alternating_cpu_seconds) << ",\n";
  os << "  \"dominance_targets\": " << r.dominance_targets << ",\n";
  os << "  \"flush_detected\": " << r.flush_detected << ",\n";
  os << "  \"ledger_dropped\": " << r.ledger_dropped << ",\n";
  os << "  \"s2_detected\": " << r.s2_detected << ",\n";
  os << "  \"s2_undetectable\": " << r.s2_undetectable << ",\n";
  os << "  \"s2_undetected\": " << r.s2_undetected << ",\n";
  os << "  \"s2_vectors\": " << r.s2_vectors << ",\n";
  os << "  \"s2_seconds\": " << fmt_double(r.s2_seconds) << ",\n";
  os << "  \"s2_cpu_seconds\": " << fmt_double(r.s2_cpu_seconds) << ",\n";
  os << "  \"detection_curve\": [";
  for (std::size_t i = 0; i < r.detection_curve.size(); ++i) {
    os << (i ? ", " : "") << r.detection_curve[i];
  }
  os << "],\n";
  os << "  \"s3_circuits_group\": " << r.s3_circuits_group << ",\n";
  os << "  \"s3_circuits_final\": " << r.s3_circuits_final << ",\n";
  os << "  \"s3_detected\": " << r.s3_detected << ",\n";
  os << "  \"s3_undetectable\": " << r.s3_undetectable << ",\n";
  os << "  \"s3_undetected\": " << r.s3_undetected << ",\n";
  os << "  \"s3_unverified\": " << r.s3_unverified << ",\n";
  os << "  \"s3_seconds\": " << fmt_double(r.s3_seconds) << ",\n";
  os << "  \"s3_cpu_seconds\": " << fmt_double(r.s3_cpu_seconds) << ",\n";
  os << "  \"s3_sequences\": " << r.s3_sequences.size() << ",\n";
  os << "  \"s3_sequence_fault\": [";
  for (std::size_t i = 0; i < r.s3_sequence_fault.size(); ++i) {
    os << (i ? ", " : "") << r.s3_sequence_fault[i];
  }
  os << "],\n";
  static constexpr const char* kOutcomeNames[] = {
      "not_affecting",  "easy_alternating", "detected_flush",
      "detected_comb",  "detected_seq",     "detected_final",
      "undetectable",   "undetected",
  };
  std::size_t tally[std::size(kOutcomeNames)] = {};
  for (FaultOutcome o : r.outcome) ++tally[static_cast<std::size_t>(o)];
  os << "  \"outcomes\": {";
  for (std::size_t i = 0; i < std::size(kOutcomeNames); ++i) {
    os << (i ? ", " : "") << "\"" << kOutcomeNames[i] << "\": " << tally[i];
  }
  os << "},\n";
  os << "  \"info\": " << r.info.size() << "\n";
  os << "},\n";

  os << "\"counters\": " << counters_json() << ",\n";

  os << "\"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    os << (i ? ", " : "") << "\"" << kGaugeNames[i]
       << "\": " << gauges_[i];
  }
  os << "},\n";

  // Per-fault attribution hotlist, bounded to the top kTopK so reports stay
  // small on big circuits; the full deterministic table is available via
  // attribution_json() / `fsct profile`.
  os << "\"attribution\": ";
  if (!attribution_enabled()) {
    os << "{\"enabled\": false},\n";
  } else {
    constexpr std::size_t kTopK = 20;
    std::vector<std::size_t> ids;
    std::vector<std::array<std::uint64_t, kNumAttrs>> rows(attr_faults_);
    for (std::size_t f = 0; f < attr_faults_; ++f) {
      bool any = false;
      for (std::size_t a = 0; a < kNumAttrs; ++a) {
        rows[f][a] = attr_total(static_cast<Attr>(a), f);
        any |= rows[f][a] != 0;
      }
      if (any) ids.push_back(f);
    }
    auto col = [&](std::size_t f, Attr a) {
      return rows[f][static_cast<std::size_t>(a)];
    };
    std::sort(ids.begin(), ids.end(), [&](std::size_t x, std::size_t y) {
      if (col(x, Attr::WallNanos) != col(y, Attr::WallNanos)) {
        return col(x, Attr::WallNanos) > col(y, Attr::WallNanos);
      }
      if (col(x, Attr::PodemDecisions) != col(y, Attr::PodemDecisions)) {
        return col(x, Attr::PodemDecisions) > col(y, Attr::PodemDecisions);
      }
      if (col(x, Attr::SeqCycles) != col(y, Attr::SeqCycles)) {
        return col(x, Attr::SeqCycles) > col(y, Attr::SeqCycles);
      }
      return x < y;
    });
    os << "{\"enabled\": true, \"faults\": " << attr_faults_
       << ", \"active\": " << ids.size() << ", \"columns\": [";
    for (std::size_t a = 0; a < kNumAttrs; ++a) {
      os << (a ? ", " : "") << "\"" << kAttrNames[a] << "\"";
    }
    os << "], \"top\": [";
    const std::size_t k = std::min(kTopK, ids.size());
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t f = ids[i];
      os << (i ? ",\n  " : "\n  ") << "{\"id\": " << f;
      if (ctx && f < ctx->fault_names.size()) {
        os << ", \"name\": \"" << json_escape(ctx->fault_names[f])
           << "\", \"rep\": " << ctx->rep[f] << ", \"gate\": " << ctx->gate[f]
           << ", \"level\": " << ctx->level[f];
      }
      os << ", \"work\": [";
      for (std::size_t a = 0; a < kNumAttrs; ++a) {
        os << (a ? ", " : "") << rows[f][a];
      }
      os << "]}";
    }
    os << "]},\n";
  }

  // Per-phase resident-set samples (kB), taken at each phase boundary.
  os << "\"rss_phases\": {";
  {
    const auto samples = rss_phases();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      os << (i ? ", " : "") << "\"" << samples[i].first
         << "\": " << samples[i].second;
    }
  }
  os << "},\n";

  // Scheduler statistics: worker i here is executor i+1 in the trace (the
  // submitting thread, executor 0, runs chunks inline and is not a worker).
  os << "\"pool\": {\"workers\": [";
  for (std::size_t i = 0; i < pool_stats_.size(); ++i) {
    const ThreadPool::WorkerStats& w = pool_stats_[i];
    os << (i ? ", " : "") << "{\"executor\": " << (i + 1)
       << ", \"tasks\": " << w.tasks << ", \"steals\": " << w.steals
       << ", \"global_pops\": " << w.global_pops
       << ", \"idle_seconds\": " << fmt_double(w.idle_seconds) << "}";
  }
  os << "]},\n";

  os << "\"trace_events\": " << trace_event_count() << "\n}\n";
}

}  // namespace fsct
