#include "core/obs.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>

#include "core/pipeline.h"

namespace fsct {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "classify_faults",
    "classify_implication_events",
    "alternating_cycles",
    "alternating_detected",
    "podem_calls",
    "podem_detected",
    "podem_untestable",
    "podem_aborts",
    "podem_time_limit_hits",
    "podem_decisions",
    "podem_backtracks",
    "ppsfp_blocks",
    "ppsfp_fault_sims",
    "ppsfp_events",
    "ppsfp_faults_dropped",
    "seqsim_packed_passes",
    "seqsim_serial_runs",
    "seqsim_cycles",
    "seqsim_faults_dropped",
    "s3_groups",
    "s3_final_faults",
};

constexpr const char* kGaugeNames[kNumGauges] = {
    "jobs",
    "hardware_concurrency",
    "total_faults",
    "max_chain_length",
};

constexpr const char* kHistNames[kNumHists] = {
    "podem_decision_depth",
    "podem_backtracks_per_call",
    "s3_group_size",
};

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_ts(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

/// Histogram as a JSON array, trailing empty buckets trimmed.
std::string hist_json(const std::array<std::uint64_t, kHistBuckets>& b) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] != 0) last = i + 1;
  }
  std::string out = "[";
  for (std::size_t i = 0; i < last; ++i) {
    if (i) out += ", ";
    out += std::to_string(b[i]);
  }
  return out + "]";
}

}  // namespace

const char* counter_name(Ctr c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}
const char* gauge_name(Gauge g) {
  return kGaugeNames[static_cast<std::size_t>(g)];
}
const char* hist_name(Hist h) {
  return kHistNames[static_cast<std::size_t>(h)];
}

ObsRegistry::ObsRegistry()
    : shards_(new Shard[kShards]),
      epoch_(std::chrono::steady_clock::now()) {}

ObsRegistry::~ObsRegistry() = default;

std::size_t ObsRegistry::bucket(std::uint64_t value) {
  return std::min<std::size_t>(std::bit_width(value), kHistBuckets - 1);
}

std::uint64_t ObsRegistry::total(Ctr c) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    sum += shards_[s].counters[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  return sum;
}

std::array<std::uint64_t, kHistBuckets> ObsRegistry::hist_total(Hist h) const {
  std::array<std::uint64_t, kHistBuckets> out{};
  for (std::size_t s = 0; s < kShards; ++s) {
    const auto& hb = shards_[s].hists[static_cast<std::size_t>(h)];
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      out[i] += hb[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double ObsRegistry::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ObsRegistry::add_trace_event(const char* name, unsigned tid, double t0_us,
                                  double t1_us) {
  std::lock_guard<std::mutex> lk(trace_m_);
  trace_events_.push_back({name, tid, t0_us, t1_us});
}

std::size_t ObsRegistry::trace_event_count() const {
  std::lock_guard<std::mutex> lk(trace_m_);
  return trace_events_.size();
}

void ObsRegistry::write_trace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lk(trace_m_);
    events = trace_events_;
  }
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \"fsct pipeline\"}}";
  // One named track per executor seen in the events.
  std::vector<unsigned> tids;
  for (const TraceEvent& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (unsigned tid : tids) {
    os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": {\"name\": \""
       << (tid == 0 ? "executor 0 (caller)"
                    : "executor " + std::to_string(tid) + " (worker)")
       << "\"}}";
  }
  for (const TraceEvent& e : events) {
    os << ",\n{\"name\": \"" << e.name
       << "\", \"ph\": \"B\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << fmt_ts(e.t0_us) << "}";
    os << ",\n{\"name\": \"" << e.name
       << "\", \"ph\": \"E\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << fmt_ts(e.t1_us) << "}";
  }
  os << "\n]\n}\n";
}

void ObsRegistry::capture_pool(const ThreadPool& pool) {
  pool_stats_ = pool.worker_stats();
}

std::string ObsRegistry::counters_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i) out += ", ";
    out += "\"";
    out += kCounterNames[i];
    out += "\": ";
    out += std::to_string(total(static_cast<Ctr>(i)));
  }
  out += ", \"histograms\": {";
  for (std::size_t i = 0; i < kNumHists; ++i) {
    if (i) out += ", ";
    out += "\"";
    out += kHistNames[i];
    out += "\": ";
    out += hist_json(hist_total(static_cast<Hist>(i)));
  }
  return out + "}}";
}

void ObsRegistry::write_run_report(std::ostream& os,
                                   const PipelineResult& r) const {
  os << "{\n\"schema\": \"fsct-run-report-v1\",\n";

  // Every PipelineResult field; bulky vectors are reported as sizes plus the
  // derived data a consumer actually plots (the detection curve, the per-
  // outcome tally), never megabytes of raw test data.
  os << "\"result\": {\n";
  os << "  \"jobs_used\": " << r.jobs_used << ",\n";
  os << "  \"total_faults\": " << r.total_faults << ",\n";
  os << "  \"easy\": " << r.easy << ",\n";
  os << "  \"hard\": " << r.hard << ",\n";
  os << "  \"affecting\": " << r.affecting() << ",\n";
  os << "  \"classify_seconds\": " << fmt_double(r.classify_seconds) << ",\n";
  os << "  \"easy_verified\": " << r.easy_verified << ",\n";
  os << "  \"alternating_seconds\": " << fmt_double(r.alternating_seconds)
     << ",\n";
  os << "  \"s2_detected\": " << r.s2_detected << ",\n";
  os << "  \"s2_undetectable\": " << r.s2_undetectable << ",\n";
  os << "  \"s2_undetected\": " << r.s2_undetected << ",\n";
  os << "  \"s2_vectors\": " << r.s2_vectors << ",\n";
  os << "  \"s2_seconds\": " << fmt_double(r.s2_seconds) << ",\n";
  os << "  \"detection_curve\": [";
  for (std::size_t i = 0; i < r.detection_curve.size(); ++i) {
    os << (i ? ", " : "") << r.detection_curve[i];
  }
  os << "],\n";
  os << "  \"s3_circuits_group\": " << r.s3_circuits_group << ",\n";
  os << "  \"s3_circuits_final\": " << r.s3_circuits_final << ",\n";
  os << "  \"s3_detected\": " << r.s3_detected << ",\n";
  os << "  \"s3_undetectable\": " << r.s3_undetectable << ",\n";
  os << "  \"s3_undetected\": " << r.s3_undetected << ",\n";
  os << "  \"s3_unverified\": " << r.s3_unverified << ",\n";
  os << "  \"s3_seconds\": " << fmt_double(r.s3_seconds) << ",\n";
  os << "  \"s3_sequences\": " << r.s3_sequences.size() << ",\n";
  os << "  \"s3_sequence_fault\": [";
  for (std::size_t i = 0; i < r.s3_sequence_fault.size(); ++i) {
    os << (i ? ", " : "") << r.s3_sequence_fault[i];
  }
  os << "],\n";
  static constexpr const char* kOutcomeNames[] = {
      "not_affecting", "easy_alternating", "detected_comb", "detected_seq",
      "detected_final", "undetectable",    "undetected",
  };
  std::size_t tally[std::size(kOutcomeNames)] = {};
  for (FaultOutcome o : r.outcome) ++tally[static_cast<std::size_t>(o)];
  os << "  \"outcomes\": {";
  for (std::size_t i = 0; i < std::size(kOutcomeNames); ++i) {
    os << (i ? ", " : "") << "\"" << kOutcomeNames[i] << "\": " << tally[i];
  }
  os << "},\n";
  os << "  \"info\": " << r.info.size() << "\n";
  os << "},\n";

  os << "\"counters\": " << counters_json() << ",\n";

  os << "\"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    os << (i ? ", " : "") << "\"" << kGaugeNames[i]
       << "\": " << gauges_[i];
  }
  os << "},\n";

  // Scheduler statistics: worker i here is executor i+1 in the trace (the
  // submitting thread, executor 0, runs chunks inline and is not a worker).
  os << "\"pool\": {\"workers\": [";
  for (std::size_t i = 0; i < pool_stats_.size(); ++i) {
    const ThreadPool::WorkerStats& w = pool_stats_[i];
    os << (i ? ", " : "") << "{\"executor\": " << (i + 1)
       << ", \"tasks\": " << w.tasks << ", \"steals\": " << w.steals
       << ", \"global_pops\": " << w.global_pops
       << ", \"idle_seconds\": " << fmt_double(w.idle_seconds) << "}";
  }
  os << "]},\n";

  os << "\"trace_events\": " << trace_event_count() << "\n}\n";
}

}  // namespace fsct
