#include "core/pipeline_exec.h"

#include <algorithm>
#include <optional>

#include "core/obs.h"
#include "core/parallel.h"

namespace fsct {

const char* pipeline_phase_name(PipelinePhase p) {
  switch (p) {
    case PipelinePhase::Classify: return "classify";
    case PipelinePhase::Step1: return "step1";
    case PipelinePhase::FlushCredit: return "flush_credit";
    case PipelinePhase::S2Podem: return "s2.podem";
    case PipelinePhase::S2Verify: return "s2.verify";
    case PipelinePhase::S3Groups: return "s3.groups";
    case PipelinePhase::S3Ledger: return "s3.ledger";
    case PipelinePhase::S3Final: return "s3.final";
    case PipelinePhase::Done: return "done";
  }
  return "?";
}

bool pipeline_phase_from_name(const std::string& name, PipelinePhase* out) {
  for (int p = 0; p <= static_cast<int>(PipelinePhase::Done); ++p) {
    const auto ph = static_cast<PipelinePhase>(p);
    if (name == pipeline_phase_name(ph)) {
      if (out) *out = ph;
      return true;
    }
  }
  return false;
}

std::vector<NodeId> pipeline_observe_list(const ScanModeModel& model) {
  const Netlist& nl = model.levelizer().netlist();
  std::vector<NodeId> observe = nl.outputs();
  for (NodeId so : model.scan_outs()) {
    if (std::find(observe.begin(), observe.end(), so) == observe.end()) {
      observe.push_back(so);
    }
  }
  return observe;
}

LocalExec::LocalExec(const ScanModeModel& model, std::span<const Fault> faults,
                     const PipelineOptions& opt, ThreadPool& pool)
    : model_(model),
      faults_(faults),
      opt_(opt),
      pool_(pool),
      obs_(opt.obs),
      observe_(pipeline_observe_list(model)),
      maxlen_(model.max_chain_length()) {}

std::vector<ChainFaultInfo> LocalExec::classify(
    std::span<const std::size_t> ids) {
  // Identity fast path: the full-run call classifies the span in place (the
  // historical code path, byte-for-byte).
  bool identity = ids.size() == faults_.size();
  for (std::size_t i = 0; identity && i < ids.size(); ++i) {
    identity = ids[i] == i;
  }
  if (identity) {
    return ChainFaultClassifier::classify_all_parallel(model_, faults_, pool_,
                                                       obs_);
  }
  std::vector<Fault> sub;
  sub.reserve(ids.size());
  for (std::size_t id : ids) sub.push_back(faults_[id]);
  return ChainFaultClassifier::classify_all_parallel(model_, sub, pool_, obs_);
}

std::vector<char> LocalExec::seq_detect(const TestSequence& seq,
                                        std::span<const std::size_t> ids) {
  std::vector<char> det(ids.size(), 0);
  if (ids.empty()) return det;
  std::vector<Fault> fv;
  fv.reserve(ids.size());
  for (std::size_t id : ids) fv.push_back(faults_[id]);
  SeqFaultSim sim(model_.levelizer(), observe_, opt_.simd_width);
  const SeqFaultSimResult r = sim.run(seq, fv, Val::X, &pool_, obs_, ids);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    det[k] = r.detect_cycle[k] >= 0;
  }
  return det;
}

std::vector<int> LocalExec::s2_first_vec(std::span<const ScanVector> vectors,
                                         std::span<const std::size_t> ids) {
  std::vector<int> first(ids.size(), -1);
  if (ids.empty() || vectors.empty()) return first;
  const std::size_t observe_cycles =
      opt_.observe_cycles ? opt_.observe_cycles : maxlen_ + 2;
  ScanSequenceBuilder sb(model_.levelizer().netlist(), model_.design());
  SeqFaultSim ssim(model_.levelizer(), observe_, opt_.simd_width);
  std::vector<char> det(ids.size(), 0);
  for (std::size_t vi = 0; vi < vectors.size(); ++vi) {
    std::vector<Fault> open;
    std::vector<std::size_t> open_pos;
    std::vector<std::size_t> open_ids;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if (!det[k]) {
        open.push_back(faults_[ids[k]]);
        open_pos.push_back(k);
        open_ids.push_back(ids[k]);
      }
    }
    if (open.empty()) break;  // every later vector sees an empty open set too
    const TestSequence seq = sb.apply_comb_vector(
        vectors[vi].ff_state, vectors[vi].pi_vals, observe_cycles);
    const SeqFaultSimResult r =
        ssim.run(seq, open, Val::X, &pool_, obs_, open_ids);
    for (std::size_t m = 0; m < open.size(); ++m) {
      if (r.detect_cycle[m] >= 0) {
        det[open_pos[m]] = 1;
        first[open_pos[m]] = static_cast<int>(vi);
      }
    }
  }
  return first;
}

void LocalExec::run_groups(const std::vector<AtpgGroup>& groups,
                           std::span<const std::size_t> todo,
                           std::vector<GroupOutcome>& done,
                           const ItemDone& /*on_done*/) {
  SeqFaultSim s3sim(model_.levelizer(), observe_, opt_.simd_width);
  // Realises an in-model detection and (optionally) verifies it end to end.
  // Returns the realised sequence when the detection stands, nullopt when it
  // does not reproduce.  Pure w.r.t. shared state, so group tasks can call it
  // concurrently; the skeleton merges into the result serially.
  auto realize_s3_detection =
      [&](const ReducedCircuitBuilder& bld, const ReducedModel& rm,
          const AtpgResult& ar,
          std::size_t fault_idx) -> std::optional<TestSequence> {
    const SeqTest t = bld.extract_test(rm, ar);
    TestSequence seq = bld.realize(t, maxlen_ + 2);
    if (opt_.verify_seq) {
      const Fault one[1] = {faults_[fault_idx]};
      const std::size_t aid[1] = {fault_idx};
      if (s3sim.run_serial(seq, one, Val::X, obs_, aid).detect_cycle[0] < 0) {
        return std::nullopt;
      }
    }
    return seq;
  };

  ReducedModelOptions ropt;
  ropt.frame_slack = opt_.frame_slack;
  ropt.frame_cap = opt_.frame_cap;
  ropt.observe_pos = opt_.observe_pos;
  ropt.atpg.backtrack_limit = opt_.seq_backtrack_limit;
  ropt.atpg.time_limit_ms = opt_.seq_time_limit_ms;
  ropt.atpg.obs = obs_;
  ReducedCircuitBuilder builder(model_, ropt);

  ObsRegistry* const obs = obs_;
  auto run_group = [&](std::size_t gi) {
    const ObsSpan span(obs, "s3.group");
    const AtpgGroup& g = groups[gi];
    std::vector<Fault> gf;
    for (std::size_t j : g.fault_indices) gf.push_back(faults_[j]);
    const ReducedModel rm = builder.build(g, gf);
    std::vector<char> credited(g.fault_indices.size(), 0);
    for (std::size_t k = 0; k < g.fault_indices.size(); ++k) {
      const std::size_t j = g.fault_indices[k];
      if (credited[k]) continue;  // this group's ledger already covers it
      const auto sites = rm.um.map_fault(faults_[j]);
      if (sites.empty()) continue;  // pruned away: retried in final pass
      const AtpgResult r =
          rm.podem->generate(sites, static_cast<std::int64_t>(j));
      if (r.status != AtpgStatus::Detected) continue;
      // Untestable in a *shared* window is not conclusive for absorbed
      // faults (they may have more ctrl/obs alone): final pass decides.
      auto seq = realize_s3_detection(builder, rm, r, j);
      if (!seq) {
        ++done[gi].unverified;
        continue;
      }
      // Ledger ride-along: simulate the verified sequence against the
      // group's still-open tail; whatever it detects (from the all-X
      // start, so the verdict survives concatenation into the exported
      // program) is credited instead of re-targeted.  Group-local state
      // only, so tasks stay schedule-independent.
      if (opt_.dominance && k + 1 < g.fault_indices.size()) {
        std::vector<Fault> open;
        std::vector<std::size_t> open_pos;
        std::vector<std::size_t> open_ids;
        for (std::size_t m = k + 1; m < g.fault_indices.size(); ++m) {
          if (!credited[m]) {
            open.push_back(faults_[g.fault_indices[m]]);
            open_pos.push_back(m);
            open_ids.push_back(g.fault_indices[m]);
          }
        }
        if (!open.empty()) {
          const SeqFaultSimResult rr =
              s3sim.run(*seq, open, Val::X, nullptr, obs, open_ids);
          for (std::size_t m = 0; m < open.size(); ++m) {
            if (rr.detect_cycle[m] >= 0) {
              credited[open_pos[m]] = 1;
              done[gi].credited.push_back(g.fault_indices[open_pos[m]]);
              // Which faults earn ride-along credit is schedule-independent
              // (group-local state), so this charge keeps the ledger
              // deterministic even though it happens inside a pool task.
              if (obs) obs->charge(Attr::CreditEvents, open_ids[m]);
            }
          }
        }
      }
      done[gi].detected.push_back(j);
      done[gi].seqs.push_back(std::move(*seq));
    }
    if (obs) obs->phase_tick();
  };
  parallel_for(pool_, todo.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) run_group(todo[i]);
  });
}

void LocalExec::run_finals(std::span<const std::size_t> final_ids,
                           const std::vector<std::vector<ChainWindow>>& windows,
                           std::span<const std::size_t> todo,
                           std::vector<FinalOutcome>& fdone,
                           const ItemDone& /*on_done*/) {
  SeqFaultSim s3sim(model_.levelizer(), observe_, opt_.simd_width);
  ReducedModelOptions fopt;
  fopt.frame_slack = opt_.frame_slack;
  fopt.frame_cap = opt_.frame_cap;
  fopt.observe_pos = opt_.observe_pos;
  fopt.atpg.backtrack_limit = opt_.final_backtrack_limit;
  fopt.atpg.time_limit_ms = opt_.final_time_limit_ms;
  fopt.atpg.obs = obs_;
  ReducedCircuitBuilder final_builder(model_, fopt);

  ObsRegistry* const obs = obs_;
  auto run_final = [&](std::size_t k) {
    const ObsSpan span(obs, "s3.final");
    struct Tick {
      ObsRegistry* obs;
      ~Tick() {
        if (obs) obs->phase_tick();
      }
    } tick{obs};
    const std::size_t j = final_ids[k];
    AtpgGroup g;
    g.kind = 1;
    g.fault_indices = {j};
    g.window = windows[k];
    const Fault f = faults_[j];
    const ReducedModel rm =
        final_builder.build(g, std::span(&f, 1), opt_.final_extra_frames);
    const auto sites = rm.um.map_fault(f);
    if (sites.empty()) return;  // NoSites
    const AtpgResult r =
        rm.podem->generate(sites, static_cast<std::int64_t>(j));
    if (r.status == AtpgStatus::Detected) {
      // Realise the in-model test now; end-to-end verification of all final
      // detections is batched below as (fault, sequence) pairs so many
      // replays retire per packed sweep.
      const SeqTest t = final_builder.extract_test(rm, r);
      fdone[k].seq = final_builder.realize(t, maxlen_ + 2);
      fdone[k].verdict = FinalVerdict::Detected;
    } else if (r.status == AtpgStatus::Untestable) {
      fdone[k].verdict = FinalVerdict::Untestable;
    } else {
      fdone[k].verdict = FinalVerdict::Aborted;
    }
  };
  parallel_for(pool_, todo.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) run_final(todo[i]);
  });
  // Batched verification: each (fault, realised sequence) pair is an
  // independent replay, so the verdicts are identical to a serial
  // one-run-per-fault loop.  A FinalOutcome::Detected leaving this call has
  // therefore already survived end-to-end verification.
  if (opt_.verify_seq) {
    std::vector<FaultSeqPair> vpairs;
    std::vector<std::size_t> vslot;
    std::vector<std::size_t> vids;
    for (std::size_t k : todo) {
      if (fdone[k].verdict == FinalVerdict::Detected) {
        vpairs.push_back({faults_[final_ids[k]], &fdone[k].seq});
        vslot.push_back(k);
        vids.push_back(final_ids[k]);
      }
    }
    if (!vpairs.empty()) {
      const ObsSpan span(obs, "step3.final_verify");
      const std::vector<int> vr =
          s3sim.run_pairs(vpairs, Val::X, &pool_, obs, vids);
      for (std::size_t i = 0; i < vpairs.size(); ++i) {
        if (vr[i] < 0) {
          fdone[vslot[i]].verdict = FinalVerdict::Unverified;
          fdone[vslot[i]].seq.clear();
        }
      }
    }
  }
}

}  // namespace fsct
