#include "core/io_util.h"

#include <cerrno>

#ifdef _WIN32
#include <io.h>
#define FSCT_IO_WRITE ::_write
#define FSCT_IO_READ ::_read
#else
#include <unistd.h>
#define FSCT_IO_WRITE ::write
#define FSCT_IO_READ ::read
#endif

namespace fsct {

bool write_all(int fd, const void* p, std::size_t n) {
  const char* cur = static_cast<const char*>(p);
  while (n > 0) {
    const auto w = FSCT_IO_WRITE(fd, cur, n);
    if (w < 0) {
      if (errno == EINTR) continue;  // a signal truncated nothing yet: retry
      return false;
    }
    // A short write is not an error: a mid-write signal (or a full socket
    // buffer draining in pieces) hands back partial progress.  Resume at the
    // first unwritten byte.
    cur += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_line(int fd, const std::string& line) {
  std::string buf;
  buf.reserve(line.size() + 1);
  buf = line;
  buf += '\n';
  return write_all(fd, buf.data(), buf.size());
}

long read_retry(int fd, void* p, std::size_t n) {
  for (;;) {
    const auto r = FSCT_IO_READ(fd, p, n);
    if (r >= 0) return static_cast<long>(r);
    if (errno != EINTR) return -1;
  }
}

}  // namespace fsct
