#include "core/json.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace fsct {

JVal JsonParser::parse() {
  JVal v = value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing content after JSON value");
  return v;
}

void JsonParser::skip_ws() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '\n') ++line_;
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
    ++pos_;
  }
}

char JsonParser::peek() {
  if (pos_ >= text_.size()) fail("unexpected end of input");
  return text_[pos_];
}

void JsonParser::expect(char c) {
  if (pos_ >= text_.size() || text_[pos_] != c) {
    fail(std::string("expected '") + c + "'");
  }
  ++pos_;
}

JVal JsonParser::value() {
  skip_ws();
  JVal v;
  v.line = line_;
  const char c = peek();
  switch (c) {
    case '{': object(v); break;
    case '[': array(v); break;
    case '"':
      v.kind = JVal::Str;
      v.str = string();
      break;
    case 't':
    case 'f':
      v.kind = JVal::Bool;
      v.b = (c == 't');
      literal(c == 't' ? "true" : "false");
      break;
    case 'n':
      literal("null");
      break;
    default:
      if (c == '-' || (c >= '0' && c <= '9')) {
        v.kind = JVal::Num;
        v.num = number();
      } else {
        fail(std::string("unexpected character '") + c + "'");
      }
  }
  return v;
}

void JsonParser::object(JVal& v) {
  v.kind = JVal::Obj;
  expect('{');
  skip_ws();
  if (peek() == '}') {
    ++pos_;
    return;
  }
  while (true) {
    skip_ws();
    std::string key = string();
    skip_ws();
    expect(':');
    v.obj.emplace_back(std::move(key), value());
    skip_ws();
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect('}');
    return;
  }
}

void JsonParser::array(JVal& v) {
  v.kind = JVal::Arr;
  expect('[');
  skip_ws();
  if (peek() == ']') {
    ++pos_;
    return;
  }
  while (true) {
    v.arr.push_back(value());
    skip_ws();
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect(']');
    return;
  }
}

std::string JsonParser::string() {
  if (peek() != '"') fail("expected string");
  ++pos_;
  std::string out;
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    char c = text_[pos_++];
    if (c == '"') return out;
    if (c == '\n') fail("unterminated string");
    if (c == '\\') {
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          // Decoded as a raw byte; our documents are ASCII in practice.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          out += static_cast<char>(code < 0x80 ? code : '?');
          break;
        }
        default:
          fail(std::string("bad escape '\\") + e + "'");
      }
    } else {
      out += c;
    }
  }
}

double JsonParser::number() {
  const std::size_t start = pos_;
  if (peek() == '-') ++pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  try {
    return std::stod(text_.substr(start, pos_ - start));
  } catch (const std::exception&) {
    fail("invalid number");
  }
}

void JsonParser::literal(const char* word) {
  const std::size_t n = std::strlen(word);
  if (text_.compare(pos_, n, word) != 0) {
    fail(std::string("expected '") + word + "'");
  }
  pos_ += n;
}

double json_num(const JsonParser& p, const JVal& obj, const char* key,
                double fallback, bool required) {
  const JVal* v = obj.find(key);
  if (!v) {
    if (required) {
      p.fail_at(obj.line,
                std::string("missing required field \"") + key + "\"");
    }
    return fallback;
  }
  if (v->kind != JVal::Num) {
    p.fail_at(v->line, std::string("field \"") + key + "\" must be a number");
  }
  return v->num;
}

std::string json_str(const JsonParser& p, const JVal& obj, const char* key,
                     const char* fallback) {
  const JVal* v = obj.find(key);
  if (!v) return fallback;
  if (v->kind != JVal::Str) {
    p.fail_at(v->line, std::string("field \"") + key + "\" must be a string");
  }
  return v->str;
}

void json_uint_map(const JsonParser& p, const JVal& v,
                   std::vector<std::pair<std::string, std::uint64_t>>& out) {
  if (v.kind != JVal::Obj) p.fail_at(v.line, "expected an object of numbers");
  for (const auto& [k, e] : v.obj) {
    if (e.kind != JVal::Num) continue;  // tolerate non-numeric extras
    out.emplace_back(k, static_cast<std::uint64_t>(e.num));
  }
}

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
/// there are not well-formed UTF-8 (bad lead byte, truncated or non-
/// continuation tail, overlong encoding, surrogate, or > U+10FFFF).
std::size_t utf8_seq_len(const std::string& s, std::size_t i) {
  const auto b = [&](std::size_t k) {
    return static_cast<unsigned char>(s[i + k]);
  };
  const unsigned char lead = b(0);
  std::size_t len = 0;
  if (lead < 0x80) return 1;
  if (lead >= 0xC2 && lead <= 0xDF) len = 2;        // C0/C1 are overlong
  else if (lead >= 0xE0 && lead <= 0xEF) len = 3;
  else if (lead >= 0xF0 && lead <= 0xF4) len = 4;   // F5+ exceed U+10FFFF
  else return 0;
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    if ((b(k) & 0xC0) != 0x80) return 0;
  }
  // Reject overlong 3/4-byte forms, surrogates, and > U+10FFFF.
  if (len == 3) {
    if (lead == 0xE0 && b(1) < 0xA0) return 0;           // overlong
    if (lead == 0xED && b(1) >= 0xA0) return 0;          // UTF-16 surrogate
  } else if (len == 4) {
    if (lead == 0xF0 && b(1) < 0x90) return 0;           // overlong
    if (lead == 0xF4 && b(1) >= 0x90) return 0;          // > U+10FFFF
  }
  return len;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
      ++i;
    } else if (u < 0x80) {
      out += c;
      ++i;
    } else {
      // Non-ASCII: pass through only well-formed UTF-8.  Anything else (a
      // Latin-1 gate name, a truncated sequence) would make the whole run
      // report unparseable, so each bad byte becomes U+FFFD instead.
      const std::size_t len = utf8_seq_len(s, i);
      if (len == 0) {
        out += "\xEF\xBF\xBD";  // U+FFFD REPLACEMENT CHARACTER
        ++i;
      } else {
        out.append(s, i, len);
        i += len;
      }
    }
  }
  return out;
}

}  // namespace fsct
