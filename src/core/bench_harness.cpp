#include "core/bench_harness.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "bench_circuits/suite.h"
#include "core/json.h"
#include "core/obs.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "fault/fault.h"
#include "netlist/levelize.h"
#include "scan/scan_mode_model.h"
#include "scan/tpi.h"

namespace fsct {

namespace {

std::string read_first_line(const char* path) {
  std::ifstream is(path);
  std::string line;
  if (!is || !std::getline(is, line)) return {};
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

std::string run_command_line(const char* cmd) {
#if defined(__unix__) || defined(__APPLE__)
  FILE* p = ::popen(cmd, "r");
  if (!p) return {};
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof buf, p)) out += buf;
  const int rc = ::pclose(p);
  if (rc != 0) return {};
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
#else
  (void)cmd;
  return {};
#endif
}

}  // namespace

BenchMachine fingerprint_machine() {
  BenchMachine m;
  m.nproc = std::thread::hardware_concurrency();

  m.governor =
      read_first_line("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (m.governor.empty()) m.governor = "unknown";

#if defined(__clang__)
  m.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  m.compiler = std::string("gcc ") + __VERSION__;
#else
  m.compiler = "unknown";
#endif

  m.git_sha = run_command_line("git rev-parse --short HEAD 2>/dev/null");
  if (m.git_sha.empty()) m.git_sha = "unknown";

  m.sanitizer = "none";
#if defined(__SANITIZE_THREAD__)
  m.sanitizer = "thread";
#elif defined(__SANITIZE_ADDRESS__)
  m.sanitizer = "address";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  m.sanitizer = "thread";
#elif __has_feature(address_sanitizer)
  m.sanitizer = "address";
#endif
#endif

#if defined(__unix__) || defined(__APPLE__)
  struct utsname u;
  if (::uname(&u) == 0) {
    m.os = std::string(u.sysname) + " " + u.release;
  }
#endif
  if (m.os.empty()) m.os = "unknown";
  return m;
}

BenchStat summarize_samples(std::vector<double> samples) {
  BenchStat s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const auto median_of = [](const std::vector<double>& v) {
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  s.median = median_of(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double x : samples) dev.push_back(std::fabs(x - s.median));
  std::sort(dev.begin(), dev.end());
  s.mad = median_of(dev);
  return s;
}

bool valid_bench_label(const std::string& label) {
  if (label.empty()) return false;
  for (char c : label) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '.' && c != '_' && c != '-') return false;
  }
  return true;
}

// --- run --------------------------------------------------------------------

BenchDocument run_bench(const BenchRunConfig& cfg) {
  BenchDocument doc;
  doc.label = cfg.label;
  doc.note = cfg.note;
  doc.machine = fingerprint_machine();
  doc.reps = cfg.reps;
  doc.warmup = cfg.warmup;

  std::vector<SuiteEntry> entries;
  if (cfg.circuits.empty()) {
    for (const SuiteEntry& e : paper_suite()) {
      if (e.gates <= cfg.max_gates) entries.push_back(e);
    }
  } else {
    for (const std::string& name : cfg.circuits) {
      entries.push_back(suite_entry(name));  // throws on unknown names
    }
  }

  for (const SuiteEntry& e : entries) {
    // Prepared once per circuit: TPI and fault collapsing are deterministic,
    // so repetitions time only the pipeline itself.
    Netlist nl = build_suite_circuit(e);
    TpiOptions topt;
    topt.num_chains = e.chains;
    const ScanDesign design = run_tpi(nl, topt);
    const Levelizer lv(nl);
    const ScanModeModel model(lv, design);
    const std::vector<Fault> faults = collapsed_fault_list(nl);

    for (int jobs : cfg.jobs) {
      BenchRow row;
      row.circuit = e.name;
      row.reps = cfg.reps;

      std::vector<double> wall_classify, wall_s2, wall_s3, wall_total;
      std::vector<double> cpu_classify, cpu_s2, cpu_s3, cpu_total;

      for (int rep = -cfg.warmup; rep < cfg.reps; ++rep) {
        ObsRegistry reg;
        if (cfg.attribution) reg.request_attribution();
        // Label the live-status / heartbeat lines with what is being timed,
        // so a long bench is observable mid-flight.
        char ctx[96];
        if (rep < 0) {
          std::snprintf(ctx, sizeof ctx, "%s jobs=%d warmup", e.name.c_str(),
                        jobs);
        } else {
          std::snprintf(ctx, sizeof ctx, "%s jobs=%d rep %d/%d",
                        e.name.c_str(), jobs, rep + 1, cfg.reps);
        }
        reg.set_context(ctx);
        PipelineOptions opt;
        opt.jobs = jobs;
        opt.obs = &reg;
        const double cpu0 = process_cpu_seconds();
        const auto t0 = std::chrono::steady_clock::now();
        const PipelineResult r = run_fsct_pipeline(model, faults, opt);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        const double cpu = process_cpu_seconds() - cpu0;
        row.jobs = r.jobs_used;
        if (rep < 0) continue;  // warmup repetitions are discarded

        wall_classify.push_back(r.classify_seconds);
        wall_s2.push_back(r.s2_seconds);
        wall_s3.push_back(r.s3_seconds);
        wall_total.push_back(wall);
        cpu_classify.push_back(r.classify_cpu_seconds);
        cpu_s2.push_back(r.s2_cpu_seconds);
        cpu_s3.push_back(r.s3_cpu_seconds);
        cpu_total.push_back(cpu);

        if (rep + 1 == cfg.reps) {
          // Counters and results are schedule-independent, so the last
          // repetition speaks for all of them; RSS is a high-water mark.
          for (std::size_t c = 0; c < kNumCounters; ++c) {
            row.counters.emplace_back(counter_name(static_cast<Ctr>(c)),
                                      reg.total(static_cast<Ctr>(c)));
          }
          // collapse_ratio: dominance targets per 1000 hard faults (integer
          // permille; the row schema is uint-valued).
          const std::uint64_t collapse_permille =
              r.hard ? (static_cast<std::uint64_t>(r.dominance_targets) *
                        1000) / r.hard
                     : 1000;
          row.results = {
              {"faults", r.total_faults},
              {"easy", r.easy},
              {"hard", r.hard},
              {"dominance_targets", r.dominance_targets},
              {"collapse_ratio", collapse_permille},
              {"flush_detected", r.flush_detected},
              {"dropped_by_ledger", r.ledger_dropped},
              {"s2_detected", r.s2_detected},
              {"s2_vectors", r.s2_vectors},
              {"s3_detected", r.s3_detected},
              {"s3_undetectable", r.s3_undetectable},
              {"s3_undetected", r.s3_undetected},
          };
          row.peak_rss_kb = static_cast<long>(reg.gauge(Gauge::PeakRssKb));
        }
        if (cfg.progress) {
          char buf[128];
          std::snprintf(buf, sizeof buf, "%s jobs=%u rep %d/%d: total %.3fs",
                        e.name.c_str(), row.jobs, rep + 1, cfg.reps, wall);
          cfg.progress(buf);
        }
      }

      const unsigned hc = std::thread::hardware_concurrency();
      row.jobs_oversubscribed = hc != 0 && row.jobs > hc;
      if (row.jobs_oversubscribed) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "jobs_oversubscribed jobs=%u hardware_concurrency=%u",
                      row.jobs, hc);
        if (std::find(doc.warnings.begin(), doc.warnings.end(), buf) ==
            doc.warnings.end()) {
          doc.warnings.emplace_back(buf);
        }
      }

      const auto phase = [](const char* name, std::vector<double> wall,
                            std::vector<double> cpu) {
        BenchPhase p;
        p.name = name;
        p.wall = summarize_samples(std::move(wall));
        p.cpu = summarize_samples(std::move(cpu));
        p.has_cpu = true;
        return p;
      };
      row.phases.push_back(phase("classify", std::move(wall_classify),
                                 std::move(cpu_classify)));
      row.phases.push_back(phase("s2", std::move(wall_s2), std::move(cpu_s2)));
      row.phases.push_back(phase("s3", std::move(wall_s3), std::move(cpu_s3)));
      row.phases.push_back(
          phase("total", std::move(wall_total), std::move(cpu_total)));
      doc.rows.push_back(std::move(row));
    }
  }
  return doc;
}

// --- JSON writing -----------------------------------------------------------

namespace {

std::string jnum(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  // %g can print "inf"/"nan", which is not JSON; clamp to 0 (timings only).
  if (!std::isfinite(v)) return "0";
  return buf;
}

void write_stat(std::ostream& os, const char* key, const BenchStat& s,
                const char* indent) {
  os << indent << "\"" << key << "\": {\"median\": " << jnum(s.median)
     << ", \"mad\": " << jnum(s.mad) << ", \"min\": " << jnum(s.min)
     << ", \"max\": " << jnum(s.max) << "}";
}

}  // namespace

std::string write_bench_json(const BenchDocument& doc) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"fsct-bench-v2\",\n";
  os << "  \"label\": \"" << json_escape(doc.label) << "\",\n";
  os << "  \"note\": \"" << json_escape(doc.note) << "\",\n";
  const BenchMachine& m = doc.machine;
  os << "  \"machine\": {\n"
     << "    \"nproc\": " << m.nproc << ",\n"
     << "    \"governor\": \"" << json_escape(m.governor) << "\",\n"
     << "    \"compiler\": \"" << json_escape(m.compiler) << "\",\n"
     << "    \"git_sha\": \"" << json_escape(m.git_sha) << "\",\n"
     << "    \"sanitizer\": \"" << json_escape(m.sanitizer) << "\",\n"
     << "    \"os\": \"" << json_escape(m.os) << "\"\n"
     << "  },\n";
  os << "  \"reps\": " << doc.reps << ",\n";
  os << "  \"warmup\": " << doc.warmup << ",\n";
  os << "  \"warnings\": [";
  for (std::size_t i = 0; i < doc.warnings.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(doc.warnings[i]) << "\"";
  }
  os << "],\n";
  os << "  \"rows\": [\n";
  for (std::size_t ri = 0; ri < doc.rows.size(); ++ri) {
    const BenchRow& row = doc.rows[ri];
    os << "    {\n";
    os << "      \"circuit\": \"" << json_escape(row.circuit) << "\",\n";
    os << "      \"jobs\": " << row.jobs << ",\n";
    os << "      \"reps\": " << row.reps << ",\n";
    os << "      \"jobs_oversubscribed\": "
       << (row.jobs_oversubscribed ? "true" : "false") << ",\n";
    os << "      \"peak_rss_kb\": " << row.peak_rss_kb << ",\n";
    os << "      \"phases\": [\n";
    for (std::size_t pi = 0; pi < row.phases.size(); ++pi) {
      const BenchPhase& p = row.phases[pi];
      os << "        {\"name\": \"" << json_escape(p.name) << "\",\n";
      write_stat(os, "wall", p.wall, "         ");
      if (p.has_cpu) {
        os << ",\n";
        write_stat(os, "cpu", p.cpu, "         ");
      }
      os << "}" << (pi + 1 < row.phases.size() ? "," : "") << "\n";
    }
    os << "      ],\n";
    os << "      \"counters\": {";
    for (std::size_t i = 0; i < row.counters.size(); ++i) {
      os << (i ? ", " : "") << "\"" << json_escape(row.counters[i].first)
         << "\": " << row.counters[i].second;
    }
    os << "},\n";
    os << "      \"results\": {";
    for (std::size_t i = 0; i < row.results.size(); ++i) {
      os << (i ? ", " : "") << "\"" << json_escape(row.results[i].first)
         << "\": " << row.results[i].second;
    }
    os << "}\n";
    os << "    }" << (ri + 1 < doc.rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

// --- JSON parsing -----------------------------------------------------------

namespace {

// Thin forwards onto the shared line-anchored JSON layer (core/json.h);
// kept as local names so the schema readers below stay terse.
double get_num(const JsonParser& p, const JVal& obj, const char* key,
               double fallback = 0, bool required = false) {
  return json_num(p, obj, key, fallback, required);
}

std::string get_str(const JsonParser& p, const JVal& obj, const char* key,
                    const char* fallback = "") {
  return json_str(p, obj, key, fallback);
}

BenchStat parse_stat(const JsonParser& p, const JVal& v) {
  if (v.kind != JVal::Obj) p.fail_at(v.line, "stat must be an object");
  BenchStat s;
  s.median = get_num(p, v, "median", 0, /*required=*/true);
  s.mad = get_num(p, v, "mad");
  s.min = get_num(p, v, "min", s.median);
  s.max = get_num(p, v, "max", s.median);
  return s;
}

void parse_uint_map(const JsonParser& p, const JVal& v,
                    std::vector<std::pair<std::string, std::uint64_t>>& out) {
  json_uint_map(p, v, out);
}

/// Legacy (PR-1 era) row: flat result fields plus phase_seconds{classify,
/// s2, s3}.  Becomes a one-rep v2 row with zero-MAD point stats.
BenchRow parse_v1_row(const JsonParser& p, const JVal& v) {
  if (v.kind != JVal::Obj) p.fail_at(v.line, "row must be an object");
  BenchRow row;
  row.circuit = get_str(p, v, "circuit");
  if (row.circuit.empty()) {
    p.fail_at(v.line, "missing required field \"circuit\"");
  }
  row.jobs = static_cast<unsigned>(get_num(p, v, "jobs", 1));
  row.reps = 1;
  if (const JVal* o = v.find("jobs_oversubscribed");
      o && o->kind == JVal::Bool) {
    row.jobs_oversubscribed = o->b;
  }
  if (const JVal* ps = v.find("phase_seconds")) {
    if (ps->kind != JVal::Obj) {
      p.fail_at(ps->line, "\"phase_seconds\" must be an object");
    }
    double total = 0;
    for (const auto& [k, e] : ps->obj) {
      if (e.kind != JVal::Num) {
        p.fail_at(e.line, "phase time must be a number");
      }
      BenchPhase ph;
      ph.name = k;
      ph.wall.median = ph.wall.min = ph.wall.max = e.num;
      row.phases.push_back(std::move(ph));
      total += e.num;
    }
    BenchPhase tot;
    tot.name = "total";
    tot.wall.median = tot.wall.min = tot.wall.max = total;
    row.phases.push_back(std::move(tot));
  }
  if (const JVal* c = v.find("counters")) parse_uint_map(p, *c, row.counters);
  static constexpr const char* kResultKeys[] = {
      "faults", "easy", "hard", "detected", "s2_detected", "s2_vectors",
      "s3_detected", "s3_undetectable", "s3_undetected"};
  for (const char* key : kResultKeys) {
    if (const JVal* e = v.find(key); e && e->kind == JVal::Num) {
      row.results.emplace_back(key, static_cast<std::uint64_t>(e->num));
    }
  }
  return row;
}

BenchRow parse_v2_row(const JsonParser& p, const JVal& v) {
  if (v.kind != JVal::Obj) p.fail_at(v.line, "row must be an object");
  BenchRow row;
  row.circuit = get_str(p, v, "circuit");
  if (row.circuit.empty()) {
    p.fail_at(v.line, "missing required field \"circuit\"");
  }
  row.jobs = static_cast<unsigned>(get_num(p, v, "jobs", 1));
  row.reps = static_cast<int>(get_num(p, v, "reps", 1));
  row.peak_rss_kb = static_cast<long>(get_num(p, v, "peak_rss_kb"));
  if (const JVal* o = v.find("jobs_oversubscribed");
      o && o->kind == JVal::Bool) {
    row.jobs_oversubscribed = o->b;
  }
  const JVal* phases = v.find("phases");
  if (!phases || phases->kind != JVal::Arr) {
    p.fail_at(v.line, "missing required field \"phases\" (array)");
  }
  for (const JVal& pe : phases->arr) {
    if (pe.kind != JVal::Obj) p.fail_at(pe.line, "phase must be an object");
    BenchPhase ph;
    ph.name = get_str(p, pe, "name");
    if (ph.name.empty()) {
      p.fail_at(pe.line, "missing required field \"name\"");
    }
    const JVal* wall = pe.find("wall");
    if (!wall) p.fail_at(pe.line, "missing required field \"wall\"");
    ph.wall = parse_stat(p, *wall);
    if (const JVal* cpu = pe.find("cpu")) {
      ph.cpu = parse_stat(p, *cpu);
      ph.has_cpu = true;
    }
    row.phases.push_back(std::move(ph));
  }
  if (const JVal* c = v.find("counters")) parse_uint_map(p, *c, row.counters);
  if (const JVal* r = v.find("results")) parse_uint_map(p, *r, row.results);
  return row;
}

}  // namespace

BenchDocument parse_bench_document(const std::string& json_text,
                                   const std::string& name) {
  JsonParser p(json_text, name);
  const JVal root = p.parse();

  BenchDocument doc;
  if (root.kind == JVal::Arr) {
    // v1 shape A: the bare row array the table benches write with --json.
    doc.schema_version = 1;
    for (const JVal& r : root.arr) doc.rows.push_back(parse_v1_row(p, r));
    return doc;
  }
  if (root.kind != JVal::Obj) {
    p.fail_at(root.line, "bench document must be an object or an array");
  }

  const JVal* schema = root.find("schema");
  if (!schema) {
    // v1 shape B: {"note": ..., "rows": [...]} (the original baseline file).
    const JVal* rows = root.find("rows");
    if (!rows || rows->kind != JVal::Arr) {
      p.fail_at(root.line,
                "not a bench document: no \"schema\" and no \"rows\" array");
    }
    doc.schema_version = 1;
    doc.note = get_str(p, root, "note");
    for (const JVal& r : rows->arr) doc.rows.push_back(parse_v1_row(p, r));
    return doc;
  }
  if (schema->kind != JVal::Str || schema->str != "fsct-bench-v2") {
    p.fail_at(schema->line,
              "unsupported bench schema (expected \"fsct-bench-v2\")");
  }

  doc.schema_version = 2;
  doc.label = get_str(p, root, "label");
  doc.note = get_str(p, root, "note");
  doc.reps = static_cast<int>(get_num(p, root, "reps"));
  doc.warmup = static_cast<int>(get_num(p, root, "warmup"));
  if (const JVal* m = root.find("machine")) {
    if (m->kind != JVal::Obj) {
      p.fail_at(m->line, "\"machine\" must be an object");
    }
    doc.machine.nproc = static_cast<unsigned>(get_num(p, *m, "nproc"));
    doc.machine.governor = get_str(p, *m, "governor", "unknown");
    doc.machine.compiler = get_str(p, *m, "compiler", "unknown");
    doc.machine.git_sha = get_str(p, *m, "git_sha", "unknown");
    doc.machine.sanitizer = get_str(p, *m, "sanitizer", "none");
    doc.machine.os = get_str(p, *m, "os", "unknown");
  }
  if (const JVal* w = root.find("warnings")) {
    if (w->kind != JVal::Arr) p.fail_at(w->line, "\"warnings\" must be an array");
    for (const JVal& e : w->arr) {
      if (e.kind != JVal::Str) p.fail_at(e.line, "warning must be a string");
      doc.warnings.push_back(e.str);
    }
  }
  const JVal* rows = root.find("rows");
  if (!rows || rows->kind != JVal::Arr) {
    p.fail_at(root.line, "missing required field \"rows\" (array)");
  }
  for (const JVal& r : rows->arr) doc.rows.push_back(parse_v2_row(p, r));
  return doc;
}

BenchDocument read_bench_document(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw BenchParseError(path + ": cannot open file");
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_bench_document(ss.str(), path);
}

// --- compare ----------------------------------------------------------------

bool CompareReport::has_regression() const {
  for (const CompareDelta& d : deltas) {
    if (d.regression) return true;
  }
  return false;
}

int CompareReport::exit_code() const {
  if (!mismatches.empty()) return 2;
  return has_regression() ? 1 : 0;
}

CompareReport compare_bench(const BenchDocument& old_doc,
                            const BenchDocument& new_doc,
                            const CompareOptions& opt) {
  CompareReport rep;

  const auto key_of = [](const BenchRow& r) {
    return r.circuit + " jobs=" + std::to_string(r.jobs);
  };
  const auto find_row = [&](const BenchDocument& doc, const std::string& key)
      -> const BenchRow* {
    for (const BenchRow& r : doc.rows) {
      if (key_of(r) == key) return &r;
    }
    return nullptr;
  };

  if (old_doc.machine.nproc && new_doc.machine.nproc &&
      old_doc.machine.nproc != new_doc.machine.nproc) {
    rep.notes.push_back(
        "machine: nproc " + std::to_string(old_doc.machine.nproc) + " -> " +
        std::to_string(new_doc.machine.nproc) +
        " (timings may not be comparable)");
  }
  if (!old_doc.machine.sanitizer.empty() &&
      old_doc.machine.sanitizer != new_doc.machine.sanitizer &&
      !(old_doc.schema_version == 1 || new_doc.schema_version == 1)) {
    rep.notes.push_back("machine: sanitizer " + old_doc.machine.sanitizer +
                        " -> " + new_doc.machine.sanitizer);
  }

  for (const BenchRow& orow : old_doc.rows) {
    const std::string key = key_of(orow);
    const BenchRow* nrow = find_row(new_doc, key);
    if (!nrow) {
      rep.mismatches.push_back(key + " present in old, missing in new");
      continue;
    }
    for (const BenchPhase& op : orow.phases) {
      const BenchPhase* np = nullptr;
      for (const BenchPhase& q : nrow->phases) {
        if (q.name == op.name) {
          np = &q;
          break;
        }
      }
      if (!np) {
        rep.mismatches.push_back(key + " phase \"" + op.name +
                                 "\" present in old, missing in new");
        continue;
      }
      CompareDelta d;
      d.circuit = orow.circuit;
      d.jobs = orow.jobs;
      d.phase = op.name;
      d.old_median = op.wall.median;
      d.new_median = np->wall.median;
      d.noise = std::max({opt.rel_threshold * op.wall.median,
                          opt.mad_k * std::max(op.wall.mad, np->wall.mad),
                          opt.abs_floor_s});
      const double delta = d.new_median - d.old_median;
      d.regression = delta > d.noise;
      d.improvement = -delta > d.noise;
      rep.deltas.push_back(d);
    }
    // Counter / result drift means the *work* changed, not just its timing;
    // informational, never gating (intentional algorithm changes shift them).
    const auto drift = [&](const char* what,
                           const std::vector<std::pair<std::string,
                                                       std::uint64_t>>& olds,
                           const std::vector<std::pair<std::string,
                                                       std::uint64_t>>& news) {
      for (const auto& [name, ov] : olds) {
        for (const auto& [nname, nv] : news) {
          if (name == nname && ov != nv) {
            rep.notes.push_back(key + " " + what + " " + name + ": " +
                                std::to_string(ov) + " -> " +
                                std::to_string(nv));
          }
        }
      }
    };
    drift("result", orow.results, nrow->results);
    drift("counter", orow.counters, nrow->counters);
  }
  for (const BenchRow& nrow : new_doc.rows) {
    if (!find_row(old_doc, key_of(nrow))) {
      rep.mismatches.push_back(key_of(nrow) +
                               " present in new, missing in old");
    }
  }
  return rep;
}

void print_compare_report(std::ostream& os, const CompareReport& rep) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-10s %4s %-9s %10s %10s %10s %10s  %s",
                "circuit", "jobs", "phase", "old(s)", "new(s)", "delta(s)",
                "noise(s)", "flag");
  os << buf << "\n";
  for (const CompareDelta& d : rep.deltas) {
    const double delta = d.new_median - d.old_median;
    std::snprintf(buf, sizeof buf,
                  "%-10s %4u %-9s %10.4f %10.4f %+10.4f %10.4f  %s",
                  d.circuit.c_str(), d.jobs, d.phase.c_str(), d.old_median,
                  d.new_median, delta, d.noise,
                  d.regression ? "REGRESSION"
                               : (d.improvement ? "improved" : ""));
    os << buf << "\n";
  }
  for (const CompareDelta& d : rep.deltas) {
    if (!d.regression) continue;
    std::snprintf(buf, sizeof buf,
                  "REGRESSION: %s jobs=%u phase %s: %.4fs -> %.4fs "
                  "(+%.4fs exceeds noise %.4fs)",
                  d.circuit.c_str(), d.jobs, d.phase.c_str(), d.old_median,
                  d.new_median, d.new_median - d.old_median, d.noise);
    os << buf << "\n";
  }
  for (const std::string& m : rep.mismatches) os << "MISMATCH: " << m << "\n";
  for (const std::string& n : rep.notes) os << "note: " << n << "\n";
  if (rep.mismatches.empty() && !rep.has_regression()) {
    os << "no regressions\n";
  }
}

}  // namespace fsct
