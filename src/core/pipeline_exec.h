// Execution-strategy layer under run_fsct_pipeline.
//
// The pipeline keeps ONE serial skeleton (the control flow that defines the
// bitwise contract: phase order, merge order, counter charging) and delegates
// its data-parallel, per-fault/per-group phases to a PipelineExec:
//
//   LocalExec          — runs them on the in-process thread pool (the
//                        historical behaviour; the default),
//   src/shard          — a coordinator that partitions the same calls across
//                        forked worker processes and merges the replies.
//
// Both strategies produce bitwise-identical PipelineResults because every
// per-item computation the interface exposes is a pure function of
// (model, options, item) and every merge the skeleton performs walks items
// in canonical (fault / group / final-slot) order — the same argument that
// already makes `--jobs N` deterministic (DESIGN.md §5c).
//
// The skeleton also exposes checkpoint/resume seams (PipelineHooks /
// PipelineResume): safe points fire at phase boundaries, after every PODEM
// target, and after every completed step-3 group/final item, carrying a
// consistent read-only view of the partial state.  Resume restores that
// state and skips the completed work.  Hooks are only honoured when the
// active exec invokes its ItemDone callbacks on the skeleton thread (the
// sharded coordinator does; LocalExec runs items on pool threads and never
// calls them).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/pipeline.h"

namespace fsct {

class ObsRegistry;
class ThreadPool;

/// Outcome of one step-3 group model: faults its verified sequences detect
/// (in in-group target order, aligned with `seqs`), faults credited by the
/// group-local ride-along ledger, and in-model detections whose realised
/// test failed end-to-end verification.
struct GroupOutcome {
  std::vector<std::size_t> detected;
  std::vector<TestSequence> seqs;
  std::vector<std::size_t> credited;
  std::size_t unverified = 0;
};

/// Verdict of one final-pass individual model (verification included: a
/// Detected here has already survived its pair replay when verify_seq is on).
enum class FinalVerdict : std::uint8_t {
  Detected,
  Unverified,
  Untestable,
  Aborted,
  NoSites,
};

struct FinalOutcome {
  FinalVerdict verdict = FinalVerdict::NoSites;
  TestSequence seq;  ///< realised sequence when Detected, else empty
};

/// Phases of the skeleton, in execution order.  A PipelineResume names the
/// first phase that still has to run; everything before it is restored from
/// the partial result.
enum class PipelinePhase : std::uint8_t {
  Classify = 0,
  Step1,        ///< alternating-flush verification of f_easy
  FlushCredit,  ///< dominance flush-credit pre-pass over f_hard
  S2Podem,      ///< warm-up + combinational PODEM loop (vector generation)
  S2Verify,     ///< sequential verification of the step-2 vector set
  S3Groups,     ///< grouped sequential ATPG
  S3Ledger,     ///< cross-group detection-ledger pass
  S3Final,      ///< final individual models
  Done,
};

/// Stable name for checkpoints and diagnostics ("classify", "s3.groups", ...).
const char* pipeline_phase_name(PipelinePhase p);
/// Reverse lookup; false on unknown names.
bool pipeline_phase_from_name(const std::string& name, PipelinePhase* out);

/// Read-only view of the skeleton's partial state at a safe point.  Pointers
/// reference live skeleton storage and are only valid during the callback.
/// `groups`/`finals` sections are non-null only while their phase runs.
struct PipelineProgress {
  PipelinePhase next = PipelinePhase::Classify;  ///< first incomplete phase
  const PipelineResult* res = nullptr;
  const std::vector<char>* comb_covered = nullptr;  ///< PPSFP-screened flags
  std::size_t podem_next = 0;  ///< PODEM targets fully processed (S2Podem)
  const std::vector<GroupOutcome>* groups = nullptr;  ///< aligned with masks
  const std::vector<char>* groups_done = nullptr;
  const std::vector<FinalOutcome>* finals = nullptr;
  const std::vector<char>* finals_done = nullptr;
  const std::vector<std::size_t>* final_ids = nullptr;  ///< fault id per slot
};

struct PipelineHooks {
  /// Called at every safe point.  Return false to stop: the skeleton throws
  /// PipelineStopped immediately after (partial state stays consistent with
  /// the last callback view, so a checkpoint taken inside the callback can
  /// be resumed).
  std::function<bool(const PipelineProgress&)> safe_point;
};

/// Raised by the skeleton when a safe-point callback returns false.
struct PipelineStopped : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// State restored at the start of a resumed run.  `partial` carries every
/// PipelineResult field the completed phases produced (outcomes, info,
/// vectors, curve, sequences, scalar tallies); the maps carry finished
/// step-3 items of a partially completed phase.  All recomputable artifacts
/// (dominance tables, groups, target order) are pure functions of the
/// restored state and are rebuilt, so a resume at any shard/job count
/// continues bitwise-identically.
struct PipelineResume {
  PipelinePhase phase = PipelinePhase::Classify;
  PipelineResult partial;
  std::vector<char> comb_covered;
  std::size_t podem_next = 0;
  std::map<std::size_t, GroupOutcome> groups_done;   ///< key: group index
  std::map<std::size_t, FinalOutcome> finals_done;   ///< key: fault id
};

/// Strategy interface for the data-parallel phases.  `ids` are indices into
/// the run's collapsed fault list; outputs align with the input order.
class PipelineExec {
 public:
  /// Per-item completion callback for the step-3 phases, invoked (by execs
  /// that support it) on the skeleton thread after `done[item]` is final.
  /// Returning false asks the exec to stop dispatching further items and
  /// return early with the work completed so far.
  using ItemDone = std::function<bool(std::size_t)>;

  virtual ~PipelineExec() = default;

  /// Chain-fault classification of faults[ids]; aligned with `ids`.
  virtual std::vector<ChainFaultInfo> classify(
      std::span<const std::size_t> ids) = 0;

  /// Simulates `seq` against faults[ids] from the all-X state; returns a
  /// 0/1 detected flag per id.  Used for the step-1 verification, the
  /// flush-credit pre-pass and the cross-group ledger pass.
  virtual std::vector<char> seq_detect(const TestSequence& seq,
                                       std::span<const std::size_t> ids) = 0;

  /// Step-2 sequential verification: walks `vectors` in order against the
  /// (shrinking) open set of faults[ids]; returns, per id, the index of the
  /// first vector whose scan sequence detects it, or -1.  Equivalent to the
  /// historical per-vector loop because detections are per-fault independent
  /// and only ever remove faults from the open set.
  virtual std::vector<int> s2_first_vec(std::span<const ScanVector> vectors,
                                        std::span<const std::size_t> ids) = 0;

  /// Runs the step-3 group models named by `todo` (indices into `groups`),
  /// filling `done[gi]` for each.  Entries outside `todo` are left alone
  /// (resume pre-fills them).
  virtual void run_groups(const std::vector<AtpgGroup>& groups,
                          std::span<const std::size_t> todo,
                          std::vector<GroupOutcome>& done,
                          const ItemDone& on_done) = 0;

  /// Runs the final-pass individual models for slots `todo` (indices into
  /// `final_ids`/`windows`/`fdone`), verification included.
  virtual void run_finals(std::span<const std::size_t> final_ids,
                          const std::vector<std::vector<ChainWindow>>& windows,
                          std::span<const std::size_t> todo,
                          std::vector<FinalOutcome>& fdone,
                          const ItemDone& on_done) = 0;
};

/// The in-process executor: every call runs on `pool` with the exact engine
/// constructions and obs charges the pre-exec pipeline performed inline, so
/// refactoring the skeleton onto this interface changed no observable
/// behaviour (pipeline_test / determinism_test / golden_test enforce that).
class LocalExec : public PipelineExec {
 public:
  LocalExec(const ScanModeModel& model, std::span<const Fault> faults,
            const PipelineOptions& opt, ThreadPool& pool);

  std::vector<ChainFaultInfo> classify(
      std::span<const std::size_t> ids) override;
  std::vector<char> seq_detect(const TestSequence& seq,
                               std::span<const std::size_t> ids) override;
  std::vector<int> s2_first_vec(std::span<const ScanVector> vectors,
                                std::span<const std::size_t> ids) override;
  void run_groups(const std::vector<AtpgGroup>& groups,
                  std::span<const std::size_t> todo,
                  std::vector<GroupOutcome>& done,
                  const ItemDone& on_done) override;
  void run_finals(std::span<const std::size_t> final_ids,
                  const std::vector<std::vector<ChainWindow>>& windows,
                  std::span<const std::size_t> todo,
                  std::vector<FinalOutcome>& fdone,
                  const ItemDone& on_done) override;

 private:
  const ScanModeModel& model_;
  std::span<const Fault> faults_;
  const PipelineOptions& opt_;
  ThreadPool& pool_;
  ObsRegistry* obs_;
  std::vector<NodeId> observe_;
  std::size_t maxlen_;
};

/// The observation list every sequential simulation of the pipeline uses:
/// primary outputs plus the scan-out ports (deduped, in that order).
std::vector<NodeId> pipeline_observe_list(const ScanModeModel& model);

}  // namespace fsct
