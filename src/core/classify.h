// Section 3 of the paper: find the faults that affect the functional scan
// chain, by forward implication of each fault on the scan-mode circuit model,
// and sort them into the three categories:
//   1 (Easy)         — some chain net becomes a binary constant; the
//                      alternating flush sequence will catch it,
//   2 (Hard)         — some forced side input becomes unknown (or, beyond
//                      the paper's model, changes polarity on an XOR/MUX
//                      path gate); needs dedicated tests,
//   3 (NotAffecting) — the chain is untouched.
// Category 2 takes priority: a fault is Easy only when the *last* location
// it reaches on some chain is a pure category-1 event (a stuck capture at the
// last location is guaranteed to reach the scan-out).
#pragma once

#include <vector>

#include "core/parallel.h"
#include "fault/fault.h"
#include "scan/scan_mode_model.h"

namespace fsct {

class ObsRegistry;

enum class ChainFaultCategory : std::uint8_t {
  NotAffecting,  ///< paper's category 3
  Easy,          ///< paper's category 1
  Hard,          ///< paper's category 2
};

/// Classification result for one fault.
struct ChainFaultInfo {
  ChainFaultCategory category = ChainFaultCategory::NotAffecting;
  /// Every chain location the fault reaches (sorted, deduped).
  std::vector<ChainLocation> locations;
  /// True if more than one chain is affected.
  bool multi_chain = false;
};

/// Forward-implication classifier.  Reusable across faults; not thread-safe.
class ChainFaultClassifier {
 public:
  explicit ChainFaultClassifier(const ScanModeModel& model);

  ChainFaultInfo classify(const Fault& f);

  /// Convenience: classify a whole list.
  std::vector<ChainFaultInfo> classify_all(std::span<const Fault> faults);

  /// Classifies a whole list on `pool`, sharding the fault indices across the
  /// executors (each shard gets its own classifier instance — the per-fault
  /// forward implication is independent).  Results are written by fault index,
  /// so the output is identical to classify_all at any job count.  `obs`
  /// (optional) receives fault/implication-event counters and per-chunk
  /// trace spans; per-fault work is state-restored between faults, so event
  /// totals are chunk- and schedule-independent.
  static std::vector<ChainFaultInfo> classify_all_parallel(
      const ScanModeModel& model, std::span<const Fault> faults,
      ThreadPool& pool, ObsRegistry* obs = nullptr);

  /// Net-value changes recorded by touch() since construction.
  std::uint64_t events() const { return events_; }

 private:
  void touch(NodeId id, Val v);

  std::uint64_t events_ = 0;

  const ScanModeModel& model_;
  const Levelizer& lv_;
  std::vector<Val> cur_;           // faulty values (dirty-restored)
  std::vector<NodeId> dirty_;
  std::vector<char> in_dirty_;
  std::vector<char> queued_;
  std::vector<int> eval_count_;    // oscillation guard across DFF loops
  std::vector<NodeId> worklist_;
  std::vector<std::pair<int, int>> ff_pos_;  // dff order -> (chain, pos)
  std::vector<int> dff_index_;               // node id -> dff order, -1
};

}  // namespace fsct
