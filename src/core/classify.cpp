#include "core/classify.h"

#include <algorithm>

#include "core/obs.h"

namespace fsct {

namespace {
constexpr int kEvalCap = 8;  // oscillation guard on sequential loops
}

ChainFaultClassifier::ChainFaultClassifier(const ScanModeModel& model)
    : model_(model), lv_(model.levelizer()) {
  const Netlist& nl = lv_.netlist();
  cur_ = model.values();
  queued_.assign(nl.size(), 0);
  eval_count_.assign(nl.size(), 0);
  in_dirty_.assign(nl.size(), 0);
  dff_index_.assign(nl.size(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    dff_index_[nl.dffs()[i]] = static_cast<int>(i);
  }
  ff_pos_.assign(nl.dffs().size(), {-1, -1});
  const ScanDesign& d = model.design();
  for (std::size_t c = 0; c < d.chains.size(); ++c) {
    const auto& ffs = d.chains[c].ffs;
    for (std::size_t k = 0; k < ffs.size(); ++k) {
      const int idx = dff_index_[ffs[k]];
      if (idx >= 0) {
        ff_pos_[static_cast<std::size_t>(idx)] = {static_cast<int>(c),
                                                  static_cast<int>(k)};
      }
    }
  }
}

void ChainFaultClassifier::touch(NodeId id, Val v) {
  if (cur_[id] == v) return;
  ++events_;
  if (!in_dirty_[id]) {
    in_dirty_[id] = 1;
    dirty_.push_back(id);
  }
  cur_[id] = v;
  for (NodeId s : lv_.fanouts(id)) {
    if (!queued_[s]) {
      queued_[s] = 1;
      worklist_.push_back(s);
    }
  }
}

ChainFaultInfo ChainFaultClassifier::classify(const Fault& f) {
  const Netlist& nl = lv_.netlist();
  const std::vector<Val>& good = model_.values();
  const Val sv = f.stuck_one ? Val::One : Val::Zero;

  dirty_.clear();
  worklist_.clear();

  struct Event {
    ChainLocation loc;
    bool hard;  // category-2 style (unknown / polarity change)
  };
  std::vector<Event> events;

  // Seed.
  if (f.pin == -1) {
    touch(f.node, sv);
  } else {
    if (!queued_[f.node]) {
      queued_[f.node] = 1;
      worklist_.push_back(f.node);
    }
    // A stuck D pin of a chain flip-flop is itself a stuck capture.
    if (nl.type(f.node) == GateType::Dff) {
      const int idx = dff_index_[f.node];
      const auto [c, k] = ff_pos_[static_cast<std::size_t>(idx)];
      if (c >= 0) events.push_back({{c, k}, false});
    }
    // A stuck pin of a chain-path gate can reroute or re-polarise the shift
    // function without changing any 3-valued net value: a scan mux whose
    // select pin is stuck picks the mission D instead of the chain, an XOR
    // side pin stuck at the flipped value inverts the data.  Record those as
    // category-2 events directly.
    const GateType gt = nl.type(f.node);
    if (auto loc = model_.chain_location(f.node);
        loc && is_combinational(gt)) {
      const Val pv =
          good[nl.fanins(f.node)[static_cast<std::size_t>(f.pin)]];
      if (pv != sv) {
        if (gt == GateType::Mux && f.pin == 0) {
          events.push_back({*loc, true});
        } else if ((gt == GateType::Xor || gt == GateType::Xnor) &&
                   pv != Val::X) {
          events.push_back({*loc, true});
        }
      }
    }
  }

  // Fixed-point propagation (crosses flip-flops: a constant D implies a
  // constant Q in steady state; oscillating loops decay to X).
  Val ins[64];
  for (std::size_t head = 0; head < worklist_.size(); ++head) {
    const NodeId id = worklist_[head];
    queued_[id] = 0;
    const GateType t = nl.type(id);
    if (!is_combinational(t) && t != GateType::Dff) continue;  // sources
    if (f.pin == -1 && f.node == id) continue;  // output-stuck site is pinned
    if (eval_count_[id] >= kEvalCap) {
      touch(id, Val::X);  // oscillation decays to unknown
      continue;
    }
    ++eval_count_[id];
    Val out;
    if (t == GateType::Dff) {
      out = cur_[nl.fanins(id)[0]];
      if (f.pin == 0 && f.node == id) out = sv;
    } else {
      const auto fins = nl.fanins(id);
      for (std::size_t p = 0; p < fins.size(); ++p) {
        ins[p] = cur_[fins[p]];
        if (f.node == id && f.pin == static_cast<int>(p)) ins[p] = sv;
      }
      out = eval_gate(t, ins, fins.size());
    }
    touch(id, out);
  }

  // Collect events from changed nets.
  for (NodeId n : dirty_) {
    if (cur_[n] == good[n]) continue;
    if (auto loc = model_.chain_location(n); loc && cur_[n] != Val::X) {
      events.push_back({*loc, false});  // chain net pinned to a constant
    }
    for (const SideAttachment& a : model_.side_attachments(n)) {
      if (cur_[n] == Val::X) {
        events.push_back({a.loc, true});
      } else if (a.gate_type == GateType::Xor ||
                 a.gate_type == GateType::Xnor ||
                 a.gate_type == GateType::Mux) {
        events.push_back({a.loc, true});  // polarity / routing change
      }
    }
  }

  // Restore scratch state.
  for (NodeId n : dirty_) {
    cur_[n] = good[n];
    in_dirty_[n] = 0;
  }
  for (NodeId n : worklist_) {
    eval_count_[n] = 0;
    queued_[n] = 0;
  }

  ChainFaultInfo info;
  if (events.empty()) return info;

  for (const Event& e : events) info.locations.push_back(e.loc);
  std::sort(info.locations.begin(), info.locations.end());
  info.locations.erase(
      std::unique(info.locations.begin(), info.locations.end()),
      info.locations.end());
  info.multi_chain =
      info.locations.front().chain != info.locations.back().chain;

  // Per-chain last-event kind: Easy iff some chain's last affected location
  // carries only category-1 events.
  bool any_easy_chain = false;
  for (const ChainLocation& loc : info.locations) {
    bool last = true;
    for (const ChainLocation& o : info.locations) {
      if (o.chain == loc.chain && o.segment > loc.segment) {
        last = false;
        break;
      }
    }
    if (!last) continue;
    bool has_hard = false, has_easy = false;
    for (const Event& e : events) {
      if (e.loc == loc) (e.hard ? has_hard : has_easy) = true;
    }
    if (has_easy && !has_hard) any_easy_chain = true;
  }
  info.category =
      any_easy_chain ? ChainFaultCategory::Easy : ChainFaultCategory::Hard;
  return info;
}

std::vector<ChainFaultInfo> ChainFaultClassifier::classify_all(
    std::span<const Fault> faults) {
  std::vector<ChainFaultInfo> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) out.push_back(classify(f));
  return out;
}

std::vector<ChainFaultInfo> ChainFaultClassifier::classify_all_parallel(
    const ScanModeModel& model, std::span<const Fault> faults,
    ThreadPool& pool, ObsRegistry* obs) {
  if (pool.jobs() <= 1) {
    ChainFaultClassifier cls(model);
    auto out = cls.classify_all(faults);
    if (obs) {
      obs->add(Ctr::ClassifyFaults, faults.size());
      obs->add(Ctr::ClassifyEvents, cls.events());
      obs->phase_tick(faults.size());
    }
    return out;
  }
  std::vector<ChainFaultInfo> out(faults.size());
  // Coarse chunks: each chunk pays one classifier construction (O(circuit)),
  // so it should amortise over many faults.
  const std::size_t grain = parallel_grain(faults.size(), pool.jobs(), 64);
  parallel_for(pool, faults.size(), grain,
               [&](std::size_t b, std::size_t e) {
                 const ObsSpan span(obs, "classify.chunk");
                 ChainFaultClassifier cls(model);
                 for (std::size_t i = b; i < e; ++i) {
                   out[i] = cls.classify(faults[i]);
                 }
                 if (obs) {
                   obs->add(Ctr::ClassifyFaults, e - b);
                   obs->add(Ctr::ClassifyEvents, cls.events());
                   obs->phase_tick(e - b);
                 }
               });
  return out;
}

}  // namespace fsct
