#include "core/compaction.h"

#include <algorithm>

#include "scan/scan_sequences.h"

namespace fsct {

std::vector<std::vector<std::size_t>> per_vector_detections(
    const ScanModeModel& model, std::span<const ScanVector> vectors,
    std::span<const Fault> targets, std::size_t observe_cycles) {
  const Levelizer& lv = model.levelizer();
  const Netlist& nl = lv.netlist();
  const std::size_t obs_cycles =
      observe_cycles ? observe_cycles : model.max_chain_length() + 2;

  std::vector<NodeId> observe = nl.outputs();
  for (NodeId so : model.scan_outs()) {
    if (std::find(observe.begin(), observe.end(), so) == observe.end()) {
      observe.push_back(so);
    }
  }
  SeqFaultSim sim(lv, observe);
  ScanSequenceBuilder sb(nl, model.design());

  std::vector<std::vector<std::size_t>> detects(vectors.size());
  for (std::size_t v = 0; v < vectors.size(); ++v) {
    const TestSequence seq = sb.apply_comb_vector(
        vectors[v].ff_state, vectors[v].pi_vals, obs_cycles);
    const SeqFaultSimResult r = sim.run(seq, targets);
    for (std::size_t f = 0; f < targets.size(); ++f) {
      if (r.detect_cycle[f] >= 0) detects[v].push_back(f);
    }
  }
  return detects;
}

CompactionResult compact_vectors(const ScanModeModel& model,
                                 std::span<const ScanVector> vectors,
                                 std::span<const Fault> targets,
                                 std::size_t observe_cycles) {
  const auto detects =
      per_vector_detections(model, vectors, targets, observe_cycles);

  CompactionResult res;
  std::vector<char> covered_by_full(targets.size(), 0);
  for (const auto& d : detects) {
    for (std::size_t f : d) covered_by_full[f] = 1;
  }
  res.covered_full = static_cast<std::size_t>(
      std::count(covered_by_full.begin(), covered_by_full.end(), 1));

  // Reverse-order pass: keep a vector only if it contributes a fault not yet
  // covered by the (later) vectors already kept.
  std::vector<char> covered(targets.size(), 0);
  std::vector<std::size_t> kept_rev;
  for (std::size_t i = vectors.size(); i-- > 0;) {
    bool contributes = false;
    for (std::size_t f : detects[i]) {
      if (!covered[f]) {
        contributes = true;
        break;
      }
    }
    if (!contributes) continue;
    kept_rev.push_back(i);
    for (std::size_t f : detects[i]) covered[f] = 1;
  }
  res.kept.assign(kept_rev.rbegin(), kept_rev.rend());
  res.covered_kept = static_cast<std::size_t>(
      std::count(covered.begin(), covered.end(), 1));
  return res;
}

std::vector<std::size_t> truncation_curve(
    const std::vector<std::vector<std::size_t>>& detections,
    std::size_t num_targets) {
  std::vector<char> covered(num_targets, 0);
  std::vector<std::size_t> curve;
  std::size_t n = 0;
  for (const auto& d : detections) {
    for (std::size_t f : d) {
      if (!covered[f]) {
        covered[f] = 1;
        ++n;
      }
    }
    curve.push_back(n);
  }
  return curve;
}

}  // namespace fsct
