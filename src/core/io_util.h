// Signal-robust file-descriptor I/O.
//
// A 5-second CLI run can shrug off an interrupted write; a daemon cannot.
// Under `fsct serve`, SIGUSR1 (status dumps) and SIGTERM (drain) are
// installed *without* SA_RESTART — the accept/poll loops must wake — so any
// blocking read/write in the process can return early with EINTR or come
// back short.  Every fd-level write in the heartbeat/status/serve paths goes
// through these helpers, which retry EINTR and resume short writes until the
// whole buffer is on the wire (or a real error ends the stream).
//
// Seeing EPIPE as an *error return* (rather than a process-fatal signal)
// requires SIGPIPE to be ignored; ServeServer::run() installs SIG_IGN for
// its lifetime, so a client that hangs up mid-response fails only that
// connection's write, never the daemon.
#pragma once

#include <cstddef>
#include <string>

namespace fsct {

/// Writes all `n` bytes of `p` to `fd`, retrying on EINTR and continuing
/// after short writes.  Returns false on any other error (EPIPE when the
/// peer hung up, EBADF after a drain closed the socket, ...); errno is left
/// at the failing call's value.
bool write_all(int fd, const void* p, std::size_t n);

/// write_all of `line` plus a trailing '\n' in a single buffer, so the line
/// reaches the fd in one write(2) when it fits the pipe/socket buffer (keeps
/// concurrent heartbeat lines from interleaving mid-line).
bool write_line(int fd, const std::string& line);

/// read(2) retrying on EINTR only.  Returns the byte count (0 = EOF) or -1
/// on a real error.
long read_retry(int fd, void* p, std::size_t n);

}  // namespace fsct
