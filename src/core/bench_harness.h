// Statistics-aware benchmark harness: turns "the pipeline got faster" from
// an anecdote into a diffable artifact.
//
//   * run_bench() executes a pipeline configuration with warmup + N
//     repetitions per (circuit, jobs) point, aggregates per-phase wall and
//     process-CPU times into median/MAD/min/max summaries, snapshots the
//     deterministic obs counters and peak RSS, and fingerprints the machine
//     (nproc, cpufreq governor, compiler, git sha, sanitizer, OS).
//   * write_bench_json()/read_bench_document() serialize the versioned
//     `fsct-bench-v2` JSON document (`fsct bench run` writes
//     BENCH_<label>.json); the reader also accepts the legacy PR-1 era v1
//     shapes (a bare `--json` row array, or `{"note", "rows": [...]}` with
//     per-row `phase_seconds`) through a v1->v2 shim so old trajectories
//     stay comparable.
//   * compare_bench() diffs two documents with a noise-aware threshold: a
//     phase regresses only when the median delta exceeds
//     max(rel_threshold * old, mad_k * MAD, abs_floor) — so sub-millisecond
//     phases cannot trip the gate on scheduler jitter, and a genuinely
//     noisy phase (large MAD) needs a proportionally larger delta.  Exit
//     codes are CI-friendly: 0 clean, 1 regression, 2 structural mismatch
//     (missing circuit/phase, malformed or wrong-schema JSON).
//
// All parsing errors carry a "<file>: line N:" anchor.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/json.h"

namespace fsct {

/// Thrown on malformed / wrong-schema bench JSON; the message is anchored
/// ("<name>: line N: ...") so CI logs point at the offending byte.  The bench
/// reader is built on the shared line-anchored JSON layer, so this is the
/// same exception the profile loader throws.
using BenchParseError = JsonParseError;

/// Host fingerprint recorded in every document: enough to spot an
/// apples-to-oranges comparison (different core count, governor, compiler,
/// sanitizer) without trusting the label.
struct BenchMachine {
  unsigned nproc = 0;
  std::string governor;   ///< cpu0 cpufreq governor, "unknown" off-Linux
  std::string compiler;   ///< compiler id + __VERSION__
  std::string git_sha;    ///< `git rev-parse --short HEAD`, "unknown" outside
  std::string sanitizer;  ///< "none", "thread" or "address"
  std::string os;         ///< uname sysname + release
};
BenchMachine fingerprint_machine();

/// Robust location/scale summary of one phase's repetition samples.
struct BenchStat {
  double median = 0;
  double mad = 0;  ///< median absolute deviation from the median
  double min = 0;
  double max = 0;
};
/// Median/MAD/min/max of `samples` (empty input -> all zeros).
BenchStat summarize_samples(std::vector<double> samples);

/// One timed phase of a bench row.  `cpu` is process CPU time over the same
/// interval; v1 documents have wall only.
struct BenchPhase {
  std::string name;  ///< "classify", "s2", "s3", "total"
  BenchStat wall;
  BenchStat cpu;
  bool has_cpu = false;
};

/// One (circuit, jobs) measurement point.
struct BenchRow {
  std::string circuit;
  unsigned jobs = 1;
  int reps = 1;
  bool jobs_oversubscribed = false;
  long peak_rss_kb = 0;
  std::vector<BenchPhase> phases;
  /// Deterministic obs counter totals (schedule-independent; see obs.h).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Headline result fields (faults, easy, hard, s2_detected, ...) so a
  /// compare can also flag a *work* change, not just a time change.
  std::vector<std::pair<std::string, std::uint64_t>> results;
};

struct BenchDocument {
  int schema_version = 2;  ///< 1 = legacy shim, 2 = fsct-bench-v2
  std::string label;
  std::string note;
  BenchMachine machine;
  int reps = 0;
  int warmup = 0;
  /// Machine-readable run warnings (e.g. jobs oversubscription) — the JSON
  /// twin of what used to be stderr-only.
  std::vector<std::string> warnings;
  std::vector<BenchRow> rows;
};

/// Labels become file names (BENCH_<label>.json): [A-Za-z0-9._-]+ only.
bool valid_bench_label(const std::string& label);

struct BenchRunConfig {
  std::string label = "run";
  std::string note;
  /// Suite circuits to run; empty = every suite circuit under max_gates.
  std::vector<std::string> circuits;
  int max_gates = 1 << 30;
  std::vector<int> jobs = {1};  ///< one set of rows per entry (resolved)
  int reps = 5;
  int warmup = 1;
  /// Enable the per-fault attribution ledger during every repetition.  Used
  /// by the overhead gate (attribution on vs off must compare clean); the
  /// ledger itself is discarded — bench rows carry only the deterministic
  /// counters.
  bool attribution = false;
  /// Per-rep progress lines ("s1488 jobs=1 rep 3/5: total 0.012s"), unset =
  /// silent.
  std::function<void(const std::string&)> progress;
};

/// Runs the screening pipeline per the config and aggregates the document.
/// Throws std::invalid_argument on unknown circuit names.
BenchDocument run_bench(const BenchRunConfig& cfg);

/// Serializes a v2 document (pretty-printed, stable field order).
std::string write_bench_json(const BenchDocument& doc);

/// Parses a bench document (v2 or legacy v1 shapes).  `name` prefixes error
/// messages; throws BenchParseError.
BenchDocument parse_bench_document(const std::string& json_text,
                                   const std::string& name);
/// Reads and parses `path`; throws BenchParseError (also on I/O failure).
BenchDocument read_bench_document(const std::string& path);

struct CompareOptions {
  double rel_threshold = 0.10;  ///< fraction of the old median
  double mad_k = 3.0;           ///< multiples of the larger MAD
  double abs_floor_s = 0.005;   ///< deltas under 5 ms never gate
};

/// One phase-level comparison cell.
struct CompareDelta {
  std::string circuit;
  unsigned jobs = 1;
  std::string phase;
  double old_median = 0;
  double new_median = 0;
  double noise = 0;  ///< the threshold the delta was held against
  bool regression = false;
  bool improvement = false;
};

struct CompareReport {
  std::vector<CompareDelta> deltas;
  /// Structural problems (missing circuit/phase rows): any entry -> exit 2.
  std::vector<std::string> mismatches;
  /// Informational notes (counter / result drift, machine differences).
  std::vector<std::string> notes;
  bool has_regression() const;
  /// 0 clean, 1 regression, 2 mismatch (mismatch wins).
  int exit_code() const;
};

CompareReport compare_bench(const BenchDocument& old_doc,
                            const BenchDocument& new_doc,
                            const CompareOptions& opt = {});

/// Human-readable per-circuit/per-phase table plus REGRESSION/mismatch
/// lines; what `fsct bench compare` prints.
void print_compare_report(std::ostream& os, const CompareReport& rep);

}  // namespace fsct
