// Tester-program export/import for chain test sets.
//
// A chain test program is what actually ships to ATE: the ordered scan-mode
// stimulus (flush + converted vectors) together with the expected good-
// machine responses at every strobe point.  The format is a simple,
// line-oriented text format that round-trips:
//
//   FSCT-TEST 1
//   circuit <name>
//   inputs <pi names...>
//   observe <net names...>
//   cycles <n>
//   v <pi values> | <expected observe values>     # one line per cycle
//
// Values are '0', '1' or 'X' (don't-care stimulus / unpredictable strobe).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_mode_model.h"

namespace fsct {

/// One exported tester program.
struct TestProgram {
  std::string circuit;
  std::vector<std::string> input_names;
  std::vector<std::string> observe_names;
  TestSequence stimulus;                       ///< per cycle, PI values
  std::vector<std::vector<Val>> expected;      ///< per cycle, observe values
};

/// Builds a program from a stimulus: simulates the good machine from
/// power-up (all-X state) and records the expected strobe values.
/// `observe` empty = POs + scan-outs.
TestProgram make_test_program(const ScanModeModel& model,
                              TestSequence stimulus,
                              std::vector<NodeId> observe = {});

/// Serialises / parses the text format (throws std::runtime_error with a
/// line number on malformed input).
void write_test_program(std::ostream& os, const TestProgram& p);
std::string write_test_program_string(const TestProgram& p);
TestProgram read_test_program(std::istream& is);
TestProgram read_test_program_string(const std::string& text);

/// Re-binds a parsed program to a netlist (names -> node ids) so it can be
/// simulated; throws if a name is unknown or the PI count mismatches.
struct BoundTestProgram {
  TestSequence stimulus;          ///< reordered to the netlist's inputs()
  std::vector<NodeId> observe;
  const std::vector<std::vector<Val>>* expected = nullptr;
};
BoundTestProgram bind_test_program(const Netlist& nl, const TestProgram& p);

/// Runs the program against the circuit (optionally with an injected fault)
/// and returns the number of strobe mismatches vs the expected responses.
std::size_t run_test_program(const Levelizer& lv, const TestProgram& p,
                             const Fault* fault = nullptr);

/// Assembles the complete chain test program from a pipeline result: the
/// alternating flush, every step-2 vector as a scan-load + flush-out
/// sequence, and every verified step-3 sequential test, concatenated into
/// one scan-mode stimulus with expected responses.
TestProgram make_chain_test_program(const ScanModeModel& model,
                                    const PipelineResult& result);

}  // namespace fsct
