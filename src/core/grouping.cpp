#include "core/grouping.h"

#include <algorithm>
#include <tuple>

namespace fsct {

DistanceParams DistanceParams::from_maxsize(std::size_t maxsize) {
  DistanceParams p;
  p.large_dist = std::max<int>(static_cast<int>(0.6 * static_cast<double>(maxsize)), 50);
  p.med_dist = std::max<int>(static_cast<int>(0.25 * static_cast<double>(maxsize)), 25);
  p.dist = std::max<int>(static_cast<int>(0.15 * static_cast<double>(maxsize)), 20);
  return p;
}

FaultWindow make_fault_window(std::size_t fault_index,
                              const ChainFaultInfo& info) {
  FaultWindow w;
  w.fault_index = fault_index;
  for (const ChainLocation& loc : info.locations) {
    bool merged = false;
    for (ChainWindow& cw : w.chains) {
      if (cw.chain == loc.chain) {
        cw.min_seg = std::min(cw.min_seg, loc.segment);
        cw.max_seg = std::max(cw.max_seg, loc.segment);
        merged = true;
        break;
      }
    }
    if (!merged) w.chains.push_back({loc.chain, loc.segment, loc.segment});
  }
  return w;
}

namespace {

// True if `f`'s windows all fit inside `host`'s windows (same chains only).
bool fits_inside(const FaultWindow& f, const std::vector<ChainWindow>& host) {
  for (const ChainWindow& fw : f.chains) {
    bool ok = false;
    for (const ChainWindow& hw : host) {
      if (hw.chain == fw.chain && fw.min_seg >= hw.min_seg &&
          fw.max_seg <= hw.max_seg) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::vector<AtpgGroup> make_groups(const std::vector<FaultWindow>& faults,
                                   const DistanceParams& p) {
  std::vector<AtpgGroup> groups;
  std::vector<char> taken(faults.size(), 0);

  // Group 1: multi-chain faults and very wide spans — one circuit each.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultWindow& f = faults[i];
    if (f.multi_chain() || f.spread() >= p.large_dist) {
      AtpgGroup g;
      g.kind = 1;
      g.fault_indices = {f.fault_index};
      g.window = f.chains;
      groups.push_back(std::move(g));
      taken[i] = 1;
    }
  }

  // Group 2: medium spans — the seed's circuit absorbs compatible faults.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (taken[i]) continue;
    const FaultWindow& f = faults[i];
    if (f.chains.size() != 1 || f.spread() < p.med_dist) continue;
    AtpgGroup g;
    g.kind = 2;
    g.window = f.chains;
    g.fault_indices.push_back(f.fault_index);
    taken[i] = 1;
    for (std::size_t j = 0; j < faults.size(); ++j) {
      if (taken[j]) continue;
      if (fits_inside(faults[j], g.window)) {
        g.fault_indices.push_back(faults[j].fault_index);
        taken[j] = 1;
      }
    }
    groups.push_back(std::move(g));
  }

  // Group 3: cluster the narrow faults per chain, window span <= DIST.
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!taken[i]) rest.push_back(i);
  }
  std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
    const ChainWindow& wa = faults[a].chains.front();
    const ChainWindow& wb = faults[b].chains.front();
    return std::tie(wa.chain, wa.min_seg, wa.max_seg, faults[a].fault_index) <
           std::tie(wb.chain, wb.min_seg, wb.max_seg, faults[b].fault_index);
  });
  AtpgGroup cur;
  cur.kind = 3;
  auto flush = [&] {
    if (!cur.fault_indices.empty()) groups.push_back(std::move(cur));
    cur = AtpgGroup{};
    cur.kind = 3;
  };
  for (std::size_t i : rest) {
    const ChainWindow& w = faults[i].chains.front();
    if (cur.fault_indices.empty()) {
      cur.window = {w};
    } else {
      ChainWindow& cw = cur.window.front();
      const int new_min = std::min(cw.min_seg, w.min_seg);
      const int new_max = std::max(cw.max_seg, w.max_seg);
      if (cw.chain != w.chain || new_max - new_min > p.dist) {
        flush();
        cur.window = {w};
      } else {
        cw.min_seg = new_min;
        cw.max_seg = new_max;
      }
    }
    cur.fault_indices.push_back(faults[i].fault_index);
  }
  flush();
  return groups;
}

}  // namespace fsct
