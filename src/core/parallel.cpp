#include "core/parallel.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <utility>

namespace fsct {

namespace {
// Which pool (and which of its workers) the current thread belongs to; lets
// submit() route nested submissions to the submitting worker's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local unsigned tls_worker = 0;
}  // namespace

unsigned ThreadPool::current_executor() {
  return tls_pool != nullptr ? tls_worker + 1 : 0;
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerStats s;
    s.tasks = w->tasks.load(std::memory_order_relaxed);
    s.steals = w->steals.load(std::memory_order_relaxed);
    s.global_pops = w->global_pops.load(std::memory_order_relaxed);
    s.idle_seconds =
        static_cast<double>(w->idle_ns.load(std::memory_order_relaxed)) * 1e-9;
    out.push_back(s);
  }
  return out;
}

unsigned resolve_jobs(int jobs) {
  if (jobs > 0) return static_cast<unsigned>(jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool::ThreadPool(int jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(jobs_ - 1);
  for (unsigned i = 0; i + 1 < jobs_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers_.size());
  for (unsigned i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {  // serial pool: no worker would ever pop it
    task();
    return;
  }
  if (tls_pool == this) {
    Worker& w = *workers_[tls_worker];
    std::lock_guard<std::mutex> lk(w.m);
    w.q.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lk(global_m_);
    global_.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section: pairs with the predicate check inside the
  // workers' cv wait so the notify cannot be lost.
  { std::lock_guard<std::mutex> lk(sleep_m_); }
  sleep_cv_.notify_one();
}

bool ThreadPool::next_task(unsigned me, std::function<void()>& out) {
  {  // own deque, newest first (cache-warm nested work)
    Worker& w = *workers_[me];
    std::lock_guard<std::mutex> lk(w.m);
    if (!w.q.empty()) {
      out = std::move(w.q.back());
      w.q.pop_back();
      return true;
    }
  }
  {  // external submissions, FIFO
    std::lock_guard<std::mutex> lk(global_m_);
    if (!global_.empty()) {
      out = std::move(global_.front());
      global_.pop_front();
      workers_[me]->global_pops.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal from the other workers, oldest first.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& v = *workers_[(me + k) % workers_.size()];
    std::lock_guard<std::mutex> lk(v.m);
    if (!v.q.empty()) {
      out = std::move(v.q.front());
      v.q.pop_front();
      workers_[me]->steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned me) {
  tls_pool = this;
  tls_worker = me;
  std::function<void()> task;
  for (;;) {
    if (next_task(me, task)) {
      pending_.fetch_sub(1, std::memory_order_acquire);
      workers_[me]->tasks.fetch_add(1, std::memory_order_relaxed);
      task();
      task = nullptr;
      continue;
    }
    const auto idle0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lk(sleep_m_);
    sleep_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    workers_[me]->idle_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle0)
                .count()),
        std::memory_order_relaxed);
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (n <= grain) {
    body(0, n);
    return;
  }
  if (pool.jobs() <= 1) {
    // Same chunking and error semantics as the parallel path: every chunk
    // runs, and the error from the lowest chunk (here the first, since the
    // chunks run in order) is what propagates.
    std::exception_ptr err;
    for (std::size_t b = 0; b < n; b += grain) {
      try {
        body(b, std::min(b + grain, n));
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    return;
  }

  struct State {
    std::size_t n, grain, total_chunks;
    const std::function<void(std::size_t, std::size_t)>* body;
    std::atomic<std::size_t> next{0};
    std::mutex m;
    std::condition_variable cv;
    std::size_t done_chunks = 0;
    std::size_t err_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr err;
  };
  auto st = std::make_shared<State>();
  st->n = n;
  st->grain = grain;
  st->total_chunks = (n + grain - 1) / grain;
  st->body = &body;

  // Claims and runs chunks until none are left.  Every chunk is executed by
  // exactly the thread that claimed it, so done_chunks == total_chunks means
  // every body() call has returned.
  auto runner = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t b =
          s->next.fetch_add(s->grain, std::memory_order_relaxed);
      if (b >= s->n) break;
      const std::size_t e = std::min(b + s->grain, s->n);
      std::exception_ptr err;
      try {
        (*s->body)(b, e);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(s->m);
      if (err && b < s->err_index) {
        s->err_index = b;
        s->err = err;
      }
      if (++s->done_chunks == s->total_chunks) s->cv.notify_all();
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(pool.jobs() - 1, st->total_chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([st, runner] { runner(st); });
  }
  runner(st);  // the caller participates and drains any unclaimed chunks

  std::unique_lock<std::mutex> lk(st->m);
  st->cv.wait(lk, [&] { return st->done_chunks == st->total_chunks; });
  // Take the exception out of the shared state before rethrowing: a helper
  // closure may still be mid-teardown on a worker thread, and if it drops
  // the last State reference the stored exception object would be destroyed
  // there — racing the caller's catch block, which may share storage with
  // it (COW strings in e.what()). Moving it makes this thread the owner.
  std::exception_ptr err = std::move(st->err);
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace fsct
