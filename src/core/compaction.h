// Test-set compaction and truncation for the step-2 scan vectors.
//
// The paper observes (Figure 5) that "the large majority of detected faults
// are detected by the beginning part of the test sequence, thus the test set
// can be reduced with only a small increase in the number of undetected
// faults".  This module quantifies that trade-off two ways:
//   * truncation — keep only the first k vectors,
//   * reverse-order greedy compaction — keep a vector only if it detects a
//     fault no later-kept vector covers (classic static compaction).
#pragma once

#include <span>
#include <vector>

#include "core/pipeline.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_mode_model.h"

namespace fsct {

/// Per-vector detection sets against a fault list: detects[v] lists the
/// indices (into `targets`) of faults vector v detects, each vector applied
/// from the all-X power-up state via scan-load + flush.
std::vector<std::vector<std::size_t>> per_vector_detections(
    const ScanModeModel& model, std::span<const ScanVector> vectors,
    std::span<const Fault> targets, std::size_t observe_cycles = 0);

struct CompactionResult {
  std::vector<std::size_t> kept;   ///< indices of retained vectors, in order
  std::size_t covered_full = 0;    ///< faults the full set detects
  std::size_t covered_kept = 0;    ///< faults the compacted set detects
};

/// Reverse-order greedy compaction (lossless: covered_kept == covered_full).
CompactionResult compact_vectors(const ScanModeModel& model,
                                 std::span<const ScanVector> vectors,
                                 std::span<const Fault> targets,
                                 std::size_t observe_cycles = 0);

/// Truncation curve: entry k = #faults detected by the first k+1 vectors
/// (recomputed from the detection sets, so usable on any vector ordering).
std::vector<std::size_t> truncation_curve(
    const std::vector<std::vector<std::size_t>>& detections,
    std::size_t num_targets);

}  // namespace fsct
