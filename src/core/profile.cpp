#include "core/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

#include "core/json.h"
#include "core/report.h"

namespace fsct {
namespace {

std::string fmt_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

/// "U123/2 s-a-1" -> "U123" (the gate part of a fault name).
std::string gate_name_of(const std::string& fault_name) {
  std::string g = fault_name.substr(0, fault_name.find(' '));
  const std::size_t slash = g.find('/');
  if (slash != std::string::npos) g.resize(slash);
  return g;
}

bool row_rank(const ProfileFaultRow& a, const ProfileFaultRow& b) {
  auto col = [](const ProfileFaultRow& r, Attr c) {
    return r.work[static_cast<std::size_t>(c)];
  };
  if (col(a, Attr::WallNanos) != col(b, Attr::WallNanos)) {
    return col(a, Attr::WallNanos) > col(b, Attr::WallNanos);
  }
  if (col(a, Attr::PodemDecisions) != col(b, Attr::PodemDecisions)) {
    return col(a, Attr::PodemDecisions) > col(b, Attr::PodemDecisions);
  }
  if (col(a, Attr::SeqCycles) != col(b, Attr::SeqCycles)) {
    return col(a, Attr::SeqCycles) > col(b, Attr::SeqCycles);
  }
  return a.id < b.id;
}

void work_json(std::string& out, const std::array<std::uint64_t, kNumAttrs>& w) {
  out += "[";
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    if (a) out += ", ";
    out += std::to_string(w[a]);
  }
  out += "]";
}

}  // namespace

AttrContext make_attr_context(const Levelizer& lv,
                              std::span<const Fault> faults, bool dominance) {
  const Netlist& nl = lv.netlist();
  AttrContext ctx;
  ctx.fault_names.reserve(faults.size());
  ctx.rep.reserve(faults.size());
  ctx.gate.reserve(faults.size());
  ctx.level.reserve(faults.size());
  for (const Fault& f : faults) {
    ctx.fault_names.push_back(fault_name(nl, f));
    ctx.gate.push_back(static_cast<std::int32_t>(f.node));
    ctx.level.push_back(static_cast<std::int32_t>(lv.level(f.node)));
  }
  if (dominance) {
    const DominanceInfo dom = collapse_dominant(nl, faults);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      ctx.rep.push_back(static_cast<std::int32_t>(dom.rep[i]));
    }
  } else {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      ctx.rep.push_back(static_cast<std::int32_t>(i));
    }
  }
  return ctx;
}

ProfileDoc build_profile(const ObsRegistry& reg, const AttrContext& ctx,
                         const std::string& circuit, std::size_t top_k) {
  ProfileDoc doc;
  doc.circuit = circuit;
  doc.faults = reg.attribution_faults();

  // Active rows (any column charged), with identity attached.
  std::vector<ProfileFaultRow> rows;
  for (std::size_t f = 0; f < doc.faults; ++f) {
    ProfileFaultRow r;
    r.id = f;
    bool any = false;
    for (std::size_t a = 0; a < kNumAttrs; ++a) {
      r.work[a] = reg.attr_total(static_cast<Attr>(a), f);
      any |= r.work[a] != 0;
    }
    if (!any) continue;
    if (f < ctx.fault_names.size()) {
      r.name = ctx.fault_names[f];
      r.rep = ctx.rep[f];
      r.gate = ctx.gate[f];
      r.level = ctx.level[f];
    }
    rows.push_back(std::move(r));
  }
  doc.active = rows.size();

  // Gate / level rollups over the full active set (before truncation).
  std::map<std::int32_t, ProfileAgg> by_gate, by_level;
  for (const ProfileFaultRow& r : rows) {
    ProfileAgg& g = by_gate[r.gate];
    g.key = r.gate;
    if (g.name.empty() && !r.name.empty()) g.name = gate_name_of(r.name);
    ++g.faults;
    ProfileAgg& l = by_level[r.level];
    l.key = r.level;
    ++l.faults;
    for (std::size_t a = 0; a < kNumAttrs; ++a) {
      g.work[a] += r.work[a];
      l.work[a] += r.work[a];
    }
  }
  for (auto& [key, agg] : by_gate) doc.gates.push_back(std::move(agg));
  std::sort(doc.gates.begin(), doc.gates.end(),
            [](const ProfileAgg& a, const ProfileAgg& b) {
              const std::size_t w = static_cast<std::size_t>(Attr::WallNanos);
              const std::size_t d =
                  static_cast<std::size_t>(Attr::PodemDecisions);
              if (a.work[w] != b.work[w]) return a.work[w] > b.work[w];
              if (a.work[d] != b.work[d]) return a.work[d] > b.work[d];
              return a.key < b.key;
            });
  if (top_k && doc.gates.size() > top_k) doc.gates.resize(top_k);
  for (auto& [key, agg] : by_level) doc.levels.push_back(std::move(agg));

  std::sort(rows.begin(), rows.end(), row_rank);
  if (top_k && rows.size() > top_k) rows.resize(top_k);
  doc.top = std::move(rows);

  // Span-tree aggregation.  Spans on one tid never overlap as siblings (the
  // executor runs them sequentially), so ancestry is pure interval
  // containment: sort (tid, t0 asc, t1 desc) and keep a stack of open
  // ancestors.  Nodes merge by path; self = total minus direct-child total.
  struct Node {
    std::uint64_t count = 0;
    double total = 0, child = 0;
  };
  std::map<std::string, Node> nodes;
  auto spans = reg.trace_snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const ObsRegistry::SpanEvent& a, const ObsRegistry::SpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.t0_us != b.t0_us) return a.t0_us < b.t0_us;
              return a.t1_us > b.t1_us;
            });
  struct Open {
    std::string path;
    double t1;
  };
  std::vector<Open> stack;
  unsigned cur_tid = 0;
  for (const auto& e : spans) {
    if (stack.empty() || e.tid != cur_tid) {
      stack.clear();
      cur_tid = e.tid;
    }
    while (!stack.empty() && e.t0_us >= stack.back().t1) stack.pop_back();
    const std::string path =
        stack.empty() ? e.name : stack.back().path + ";" + e.name;
    const double dur = e.t1_us - e.t0_us;
    Node& n = nodes[path];
    ++n.count;
    n.total += dur;
    if (!stack.empty()) nodes[stack.back().path].child += dur;
    stack.push_back({path, e.t1_us});
  }
  for (const auto& [path, n] : nodes) {
    ProfilePhase p;
    p.path = path;
    p.count = n.count;
    p.total_us = n.total;
    p.self_us = std::max(0.0, n.total - n.child);
    doc.phases.push_back(std::move(p));
  }
  return doc;
}

void write_profile_json(std::ostream& os, const ProfileDoc& doc) {
  std::string out = "{\n\"schema\": \"fsct-profile-v1\",\n";
  out += "\"circuit\": \"" + json_escape(doc.circuit) + "\",\n";
  out += "\"faults\": " + std::to_string(doc.faults) + ",\n";
  out += "\"active\": " + std::to_string(doc.active) + ",\n";
  out += "\"columns\": [";
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    if (a) out += ", ";
    out += "\"";
    out += attr_name(static_cast<Attr>(a));
    out += "\"";
  }
  out += "],\n\"top\": [";
  for (std::size_t i = 0; i < doc.top.size(); ++i) {
    const ProfileFaultRow& r = doc.top[i];
    out += i ? ",\n " : "\n ";
    out += "{\"id\": " + std::to_string(r.id) + ", \"name\": \"" +
           json_escape(r.name) + "\", \"rep\": " + std::to_string(r.rep) +
           ", \"gate\": " + std::to_string(r.gate) +
           ", \"level\": " + std::to_string(r.level) + ", \"work\": ";
    work_json(out, r.work);
    out += "}";
  }
  out += "],\n\"gates\": [";
  for (std::size_t i = 0; i < doc.gates.size(); ++i) {
    const ProfileAgg& g = doc.gates[i];
    out += i ? ",\n " : "\n ";
    out += "{\"gate\": " + std::to_string(g.key) + ", \"name\": \"" +
           json_escape(g.name) + "\", \"faults\": " +
           std::to_string(g.faults) + ", \"work\": ";
    work_json(out, g.work);
    out += "}";
  }
  out += "],\n\"levels\": [";
  for (std::size_t i = 0; i < doc.levels.size(); ++i) {
    const ProfileAgg& l = doc.levels[i];
    out += i ? ",\n " : "\n ";
    out += "{\"level\": " + std::to_string(l.key) +
           ", \"faults\": " + std::to_string(l.faults) + ", \"work\": ";
    work_json(out, l.work);
    out += "}";
  }
  out += "],\n\"phases\": [";
  for (std::size_t i = 0; i < doc.phases.size(); ++i) {
    const ProfilePhase& p = doc.phases[i];
    out += i ? ",\n " : "\n ";
    out += "{\"path\": \"" + json_escape(p.path) +
           "\", \"count\": " + std::to_string(p.count) +
           ", \"total_us\": " + fmt_us(p.total_us) +
           ", \"self_us\": " + fmt_us(p.self_us) + "}";
  }
  out += "]\n}\n";
  os << out;
}

void write_folded(std::ostream& os, const ProfileDoc& doc) {
  for (const ProfilePhase& p : doc.phases) {
    const std::uint64_t self =
        static_cast<std::uint64_t>(p.self_us + 0.5);
    if (self == 0) continue;
    os << p.path << " " << self << "\n";
  }
}

namespace {

std::array<std::uint64_t, kNumAttrs> parse_work(const JsonParser& p,
                                                const JVal& obj) {
  std::array<std::uint64_t, kNumAttrs> w{};
  const JVal* arr = obj.find("work");
  if (!arr || arr->kind != JVal::Arr) {
    p.fail_at(obj.line, "missing \"work\" array");
  }
  for (std::size_t a = 0; a < std::min(kNumAttrs, arr->arr.size()); ++a) {
    if (arr->arr[a].kind != JVal::Num) {
      p.fail_at(arr->arr[a].line, "\"work\" entries must be numbers");
    }
    w[a] = static_cast<std::uint64_t>(arr->arr[a].num);
  }
  return w;
}

ProfileFaultRow parse_row(const JsonParser& p, const JVal& obj) {
  ProfileFaultRow r;
  r.id = static_cast<std::size_t>(json_num(p, obj, "id", 0, true));
  r.name = json_str(p, obj, "name");
  r.rep = static_cast<std::int32_t>(json_num(p, obj, "rep", -1));
  r.gate = static_cast<std::int32_t>(json_num(p, obj, "gate", -1));
  r.level = static_cast<std::int32_t>(json_num(p, obj, "level", -1));
  r.work = parse_work(p, obj);
  return r;
}

}  // namespace

ProfileDoc parse_profile_json(const std::string& text,
                              const std::string& name) {
  JsonParser p(text, name);
  const JVal root = p.parse();
  if (root.kind != JVal::Obj) p.fail_at(root.line, "expected a JSON object");
  const std::string schema = json_str(p, root, "schema");
  ProfileDoc doc;
  if (schema == "fsct-profile-v1") {
    doc.circuit = json_str(p, root, "circuit");
    doc.faults = static_cast<std::size_t>(json_num(p, root, "faults"));
    doc.active = static_cast<std::size_t>(json_num(p, root, "active"));
    if (const JVal* top = root.find("top")) {
      for (const JVal& e : top->arr) doc.top.push_back(parse_row(p, e));
    }
    if (const JVal* gates = root.find("gates")) {
      for (const JVal& e : gates->arr) {
        ProfileAgg g;
        g.key = static_cast<std::int32_t>(json_num(p, e, "gate", -1, true));
        g.name = json_str(p, e, "name");
        g.faults = static_cast<std::uint64_t>(json_num(p, e, "faults"));
        g.work = parse_work(p, e);
        doc.gates.push_back(std::move(g));
      }
    }
    if (const JVal* levels = root.find("levels")) {
      for (const JVal& e : levels->arr) {
        ProfileAgg l;
        l.key = static_cast<std::int32_t>(json_num(p, e, "level", -1, true));
        l.faults = static_cast<std::uint64_t>(json_num(p, e, "faults"));
        l.work = parse_work(p, e);
        doc.levels.push_back(std::move(l));
      }
    }
    if (const JVal* phases = root.find("phases")) {
      for (const JVal& e : phases->arr) {
        ProfilePhase ph;
        ph.path = json_str(p, e, "path");
        ph.count = static_cast<std::uint64_t>(json_num(p, e, "count"));
        ph.total_us = json_num(p, e, "total_us");
        ph.self_us = json_num(p, e, "self_us");
        doc.phases.push_back(std::move(ph));
      }
    }
    return doc;
  }
  if (schema == "fsct-run-report-v2") {
    const JVal* attr = root.find("attribution");
    if (!attr || attr->kind != JVal::Obj) {
      p.fail_at(root.line, "run report has no \"attribution\" section");
    }
    const JVal* enabled = attr->find("enabled");
    if (!enabled || enabled->kind != JVal::Bool || !enabled->b) {
      p.fail_at(attr->line,
                "attribution was disabled in this run "
                "(re-run with --profile or --attribution)");
    }
    doc.faults = static_cast<std::size_t>(json_num(p, *attr, "faults"));
    doc.active = static_cast<std::size_t>(json_num(p, *attr, "active"));
    if (const JVal* top = attr->find("top")) {
      for (const JVal& e : top->arr) doc.top.push_back(parse_row(p, e));
    }
    return doc;
  }
  p.fail_at(root.line,
            "unsupported schema \"" + schema +
                "\" (expected fsct-profile-v1 or fsct-run-report-v2)");
}

void print_profile(std::ostream& os, const ProfileDoc& doc,
                   std::size_t top_k) {
  os << "profile";
  if (!doc.circuit.empty()) os << " of " << doc.circuit;
  os << ": " << doc.faults << " fault ids, " << doc.active
     << " with attributed work\n\n";

  os << "hardest faults";
  if (top_k && doc.top.size() >= top_k) os << " (top " << top_k << ")";
  os << ":\n";
  print_hotspot_header(os);
  std::size_t shown = 0;
  for (const ProfileFaultRow& r : doc.top) {
    if (top_k && shown++ >= top_k) break;
    HotspotRow h;
    h.id = r.id;
    h.name = r.name;
    h.level = r.level;
    h.podem_calls = r.work[static_cast<std::size_t>(Attr::PodemCalls)];
    h.decisions = r.work[static_cast<std::size_t>(Attr::PodemDecisions)];
    h.backtracks = r.work[static_cast<std::size_t>(Attr::PodemBacktracks)];
    h.seq_cycles = r.work[static_cast<std::size_t>(Attr::SeqCycles)];
    h.credits = r.work[static_cast<std::size_t>(Attr::CreditEvents)];
    h.wall_ms =
        static_cast<double>(r.work[static_cast<std::size_t>(Attr::WallNanos)]) /
        1e6;
    print_hotspot_row(os, h);
  }

  if (!doc.gates.empty()) {
    os << "\nhottest gates:\n";
    std::size_t n = 0;
    for (const ProfileAgg& g : doc.gates) {
      if (top_k && n++ >= top_k) break;
      char buf[160];
      std::snprintf(
          buf, sizeof buf,
          "  %-16s gate=%d faults=%llu decisions=%llu wall=%.2fms\n",
          g.name.empty() ? "(gate)" : g.name.c_str(), g.key,
          static_cast<unsigned long long>(g.faults),
          static_cast<unsigned long long>(
              g.work[static_cast<std::size_t>(Attr::PodemDecisions)]),
          static_cast<double>(
              g.work[static_cast<std::size_t>(Attr::WallNanos)]) /
              1e6);
      os << buf;
    }
  }

  if (!doc.levels.empty()) {
    os << "\nactivity by level:\n";
    for (const ProfileAgg& l : doc.levels) {
      char buf[160];
      std::snprintf(
          buf, sizeof buf,
          "  level %-4d faults=%-6llu seq_cycles=%-10llu wall=%.2fms\n",
          l.key, static_cast<unsigned long long>(l.faults),
          static_cast<unsigned long long>(
              l.work[static_cast<std::size_t>(Attr::SeqCycles)]),
          static_cast<double>(
              l.work[static_cast<std::size_t>(Attr::WallNanos)]) /
              1e6);
      os << buf;
    }
  }

  if (!doc.phases.empty()) {
    os << "\nphases (self / total):\n";
    for (const ProfilePhase& ph : doc.phases) {
      char buf[256];
      std::snprintf(buf, sizeof buf, "  %-40s count=%-6llu %10.3fms %10.3fms\n",
                    ph.path.c_str(),
                    static_cast<unsigned long long>(ph.count),
                    ph.self_us / 1e3, ph.total_us / 1e3);
      os << buf;
    }
  }
}

}  // namespace fsct
