#include "core/reduced_atpg.h"

#include <algorithm>

namespace fsct {

std::vector<Cost> fault_excitation_costs(const Levelizer& lv,
                                         const std::vector<char>& controllable,
                                         std::span<const Fault> faults) {
  const Scoap sc = compute_scoap(lv, controllable);
  const Netlist& nl = lv.netlist();
  std::vector<Cost> cost;
  cost.reserve(faults.size());
  for (const Fault& f : faults) {
    const NodeId site =
        f.pin >= 0 ? nl.fanins(f.node)[static_cast<std::size_t>(f.pin)]
                   : f.node;
    cost.push_back(sc.cc(site, !f.stuck_one));
  }
  return cost;
}

std::vector<std::size_t> scoap_target_order(
    std::span<const Cost> cost, std::span<const std::size_t> targets) {
  std::vector<std::size_t> order(targets.begin(), targets.end());
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] < cost[b];
    return a < b;
  });
  return order;
}

ReducedCircuitBuilder::ReducedCircuitBuilder(const ScanModeModel& model,
                                             ReducedModelOptions opt)
    : model_(model),
      opt_(opt),
      seq_builder_(model.levelizer().netlist(), model.design()) {
  const Netlist& nl = model.levelizer().netlist();
  ff_pos_.reserve(nl.dffs().size());
  for (NodeId ff : nl.dffs()) ff_pos_.push_back(seq_builder_.chain_position(ff));
}

int ReducedCircuitBuilder::frames_for(const AtpgGroup& g,
                                      int extra_frames) const {
  int spread = 0;
  for (const ChainWindow& w : g.window) {
    spread = std::max(spread, w.max_seg - w.min_seg);
  }
  return std::min(opt_.frame_cap,
                  std::max(3, spread + opt_.frame_slack + extra_frames));
}

ReducedModel ReducedCircuitBuilder::build(const AtpgGroup& g,
                                          std::span<const Fault> group_faults,
                                          int extra_frames) const {
  const Levelizer& base_lv = model_.levelizer();
  const Netlist& nl = base_lv.netlist();
  const std::size_t n_ff = nl.dffs().size();

  // Per-FF controllability/observability from the group's window.
  std::vector<char> controllable(n_ff, 0), observable(n_ff, 0);
  for (std::size_t i = 0; i < n_ff; ++i) {
    const auto [c, k] = ff_pos_[i];
    if (c < 0) continue;  // not on any chain: neither
    const ChainWindow* w = nullptr;
    for (const ChainWindow& cw : g.window) {
      if (cw.chain == c) {
        w = &cw;
        break;
      }
    }
    if (w == nullptr) {  // unaffected chain: fully controllable + observable
      controllable[i] = 1;
      observable[i] = 1;
    } else {
      controllable[i] = (k < w->min_seg);
      observable[i] = (k >= w->max_seg);
    }
  }

  // Union forward closure of the group's faults.
  std::vector<char> cone(nl.size(), 0);
  for (const Fault& f : group_faults) {
    const std::vector<char> c = fault_forward_closure(base_lv, f.node);
    for (NodeId id = 0; id < nl.size(); ++id) cone[id] |= c[id];
  }

  // Roots: fault sites, observable FFs within the cone, POs within the cone.
  std::vector<NodeId> roots;
  for (const Fault& f : group_faults) roots.push_back(f.node);
  for (std::size_t i = 0; i < n_ff; ++i) {
    if (observable[i] && cone[nl.dffs()[i]]) {
      roots.push_back(nl.dffs()[i]);
    } else if (observable[i] && !cone[nl.dffs()[i]]) {
      observable[i] = 0;  // cannot show the effect; keep the model small
    }
  }
  if (opt_.observe_pos) {
    for (NodeId po : nl.outputs()) {
      if (cone[po]) roots.push_back(po);
    }
  }

  const std::vector<char> keep =
      compute_keep_mask(base_lv, model_.values(), cone, roots);

  UnrollSpec spec;
  spec.base = &nl;
  spec.frames = frames_for(g, extra_frames);
  spec.fixed_pis = model_.design().pi_constraints;
  spec.controllable_state.assign(controllable.begin(), controllable.end());
  spec.observable_ff.assign(observable.begin(), observable.end());
  spec.observe_pos = opt_.observe_pos;
  spec.keep = &keep;
  spec.fold_values = &model_.values();

  ReducedModel rm;
  rm.frames = spec.frames;
  rm.um = unroll(spec);
  rm.lv = std::make_unique<Levelizer>(rm.um.nl);
  rm.podem = std::make_unique<Podem>(*rm.lv, rm.um.controllable,
                                     rm.um.observe, opt_.atpg);
  return rm;
}

SeqTest ReducedCircuitBuilder::extract_test(const ReducedModel& rm,
                                            const AtpgResult& res) const {
  const Netlist& nl = model_.levelizer().netlist();
  SeqTest t;
  t.init_state.assign(nl.dffs().size(), Val::X);
  t.pi_frames.assign(static_cast<std::size_t>(rm.um.frames()),
                     std::vector<Val>(nl.inputs().size(), Val::X));
  // Invert the unrolled-input maps.
  for (auto [node, v] : res.assignment) {
    bool matched = false;
    for (std::size_t i = 0; i < rm.um.init_state.size() && !matched; ++i) {
      if (rm.um.init_state[i] == node) {
        t.init_state[i] = v;
        matched = true;
      }
    }
    for (int f = 0; f < rm.um.frames() && !matched; ++f) {
      const auto& fpi = rm.um.frame_pi[static_cast<std::size_t>(f)];
      for (std::size_t i = 0; i < fpi.size(); ++i) {
        if (fpi[i] == node) {
          t.pi_frames[static_cast<std::size_t>(f)][i] = v;
          matched = true;
          break;
        }
      }
    }
  }
  return t;
}

TestSequence ReducedCircuitBuilder::realize(const SeqTest& t,
                                            std::size_t observe_cycles) const {
  const ScanDesign& d = model_.design();
  // Chain-local wanted states from the per-FF init state.
  std::vector<std::vector<Val>> per_chain(d.chains.size());
  for (std::size_t c = 0; c < d.chains.size(); ++c) {
    per_chain[c].assign(d.chains[c].length(), Val::X);
  }
  for (std::size_t i = 0; i < t.init_state.size(); ++i) {
    const auto [c, k] = ff_pos_[i];
    if (c >= 0 && t.init_state[i] != Val::X) {
      per_chain[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] =
          t.init_state[i];
    }
  }
  TestSequence seq = seq_builder_.load_state(per_chain);
  const std::vector<Val> base = seq_builder_.base_vector(Val::Zero);
  for (const std::vector<Val>& frame : t.pi_frames) {
    std::vector<Val> v = base;
    for (std::size_t i = 0; i < frame.size(); ++i) {
      if (frame[i] != Val::X) v[i] = frame[i];
    }
    seq.push_back(std::move(v));
  }
  for (std::size_t i = 0; i < observe_cycles; ++i) seq.push_back(base);
  return seq;
}

}  // namespace fsct
