// The full functional-scan-chain-testing flow (sections 2–5):
//
//   step 0  classify every collapsed fault on the scan-mode model
//           (f_easy = category 1, f_hard = category 2),
//   step 1  the alternating flush sequence (detects f_easy; we optionally
//           *verify* that by sequential fault simulation instead of assuming
//           it, unlike the paper),
//   step 2  combinational ATPG on the scan-mode model for f_hard, converted
//           to scan sequences and re-verified by sequential fault simulation
//           (the converting chain may itself be broken by the target fault),
//   step 3  location-aware grouping + sequential ATPG on reduced
//           enhanced-ctrl/obs circuit models; leftover faults retried
//           individually with a larger budget (f_final).
//
// The result carries everything Tables 2 and 3 and Figure 5 report.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/classify.h"
#include "core/grouping.h"
#include "core/reduced_atpg.h"
#include "fault/fault.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_mode_model.h"

namespace fsct {

class ObsRegistry;
class PipelineExec;
struct PipelineHooks;
struct PipelineResume;

/// Precomputed per-circuit dominance artifacts for run_fsct_pipeline.  All
/// three are pure functions of (post-TPI netlist, collapsed fault list), so a
/// long-running server computes them once per compiled model and shares them
/// read-only across every request for that circuit; the pipeline recomputes
/// exactly the same values when they are absent, so results never depend on
/// whether a cache was warm.  Either provide all three or none.
struct PipelineCompiled {
  std::shared_ptr<const DominanceInfo> dom;
  std::shared_ptr<const std::vector<std::vector<std::size_t>>> domsets;
  std::shared_ptr<const std::vector<Cost>> fcost;
};

struct PipelineOptions {
  /// Distance parameters; when auto_dist is true they are derived from the
  /// longest chain as in the paper's experiments.
  DistanceParams dist;
  bool auto_dist = true;

  /// Executors for the fault-parallel phases (classification, PPSFP,
  /// parallel-fault sequential simulation, step-3 grouped/final ATPG).
  /// 0 = one per hardware thread, 1 = serial.  Results are bitwise identical
  /// at any value (see DESIGN.md "Concurrency architecture").
  int jobs = 0;

  /// Packed-simulation lane width in bits (64, 256 or 512); 0 picks the
  /// process default (FSCT_SIMD_WIDTH at build time, --simd-width at run
  /// time).  Width changes throughput and pass counters only — per-fault
  /// outcomes are bitwise identical at every width (see DESIGN.md §5h).
  int simd_width = 0;

  int comb_backtrack_limit = 1500;
  int seq_backtrack_limit = 3000;
  int final_backtrack_limit = 12000;
  /// Wall-clock budgets per ATPG call (0 = unlimited) — the role the CPU
  /// limit played for the paper's stg3 runs.
  int comb_time_limit_ms = 250;
  int seq_time_limit_ms = 1000;
  int final_time_limit_ms = 3000;
  /// Random scan-mode patterns fault-simulated before any deterministic ATPG
  /// (classic RPG warm-up; keeps PODEM for the stubborn tail).  0 disables.
  int random_patterns = 96;
  int frame_slack = 4;
  int frame_cap = 96;
  int final_extra_frames = 8;
  bool observe_pos = true;

  /// Sequentially fault-simulate the alternating sequence against f_easy and
  /// report how many it really detects (the paper assumes all).
  bool verify_easy = false;
  /// End-to-end-check every step-3 "detected" verdict: realise the extracted
  /// sequential test on the real circuit and fault-simulate it; tests that do
  /// not reproduce the detection are not counted (honest accounting the
  /// paper's in-model ATPG cannot give).  Also fills s3_sequences.
  bool verify_seq = true;
  /// Dominance collapsing + cross-phase detection credit.  Targets are the
  /// dominance representatives (SCOAP-ordered, cheapest excitation first);
  /// dominated faults ride along and are only targeted themselves if the
  /// screening simulations miss them, so per-fault outcomes are unchanged.
  /// Also enables the flush-credit pre-pass (category-2 faults killed by the
  /// alternating sequence are dropped from steps 2/3) and the shared
  /// detection ledger that credits step-3 sequences against every still-open
  /// fault.  Off = exact historical behaviour (`--no-dominance`).
  bool dominance = true;
  /// Cycles of alternating flush; 0 = auto (2*maxlen + 8).
  std::size_t alternating_cycles = 0;
  /// Extra shift-out cycles appended to each converted step-2 vector;
  /// 0 = auto (maxlen + 2).
  std::size_t observe_cycles = 0;

  /// Optional observability sink (counters, trace spans, -v progress lines);
  /// nullptr disables all observation.  The deterministic counters it
  /// collects are identical at any `jobs` value; see core/obs.h.
  ObsRegistry* obs = nullptr;

  /// Optional precomputed dominance artifacts (see PipelineCompiled); the
  /// pipeline computes its own when null.  Must match this run's netlist and
  /// fault list.  The caller keeps the struct alive for the duration of the
  /// call.
  const PipelineCompiled* compiled = nullptr;

  /// Execution strategy for the data-parallel phases (core/pipeline_exec.h).
  /// nullptr = in-process LocalExec on this run's pool (the historical
  /// behaviour); src/shard substitutes a multi-process coordinator.  Results
  /// are bitwise identical either way.
  PipelineExec* exec = nullptr;
  /// Optional safe-point callback (checkpointing / cooperative stop); see
  /// PipelineHooks.  nullptr = no safe points taken.
  const PipelineHooks* hooks = nullptr;
  /// Optional restored state from a checkpoint: completed phases are skipped
  /// and the run continues bitwise-identically.  The caller keeps it alive
  /// for the duration of the call.
  const PipelineResume* resume = nullptr;
};

/// One scan-mode test vector of the step-2 set: free-PI values plus the
/// flip-flop state to shift in (both fully specified, binary).
struct ScanVector {
  std::vector<Val> pi_vals;   ///< all PIs, netlist inputs() order
  std::vector<Val> ff_state;  ///< all FFs, netlist dffs() order
  friend bool operator==(const ScanVector&, const ScanVector&) = default;
};

/// Per-fault final status.
enum class FaultOutcome : std::uint8_t {
  NotAffecting,        ///< category 3: never targeted
  EasyAlternating,     ///< category 1: covered by the alternating sequence
  DetectedFlush,       ///< category 2 fault caught by the flush-credit pass
  DetectedComb,        ///< step 2: detected (sequentially verified)
  DetectedSeq,         ///< step 3: detected by grouped sequential ATPG
  DetectedFinal,       ///< step 3: detected in the final individual pass
  Undetectable,        ///< proven untestable in scan mode
  Undetected,          ///< given up (aborted)
};

struct PipelineResult {
  /// Executors actually used (PipelineOptions::jobs resolved); together with
  /// the per-phase *_seconds fields this is what the bench harness reports as
  /// per-phase speedup across job counts.
  unsigned jobs_used = 1;

  // Classification (Table 2).  The *_cpu_seconds companions measure
  // process CPU time (all threads) over the same interval, so wall vs CPU
  // separates real speedup from time-slicing on an oversubscribed host.
  std::size_t total_faults = 0;
  std::size_t easy = 0;   ///< #faults detectable by the alternating sequence
  std::size_t hard = 0;   ///< #faults needing dedicated tests
  double classify_seconds = 0;
  double classify_cpu_seconds = 0;

  // Step 1 verification (optional).
  std::size_t easy_verified = 0;   ///< of `easy`, confirmed by simulation
  double alternating_seconds = 0;
  double alternating_cpu_seconds = 0;

  // Dominance layer + cross-phase credit (all zero when dominance is off).
  std::size_t dominance_targets = 0;  ///< representatives among f_hard
  std::size_t flush_detected = 0;     ///< f_hard killed by the flush pre-pass
  std::size_t ledger_dropped = 0;     ///< faults dropped by detection credit
                                      ///< instead of being re-targeted

  // Step 2 (Table 3 left half).
  std::size_t s2_detected = 0;
  std::size_t s2_undetectable = 0;
  std::size_t s2_undetected = 0;  ///< |f_remaining|
  std::size_t s2_vectors = 0;     ///< combinational vectors generated
  std::vector<ScanVector> vectors;  ///< the step-2 test set itself
  double s2_seconds = 0;
  double s2_cpu_seconds = 0;
  /// Figure 5: cumulative faults detected after sequentially simulating the
  /// first k vectors; one entry per vector.
  std::vector<std::size_t> detection_curve;

  // Step 3 (Table 3 right half).
  std::size_t s3_circuits_group = 0;  ///< models built for groups 1-3
  std::size_t s3_circuits_final = 0;  ///< models built for f_final
  std::size_t s3_detected = 0;
  std::size_t s3_undetectable = 0;
  std::size_t s3_undetected = 0;
  /// In-model detections whose realised test failed end-to-end verification
  /// (only populated when verify_seq; such faults count as undetected).
  std::size_t s3_unverified = 0;
  double s3_seconds = 0;
  double s3_cpu_seconds = 0;
  /// The realised (verified) step-3 test sequences, one per fault detected
  /// in step 3, aligned with s3_sequence_fault (indices into `outcome`).
  std::vector<TestSequence> s3_sequences;
  std::vector<std::size_t> s3_sequence_fault;

  std::vector<FaultOutcome> outcome;     ///< per collapsed fault
  std::vector<ChainFaultInfo> info;      ///< per collapsed fault

  std::size_t affecting() const { return easy + hard; }
  std::size_t final_undetected() const { return s3_undetected; }
};

/// Runs the whole flow.  `lv`/`model` must be built on the post-TPI netlist.
PipelineResult run_fsct_pipeline(const ScanModeModel& model,
                                 std::span<const Fault> faults,
                                 const PipelineOptions& opt = {});

}  // namespace fsct
