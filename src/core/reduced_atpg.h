// Builds the enhanced-controllability/observability circuit models of
// section 5 and runs sequential ATPG (time-frame PODEM) on them.
//
// For a group with window [min,max] on a chain, flip-flops before `min` are
// fault-free-and-controllable (their frame-0 state becomes a pseudo primary
// input; it is realised later by shifting through the healthy chain prefix),
// flip-flops at/after `max` are fault-free-and-observable (their captures
// become pseudo primary outputs in every frame).  Unaffected chains are fully
// controllable and observable.  The unrolled model is value-aware pruned:
// nets frozen to binary constants in scan mode (and outside the group's
// fault cones) fold away, which is what makes sequential ATPG cheap here —
// the paper's observation that "the fault-free scan-mode circuit is simply a
// shift register".
#pragma once

#include <memory>
#include <span>

#include "atpg/podem.h"
#include "atpg/scoap.h"
#include "atpg/unroll.h"
#include "fault/fault.h"
#include "core/grouping.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_mode_model.h"
#include "scan/scan_sequences.h"

namespace fsct {

struct ReducedModelOptions {
  int frame_slack = 4;
  int frame_cap = 96;      ///< hard bound on time frames per model
  bool observe_pos = true; ///< also observe POs inside the fault cones
  AtpgOptions atpg;
};

/// One built group model, ready to target that group's faults.
struct ReducedModel {
  UnrolledModel um;
  std::unique_ptr<Levelizer> lv;
  std::unique_ptr<Podem> podem;
  int frames = 0;
};

/// A sequential test in base-circuit terms, extracted from a PODEM solution.
struct SeqTest {
  std::vector<Val> init_state;              ///< per base FF (X = don't care)
  std::vector<std::vector<Val>> pi_frames;  ///< per frame, per base PI (X = dc)
};

/// SCOAP excitation cost per fault: the controllability cost of driving the
/// fault site (the faulted net for a stem, the driving net for a pin fault)
/// to the value opposite its stuck-at polarity.  `controllable` flags the
/// sources assignable in scan mode (free PIs plus chain flip-flops).
std::vector<Cost> fault_excitation_costs(const Levelizer& lv,
                                         const std::vector<char>& controllable,
                                         std::span<const Fault> faults);

/// Orders `targets` (indices into the cost table) cheapest-to-excite first,
/// ties broken by index: fronting the easy faults makes each generated test
/// screen the largest possible share of the still-open list.
std::vector<std::size_t> scoap_target_order(
    std::span<const Cost> cost, std::span<const std::size_t> targets);

class ReducedCircuitBuilder {
 public:
  ReducedCircuitBuilder(const ScanModeModel& model,
                        ReducedModelOptions opt = {});

  /// Builds the group's reduced unrolled model.  `group_faults` are the
  /// actual faults (for forward-cone computation); `extra_frames` widens the
  /// window (used for the final-faults retry).
  ReducedModel build(const AtpgGroup& g, std::span<const Fault> group_faults,
                     int extra_frames = 0) const;

  /// Frames a window needs: spread + slack, capped.
  int frames_for(const AtpgGroup& g, int extra_frames = 0) const;

  /// Maps a PODEM solution on `rm` back to base-circuit terms.
  SeqTest extract_test(const ReducedModel& rm, const AtpgResult& res) const;

  /// Expands a SeqTest into a full clocked PI sequence: scan-load the wanted
  /// state, apply the per-frame PI vectors, then `observe_cycles` flush
  /// cycles.  Don't-care values become 0.
  TestSequence realize(const SeqTest& t, std::size_t observe_cycles) const;

  const ScanModeModel& scan_model() const { return model_; }
  const ReducedModelOptions& options() const { return opt_; }

 private:
  const ScanModeModel& model_;
  ReducedModelOptions opt_;
  ScanSequenceBuilder seq_builder_;
  std::vector<std::pair<int, int>> ff_pos_;  // dff order -> (chain, pos)
};

}  // namespace fsct
