// Text renderers for the paper's tables: one row per circuit, printed in the
// same column layout the paper uses so bench output can be eyeballed against
// the published numbers.
#pragma once

#include <iosfwd>
#include <string>

#include "core/pipeline.h"
#include "scan/scan_chain.h"

namespace fsct {

/// Table 1 row: name, #gates, #FFs, #faults, #chains.
struct Table1Row {
  std::string name;
  std::size_t gates = 0;
  std::size_t ffs = 0;
  std::size_t faults = 0;
  std::size_t chains = 0;
};

/// Table 2 row: #easy (%), #hard (%), CPU.
struct Table2Row {
  std::string name;
  std::size_t total_faults = 0;
  std::size_t easy = 0;
  std::size_t hard = 0;
  double seconds = 0;
};

/// Table 3 row: step-2 and step-3 outcomes.
struct Table3Row {
  std::string name;
  std::size_t s2_det = 0, s2_undetectable = 0, s2_undetected = 0;
  double s2_seconds = 0;
  std::size_t circ_group = 0, circ_final = 0;
  std::size_t s3_det = 0, s3_undetectable = 0, s3_undetected = 0;
  double s3_seconds = 0;
};

void print_table1_header(std::ostream& os);
void print_table1_row(std::ostream& os, const Table1Row& r);

void print_table2_header(std::ostream& os);
void print_table2_row(std::ostream& os, const Table2Row& r);
void print_table2_total(std::ostream& os, const Table2Row& total);

void print_table3_header(std::ostream& os);
void print_table3_row(std::ostream& os, const Table3Row& r);
void print_table3_total(std::ostream& os, const Table3Row& total);

/// Builds a Table2/3 row pair from a pipeline result.
Table2Row to_table2(const std::string& name, const PipelineResult& r);
Table3Row to_table3(const std::string& name, const PipelineResult& r);

/// Hardest-fault hotlist row (`fsct profile`): one fault and the work the
/// attribution ledger charged to it.
struct HotspotRow {
  std::size_t id = 0;
  std::string name;            ///< "net s-a-v" (may be empty for raw reports)
  int level = -1;              ///< owning gate's logic level, -1 = unknown
  std::uint64_t podem_calls = 0;
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t seq_cycles = 0;
  std::uint64_t credits = 0;
  double wall_ms = 0;
};

void print_hotspot_header(std::ostream& os);
void print_hotspot_row(std::ostream& os, const HotspotRow& r);

}  // namespace fsct
