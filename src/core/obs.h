// Pipeline observability: a thread-safe, low-overhead metrics registry,
// RAII scoped-span timers emitting Chrome trace-event JSON, and a structured
// JSON run-report serializer.
//
// Three design rules keep it cheap and deterministic:
//
//  * **Null sink by default.**  Every producer holds an `ObsRegistry*` that
//    defaults to nullptr; all record paths start with an inline null check,
//    so a run without observability executes one predictable branch per
//    *coarse* operation (per ATPG call, per fault-sim pass — never inside a
//    simulation inner loop).
//  * **Sharded counters, commutative merge.**  Counters and histogram buckets
//    are relaxed atomics sharded by pool executor id (ThreadPool::
//    current_executor()) to avoid cache-line ping-pong; reading merges shards
//    by unsigned addition, which is order-independent, so the merged totals
//    of the deterministic work counters are bitwise identical at any
//    `--jobs N` (the same per-fault work runs, only on different executors).
//    Scheduler statistics (tasks/steals/idle per worker) are inherently
//    schedule-dependent and are reported separately, never merged into the
//    deterministic counter set.
//  * **Spans only where tasks are coarse.**  ObsSpan records begin/end pairs
//    (ph "B"/"E") on the executor's own trace track; producers emit one span
//    per phase / chunk / packed pass / ATPG group, so trace files stay small
//    and the disabled path costs a single load.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/parallel.h"

namespace fsct {

struct PipelineResult;

/// Deterministic work counters: totals depend only on the work performed,
/// not on the schedule, so they are identical at any job count.
enum class Ctr : std::uint16_t {
  ClassifyFaults,        ///< faults pushed through forward implication
  ClassifyEvents,        ///< net-value changes during implication
  AlternatingCycles,     ///< cycles of the step-1 flush sequence simulated
  AlternatingDetected,   ///< easy faults the flush sequence really detects
  PodemCalls,            ///< Podem::generate invocations (comb + sequential)
  PodemDetected,         ///< ... that returned Detected
  PodemUntestable,       ///< ... that exhausted the decision space
  PodemAborts,           ///< ... that gave up (backtrack or time budget)
  PodemTimeLimitHits,    ///< aborts caused by the wall-clock budget
  PodemDecisions,        ///< PI decisions across all calls
  PodemBacktracks,       ///< backtracks across all calls
  PpsfpBlocks,           ///< 64-pattern PPSFP blocks simulated
  PpsfpFaultSims,        ///< single-fault propagations (fault x block)
  PpsfpEvents,           ///< event-driven net updates during propagation
  PpsfpFaultsDropped,    ///< faults first detected (dropped) per PPSFP run
  SeqSimPackedPasses,    ///< 63-fault packed sequential passes
  SeqSimSerialRuns,      ///< serial (verification) sequential runs
  SeqSimCycles,          ///< machine-cycles simulated (packed + serial)
  SeqSimFaultsDropped,   ///< faults detected (dropped) by sequential sim
  S3Groups,              ///< reduced group models built in step 3
  S3FinalFaults,         ///< individual final-pass models built in step 3
  DominanceDropped,      ///< faults collapsed away by dominance this run
  FlushCreditDetected,   ///< hard faults credited to the alternating flush
  DroppedByLedger,       ///< faults dropped from later phases by earned credit
  UntestablePropagated,  ///< untestability proofs transferred down dominance
  TraceEventsDropped,    ///< spans discarded by the --trace-max-mb cap
  kCount,
};

/// Set-once run facts (serial writes from the pipeline thread only).
enum class Gauge : std::uint16_t {
  Jobs,                  ///< executors actually used
  HardwareConcurrency,   ///< std::thread::hardware_concurrency of the host
  TotalFaults,
  MaxChainLength,
  CurrentRssKb,          ///< resident set at the last sample_rss() call
  PeakRssKb,             ///< process high-water RSS at the last sample
  kCount,
};

/// Power-of-two histograms: bucket 0 counts value 0, bucket i >= 1 counts
/// values in [2^(i-1), 2^i - 1]; the last bucket absorbs the tail.
enum class Hist : std::uint16_t {
  PodemDecisionDepth,    ///< decisions per Podem::generate call
  PodemBacktracksPerCall,
  S3GroupSize,           ///< faults per step-3 group model
  kCount,
};

/// Per-fault work-attribution columns.  Every column except WallNanos is
/// deterministic: the units charged to a fault id depend only on the work the
/// pipeline performed *for that fault*, never on the schedule or the SIMD
/// lane width, so merged tables are bitwise identical at any `--jobs N` and
/// `--simd-width 64/256/512`.  Sequential-sim cost is charged as **resolved
/// cycles** (cycles until the fault's own detection, or the full sequence
/// length when it stays undetected) — a pure per-fault function — rather
/// than the pass-granular SeqSimCycles counter, which legitimately varies
/// with lane packing.  WallNanos is wall-clock and schedule-dependent by
/// nature; it is the ranking signal for hotlists and is excluded from the
/// deterministic table/JSON (same principle as the wall-truncated PODEM
/// exclusion in the counter contract).
enum class Attr : std::uint16_t {
  PodemCalls,       ///< Podem::generate calls targeting this fault
  PodemDecisions,   ///< PI decisions in those calls (wall-truncated excluded)
  PodemBacktracks,  ///< backtracks in those calls (same exclusion)
  SeqSims,          ///< sequential-sim resolutions of this fault
  SeqCycles,        ///< resolved machine-cycles across those resolutions
  PairReplays,      ///< (fault, sequence) pair-verification replays
  CreditEvents,     ///< ledger credits (flush, ride-along, cross-group)
  WallNanos,        ///< attributed PODEM wall ns (non-deterministic; last)
  kCount,
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Ctr::kCount);
inline constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount);
inline constexpr std::size_t kHistBuckets = 20;
inline constexpr std::size_t kNumAttrs = static_cast<std::size_t>(Attr::kCount);
/// The leading columns form the deterministic slice (all but WallNanos).
inline constexpr std::size_t kNumDetAttrs = kNumAttrs - 1;

const char* counter_name(Ctr c);
const char* gauge_name(Gauge g);
const char* hist_name(Hist h);
const char* attr_name(Attr a);

/// Optional sidecar naming the fault ids in attribution output; built by
/// make_attr_context (core/profile.h) from the netlist + collapsed fault
/// list so the obs layer itself stays netlist-free.
struct AttrContext {
  std::vector<std::string> fault_names;  ///< per fault id, "net s-a-v"
  std::vector<std::int32_t> rep;         ///< dominance representative id
  std::vector<std::int32_t> gate;        ///< owning gate NodeId
  std::vector<std::int32_t> level;       ///< owning gate's logic level
};

/// The registry.  One instance observes one pipeline run (or any sequence of
/// library calls); all record methods are safe to call concurrently from
/// pool tasks.  Passing nullptr everywhere disables observation entirely.
class ObsRegistry {
 public:
  ObsRegistry();
  ~ObsRegistry();
  ObsRegistry(const ObsRegistry&) = delete;
  ObsRegistry& operator=(const ObsRegistry&) = delete;

  // --- counters / gauges / histograms ------------------------------------
  void add(Ctr c, std::uint64_t n = 1) {
    shard().counters[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }
  void observe(Hist h, std::uint64_t value) {
    Shard& s = shard();
    s.hists[static_cast<std::size_t>(h)][bucket(value)].fetch_add(
        1, std::memory_order_relaxed);
    s.hist_sums[static_cast<std::size_t>(h)].fetch_add(
        value, std::memory_order_relaxed);
  }
  /// Last write wins; call from the coordinating thread only.
  void set_gauge(Gauge g, std::int64_t v) {
    gauges_[static_cast<std::size_t>(g)] = v;
  }

  /// Merged (schedule-independent) totals.
  std::uint64_t total(Ctr c) const;
  std::int64_t gauge(Gauge g) const {
    return gauges_[static_cast<std::size_t>(g)];
  }
  std::array<std::uint64_t, kHistBuckets> hist_total(Hist h) const;
  /// Merged sum of all observed samples of `h` (pairs with the bucket counts
  /// for the OpenMetrics `_sum` / `_count` samples).
  std::uint64_t hist_sum(Hist h) const;

  /// Log2 bucket index of a histogram sample.
  static std::size_t bucket(std::uint64_t value);

  // --- per-fault work attribution ----------------------------------------
  /// Asks the next pipeline run observed through this registry to enable the
  /// ledger: run_fsct_pipeline calls init_attribution with its collapsed
  /// fault count when it sees the request.  Coordinating thread only.
  void request_attribution() { attr_requested_ = true; }
  bool attribution_requested() const { return attr_requested_; }
  /// Sizes the ledger for fault ids [0, num_faults) and turns charging on.
  /// Call before any worker charges (task submission orders the plain
  /// writes); per-shard cell arrays are allocated lazily on first charge, so
  /// idle shards cost nothing.
  void init_attribution(std::size_t num_faults);
  bool attribution_enabled() const {
    return attr_on_.load(std::memory_order_relaxed);
  }
  std::size_t attribution_faults() const { return attr_faults_; }
  /// Charges `n` units of column `a` to fault id `fault`; any executor.
  /// Disabled attribution costs exactly this one predictable branch.
  void charge(Attr a, std::size_t fault, std::uint64_t n = 1) {
    if (!attr_on_.load(std::memory_order_relaxed)) return;
    charge_slow(a, fault, n);
  }
  /// Merged per-(fault, column) total (commutative shard sum).
  std::uint64_t attr_total(Attr a, std::size_t fault) const;
  /// Merged table, attribution_faults() x kNumDetAttrs row-major, WallNanos
  /// excluded: bitwise identical at any `--jobs N` and `--simd-width` (the
  /// deterministic-counter contract, per fault).
  std::vector<std::uint64_t> attribution_table() const;
  /// The deterministic table as one JSON object (all-zero rows elided);
  /// equal strings at any job count and lane width.
  std::string attribution_json() const;

  // --- trace spans --------------------------------------------------------
  void enable_trace(bool on = true) {
    trace_on_.store(on, std::memory_order_relaxed);
  }
  bool trace_enabled() const {
    return trace_on_.load(std::memory_order_relaxed);
  }
  /// Microseconds since registry construction (the trace time base).
  double now_us() const;
  /// Caps the in-memory trace buffer at roughly `bytes` of eventual JSON
  /// (0 = no cap, the default).  Once the cap is reached new spans are
  /// counted in Ctr::TraceEventsDropped and a single "trace.truncated"
  /// marker event is recorded in their place, so long runs on big generator
  /// circuits cannot fill the disk.
  void set_trace_limit_bytes(std::size_t bytes);
  /// Records one completed span on `tid`'s track (called by ObsSpan).
  void add_trace_event(const char* name, unsigned tid, double t0_us,
                       double t1_us);
  std::size_t trace_event_count() const;
  struct SpanEvent {
    std::string name;
    unsigned tid = 0;
    double t0_us = 0, t1_us = 0;
  };
  /// Copy of the recorded spans, for in-process profile aggregation.
  std::vector<SpanEvent> trace_snapshot() const;
  /// Chrome trace-event JSON ({"traceEvents": [...]}); loads in
  /// chrome://tracing and Perfetto.  One track ("thread") per pool executor;
  /// tid 0 is the submitting thread.
  void write_trace(std::ostream& os) const;

  // --- progress (-v) ------------------------------------------------------
  /// When set, phase-completion lines are delivered here (pipeline thread
  /// only); unset means no formatting work is done at all.
  std::function<void(const std::string&)> progress;
  bool progress_enabled() const { return static_cast<bool>(progress); }
  void progress_line(const std::string& line) const {
    if (progress) progress(line);
  }

  // --- phase progress (heartbeat / status dumps) -------------------------
  /// Marks `name` (a string literal with static storage) as the active
  /// phase with `total` units of work and resets the done count.  Pipeline
  /// thread only; readable concurrently via phase_progress().
  void begin_phase(const char* name, std::uint64_t total) {
    phase_done_.store(0, std::memory_order_relaxed);
    phase_total_.store(total, std::memory_order_relaxed);
    phase_name_.store(name, std::memory_order_release);
  }
  /// Marks no phase active.
  void end_phase() {
    phase_name_.store(nullptr, std::memory_order_release);
  }
  /// Adds finished work units to the active phase; any executor, relaxed —
  /// one add per chunk / fault / group, never inside a simulation loop.
  void phase_tick(std::uint64_t n = 1) {
    phase_done_.fetch_add(n, std::memory_order_relaxed);
  }
  struct PhaseProgress {
    const char* name = nullptr;  ///< nullptr = no phase active
    std::uint64_t done = 0, total = 0;
  };
  PhaseProgress phase_progress() const {
    PhaseProgress p;
    p.name = phase_name_.load(std::memory_order_acquire);
    p.done = phase_done_.load(std::memory_order_relaxed);
    p.total = phase_total_.load(std::memory_order_relaxed);
    return p;
  }

  // --- memory ------------------------------------------------------------
  /// Reads VmRSS/VmHWM from /proc/self/status in kB.  Returns false (zeros)
  /// off-Linux or when the pseudo-file is unreadable.
  static bool read_rss_kb(long& current_kb, long& peak_kb);
  /// Samples RSS, updates the two rss gauges, and remembers the current
  /// value under `phase` for the run report.  Pipeline thread only.
  void sample_rss(const char* phase);
  /// (phase, current-RSS-kB) samples in recording order.
  std::vector<std::pair<std::string, long>> rss_phases() const;

  // --- pool scheduler statistics -----------------------------------------
  /// Snapshots per-worker scheduler stats (call after the pool quiesced).
  void capture_pool(const ThreadPool& pool);
  const std::vector<ThreadPool::WorkerStats>& pool_stats() const {
    return pool_stats_;
  }
  /// Registers the pool currently driving this run so live status dumps can
  /// snapshot worker stats mid-flight; detach before the pool dies.
  void attach_pool(const ThreadPool* pool);
  void detach_pool() { attach_pool(nullptr); }

  /// Free-form label for the run this registry currently observes (circuit,
  /// jobs, bench rep ...); shown in heartbeat lines and status dumps so
  /// multi-rep benches are tellable apart.  Any thread.
  void set_context(std::string ctx);
  std::string context() const;

  /// Multi-line human-readable live status: elapsed, active phase +
  /// progress, RSS, live worker stats, and the counter totals.  Safe to
  /// call from a monitor thread while the pipeline is running.
  void write_status(std::ostream& os) const;

  // --- serialization ------------------------------------------------------
  /// The deterministic slice only — counters and histograms, no gauges, no
  /// pool stats — as one JSON object; equal strings at any job count.
  std::string counters_json() const;
  /// Full structured run report (`fsct-run-report-v2`): every PipelineResult
  /// field, the counters, histograms, gauges, per-worker pool statistics,
  /// and — when attribution ran — a size-bounded `attribution` section with
  /// the top-K hotlist (named via `ctx` when provided).
  void write_run_report(std::ostream& os, const PipelineResult& r,
                        const AttrContext* ctx = nullptr) const;
  /// OpenMetrics / Prometheus text exposition of the counters, gauges and
  /// histograms — the scrape surface `fsct serve` mounts at GET /metrics
  /// (src/serve/http.h; the daemon prepends its own fsct_serve_* series).
  /// Ends with the required "# EOF" terminator.
  void write_openmetrics(std::ostream& os) const;
  /// The exposition without the "# EOF" terminator, for embedding in a
  /// larger scrape page (the daemon's /metrics appends its own series and
  /// writes one terminator for the whole page).
  void write_openmetrics_body(std::ostream& os) const;

  /// Adds `other`'s merged counter and histogram totals (buckets + sums)
  /// into this registry's calling-thread shard.  `fsct serve` folds each
  /// finished session's registry into one daemon-lifetime registry this way,
  /// so /metrics exposes cumulative pipeline counters across all requests.
  /// Gauges are set-once run facts and are deliberately not merged.
  void merge_from(const ObsRegistry& other);

  /// Adds pre-aggregated histogram state (per-bucket counts + sample sum)
  /// into the calling thread's shard — the import path for shard-worker
  /// reply deltas and checkpoint restore, where only the serialized totals
  /// of a foreign registry are available.
  void import_hist(Hist h, std::span<const std::uint64_t> buckets,
                   std::uint64_t sum);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::array<std::atomic<std::uint64_t>, kNumHists> hist_sums{};
    std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>, kNumHists>
        hists{};
    /// Lazily allocated attribution cells (attr_faults x kNumAttrs,
    /// row-major); published with release so a racing reader only ever sees
    /// fully value-initialized (zeroed) memory.
    std::atomic<std::atomic<std::uint64_t>*> attr{nullptr};
  };

  Shard& shard() {
    const unsigned e = ThreadPool::current_executor();
    return shards_[e < kShards ? e : kShards - 1];
  }

  struct TraceEvent {
    const char* name;
    unsigned tid;
    double t0_us, t1_us;
  };

  /// Out-of-line slow path of charge(): resolves the shard, allocates its
  /// cell array on first use (mutex-guarded, double-checked), then one
  /// relaxed fetch_add.
  void charge_slow(Attr a, std::size_t fault, std::uint64_t n);

  // 1 submitting thread + up to 63 workers before shards are shared (sharing
  // is still correct — the slots are atomics — just slower).
  static constexpr std::size_t kShards = 64;
  std::unique_ptr<Shard[]> shards_;
  std::array<std::int64_t, kNumGauges> gauges_{};
  std::atomic<bool> trace_on_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex trace_m_;  // guards trace_events_ and the byte budget
  std::vector<TraceEvent> trace_events_;
  std::size_t trace_limit_bytes_ = 0;  // 0 = unlimited
  std::size_t trace_bytes_ = 0;        // estimated JSON bytes recorded so far
  bool trace_truncated_ = false;
  std::vector<ThreadPool::WorkerStats> pool_stats_;
  std::atomic<const char*> phase_name_{nullptr};
  std::atomic<std::uint64_t> phase_done_{0};
  std::atomic<std::uint64_t> phase_total_{0};
  bool attr_requested_ = false;
  std::atomic<bool> attr_on_{false};
  std::size_t attr_faults_ = 0;
  std::mutex attr_m_;  // serializes per-shard cell allocation
  mutable std::mutex live_m_;  // guards live_pool_, rss_phases_ and context_
  const ThreadPool* live_pool_ = nullptr;
  std::vector<std::pair<std::string, long>> rss_phases_;
  std::string context_;
};

/// RAII scoped span: records a begin/end pair on the current executor's
/// trace track.  With a null registry (or tracing disabled) construction and
/// destruction are a pointer test each.
class ObsSpan {
 public:
  ObsSpan(ObsRegistry* obs, const char* name)
      : obs_(obs && obs->trace_enabled() ? obs : nullptr), name_(name) {
    if (obs_) t0_us_ = obs_->now_us();
  }
  ~ObsSpan() {
    if (obs_) {
      obs_->add_trace_event(name_, ThreadPool::current_executor(), t0_us_,
                            obs_->now_us());
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  ObsRegistry* obs_;
  const char* name_;
  double t0_us_ = 0;
};

/// Approximate quantile over a log2 bucket array using the Hist scheme
/// (bucket 0 counts value 0; bucket i >= 1 counts [2^(i-1), 2^i - 1]; the
/// last bucket absorbs the open-ended tail).  `q` is clamped to [0, 1] and
/// the result interpolates linearly inside the containing bucket, so it is
/// an estimate bounded by that bucket's range, not an exact order statistic.
/// Returns -1 on an empty histogram; a quantile landing in the tail bucket
/// reports the bucket's lower bound (a floor — the tail has no upper edge).
/// This is how `fsct stat` turns scraped latency buckets into p50/p90/p99.
double hist_quantile(const std::array<std::uint64_t, kHistBuckets>& buckets,
                     double q);

// --- long-run visibility ----------------------------------------------------

/// CPU seconds consumed by the whole process (all threads) so far; the
/// per-phase CPU figures in PipelineResult and the bench harness are deltas
/// of this clock.
double process_cpu_seconds();

/// Makes `reg` the process-wide "current run" that SIGUSR1 status dumps and
/// heartbeats read from (nullptr clears).  Returns the previous registry so
/// nested runs can restore it.  run_fsct_pipeline does this automatically
/// for its own obs sink.
ObsRegistry* set_status_registry(ObsRegistry* reg);

/// Pins the SIGUSR1 handler for the rest of the process (idempotent).  The
/// handler only sets a flag; an ObsMonitor polls it and prints the dump from
/// its own thread, so results are never touched from signal context.
///
/// Installation is sigaction-based and reference-counted: each ObsMonitor
/// acquires the handler on start and releases it on teardown, restoring the
/// previously installed action once the last monitor is gone — a daemon that
/// starts and stops a monitor per session never leaves a dangling handler
/// behind.  This function is the CLI's "keep it for the whole run" variant:
/// it installs the handler if needed and disables the restore-on-zero.  The
/// handler is installed without SA_RESTART so blocking syscalls wake with
/// EINTR (see core/io_util.h for the retry discipline this requires).
void install_sigusr1_handler();

/// Test hook: true while the fsct SIGUSR1 handler is the installed action.
bool sigusr1_handler_active();

/// Test failpoint: sleeps at the start of pipeline phase `phase` when the
/// environment variable FSCT_TEST_PHASE_SLEEP is set to "<phase>:<ms>"
/// (e.g. "s3:200").  Re-read on every call; unset means zero cost beyond
/// one getenv per coarse phase.  This is how the bench-harness tests inject
/// a deliberate, deterministic slowdown into one phase.
void test_phase_sleep(const char* phase);

/// Rolling-rate / ETA estimator behind the heartbeat line.  A pure object so
/// the window policy is unit-testable without a live monitor thread:
///
///  * the window resets when the phase changes (phase identity is the name
///    literal's address) **and** when `done` moves backwards — a daemon
///    re-running the pipeline reuses the same phase literals, so a fresh
///    phase with the same name would otherwise poison the rate with stale
///    samples and print an absurd ETA;
///  * remaining work is clamped at zero: mid-phase total shrinkage (ledger
///    drops reduce step-3 totals) can legitimately leave done > total, which
///    must read as "done any moment now", never as a negative or wrapped
///    ETA.
class HeartbeatRate {
 public:
  struct Estimate {
    double rate = 0;          ///< units/s over the rolling window
    double eta_seconds = -1;  ///< seconds to finish; < 0 = unknown
  };
  Estimate update(const char* phase, std::uint64_t done, std::uint64_t total,
                  std::chrono::steady_clock::time_point now);

 private:
  struct Sample {
    std::chrono::steady_clock::time_point t;
    std::uint64_t done;
  };
  std::vector<Sample> window_;  ///< rolling samples, oldest first
  const char* phase_ = nullptr;
};

/// A small background thread giving long runs a pulse: it polls the status
/// registry (set_status_registry) every poll_ms, prints a full status dump
/// whenever SIGUSR1 arrived, and — when heartbeat is enabled — emits a
/// one-line "phase / done/total / rate / ETA / RSS" heartbeat every
/// heartbeat_ms while a phase is active.  The rate is a rolling estimate
/// over the last few samples, so the ETA tracks the current phase's actual
/// throughput rather than its lifetime average.  All reads are atomics or
/// mutex-guarded snapshots; the monitored run is never perturbed beyond
/// them (verified bitwise by Bench.StatusDumpDoesNotPerturbResults).
class ObsMonitor {
 public:
  struct Options {
    int poll_ms = 100;          ///< SIGUSR1 responsiveness
    bool heartbeat = false;     ///< emit periodic heartbeat lines
    int heartbeat_ms = 1000;
    /// Receives every output line (no trailing newline); default writes
    /// "[fsct] <line>" to stderr through the EINTR-safe write_all path.
    std::function<void(const std::string&)> sink;
    /// When set, this monitor observes `registry` instead of the process-wide
    /// status registry — the per-session monitors of `fsct serve` each watch
    /// their own run.  The caller owns the registry and must keep it alive
    /// for the monitor's lifetime (destroy the monitor first).
    ObsRegistry* registry = nullptr;
    /// Acquire the SIGUSR1 handler and answer dumps.  Per-session monitors
    /// turn this off: only the daemon-wide (or CLI) monitor owns the signal.
    bool sigusr1 = true;
  };
  ObsMonitor();  // default options: SIGUSR1 dumps only, no heartbeat
  explicit ObsMonitor(Options opt);
  ~ObsMonitor();
  ObsMonitor(const ObsMonitor&) = delete;
  ObsMonitor& operator=(const ObsMonitor&) = delete;

  /// Prints a status dump immediately (same output as SIGUSR1); test hook.
  void dump_now();

 private:
  void loop();
  void emit_status();
  void emit_heartbeat();

  Options opt_;
  std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  HeartbeatRate rate_;
  std::thread thread_;
};

}  // namespace fsct
