// Chain-order optimisation.  The paper observes that "different orderings
// will lead to faults affecting the scan chain in different locations, and
// thus potentially increasing or decreasing the fault coverage", and leaves
// the flexibility to the designer.  This module is that designer knob:
//
// Functional links pin the relative order inside a *run* of flip-flops, but
// runs are stitched together with dedicated scan muxes whose shift input can
// be rewired freely.  reorder_chains() classifies the fault population,
// measures which run pairs are co-affected by multi-location faults, and
// re-stitches the runs so co-affected runs sit close together — shrinking
// those faults' location windows, which gives step 3 more controllability/
// observability per reduced circuit model.
#pragma once

#include "netlist/netlist.h"
#include "scan/scan_chain.h"
#include "scan/scan_chain.h"

namespace fsct {

struct ReorderStats {
  int runs = 0;                  ///< stitchable units found
  int moved = 0;                 ///< runs placed somewhere new
  double mean_spread_before = 0; ///< mean multi-location fault window spread
  double mean_spread_after = 0;
};

/// Rewires the dedicated mux links of `design` on `nl` (mutating both) so
/// co-affected runs are adjacent.  Chain count and membership per chain may
/// change (lengths stay balanced); functional links are never touched, so
/// the TPI shift invariant is preserved.  Returns the updated design.
ScanDesign reorder_chains(Netlist& nl, const ScanDesign& design,
                          ReorderStats* stats_out = nullptr);

}  // namespace fsct
