#include "core/diagnose.h"

#include <algorithm>

#include "sim/seq_sim.h"

namespace fsct {

ChainDiagnoser::ChainDiagnoser(const ScanModeModel& model,
                               std::vector<NodeId> observe)
    : model_(model), observe_(std::move(observe)) {
  if (observe_.empty()) {
    const Netlist& nl = model.levelizer().netlist();
    observe_ = nl.outputs();
    for (NodeId so : model.scan_outs()) {
      if (std::find(observe_.begin(), observe_.end(), so) == observe_.end()) {
        observe_.push_back(so);
      }
    }
  }
}

ObservedResponse ChainDiagnoser::make_response(const TestSequence& sequence,
                                               const Fault& fault) const {
  ObservedResponse r;
  r.sequence = sequence;
  SeqSim sim(model_.levelizer());
  const Injection inj[1] = {to_injection(fault)};
  for (const auto& pi : sequence) {
    const auto& v = sim.step(pi, inj);
    std::vector<Val> row;
    row.reserve(observe_.size());
    for (NodeId o : observe_) row.push_back(v[o]);
    r.observed.push_back(std::move(row));
  }
  return r;
}

std::vector<DiagnosisCandidate> ChainDiagnoser::diagnose(
    const ObservedResponse& response, std::span<const Fault> candidates,
    std::size_t top_k) const {
  const Levelizer& lv = model_.levelizer();

  // Good-machine trace: mismatches against it are the symptoms a candidate
  // must explain.
  std::vector<std::vector<Val>> good(response.sequence.size());
  {
    SeqSim sim(lv);
    for (std::size_t t = 0; t < response.sequence.size(); ++t) {
      const auto& v = sim.step(response.sequence[t]);
      good[t].reserve(observe_.size());
      for (NodeId o : observe_) good[t].push_back(v[o]);
    }
  }

  std::vector<DiagnosisCandidate> out;
  out.reserve(candidates.size());
  for (const Fault& f : candidates) {
    DiagnosisCandidate c;
    c.fault = f;
    SeqSim sim(lv);
    const Injection inj[1] = {to_injection(f)};
    for (std::size_t t = 0; t < response.sequence.size(); ++t) {
      const auto& v = sim.step(response.sequence[t], inj);
      for (std::size_t o = 0; o < observe_.size(); ++o) {
        const Val obs = response.observed[t][o];
        if (obs == Val::X) continue;  // masked / unrecorded
        const Val pred = v[observe_[o]];
        const Val g = good[t][o];
        if (pred != Val::X && pred != obs) ++c.contradictions;
        if (g != Val::X && g != obs && pred == obs) ++c.explained;
      }
    }
    out.push_back(c);
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     if (a.score() != b.score()) return a.score() > b.score();
                     if (a.contradictions != b.contradictions) {
                       return a.contradictions < b.contradictions;
                     }
                     return a.fault < b.fault;
                   });
  if (top_k > 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

}  // namespace fsct
