#include "core/chain_reorder.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/classify.h"
#include "fault/fault.h"
#include "netlist/levelize.h"
#include "scan/scan_mode_model.h"

namespace fsct {
namespace {

// One stitchable unit: a mux-headed run of functionally linked flip-flops.
struct Run {
  NodeId head_mux = kNullNode;       // the dedicated scan mux feeding ffs[0]
  std::vector<NodeId> ffs;
  std::vector<ScanSegment> segments;  // segments[0] is the mux link
};

// Splits the design into runs.  Returns false when a chain does not follow
// the TPI/mux-scan shape (first segment dedicated, path = {mux}).
bool split_runs(const ScanDesign& d, std::vector<Run>& runs) {
  for (const ScanChain& c : d.chains) {
    for (std::size_t k = 0; k < c.segments.size(); ++k) {
      const ScanSegment& s = c.segments[k];
      if (!s.functional) {
        if (s.path.size() != 1) return false;  // not a simple mux link
        Run r;
        r.head_mux = s.path[0];
        runs.push_back(std::move(r));
      } else if (runs.empty() || (k == 0)) {
        return false;  // functional link with no mux-headed run to join
      }
      runs.back().ffs.push_back(c.ffs[k]);
      runs.back().segments.push_back(s);
    }
  }
  return !runs.empty();
}

// Mean location spread of multi-location faults plus per-run co-affection
// weights.  run_of maps (chain, position) to a run index.
double spread_and_coupling(
    const Netlist& nl, const ScanDesign& d,
    const std::vector<std::vector<int>>& run_of,
    std::map<std::pair<int, int>, int>* coupling) {
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  ChainFaultClassifier cls(model);
  const auto faults = collapsed_fault_list(nl);
  double spread_sum = 0;
  int multi = 0;
  for (const Fault& f : faults) {
    const ChainFaultInfo info = cls.classify(f);
    if (info.locations.size() < 2) continue;
    // Spread within each affected chain.
    int lo = 1 << 30, hi = -1;
    std::vector<int> runs_hit;
    for (const ChainLocation& loc : info.locations) {
      if (loc.chain != info.locations.front().chain) continue;
      lo = std::min(lo, loc.segment);
      hi = std::max(hi, loc.segment);
      const auto& per_chain = run_of[static_cast<std::size_t>(loc.chain)];
      const int pos = std::min<int>(loc.segment,
                                    static_cast<int>(per_chain.size()) - 1);
      if (pos >= 0) runs_hit.push_back(per_chain[static_cast<std::size_t>(pos)]);
    }
    if (hi < 0) continue;
    ++multi;
    spread_sum += hi - lo;
    if (coupling != nullptr) {
      std::sort(runs_hit.begin(), runs_hit.end());
      runs_hit.erase(std::unique(runs_hit.begin(), runs_hit.end()),
                     runs_hit.end());
      for (std::size_t a = 0; a < runs_hit.size(); ++a) {
        for (std::size_t b = a + 1; b < runs_hit.size(); ++b) {
          ++(*coupling)[{runs_hit[a], runs_hit[b]}];
        }
      }
    }
  }
  return multi ? spread_sum / multi : 0.0;
}

std::vector<std::vector<int>> build_run_of(const ScanDesign& d,
                                           const std::vector<Run>& runs) {
  // Map (chain, segment-position) -> run index, derived from run membership.
  std::map<NodeId, int> run_of_ff;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (NodeId ff : runs[r].ffs) run_of_ff[ff] = static_cast<int>(r);
  }
  std::vector<std::vector<int>> out(d.chains.size());
  for (std::size_t c = 0; c < d.chains.size(); ++c) {
    out[c].reserve(d.chains[c].ffs.size());
    for (NodeId ff : d.chains[c].ffs) out[c].push_back(run_of_ff.at(ff));
  }
  return out;
}

}  // namespace

ScanDesign reorder_chains(Netlist& nl, const ScanDesign& design,
                          ReorderStats* stats_out) {
  ReorderStats stats;
  std::vector<Run> runs;
  if (!split_runs(design, runs)) {
    if (stats_out) *stats_out = stats;
    return design;  // unknown shape: leave untouched
  }
  stats.runs = static_cast<int>(runs.size());

  // Coupling analysis on the current order.
  std::map<std::pair<int, int>, int> coupling;
  {
    const auto run_of = build_run_of(design, runs);
    stats.mean_spread_before =
        spread_and_coupling(nl, design, run_of, &coupling);
  }

  // Greedy placement: seed with the heaviest-coupled run, then repeatedly
  // append the unplaced run most coupled to the tail (ties: longer first,
  // then lower index for determinism).
  const int n = static_cast<int>(runs.size());
  std::vector<int> weight_total(static_cast<std::size_t>(n), 0);
  for (const auto& [pr, w] : coupling) {
    weight_total[static_cast<std::size_t>(pr.first)] += w;
    weight_total[static_cast<std::size_t>(pr.second)] += w;
  }
  auto pair_w = [&](int a, int b) {
    if (a > b) std::swap(a, b);
    const auto it = coupling.find({a, b});
    return it == coupling.end() ? 0 : it->second;
  };
  std::vector<char> placed(static_cast<std::size_t>(n), 0);
  std::vector<int> order;
  auto better = [&](int cand, int best, int w_cand, int w_best) {
    if (w_cand != w_best) return w_cand > w_best;
    const std::size_t lc = runs[static_cast<std::size_t>(cand)].ffs.size();
    const std::size_t lb = runs[static_cast<std::size_t>(best)].ffs.size();
    if (lc != lb) return lc > lb;
    return cand < best;
  };
  int seed = 0;
  for (int i = 1; i < n; ++i) {
    if (better(i, seed, weight_total[static_cast<std::size_t>(i)],
               weight_total[static_cast<std::size_t>(seed)])) {
      seed = i;
    }
  }
  order.push_back(seed);
  placed[static_cast<std::size_t>(seed)] = 1;
  while (static_cast<int>(order.size()) < n) {
    const int tail = order.back();
    int best = -1, best_w = -1;
    for (int i = 0; i < n; ++i) {
      if (placed[static_cast<std::size_t>(i)]) continue;
      const int w = pair_w(tail, i);
      if (best < 0 || better(i, best, w, best_w)) {
        best = i;
        best_w = w;
      }
    }
    order.push_back(best);
    placed[static_cast<std::size_t>(best)] = 1;
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    stats.moved += (order[i] != static_cast<int>(i));
  }

  // Distribute the ordered runs over the same number of chains, keeping the
  // order contiguous so coupled runs stay adjacent.
  const std::size_t nc = design.chains.size();
  std::size_t total_ffs = 0;
  for (const Run& r : runs) total_ffs += r.ffs.size();
  const std::size_t target = (total_ffs + nc - 1) / nc;

  ScanDesign out;
  out.scan_mode = design.scan_mode;
  out.pi_constraints = design.pi_constraints;
  out.test_points = design.test_points;
  out.scan_muxes = design.scan_muxes;

  // Old scan-outs lose their PO marking (re-marked below as needed).
  for (const ScanChain& c : design.chains) {
    if (!c.ffs.empty()) nl.unmark_output(c.scan_out());
  }

  std::size_t oi = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    ScanChain chain;
    chain.scan_in = design.chains[c].scan_in;
    NodeId prev = chain.scan_in;
    std::size_t filled = 0;
    while (oi < order.size() &&
           (filled == 0 || filled + runs[static_cast<std::size_t>(
                                       order[oi])].ffs.size() / 2 <= target)) {
      Run& r = runs[static_cast<std::size_t>(order[oi++])];
      // Rewire the run's head mux shift pin to the new predecessor.
      nl.set_fanin(r.head_mux, 2, prev);
      r.segments[0].from = prev;
      for (std::size_t k = 0; k < r.ffs.size(); ++k) {
        chain.segments.push_back(r.segments[k]);
        chain.ffs.push_back(r.ffs[k]);
      }
      prev = r.ffs.back();
      filled += r.ffs.size();
      if (filled >= target) break;
    }
    if (!chain.ffs.empty()) {
      nl.mark_output(chain.scan_out());
      out.chains.push_back(std::move(chain));
    }
  }
  // Leftovers (rounding): append to the last chain.
  while (oi < order.size()) {
    ScanChain& chain = out.chains.back();
    Run& r = runs[static_cast<std::size_t>(order[oi++])];
    nl.unmark_output(chain.scan_out());
    nl.set_fanin(r.head_mux, 2, chain.scan_out());
    r.segments[0].from = chain.scan_out();
    for (std::size_t k = 0; k < r.ffs.size(); ++k) {
      chain.segments.push_back(r.segments[k]);
      chain.ffs.push_back(r.ffs[k]);
    }
    nl.mark_output(chain.scan_out());
  }

  {
    const auto run_of = build_run_of(out, runs);
    stats.mean_spread_after = spread_and_coupling(nl, out, run_of, nullptr);
  }
  if (stats_out) *stats_out = stats;
  return out;
}

}  // namespace fsct
