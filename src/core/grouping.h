// Section 5 of the paper: partition the remaining faults into sequential-ATPG
// groups so that each group shares one enhanced-controllability/observability
// circuit model, minimising the number of sequential ATPG runs.
//
//   group 1 — faults whose affected locations span >= LARGE_DIST (little
//             extra ctrl/obs is available) and faults touching more than one
//             chain: each gets its own maximally controllable/observable
//             circuit.
//   group 2 — span in [MED_DIST, LARGE_DIST): the circuit built for the seed
//             fault also hosts every other fault fitting inside its window.
//   group 3 — everything else, clustered greedily so each cluster's combined
//             window spans <= DIST.
#pragma once

#include <vector>

#include "core/classify.h"

namespace fsct {

/// The paper's user parameters (experimental section defaults).
struct DistanceParams {
  int large_dist = 50;
  int med_dist = 25;
  int dist = 20;

  /// LARGE_DIST = max(0.6*maxsize, 50), MED_DIST = max(0.25*maxsize, 25),
  /// DIST = max(0.15*maxsize, 20).
  static DistanceParams from_maxsize(std::size_t maxsize);
};

/// Per-chain affected window of one fault.
struct ChainWindow {
  int chain = -1;
  int min_seg = 0;  ///< first affected location
  int max_seg = 0;  ///< last affected location
  friend bool operator==(const ChainWindow&, const ChainWindow&) = default;
};

/// Location summary used for grouping (derived from ChainFaultInfo).
struct FaultWindow {
  std::size_t fault_index = 0;  ///< caller-side index (into f_remaining)
  std::vector<ChainWindow> chains;

  bool multi_chain() const { return chains.size() > 1; }
  int spread() const {
    int s = 0;
    for (const ChainWindow& w : chains) {
      s = std::max(s, w.max_seg - w.min_seg);
    }
    return s;
  }
};

FaultWindow make_fault_window(std::size_t fault_index,
                              const ChainFaultInfo& info);

/// One sequential-ATPG circuit model to build: all member faults are targeted
/// on the same reduced circuit.
struct AtpgGroup {
  int kind = 3;  ///< paper group number (1, 2 or 3)
  std::vector<std::size_t> fault_indices;
  /// Combined window per affected chain; flip-flops before min_seg are
  /// controllable, at/after max_seg observable; unaffected chains fully both.
  std::vector<ChainWindow> window;
};

/// Implements the paper's grouping policy.
std::vector<AtpgGroup> make_groups(const std::vector<FaultWindow>& faults,
                                   const DistanceParams& p);

}  // namespace fsct
