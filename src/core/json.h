// Minimal line-anchored JSON reader shared by the bench-document parser and
// the profile/run-report loader (`fsct profile`).  Values carry the source
// line of their first byte so schema errors in CI logs point at the offending
// place ("baseline.json: line 37: ...").  This is deliberately not a general
// JSON library: no surrogate pairs, numbers as double, ASCII documents.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fsct {

/// Thrown on malformed input or schema violations; the message is anchored
/// "<name>: line N: ...".
struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parsed JSON value.  Objects keep insertion order.
struct JVal {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JVal> arr;
  std::vector<std::pair<std::string, JVal>> obj;  // insertion order
  int line = 1;

  const JVal* find(const char* key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent parser over a borrowed text buffer.  parse() returns the
/// single root value and rejects trailing content; fail_at() lets schema
/// validation layered on top reuse the same "<name>: line N:" anchoring.
class JsonParser {
 public:
  /// `text` is borrowed and must outlive the parser; `name` is copied (it is
  /// small and often a temporary at call sites).
  JsonParser(const std::string& text, std::string name)
      : text_(text), name_(std::move(name)) {}

  JVal parse();

  [[noreturn]] void fail_at(int line, const std::string& msg) const {
    throw JsonParseError(name_ + ": line " + std::to_string(line) + ": " +
                         msg);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const { fail_at(line_, msg); }
  void skip_ws();
  char peek();
  void expect(char c);
  JVal value();
  void object(JVal& v);
  void array(JVal& v);
  std::string string();
  double number();
  void literal(const char* word);

  const std::string& text_;
  const std::string name_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Required-field helpers shared by the schema readers.
double json_num(const JsonParser& p, const JVal& obj, const char* key,
                double fallback = 0, bool required = false);
std::string json_str(const JsonParser& p, const JVal& obj, const char* key,
                     const char* fallback = "");
/// Flattens every numeric member of object `v` into (key, value) pairs;
/// non-numeric members are tolerated and skipped.
void json_uint_map(const JsonParser& p, const JVal& v,
                   std::vector<std::pair<std::string, std::uint64_t>>& out);

/// JSON string escaping for the writers (control chars to \uXXXX).
std::string json_escape(const std::string& s);

}  // namespace fsct
