// Differential self-check: the library contains several independently
// implemented answers to the same questions (packed vs scalar simulation,
// implication-based classification vs brute-force fault simulation, in-model
// ATPG verdicts vs realised sequences, parallel vs serial pipeline runs,
// exported programs vs live simulation).  The paper's own step-2 rule —
// "re-verify every combinational detection sequentially" — is a differential
// check; this module promotes that idea into a first-class subsystem:
//
//   O1 packed-sim     64-way packed combinational simulation must equal the
//                     scalar 3-valued simulator on fully binary inputs,
//   O2 ppsfp-seq      every PPSFP detection of a chain-untouched fault must
//                     reproduce when its pattern is converted to a scan
//                     load + shift-out sequence and fault-simulated serially
//                     (full-scan designs; chain-affecting faults are exactly
//                     the ones the paper re-verifies, so they are exempt),
//   O3 cat3-scanout   category-3 faults must never corrupt the scan-out
//                     stream under random shift data and random free-PI data,
//   O4 jobs-identity  the pipeline must be bitwise identical at jobs=1 and
//                     jobs=N (wall-clock ATPG budgets disabled),
//   O5 export-replay  an exported test program must round-trip through the
//                     text format unchanged, replay mismatch-free on the
//                     fault-free device, and kill covered faults on replay,
//   O6 dominance      the dominance + detection-ledger pipeline must agree
//                     with a --no-dominance run: classification is
//                     flag-independent, and every fault whose detected
//                     status differs is adjudicated by replaying the
//                     claiming side's exported program against that fault
//                     (the claim must reproduce as real strobe mismatches),
//   O7 simd           the serial sequential fault simulator and the W-wide
//                     parallel-fault engines must report identical detect
//                     cycles for random (fault set, sequence, initial state)
//                     triples at every lane width (64/256/512), for both
//                     run() and the pairwise run_pairs() layout.
//
// `fsct fuzz` drives these oracles over random circuits from
// bench_circuits/generator; a failing circuit is greedily shrunk (drop
// gates/FFs/POs while the failure persists) to a minimized .bench repro.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "netlist/netlist.h"

namespace fsct {

// Oracle selection bits.
inline constexpr unsigned kOraclePackedSim = 1u << 0;   ///< O1
inline constexpr unsigned kOraclePpsfpSeq = 1u << 1;    ///< O2
inline constexpr unsigned kOracleCat3 = 1u << 2;        ///< O3
inline constexpr unsigned kOracleJobs = 1u << 3;        ///< O4
inline constexpr unsigned kOracleExport = 1u << 4;      ///< O5
inline constexpr unsigned kOracleDominance = 1u << 5;   ///< O6
inline constexpr unsigned kOracleSimd = 1u << 6;        ///< O7
inline constexpr unsigned kOracleShard = 1u << 7;       ///< O8
/// `all` = the in-process oracles.  O8 (`shard`) is opt-in by name: it needs
/// the multi-process runner registered (see set_shard_oracle_hook) and forks
/// worker processes per run, so it never rides along implicitly.
inline constexpr unsigned kOracleAll =
    kOraclePackedSim | kOraclePpsfpSeq | kOracleCat3 | kOracleJobs |
    kOracleExport | kOracleDominance | kOracleSimd;

/// Number of distinct oracles / their short names ("packed-sim", ...).
inline constexpr std::size_t kNumOracles = 8;
const char* oracle_name(std::size_t index);

/// O8 `shard`: single-process vs sharded multi-process execution.  The
/// sharded runtime lives above this layer (src/shard), so binaries opt in by
/// registering it at startup (register_shard_oracle() in shard/shard.h).
/// Requesting the oracle without a registered hook is a loud per-circuit
/// failure, never a silent skip.
using ShardOracleHook = PipelineResult (*)(const ScanModeModel& model,
                                           std::span<const Fault> faults,
                                           const PipelineOptions& opt,
                                           int shards);
void set_shard_oracle_hook(ShardOracleHook hook);

/// Parses a comma-separated oracle list ("packed-sim,jobs-identity", "all");
/// throws std::runtime_error on unknown names.
unsigned parse_oracle_mask(const std::string& csv);

/// How to scan-insert and check one pre-scan circuit.
struct SelfcheckConfig {
  unsigned oracles = kOracleAll;
  bool use_tpi = true;       ///< TPI functional chains vs conventional MUX scan
  int chains = 1;
  int scan_permille = 1000;  ///< TPI partial scan (1000 = full)
  int jobs = 4;              ///< the N of the jobs-identity oracle
  std::uint64_t check_seed = 1;  ///< drives all oracle-local randomness
};

/// Runs every selected oracle on one pre-scan netlist.  Returns "" when all
/// oracles agree, else a one-line diagnostic of the first mismatch (prefixed
/// with the oracle name).  `ran`, if non-null, accumulates per-oracle
/// execution counts (indexed as oracle_name).
std::string selfcheck_circuit(const Netlist& pre_scan,
                              const SelfcheckConfig& cfg,
                              std::uint64_t (*ran)[kNumOracles] = nullptr);

/// Field-by-field comparison of two pipeline results (timing fields ignored).
/// Returns "" when bitwise identical, else the first differing field.
std::string diff_pipeline_results(const PipelineResult& a,
                                  const PipelineResult& b);

/// Greedy structural shrink: repeatedly tries to bypass gates/flip-flops
/// (rewiring their readers to a fanin), drop primary-output markings, prune
/// gate fanins and strip dead logic, keeping a candidate only when
/// `still_fails` holds.  `budget` bounds predicate evaluations.  Returns the
/// smallest failing netlist found (the input itself if nothing shrinks).
Netlist shrink_netlist(const Netlist& start,
                       const std::function<bool(const Netlist&)>& still_fails,
                       int budget = 300);

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iterations = 100;
  int offset = 0;            ///< global index of the first iteration (repro)
  unsigned oracles = kOracleAll;
  int jobs = 4;
  int min_gates = 15;
  int max_gates = 70;
  int min_ffs = 2;
  int max_ffs = 10;
  bool shrink = true;
  int shrink_budget = 300;
  /// Also stress the .bench parser with mutated circuit text each iteration
  /// (it must parse or throw, never crash).
  bool parser_stress = true;
  /// Optional per-iteration/failure progress sink (stderr in the CLI).
  std::function<void(const std::string&)> progress;
};

struct FuzzFailure {
  int iteration = 0;              ///< global iteration index (offset + i)
  std::uint64_t circuit_seed = 0; ///< RandomCircuitSpec::seed used
  SelfcheckConfig config;         ///< scan style / seed that exposed it
  std::string diagnostic;         ///< oracle mismatch message
  Netlist minimized;              ///< shrunk repro circuit
  std::string repro;              ///< fsct command line reproducing this
};

struct FuzzReport {
  int iterations = 0;
  std::uint64_t oracle_runs[kNumOracles] = {};
  std::uint64_t parser_probes = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Seeded differential fuzz loop.  Fully deterministic in (seed, offset):
/// iteration k always draws the same circuit and check seeds, so a failure at
/// global iteration k reproduces with offset=k, iterations=1.
FuzzReport run_fuzz(const FuzzOptions& opt);

}  // namespace fsct
