// A small work-stealing thread pool for fault-parallel execution.
//
// Every hot phase of the screening flow is an embarrassingly parallel bag of
// independent per-fault (or per-group) computations; this pool shards them
// across `jobs` executors — `jobs - 1` worker threads plus the submitting
// thread itself, so `jobs == 1` degenerates to the plain serial path with no
// thread ever spawned.  Each worker owns a deque (owner pushes/pops at the
// back, thieves take from the front); tasks submitted from outside the pool
// land on a shared injection queue.
//
// Determinism contract: the pool only schedules; callers write results into
// per-index slots (or merge per-shard partial results by index), so output is
// bitwise identical at any job count.  parallel_for() hands out index chunks
// dynamically, blocks until every chunk has run, and rethrows the exception
// of the lowest failing chunk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fsct {

/// Resolves a user-facing `--jobs` value: 0 (or negative) means "one executor
/// per hardware thread"; anything else is taken literally (minimum 1).
unsigned resolve_jobs(int jobs);

class ThreadPool {
 public:
  /// Spawns `resolve_jobs(jobs) - 1` worker threads.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors, including the submitting thread (>= 1).
  unsigned jobs() const { return jobs_; }

  /// Executor id of the calling thread *within its own pool*: 0 for any
  /// thread that is not a pool worker (including the submitting thread),
  /// i + 1 for worker thread i.  Used by the observability layer to shard
  /// metrics and assign trace tracks.
  static unsigned current_executor();

  /// Per-worker scheduler statistics (always on; a few relaxed atomic
  /// increments per *task*, so the cost is amortised over whole chunks).
  /// Entry i describes worker thread i, i.e. executor i + 1; the submitting
  /// thread runs chunks inline and has no entry.  Tasks/steals/global_pops
  /// are exact; idle_seconds is the time spent parked on the sleep cv.
  /// Safe to call while the pool is running (every slot is a relaxed
  /// atomic), which is what the live SIGUSR1 status dump relies on; a
  /// mid-run snapshot is simply slightly stale.  Inherently
  /// schedule-dependent — never part of the deterministic counter set.
  struct WorkerStats {
    std::uint64_t tasks = 0;        ///< tasks executed by this worker
    std::uint64_t steals = 0;       ///< ... of which stolen from a peer deque
    std::uint64_t global_pops = 0;  ///< ... popped from the injection queue
    double idle_seconds = 0;
  };
  std::vector<WorkerStats> worker_stats() const;

  /// Tasks queued but not yet popped by any executor.  Safe while running;
  /// a monitoring snapshot, not a synchronisation primitive.
  std::size_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Enqueues a task.  Thread-safe; a task may submit further tasks (nested
  /// submission goes to the submitting worker's own deque).  With a serial
  /// pool (jobs() == 1) the task runs inline.
  void submit(std::function<void()> task);

 private:
  struct Worker {
    std::mutex m;
    std::deque<std::function<void()>> q;
    // Stats slots (written with relaxed ops by the owning worker only, read
    // by worker_stats() at any time).
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> global_pops{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void worker_loop(unsigned me);
  bool next_task(unsigned me, std::function<void()>& out);

  unsigned jobs_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;  // size jobs_ - 1
  std::vector<std::thread> threads_;
  std::mutex global_m_;
  std::deque<std::function<void()>> global_;  // external submissions
  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};  // queued, not yet popped
  std::atomic<bool> stop_{false};
};

/// Runs `body(begin, end)` over [0, n) in chunks of `grain`, distributed
/// dynamically over the pool's workers plus the calling thread.  Blocks until
/// every chunk finished; if chunks threw, rethrows the exception of the
/// lowest chunk start index.  Safe to nest (the caller always drains the
/// remaining chunks itself, so nested calls cannot deadlock).
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Chunk size giving each executor ~`chunks_per_job` chunks (load-balancing
/// slack for uneven work), but never below `min_grain`.
inline std::size_t parallel_grain(std::size_t n, unsigned jobs,
                                  std::size_t min_grain = 1,
                                  std::size_t chunks_per_job = 4) {
  const std::size_t target = static_cast<std::size_t>(jobs) * chunks_per_job;
  return std::max(min_grain, (n + target - 1) / (target ? target : 1));
}

}  // namespace fsct
