// Scan-chain fault diagnosis: given the tester's observed responses to the
// chain test set (flush + FSCT vectors), rank candidate faults by how well
// their simulated faulty responses explain the observation.
//
// This is the natural companion of chain *testing*: once the screening flow
// of the paper flags a part as failing, the same scan-mode machinery locates
// the broken segment / suspect fault.  Scoring is signature matching under
// 3-valued simulation: a candidate is consistent when it predicts every
// observed binary value (X predictions are neutral), and candidates are
// ranked by explained mismatches of the good machine.
#pragma once

#include <span>
#include <vector>

#include "core/classify.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_mode_model.h"

namespace fsct {

/// What the tester saw: for each cycle of `sequence`, the values at the
/// diagnoser's observation points (X = not recorded / masked).
struct ObservedResponse {
  TestSequence sequence;
  std::vector<std::vector<Val>> observed;
};

struct DiagnosisCandidate {
  Fault fault;
  /// (cycle, observe-point) pairs where the candidate's prediction is a
  /// binary value different from an observed binary value.  0 = consistent.
  int contradictions = 0;
  /// Observed good-machine mismatches the candidate reproduces exactly.
  int explained = 0;
  /// explained - contradictions, the ranking key.
  int score() const { return explained - contradictions; }
};

class ChainDiagnoser {
 public:
  /// Observation points default to POs + scan-outs when `observe` is empty.
  ChainDiagnoser(const ScanModeModel& model, std::vector<NodeId> observe = {});

  /// Simulates `fault` over `sequence` and returns the response in
  /// ObservedResponse form — the test-bench side of a diagnosis round trip.
  ObservedResponse make_response(const TestSequence& sequence,
                                 const Fault& fault) const;

  /// Ranks `candidates` against the observation; returns the `top_k` best
  /// (all of them if top_k == 0), best first.  Deterministic order.
  std::vector<DiagnosisCandidate> diagnose(const ObservedResponse& response,
                                           std::span<const Fault> candidates,
                                           std::size_t top_k = 10) const;

  const std::vector<NodeId>& observe() const { return observe_; }

 private:
  const ScanModeModel& model_;
  std::vector<NodeId> observe_;
};

}  // namespace fsct
