#include "bench_circuits/generator.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace fsct {

Netlist make_random_sequential(const RandomCircuitSpec& spec) {
  if (spec.num_pis < 1 || spec.num_gates < 1 || spec.num_ffs < 0 ||
      spec.num_pos < 1) {
    throw std::invalid_argument("make_random_sequential: bad spec");
  }
  std::mt19937_64 rng(spec.seed);
  Netlist nl(spec.name);

  std::vector<NodeId> pool;
  for (int i = 0; i < spec.num_pis; ++i) {
    pool.push_back(nl.add_input("pi" + std::to_string(i)));
  }
  std::vector<NodeId> ffs;
  for (int i = 0; i < spec.num_ffs; ++i) {
    const NodeId q = nl.add_dff_floating("ff" + std::to_string(i));
    ffs.push_back(q);
    pool.push_back(q);
  }

  auto pick_input = [&](std::vector<NodeId>& used) -> NodeId {
    for (int tries = 0; tries < 16; ++tries) {
      std::size_t idx;
      if (static_cast<int>(rng() % 100) < spec.control_pct) {
        idx = rng() % static_cast<std::size_t>(spec.num_pis);
      } else if (static_cast<int>(rng() % 100) < spec.locality_pct &&
                 pool.size() > 8) {
        const std::size_t window = std::min<std::size_t>(64, pool.size());
        idx = pool.size() - 1 - (rng() % window);
      } else {
        idx = rng() % pool.size();
      }
      const NodeId n = pool[idx];
      if (std::find(used.begin(), used.end(), n) == used.end()) return n;
    }
    return pool[rng() % pool.size()];
  };

  // Mapped-style gate mix (percent).
  struct Mix {
    GateType t;
    int pct;
  };
  static constexpr Mix kMix[] = {
      {GateType::Nand, 30}, {GateType::Nor, 22}, {GateType::Not, 12},
      {GateType::And, 12},  {GateType::Or, 10},  {GateType::Buf, 4},
      {GateType::Xor, 6},   {GateType::Xnor, 4},
  };

  std::vector<NodeId> gates;
  for (int i = 0; i < spec.num_gates; ++i) {
    int r = static_cast<int>(rng() % 100);
    GateType t = GateType::Nand;
    for (const Mix& m : kMix) {
      if (r < m.pct) {
        t = m.t;
        break;
      }
      r -= m.pct;
    }
    std::size_t fanin = 1;
    if (t != GateType::Not && t != GateType::Buf) {
      fanin = (rng() % 100 < 70) ? 2 : 3;
    }
    std::vector<NodeId> fins;
    for (std::size_t k = 0; k < fanin; ++k) fins.push_back(pick_input(fins));
    const NodeId g = nl.add_gate(t, std::move(fins), "g" + std::to_string(i));
    gates.push_back(g);
    pool.push_back(g);
  }

  // Consumers draw unused gate outputs first so little logic dangles.
  std::vector<int> fanout(nl.size(), 0);
  for (NodeId id = 0; id < nl.size(); ++id) {
    for (NodeId f : nl.fanins(id)) {
      if (f != kNullNode) ++fanout[f];
    }
  }
  std::vector<NodeId> unused;
  for (NodeId g : gates) {
    if (fanout[g] == 0) unused.push_back(g);
  }
  std::shuffle(unused.begin(), unused.end(), rng);

  auto draw_sink_source = [&]() -> NodeId {
    if (!unused.empty()) {
      const NodeId n = unused.back();
      unused.pop_back();
      return n;
    }
    return gates[rng() % gates.size()];
  };

  for (NodeId q : ffs) nl.set_fanin(q, 0, draw_sink_source());
  for (int i = 0; i < spec.num_pos; ++i) nl.mark_output(draw_sink_source());

  // Any remaining dangling outputs become observable rather than dead logic
  // (real mapped netlists have no dangling gates either).
  for (NodeId n : unused) nl.mark_output(n);

  if (std::string err = nl.validate(); !err.empty()) {
    throw std::runtime_error("generator produced invalid netlist: " + err);
  }
  return nl;
}

}  // namespace fsct
