#include "bench_circuits/suite.h"

#include <stdexcept>

#include "bench_circuits/generator.h"

namespace fsct {

const std::vector<SuiteEntry>& paper_suite() {
  static const std::vector<SuiteEntry> kSuite = {
      // name      gates   ffs   pis  pos  chains
      {"s1423",    657,    74,   17,  5,   1},
      {"s1488",    653,    6,    8,   19,  1},
      {"s1494",    647,    6,    8,   19,  1},
      {"s3330",    1789,   132,  40,  73,  2},
      {"s4863",    2342,   104,  49,  16,  1},
      {"s5378",    2779,   179,  35,  49,  2},
      {"s9234",    5597,   211,  36,  39,  2},
      {"s13207",   7951,   638,  62,  152, 5},
      {"s15850",   9772,   534,  77,  150, 5},
      {"s35932",   16065,  1728, 35,  320, 14},
      {"s38417",   22179,  1636, 28,  106, 13},
      {"s38584",   19253,  1426, 38,  304, 12},
  };
  return kSuite;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const SuiteEntry& e : paper_suite()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("unknown suite circuit: " + name);
}

Netlist build_suite_circuit(const SuiteEntry& e) {
  RandomCircuitSpec spec;
  spec.name = e.name;
  spec.num_pis = e.pis;
  spec.num_pos = e.pos;
  spec.num_ffs = e.ffs;
  spec.num_gates = e.gates;
  // Stable per-circuit seed so every run regenerates the same netlist.
  spec.seed = 0x5eed;
  for (char c : e.name) spec.seed = spec.seed * 131 + static_cast<unsigned char>(c);
  return make_random_sequential(spec);
}

}  // namespace fsct
