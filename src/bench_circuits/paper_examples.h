// Hand-built circuits reproducing the paper's illustrative figures, plus a
// few small sequential circuits used throughout the test suite.
#pragma once

#include "fault/fault.h"
#include "netlist/netlist.h"
#include "scan/scan_chain.h"

namespace fsct {

/// A scanned design built by hand (used where the example must be exact
/// rather than produced by the TPI heuristic).
struct ExampleDesign {
  Netlist nl;
  ScanDesign design;
};

/// The Figure 2 phenomenon: a 6-flip-flop functional scan chain where the
/// F5->F6 link runs through a 2:1 and-or selector whose enable is forced to 1
/// in scan mode.  The fault `en s-a-0` reroutes the chain so that F6 is fed
/// from F1 — the chain shortens by exactly 4 stages, which the period-4
/// alternating sequence 0,0,1,1,... cannot see.
///
/// Netlist signal names: en (PI), si (scan-in PI), scan_mode (PI),
/// f1..f6 (DFFs), en_n, a = AND(f5,en), b = AND(f1,en_n), d6 = OR(a,b).
ExampleDesign paper_figure2();

/// The fault the Figure 2 discussion targets: en s-a-0.
Fault paper_figure2_fault(const Netlist& nl);

/// A small circuit shaped like Figure 3: one stuck PI whose forward
/// implication reaches the chain in two places (a chain net forced binary and
/// a side input turned X), exercising the multi-location classifier.
ExampleDesign paper_figure3();

/// The Figure 3 fault: pi1 s-a-0.
Fault paper_figure3_fault(const Netlist& nl);

/// Plain sequential circuits (no scan) for TPI / mux-scan unit tests.
/// A 4-bit ripple "counter-ish" circuit: 4 DFFs with XOR/AND next-state
/// logic, 1 PI enable, 1 PO carry.
Netlist small_counter();

/// A 3-stage pipeline: pi -> f1 -> NAND(f1, c1) -> f2 -> NOR(f2, c2) -> f3,
/// with side PIs c1, c2 and PO = f3.  TPI can sensitise both stages.
Netlist small_pipeline();

/// The textual .bench form of ISCAS'89 s27 (the classic 10-gate benchmark).
Netlist iscas_s27();

}  // namespace fsct
