// Deterministic synthetic sequential-circuit generator.
//
// The paper evaluates on the 12 largest ISCAS'89 benchmarks after SIS
// optimisation and NAND/NOR/NOT technology mapping.  Those exact mapped
// netlists are not available here, so this generator produces circuits with
// the same interface statistics (gate/FF/PI/PO counts) and a mapped-style
// gate mix (NAND/NOR/NOT dominant, fanin <= 3, local connectivity with
// occasional long wires).  Generation is fully deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace fsct {

struct RandomCircuitSpec {
  std::string name = "rand";
  int num_pis = 8;
  int num_pos = 8;
  int num_ffs = 16;
  int num_gates = 200;  ///< combinational gates
  std::uint64_t seed = 1;
  /// Probability (percent) that a gate input is drawn from the most recent
  /// signals rather than uniformly — models mapped-netlist locality.
  int locality_pct = 70;
  /// Probability (percent) that a gate input connects directly to a primary
  /// input — models the control-dominated structure of real mapped circuits
  /// (it is what lets TPI force side inputs by pinning a few PIs).
  int control_pct = 18;
};

/// Builds the circuit.  The result always validates: no combinational cycles,
/// every FF D-pin driven, every PI/FF reachable-ish (unconnected signals get
/// mopped up into the PO cones).
Netlist make_random_sequential(const RandomCircuitSpec& spec);

}  // namespace fsct
