// The paper's Table 1 test suite: the 12 largest ISCAS'89 benchmarks, here
// realised as deterministic synthetic circuits with matching interface
// statistics (see generator.h for the substitution rationale).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fsct {

/// One row of the paper's Table 1 (gate counts are the published post-SIS
/// sizes; chains chosen so no chain exceeds ~130 flip-flops, matching the
/// paper's "multiple scan chains ... to reduce the length of the scan chain
/// to a reasonable size").
struct SuiteEntry {
  std::string name;
  int gates = 0;
  int ffs = 0;
  int pis = 0;
  int pos = 0;
  int chains = 1;
};

/// The 12-circuit suite, smallest first.
const std::vector<SuiteEntry>& paper_suite();

/// Looks up a suite entry by name; throws if unknown.
const SuiteEntry& suite_entry(const std::string& name);

/// Builds the synthetic stand-in for a suite circuit (deterministic).
Netlist build_suite_circuit(const SuiteEntry& e);

}  // namespace fsct
