#include "bench_circuits/paper_examples.h"

#include "netlist/bench_io.h"

namespace fsct {

ExampleDesign paper_figure2() {
  ExampleDesign e;
  Netlist& nl = e.nl;
  nl.set_name("paper_fig2");

  const NodeId scan_mode = nl.add_input("scan_mode");
  const NodeId si = nl.add_input("si");
  const NodeId en = nl.add_input("en");

  const NodeId f1 = nl.add_dff(si, "f1");
  const NodeId f2 = nl.add_dff(f1, "f2");
  const NodeId f3 = nl.add_dff(f2, "f3");
  const NodeId f4 = nl.add_dff(f3, "f4");
  const NodeId f5 = nl.add_dff(f4, "f5");
  const NodeId en_n = nl.add_gate(GateType::Not, {en}, "en_n");
  const NodeId a = nl.add_gate(GateType::And, {f5, en}, "a");
  const NodeId b = nl.add_gate(GateType::And, {f1, en_n}, "b");
  const NodeId d6 = nl.add_gate(GateType::Or, {a, b}, "d6");
  const NodeId f6 = nl.add_dff(d6, "f6");
  nl.mark_output(f6);

  ScanDesign& d = e.design;
  d.scan_mode = scan_mode;
  d.pi_constraints = {{scan_mode, Val::One}, {en, Val::One}};

  ScanChain chain;
  chain.scan_in = si;
  chain.ffs = {f1, f2, f3, f4, f5, f6};
  auto direct = [](NodeId from, NodeId to) {
    ScanSegment s;
    s.from = from;
    s.to = to;
    s.functional = true;
    return s;
  };
  chain.segments.push_back(direct(si, f1));
  chain.segments.push_back(direct(f1, f2));
  chain.segments.push_back(direct(f2, f3));
  chain.segments.push_back(direct(f3, f4));
  chain.segments.push_back(direct(f4, f5));
  ScanSegment last;
  last.from = f5;
  last.to = f6;
  last.path = {a, d6};
  last.functional = true;
  chain.segments.push_back(std::move(last));
  d.chains.push_back(std::move(chain));
  return e;
}

Fault paper_figure2_fault(const Netlist& nl) {
  return Fault{nl.find("en"), -1, false};  // en s-a-0
}

ExampleDesign paper_figure3() {
  ExampleDesign e;
  Netlist& nl = e.nl;
  nl.set_name("paper_fig3");

  const NodeId scan_mode = nl.add_input("scan_mode");
  const NodeId si = nl.add_input("si");
  const NodeId pi1 = nl.add_input("pi1");

  const NodeId f1 = nl.add_dff_floating("f1");
  const NodeId g1 = nl.add_gate(GateType::And, {f1, pi1}, "g1");
  const NodeId f2 = nl.add_dff(g1, "f2");
  const NodeId f3 = nl.add_dff(f2, "f3");
  const NodeId pi1_n = nl.add_gate(GateType::Not, {pi1}, "pi1_n");
  const NodeId s = nl.add_gate(GateType::And, {pi1_n, f1}, "s");
  const NodeId g2 = nl.add_gate(GateType::Or, {f3, s}, "g2");
  const NodeId f4 = nl.add_dff(g2, "f4");
  nl.set_fanin(f1, 0, si);
  nl.mark_output(f4);

  ScanDesign& d = e.design;
  d.scan_mode = scan_mode;
  d.pi_constraints = {{scan_mode, Val::One}, {pi1, Val::One}};

  ScanChain chain;
  chain.scan_in = si;
  chain.ffs = {f1, f2, f3, f4};
  ScanSegment s0;
  s0.from = si;
  s0.to = f1;
  s0.functional = true;
  ScanSegment s1;
  s1.from = f1;
  s1.to = f2;
  s1.path = {g1};
  s1.functional = true;
  ScanSegment s2;
  s2.from = f2;
  s2.to = f3;
  s2.functional = true;
  ScanSegment s3;
  s3.from = f3;
  s3.to = f4;
  s3.path = {g2};
  s3.functional = true;
  chain.segments = {s0, s1, s2, s3};
  d.chains.push_back(std::move(chain));
  return e;
}

Fault paper_figure3_fault(const Netlist& nl) {
  return Fault{nl.find("pi1"), -1, false};  // pi1 s-a-0
}

Netlist small_counter() {
  Netlist nl("small_counter");
  const NodeId en = nl.add_input("en");
  const NodeId q0 = nl.add_dff_floating("q0");
  const NodeId q1 = nl.add_dff_floating("q1");
  const NodeId q2 = nl.add_dff_floating("q2");
  const NodeId q3 = nl.add_dff_floating("q3");
  const NodeId c0 = nl.add_gate(GateType::And, {q0, en}, "c0");
  const NodeId c1 = nl.add_gate(GateType::And, {q1, c0}, "c1");
  const NodeId c2 = nl.add_gate(GateType::And, {q2, c1}, "c2");
  const NodeId n0 = nl.add_gate(GateType::Xor, {q0, en}, "n0");
  const NodeId n1 = nl.add_gate(GateType::Xor, {q1, c0}, "n1");
  const NodeId n2 = nl.add_gate(GateType::Xor, {q2, c1}, "n2");
  const NodeId n3 = nl.add_gate(GateType::Xor, {q3, c2}, "n3");
  const NodeId carry = nl.add_gate(GateType::And, {q3, c2}, "carry");
  nl.set_fanin(q0, 0, n0);
  nl.set_fanin(q1, 0, n1);
  nl.set_fanin(q2, 0, n2);
  nl.set_fanin(q3, 0, n3);
  nl.mark_output(carry);
  return nl;
}

Netlist small_pipeline() {
  Netlist nl("small_pipeline");
  const NodeId pi = nl.add_input("pi");
  const NodeId c1 = nl.add_input("c1");
  const NodeId c2 = nl.add_input("c2");
  const NodeId f1 = nl.add_dff(pi, "f1");
  const NodeId g1 = nl.add_gate(GateType::Nand, {f1, c1}, "g1");
  const NodeId f2 = nl.add_dff(g1, "f2");
  const NodeId g2 = nl.add_gate(GateType::Nor, {f2, c2}, "g2");
  const NodeId f3 = nl.add_dff(g2, "f3");
  nl.mark_output(f3);
  return nl;
}

Netlist iscas_s27() {
  static const char* kS27 = R"(
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";
  return read_bench_string(kS27, "s27");
}

}  // namespace fsct
