// Wire helpers for the shard NDJSON protocol (internal to src/shard).
//
// One request line, one reply line, both single JSON objects.  Test
// sequences travel as arrays of per-cycle value strings ('0'/'1'/'X'),
// fault-id lists as number arrays, chain windows as [chain, min_seg,
// max_seg] triples.  Every worker reply additionally carries the command's
// observability deltas — counters ("c"), histograms ("h") and per-fault
// attribution cells ("a") — collected in a fresh per-command registry, so
// the coordinator can fold them into the parent registry in reply order and
// the merged totals match the single-process run exactly (all three are
// commutative sums).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/grouping.h"
#include "core/json.h"
#include "core/obs.h"
#include "core/pipeline_exec.h"
#include "fault/seq_fault_sim.h"
#include "sim/value.h"

namespace fsct {

// Writers (append to an in-progress JSON object body).
void wire_val_string(std::ostream& os, const std::vector<Val>& vals);
void wire_seq(std::ostream& os, const TestSequence& seq);
void wire_u64_array(std::ostream& os, const std::vector<std::size_t>& v);
void wire_windows(std::ostream& os, const std::vector<ChainWindow>& win);
/// One classification result as `[category, multi_chain, [chain, seg, ...]]`.
void wire_info(std::ostream& os, const ChainFaultInfo& ci);
/// Appends `,"c":{...},"h":{...},"a":[...]` (nonzero entries only).
void wire_append_deltas(std::ostream& os, const ObsRegistry& reg);

// Readers.  All throw std::runtime_error on malformed values; the caller
// wraps with protocol context.
std::vector<Val> wire_vals(const std::string& s);
TestSequence wire_parse_seq(const JVal& v);
std::vector<std::size_t> wire_parse_u64s(const JVal& v);
std::vector<ChainWindow> wire_parse_windows(const JVal& v);
ChainFaultInfo wire_parse_info(const JVal& v);
/// Folds a reply's "c"/"h"/"a" members into `obs` (no-op when null).
void wire_import_deltas(const JVal& reply, ObsRegistry* obs);

// Final-pass verdict names ("detected", "unverified", ...).
const char* final_verdict_name(FinalVerdict v);
bool final_verdict_from_name(const std::string& name, FinalVerdict* out);

// Observability name -> enum lookups (names as in core/obs.h kCounterNames
// et al.); false on unknown names.
bool counter_from_name(const std::string& name, Ctr* out);
bool hist_from_name(const std::string& name, Hist* out);
bool attr_from_name(const std::string& name, Attr* out);

}  // namespace fsct
