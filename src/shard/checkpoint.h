// The `fsct-ckpt-v1` checkpoint file: a resumable snapshot of a pipeline run
// taken at a safe point (core/pipeline_exec.h).  The format is NDJSON — one
// JSON object per line — so a truncated file is detected structurally (the
// `end` sentinel carries the expected line count) and every parse error is
// anchored "<path>: line N: ..." like the rest of the JSON surfaces.
//
// A checkpoint binds to the run that wrote it through `hash`, a digest of the
// post-TPI netlist, the scan design, the collapsed fault list and every
// result-affecting pipeline option (shard.h: shard_binding_hash).  Resuming
// against a different circuit or config is refused up front instead of
// producing a silently wrong report.
//
// Writes are atomic: serialize to `<path>.tmp`, fsync, rename over `<path>`.
// A crash mid-write leaves either the previous complete checkpoint or a stray
// temp file — never a half-written checkpoint under the real name.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline_exec.h"

namespace fsct {

/// Everything a checkpoint stores: the pipeline resume state plus the
/// observability totals accumulated so far (merged counters, histogram
/// buckets, per-fault attribution), so a resumed run's report carries the
/// full-run tallies rather than only the post-resume slice.
struct CheckpointData {
  std::uint64_t hash = 0;  ///< shard_binding_hash of the writing run
  PipelineResume resume;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  struct HistState {
    std::string name;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<HistState> hists;
  struct AttrCell {
    std::size_t fault = 0;
    std::string column;
    std::uint64_t count = 0;
  };
  std::vector<AttrCell> attr;
};

/// Serializes to the NDJSON text (terminating newline included).
std::string serialize_checkpoint(const CheckpointData& data);

/// Parses checkpoint text.  `name` anchors error messages (usually the file
/// path).  Throws JsonParseError on malformed lines, truncation (missing or
/// wrong `end` sentinel), unknown schema, or internally inconsistent state.
CheckpointData parse_checkpoint(const std::string& text,
                                const std::string& name);

/// Atomic write: <path>.tmp + fsync + rename.  Throws std::runtime_error on
/// I/O failure (the temp file is removed best-effort).
void write_checkpoint_atomic(const std::string& path,
                             const CheckpointData& data);

/// Reads and parses `path`; throws on I/O or parse failure.
CheckpointData read_checkpoint(const std::string& path);

}  // namespace fsct
