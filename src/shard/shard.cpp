// Shard coordinator: forks the workers, partitions the pipeline's
// data-parallel calls across them, merges replies in canonical order, and
// owns checkpoint/resume and cooperative-stop signal handling.
//
// Determinism argument (DESIGN.md §5l): every request names its work items
// explicitly (fault ids, a group's fault list in its in-group target order,
// a final slot), the worker computes each item with the same LocalExec the
// single-process run uses, and the coordinator merges by item index — never
// by arrival order.  The streaming step-3 queue hands items to whichever
// worker frees up first, which changes only *where* an item runs, not what
// it computes or where its result lands.  Counter/histogram/attribution
// deltas are commutative sums, so folding them in reply order leaves the
// merged totals equal to the single-process run's.
#include "shard/shard.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <functional>
#include <sstream>

#include "core/io_util.h"
#include "core/obs.h"
#include "core/selfcheck.h"
#include "netlist/bench_io.h"
#include "serve/net.h"
#include "serve/serve.h"
#include "shard/checkpoint.h"
#include "shard/wire.h"

namespace fsct {
namespace {

volatile std::sig_atomic_t g_shard_stop = 0;

void shard_stop_handler(int) { g_shard_stop = 1; }

// Installs the cooperative-stop handlers (no SA_RESTART: blocked reads wake
// with EINTR and the stop flag is honoured at the next safe point) and
// ignores SIGPIPE so a dead worker surfaces as a write error, not a fatal
// signal.  Restores everything on scope exit.
struct SignalGuard {
  struct sigaction old_term {};
  struct sigaction old_int {};
  struct sigaction old_pipe {};
  bool installed = false;

  explicit SignalGuard(bool catch_signals) {
    g_shard_stop = 0;
    struct sigaction ign {};
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &old_pipe);
    if (catch_signals) {
      struct sigaction sa {};
      sa.sa_handler = shard_stop_handler;
      sigemptyset(&sa.sa_mask);
      sa.sa_flags = 0;
      ::sigaction(SIGTERM, &sa, &old_term);
      ::sigaction(SIGINT, &sa, &old_int);
      installed = true;
    }
  }
  ~SignalGuard() {
    if (installed) {
      ::sigaction(SIGTERM, &old_term, nullptr);
      ::sigaction(SIGINT, &old_int, nullptr);
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
  }
};

struct WorkerConn {
  pid_t pid = -1;
  int fd = -1;
  std::unique_ptr<LineReader> reader;
  bool busy = false;
  std::size_t item = 0;
  bool dead = false;
};

// Reaps a worker that stopped answering and describes what happened to it.
ShardError dead_worker_error(WorkerConn& w, std::size_t idx) {
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  w.dead = true;
  w.busy = false;
  int st = 0;
  ::waitpid(w.pid, &st, 0);
  std::ostringstream os;
  os << "shard worker " << idx << " (pid " << w.pid << ") ";
  if (WIFSIGNALED(st)) {
    os << "was killed by signal " << WTERMSIG(st);
  } else if (WIFEXITED(st)) {
    os << "exited with status " << WEXITSTATUS(st);
  } else {
    os << "died unexpectedly";
  }
  os << "; the run was aborted without writing a report (resume from the "
        "last checkpoint to continue)";
  return ShardError(os.str());
}

class ShardExec : public PipelineExec {
 public:
  ShardExec(std::vector<WorkerConn>& workers, ObsRegistry* obs)
      : workers_(workers), obs_(obs) {}

  std::vector<ChainFaultInfo> classify(
      std::span<const std::size_t> ids) override {
    std::vector<std::vector<std::size_t>> sub, pos;
    partition(ids, sub, pos);
    for (std::size_t s = 0; s < sub.size(); ++s) {
      if (sub[s].empty()) continue;
      std::ostringstream os;
      os << "{\"cmd\":\"classify\",\"ids\":";
      wire_u64_array(os, sub[s]);
      os << '}';
      send_to(s, os.str());
    }
    std::vector<ChainFaultInfo> out(ids.size());
    for (std::size_t s = 0; s < sub.size(); ++s) {
      if (sub[s].empty()) continue;
      const JVal v = read_reply(s);
      wire_import_deltas(v, obs_);
      const JVal* info = v.find("info");
      if (!info || info->kind != JVal::Arr ||
          info->arr.size() != sub[s].size()) {
        throw protocol_error(s, "classify reply misaligned");
      }
      try {
        for (std::size_t k = 0; k < sub[s].size(); ++k) {
          out[pos[s][k]] = wire_parse_info(info->arr[k]);
        }
      } catch (const std::exception& e) {
        throw protocol_error(s, e.what());
      }
    }
    return out;
  }

  std::vector<char> seq_detect(const TestSequence& seq,
                               std::span<const std::size_t> ids) override {
    std::vector<std::vector<std::size_t>> sub, pos;
    partition(ids, sub, pos);
    std::ostringstream seqjson;
    wire_seq(seqjson, seq);
    for (std::size_t s = 0; s < sub.size(); ++s) {
      if (sub[s].empty()) continue;
      std::ostringstream os;
      os << "{\"cmd\":\"seqdet\",\"seq\":" << seqjson.str() << ",\"ids\":";
      wire_u64_array(os, sub[s]);
      os << '}';
      send_to(s, os.str());
    }
    std::vector<char> out(ids.size(), 0);
    for (std::size_t s = 0; s < sub.size(); ++s) {
      if (sub[s].empty()) continue;
      const JVal v = read_reply(s);
      wire_import_deltas(v, obs_);
      const JVal* det = v.find("det");
      if (!det || det->kind != JVal::Str ||
          det->str.size() != sub[s].size()) {
        throw protocol_error(s, "seqdet reply misaligned");
      }
      for (std::size_t k = 0; k < sub[s].size(); ++k) {
        out[pos[s][k]] = det->str[k] == '1';
      }
    }
    return out;
  }

  std::vector<int> s2_first_vec(std::span<const ScanVector> vectors,
                                std::span<const std::size_t> ids) override {
    std::vector<std::vector<std::size_t>> sub, pos;
    partition(ids, sub, pos);
    std::ostringstream vecs;
    vecs << '[';
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      if (i) vecs << ',';
      vecs << '[';
      wire_val_string(vecs, vectors[i].pi_vals);
      vecs << ',';
      wire_val_string(vecs, vectors[i].ff_state);
      vecs << ']';
    }
    vecs << ']';
    for (std::size_t s = 0; s < sub.size(); ++s) {
      if (sub[s].empty()) continue;
      std::ostringstream os;
      os << "{\"cmd\":\"s2v\",\"vecs\":" << vecs.str() << ",\"ids\":";
      wire_u64_array(os, sub[s]);
      os << '}';
      send_to(s, os.str());
    }
    std::vector<int> out(ids.size(), -1);
    for (std::size_t s = 0; s < sub.size(); ++s) {
      if (sub[s].empty()) continue;
      const JVal v = read_reply(s);
      wire_import_deltas(v, obs_);
      const JVal* first = v.find("first");
      if (!first || first->kind != JVal::Arr ||
          first->arr.size() != sub[s].size()) {
        throw protocol_error(s, "s2v reply misaligned");
      }
      for (std::size_t k = 0; k < sub[s].size(); ++k) {
        if (first->arr[k].kind != JVal::Num) {
          throw protocol_error(s, "s2v reply misaligned");
        }
        out[pos[s][k]] = static_cast<int>(first->arr[k].num);
      }
    }
    return out;
  }

  void run_groups(const std::vector<AtpgGroup>& groups,
                  std::span<const std::size_t> todo,
                  std::vector<GroupOutcome>& done,
                  const ItemDone& on_done) override {
    stream_items(
        todo,
        [&](std::size_t gi) {
          const AtpgGroup& g = groups[gi];
          std::ostringstream os;
          os << "{\"cmd\":\"group\",\"gi\":" << gi << ",\"kind\":" << g.kind
             << ",\"ids\":";
          wire_u64_array(os, g.fault_indices);
          os << ",\"win\":";
          wire_windows(os, g.window);
          os << '}';
          return os.str();
        },
        [&](std::size_t gi, std::size_t s, const JVal& v) {
          const JVal* echo = v.find("gi");
          if (!echo || echo->kind != JVal::Num ||
              static_cast<std::size_t>(echo->num) != gi) {
            throw protocol_error(s, "group reply out of order");
          }
          GroupOutcome go;
          try {
            const JVal* det = v.find("detected");
            const JVal* cred = v.find("credited");
            const JVal* seqs = v.find("seqs");
            if (!det || !cred || !seqs || seqs->kind != JVal::Arr) {
              throw std::runtime_error("group reply incomplete");
            }
            go.detected = wire_parse_u64s(*det);
            go.credited = wire_parse_u64s(*cred);
            go.unverified = 0;
            if (const JVal* u = v.find("unverified");
                u && u->kind == JVal::Num) {
              go.unverified = static_cast<std::size_t>(u->num);
            }
            for (const JVal& e : seqs->arr) {
              go.seqs.push_back(wire_parse_seq(e));
            }
            if (go.seqs.size() != go.detected.size()) {
              throw std::runtime_error("group sequences misaligned");
            }
          } catch (const std::exception& e) {
            throw protocol_error(s, e.what());
          }
          done[gi] = std::move(go);
        },
        on_done);
  }

  void run_finals(std::span<const std::size_t> final_ids,
                  const std::vector<std::vector<ChainWindow>>& windows,
                  std::span<const std::size_t> todo,
                  std::vector<FinalOutcome>& fdone,
                  const ItemDone& on_done) override {
    stream_items(
        todo,
        [&](std::size_t k) {
          std::ostringstream os;
          os << "{\"cmd\":\"final\",\"k\":" << k << ",\"id\":" << final_ids[k]
             << ",\"win\":";
          wire_windows(os, windows[k]);
          os << '}';
          return os.str();
        },
        [&](std::size_t k, std::size_t s, const JVal& v) {
          const JVal* echo = v.find("k");
          if (!echo || echo->kind != JVal::Num ||
              static_cast<std::size_t>(echo->num) != k) {
            throw protocol_error(s, "final reply out of order");
          }
          FinalOutcome fo;
          const JVal* verdict = v.find("verdict");
          const JVal* seq = v.find("seq");
          if (!verdict || verdict->kind != JVal::Str || !seq ||
              !final_verdict_from_name(verdict->str, &fo.verdict)) {
            throw protocol_error(s, "final reply incomplete");
          }
          try {
            fo.seq = wire_parse_seq(*seq);
          } catch (const std::exception& e) {
            throw protocol_error(s, e.what());
          }
          fdone[k] = std::move(fo);
        },
        on_done);
  }

 private:
  // Positional round-robin split of `ids`: shard s gets ids[i] with
  // i % K == s.  Pure function of (ids, K), so a resumed run repartitions
  // identically.
  void partition(std::span<const std::size_t> ids,
                 std::vector<std::vector<std::size_t>>& sub,
                 std::vector<std::vector<std::size_t>>& pos) const {
    const std::size_t K = workers_.size();
    sub.assign(K, {});
    pos.assign(K, {});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      sub[i % K].push_back(ids[i]);
      pos[i % K].push_back(i);
    }
  }

  void send_to(std::size_t s, const std::string& line) {
    WorkerConn& w = workers_[s];
    if (w.dead || !write_line(w.fd, line)) throw dead_worker_error(w, s);
  }

  JVal read_reply(std::size_t s) {
    WorkerConn& w = workers_[s];
    std::string line;
    if (w.dead || !w.reader->next(line)) throw dead_worker_error(w, s);
    JVal v;
    try {
      JsonParser p(line, "shard-reply");
      v = p.parse();
    } catch (const JsonParseError& e) {
      throw protocol_error(s, e.what());
    }
    if (v.kind != JVal::Obj) throw protocol_error(s, "reply is not an object");
    if (const JVal* err = v.find("err")) {
      std::ostringstream os;
      os << "shard worker " << s << " failed: "
         << (err->kind == JVal::Str ? err->str : std::string("unknown error"));
      throw ShardError(os.str());
    }
    return v;
  }

  ShardError protocol_error(std::size_t s, const std::string& what) const {
    std::ostringstream os;
    os << "shard protocol error (worker " << s << "): " << what;
    return ShardError(os.str());
  }

  // Streaming one-item-at-a-time work queue for the step-3 phases: each
  // worker holds at most one outstanding item, the next pending item goes to
  // whichever worker replies first, and every completed item triggers
  // on_done on this (skeleton) thread — the hook seam for per-item
  // checkpoints.  After a stop verdict the in-flight replies are drained for
  // protocol hygiene but fully discarded (outcome and deltas): importing
  // them without marking the item done would double-count after a resume.
  void stream_items(
      std::span<const std::size_t> todo,
      const std::function<std::string(std::size_t)>& make_req,
      const std::function<void(std::size_t, std::size_t, const JVal&)>& merge,
      const ItemDone& on_done) {
    std::size_t next = 0;
    std::size_t outstanding = 0;
    bool stop = false;
    auto dispatch = [&](std::size_t s) {
      WorkerConn& w = workers_[s];
      const std::size_t item = todo[next++];
      send_to(s, make_req(item));
      w.busy = true;
      w.item = item;
      ++outstanding;
    };
    for (std::size_t s = 0; s < workers_.size() && next < todo.size(); ++s) {
      dispatch(s);
    }
    while (outstanding > 0) {
      std::vector<pollfd> fds;
      std::vector<std::size_t> widx;
      for (std::size_t s = 0; s < workers_.size(); ++s) {
        if (workers_[s].busy) {
          fds.push_back({workers_[s].fd, POLLIN, 0});
          widx.push_back(s);
        }
      }
      const int rc = ::poll(fds.data(), fds.size(), 200);
      if (rc < 0) {
        if (errno == EINTR) continue;  // stop flag checked via on_done
        throw ShardError(std::string("poll failed: ") + std::strerror(errno));
      }
      for (std::size_t k = 0; k < fds.size(); ++k) {
        if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const std::size_t s = widx[k];
        WorkerConn& w = workers_[s];
        const JVal v = read_reply(s);
        const std::size_t item = w.item;
        w.busy = false;
        --outstanding;
        if (stop) continue;  // drain: discard outcome and deltas
        wire_import_deltas(v, obs_);
        merge(item, s, v);
        if (obs_) obs_->phase_tick();
        if (on_done && !on_done(item)) {
          stop = true;
          continue;
        }
        if (next < todo.size()) dispatch(s);
      }
    }
  }

  std::vector<WorkerConn>& workers_;
  ObsRegistry* obs_;
};

}  // namespace

std::uint64_t shard_binding_hash(const ScanModeModel& model,
                                 std::span<const Fault> faults,
                                 const PipelineOptions& opt) {
  std::ostringstream os;
  os << write_bench_string(model.levelizer().netlist());
  const ScanDesign& d = model.design();
  os << "|m" << d.scan_mode;
  for (const auto& [pi, v] : d.pi_constraints) {
    os << ";p" << pi << ':' << val_char(v);
  }
  for (const ScanChain& c : d.chains) {
    os << ";c" << c.scan_in;
    for (NodeId ff : c.ffs) os << ',' << ff;
  }
  os << '|';
  for (const Fault& f : faults) {
    os << 'f' << f.node << '/' << f.pin << '/' << (f.stuck_one ? 1 : 0) << ';';
  }
  os << "|o" << opt.auto_dist << ',' << opt.dist.large_dist << ','
     << opt.dist.med_dist << ',' << opt.dist.dist << ','
     << opt.comb_backtrack_limit << ',' << opt.seq_backtrack_limit << ','
     << opt.final_backtrack_limit << ',' << opt.comb_time_limit_ms << ','
     << opt.seq_time_limit_ms << ',' << opt.final_time_limit_ms << ','
     << opt.random_patterns << ',' << opt.frame_slack << ',' << opt.frame_cap
     << ',' << opt.final_extra_frames << ',' << opt.observe_pos << ','
     << opt.verify_easy << ',' << opt.verify_seq << ',' << opt.dominance
     << ',' << opt.alternating_cycles << ',' << opt.observe_cycles;
  return fnv1a64(os.str());
}

struct ShardRunner::Impl {
  const ScanModeModel& model;
  std::span<const Fault> faults;
  PipelineOptions opt;  // shallow copy; obs/compiled must outlive the runner
  ShardOptions sopt;
  std::uint64_t hash = 0;
  std::vector<WorkerConn> workers;
  std::unique_ptr<ShardExec> exec;

  Impl(const ScanModeModel& m, std::span<const Fault> f,
       const PipelineOptions& o, const ShardOptions& s)
      : model(m), faults(f), opt(o), sopt(s) {}

  ~Impl() {
    for (WorkerConn& w : workers) {
      if (w.dead) continue;
      if (w.fd >= 0) ::close(w.fd);
      // Workers hold no state to flush; SIGKILL cannot hang on a stuck
      // child the way a graceful shutdown handshake could.
      ::kill(w.pid, SIGKILL);
      int st = 0;
      ::waitpid(w.pid, &st, 0);
    }
  }

  void write_ckpt(const PipelineProgress& pg) const {
    CheckpointData ck;
    ck.hash = hash;
    ck.resume.phase = pg.next;
    ck.resume.partial = *pg.res;
    ck.resume.podem_next = pg.podem_next;
    if (pg.next == PipelinePhase::S2Podem && pg.comb_covered) {
      ck.resume.comb_covered = *pg.comb_covered;
    }
    if (pg.groups && pg.groups_done) {
      for (std::size_t gi = 0; gi < pg.groups_done->size(); ++gi) {
        if ((*pg.groups_done)[gi]) {
          ck.resume.groups_done[gi] = (*pg.groups)[gi];
        }
      }
    }
    if (pg.finals && pg.finals_done && pg.final_ids) {
      for (std::size_t k = 0; k < pg.finals_done->size(); ++k) {
        if ((*pg.finals_done)[k]) {
          ck.resume.finals_done[(*pg.final_ids)[k]] = (*pg.finals)[k];
        }
      }
    }
    if (const ObsRegistry* obs = opt.obs) {
      for (std::size_t i = 0; i < kNumCounters; ++i) {
        const Ctr c = static_cast<Ctr>(i);
        if (const std::uint64_t n = obs->total(c)) {
          ck.counters.emplace_back(counter_name(c), n);
        }
      }
      for (std::size_t i = 0; i < kNumHists; ++i) {
        const Hist h = static_cast<Hist>(i);
        const auto buckets = obs->hist_total(h);
        const std::uint64_t sum = obs->hist_sum(h);
        bool any = sum != 0;
        for (std::uint64_t b : buckets) any |= b != 0;
        if (!any) continue;
        CheckpointData::HistState hs;
        hs.name = hist_name(h);
        hs.sum = sum;
        hs.buckets.assign(buckets.begin(), buckets.end());
        ck.hists.push_back(std::move(hs));
      }
      if (obs->attribution_enabled()) {
        for (std::size_t f = 0; f < obs->attribution_faults(); ++f) {
          for (std::size_t a = 0; a < kNumAttrs; ++a) {
            const Attr col = static_cast<Attr>(a);
            if (const std::uint64_t n = obs->attr_total(col, f)) {
              ck.attr.push_back({f, attr_name(col), n});
            }
          }
        }
      }
    }
    write_checkpoint_atomic(sopt.checkpoint_path, ck);
  }
};

ShardRunner::ShardRunner(const ScanModeModel& model,
                         std::span<const Fault> faults,
                         const PipelineOptions& opt, const ShardOptions& sopt)
    : impl_(std::make_unique<Impl>(model, faults, opt, sopt)) {
  if (sopt.shards < 1 || sopt.shards > 64) {
    throw ShardError("shard count must be between 1 and 64");
  }
  impl_->hash = shard_binding_hash(model, faults, opt);
  const bool want_obs = opt.obs != nullptr;
  const bool want_attr = want_obs && opt.obs->attribution_requested();
  for (int s = 0; s < sopt.shards; ++s) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw ShardError(std::string("socketpair failed: ") +
                       std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int e = errno;
      ::close(sv[0]);
      ::close(sv[1]);
      throw ShardError(std::string("fork failed: ") + std::strerror(e));
    }
    if (pid == 0) {
      // Worker: drop the parent-side fds (this and earlier workers'), put
      // signal dispositions back to the defaults the parent may have
      // overridden, and serve until the coordinator goes away.
      ::close(sv[0]);
      for (const WorkerConn& w : impl_->workers) ::close(w.fd);
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGUSR1, SIG_DFL);
      std::signal(SIGPIPE, SIG_IGN);
      int rc = 1;
      try {
        rc = shard_worker_main(sv[1], model, faults, impl_->opt, want_obs,
                               want_attr);
      } catch (...) {
      }
      std::_Exit(rc);
    }
    ::close(sv[1]);
    WorkerConn w;
    w.pid = pid;
    w.fd = sv[0];
    w.reader = std::make_unique<LineReader>(sv[0]);
    impl_->workers.push_back(std::move(w));
  }
  impl_->exec = std::make_unique<ShardExec>(impl_->workers, opt.obs);
}

ShardRunner::~ShardRunner() = default;

std::vector<pid_t> ShardRunner::worker_pids() const {
  std::vector<pid_t> pids;
  for (const WorkerConn& w : impl_->workers) {
    if (!w.dead) pids.push_back(w.pid);
  }
  return pids;
}

PipelineResult ShardRunner::run() {
  Impl& im = *impl_;

  PipelineResume resume;
  const PipelineResume* rz = nullptr;
  if (!im.sopt.resume_path.empty()) {
    CheckpointData ck = read_checkpoint(im.sopt.resume_path);
    if (ck.hash != im.hash) {
      throw ShardError("checkpoint " + im.sopt.resume_path +
                       " was written by a different circuit or "
                       "configuration (binding hash mismatch)");
    }
    resume = std::move(ck.resume);
    if (ObsRegistry* obs = im.opt.obs) {
      // Import the interrupted run's observability totals so the resumed
      // run's report carries full-run tallies.  Attribution must be sized
      // before cells can be charged; the pipeline's own init is idempotent.
      if (obs->attribution_requested()) {
        obs->init_attribution(im.faults.size());
      }
      for (const auto& [name, n] : ck.counters) {
        Ctr c;
        if (!counter_from_name(name, &c)) {
          throw ShardError("checkpoint has unknown counter: " + name);
        }
        obs->add(c, n);
      }
      for (const CheckpointData::HistState& h : ck.hists) {
        Hist hh;
        if (!hist_from_name(h.name, &hh)) {
          throw ShardError("checkpoint has unknown histogram: " + h.name);
        }
        obs->import_hist(hh, h.buckets, h.sum);
      }
      for (const CheckpointData::AttrCell& cell : ck.attr) {
        Attr a;
        if (!attr_from_name(cell.column, &a)) {
          throw ShardError("checkpoint has unknown attribution column: " +
                           cell.column);
        }
        obs->charge(a, cell.fault, cell.count);
      }
    }
    rz = &resume;
  }

  SignalGuard guard(im.sopt.catch_sigterm);

  std::size_t safepoints = 0;
  bool wrote_any = false;
  auto last = std::chrono::steady_clock::now();
  PipelineHooks hooks;
  hooks.safe_point = [&](const PipelineProgress& pg) -> bool {
    ++safepoints;
    const bool stop =
        g_shard_stop != 0 ||
        (im.sopt.stop_after_safepoints > 0 &&
         safepoints >= static_cast<std::size_t>(im.sopt.stop_after_safepoints));
    if (!im.sopt.checkpoint_path.empty()) {
      const auto now = std::chrono::steady_clock::now();
      const bool due =
          stop || !wrote_any || im.sopt.checkpoint_interval_ms <= 0 ||
          now - last >=
              std::chrono::milliseconds(im.sopt.checkpoint_interval_ms);
      if (due) {
        im.write_ckpt(pg);
        last = now;
        wrote_any = true;
      }
    }
    return !stop;
  };

  PipelineOptions run_opt = im.opt;
  run_opt.exec = im.exec.get();
  run_opt.hooks = &hooks;
  run_opt.resume = rz;
  return run_fsct_pipeline(im.model, im.faults, run_opt);
}

PipelineResult run_sharded_pipeline(const ScanModeModel& model,
                                    std::span<const Fault> faults,
                                    const PipelineOptions& opt,
                                    const ShardOptions& sopt) {
  ShardRunner runner(model, faults, opt, sopt);
  return runner.run();
}

void register_shard_oracle() {
  set_shard_oracle_hook([](const ScanModeModel& model,
                           std::span<const Fault> faults,
                           const PipelineOptions& opt, int shards) {
    ShardOptions sopt;
    sopt.shards = shards;
    return run_sharded_pipeline(model, faults, opt, sopt);
  });
}

}  // namespace fsct
