// Sharded multi-process fault screening (DESIGN.md §5l).
//
// A ShardRunner forks K worker processes (plain fork(2): each child inherits
// the parent's netlist, scan design and fault list read-only — nothing is
// serialized to start a worker) and runs the normal pipeline skeleton in the
// parent with a PipelineExec that partitions every data-parallel call across
// the workers over a socketpair NDJSON protocol (one request line, one reply
// line, serve-style LineReader framing).  Per-fault partitioning is
// positional round-robin and the merge walks items in canonical order, so
// the PipelineResult — and the normalized run report — is bitwise identical
// to a single-process run at any shard count.
//
// The runner also owns checkpoint/resume: at every pipeline safe point it can
// write an `fsct-ckpt-v1` snapshot (shard/checkpoint.h) guarded by a binding
// hash of circuit + fault list + result-affecting options, and on resume it
// restores the partial result and observability totals so the continued run
// finishes with the full-run report, bitwise identical to an uninterrupted
// one.
//
// Fork safety: construct the ShardRunner BEFORE starting any threads
// (ObsMonitor, thread pools).  The children never return from the
// constructor — they run the worker loop and _exit.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/pipeline_exec.h"

namespace fsct {

struct ShardOptions {
  /// Worker process count (1..64).  1 still forks a single worker, so the
  /// checkpoint cadence (per group / per final item) is identical at every
  /// shard count.
  int shards = 1;
  /// Checkpoint file; empty = no checkpointing.  Written atomically
  /// (temp + rename) at safe points.
  std::string checkpoint_path;
  /// Minimum milliseconds between periodic checkpoint writes; 0 = write at
  /// every safe point.  A stop (signal / test hook) always writes one last
  /// checkpoint regardless of the interval.
  int checkpoint_interval_ms = 0;
  /// Resume from this checkpoint; empty = fresh run.  The file's binding
  /// hash must match this run's circuit + config or the run is refused.
  std::string resume_path;
  /// Install SIGTERM/SIGINT handlers for the duration of run(): the signal
  /// requests a cooperative stop at the next safe point (final checkpoint
  /// written, PipelineStopped thrown).  Off for library/test use.
  bool catch_sigterm = false;
  /// Test hook: stop cooperatively at the Nth safe point (0 = never), as if
  /// a signal had arrived there.  Drives the resume-from-every-interval
  /// sweep deterministically.
  int stop_after_safepoints = 0;
};

/// Coordinator-side failures: a worker died (the message names the worker,
/// pid and cause), the wire protocol desynchronized, or a resume was refused.
struct ShardError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Digest binding a checkpoint to the run that wrote it: post-TPI netlist,
/// scan design (mode pin, PI constraints, chains), collapsed fault list and
/// every result-affecting pipeline option.  Deliberately excludes execution
/// knobs that cannot change the result (jobs, simd_width, shard count,
/// observability).
std::uint64_t shard_binding_hash(const ScanModeModel& model,
                                 std::span<const Fault> faults,
                                 const PipelineOptions& opt);

class ShardRunner {
 public:
  /// Forks the workers.  `model`, `faults` and `opt` must outlive the
  /// runner; `opt.exec/hooks/resume` are ignored (the runner supplies its
  /// own).  Throws ShardError on bad shard counts or fork failure.
  ShardRunner(const ScanModeModel& model, std::span<const Fault> faults,
              const PipelineOptions& opt, const ShardOptions& sopt);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  /// Runs the pipeline across the workers (resume handling, checkpoint
  /// hooks, signal handling included).  Throws PipelineStopped after a
  /// cooperative stop (the checkpoint is on disk), ShardError on worker
  /// death or protocol failure.
  PipelineResult run();

  /// Live worker pids, for crash-injection tests.
  std::vector<pid_t> worker_pids() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience one-shot: fork, run, reap.
PipelineResult run_sharded_pipeline(const ScanModeModel& model,
                                    std::span<const Fault> faults,
                                    const PipelineOptions& opt,
                                    const ShardOptions& sopt);

/// Registers the sharded runner as the selfcheck fuzzer's `shard` oracle
/// (single-process vs --shards N equivalence).  Call once at startup from
/// binaries that link this library; the fuzzer reports a loud error if the
/// oracle is requested but never registered.
void register_shard_oracle();

/// Worker-process entry point (shard.cpp forks, worker.cpp serves).  Speaks
/// the NDJSON command protocol on `fd` until EOF or an `exit` command.
/// `want_obs`/`want_attr` mirror the parent's observability configuration:
/// when set, every reply carries counter/histogram/attribution deltas from a
/// per-command registry.  Returns the process exit status.
int shard_worker_main(int fd, const ScanModeModel& model,
                      std::span<const Fault> faults,
                      const PipelineOptions& opt, bool want_obs,
                      bool want_attr);

}  // namespace fsct
