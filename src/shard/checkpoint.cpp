#include "shard/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/io_util.h"
#include "core/json.h"
#include "sim/value.h"

namespace fsct {
namespace {

constexpr const char* kSchema = "fsct-ckpt-v1";

constexpr const char* kVerdictNames[] = {
    "detected", "unverified", "untestable", "aborted", "nosites",
};

[[noreturn]] void fail(const std::string& name, std::size_t lineno,
                       const std::string& msg) {
  throw JsonParseError(name + ": line " + std::to_string(lineno) + ": " + msg);
}

// ---------------------------------------------------------------- writing --

void append_u64_array(std::ostream& os, const std::vector<std::size_t>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  os << ']';
}

void append_val_string(std::ostream& os, const std::vector<Val>& vals) {
  os << '"';
  for (Val v : vals) os << val_char(v);
  os << '"';
}

void append_seq(std::ostream& os, const TestSequence& seq) {
  os << '[';
  for (std::size_t c = 0; c < seq.size(); ++c) {
    if (c) os << ',';
    append_val_string(os, seq[c]);
  }
  os << ']';
}

void append_scalars(std::ostream& os, const PipelineResult& r) {
  os << "{\"total_faults\":" << r.total_faults << ",\"easy\":" << r.easy
     << ",\"hard\":" << r.hard << ",\"easy_verified\":" << r.easy_verified
     << ",\"dominance_targets\":" << r.dominance_targets
     << ",\"flush_detected\":" << r.flush_detected
     << ",\"ledger_dropped\":" << r.ledger_dropped
     << ",\"s2_detected\":" << r.s2_detected
     << ",\"s2_undetectable\":" << r.s2_undetectable
     << ",\"s2_undetected\":" << r.s2_undetected
     << ",\"s2_vectors\":" << r.s2_vectors
     << ",\"s3_circuits_group\":" << r.s3_circuits_group
     << ",\"s3_circuits_final\":" << r.s3_circuits_final
     << ",\"s3_detected\":" << r.s3_detected
     << ",\"s3_undetectable\":" << r.s3_undetectable
     << ",\"s3_undetected\":" << r.s3_undetected
     << ",\"s3_unverified\":" << r.s3_unverified << '}';
}

bool assign_scalar(PipelineResult& r, const std::string& key,
                   std::uint64_t n) {
  const std::size_t v = static_cast<std::size_t>(n);
  if (key == "total_faults") r.total_faults = v;
  else if (key == "easy") r.easy = v;
  else if (key == "hard") r.hard = v;
  else if (key == "easy_verified") r.easy_verified = v;
  else if (key == "dominance_targets") r.dominance_targets = v;
  else if (key == "flush_detected") r.flush_detected = v;
  else if (key == "ledger_dropped") r.ledger_dropped = v;
  else if (key == "s2_detected") r.s2_detected = v;
  else if (key == "s2_undetectable") r.s2_undetectable = v;
  else if (key == "s2_undetected") r.s2_undetected = v;
  else if (key == "s2_vectors") r.s2_vectors = v;
  else if (key == "s3_circuits_group") r.s3_circuits_group = v;
  else if (key == "s3_circuits_final") r.s3_circuits_final = v;
  else if (key == "s3_detected") r.s3_detected = v;
  else if (key == "s3_undetectable") r.s3_undetectable = v;
  else if (key == "s3_undetected") r.s3_undetected = v;
  else if (key == "s3_unverified") r.s3_unverified = v;
  else return false;
  return true;
}

// ---------------------------------------------------------------- parsing --

// Parses one NDJSON line, re-anchoring any error to the file line number (the
// per-line parser would otherwise always report "line 1").
JVal parse_line(const std::string& line, const std::string& name,
                std::size_t lineno) {
  JsonParser p(line, name);
  try {
    return p.parse();
  } catch (const JsonParseError& e) {
    std::string msg = e.what();
    const std::string prefix = name + ": line ";
    if (msg.rfind(prefix, 0) == 0) {
      const std::size_t colon = msg.find(": ", prefix.size());
      if (colon != std::string::npos) msg = msg.substr(colon + 2);
    }
    fail(name, lineno, msg);
  }
}

const JVal& want(const JVal& obj, const char* key, JVal::Kind kind,
                 const std::string& name, std::size_t lineno) {
  const JVal* v = obj.find(key);
  if (!v) fail(name, lineno, std::string("missing field \"") + key + "\"");
  if (v->kind != kind) {
    fail(name, lineno, std::string("field \"") + key + "\" has wrong type");
  }
  return *v;
}

std::uint64_t want_u64(const JVal& obj, const char* key,
                       const std::string& name, std::size_t lineno) {
  const JVal& v = want(obj, key, JVal::Num, name, lineno);
  if (v.num < 0) fail(name, lineno, std::string(key) + " is negative");
  return static_cast<std::uint64_t>(v.num);
}

std::uint64_t as_u64(const JVal& v, const std::string& name,
                     std::size_t lineno) {
  if (v.kind != JVal::Num || v.num < 0) fail(name, lineno, "expected count");
  return static_cast<std::uint64_t>(v.num);
}

std::vector<Val> vals_from_string(const std::string& s,
                                  const std::string& name,
                                  std::size_t lineno) {
  std::vector<Val> out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '0') out.push_back(Val::Zero);
    else if (c == '1') out.push_back(Val::One);
    else if (c == 'x' || c == 'X') out.push_back(Val::X);
    else fail(name, lineno, "bad value character in cycle string");
  }
  return out;
}

TestSequence parse_seq(const JVal& v, const std::string& name,
                       std::size_t lineno) {
  if (v.kind != JVal::Arr) fail(name, lineno, "sequence is not an array");
  TestSequence seq;
  seq.reserve(v.arr.size());
  for (const JVal& cyc : v.arr) {
    if (cyc.kind != JVal::Str) fail(name, lineno, "cycle is not a string");
    seq.push_back(vals_from_string(cyc.str, name, lineno));
  }
  return seq;
}

std::vector<std::size_t> parse_u64_array(const JVal& v,
                                         const std::string& name,
                                         std::size_t lineno) {
  if (v.kind != JVal::Arr) fail(name, lineno, "expected array of counts");
  std::vector<std::size_t> out;
  out.reserve(v.arr.size());
  for (const JVal& e : v.arr) {
    out.push_back(static_cast<std::size_t>(as_u64(e, name, lineno)));
  }
  return out;
}

}  // namespace

std::string serialize_checkpoint(const CheckpointData& data) {
  const PipelineResult& r = data.resume.partial;
  std::ostringstream os;

  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(data.hash));
  os << "{\"schema\":\"" << kSchema << "\",\"hash\":\"" << hex
     << "\",\"phase\":\"" << pipeline_phase_name(data.resume.phase)
     << "\",\"podem_next\":" << data.resume.podem_next << ",\"scalars\":";
  append_scalars(os, r);
  os << "}\n";

  os << "{\"section\":\"outcome\",\"data\":\"";
  for (FaultOutcome o : r.outcome) os << static_cast<int>(o);
  os << "\"}\n";

  os << "{\"section\":\"info\",\"data\":[";
  for (std::size_t i = 0; i < r.info.size(); ++i) {
    const ChainFaultInfo& ci = r.info[i];
    os << (i ? "," : "") << '[' << static_cast<int>(ci.category) << ','
       << (ci.multi_chain ? 1 : 0) << ",[";
    for (std::size_t k = 0; k < ci.locations.size(); ++k) {
      os << (k ? "," : "") << ci.locations[k].chain << ','
         << ci.locations[k].segment;
    }
    os << "]]";
  }
  os << "]}\n";

  if (data.resume.phase == PipelinePhase::S2Podem) {
    os << "{\"section\":\"comb\",\"data\":\"";
    for (char c : data.resume.comb_covered) os << (c ? '1' : '0');
    os << "\"}\n";
  }

  os << "{\"section\":\"vectors\",\"data\":[";
  for (std::size_t i = 0; i < r.vectors.size(); ++i) {
    os << (i ? "," : "") << '[';
    append_val_string(os, r.vectors[i].pi_vals);
    os << ',';
    append_val_string(os, r.vectors[i].ff_state);
    os << ']';
  }
  os << "]}\n";

  os << "{\"section\":\"curve\",\"data\":";
  append_u64_array(os, r.detection_curve);
  os << "}\n";

  os << "{\"section\":\"seqs\",\"data\":[";
  for (std::size_t i = 0; i < r.s3_sequences.size(); ++i) {
    if (i) os << ',';
    append_seq(os, r.s3_sequences[i]);
  }
  os << "]}\n";

  os << "{\"section\":\"seqfault\",\"data\":";
  append_u64_array(os, r.s3_sequence_fault);
  os << "}\n";

  os << "{\"section\":\"counters\",\"data\":{";
  for (std::size_t i = 0; i < data.counters.size(); ++i) {
    os << (i ? "," : "") << '"' << data.counters[i].first
       << "\":" << data.counters[i].second;
  }
  os << "}}\n";

  os << "{\"section\":\"hists\",\"data\":{";
  for (std::size_t i = 0; i < data.hists.size(); ++i) {
    const CheckpointData::HistState& h = data.hists[i];
    os << (i ? "," : "") << '"' << h.name << "\":{\"sum\":" << h.sum
       << ",\"buckets\":[";
    for (std::size_t k = 0; k < h.buckets.size(); ++k) {
      os << (k ? "," : "") << h.buckets[k];
    }
    os << "]}";
  }
  os << "}}\n";

  os << "{\"section\":\"attr\",\"data\":[";
  for (std::size_t i = 0; i < data.attr.size(); ++i) {
    os << (i ? "," : "") << '[' << data.attr[i].fault << ",\""
       << data.attr[i].column << "\"," << data.attr[i].count << ']';
  }
  os << "]}\n";

  // Every line before the sentinel counts: the header, the nine fixed
  // sections, the optional comb section, then one line per group/final.
  std::size_t lines = 10 + (data.resume.phase == PipelinePhase::S2Podem);

  for (const auto& [gi, go] : data.resume.groups_done) {
    os << "{\"section\":\"group\",\"gi\":" << gi << ",\"detected\":";
    append_u64_array(os, go.detected);
    os << ",\"credited\":";
    append_u64_array(os, go.credited);
    os << ",\"unverified\":" << go.unverified << ",\"seqs\":[";
    for (std::size_t i = 0; i < go.seqs.size(); ++i) {
      if (i) os << ',';
      append_seq(os, go.seqs[i]);
    }
    os << "]}\n";
    ++lines;
  }

  for (const auto& [id, fo] : data.resume.finals_done) {
    os << "{\"section\":\"final\",\"id\":" << id << ",\"verdict\":\""
       << kVerdictNames[static_cast<std::size_t>(fo.verdict)] << "\",\"seq\":";
    append_seq(os, fo.seq);
    os << "}\n";
    ++lines;
  }

  os << "{\"section\":\"end\",\"lines\":" << lines << "}\n";
  return os.str();
}

CheckpointData parse_checkpoint(const std::string& text,
                                const std::string& name) {
  CheckpointData data;
  PipelineResult& r = data.resume.partial;

  std::vector<std::string> lines;
  {
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) {
        lines.push_back(text.substr(pos));
        pos = text.size();
      } else {
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
      }
    }
    while (!lines.empty() && lines.back().empty()) lines.pop_back();
  }
  if (lines.empty()) fail(name, 1, "empty checkpoint file");

  // Header.
  {
    const JVal h = parse_line(lines[0], name, 1);
    if (h.kind != JVal::Obj) fail(name, 1, "header is not an object");
    const JVal& schema = want(h, "schema", JVal::Str, name, 1);
    if (schema.str != kSchema) {
      fail(name, 1, "unsupported checkpoint schema \"" + schema.str + "\"");
    }
    const JVal& hash = want(h, "hash", JVal::Str, name, 1);
    char* endp = nullptr;
    data.hash = std::strtoull(hash.str.c_str(), &endp, 16);
    if (hash.str.empty() || (endp && *endp != '\0')) {
      fail(name, 1, "malformed binding hash");
    }
    const JVal& phase = want(h, "phase", JVal::Str, name, 1);
    if (!pipeline_phase_from_name(phase.str, &data.resume.phase)) {
      fail(name, 1, "unknown phase \"" + phase.str + "\"");
    }
    data.resume.podem_next =
        static_cast<std::size_t>(want_u64(h, "podem_next", name, 1));
    const JVal& scalars = want(h, "scalars", JVal::Obj, name, 1);
    for (const auto& [key, v] : scalars.obj) {
      if (!assign_scalar(r, key, as_u64(v, name, 1))) {
        fail(name, 1, "unknown scalar \"" + key + "\"");
      }
    }
  }

  bool saw_end = false;
  bool saw_outcome = false, saw_info = false, saw_comb = false;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::size_t lineno = li + 1;
    if (saw_end) fail(name, lineno, "content after end sentinel");
    const JVal v = parse_line(lines[li], name, lineno);
    if (v.kind != JVal::Obj) fail(name, lineno, "line is not an object");
    const std::string section = want(v, "section", JVal::Str, name, lineno).str;

    if (section == "end") {
      const std::uint64_t n = want_u64(v, "lines", name, lineno);
      if (n != li) {
        fail(name, lineno,
             "checkpoint is corrupt: end sentinel expects " +
                 std::to_string(n) + " lines, found " + std::to_string(li));
      }
      saw_end = true;
    } else if (section == "outcome") {
      const JVal& d = want(v, "data", JVal::Str, name, lineno);
      r.outcome.clear();
      r.outcome.reserve(d.str.size());
      for (char c : d.str) {
        if (c < '0' || c > '7') fail(name, lineno, "bad outcome digit");
        r.outcome.push_back(static_cast<FaultOutcome>(c - '0'));
      }
      saw_outcome = true;
    } else if (section == "info") {
      const JVal& d = want(v, "data", JVal::Arr, name, lineno);
      r.info.clear();
      r.info.reserve(d.arr.size());
      for (const JVal& e : d.arr) {
        if (e.kind != JVal::Arr || e.arr.size() != 3 ||
            e.arr[0].kind != JVal::Num || e.arr[1].kind != JVal::Num ||
            e.arr[2].kind != JVal::Arr) {
          fail(name, lineno, "malformed fault info entry");
        }
        ChainFaultInfo ci;
        const std::uint64_t cat = as_u64(e.arr[0], name, lineno);
        if (cat > 2) fail(name, lineno, "bad fault category");
        ci.category = static_cast<ChainFaultCategory>(cat);
        ci.multi_chain = as_u64(e.arr[1], name, lineno) != 0;
        const std::vector<std::size_t> flat =
            parse_u64_array(e.arr[2], name, lineno);
        if (flat.size() % 2) fail(name, lineno, "odd location list");
        for (std::size_t k = 0; k + 1 < flat.size(); k += 2) {
          ci.locations.push_back(ChainLocation{static_cast<int>(flat[k]),
                                               static_cast<int>(flat[k + 1])});
        }
        r.info.push_back(std::move(ci));
      }
      saw_info = true;
    } else if (section == "comb") {
      const JVal& d = want(v, "data", JVal::Str, name, lineno);
      data.resume.comb_covered.clear();
      for (char c : d.str) {
        if (c != '0' && c != '1') fail(name, lineno, "bad comb-covered flag");
        data.resume.comb_covered.push_back(c == '1');
      }
      saw_comb = true;
    } else if (section == "vectors") {
      const JVal& d = want(v, "data", JVal::Arr, name, lineno);
      r.vectors.clear();
      for (const JVal& e : d.arr) {
        if (e.kind != JVal::Arr || e.arr.size() != 2 ||
            e.arr[0].kind != JVal::Str || e.arr[1].kind != JVal::Str) {
          fail(name, lineno, "malformed scan vector");
        }
        ScanVector sv;
        sv.pi_vals = vals_from_string(e.arr[0].str, name, lineno);
        sv.ff_state = vals_from_string(e.arr[1].str, name, lineno);
        r.vectors.push_back(std::move(sv));
      }
    } else if (section == "curve") {
      r.detection_curve =
          parse_u64_array(want(v, "data", JVal::Arr, name, lineno), name,
                          lineno);
    } else if (section == "seqs") {
      const JVal& d = want(v, "data", JVal::Arr, name, lineno);
      r.s3_sequences.clear();
      for (const JVal& e : d.arr) {
        r.s3_sequences.push_back(parse_seq(e, name, lineno));
      }
    } else if (section == "seqfault") {
      r.s3_sequence_fault =
          parse_u64_array(want(v, "data", JVal::Arr, name, lineno), name,
                          lineno);
    } else if (section == "counters") {
      const JVal& d = want(v, "data", JVal::Obj, name, lineno);
      for (const auto& [key, cv] : d.obj) {
        data.counters.emplace_back(key, as_u64(cv, name, lineno));
      }
    } else if (section == "hists") {
      const JVal& d = want(v, "data", JVal::Obj, name, lineno);
      for (const auto& [key, hv] : d.obj) {
        if (hv.kind != JVal::Obj) fail(name, lineno, "malformed histogram");
        CheckpointData::HistState hs;
        hs.name = key;
        hs.sum = want_u64(hv, "sum", name, lineno);
        for (std::size_t b :
             parse_u64_array(want(hv, "buckets", JVal::Arr, name, lineno),
                             name, lineno)) {
          hs.buckets.push_back(b);
        }
        data.hists.push_back(std::move(hs));
      }
    } else if (section == "attr") {
      const JVal& d = want(v, "data", JVal::Arr, name, lineno);
      for (const JVal& e : d.arr) {
        if (e.kind != JVal::Arr || e.arr.size() != 3 ||
            e.arr[1].kind != JVal::Str) {
          fail(name, lineno, "malformed attribution cell");
        }
        CheckpointData::AttrCell cell;
        cell.fault = static_cast<std::size_t>(as_u64(e.arr[0], name, lineno));
        cell.column = e.arr[1].str;
        cell.count = as_u64(e.arr[2], name, lineno);
        data.attr.push_back(std::move(cell));
      }
    } else if (section == "group") {
      const std::size_t gi =
          static_cast<std::size_t>(want_u64(v, "gi", name, lineno));
      GroupOutcome go;
      go.detected =
          parse_u64_array(want(v, "detected", JVal::Arr, name, lineno), name,
                          lineno);
      go.credited =
          parse_u64_array(want(v, "credited", JVal::Arr, name, lineno), name,
                          lineno);
      go.unverified =
          static_cast<std::size_t>(want_u64(v, "unverified", name, lineno));
      const JVal& seqs = want(v, "seqs", JVal::Arr, name, lineno);
      for (const JVal& e : seqs.arr) {
        go.seqs.push_back(parse_seq(e, name, lineno));
      }
      if (go.seqs.size() != go.detected.size()) {
        fail(name, lineno, "group sequences misaligned with detections");
      }
      if (!data.resume.groups_done.emplace(gi, std::move(go)).second) {
        fail(name, lineno, "duplicate group entry");
      }
    } else if (section == "final") {
      const std::size_t id =
          static_cast<std::size_t>(want_u64(v, "id", name, lineno));
      FinalOutcome fo;
      const std::string verdict =
          want(v, "verdict", JVal::Str, name, lineno).str;
      bool found = false;
      for (std::size_t k = 0; k < std::size(kVerdictNames); ++k) {
        if (verdict == kVerdictNames[k]) {
          fo.verdict = static_cast<FinalVerdict>(k);
          found = true;
          break;
        }
      }
      if (!found) fail(name, lineno, "unknown verdict \"" + verdict + "\"");
      fo.seq = parse_seq(want(v, "seq", JVal::Arr, name, lineno), name,
                         lineno);
      if (!data.resume.finals_done.emplace(id, std::move(fo)).second) {
        fail(name, lineno, "duplicate final entry");
      }
    } else {
      fail(name, lineno, "unknown section \"" + section + "\"");
    }
  }

  if (!saw_end) {
    fail(name, lines.size(),
         "checkpoint is truncated: missing end sentinel");
  }
  if (!saw_outcome || !saw_info) {
    fail(name, lines.size(), "checkpoint is missing fault state sections");
  }
  if (r.outcome.size() != r.info.size()) {
    fail(name, lines.size(),
         "outcome and info sections disagree on fault count");
  }
  if (data.resume.phase == PipelinePhase::S2Podem && !saw_comb) {
    fail(name, lines.size(),
         "checkpoint at phase s2.podem is missing the comb section");
  }
  return data;
}

void write_checkpoint_atomic(const std::string& path,
                             const CheckpointData& data) {
  const std::string text = serialize_checkpoint(data);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot create checkpoint temp file: " + tmp);
  }
  bool ok = write_all(fd, text.data(), text.size());
  ok = ::fsync(fd) == 0 && ok;
  ok = ::close(fd) == 0 && ok;
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("cannot write checkpoint: " + path);
  }
}

CheckpointData read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_checkpoint(ss.str(), path);
}

}  // namespace fsct
