// Shard worker process: serves the coordinator's NDJSON commands over one
// socketpair until EOF (coordinator gone) or an `exit` command.
//
// Every command runs through the same LocalExec the single-process pipeline
// uses — same engine constructions, same per-item order — over the subset of
// work named by the request, so each reply is the exact slice of the
// single-process computation for those items.  A fresh ObsRegistry per
// command collects the counter/histogram/attribution deltas that slice
// charged; the reply carries them and the coordinator folds them into the
// parent registry (all commutative sums), keeping the merged observability
// totals identical to a single-process run.
#include <sstream>
#include <string>

#include "core/io_util.h"
#include "core/json.h"
#include "core/obs.h"
#include "core/parallel.h"
#include "core/pipeline_exec.h"
#include "serve/net.h"
#include "shard/shard.h"
#include "shard/wire.h"

namespace fsct {
namespace {

const JVal& need(const JVal& req, const char* key) {
  const JVal* v = req.find(key);
  if (!v) throw std::runtime_error(std::string("request missing \"") + key +
                                   "\"");
  return *v;
}

std::size_t need_u64(const JVal& req, const char* key) {
  const JVal& v = need(req, key);
  if (v.kind != JVal::Num || v.num < 0) {
    throw std::runtime_error(std::string("bad \"") + key + "\"");
  }
  return static_cast<std::size_t>(v.num);
}

}  // namespace

int shard_worker_main(int fd, const ScanModeModel& model,
                      std::span<const Fault> faults,
                      const PipelineOptions& opt, bool want_obs,
                      bool want_attr) {
  ThreadPool pool(opt.jobs);
  LineReader reader(fd);
  std::string line;
  while (reader.next(line)) {
    std::ostringstream reply;
    try {
      JsonParser parser(line, "shard-request");
      const JVal req = parser.parse();
      if (req.kind != JVal::Obj) {
        throw std::runtime_error("request is not an object");
      }
      const JVal* cmdv = req.find("cmd");
      if (!cmdv || cmdv->kind != JVal::Str) {
        throw std::runtime_error("request has no command");
      }
      const std::string cmd = cmdv->str;
      if (cmd == "exit") {
        write_line(fd, "{\"bye\":true}");
        return 0;
      }

      // Fresh registry per command: the reply's deltas are exactly this
      // command's charges, nothing carries over between commands.
      ObsRegistry reg;
      if (want_obs && want_attr) {
        reg.request_attribution();
        reg.init_attribution(faults.size());
      }
      PipelineOptions wopt = opt;
      wopt.obs = want_obs ? &reg : nullptr;
      wopt.exec = nullptr;
      wopt.hooks = nullptr;
      wopt.resume = nullptr;
      LocalExec exec(model, faults, wopt, pool);

      if (cmd == "classify") {
        const std::vector<std::size_t> ids = wire_parse_u64s(need(req, "ids"));
        const std::vector<ChainFaultInfo> info = exec.classify(ids);
        reply << "{\"info\":[";
        for (std::size_t i = 0; i < info.size(); ++i) {
          if (i) reply << ',';
          wire_info(reply, info[i]);
        }
        reply << ']';
      } else if (cmd == "seqdet") {
        const TestSequence seq = wire_parse_seq(need(req, "seq"));
        const std::vector<std::size_t> ids = wire_parse_u64s(need(req, "ids"));
        const std::vector<char> det = exec.seq_detect(seq, ids);
        reply << "{\"det\":\"";
        for (char d : det) reply << (d ? '1' : '0');
        reply << '"';
      } else if (cmd == "s2v") {
        const JVal& vv = need(req, "vecs");
        if (vv.kind != JVal::Arr) throw std::runtime_error("bad \"vecs\"");
        std::vector<ScanVector> vectors;
        vectors.reserve(vv.arr.size());
        for (const JVal& e : vv.arr) {
          if (e.kind != JVal::Arr || e.arr.size() != 2 ||
              e.arr[0].kind != JVal::Str || e.arr[1].kind != JVal::Str) {
            throw std::runtime_error("malformed scan vector");
          }
          ScanVector sv;
          sv.pi_vals = wire_vals(e.arr[0].str);
          sv.ff_state = wire_vals(e.arr[1].str);
          vectors.push_back(std::move(sv));
        }
        const std::vector<std::size_t> ids = wire_parse_u64s(need(req, "ids"));
        const std::vector<int> first = exec.s2_first_vec(vectors, ids);
        reply << "{\"first\":[";
        for (std::size_t i = 0; i < first.size(); ++i) {
          reply << (i ? "," : "") << first[i];
        }
        reply << ']';
      } else if (cmd == "group") {
        test_phase_sleep("shard.group");
        const std::size_t gi = need_u64(req, "gi");
        AtpgGroup g;
        g.kind = static_cast<int>(need_u64(req, "kind"));
        g.fault_indices = wire_parse_u64s(need(req, "ids"));
        g.window = wire_parse_windows(need(req, "win"));
        const std::vector<AtpgGroup> groups{g};
        std::vector<GroupOutcome> done(1);
        const std::size_t todo[1] = {0};
        exec.run_groups(groups, todo, done, {});
        reply << "{\"gi\":" << gi << ",\"detected\":";
        wire_u64_array(reply, done[0].detected);
        reply << ",\"credited\":";
        wire_u64_array(reply, done[0].credited);
        reply << ",\"unverified\":" << done[0].unverified << ",\"seqs\":[";
        for (std::size_t i = 0; i < done[0].seqs.size(); ++i) {
          if (i) reply << ',';
          wire_seq(reply, done[0].seqs[i]);
        }
        reply << ']';
      } else if (cmd == "final") {
        test_phase_sleep("shard.final");
        const std::size_t k = need_u64(req, "k");
        const std::size_t id = need_u64(req, "id");
        const std::size_t fid[1] = {id};
        const std::vector<std::vector<ChainWindow>> windows{
            wire_parse_windows(need(req, "win"))};
        std::vector<FinalOutcome> fdone(1);
        const std::size_t todo[1] = {0};
        exec.run_finals(fid, windows, todo, fdone, {});
        reply << "{\"k\":" << k << ",\"verdict\":\""
              << final_verdict_name(fdone[0].verdict) << "\",\"seq\":";
        wire_seq(reply, fdone[0].seq);
      } else {
        throw std::runtime_error("unknown command: " + cmd);
      }

      if (want_obs) wire_append_deltas(reply, reg);
      reply << '}';
      if (!write_line(fd, reply.str())) return 0;  // coordinator hung up
    } catch (const std::exception& e) {
      std::ostringstream err;
      err << "{\"err\":\"" << json_escape(e.what()) << "\"}";
      if (!write_line(fd, err.str())) return 0;
    }
  }
  return 0;
}

}  // namespace fsct
