#include "shard/wire.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fsct {

void wire_val_string(std::ostream& os, const std::vector<Val>& vals) {
  os << '"';
  for (Val v : vals) os << val_char(v);
  os << '"';
}

void wire_seq(std::ostream& os, const TestSequence& seq) {
  os << '[';
  for (std::size_t c = 0; c < seq.size(); ++c) {
    if (c) os << ',';
    wire_val_string(os, seq[c]);
  }
  os << ']';
}

void wire_u64_array(std::ostream& os, const std::vector<std::size_t>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  os << ']';
}

void wire_windows(std::ostream& os, const std::vector<ChainWindow>& win) {
  os << '[';
  for (std::size_t i = 0; i < win.size(); ++i) {
    os << (i ? "," : "") << '[' << win[i].chain << ',' << win[i].min_seg << ','
       << win[i].max_seg << ']';
  }
  os << ']';
}

void wire_info(std::ostream& os, const ChainFaultInfo& ci) {
  os << '[' << static_cast<int>(ci.category) << ','
     << (ci.multi_chain ? 1 : 0) << ",[";
  for (std::size_t k = 0; k < ci.locations.size(); ++k) {
    os << (k ? "," : "") << ci.locations[k].chain << ','
       << ci.locations[k].segment;
  }
  os << "]]";
}

void wire_append_deltas(std::ostream& os, const ObsRegistry& reg) {
  os << ",\"c\":{";
  bool first = true;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Ctr c = static_cast<Ctr>(i);
    if (const std::uint64_t n = reg.total(c)) {
      os << (first ? "" : ",") << '"' << counter_name(c) << "\":" << n;
      first = false;
    }
  }
  os << "},\"h\":{";
  first = true;
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const Hist h = static_cast<Hist>(i);
    const auto buckets = reg.hist_total(h);
    const std::uint64_t sum = reg.hist_sum(h);
    bool any = sum != 0;
    for (std::uint64_t b : buckets) any |= b != 0;
    if (!any) continue;
    os << (first ? "" : ",") << '"' << hist_name(h) << "\":{\"sum\":" << sum
       << ",\"buckets\":[";
    for (std::size_t k = 0; k < buckets.size(); ++k) {
      os << (k ? "," : "") << buckets[k];
    }
    os << "]}";
    first = false;
  }
  os << "},\"a\":[";
  first = true;
  if (reg.attribution_enabled()) {
    for (std::size_t f = 0; f < reg.attribution_faults(); ++f) {
      for (std::size_t a = 0; a < kNumAttrs; ++a) {
        const Attr col = static_cast<Attr>(a);
        if (const std::uint64_t n = reg.attr_total(col, f)) {
          os << (first ? "" : ",") << '[' << f << ",\"" << attr_name(col)
             << "\"," << n << ']';
          first = false;
        }
      }
    }
  }
  os << ']';
}

std::vector<Val> wire_vals(const std::string& s) {
  std::vector<Val> out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '0') out.push_back(Val::Zero);
    else if (c == '1') out.push_back(Val::One);
    else if (c == 'x' || c == 'X') out.push_back(Val::X);
    else throw std::runtime_error("bad value character on wire");
  }
  return out;
}

TestSequence wire_parse_seq(const JVal& v) {
  if (v.kind != JVal::Arr) throw std::runtime_error("sequence is not an array");
  TestSequence seq;
  seq.reserve(v.arr.size());
  for (const JVal& cyc : v.arr) {
    if (cyc.kind != JVal::Str) throw std::runtime_error("cycle is not a string");
    seq.push_back(wire_vals(cyc.str));
  }
  return seq;
}

std::vector<std::size_t> wire_parse_u64s(const JVal& v) {
  if (v.kind != JVal::Arr) throw std::runtime_error("expected number array");
  std::vector<std::size_t> out;
  out.reserve(v.arr.size());
  for (const JVal& e : v.arr) {
    if (e.kind != JVal::Num || e.num < 0) {
      throw std::runtime_error("expected non-negative number");
    }
    out.push_back(static_cast<std::size_t>(e.num));
  }
  return out;
}

std::vector<ChainWindow> wire_parse_windows(const JVal& v) {
  if (v.kind != JVal::Arr) throw std::runtime_error("windows is not an array");
  std::vector<ChainWindow> out;
  out.reserve(v.arr.size());
  for (const JVal& e : v.arr) {
    if (e.kind != JVal::Arr || e.arr.size() != 3 ||
        e.arr[0].kind != JVal::Num || e.arr[1].kind != JVal::Num ||
        e.arr[2].kind != JVal::Num) {
      throw std::runtime_error("malformed chain window");
    }
    ChainWindow w;
    w.chain = static_cast<int>(e.arr[0].num);
    w.min_seg = static_cast<int>(e.arr[1].num);
    w.max_seg = static_cast<int>(e.arr[2].num);
    out.push_back(w);
  }
  return out;
}

ChainFaultInfo wire_parse_info(const JVal& v) {
  if (v.kind != JVal::Arr || v.arr.size() != 3 || v.arr[0].kind != JVal::Num ||
      v.arr[1].kind != JVal::Num || v.arr[2].kind != JVal::Arr) {
    throw std::runtime_error("malformed fault info");
  }
  ChainFaultInfo ci;
  const double cat = v.arr[0].num;
  if (cat < 0 || cat > 2) throw std::runtime_error("bad fault category");
  ci.category = static_cast<ChainFaultCategory>(static_cast<int>(cat));
  ci.multi_chain = v.arr[1].num != 0;
  const std::vector<std::size_t> flat = wire_parse_u64s(v.arr[2]);
  if (flat.size() % 2) throw std::runtime_error("odd location list");
  for (std::size_t k = 0; k + 1 < flat.size(); k += 2) {
    ci.locations.push_back(ChainLocation{static_cast<int>(flat[k]),
                                         static_cast<int>(flat[k + 1])});
  }
  return ci;
}

void wire_import_deltas(const JVal& reply, ObsRegistry* obs) {
  if (!obs) return;
  if (const JVal* c = reply.find("c")) {
    if (c->kind != JVal::Obj) throw std::runtime_error("malformed counter deltas");
    for (const auto& [key, v] : c->obj) {
      Ctr ctr;
      if (!counter_from_name(key, &ctr)) {
        throw std::runtime_error("unknown counter in worker reply: " + key);
      }
      if (v.kind != JVal::Num || v.num < 0) {
        throw std::runtime_error("malformed counter delta: " + key);
      }
      obs->add(ctr, static_cast<std::uint64_t>(v.num));
    }
  }
  if (const JVal* h = reply.find("h")) {
    if (h->kind != JVal::Obj) throw std::runtime_error("malformed hist deltas");
    for (const auto& [key, v] : h->obj) {
      Hist hist;
      if (!hist_from_name(key, &hist)) {
        throw std::runtime_error("unknown histogram in worker reply: " + key);
      }
      const JVal* sum = v.find("sum");
      const JVal* buckets = v.find("buckets");
      if (v.kind != JVal::Obj || !sum || sum->kind != JVal::Num || !buckets) {
        throw std::runtime_error("malformed histogram delta: " + key);
      }
      std::vector<std::uint64_t> b;
      for (std::size_t n : wire_parse_u64s(*buckets)) b.push_back(n);
      obs->import_hist(hist, b, static_cast<std::uint64_t>(sum->num));
    }
  }
  if (const JVal* a = reply.find("a")) {
    if (a->kind != JVal::Arr) throw std::runtime_error("malformed attr deltas");
    for (const JVal& cell : a->arr) {
      if (cell.kind != JVal::Arr || cell.arr.size() != 3 ||
          cell.arr[0].kind != JVal::Num || cell.arr[1].kind != JVal::Str ||
          cell.arr[2].kind != JVal::Num) {
        throw std::runtime_error("malformed attribution cell");
      }
      Attr col;
      if (!attr_from_name(cell.arr[1].str, &col)) {
        throw std::runtime_error("unknown attribution column: " +
                                 cell.arr[1].str);
      }
      obs->charge(col, static_cast<std::size_t>(cell.arr[0].num),
                  static_cast<std::uint64_t>(cell.arr[2].num));
    }
  }
}

namespace {
constexpr const char* kVerdictNames[] = {
    "detected", "unverified", "untestable", "aborted", "nosites",
};
}  // namespace

const char* final_verdict_name(FinalVerdict v) {
  return kVerdictNames[static_cast<std::size_t>(v)];
}

bool final_verdict_from_name(const std::string& name, FinalVerdict* out) {
  for (std::size_t k = 0; k < std::size(kVerdictNames); ++k) {
    if (name == kVerdictNames[k]) {
      *out = static_cast<FinalVerdict>(k);
      return true;
    }
  }
  return false;
}

bool counter_from_name(const std::string& name, Ctr* out) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (name == counter_name(static_cast<Ctr>(i))) {
      *out = static_cast<Ctr>(i);
      return true;
    }
  }
  return false;
}

bool hist_from_name(const std::string& name, Hist* out) {
  for (std::size_t i = 0; i < kNumHists; ++i) {
    if (name == hist_name(static_cast<Hist>(i))) {
      *out = static_cast<Hist>(i);
      return true;
    }
  }
  return false;
}

bool attr_from_name(const std::string& name, Attr* out) {
  for (std::size_t i = 0; i < kNumAttrs; ++i) {
    if (name == attr_name(static_cast<Attr>(i))) {
      *out = static_cast<Attr>(i);
      return true;
    }
  }
  return false;
}

}  // namespace fsct
