#include "sim/seq_sim.h"

#include <stdexcept>

namespace fsct {

SeqSim::SeqSim(const Levelizer& lv)
    : lv_(lv),
      comb_(lv),
      state_(lv.netlist().dffs().size(), Val::X),
      values_(lv.netlist().size(), Val::X) {}

void SeqSim::reset(Val v) { state_.assign(state_.size(), v); }

void SeqSim::set_state(std::span<const Val> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("set_state: size mismatch");
  }
  state_.assign(state.begin(), state.end());
}

const std::vector<Val>& SeqSim::step(std::span<const Val> pi_values,
                                     std::span<const Injection> inj) {
  const Netlist& nl = lv_.netlist();
  if (pi_values.size() != nl.inputs().size()) {
    throw std::invalid_argument("step: PI vector size mismatch");
  }
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    values_[nl.inputs()[i]] = pi_values[i];
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    values_[nl.dffs()[i]] = state_[i];
  }
  comb_.run(values_, inj);
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = comb_.d_value(nl.dffs()[i], values_, inj);
  }
  return values_;
}

PackedSeqSim::PackedSeqSim(const Levelizer& lv)
    : lv_(lv),
      comb_(lv),
      state_(lv.netlist().dffs().size()),
      values_(lv.netlist().size()) {}

void PackedSeqSim::reset(Val v) {
  state_.assign(state_.size(), PackedVal::broadcast(v));
}

void PackedSeqSim::set_state(std::span<const PackedVal> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("set_state: size mismatch");
  }
  state_.assign(state.begin(), state.end());
}

const std::vector<PackedVal>& PackedSeqSim::step(
    std::span<const PackedVal> pi_values,
    std::span<const PackedInjection> inj) {
  const Netlist& nl = lv_.netlist();
  if (pi_values.size() != nl.inputs().size()) {
    throw std::invalid_argument("step: PI vector size mismatch");
  }
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    values_[nl.inputs()[i]] = pi_values[i];
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    values_[nl.dffs()[i]] = state_[i];
  }
  comb_.run(values_, inj);
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = comb_.d_value(nl.dffs()[i], values_, inj);
  }
  return values_;
}

}  // namespace fsct
