// Cycle-accurate sequential simulation on top of the levelized combinational
// simulators.  One step() = set PI values, settle combinational logic, read
// outputs, then clock every DFF (state <- D).
//
// Stuck-at faults are permanent: pass the same injection span to every step.
#pragma once

#include <span>
#include <vector>

#include "sim/comb_sim.h"

namespace fsct {

/// Scalar 3-valued sequential simulator.
class SeqSim {
 public:
  explicit SeqSim(const Levelizer& lv);

  /// Sets every flip-flop to `v` (power-up state is X).
  void reset(Val v = Val::X);

  /// Sets flip-flop states, indexed in netlist dff() order.
  void set_state(std::span<const Val> state);

  /// Current flip-flop states in netlist dff() order.
  const std::vector<Val>& state() const { return state_; }

  /// Simulates one clock cycle.  `pi_values` indexed in netlist inputs()
  /// order.  Returns all net values as settled *before* the clock edge (PO
  /// values are sampled from this).  Afterwards state() holds the post-edge
  /// flip-flop contents.
  const std::vector<Val>& step(std::span<const Val> pi_values,
                               std::span<const Injection> inj = {});

  /// Net values from the last step().
  const std::vector<Val>& values() const { return values_; }

  const Levelizer& levelizer() const { return lv_; }

 private:
  const Levelizer& lv_;
  CombSim comb_;
  std::vector<Val> state_;
  std::vector<Val> values_;
};

/// 64-way packed sequential simulator (64 independent machines: used for
/// parallel-fault sequential fault simulation, bit 0 conventionally the good
/// machine).
class PackedSeqSim {
 public:
  explicit PackedSeqSim(const Levelizer& lv);

  void reset(Val v = Val::X);
  void set_state(std::span<const PackedVal> state);
  const std::vector<PackedVal>& state() const { return state_; }

  const std::vector<PackedVal>& step(std::span<const PackedVal> pi_values,
                                     std::span<const PackedInjection> inj = {});

  const std::vector<PackedVal>& values() const { return values_; }

 private:
  const Levelizer& lv_;
  PackedCombSim comb_;
  std::vector<PackedVal> state_;
  std::vector<PackedVal> values_;
};

}  // namespace fsct
