// Levelized combinational simulation, scalar (3-valued) and 64-way packed,
// with stuck-at fault injection hooks.
//
// The simulators evaluate every combinational gate of a Levelizer snapshot in
// topological order.  Source nodes (PIs, constants, DFF Q outputs) must be
// pre-set by the caller in the value vector; constants are overwritten with
// their fixed value for convenience.
#pragma once

#include <span>
#include <vector>

#include "netlist/levelize.h"
#include "sim/value.h"

namespace fsct {

/// A stuck value forced onto a circuit location during simulation.
/// pin == -1 forces the *output* of `node` (a stem fault; also works on PIs
/// and DFF outputs).  pin >= 0 forces what `node` *sees* on fanin pin `pin`
/// (a branch/pin fault; other fanouts of the driver are unaffected).
struct Injection {
  NodeId node = kNullNode;
  int pin = -1;
  Val value = Val::X;
};

/// Scalar 3-valued levelized simulator.
class CombSim {
 public:
  explicit CombSim(const Levelizer& lv) : lv_(lv) {}

  /// Evaluates all combinational gates into `values` (sized netlist.size();
  /// sources pre-set by caller).  `inj` forces stuck values; a DFF node's
  /// entry in `values` is its Q (source) value and is NOT recomputed — the
  /// D-input value is read via d_value().
  void run(std::vector<Val>& values, std::span<const Injection> inj = {}) const;

  /// Value presented at a DFF's D pin after run(), honouring pin injections
  /// on the DFF itself.
  Val d_value(NodeId dff, const std::vector<Val>& values,
              std::span<const Injection> inj = {}) const;

  const Levelizer& levelizer() const { return lv_; }

 private:
  const Levelizer& lv_;
};

/// Packed injection: forces `value` on the patterns selected by `mask`.
struct PackedInjection {
  NodeId node = kNullNode;
  int pin = -1;
  std::uint64_t mask = 0;
  Val value = Val::X;
};

/// 64-way packed levelized simulator (one bit position = one pattern, or one
/// faulty machine in parallel-fault mode).
class PackedCombSim {
 public:
  explicit PackedCombSim(const Levelizer& lv)
      : lv_(lv), injected_(lv.netlist().size(), 0) {}

  void run(std::vector<PackedVal>& values,
           std::span<const PackedInjection> inj = {}) const;

  /// Packed value at a DFF's D pin after run(), honouring pin injections.
  PackedVal d_value(NodeId dff, const std::vector<PackedVal>& values,
                    std::span<const PackedInjection> inj = {}) const;

  const Levelizer& levelizer() const { return lv_; }

 private:
  const Levelizer& lv_;
  mutable std::vector<char> injected_;  // per-node "has injection" scratch
};

}  // namespace fsct
