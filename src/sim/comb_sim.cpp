#include "sim/comb_sim.h"

namespace fsct {
namespace {

// Applies every injection matching (node, pin) to the packed value.  Multiple
// matches are legal: parallel-fault simulation packs many faulty machines in
// one word, and two of them may target the same pin with different values.
void apply_packed(std::span<const PackedInjection> inj, NodeId node, int pin,
                  PackedVal& v) {
  for (const PackedInjection& i : inj) {
    if (i.node != node || i.pin != pin) continue;
    v.zero &= ~i.mask;
    v.one &= ~i.mask;
    if (i.value == Val::Zero) v.zero |= i.mask;
    if (i.value == Val::One) v.one |= i.mask;
  }
}

// Scalar: the last matching injection wins (single-fault use has one match).
bool apply_scalar(std::span<const Injection> inj, NodeId node, int pin,
                  Val& v) {
  bool hit = false;
  for (const Injection& i : inj) {
    if (i.node == node && i.pin == pin) {
      v = i.value;
      hit = true;
    }
  }
  return hit;
}

}  // namespace

void CombSim::run(std::vector<Val>& values,
                  std::span<const Injection> inj) const {
  const Netlist& nl = lv_.netlist();
  for (NodeId id = 0; id < nl.size(); ++id) {
    if (nl.type(id) == GateType::Const0) values[id] = Val::Zero;
    if (nl.type(id) == GateType::Const1) values[id] = Val::One;
  }
  for (const Injection& i : inj) {
    if (i.pin == -1 && !is_combinational(nl.type(i.node))) {
      values[i.node] = i.value;
    }
  }
  Val ins[64];
  for (NodeId id : lv_.topo_order()) {
    const auto fins = nl.fanins(id);
    for (std::size_t p = 0; p < fins.size(); ++p) {
      ins[p] = values[fins[p]];
      apply_scalar(inj, id, static_cast<int>(p), ins[p]);
    }
    Val out = eval_gate(nl.type(id), ins, fins.size());
    apply_scalar(inj, id, -1, out);
    values[id] = out;
  }
}

Val CombSim::d_value(NodeId dff, const std::vector<Val>& values,
                     std::span<const Injection> inj) const {
  Val v = values[lv_.netlist().fanins(dff)[0]];
  apply_scalar(inj, dff, 0, v);
  return v;
}

void PackedCombSim::run(std::vector<PackedVal>& values,
                        std::span<const PackedInjection> inj) const {
  const Netlist& nl = lv_.netlist();
  for (NodeId id = 0; id < nl.size(); ++id) {
    if (nl.type(id) == GateType::Const0) {
      values[id] = PackedVal::broadcast(Val::Zero);
    }
    if (nl.type(id) == GateType::Const1) {
      values[id] = PackedVal::broadcast(Val::One);
    }
  }
  for (const PackedInjection& i : inj) {
    if (i.pin == -1 && !is_combinational(nl.type(i.node))) {
      PackedVal& v = values[i.node];
      v.zero &= ~i.mask;
      v.one &= ~i.mask;
      if (i.value == Val::Zero) v.zero |= i.mask;
      if (i.value == Val::One) v.one |= i.mask;
    }
  }
  for (const PackedInjection& i : inj) injected_[i.node] = 1;
  PackedVal ins[64];
  for (NodeId id : lv_.topo_order()) {
    const auto fins = nl.fanins(id);
    const bool hit = injected_[id] != 0;
    for (std::size_t p = 0; p < fins.size(); ++p) {
      ins[p] = values[fins[p]];
      if (hit) apply_packed(inj, id, static_cast<int>(p), ins[p]);
    }
    PackedVal out = eval_gate_packed(nl.type(id), ins, fins.size());
    if (hit) apply_packed(inj, id, -1, out);
    values[id] = out;
  }
  for (const PackedInjection& i : inj) injected_[i.node] = 0;
}

PackedVal PackedCombSim::d_value(NodeId dff,
                                 const std::vector<PackedVal>& values,
                                 std::span<const PackedInjection> inj) const {
  PackedVal v = values[lv_.netlist().fanins(dff)[0]];
  apply_packed(inj, dff, 0, v);
  return v;
}

}  // namespace fsct
