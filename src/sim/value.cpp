#include "sim/value.h"

#include <stdexcept>

namespace fsct {

char val_char(Val v) {
  switch (v) {
    case Val::Zero: return '0';
    case Val::One: return '1';
    default: return 'X';
  }
}

Val val_from_char(char c) {
  switch (c) {
    case '0': return Val::Zero;
    case '1': return Val::One;
    case 'x':
    case 'X': return Val::X;
    default: throw std::invalid_argument("bad value character");
  }
}

namespace {

PackedVal not_p(PackedVal a) { return {a.one, a.zero}; }

PackedVal and_reduce_p(const PackedVal* ins, std::size_t n) {
  PackedVal r = PackedVal::broadcast(Val::One);
  for (std::size_t i = 0; i < n; ++i) {
    r = {r.zero | ins[i].zero, r.one & ins[i].one};
  }
  return r;
}

PackedVal or_reduce_p(const PackedVal* ins, std::size_t n) {
  PackedVal r = PackedVal::broadcast(Val::Zero);
  for (std::size_t i = 0; i < n; ++i) {
    r = {r.zero & ins[i].zero, r.one | ins[i].one};
  }
  return r;
}

PackedVal xor2_p(PackedVal a, PackedVal b) {
  return {(a.zero & b.zero) | (a.one & b.one),
          (a.zero & b.one) | (a.one & b.zero)};
}

PackedVal xor_reduce_p(const PackedVal* ins, std::size_t n) {
  PackedVal r = PackedVal::broadcast(Val::Zero);
  for (std::size_t i = 0; i < n; ++i) r = xor2_p(r, ins[i]);
  return r;
}

}  // namespace

PackedVal eval_gate_packed(GateType t, const PackedVal* ins, std::size_t n) {
  switch (t) {
    case GateType::Const0: return PackedVal::broadcast(Val::Zero);
    case GateType::Const1: return PackedVal::broadcast(Val::One);
    case GateType::Buf:
    case GateType::Dff: return ins[0];
    case GateType::Not: return not_p(ins[0]);
    case GateType::And: return and_reduce_p(ins, n);
    case GateType::Nand: return not_p(and_reduce_p(ins, n));
    case GateType::Or: return or_reduce_p(ins, n);
    case GateType::Nor: return not_p(or_reduce_p(ins, n));
    case GateType::Xor: return xor_reduce_p(ins, n);
    case GateType::Xnor: return not_p(xor_reduce_p(ins, n));
    case GateType::Mux: {
      const PackedVal s = ins[0], d0 = ins[1], d1 = ins[2];
      // sel=0 -> d0, sel=1 -> d1, sel=X -> agreement of d0/d1.
      const std::uint64_t agree0 = d0.zero & d1.zero;
      const std::uint64_t agree1 = d0.one & d1.one;
      return {(s.zero & d0.zero) | (s.one & d1.zero) |
                  (~s.zero & ~s.one & agree0),
              (s.zero & d0.one) | (s.one & d1.one) |
                  (~s.zero & ~s.one & agree1)};
    }
    case GateType::Input:
      throw std::logic_error("eval_gate_packed on a primary input");
  }
  return {};
}

}  // namespace fsct
