// Structure-of-arrays compilation of a levelized netlist, plus the W-lane
// (multi-word) packed value types and simulators built on top of it.
//
// A SoaCircuit is compiled once per Levelizer snapshot and then shared
// read-only across threads (std::shared_ptr<const SoaCircuit>).  It flattens
// everything the hot simulation kernels touch into contiguous arrays:
//
//   * per-node gate type (one byte),
//   * fanin ids in one flat array with per-node offsets,
//   * *combinational-only* fanout ids in one flat array with per-node
//     offsets, preserving Levelizer order (one entry per connected pin) so
//     event-driven propagation visits sinks in exactly the order the
//     vector-of-vectors Levelizer API produced,
//   * an evaluation order that is level-major and type-sorted within each
//     level, expressed as same-type runs so the gate-type switch sits
//     outside the inner loop,
//   * cached source lists (inputs, constants, flip-flops and their D
//     drivers).
//
// On top of it, WideVal<NW> generalises PackedVal from one 64-bit word to NW
// words (NW in {1, 4, 8} -> 64 / 256 / 512 lanes).  The words are plain
// alignas'd uint64_t arrays: every per-lane operation is a fixed-trip-count
// loop over NW words, which the compiler auto-vectorises to whatever the
// target ISA offers — no intrinsics, identical results at every width.
//
// Lane-width selection: the compile-time default FSCT_DEFAULT_SIMD_WIDTH
// (CMake cache variable FSCT_SIMD_WIDTH) seeds a process-global default that
// `--simd-width` overrides at runtime; engines pick it up at construction.
// Width never changes results, only how many fault machines ride per pass.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "netlist/levelize.h"
#include "sim/comb_sim.h"
#include "sim/value.h"

namespace fsct {

/// Supported lane widths in bits (64-bit words per value plane: 1, 4, 8).
inline constexpr int kSimdWidths[] = {64, 256, 512};

inline bool is_valid_simd_width(int bits) {
  return bits == 64 || bits == 256 || bits == 512;
}

/// Process-global default lane width in bits.  Seeded from the compile-time
/// FSCT_DEFAULT_SIMD_WIDTH; set_default_simd_width (the CLI's --simd-width)
/// overrides it for every engine constructed afterwards.
int default_simd_width();
void set_default_simd_width(int bits);  ///< throws std::invalid_argument

/// Process-lifetime count of *actual* SoA compilations (memo hits through
/// SoaCircuit::compile do not increment it).  The serve cache-hit tests
/// assert a delta of zero across a repeated request.
std::uint64_t soa_compile_count();

/// One maximal same-type run of the evaluation order: order()[begin, end)
/// all have gate type `type` and live on the same level.
struct SoaRun {
  GateType type;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// Immutable flat view of a levelized netlist (see file comment).
class SoaCircuit {
 public:
  /// Compiles the snapshot.  O(nodes + edges); the result is immutable and
  /// safe to share across threads.  Memoized per Levelizer snapshot (via
  /// Levelizer::memo()): repeated calls for the same snapshot — every engine
  /// of one pipeline run, every request served from a cached model — return
  /// the same shared compilation.
  static std::shared_ptr<const SoaCircuit> compile(const Levelizer& lv);

  std::size_t size() const { return type_.size(); }
  GateType type(NodeId id) const { return type_[id]; }
  int level(NodeId id) const { return level_[id]; }
  int max_level() const { return max_level_; }

  const NodeId* fanin(NodeId id) const { return fanin_.data() + fanin_off_[id]; }
  std::uint32_t fanin_count(NodeId id) const {
    return fanin_off_[id + 1] - fanin_off_[id];
  }

  /// Combinational sinks of `id` only, one entry per connected pin, in
  /// Levelizer fanout order.  (DFF sinks are excluded: simulation reads a
  /// DFF's D through dff_d(), and event propagation stops at state.)
  const NodeId* fanout(NodeId id) const {
    return fanout_.data() + fanout_off_[id];
  }
  std::uint32_t fanout_count(NodeId id) const {
    return fanout_off_[id + 1] - fanout_off_[id];
  }

  /// Level-major evaluation order of all combinational gates, type-sorted
  /// within each level; any level-compatible order evaluates identically.
  const std::vector<NodeId>& order() const { return order_; }
  /// Maximal same-type runs covering order() (switch-outside-the-loop).
  const std::vector<SoaRun>& runs() const { return runs_; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& dffs() const { return dffs_; }
  /// D-pin driver of dffs()[i].
  const std::vector<NodeId>& dff_d() const { return dff_d_; }
  const std::vector<NodeId>& const0() const { return const0_; }
  const std::vector<NodeId>& const1() const { return const1_; }

 private:
  SoaCircuit() = default;

  std::vector<GateType> type_;
  std::vector<int> level_;
  int max_level_ = 0;
  std::vector<std::uint32_t> fanin_off_;   // size() + 1
  std::vector<NodeId> fanin_;
  std::vector<std::uint32_t> fanout_off_;  // size() + 1
  std::vector<NodeId> fanout_;
  std::vector<NodeId> order_;
  std::vector<SoaRun> runs_;
  std::vector<NodeId> inputs_, dffs_, dff_d_, const0_, const1_;
};

/// NW-word packed ternary value: lane L lives at bit (L % 64) of word
/// (L / 64) in both planes.  Same encoding and invariant as PackedVal
/// ((zero & one) == 0 per word); NW == 1 is layout-identical to PackedVal.
template <int NW>
struct alignas((NW * 8 > 64) ? 64 : NW * 8) WideVal {
  static_assert(NW == 1 || NW == 4 || NW == 8, "lanes = 64 * NW in {64,256,512}");
  static constexpr int kWords = NW;
  static constexpr unsigned kLanes = 64u * NW;

  std::uint64_t zero[NW];
  std::uint64_t one[NW];

  static WideVal broadcast(Val v) {
    WideVal r;
    const std::uint64_t z = (v == Val::Zero) ? ~0ull : 0ull;
    const std::uint64_t o = (v == Val::One) ? ~0ull : 0ull;
    for (int w = 0; w < NW; ++w) {
      r.zero[w] = z;
      r.one[w] = o;
    }
    return r;
  }
  Val at(unsigned lane) const {
    const std::uint64_t m = 1ull << (lane & 63u);
    const unsigned w = lane >> 6;
    if (zero[w] & m) return Val::Zero;
    if (one[w] & m) return Val::One;
    return Val::X;
  }
  void set(unsigned lane, Val v) {
    const std::uint64_t m = 1ull << (lane & 63u);
    const unsigned w = lane >> 6;
    zero[w] &= ~m;
    one[w] &= ~m;
    if (v == Val::Zero) zero[w] |= m;
    if (v == Val::One) one[w] |= m;
  }
  friend bool operator==(const WideVal&, const WideVal&) = default;
};

/// Packed injection over NW words: forces `value` on the lanes of `mask`
/// at (node, pin) — pin == -1 is the node's output stem.
template <int NW>
struct WideInjection {
  NodeId node = kNullNode;
  int pin = -1;
  Val value = Val::X;
  std::uint64_t mask[NW] = {};

  void force(WideVal<NW>& v) const {
    const std::uint64_t z = (value == Val::Zero) ? ~0ull : 0ull;
    const std::uint64_t o = (value == Val::One) ? ~0ull : 0ull;
    for (int w = 0; w < NW; ++w) {
      v.zero[w] = (v.zero[w] & ~mask[w]) | (z & mask[w]);
      v.one[w] = (v.one[w] & ~mask[w]) | (o & mask[w]);
    }
  }
};

namespace wide_detail {

template <int NW>
inline WideVal<NW> not_w(const WideVal<NW>& a) {
  WideVal<NW> r;
  for (int w = 0; w < NW; ++w) {
    r.zero[w] = a.one[w];
    r.one[w] = a.zero[w];
  }
  return r;
}

template <int NW>
inline void and_acc(WideVal<NW>& r, const WideVal<NW>& a) {
  for (int w = 0; w < NW; ++w) {
    r.zero[w] |= a.zero[w];
    r.one[w] &= a.one[w];
  }
}

template <int NW>
inline void or_acc(WideVal<NW>& r, const WideVal<NW>& a) {
  for (int w = 0; w < NW; ++w) {
    r.zero[w] &= a.zero[w];
    r.one[w] |= a.one[w];
  }
}

template <int NW>
inline void xor_acc(WideVal<NW>& r, const WideVal<NW>& a) {
  for (int w = 0; w < NW; ++w) {
    const std::uint64_t z = (r.zero[w] & a.zero[w]) | (r.one[w] & a.one[w]);
    const std::uint64_t o = (r.zero[w] & a.one[w]) | (r.one[w] & a.zero[w]);
    r.zero[w] = z;
    r.one[w] = o;
  }
}

template <int NW>
inline WideVal<NW> mux_w(const WideVal<NW>& s, const WideVal<NW>& d0,
                         const WideVal<NW>& d1) {
  WideVal<NW> r;
  for (int w = 0; w < NW; ++w) {
    const std::uint64_t sx = ~s.zero[w] & ~s.one[w];
    r.zero[w] = (s.zero[w] & d0.zero[w]) | (s.one[w] & d1.zero[w]) |
                (sx & d0.zero[w] & d1.zero[w]);
    r.one[w] = (s.zero[w] & d0.one[w]) | (s.one[w] & d1.one[w]) |
               (sx & d0.one[w] & d1.one[w]);
  }
  return r;
}

}  // namespace wide_detail

/// Evaluates one gate over NW-word packed fanins (generic slow path; the
/// WideSim run loop open-codes the common types per run).
template <int NW>
WideVal<NW> eval_gate_wide(GateType t, const WideVal<NW>* ins, std::size_t n) {
  using namespace wide_detail;
  switch (t) {
    case GateType::Const0: return WideVal<NW>::broadcast(Val::Zero);
    case GateType::Const1: return WideVal<NW>::broadcast(Val::One);
    case GateType::Buf:
    case GateType::Dff: return ins[0];
    case GateType::Not: return not_w(ins[0]);
    case GateType::And:
    case GateType::Nand: {
      WideVal<NW> r = ins[0];
      for (std::size_t i = 1; i < n; ++i) and_acc(r, ins[i]);
      return t == GateType::Nand ? not_w(r) : r;
    }
    case GateType::Or:
    case GateType::Nor: {
      WideVal<NW> r = ins[0];
      for (std::size_t i = 1; i < n; ++i) or_acc(r, ins[i]);
      return t == GateType::Nor ? not_w(r) : r;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      WideVal<NW> r = ins[0];
      for (std::size_t i = 1; i < n; ++i) xor_acc(r, ins[i]);
      return t == GateType::Xnor ? not_w(r) : r;
    }
    case GateType::Mux: return mux_w(ins[0], ins[1], ins[2]);
    default: return WideVal<NW>::broadcast(Val::X);  // Input: never evaluated
  }
}

/// NW-word packed levelized combinational simulator — the W-lane counterpart
/// of PackedCombSim, on the SoA core.  Same contract: sources are pre-set by
/// the caller (constants are overwritten for convenience), run() evaluates
/// every combinational gate, injections force stuck values.
template <int NW>
class WideSim {
 public:
  explicit WideSim(std::shared_ptr<const SoaCircuit> c)
      : c_(std::move(c)),
        values_(c_->size(), WideVal<NW>::broadcast(Val::X)),
        injected_(c_->size(), 0) {}

  const SoaCircuit& circuit() const { return *c_; }
  WideVal<NW>& value(NodeId id) { return values_[id]; }
  const WideVal<NW>& value(NodeId id) const { return values_[id]; }

  void run(std::span<const WideInjection<NW>> inj = {}) {
    const SoaCircuit& c = *c_;
    for (NodeId id : c.const0()) values_[id] = WideVal<NW>::broadcast(Val::Zero);
    for (NodeId id : c.const1()) values_[id] = WideVal<NW>::broadcast(Val::One);
    for (const WideInjection<NW>& i : inj) {
      if (i.pin == -1 && !is_combinational(c.type(i.node))) {
        i.force(values_[i.node]);
      }
      injected_[i.node] = 1;
    }
    for (const SoaRun& r : c.runs()) {
      switch (r.type) {
        case GateType::Buf:
          for (std::uint32_t i = r.begin; i < r.end; ++i) {
            const NodeId id = c.order()[i];
            if (injected_[id]) { eval_injected(id, inj); continue; }
            values_[id] = values_[c.fanin(id)[0]];
          }
          break;
        case GateType::Not:
          for (std::uint32_t i = r.begin; i < r.end; ++i) {
            const NodeId id = c.order()[i];
            if (injected_[id]) { eval_injected(id, inj); continue; }
            values_[id] = wide_detail::not_w(values_[c.fanin(id)[0]]);
          }
          break;
        case GateType::And:
        case GateType::Nand:
          for (std::uint32_t i = r.begin; i < r.end; ++i) {
            const NodeId id = c.order()[i];
            if (injected_[id]) { eval_injected(id, inj); continue; }
            const NodeId* f = c.fanin(id);
            const std::uint32_t n = c.fanin_count(id);
            WideVal<NW> v = values_[f[0]];
            for (std::uint32_t k = 1; k < n; ++k) {
              wide_detail::and_acc(v, values_[f[k]]);
            }
            values_[id] = r.type == GateType::Nand ? wide_detail::not_w(v) : v;
          }
          break;
        case GateType::Or:
        case GateType::Nor:
          for (std::uint32_t i = r.begin; i < r.end; ++i) {
            const NodeId id = c.order()[i];
            if (injected_[id]) { eval_injected(id, inj); continue; }
            const NodeId* f = c.fanin(id);
            const std::uint32_t n = c.fanin_count(id);
            WideVal<NW> v = values_[f[0]];
            for (std::uint32_t k = 1; k < n; ++k) {
              wide_detail::or_acc(v, values_[f[k]]);
            }
            values_[id] = r.type == GateType::Nor ? wide_detail::not_w(v) : v;
          }
          break;
        default:
          for (std::uint32_t i = r.begin; i < r.end; ++i) {
            const NodeId id = c.order()[i];
            if (injected_[id]) { eval_injected(id, inj); continue; }
            const NodeId* f = c.fanin(id);
            const std::uint32_t n = c.fanin_count(id);
            WideVal<NW> ins[64];
            for (std::uint32_t k = 0; k < n; ++k) ins[k] = values_[f[k]];
            values_[id] = eval_gate_wide<NW>(r.type, ins, n);
          }
          break;
      }
    }
    for (const WideInjection<NW>& i : inj) injected_[i.node] = 0;
  }

  /// Value at a DFF's D pin after run(), honouring pin injections on the DFF.
  WideVal<NW> d_value(std::size_t dff_index,
                      std::span<const WideInjection<NW>> inj = {}) const {
    const NodeId dff = c_->dffs()[dff_index];
    WideVal<NW> v = values_[c_->dff_d()[dff_index]];
    for (const WideInjection<NW>& i : inj) {
      if (i.node == dff && i.pin == 0) i.force(v);
    }
    return v;
  }

 private:
  void eval_injected(NodeId id, std::span<const WideInjection<NW>> inj) {
    const SoaCircuit& c = *c_;
    const NodeId* f = c.fanin(id);
    const std::uint32_t n = c.fanin_count(id);
    WideVal<NW> ins[64];
    for (std::uint32_t k = 0; k < n; ++k) ins[k] = values_[f[k]];
    for (const WideInjection<NW>& i : inj) {
      if (i.node == id && i.pin >= 0) i.force(ins[i.pin]);
    }
    WideVal<NW> out = eval_gate_wide<NW>(c.type(id), ins, n);
    for (const WideInjection<NW>& i : inj) {
      if (i.node == id && i.pin == -1) i.force(out);
    }
    values_[id] = out;
  }

  std::shared_ptr<const SoaCircuit> c_;
  std::vector<WideVal<NW>> values_;
  std::vector<char> injected_;
};

/// W-lane sequential stepper (the wide counterpart of PackedSeqSim): per
/// cycle, load PI lanes, apply the flip-flop state, evaluate, clock.
template <int NW>
class WideSeqSim {
 public:
  explicit WideSeqSim(std::shared_ptr<const SoaCircuit> c)
      : sim_(std::move(c)), state_(sim_.circuit().dffs().size()) {}

  const SoaCircuit& circuit() const { return sim_.circuit(); }

  void reset(Val v) { state_.assign(state_.size(), WideVal<NW>::broadcast(v)); }

  /// `pi_values` indexed in circuit inputs() order.
  const WideSim<NW>& step(std::span<const WideVal<NW>> pi_values,
                          std::span<const WideInjection<NW>> inj = {}) {
    const SoaCircuit& c = sim_.circuit();
    if (pi_values.size() != c.inputs().size()) {
      throw std::invalid_argument("step: PI vector size mismatch");
    }
    for (std::size_t i = 0; i < pi_values.size(); ++i) {
      sim_.value(c.inputs()[i]) = pi_values[i];
    }
    for (std::size_t i = 0; i < state_.size(); ++i) {
      sim_.value(c.dffs()[i]) = state_[i];
    }
    sim_.run(inj);
    for (std::size_t i = 0; i < state_.size(); ++i) {
      state_[i] = sim_.d_value(i, inj);
    }
    return sim_;
  }

 private:
  WideSim<NW> sim_;
  std::vector<WideVal<NW>> state_;
};

}  // namespace fsct
