// Three-valued logic (0 / 1 / X) and its 64-way packed counterpart.
//
// Scalar values drive the classifier, the serial fault simulators and ATPG;
// packed values drive the parallel-pattern fault simulator (PPSFP), where one
// PackedVal carries the same net across 64 test patterns.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace fsct {

/// Ternary logic value.
enum class Val : std::uint8_t { Zero = 0, One = 1, X = 2 };

inline Val operator!(Val v) {
  switch (v) {
    case Val::Zero: return Val::One;
    case Val::One: return Val::Zero;
    default: return Val::X;
  }
}

/// 'X' / '0' / '1' for logs and tests.
char val_char(Val v);

/// Parses '0' / '1' / 'x' / 'X'; throws on anything else.
Val val_from_char(char c);

/// Returns the controlling value of an AND/NAND (0) or OR/NOR (1) style gate;
/// Val::X when the gate has no controlling value (XOR/XNOR/BUF/NOT/MUX).
/// Inline: called tens of millions of times per ATPG-heavy pipeline run.
inline Val controlling_value(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand: return Val::Zero;
    case GateType::Or:
    case GateType::Nor: return Val::One;
    default: return Val::X;
  }
}

/// True when the gate output is the complement of its "natural" function
/// (NAND, NOR, XNOR, NOT).
inline bool is_inverting(GateType t) {
  return t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor ||
         t == GateType::Not;
}

namespace detail {

inline Val and_reduce(const Val* ins, std::size_t n) {
  bool saw_x = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (ins[i] == Val::Zero) return Val::Zero;
    if (ins[i] == Val::X) saw_x = true;
  }
  return saw_x ? Val::X : Val::One;
}

inline Val or_reduce(const Val* ins, std::size_t n) {
  bool saw_x = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (ins[i] == Val::One) return Val::One;
    if (ins[i] == Val::X) saw_x = true;
  }
  return saw_x ? Val::X : Val::Zero;
}

inline Val xor_reduce(const Val* ins, std::size_t n) {
  bool parity = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (ins[i] == Val::X) return Val::X;
    parity ^= (ins[i] == Val::One);
  }
  return parity ? Val::One : Val::Zero;
}

}  // namespace detail

/// Evaluates one gate in 3-valued logic. `ins` are the fanin values in pin
/// order; `n` is the pin count.  Sources (Input) must not be passed here.
/// Inline: the single hottest scalar primitive (event-driven pair simulation
/// and serial fault simulation both bottom out here).
inline Val eval_gate(GateType t, const Val* ins, std::size_t n) {
  switch (t) {
    case GateType::Const0: return Val::Zero;
    case GateType::Const1: return Val::One;
    case GateType::Buf:
    case GateType::Dff: return ins[0];
    case GateType::Not: return !ins[0];
    case GateType::And: return detail::and_reduce(ins, n);
    case GateType::Nand: return !detail::and_reduce(ins, n);
    case GateType::Or: return detail::or_reduce(ins, n);
    case GateType::Nor: return !detail::or_reduce(ins, n);
    case GateType::Xor: return detail::xor_reduce(ins, n);
    case GateType::Xnor: return !detail::xor_reduce(ins, n);
    case GateType::Mux: {
      const Val s = ins[0], d0 = ins[1], d1 = ins[2];
      if (s == Val::Zero) return d0;
      if (s == Val::One) return d1;
      return (d0 == d1 && d0 != Val::X) ? d0 : Val::X;
    }
    default: return Val::X;  // Input: never evaluated
  }
}

/// 64 ternary values, one bit position per pattern.  Encoding:
/// 0 -> zero bit set, 1 -> one bit set, X -> neither.  Invariant:
/// (zero & one) == 0.
struct PackedVal {
  std::uint64_t zero = 0;
  std::uint64_t one = 0;

  static PackedVal broadcast(Val v) {
    switch (v) {
      case Val::Zero: return {~0ull, 0};
      case Val::One: return {0, ~0ull};
      default: return {0, 0};
    }
  }
  /// Value of pattern `bit`.
  Val at(unsigned bit) const {
    const std::uint64_t m = 1ull << bit;
    if (zero & m) return Val::Zero;
    if (one & m) return Val::One;
    return Val::X;
  }
  void set(unsigned bit, Val v) {
    const std::uint64_t m = 1ull << bit;
    zero &= ~m;
    one &= ~m;
    if (v == Val::Zero) zero |= m;
    if (v == Val::One) one |= m;
  }
  friend bool operator==(const PackedVal&, const PackedVal&) = default;
};

/// Evaluates one gate over 64 packed patterns.
PackedVal eval_gate_packed(GateType t, const PackedVal* ins, std::size_t n);

}  // namespace fsct
