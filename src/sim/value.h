// Three-valued logic (0 / 1 / X) and its 64-way packed counterpart.
//
// Scalar values drive the classifier, the serial fault simulators and ATPG;
// packed values drive the parallel-pattern fault simulator (PPSFP), where one
// PackedVal carries the same net across 64 test patterns.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace fsct {

/// Ternary logic value.
enum class Val : std::uint8_t { Zero = 0, One = 1, X = 2 };

inline Val operator!(Val v) {
  switch (v) {
    case Val::Zero: return Val::One;
    case Val::One: return Val::Zero;
    default: return Val::X;
  }
}

/// 'X' / '0' / '1' for logs and tests.
char val_char(Val v);

/// Parses '0' / '1' / 'x' / 'X'; throws on anything else.
Val val_from_char(char c);

/// Returns the controlling value of an AND/NAND (0) or OR/NOR (1) style gate;
/// Val::X when the gate has no controlling value (XOR/XNOR/BUF/NOT/MUX).
Val controlling_value(GateType t);

/// True when the gate output is the complement of its "natural" function
/// (NAND, NOR, XNOR, NOT).
bool is_inverting(GateType t);

/// Evaluates one gate in 3-valued logic. `ins` are the fanin values in pin
/// order; `n` is the pin count.  Sources (Input) must not be passed here.
Val eval_gate(GateType t, const Val* ins, std::size_t n);

/// 64 ternary values, one bit position per pattern.  Encoding:
/// 0 -> zero bit set, 1 -> one bit set, X -> neither.  Invariant:
/// (zero & one) == 0.
struct PackedVal {
  std::uint64_t zero = 0;
  std::uint64_t one = 0;

  static PackedVal broadcast(Val v) {
    switch (v) {
      case Val::Zero: return {~0ull, 0};
      case Val::One: return {0, ~0ull};
      default: return {0, 0};
    }
  }
  /// Value of pattern `bit`.
  Val at(unsigned bit) const {
    const std::uint64_t m = 1ull << bit;
    if (zero & m) return Val::Zero;
    if (one & m) return Val::One;
    return Val::X;
  }
  void set(unsigned bit, Val v) {
    const std::uint64_t m = 1ull << bit;
    zero &= ~m;
    one &= ~m;
    if (v == Val::Zero) zero |= m;
    if (v == Val::One) one |= m;
  }
  friend bool operator==(const PackedVal&, const PackedVal&) = default;
};

/// Evaluates one gate over 64 packed patterns.
PackedVal eval_gate_packed(GateType t, const PackedVal* ins, std::size_t n);

}  // namespace fsct
