#include "sim/soa_circuit.h"

#include <algorithm>
#include <atomic>

namespace fsct {

#ifndef FSCT_DEFAULT_SIMD_WIDTH
#define FSCT_DEFAULT_SIMD_WIDTH 256
#endif

static_assert(FSCT_DEFAULT_SIMD_WIDTH == 64 || FSCT_DEFAULT_SIMD_WIDTH == 256 ||
                  FSCT_DEFAULT_SIMD_WIDTH == 512,
              "FSCT_SIMD_WIDTH must be 64, 256 or 512");

namespace {
std::atomic<int> g_default_simd_width{FSCT_DEFAULT_SIMD_WIDTH};
std::atomic<std::uint64_t> g_soa_compiles{0};
}  // namespace

std::uint64_t soa_compile_count() {
  return g_soa_compiles.load(std::memory_order_relaxed);
}

int default_simd_width() {
  return g_default_simd_width.load(std::memory_order_relaxed);
}

void set_default_simd_width(int bits) {
  if (!is_valid_simd_width(bits)) {
    throw std::invalid_argument("SIMD width must be 64, 256 or 512");
  }
  g_default_simd_width.store(bits, std::memory_order_relaxed);
}

std::shared_ptr<const SoaCircuit> SoaCircuit::compile(const Levelizer& lv) {
  // Memoized per Levelizer snapshot: every engine built on the same snapshot
  // (SeqFaultSim, PairSim, a serve cache entry) shares one flat compilation.
  // The per-snapshot mutex is held across the build so concurrent first
  // compiles of the same snapshot serialize instead of duplicating work.
  const std::shared_ptr<LevelizerMemo> memo = lv.memo();
  std::lock_guard<std::mutex> lk(memo->m);
  if (memo->value) {
    return std::static_pointer_cast<const SoaCircuit>(memo->value);
  }
  g_soa_compiles.fetch_add(1, std::memory_order_relaxed);
  const Netlist& nl = lv.netlist();
  const std::size_t n = nl.size();
  auto c = std::shared_ptr<SoaCircuit>(new SoaCircuit());

  c->type_.resize(n);
  c->level_.resize(n);
  c->max_level_ = lv.max_level();
  for (NodeId id = 0; id < n; ++id) {
    c->type_[id] = nl.type(id);
    c->level_[id] = lv.level(id);
    switch (nl.type(id)) {
      case GateType::Const0: c->const0_.push_back(id); break;
      case GateType::Const1: c->const1_.push_back(id); break;
      default: break;
    }
  }
  // inputs()/dffs() keep netlist creation order: callers index PI vectors
  // and flip-flop state by it.
  c->inputs_ = nl.inputs();
  c->dffs_ = nl.dffs();
  c->dff_d_.reserve(c->dffs_.size());
  for (NodeId dff : c->dffs_) c->dff_d_.push_back(nl.fanins(dff)[0]);

  // Flat fanins.
  c->fanin_off_.resize(n + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    c->fanin_off_[id + 1] =
        c->fanin_off_[id] + static_cast<std::uint32_t>(nl.fanins(id).size());
  }
  c->fanin_.resize(c->fanin_off_[n]);
  for (NodeId id = 0; id < n; ++id) {
    std::copy(nl.fanins(id).begin(), nl.fanins(id).end(),
              c->fanin_.begin() + c->fanin_off_[id]);
  }

  // Flat combinational-only fanouts, preserving Levelizer order (one entry
  // per connected pin).
  c->fanout_off_.resize(n + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    std::uint32_t k = 0;
    for (NodeId s : lv.fanouts(id)) k += is_combinational(nl.type(s));
    c->fanout_off_[id + 1] = c->fanout_off_[id] + k;
  }
  c->fanout_.resize(c->fanout_off_[n]);
  {
    std::vector<std::uint32_t> w(c->fanout_off_.begin(),
                                 c->fanout_off_.end() - 1);
    for (NodeId id = 0; id < n; ++id) {
      for (NodeId s : lv.fanouts(id)) {
        if (is_combinational(nl.type(s))) c->fanout_[w[id]++] = s;
      }
    }
  }

  // Level-major, type-sorted evaluation order.  topo_order() is already
  // level-compatible; a stable sort by (level, type) groups same-type gates
  // into runs without breaking level boundaries.  Ties keep topo order, so
  // the layout is deterministic.
  c->order_ = lv.topo_order();
  std::stable_sort(c->order_.begin(), c->order_.end(),
                   [&](NodeId a, NodeId b) {
                     if (c->level_[a] != c->level_[b]) {
                       return c->level_[a] < c->level_[b];
                     }
                     return static_cast<int>(c->type_[a]) <
                            static_cast<int>(c->type_[b]);
                   });
  for (std::uint32_t i = 0; i < c->order_.size();) {
    std::uint32_t j = i + 1;
    const GateType t = c->type_[c->order_[i]];
    const int lev = c->level_[c->order_[i]];
    while (j < c->order_.size() && c->type_[c->order_[j]] == t &&
           c->level_[c->order_[j]] == lev) {
      ++j;
    }
    c->runs_.push_back({t, i, j});
    i = j;
  }
  memo->value = c;
  return c;
}

}  // namespace fsct
