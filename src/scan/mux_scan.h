// Conventional full MUX-scan insertion: the baseline the paper's Figure 1(a)
// shows.  Every flip-flop's D pin gets a scan multiplexer
// D' = MUX(scan_mode, D, previous_Q) and the flip-flops are stitched into one
// or more shift chains with dedicated wiring.
#pragma once

#include "scan/scan_chain.h"

namespace fsct {

struct MuxScanOptions {
  int num_chains = 1;
  /// Chain order: flip-flops are taken in netlist dffs() order and dealt
  /// round-robin (false) or in contiguous blocks (true) across chains.
  bool block_partition = true;
};

/// Inserts MUX-scan into `nl` (mutates it: adds scan_mode and scan_in PIs,
/// one mux per flip-flop, and marks each chain's scan-out Q as a PO).
/// Returns the resulting scan design.
ScanDesign insert_mux_scan(Netlist& nl, const MuxScanOptions& opt = {});

}  // namespace fsct
