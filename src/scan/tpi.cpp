#include "scan/tpi.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "netlist/levelize.h"
#include "sim/comb_sim.h"

namespace fsct {
namespace {

// A planned test point: force what `node` sees on `pin` to `value` in scan
// mode.
struct PlannedTp {
  NodeId node;
  int pin;
  Val value;
};

struct PathCandidate {
  NodeId from_ff = kNullNode;
  std::vector<NodeId> path;  // forward order: first gate after Q .. D driver
  std::vector<PlannedTp> tps;
  std::vector<std::pair<NodeId, Val>> assigns;
  bool inverting = false;
  int steps = 0;  // DFS work counter (caps pathological searches)
};

constexpr int kMaxSearchSteps = 20000;

// Search state shared across all per-FF searches.
struct TpiState {
  Netlist* nl;
  std::unique_ptr<Levelizer> lv;
  std::unique_ptr<CombSim> sim;
  std::vector<Val> values;                   // scan-mode values
  std::unordered_map<NodeId, Val> assign;    // PI -> pinned value
  std::map<std::pair<NodeId, int>, Val> forced_pin;  // planned TPs
  std::map<std::pair<NodeId, int>, char> path_pin;   // pins carrying shift data
  std::vector<char> on_path;                 // nodes carrying shift data
  std::vector<Injection> injections;         // forced_pin as injections
  std::unordered_map<NodeId, NodeId> pred, succ;
  int ff_grab_depth = 0;  // below this remaining depth, grab adjacent FFs

  void recompute() {
    values.assign(nl->size(), Val::X);
    for (auto [pi, v] : assign) values[pi] = v;
    sim->run(values, injections);
  }
  void rebuild() {
    lv = std::make_unique<Levelizer>(*nl);
    sim = std::make_unique<CombSim>(*lv);
    on_path.resize(nl->size(), 0);
    recompute();
  }
};

// Effective scan-mode value seen by `node` on `pin` (honours planned TPs).
Val pin_value(const TpiState& st, NodeId node, int pin) {
  if (auto it = st.forced_pin.find({node, pin}); it != st.forced_pin.end()) {
    return it->second;
  }
  return st.values[st.nl->fanins(node)[static_cast<std::size_t>(pin)]];
}

// Attempts to make side pin (g,p) non-controlling at value `nc`.
// Returns false if impossible; otherwise appends the needed TP/assignment to
// the candidate (cost handled by caller via tps.size()).
bool force_side(const TpiState& st, PathCandidate& cand, NodeId g, int p,
                Val nc) {
  const Netlist& nl = *st.nl;
  const NodeId s = nl.fanins(g)[static_cast<std::size_t>(p)];

  // Planned TPs and assignments in the candidate itself.
  for (const PlannedTp& tp : cand.tps) {
    if (tp.node == g && tp.pin == p) return tp.value == nc;
  }
  Val v = pin_value(st, g, p);
  for (auto [pi, av] : cand.assigns) {
    if (pi == s) v = av;
  }
  if (v == nc) return true;
  if (v != Val::X) return false;  // pinned to the controlling value

  // Free PI?  Pin it.
  if (nl.type(s) == GateType::Input && !st.assign.contains(s)) {
    bool already = false;
    for (auto [pi, av] : cand.assigns) already |= (pi == s);
    if (!already) {
      cand.assigns.emplace_back(s, nc);
      return true;
    }
    return false;  // this candidate already pinned it to the other value
  }

  // Test point — not allowed on pins that carry shift data.
  if (st.path_pin.contains({g, p})) return false;
  cand.tps.push_back({g, p, nc});
  return true;
}

// Depth-first backward search from `net` (a net that must carry shift data)
// toward a flip-flop Q.  `cost_budget` bounds candidate TPs.
bool search_path(const TpiState& st, NodeId target_ff, NodeId net, int depth,
                 int cost_budget, PathCandidate& cand) {
  const Netlist& nl = *st.nl;
  const GateType t = nl.type(net);
  if (++cand.steps > kMaxSearchSteps) return false;

  if (t == GateType::Dff) {
    if (net == target_ff) return false;  // no self-loop
    if (st.succ.contains(net)) return false;
    // Cycle check: target must not already lead (via succ) back to net.
    // Linking net->target creates a cycle iff net is reachable from target.
    NodeId w = target_ff;
    while (true) {
      auto it = st.succ.find(w);
      if (it == st.succ.end()) break;
      w = it->second;
      if (w == net) return false;
    }
    cand.from_ff = net;
    return true;
  }
  if (!is_combinational(t)) return false;   // PI / const cannot source a chain
  if (depth <= 0) return false;
  if (st.on_path[net]) return false;        // gate already carries shift data
  if (st.values[net] != Val::X) return false;  // constant net can't shift

  const auto fins = nl.fanins(net);
  const std::size_t saved_tps = cand.tps.size();
  const std::size_t saved_assigns = cand.assigns.size();
  const std::size_t saved_len = cand.path.size();
  cand.path.push_back(net);

  auto try_through = [&](std::size_t cont_pin, bool extra_invert) -> bool {
    const NodeId cont = fins[cont_pin];
    if (st.path_pin.contains({net, static_cast<int>(cont_pin)})) return false;
    if (st.forced_pin.contains({net, static_cast<int>(cont_pin)})) return false;
    // Make every other pin non-controlling / neutral.
    bool invert_here = is_inverting(t);
    bool ok = true;
    for (std::size_t p = 0; p < fins.size() && ok; ++p) {
      if (p == cont_pin) continue;
      switch (t) {
        case GateType::And:
        case GateType::Nand:
          ok = force_side(st, cand, net, static_cast<int>(p), Val::One);
          break;
        case GateType::Or:
        case GateType::Nor:
          ok = force_side(st, cand, net, static_cast<int>(p), Val::Zero);
          break;
        case GateType::Xor:
        case GateType::Xnor: {
          // Any binary side works; parity depends on the forced value.
          Val v = pin_value(st, net, static_cast<int>(p));
          if (v == Val::X) {
            ok = force_side(st, cand, net, static_cast<int>(p), Val::Zero);
            v = Val::Zero;
          }
          if (ok && v == Val::One) invert_here = !invert_here;
          break;
        }
        default:
          break;  // Mux handled by caller, Buf/Not have no sides
      }
    }
    if (ok && static_cast<int>(cand.tps.size()) <= cost_budget &&
        search_path(st, target_ff, cont, depth - 1, cost_budget, cand)) {
      cand.inverting = (cand.inverting != (invert_here != extra_invert));
      return true;
    }
    cand.tps.resize(saved_tps);
    cand.assigns.resize(saved_assigns);
    return false;
  };

  bool found = false;
  if (t == GateType::Mux) {
    // Route through d0 (sel forced 0) or d1 (sel forced 1).
    for (int branch = 0; branch < 2 && !found; ++branch) {
      const std::size_t cont_pin = branch == 0 ? 1u : 2u;
      const Val need = branch == 0 ? Val::Zero : Val::One;
      const std::size_t stp = cand.tps.size(), sas = cand.assigns.size();
      if (force_side(st, cand, net, 0, need) &&
          static_cast<int>(cand.tps.size()) <= cost_budget &&
          !st.path_pin.contains({net, static_cast<int>(cont_pin)}) &&
          !st.forced_pin.contains({net, static_cast<int>(cont_pin)}) &&
          search_path(st, target_ff, fins[cont_pin], depth - 1, cost_budget,
                      cand)) {
        found = true;
      } else {
        cand.tps.resize(stp);
        cand.assigns.resize(sas);
      }
    }
  } else {
    // Deep in the budget, grab a flip-flop Q as soon as one is adjacent;
    // early on, prefer extending through mission gates so the established
    // scan path carries real functional logic (longer sensitised paths are
    // exactly what makes TPI pay off — and what the paper's chain-affecting
    // fault percentages reflect).
    const bool take_ff_first = depth <= st.ff_grab_depth;
    std::vector<std::size_t> order;
    for (std::size_t p = 0; p < fins.size(); ++p) {
      if ((nl.type(fins[p]) == GateType::Dff) == take_ff_first) {
        order.push_back(p);
      }
    }
    for (std::size_t p = 0; p < fins.size(); ++p) {
      if ((nl.type(fins[p]) == GateType::Dff) != take_ff_first) {
        order.push_back(p);
      }
    }
    for (std::size_t p : order) {
      if (try_through(p, false)) {
        found = true;
        break;
      }
    }
  }
  if (!found) cand.path.resize(saved_len);
  return found;
}

}  // namespace

ScanDesign run_tpi(Netlist& nl, const TpiOptions& opt, TpiStats* stats_out) {
  if (opt.num_chains < 1) throw std::invalid_argument("num_chains < 1");

  ScanDesign d;
  d.scan_mode = nl.add_input("scan_mode");

  TpiState st;
  st.nl = &nl;
  st.ff_grab_depth =
      opt.max_path_len - std::min(opt.prefer_path_len, opt.max_path_len);
  st.assign.emplace(d.scan_mode, Val::One);
  st.rebuild();

  TpiStats stats;
  struct Seg {
    NodeId from, to;
    std::vector<NodeId> path;
    bool invert;
  };
  std::vector<Seg> segs;

  // Phase 1: find a functional predecessor for every flip-flop we can.
  const std::vector<NodeId> ffs = nl.dffs();  // stable copy
  for (NodeId ff : ffs) {
    const NodeId dnet = nl.fanins(ff)[0];
    PathCandidate best;
    bool have = false;
    for (int budget = 0; budget <= opt.max_test_points && !have; ++budget) {
      PathCandidate cand;
      if (search_path(st, ff, dnet, opt.max_path_len, budget, cand)) {
        best = std::move(cand);
        have = true;
      }
    }
    if (!have) continue;

    // Commit: assignments, planned TPs, path bookkeeping.
    bool values_dirty = false;
    for (auto [pi, v] : best.assigns) {
      st.assign.emplace(pi, v);
      ++stats.assigned_pis;
      values_dirty = true;
    }
    for (const PlannedTp& tp : best.tps) {
      st.forced_pin.emplace(std::make_pair(tp.node, tp.pin), tp.value);
      st.injections.push_back({tp.node, tp.pin, tp.value});
      ++stats.test_points;
      values_dirty = true;
    }
    // best.path is in D->Q discovery order; store forward (Q -> D).
    std::vector<NodeId> fwd(best.path.rbegin(), best.path.rend());
    // Mark shift-carrying pins and nodes.
    NodeId prev = best.from_ff;
    for (NodeId g : fwd) {
      const auto fins = nl.fanins(g);
      for (std::size_t p = 0; p < fins.size(); ++p) {
        if (fins[p] == prev) {
          st.path_pin.emplace(std::make_pair(g, static_cast<int>(p)), 1);
          break;
        }
      }
      st.on_path[g] = 1;
      prev = g;
    }
    st.path_pin.emplace(std::make_pair(ff, 0), 1);
    st.pred.emplace(ff, best.from_ff);
    st.succ.emplace(best.from_ff, ff);
    segs.push_back({best.from_ff, ff, std::move(fwd), best.inverting});
    ++stats.functional_segments;
    if (values_dirty) st.recompute();
  }

  // Phase 2: insert the planned test points (transparent in normal mode).
  NodeId scan_mode_n = kNullNode;
  int tp_id = 0;
  for (const auto& [pin, v] : st.forced_pin) {
    const auto [g, p] = pin;
    const NodeId driver = nl.fanins(g)[static_cast<std::size_t>(p)];
    if (v == Val::Zero) {
      if (scan_mode_n == kNullNode) {
        scan_mode_n = nl.add_gate(GateType::Not, {d.scan_mode}, "scan_mode_n");
      }
      nl.insert_on_edge(driver, g, static_cast<std::size_t>(p), GateType::And,
                        {scan_mode_n}, "_tp" + std::to_string(tp_id++));
    } else {
      nl.insert_on_edge(driver, g, static_cast<std::size_t>(p), GateType::Or,
                        {d.scan_mode}, "_tp" + std::to_string(tp_id++));
    }
  }
  d.test_points = stats.test_points;

  // Phase 2.5: verify every functional segment on the *mutated* netlist and
  // recompute its inversion parity from the settled scan-mode values.  A
  // later global PI assignment can invalidate an earlier path's side-input
  // forcing; such segments are demoted to dedicated mux links.
  {
    Levelizer lv2(nl);
    CombSim sim2(lv2);
    std::vector<Val> vals(nl.size(), Val::X);
    for (auto [pi, v] : st.assign) vals[pi] = v;
    sim2.run(vals);

    auto seg_ok = [&](Seg& s) -> bool {
      NodeId prev = s.from;
      bool invert = false;
      for (NodeId g : s.path) {
        const GateType t = nl.type(g);
        const auto fins = nl.fanins(g);
        std::size_t cont = fins.size();
        for (std::size_t p = 0; p < fins.size(); ++p) {
          if (fins[p] == prev) {
            cont = p;
            break;
          }
        }
        if (cont == fins.size()) return false;
        bool inv_here = is_inverting(t);
        for (std::size_t p = 0; p < fins.size(); ++p) {
          if (p == cont) continue;
          const Val v = vals[fins[p]];
          switch (t) {
            case GateType::And:
            case GateType::Nand:
              if (v != Val::One) return false;
              break;
            case GateType::Or:
            case GateType::Nor:
              if (v != Val::Zero) return false;
              break;
            case GateType::Xor:
            case GateType::Xnor:
              if (v == Val::X) return false;
              if (v == Val::One) inv_here = !inv_here;
              break;
            case GateType::Mux:
              if (p == 0) {
                // select pin: must route the continuation branch
                if (cont == 1 && v != Val::Zero) return false;
                if (cont == 2 && v != Val::One) return false;
              }
              break;
            default:
              return false;
          }
        }
        if (t == GateType::Mux && cont == 0) return false;
        invert ^= inv_here;
        prev = g;
      }
      if (nl.fanins(s.to)[0] != prev) return false;
      s.invert = invert;
      return true;
    };

    std::vector<Seg> kept;
    for (Seg& s : segs) {
      if (seg_ok(s)) {
        kept.push_back(std::move(s));
      } else {
        st.pred.erase(s.to);
        st.succ.erase(s.from);
        --stats.functional_segments;
      }
    }
    segs = std::move(kept);
  }

  // Phase 3: assemble runs of functionally linked flip-flops.
  std::unordered_map<NodeId, const Seg*> seg_by_to;
  for (const Seg& s : segs) seg_by_to.emplace(s.to, &s);
  std::vector<std::vector<NodeId>> runs;
  for (NodeId ff : ffs) {
    if (st.pred.contains(ff)) continue;  // not a run head
    std::vector<NodeId> run{ff};
    NodeId w = ff;
    for (auto it = st.succ.find(w); it != st.succ.end();
         it = st.succ.find(w)) {
      w = it->second;
      run.push_back(w);
    }
    runs.push_back(std::move(run));
  }
  // Longest runs first, then greedy balance across chains.
  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });

  // Partial scan: keep the cheapest-to-scan flip-flops (long functional runs
  // first; a run may be truncated), drop the rest from the chains entirely.
  if (opt.scan_permille < 1000) {
    std::size_t budget =
        (ffs.size() * static_cast<std::size_t>(std::max(opt.scan_permille, 0)) +
         999) /
        1000;
    std::vector<std::vector<NodeId>> kept_runs;
    for (auto& run : runs) {
      if (budget == 0) break;
      if (run.size() > budget) run.resize(budget);
      budget -= run.size();
      kept_runs.push_back(std::move(run));
    }
    runs = std::move(kept_runs);
  }

  const std::size_t nc = std::min<std::size_t>(
      static_cast<std::size_t>(opt.num_chains), std::max<std::size_t>(
          ffs.size(), 1));
  std::vector<std::vector<std::vector<NodeId>>> chain_runs(nc);
  std::vector<std::size_t> load(nc, 0);
  for (auto& run : runs) {
    const std::size_t c = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[c] += run.size();
    chain_runs[c].push_back(std::move(run));
  }

  // Phase 4: stitch each chain (scan muxes at run boundaries).
  for (std::size_t c = 0; c < nc; ++c) {
    if (chain_runs[c].empty()) continue;
    ScanChain chain;
    chain.scan_in = nl.add_input("scan_in" + std::to_string(c));
    NodeId prev = chain.scan_in;
    for (const auto& run : chain_runs[c]) {
      for (std::size_t k = 0; k < run.size(); ++k) {
        const NodeId ff = run[k];
        ScanSegment seg;
        seg.from = prev;
        seg.to = ff;
        if (k == 0) {
          // Dedicated mux link into the head of the run.
          const NodeId d_orig = nl.fanins(ff)[0];
          const NodeId mux =
              nl.add_gate(GateType::Mux, {d.scan_mode, d_orig, prev},
                          nl.node_name(ff) + "_smux");
          nl.set_fanin(ff, 0, mux);
          seg.path = {mux};
          seg.functional = false;
          ++stats.mux_segments;
          ++d.scan_muxes;
        } else {
          const Seg* s = seg_by_to.at(ff);
          seg.path = s->path;
          seg.inverting = s->invert;
          seg.functional = true;
        }
        chain.segments.push_back(std::move(seg));
        chain.ffs.push_back(ff);
        prev = ff;
      }
    }
    nl.mark_output(chain.scan_out());
    d.chains.push_back(std::move(chain));
  }

  d.pi_constraints.assign(st.assign.begin(), st.assign.end());
  std::sort(d.pi_constraints.begin(), d.pi_constraints.end());
  if (stats_out) *stats_out = stats;
  return d;
}

}  // namespace fsct
