#include "scan/mux_scan.h"

#include <stdexcept>

namespace fsct {

ScanDesign insert_mux_scan(Netlist& nl, const MuxScanOptions& opt) {
  if (opt.num_chains < 1) throw std::invalid_argument("num_chains < 1");
  const std::vector<NodeId> ffs = nl.dffs();  // copy: we mutate nl
  const int nc = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(opt.num_chains),
                            std::max<std::size_t>(ffs.size(), 1)));

  ScanDesign d;
  d.scan_mode = nl.add_input("scan_mode");
  d.pi_constraints.emplace_back(d.scan_mode, Val::One);

  // Partition flip-flops across chains.
  std::vector<std::vector<NodeId>> part(static_cast<std::size_t>(nc));
  if (opt.block_partition) {
    const std::size_t per =
        (ffs.size() + static_cast<std::size_t>(nc) - 1) /
        static_cast<std::size_t>(nc);
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      part[std::min(i / std::max<std::size_t>(per, 1),
                    static_cast<std::size_t>(nc - 1))]
          .push_back(ffs[i]);
    }
  } else {
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      part[i % static_cast<std::size_t>(nc)].push_back(ffs[i]);
    }
  }

  for (int c = 0; c < nc; ++c) {
    ScanChain chain;
    chain.scan_in = nl.add_input("scan_in" + std::to_string(c));
    NodeId prev = chain.scan_in;
    for (NodeId ff : part[static_cast<std::size_t>(c)]) {
      const NodeId d_orig = nl.fanins(ff)[0];
      const NodeId mux = nl.add_gate(
          GateType::Mux, {d.scan_mode, d_orig, prev},
          nl.node_name(ff) + "_smux");
      nl.set_fanin(ff, 0, mux);
      ++d.scan_muxes;

      ScanSegment seg;
      seg.from = prev;
      seg.to = ff;
      seg.path = {mux};
      seg.inverting = false;
      seg.functional = false;
      chain.segments.push_back(std::move(seg));
      chain.ffs.push_back(ff);
      prev = ff;
    }
    if (!chain.ffs.empty()) {
      nl.mark_output(chain.scan_out());
      d.chains.push_back(std::move(chain));
    }
  }
  return d;
}

}  // namespace fsct
