// The scan-mode circuit model: the TPI'd netlist with its scan-mode PI
// constraints propagated, plus net-level maps of where each net sits relative
// to the scan chains.  This is the structure sections 2–3 of the paper reason
// about: chain nets carry shift data (X in 3-valued scan-mode simulation),
// side-input nets of chain gates are binary non-controlling constants.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/levelize.h"
#include "scan/scan_chain.h"

namespace fsct {

/// A position on a scan chain: `segment` k is the link capturing into
/// chain.ffs[k]; the value `chain.length()` denotes "at the scan-out itself"
/// (a corrupted Q of the last flip-flop).
struct ChainLocation {
  int chain = -1;
  int segment = -1;
  friend bool operator==(const ChainLocation&, const ChainLocation&) = default;
  friend auto operator<=>(const ChainLocation&, const ChainLocation&) = default;
};

/// One side-input attachment of a net: feeding a path gate of type
/// `gate_type` at chain position `loc`.
struct SideAttachment {
  ChainLocation loc;
  GateType gate_type = GateType::And;
};

class ScanModeModel {
 public:
  /// `lv` must be built on the post-TPI netlist.
  ScanModeModel(const Levelizer& lv, const ScanDesign& design);

  /// 3-valued scan-mode values: constrained PIs at their constants, free PIs
  /// and flip-flops at X.
  const std::vector<Val>& values() const { return values_; }

  /// Chain location of a shift-data-carrying net (path gates, chain FF Qs,
  /// scan-in PIs); nullopt for all other nets.
  std::optional<ChainLocation> chain_location(NodeId n) const {
    return chain_loc_[n].chain < 0 ? std::nullopt
                                   : std::make_optional(chain_loc_[n]);
  }

  /// Side-input attachments of a net (empty for non-side nets).  Only sides
  /// whose scan-mode value is binary are recorded — an X side (e.g. the
  /// mission-D input of a scan mux) cannot mask shift data.
  const std::vector<SideAttachment>& side_attachments(NodeId n) const {
    static const std::vector<SideAttachment> kEmpty;
    auto it = sides_.find(n);
    return it == sides_.end() ? kEmpty : it->second;
  }

  /// All nets with at least one side attachment.
  const std::vector<NodeId>& side_nets() const { return side_net_list_; }

  const ScanDesign& design() const { return design_; }
  const Levelizer& levelizer() const { return lv_; }

  /// Longest chain length (the paper's `maxsize`).
  std::size_t max_chain_length() const;

  /// Scan-out Q nodes, one per chain (observed every cycle in scan mode).
  std::vector<NodeId> scan_outs() const;

  /// Checks the TPI invariant: every recorded non-XOR/MUX side input is at
  /// its non-controlling value.  Returns empty string if OK.
  std::string check() const;

 private:
  const Levelizer& lv_;
  const ScanDesign& design_;
  std::vector<Val> values_;
  std::vector<ChainLocation> chain_loc_;
  std::unordered_map<NodeId, std::vector<SideAttachment>> sides_;
  std::vector<NodeId> side_net_list_;
};

}  // namespace fsct
