// Builders for the clocked PI sequences used in scan-chain testing:
//  * the classic alternating flush test (0011 repeating),
//  * scan-load sequences that shift a wanted state into the chains,
//  * conversion of a combinational scan-mode test vector into a full
//    scan-in + observe + scan-out sequence (the paper's step 2).
// All sequences keep the circuit strictly in scan mode.
#pragma once

#include <vector>

#include "fault/seq_fault_sim.h"
#include "scan/scan_chain.h"

namespace fsct {

/// Per-cycle PI assignment builder for a scan design.
class ScanSequenceBuilder {
 public:
  /// `nl` is the post-TPI netlist the design refers to.
  ScanSequenceBuilder(const Netlist& nl, const ScanDesign& design);

  /// The alternating flush: every chain's scan-in is driven with the periodic
  /// pattern 0,0,1,1,... for `cycles` clocks; constrained PIs are held at
  /// their scan-mode values, free PIs at `free_value`.
  TestSequence alternating(std::size_t cycles, Val free_value = Val::Zero) const;

  /// Shifts `state[c][k]` into chain c position k (don't-care entries may be
  /// X; they are shifted as `fill`).  Compensates segment inversion parity.
  /// `free_pi_values`, if non-empty, holds every free PI at the given value
  /// during the whole load (indexed like netlist inputs(); constrained PIs
  /// and scan-ins are overridden).  The load takes max chain length cycles.
  TestSequence load_state(const std::vector<std::vector<Val>>& state,
                          const std::vector<Val>& free_pi_values = {},
                          Val fill = Val::Zero) const;

  /// Converts one combinational scan-mode test (wanted FF states + free-PI
  /// values) into a full sequence: load the state, then `observe_cycles`
  /// additional shift cycles so captured fault effects reach the scan-outs.
  /// `ff_state` is indexed in netlist dffs() order (X = don't care).
  TestSequence apply_comb_vector(const std::vector<Val>& ff_state,
                                 const std::vector<Val>& free_pi_values,
                                 std::size_t observe_cycles) const;

  /// Baseline PI vector: constrained PIs at their values, everything else at
  /// `fill`.
  std::vector<Val> base_vector(Val fill = Val::Zero) const;

  /// Position of flip-flop `ff` as (chain index, position); (-1,-1) if not on
  /// any chain.
  std::pair<int, int> chain_position(NodeId ff) const;

  std::size_t max_chain_length() const;

 private:
  const Netlist& nl_;
  const ScanDesign& design_;
  std::vector<int> pi_index_;                 // node id -> inputs() index
  std::vector<std::pair<int, int>> ff_pos_;   // dff order -> (chain, pos)
};

}  // namespace fsct
