#include "scan/transparency.h"

#include <random>
#include <stdexcept>

#include "netlist/levelize.h"
#include "sim/seq_sim.h"

namespace fsct {

TransparencyResult check_dft_transparency(const Netlist& reference,
                                          const Netlist& scanned,
                                          const ScanDesign& design,
                                          const TransparencyOptions& opt) {
  if (reference.inputs().size() > scanned.inputs().size()) {
    throw std::invalid_argument(
        "transparency: scanned circuit has fewer PIs than the reference");
  }
  if (reference.dffs().size() != scanned.dffs().size()) {
    throw std::invalid_argument(
        "transparency: flip-flop counts differ (scan insertion must not "
        "add or remove state)");
  }
  for (std::size_t i = 0; i < reference.inputs().size(); ++i) {
    if (reference.node_name(reference.inputs()[i]) !=
        scanned.node_name(scanned.inputs()[i])) {
      throw std::invalid_argument(
          "transparency: PI order mismatch at index " + std::to_string(i));
    }
  }

  const Levelizer rlv(reference), slv(scanned);
  TransparencyResult res;
  std::mt19937_64 rng(opt.seed);

  for (int epoch = 0; epoch < opt.epochs && res.equivalent; ++epoch) {
    SeqSim rsim(rlv), ssim(slv);
    // A common random (binary) reset state sidesteps X-init mismatches.
    std::vector<Val> state(reference.dffs().size());
    for (auto& v : state) v = (rng() & 1) ? Val::One : Val::Zero;
    rsim.set_state(state);
    ssim.set_state(state);

    for (int t = 0; t < opt.cycles && res.equivalent; ++t) {
      std::vector<Val> rv(reference.inputs().size());
      for (auto& v : rv) v = (rng() & 1) ? Val::One : Val::Zero;
      std::vector<Val> sv(scanned.inputs().size(), Val::Zero);
      for (std::size_t i = 0; i < rv.size(); ++i) sv[i] = rv[i];
      // Appended scan pins: scan_mode = 0, scan-ins = 0.
      for (std::size_t i = rv.size(); i < sv.size(); ++i) sv[i] = Val::Zero;
      for (std::size_t i = 0; i < scanned.inputs().size(); ++i) {
        if (scanned.inputs()[i] == design.scan_mode) sv[i] = Val::Zero;
      }

      const auto& rvals = rsim.step(rv);
      const auto& svals = ssim.step(sv);
      ++res.cycles_checked;

      for (NodeId po : reference.outputs()) {
        const NodeId spo = scanned.find(reference.node_name(po));
        if (spo == kNullNode) continue;
        if (rvals[po] != svals[spo]) {
          res.equivalent = false;
          res.diagnosis = "PO " + reference.node_name(po) +
                          " diverges at cycle " + std::to_string(t) +
                          " of epoch " + std::to_string(epoch);
          break;
        }
      }
      for (std::size_t i = 0;
           i < reference.dffs().size() && res.equivalent; ++i) {
        if (rsim.state()[i] != ssim.state()[i]) {
          res.equivalent = false;
          res.diagnosis =
              "FF " + reference.node_name(reference.dffs()[i]) +
              " diverges after cycle " + std::to_string(t) + " of epoch " +
              std::to_string(epoch);
        }
      }
    }
  }
  return res;
}

}  // namespace fsct
