// Scan chain data model shared by the MUX-scan inserter, the TPI engine and
// the functional-scan-chain-testing core.
//
// A chain is an ordered list of flip-flops.  Each link ("segment") describes
// how shift data travels from the previous stage's Q (or the scan-in PI) to
// this stage's D during scan mode:
//   * a *functional* segment rides an existing combinational path whose side
//    inputs are forced non-controlling in scan mode (the paper's TPI links);
//   * a *dedicated* segment is a scan multiplexer inserted in front of the D
//     pin (conventional MUX-scan).
// Segments may invert (odd number of inverting stages on the path); shifting
// still works, the testing code just tracks the parity.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.h"
#include "sim/value.h"

namespace fsct {

/// One shift link of a scan chain.
struct ScanSegment {
  NodeId from = kNullNode;  ///< previous stage Q, or the scan-in PI
  NodeId to = kNullNode;    ///< this stage's DFF node
  /// Combinational nodes the shift data passes through, in from->to order
  /// (excludes `from`, includes the gate driving the D pin).  Empty for a
  /// dedicated mux link whose only element would be the mux itself — the mux
  /// node is then in `path` as well, so path is only empty for a direct wire.
  std::vector<NodeId> path;
  bool inverting = false;   ///< odd inversion parity along the path
  bool functional = false;  ///< true = TPI link, false = dedicated mux/wire
};

/// One scan chain: ffs[0] is nearest scan-in; Q of ffs.back() is scan-out.
struct ScanChain {
  NodeId scan_in = kNullNode;  ///< dedicated scan-in primary input
  std::vector<NodeId> ffs;
  /// segments[k] feeds ffs[k]; segments[0].from == scan_in.
  std::vector<ScanSegment> segments;

  std::size_t length() const { return ffs.size(); }

  /// Q node observed as scan-out.
  NodeId scan_out() const { return ffs.empty() ? kNullNode : ffs.back(); }

  /// Cumulative inversion parity from scan-in up to and including stage k's
  /// capturing segment.
  bool parity_to(std::size_t k) const {
    bool p = false;
    for (std::size_t i = 0; i <= k && i < segments.size(); ++i) {
      p ^= segments[i].inverting;
    }
    return p;
  }
};

/// A scan-inserted design: the mutated netlist plus everything needed to put
/// it in scan mode.
struct ScanDesign {
  NodeId scan_mode = kNullNode;  ///< PI: 0 normal operation, 1 scan/shift
  /// PI values that establish the scan paths (always includes
  /// {scan_mode, One}; TPI adds the side-input forcing assignments).
  std::vector<std::pair<NodeId, Val>> pi_constraints;
  std::vector<ScanChain> chains;
  int test_points = 0;  ///< TPI gates inserted
  int scan_muxes = 0;   ///< dedicated scan muxes inserted

  /// True if `pi` is constrained during scan mode.
  bool is_constrained(NodeId pi) const {
    for (auto [p, v] : pi_constraints) {
      if (p == pi) return true;
    }
    return false;
  }
};

}  // namespace fsct
