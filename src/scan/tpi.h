// Test point insertion (TPI): establishes functional scan paths through
// mission logic, after Lin et al. (DAC'97), as consumed by the paper.
//
// For every flip-flop the engine searches backward from its D pin for a
// combinational path that starts at another flip-flop's Q and whose side
// inputs can all be made non-controlling during scan mode, by
//  * already being non-controlling constants under the current scan-mode
//    primary-input assignment,
//  * assigning a still-free primary input to the non-controlling value, or
//  * inserting a test point (an AND gate with NOT(scan_mode), forcing 0, or
//    an OR gate with scan_mode, forcing 1) on that single fanin pin.
// The cheapest feasible path (fewest test points) is taken; flip-flops left
// without a functional predecessor are stitched with conventional scan muxes.
// In normal mode (scan_mode = 0) every test point is transparent, so mission
// behaviour is unchanged — a property the test suite checks.
#pragma once

#include "scan/scan_chain.h"

namespace fsct {

struct TpiOptions {
  int num_chains = 1;
  int max_path_len = 12;    ///< max combinational gates on one functional path
  int max_test_points = 3;  ///< test-point budget per segment
  /// Preferred minimum functional path length: the search keeps extending
  /// through mission gates for this many levels before grabbing an adjacent
  /// flip-flop, so chains carry real logic (0 = shortest paths).
  int prefer_path_len = 5;
  /// Partial scan: per-mille of flip-flops placed on chains (1000 = full
  /// scan).  Flip-flops are ranked by how cheaply TPI can link them — FFs
  /// that would need dedicated muxes are dropped first, so partial functional
  /// scan keeps the cheap links (the environment the paper's section 4
  /// mentions: "in a partial scan environment, we can use a test set of
  /// random vectors").
  int scan_permille = 1000;
};

/// Statistics the overhead experiments (Figure 1) report.
struct TpiStats {
  int functional_segments = 0;  ///< FF->FF links riding mission logic
  int mux_segments = 0;         ///< dedicated scan muxes (incl. chain heads)
  int test_points = 0;
  int assigned_pis = 0;  ///< free PIs pinned to constants in scan mode
};

/// Runs TPI on `nl` (mutates it) and builds the scan chains.
/// `stats_out`, if non-null, receives the overhead statistics.
ScanDesign run_tpi(Netlist& nl, const TpiOptions& opt = {},
                   TpiStats* stats_out = nullptr);

}  // namespace fsct
