#include "scan/scan_mode_model.h"

#include <algorithm>

#include "sim/comb_sim.h"

namespace fsct {

ScanModeModel::ScanModeModel(const Levelizer& lv, const ScanDesign& design)
    : lv_(lv), design_(design) {
  const Netlist& nl = lv.netlist();
  values_.assign(nl.size(), Val::X);
  for (auto [pi, v] : design.pi_constraints) values_[pi] = v;
  CombSim sim(lv);
  sim.run(values_);

  chain_loc_.assign(nl.size(), ChainLocation{});
  for (std::size_t c = 0; c < design.chains.size(); ++c) {
    const ScanChain& chain = design.chains[c];
    for (std::size_t k = 0; k < chain.segments.size(); ++k) {
      const ScanSegment& seg = chain.segments[k];
      const ChainLocation loc{static_cast<int>(c), static_cast<int>(k)};
      // The feeding net (previous Q or scan-in) corrupts capture into ffs[k].
      chain_loc_[seg.from] = loc;
      NodeId prev = seg.from;
      for (NodeId g : seg.path) {
        chain_loc_[g] = loc;
        // Side pins of this path gate.
        const auto fins = nl.fanins(g);
        std::size_t cont = fins.size();
        for (std::size_t p = 0; p < fins.size(); ++p) {
          if (fins[p] == prev) {
            cont = p;
            break;
          }
        }
        for (std::size_t p = 0; p < fins.size(); ++p) {
          if (p == cont) continue;
          const NodeId s = fins[p];
          if (values_[s] == Val::X) continue;  // cannot mask shift data
          auto& lst = sides_[s];
          if (std::find_if(lst.begin(), lst.end(), [&](const SideAttachment& a) {
                return a.loc == loc;
              }) == lst.end()) {
            lst.push_back({loc, nl.type(g)});
          }
        }
        prev = g;
      }
    }
    // The last flip-flop's Q is the scan-out itself.
    if (!chain.ffs.empty()) {
      chain_loc_[chain.ffs.back()] = ChainLocation{
          static_cast<int>(c), static_cast<int>(chain.length())};
    }
  }
  side_net_list_.reserve(sides_.size());
  for (const auto& [n, lst] : sides_) side_net_list_.push_back(n);
  std::sort(side_net_list_.begin(), side_net_list_.end());
}

std::size_t ScanModeModel::max_chain_length() const {
  std::size_t m = 0;
  for (const ScanChain& c : design_.chains) m = std::max(m, c.length());
  return m;
}

std::vector<NodeId> ScanModeModel::scan_outs() const {
  std::vector<NodeId> outs;
  for (const ScanChain& c : design_.chains) {
    if (!c.ffs.empty()) outs.push_back(c.scan_out());
  }
  return outs;
}

std::string ScanModeModel::check() const {
  const Netlist& nl = lv_.netlist();
  for (const auto& [n, lst] : sides_) {
    for (const SideAttachment& a : lst) {
      const Val v = values_[n];
      switch (a.gate_type) {
        case GateType::And:
        case GateType::Nand:
          if (v != Val::One) {
            return "side net " + nl.node_name(n) + " of AND-family gate not 1";
          }
          break;
        case GateType::Or:
        case GateType::Nor:
          if (v != Val::Zero) {
            return "side net " + nl.node_name(n) + " of OR-family gate not 0";
          }
          break;
        default:
          if (v == Val::X) {
            return "recorded side net " + nl.node_name(n) + " is X";
          }
          break;
      }
    }
  }
  return {};
}

}  // namespace fsct
