#include "scan/scan_sequences.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace fsct {

ScanSequenceBuilder::ScanSequenceBuilder(const Netlist& nl,
                                         const ScanDesign& design)
    : nl_(nl), design_(design) {
  pi_index_.assign(nl.size(), -1);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    pi_index_[nl.inputs()[i]] = static_cast<int>(i);
  }
  std::unordered_map<NodeId, std::pair<int, int>> pos;
  for (std::size_t c = 0; c < design.chains.size(); ++c) {
    const auto& ffs = design.chains[c].ffs;
    for (std::size_t k = 0; k < ffs.size(); ++k) {
      pos.emplace(ffs[k], std::make_pair(static_cast<int>(c),
                                         static_cast<int>(k)));
    }
  }
  ff_pos_.reserve(nl.dffs().size());
  for (NodeId ff : nl.dffs()) {
    auto it = pos.find(ff);
    ff_pos_.push_back(it == pos.end() ? std::make_pair(-1, -1) : it->second);
  }
}

std::size_t ScanSequenceBuilder::max_chain_length() const {
  std::size_t m = 0;
  for (const ScanChain& c : design_.chains) m = std::max(m, c.length());
  return m;
}

std::pair<int, int> ScanSequenceBuilder::chain_position(NodeId ff) const {
  for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
    if (nl_.dffs()[i] == ff) return ff_pos_[i];
  }
  return {-1, -1};
}

std::vector<Val> ScanSequenceBuilder::base_vector(Val fill) const {
  std::vector<Val> v(nl_.inputs().size(), fill);
  for (auto [pi, val] : design_.pi_constraints) {
    if (pi_index_[pi] >= 0) v[static_cast<std::size_t>(pi_index_[pi])] = val;
  }
  return v;
}

TestSequence ScanSequenceBuilder::alternating(std::size_t cycles,
                                              Val free_value) const {
  TestSequence seq;
  seq.reserve(cycles);
  for (std::size_t t = 0; t < cycles; ++t) {
    std::vector<Val> v = base_vector(free_value);
    const Val bit = ((t / 2) % 2 == 0) ? Val::Zero : Val::One;  // 0,0,1,1,...
    for (const ScanChain& c : design_.chains) {
      if (pi_index_[c.scan_in] >= 0) {
        v[static_cast<std::size_t>(pi_index_[c.scan_in])] = bit;
      }
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

TestSequence ScanSequenceBuilder::load_state(
    const std::vector<std::vector<Val>>& state,
    const std::vector<Val>& free_pi_values, Val fill) const {
  if (state.size() != design_.chains.size()) {
    throw std::invalid_argument("load_state: one state vector per chain");
  }
  const std::size_t len = max_chain_length();
  TestSequence seq;
  seq.reserve(len);
  for (std::size_t t = 0; t < len; ++t) {
    std::vector<Val> v;
    if (!free_pi_values.empty()) {
      if (free_pi_values.size() != nl_.inputs().size()) {
        throw std::invalid_argument("load_state: free PI vector size");
      }
      v = free_pi_values;
      for (auto [pi, val] : design_.pi_constraints) {
        if (pi_index_[pi] >= 0) {
          v[static_cast<std::size_t>(pi_index_[pi])] = val;
        }
      }
    } else {
      v = base_vector(fill);
    }
    for (std::size_t c = 0; c < design_.chains.size(); ++c) {
      const ScanChain& chain = design_.chains[c];
      const std::size_t L = chain.length();
      if (pi_index_[chain.scan_in] < 0 || L == 0) continue;
      // After `len` clocks, the value injected at clock t sits in position
      // L-1-(t - (len-L)) ... align shorter chains to finish together: start
      // shifting a length-L chain at clock len-L.
      Val bit = fill;
      if (t >= len - L) {
        const std::size_t j = t - (len - L);     // chain-local shift index
        const std::size_t k = L - 1 - j;         // final position of this bit
        Val want = (k < state[c].size()) ? state[c][k] : Val::X;
        if (want == Val::X) want = fill;
        bit = chain.parity_to(k) ? !want : want;
      }
      v[static_cast<std::size_t>(pi_index_[chain.scan_in])] = bit;
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

TestSequence ScanSequenceBuilder::apply_comb_vector(
    const std::vector<Val>& ff_state, const std::vector<Val>& free_pi_values,
    std::size_t observe_cycles) const {
  if (ff_state.size() != nl_.dffs().size()) {
    throw std::invalid_argument("apply_comb_vector: ff_state size");
  }
  std::vector<std::vector<Val>> per_chain(design_.chains.size());
  for (std::size_t c = 0; c < design_.chains.size(); ++c) {
    per_chain[c].assign(design_.chains[c].length(), Val::X);
  }
  for (std::size_t i = 0; i < ff_state.size(); ++i) {
    const auto [c, k] = ff_pos_[i];
    if (c >= 0 && ff_state[i] != Val::X) {
      per_chain[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] =
          ff_state[i];
    }
  }
  TestSequence seq = load_state(per_chain, free_pi_values);
  // Keep shifting so the captured response reaches the scan-outs; hold the
  // vector's free-PI values (they may be needed to keep POs sensitized).
  for (std::size_t t = 0; t < observe_cycles; ++t) {
    std::vector<Val> v;
    if (!free_pi_values.empty()) {
      v = free_pi_values;
      for (auto [pi, val] : design_.pi_constraints) {
        if (pi_index_[pi] >= 0) {
          v[static_cast<std::size_t>(pi_index_[pi])] = val;
        }
      }
    } else {
      v = base_vector(Val::Zero);
    }
    for (const ScanChain& c : design_.chains) {
      if (pi_index_[c.scan_in] >= 0) {
        v[static_cast<std::size_t>(pi_index_[c.scan_in])] = Val::Zero;
      }
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

}  // namespace fsct
