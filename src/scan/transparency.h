// DFT transparency checking: simulation-based evidence that scan insertion
// (MUX scan or TPI) did not change mission behaviour when scan_mode = 0.
//
// The check drives reference and scanned circuit with the same random input
// streams from the same reset state and compares every flip-flop and primary
// output each cycle.  It is a miter in spirit; being simulation-based it is
// falsifiable evidence rather than proof, with the vector budget as the
// confidence knob.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"
#include "scan/scan_chain.h"

namespace fsct {

struct TransparencyOptions {
  int cycles = 256;        ///< clocked vectors per reset epoch
  int epochs = 4;          ///< independent random streams
  std::uint64_t seed = 1;
};

struct TransparencyResult {
  bool equivalent = true;
  /// First divergence found, if any (empty when equivalent).
  std::string diagnosis;
  int cycles_checked = 0;
};

/// Checks that `scanned` (the post-DFT netlist, with `design` describing its
/// scan side) behaves like `reference` in normal mode.  The reference's PIs
/// must be a prefix of the scanned circuit's PIs (scan insertion only appends
/// scan_mode / scan_in pins) and the flip-flop lists must correspond 1:1 in
/// order.  Throws std::invalid_argument when the interfaces cannot be
/// aligned.
TransparencyResult check_dft_transparency(const Netlist& reference,
                                          const Netlist& scanned,
                                          const ScanDesign& design,
                                          const TransparencyOptions& opt = {});

}  // namespace fsct
