// Parallel-pattern single-fault-propagation (PPSFP) combinational fault
// simulation on the "combinational view" of a sequential circuit: primary
// inputs and DFF Q outputs are pattern-controlled sources; primary outputs
// and DFF D pins are observation points.
//
// Patterns are processed 64 at a time; each fault is propagated event-driven
// through its forward cone only, with dirty-value restore between faults.
#pragma once

#include <span>
#include <vector>

#include "fault/fault.h"
#include "sim/comb_sim.h"

namespace fsct {

/// One fully specified combinational pattern: values for all PIs (netlist
/// inputs() order) followed by values for all DFF Qs (netlist dffs() order).
using CombPattern = std::vector<Val>;

/// Per-fault outcome: index of the first detecting pattern, or -1.
struct CombFaultSimResult {
  std::vector<int> detect_pattern;

  std::size_t num_detected() const {
    std::size_t n = 0;
    for (int c : detect_pattern) n += (c >= 0);
    return n;
  }
};

/// PPSFP engine.  `observe` lists observed nodes: a PO id observes that net,
/// a DFF id observes the net at its D pin.
class CombFaultSim {
 public:
  CombFaultSim(const Levelizer& lv, std::vector<NodeId> observe);

  /// Simulates all faults against all patterns.  Patterns must be
  /// pis+dffs-sized (see CombPattern); X entries are allowed.
  CombFaultSimResult run(std::span<const CombPattern> patterns,
                         std::span<const Fault> faults) const;

  const std::vector<NodeId>& observe() const { return observe_; }

 private:
  const Levelizer& lv_;
  std::vector<NodeId> observe_;
  std::vector<char> observed_net_;  // net-level observation flags
};

}  // namespace fsct
