// Parallel-pattern single-fault-propagation (PPSFP) combinational fault
// simulation on the "combinational view" of a sequential circuit: primary
// inputs and DFF Q outputs are pattern-controlled sources; primary outputs
// and DFF D pins are observation points.
//
// Patterns are processed 64 at a time; each fault is propagated event-driven
// through its forward cone only, with dirty-value restore between faults.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/parallel.h"
#include "fault/fault.h"
#include "sim/comb_sim.h"

namespace fsct {

class ObsRegistry;

/// One fully specified combinational pattern: values for all PIs (netlist
/// inputs() order) followed by values for all DFF Qs (netlist dffs() order).
using CombPattern = std::vector<Val>;

/// Per-fault outcome: index of the first detecting pattern, or -1.
struct CombFaultSimResult {
  std::vector<int> detect_pattern;

  std::size_t num_detected() const {
    std::size_t n = 0;
    for (int c : detect_pattern) n += (c >= 0);
    return n;
  }
};

/// PPSFP engine.  `observe` lists observed nodes: a PO id observes that net,
/// a DFF id observes the net at its D pin.
class CombFaultSim {
 public:
  CombFaultSim(const Levelizer& lv, std::vector<NodeId> observe);

  /// Simulates all faults against all patterns.  Patterns must be
  /// pis+dffs-sized (see CombPattern); X entries are allowed.  With a pool,
  /// the fault list of each 64-pattern block is sharded across the executors,
  /// each shard propagating through its own dirty-value scratch arena; the
  /// result is identical to the serial run at any job count (per-fault slots,
  /// first-detecting-pattern semantics preserved by the in-block minimum).
  /// `obs` (optional) receives block/propagation/event/drop counters and
  /// per-chunk trace spans; totals are schedule-independent because each
  /// (fault, block) propagation does identical work at any job count.
  CombFaultSimResult run(std::span<const CombPattern> patterns,
                         std::span<const Fault> faults,
                         ThreadPool* pool = nullptr,
                         ObsRegistry* obs = nullptr) const;

  const std::vector<NodeId>& observe() const { return observe_; }

 private:
  /// Per-executor event-propagation state (good values copied in, dirty nets
  /// restored after every fault).
  struct Scratch {
    std::vector<PackedVal> cur;
    std::vector<std::vector<NodeId>> buckets;  // level-indexed event queue
    std::vector<char> queued;
    std::vector<NodeId> dirty;
    std::uint64_t events = 0;  // net updates, flushed to obs per chunk
  };

  Scratch make_scratch(const std::vector<PackedVal>& good) const;
  /// Propagates one fault over the current 64-pattern block; returns the
  /// pattern mask on which an observed net differs from the good machine.
  std::uint64_t simulate_fault(const Fault& f,
                               const std::vector<PackedVal>& good,
                               Scratch& s) const;

  const Levelizer& lv_;
  std::vector<NodeId> observe_;
  std::vector<char> observed_net_;  // net-level observation flags
};

}  // namespace fsct
