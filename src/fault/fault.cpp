#include "fault/fault.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace fsct {

std::string fault_name(const Netlist& nl, const Fault& f) {
  std::string s = nl.node_name(f.node);
  if (f.pin >= 0) {
    s += "/" + std::to_string(f.pin) + "(" +
         nl.node_name(nl.fanins(f.node)[static_cast<std::size_t>(f.pin)]) +
         ")";
  }
  s += f.stuck_one ? " s-a-1" : " s-a-0";
  return s;
}

Injection to_injection(const Fault& f) {
  return {f.node, f.pin, f.stuck_one ? Val::One : Val::Zero};
}

PackedInjection to_packed_injection(const Fault& f, std::uint64_t mask) {
  return {f.node, f.pin, mask, f.stuck_one ? Val::One : Val::Zero};
}

namespace {

std::vector<int> fanout_counts(const Netlist& nl) {
  std::vector<int> n(nl.size(), 0);
  for (NodeId id = 0; id < nl.size(); ++id) {
    for (NodeId f : nl.fanins(id)) {
      if (f != kNullNode) ++n[f];
    }
  }
  // A PO connection also counts as a fanout use.
  for (NodeId id : nl.outputs()) ++n[id];
  return n;
}

struct FaultKeyHash {
  std::size_t operator()(const Fault& f) const {
    return (static_cast<std::size_t>(f.node) << 8) ^
           (static_cast<std::size_t>(f.pin + 1) << 1) ^
           static_cast<std::size_t>(f.stuck_one);
  }
};

}  // namespace

std::vector<Fault> all_faults(const Netlist& nl) {
  const std::vector<int> fo = fanout_counts(nl);
  std::vector<Fault> faults;
  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});
    const auto fins = nl.fanins(id);
    for (std::size_t p = 0; p < fins.size(); ++p) {
      if (fo[fins[p]] > 1) {  // fanout branch: distinct fault site
        faults.push_back({id, static_cast<int>(p), false});
        faults.push_back({id, static_cast<int>(p), true});
      }
    }
  }
  return faults;
}

std::vector<Fault> collapse_equivalent(const Netlist& nl,
                                       const std::vector<Fault>& faults) {
  std::unordered_map<Fault, std::size_t, FaultKeyHash> index;
  index.reserve(faults.size() * 2);
  for (std::size_t i = 0; i < faults.size(); ++i) index.emplace(faults[i], i);

  // Union-find.
  std::vector<std::size_t> parent(faults.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };
  auto idx_of = [&](const Fault& f) -> std::size_t {
    auto it = index.find(f);
    return it == index.end() ? static_cast<std::size_t>(-1) : it->second;
  };

  const std::vector<int> fo = fanout_counts(nl);
  // The fault seen on pin (g,p): the branch fault if it exists in the
  // universe, otherwise the driver's stem fault (single-fanout driver).
  auto pin_fault = [&](NodeId g, std::size_t p, bool v) -> std::size_t {
    if (std::size_t i = idx_of({g, static_cast<int>(p), v});
        i != static_cast<std::size_t>(-1)) {
      return i;
    }
    const NodeId drv = nl.fanins(g)[p];
    if (fo[drv] == 1) return idx_of({drv, -1, v});
    return static_cast<std::size_t>(-1);
  };

  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    const std::size_t out0 = idx_of({id, -1, false});
    const std::size_t out1 = idx_of({id, -1, true});
    if (out0 == static_cast<std::size_t>(-1)) continue;
    const std::size_t n = nl.fanins(id).size();
    switch (t) {
      case GateType::And:
      case GateType::Nand: {
        const std::size_t out = (t == GateType::And) ? out0 : out1;
        for (std::size_t p = 0; p < n; ++p) {
          if (std::size_t pf = pin_fault(id, p, false);
              pf != static_cast<std::size_t>(-1)) {
            unite(pf, out);
          }
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const std::size_t out = (t == GateType::Or) ? out1 : out0;
        for (std::size_t p = 0; p < n; ++p) {
          if (std::size_t pf = pin_fault(id, p, true);
              pf != static_cast<std::size_t>(-1)) {
            unite(pf, out);
          }
        }
        break;
      }
      case GateType::Buf:
      case GateType::Dff: {
        if (std::size_t pf = pin_fault(id, 0, false);
            pf != static_cast<std::size_t>(-1)) {
          unite(pf, out0);
        }
        if (std::size_t pf = pin_fault(id, 0, true);
            pf != static_cast<std::size_t>(-1)) {
          unite(pf, out1);
        }
        break;
      }
      case GateType::Not: {
        if (std::size_t pf = pin_fault(id, 0, false);
            pf != static_cast<std::size_t>(-1)) {
          unite(pf, out1);
        }
        if (std::size_t pf = pin_fault(id, 0, true);
            pf != static_cast<std::size_t>(-1)) {
          unite(pf, out0);
        }
        break;
      }
      default:
        break;  // XOR/XNOR/MUX/PI: no structural equivalences
    }
  }

  std::vector<Fault> out;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (find(i) == i) out.push_back(faults[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fault> collapsed_fault_list(const Netlist& nl) {
  return collapse_equivalent(nl, all_faults(nl));
}

}  // namespace fsct
