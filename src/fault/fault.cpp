#include "fault/fault.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace fsct {

std::string fault_name(const Netlist& nl, const Fault& f) {
  std::string s = nl.node_name(f.node);
  if (f.pin >= 0) {
    s += "/" + std::to_string(f.pin) + "(" +
         nl.node_name(nl.fanins(f.node)[static_cast<std::size_t>(f.pin)]) +
         ")";
  }
  s += f.stuck_one ? " s-a-1" : " s-a-0";
  return s;
}

Injection to_injection(const Fault& f) {
  return {f.node, f.pin, f.stuck_one ? Val::One : Val::Zero};
}

PackedInjection to_packed_injection(const Fault& f, std::uint64_t mask) {
  return {f.node, f.pin, mask, f.stuck_one ? Val::One : Val::Zero};
}

namespace {

std::vector<int> fanout_counts(const Netlist& nl) {
  std::vector<int> n(nl.size(), 0);
  for (NodeId id = 0; id < nl.size(); ++id) {
    for (NodeId f : nl.fanins(id)) {
      if (f != kNullNode) ++n[f];
    }
  }
  // A PO connection also counts as a fanout use.
  for (NodeId id : nl.outputs()) ++n[id];
  return n;
}

struct FaultKeyHash {
  std::size_t operator()(const Fault& f) const {
    return (static_cast<std::size_t>(f.node) << 8) ^
           (static_cast<std::size_t>(f.pin + 1) << 1) ^
           static_cast<std::size_t>(f.stuck_one);
  }
};

constexpr std::size_t npos = static_cast<std::size_t>(-1);

using FaultIndex = std::unordered_map<Fault, std::size_t, FaultKeyHash>;

FaultIndex build_fault_index(std::span<const Fault> faults) {
  FaultIndex index;
  index.reserve(faults.size() * 2);
  for (std::size_t i = 0; i < faults.size(); ++i) index.emplace(faults[i], i);
  return index;
}

std::size_t idx_of(const FaultIndex& index, const Fault& f) {
  const auto it = index.find(f);
  return it == index.end() ? npos : it->second;
}

std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

// The fault seen on pin (g,p): the branch fault if it exists in the
// universe, otherwise the driver's stem fault (single-fanout driver).
std::size_t pin_fault_index(const Netlist& nl, const FaultIndex& index,
                            const std::vector<int>& fo, NodeId g,
                            std::size_t p, bool v) {
  if (std::size_t i = idx_of(index, {g, static_cast<int>(p), v}); i != npos) {
    return i;
  }
  const NodeId drv = nl.fanins(g)[p];
  if (fo[drv] == 1) return idx_of(index, {drv, -1, v});
  return npos;
}

// Structural-equivalence union-find over `faults`.  `cross_dff` selects
// whether the DFF input<->output rule participates: that equivalence is
// *sequential* (the two faults sit one shift cycle apart), valid when
// collapsing a target list but not for single-frame combinational
// implications, so dominance resolution builds a second union-find without
// it.  Because the universe is emitted in ascending Fault order and unions
// point the larger index at the smaller, uf_find of any member yields the
// class's minimal fault — the representative collapse_equivalent keeps.
std::vector<std::size_t> equivalence_parents(const Netlist& nl,
                                             std::span<const Fault> faults,
                                             const FaultIndex& index,
                                             const std::vector<int>& fo,
                                             bool cross_dff) {
  std::vector<std::size_t> parent(faults.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto unite = [&](std::size_t a, std::size_t b) {
    a = uf_find(parent, a);
    b = uf_find(parent, b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };
  auto pin_fault = [&](NodeId g, std::size_t p, bool v) {
    return pin_fault_index(nl, index, fo, g, p, v);
  };

  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    const std::size_t out0 = idx_of(index, {id, -1, false});
    const std::size_t out1 = idx_of(index, {id, -1, true});
    if (out0 == npos) continue;
    const std::size_t n = nl.fanins(id).size();
    switch (t) {
      case GateType::And:
      case GateType::Nand: {
        const std::size_t out = (t == GateType::And) ? out0 : out1;
        for (std::size_t p = 0; p < n; ++p) {
          if (std::size_t pf = pin_fault(id, p, false); pf != npos) {
            unite(pf, out);
          }
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const std::size_t out = (t == GateType::Or) ? out1 : out0;
        for (std::size_t p = 0; p < n; ++p) {
          if (std::size_t pf = pin_fault(id, p, true); pf != npos) {
            unite(pf, out);
          }
        }
        break;
      }
      case GateType::Dff:
        if (!cross_dff) break;
        [[fallthrough]];
      case GateType::Buf: {
        if (std::size_t pf = pin_fault(id, 0, false); pf != npos) {
          unite(pf, out0);
        }
        if (std::size_t pf = pin_fault(id, 0, true); pf != npos) {
          unite(pf, out1);
        }
        break;
      }
      case GateType::Not: {
        if (std::size_t pf = pin_fault(id, 0, false); pf != npos) {
          unite(pf, out1);
        }
        if (std::size_t pf = pin_fault(id, 0, true); pf != npos) {
          unite(pf, out0);
        }
        break;
      }
      default:
        break;  // XOR/XNOR/MUX/PI: no structural equivalences
    }
  }
  return parent;
}

}  // namespace

std::vector<Fault> all_faults(const Netlist& nl) {
  const std::vector<int> fo = fanout_counts(nl);
  std::vector<Fault> faults;
  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});
    const auto fins = nl.fanins(id);
    for (std::size_t p = 0; p < fins.size(); ++p) {
      if (fo[fins[p]] > 1) {  // fanout branch: distinct fault site
        faults.push_back({id, static_cast<int>(p), false});
        faults.push_back({id, static_cast<int>(p), true});
      }
    }
  }
  return faults;
}

std::vector<Fault> collapse_equivalent(const Netlist& nl,
                                       const std::vector<Fault>& faults) {
  const FaultIndex index = build_fault_index(faults);
  const std::vector<int> fo = fanout_counts(nl);
  std::vector<std::size_t> parent =
      equivalence_parents(nl, faults, index, fo, /*cross_dff=*/true);

  std::vector<Fault> out;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (uf_find(parent, i) == i) out.push_back(faults[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fault> collapsed_fault_list(const Netlist& nl) {
  return collapse_equivalent(nl, all_faults(nl));
}

DominanceInfo collapse_dominant(const Netlist& nl,
                                std::span<const Fault> collapsed) {
  DominanceInfo di;
  di.rep.resize(collapsed.size());
  std::iota(di.rep.begin(), di.rep.end(), 0);

  const std::vector<Fault> universe = all_faults(nl);
  const FaultIndex uindex = build_fault_index(universe);
  const FaultIndex cindex = build_fault_index(collapsed);
  const std::vector<int> fo = fanout_counts(nl);
  std::vector<std::size_t> eq =
      equivalence_parents(nl, universe, uindex, fo, /*cross_dff=*/true);
  std::vector<std::size_t> comb =
      equivalence_parents(nl, universe, uindex, fo, /*cross_dff=*/false);

  // Index in `collapsed` of the class representative of universe fault u,
  // provided the representative is reachable from u through combinationally
  // valid equivalences only (the comb union-find refines the full one, so a
  // representative in a different comb class was merged across a DFF).
  auto comb_rep_in_list = [&](std::size_t u) -> std::size_t {
    const std::size_t r = uf_find(eq, u);
    if (uf_find(comb, r) != uf_find(comb, u)) return npos;
    return idx_of(cindex, universe[r]);
  };

  // One candidate edge per gate: drop the dominating output fault's class in
  // favour of the smallest input-fault class of the excited polarity.
  std::vector<std::size_t> dom(collapsed.size(), npos);
  for (NodeId id = 0; id < nl.size(); ++id) {
    bool out_sa = false, pin_sa = false;
    switch (nl.type(id)) {
      case GateType::And:  out_sa = true;  pin_sa = true;  break;
      case GateType::Nand: out_sa = false; pin_sa = true;  break;
      case GateType::Or:   out_sa = false; pin_sa = false; break;
      case GateType::Nor:  out_sa = true;  pin_sa = false; break;
      default: continue;
    }
    const std::size_t ou = idx_of(uindex, {id, -1, out_sa});
    if (ou == npos) continue;
    const std::size_t oc = comb_rep_in_list(ou);
    if (oc == npos) continue;
    std::size_t best = npos;
    for (std::size_t p = 0; p < nl.fanins(id).size(); ++p) {
      const std::size_t pu = pin_fault_index(nl, uindex, fo, id, p, pin_sa);
      if (pu == npos) continue;
      const std::size_t rc = comb_rep_in_list(pu);
      if (rc == npos || rc == oc) continue;
      if (best == npos || collapsed[rc] < collapsed[best]) best = rc;
    }
    if (best == npos) continue;
    if (dom[oc] == npos || collapsed[best] < collapsed[dom[oc]]) dom[oc] = best;
  }

  // A representative may itself be dominated: resolve chains to their kept
  // fixpoint.  Equivalence classes can span several gates, so guard against a
  // resolution cycle by keeping the class where it closes.
  std::vector<char> state(collapsed.size(), 0);  // 0 new, 1 on path, 2 done
  auto resolve = [&](auto&& self, std::size_t i) -> std::size_t {
    if (state[i] == 2) return di.rep[i];
    if (state[i] == 1) {
      dom[i] = npos;
      return i;
    }
    state[i] = 1;
    const std::size_t r = dom[i] == npos ? i : self(self, dom[i]);
    state[i] = 2;
    di.rep[i] = r;
    return r;
  };
  for (std::size_t i = 0; i < collapsed.size(); ++i) resolve(resolve, i);

  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    if (di.rep[i] == i) di.targets.push_back(i);
  }
  return di;
}

std::vector<std::vector<std::size_t>> dominated_sets(
    const Netlist& nl, std::span<const Fault> collapsed) {
  std::vector<std::vector<std::size_t>> out(collapsed.size());

  const std::vector<Fault> universe = all_faults(nl);
  const FaultIndex uindex = build_fault_index(universe);
  const FaultIndex cindex = build_fault_index(collapsed);
  const std::vector<int> fo = fanout_counts(nl);
  std::vector<std::size_t> eq =
      equivalence_parents(nl, universe, uindex, fo, /*cross_dff=*/true);
  std::vector<std::size_t> comb =
      equivalence_parents(nl, universe, uindex, fo, /*cross_dff=*/false);
  auto comb_rep_in_list = [&](std::size_t u) -> std::size_t {
    const std::size_t r = uf_find(eq, u);
    if (uf_find(comb, r) != uf_find(comb, u)) return npos;
    return idx_of(cindex, universe[r]);
  };

  for (NodeId id = 0; id < nl.size(); ++id) {
    bool out_sa = false, pin_sa = false;
    switch (nl.type(id)) {
      case GateType::And:  out_sa = true;  pin_sa = true;  break;
      case GateType::Nand: out_sa = false; pin_sa = true;  break;
      case GateType::Or:   out_sa = false; pin_sa = false; break;
      case GateType::Nor:  out_sa = true;  pin_sa = false; break;
      default: continue;
    }
    const std::size_t ou = idx_of(uindex, {id, -1, out_sa});
    if (ou == npos) continue;
    const std::size_t oc = comb_rep_in_list(ou);
    if (oc == npos) continue;
    for (std::size_t p = 0; p < nl.fanins(id).size(); ++p) {
      const std::size_t pu = pin_fault_index(nl, uindex, fo, id, p, pin_sa);
      if (pu == npos) continue;
      const std::size_t rc = comb_rep_in_list(pu);
      if (rc == npos || rc == oc) continue;
      out[oc].push_back(rc);
    }
  }
  // Equivalence classes can span gates, so the same class may collect the
  // same dominated index from several sites — and, through a class cycle,
  // even itself.  Deduplicate and drop self-edges so transitive worklist
  // propagation terminates.
  for (std::size_t i = 0; i < out.size(); ++i) {
    auto& v = out[i];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    v.erase(std::remove(v.begin(), v.end(), i), v.end());
  }
  return out;
}

}  // namespace fsct
