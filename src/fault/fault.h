// Single stuck-at fault model: fault universe generation and structural
// equivalence collapsing.
//
// A fault is a (location, polarity) pair.  Locations are either a node's
// output stem (pin == -1) or one of its fanin pins (pin >= 0, a branch
// fault).  Pin faults are only generated where they are not trivially
// equivalent to the driver's stem fault, i.e. on fanout branches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/comb_sim.h"

namespace fsct {

/// One single stuck-at fault.
struct Fault {
  NodeId node = kNullNode;  ///< gate whose output (pin==-1) or input pin is stuck
  int pin = -1;             ///< -1 = output stem, else fanin pin index
  bool stuck_one = false;   ///< true = s-a-1, false = s-a-0

  friend bool operator==(const Fault&, const Fault&) = default;
  friend auto operator<=>(const Fault&, const Fault&) = default;
};

/// "U123/2 s-a-1" style description using netlist names.
std::string fault_name(const Netlist& nl, const Fault& f);

/// The simulation injection equivalent to this fault.
Injection to_injection(const Fault& f);

/// Packed injection forcing this fault on the patterns in `mask`.
PackedInjection to_packed_injection(const Fault& f, std::uint64_t mask);

/// Complete uncollapsed universe: both polarities on every node output and on
/// every gate/DFF input pin whose driver has more than one fanout connection
/// (fanout branches).  Pins fed by single-fanout drivers are represented by
/// the driver's stem fault.
std::vector<Fault> all_faults(const Netlist& nl);

/// Structural equivalence collapsing (classic rules):
///  - controlling-value input faults of AND/NAND/OR/NOR collapse with the
///    corresponding output fault,
///  - NOT/BUF/DFF input faults collapse with the (inverted) output fault,
///  - a stem fault collapses with the pin fault of its unique fanout.
/// Returns one representative per equivalence class, in deterministic order.
std::vector<Fault> collapse_equivalent(const Netlist& nl,
                                       const std::vector<Fault>& faults);

/// Convenience: collapse_equivalent(nl, all_faults(nl)).
std::vector<Fault> collapsed_fault_list(const Netlist& nl);

/// Dominance collapsing over an equivalence-collapsed fault list.
///
/// `rep` is the expansion table: for every input fault i, rep[i] indexes the
/// fault in the *input list* whose (single-vector, combinational) detection
/// implies detection of fault i; rep[i] == i for kept targets.  Expanding a
/// target's outcome through this table therefore reproduces the uncollapsed
/// verdict without re-targeting the dropped fault.
struct DominanceInfo {
  std::vector<std::size_t> targets;  ///< kept indices into the input list, ascending
  std::vector<std::size_t> rep;      ///< per input fault: its representative's index
  std::size_t dropped() const { return rep.size() - targets.size(); }
};

/// Classic dominance rules on top of equivalence collapsing: the output fault
/// of AND s-a-1 / NAND s-a-0 / OR s-a-0 / NOR s-a-1 dominates the same gate's
/// input faults of the excited polarity, so the output fault is dropped and
/// one input fault kept as its representative (the smallest resolved fault,
/// for determinism; chains of dominance resolve to a kept fixpoint).
///
/// The implication "any test for the representative also detects the dropped
/// fault" only holds per single combinational vector, so representatives are
/// resolved exclusively through combinationally valid equivalences: a
/// resolution that would cross a DFF boundary (where input/output equivalence
/// is sequential, one shift cycle apart) keeps the fault as a target instead.
/// Faults in `collapsed` that cannot be matched to the netlist's universe are
/// kept unchanged, so the function is total over arbitrary fault lists.
DominanceInfo collapse_dominant(const Netlist& nl,
                                std::span<const Fault> collapsed);

/// Untestability-propagation adjacency.  For each fault i in `collapsed`
/// that is the dominating output fault of some gate (AND s-a-1 / NAND s-a-0 /
/// OR s-a-0 / NOR s-a-1), out[i] lists the same gate's excited-polarity input
/// fault classes (resolved through combinationally valid equivalences into
/// `collapsed`).  Every single-vector test for a listed input fault also
/// detects fault i — tests(input) ⊆ tests(output) — so a proof that fault i
/// is combinationally untestable transfers to every listed fault, and
/// transitively to their own sets.  The reverse direction (detection credit)
/// is NOT sound and is never derived from this table.
std::vector<std::vector<std::size_t>> dominated_sets(
    const Netlist& nl, std::span<const Fault> collapsed);

}  // namespace fsct
