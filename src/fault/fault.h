// Single stuck-at fault model: fault universe generation and structural
// equivalence collapsing.
//
// A fault is a (location, polarity) pair.  Locations are either a node's
// output stem (pin == -1) or one of its fanin pins (pin >= 0, a branch
// fault).  Pin faults are only generated where they are not trivially
// equivalent to the driver's stem fault, i.e. on fanout branches.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/comb_sim.h"

namespace fsct {

/// One single stuck-at fault.
struct Fault {
  NodeId node = kNullNode;  ///< gate whose output (pin==-1) or input pin is stuck
  int pin = -1;             ///< -1 = output stem, else fanin pin index
  bool stuck_one = false;   ///< true = s-a-1, false = s-a-0

  friend bool operator==(const Fault&, const Fault&) = default;
  friend auto operator<=>(const Fault&, const Fault&) = default;
};

/// "U123/2 s-a-1" style description using netlist names.
std::string fault_name(const Netlist& nl, const Fault& f);

/// The simulation injection equivalent to this fault.
Injection to_injection(const Fault& f);

/// Packed injection forcing this fault on the patterns in `mask`.
PackedInjection to_packed_injection(const Fault& f, std::uint64_t mask);

/// Complete uncollapsed universe: both polarities on every node output and on
/// every gate/DFF input pin whose driver has more than one fanout connection
/// (fanout branches).  Pins fed by single-fanout drivers are represented by
/// the driver's stem fault.
std::vector<Fault> all_faults(const Netlist& nl);

/// Structural equivalence collapsing (classic rules):
///  - controlling-value input faults of AND/NAND/OR/NOR collapse with the
///    corresponding output fault,
///  - NOT/BUF/DFF input faults collapse with the (inverted) output fault,
///  - a stem fault collapses with the pin fault of its unique fanout.
/// Returns one representative per equivalence class, in deterministic order.
std::vector<Fault> collapse_equivalent(const Netlist& nl,
                                       const std::vector<Fault>& faults);

/// Convenience: collapse_equivalent(nl, all_faults(nl)).
std::vector<Fault> collapsed_fault_list(const Netlist& nl);

}  // namespace fsct
