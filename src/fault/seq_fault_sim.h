// Sequential stuck-at fault simulation over a fixed test sequence.
//
// Detection criterion (standard "definite detection"): at some cycle, an
// observed net carries a binary value in the good machine and the *opposite*
// binary value in the faulty machine.  X never detects.
//
// Three engines with identical per-fault semantics:
//  * run_serial  — one faulty machine at a time (reference implementation),
//  * run         — parallel-fault: 63 faulty machines + the good machine per
//                  64-bit word, W/64 words per lane block (W = SIMD width in
//                  bits), i.e. 63 * W/64 faults per packed pass.  Bit 0 of
//                  every word carries the good machine (injections never
//                  touch it),
//  * run_pairs   — fault x pattern parallel: independent (fault, sequence)
//                  pairs packed two lanes each (even lane = that pair's good
//                  machine, odd = faulty), 32 * W/64 pairs per pass; used to
//                  retire many step-3 verification replays per sweep.
//
// Counter contract (schedule- and jobs-independent by construction):
//  * SeqSimPackedPasses increments once per packed pass.  The pass partition
//    is fixed-size slices of the input — ceil(n_faults / (63 * W/64)) for
//    run(), ceil(n_pairs / (32 * W/64)) for run_pairs() — so pass counts are
//    a pure function of (fault/pair count, lane width): no dependence on
//    detections, thread schedule or pool size.  tests/fault/seq_fault_sim_test
//    pins the counts at widths 64/256/512.  A batch small enough to fit one
//    pass at a narrower width is clamped down to it (empty lanes are pure
//    overhead); that batch takes exactly one pass at either width, so the
//    pure-function property is unaffected.
//  * SeqSimCycles sums the machine-cycles each pass simulates.  A pass stops
//    early once every fault in it is detected, so the sum depends only on
//    (sequence, fault list, initial state, lane width) — wider passes retire
//    in fewer aggregate cycles.
//  * SeqSimFaultsDropped counts detections; identical at every width.
//
// Per-fault attribution (optional `attr_ids`, parallel to the fault/pair
// span): each engine charges Attr::SeqSims (or Attr::PairReplays) once per
// fault and Attr::SeqCycles with the fault's **resolved cycles** — its
// detecting cycle + 1, or the full sequence length when undetected.  Unlike
// the pass-granular SeqSimCycles counter (which varies with lane packing),
// resolved cycles are a pure function of (sequence, fault, initial state),
// so per-fault charges are bitwise identical at every lane width and job
// count.  An empty span (the default) records nothing.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/parallel.h"
#include "fault/fault.h"
#include "sim/seq_sim.h"
#include "sim/soa_circuit.h"

namespace fsct {

class ObsRegistry;

/// One PI assignment per clock cycle, each indexed in netlist inputs() order.
using TestSequence = std::vector<std::vector<Val>>;

/// Per-fault outcome: first detecting cycle, or -1 if the sequence does not
/// detect the fault.
struct SeqFaultSimResult {
  std::vector<int> detect_cycle;

  std::size_t num_detected() const {
    std::size_t n = 0;
    for (int c : detect_cycle) n += (c >= 0);
    return n;
  }
};

/// One independent (fault, sequence) verification job for run_pairs().
struct FaultSeqPair {
  Fault fault;
  const TestSequence* seq = nullptr;
};

/// Sequential fault simulator.  `observe` lists the nets sampled every cycle
/// (primary outputs, plus e.g. the scan-out flip-flop's Q).  A DFF id in the
/// list observes its Q value (pre-clock-edge state).
class SeqFaultSim {
 public:
  /// `simd_width` is the packed lane width in bits (64/256/512);
  /// 0 picks the process default (see set_default_simd_width).  The width
  /// affects throughput and pass counters only, never per-fault outcomes.
  SeqFaultSim(const Levelizer& lv, std::vector<NodeId> observe,
              int simd_width = 0);

  /// Serial reference engine.  `obs` (optional) receives run/cycle/drop
  /// counters; `attr_ids` (optional, parallel to `faults`) routes per-fault
  /// attribution charges (see the file comment).
  SeqFaultSimResult run_serial(const TestSequence& seq,
                               std::span<const Fault> faults,
                               Val initial_state = Val::X,
                               ObsRegistry* obs = nullptr,
                               std::span<const std::size_t> attr_ids = {}) const;

  /// Parallel-fault engine (63 * W/64 faults per packed pass; see the file
  /// comment for the counter contract).  The packed passes are mutually
  /// independent; with a pool they are dispatched concurrently, each writing
  /// its own disjoint slice of the result, so the output is identical to the
  /// serial run at any job count and any lane width.
  SeqFaultSimResult run(const TestSequence& seq, std::span<const Fault> faults,
                        Val initial_state = Val::X,
                        ThreadPool* pool = nullptr,
                        ObsRegistry* obs = nullptr,
                        std::span<const std::size_t> attr_ids = {}) const;

  /// Batched independent (fault, sequence) pairs, 32 * W/64 per pass.
  /// Returns the first detecting cycle per pair (-1 = not detected), exactly
  /// run_serial(*pairs[i].seq, {pairs[i].fault}) for each i.
  std::vector<int> run_pairs(std::span<const FaultSeqPair> pairs,
                             Val initial_state = Val::X,
                             ThreadPool* pool = nullptr,
                             ObsRegistry* obs = nullptr,
                             std::span<const std::size_t> attr_ids = {}) const;

  const std::vector<NodeId>& observe() const { return observe_; }
  int simd_width() const { return width_; }

 private:
  template <int NW>
  void run_width(const TestSequence& seq, std::span<const Fault> faults,
                 Val initial_state, ThreadPool* pool, ObsRegistry* obs,
                 std::span<const std::size_t> attr_ids,
                 SeqFaultSimResult& res) const;
  template <int NW>
  void run_pairs_width(std::span<const FaultSeqPair> pairs, Val initial_state,
                       ThreadPool* pool, ObsRegistry* obs,
                       std::span<const std::size_t> attr_ids,
                       std::vector<int>& out) const;

  const Levelizer& lv_;
  std::vector<NodeId> observe_;
  std::shared_ptr<const SoaCircuit> soa_;
  int width_;
};

}  // namespace fsct
