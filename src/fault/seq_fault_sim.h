// Sequential stuck-at fault simulation over a fixed test sequence.
//
// Detection criterion (standard "definite detection"): at some cycle, an
// observed net carries a binary value in the good machine and the *opposite*
// binary value in the faulty machine.  X never detects.
//
// Two engines with identical semantics:
//  * run_serial  — one faulty machine at a time (reference implementation),
//  * run         — parallel-fault: 63 faulty machines + the good machine
//                  packed in one 64-bit word per net (bit 0 = good).
#pragma once

#include <span>
#include <vector>

#include "core/parallel.h"
#include "fault/fault.h"
#include "sim/seq_sim.h"

namespace fsct {

class ObsRegistry;

/// One PI assignment per clock cycle, each indexed in netlist inputs() order.
using TestSequence = std::vector<std::vector<Val>>;

/// Per-fault outcome: first detecting cycle, or -1 if the sequence does not
/// detect the fault.
struct SeqFaultSimResult {
  std::vector<int> detect_cycle;

  std::size_t num_detected() const {
    std::size_t n = 0;
    for (int c : detect_cycle) n += (c >= 0);
    return n;
  }
};

/// Sequential fault simulator.  `observe` lists the nets sampled every cycle
/// (primary outputs, plus e.g. the scan-out flip-flop's Q).  A DFF id in the
/// list observes its Q value (pre-clock-edge state).
class SeqFaultSim {
 public:
  SeqFaultSim(const Levelizer& lv, std::vector<NodeId> observe);

  /// Serial reference engine.  `obs` (optional) receives run/cycle/drop
  /// counters.
  SeqFaultSimResult run_serial(const TestSequence& seq,
                               std::span<const Fault> faults,
                               Val initial_state = Val::X,
                               ObsRegistry* obs = nullptr) const;

  /// Parallel-fault engine (63 faults per packed pass).  The packed passes
  /// are mutually independent; with a pool they are dispatched concurrently,
  /// each writing its own disjoint 63-fault slice of the result, so the
  /// output is identical to the serial run at any job count.  `obs`
  /// (optional) receives pass/cycle/drop counters and one trace span per
  /// packed pass; pass counters depend only on the fault partition (fixed
  /// 63-fault slices), so they too are schedule-independent.
  SeqFaultSimResult run(const TestSequence& seq, std::span<const Fault> faults,
                        Val initial_state = Val::X,
                        ThreadPool* pool = nullptr,
                        ObsRegistry* obs = nullptr) const;

  const std::vector<NodeId>& observe() const { return observe_; }

 private:
  const Levelizer& lv_;
  std::vector<NodeId> observe_;
};

}  // namespace fsct
