#include "fault/seq_fault_sim.h"

#include <bit>

namespace fsct {

SeqFaultSim::SeqFaultSim(const Levelizer& lv, std::vector<NodeId> observe)
    : lv_(lv), observe_(std::move(observe)) {}

SeqFaultSimResult SeqFaultSim::run_serial(const TestSequence& seq,
                                          std::span<const Fault> faults,
                                          Val initial_state) const {
  SeqFaultSimResult res;
  res.detect_cycle.assign(faults.size(), -1);

  // Good machine trace at the observation points.
  std::vector<std::vector<Val>> good_obs(seq.size());
  {
    SeqSim good(lv_);
    good.reset(initial_state);
    for (std::size_t t = 0; t < seq.size(); ++t) {
      const auto& v = good.step(seq[t]);
      good_obs[t].reserve(observe_.size());
      for (NodeId n : observe_) good_obs[t].push_back(v[n]);
    }
  }

  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Injection inj[1] = {to_injection(faults[fi])};
    SeqSim faulty(lv_);
    faulty.reset(initial_state);
    for (std::size_t t = 0; t < seq.size() && res.detect_cycle[fi] < 0; ++t) {
      const auto& v = faulty.step(seq[t], inj);
      for (std::size_t o = 0; o < observe_.size(); ++o) {
        const Val g = good_obs[t][o];
        const Val f = v[observe_[o]];
        if (g != Val::X && f != Val::X && g != f) {
          res.detect_cycle[fi] = static_cast<int>(t);
          break;
        }
      }
    }
  }
  return res;
}

SeqFaultSimResult SeqFaultSim::run(const TestSequence& seq,
                                   std::span<const Fault> faults,
                                   Val initial_state) const {
  SeqFaultSimResult res;
  res.detect_cycle.assign(faults.size(), -1);
  const Netlist& nl = lv_.netlist();

  std::vector<PackedVal> pi_packed(nl.inputs().size());
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t chunk = std::min<std::size_t>(63, faults.size() - base);
    std::vector<PackedInjection> inj;
    inj.reserve(chunk);
    for (std::size_t k = 0; k < chunk; ++k) {
      inj.push_back(to_packed_injection(faults[base + k], 1ull << (k + 1)));
    }

    PackedSeqSim sim(lv_);
    sim.reset(initial_state);
    std::uint64_t undet = ((chunk == 63) ? ~1ull : ((1ull << (chunk + 1)) - 2));
    for (std::size_t t = 0; t < seq.size() && undet != 0; ++t) {
      for (std::size_t i = 0; i < pi_packed.size(); ++i) {
        pi_packed[i] = PackedVal::broadcast(seq[t][i]);
      }
      const auto& v = sim.step(pi_packed, inj);
      for (NodeId n : observe_) {
        const PackedVal pv = v[n];
        const Val g = pv.at(0);
        std::uint64_t det = 0;
        if (g == Val::Zero) det = pv.one;
        if (g == Val::One) det = pv.zero;
        det &= undet;
        while (det != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(det));
          det &= det - 1;
          undet &= ~(1ull << bit);
          res.detect_cycle[base + bit - 1] = static_cast<int>(t);
        }
      }
    }
  }
  return res;
}

}  // namespace fsct
