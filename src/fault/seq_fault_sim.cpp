#include "fault/seq_fault_sim.h"

#include <bit>

#include "core/obs.h"

namespace fsct {

SeqFaultSim::SeqFaultSim(const Levelizer& lv, std::vector<NodeId> observe)
    : lv_(lv), observe_(std::move(observe)) {}

SeqFaultSimResult SeqFaultSim::run_serial(const TestSequence& seq,
                                          std::span<const Fault> faults,
                                          Val initial_state,
                                          ObsRegistry* obs) const {
  SeqFaultSimResult res;
  res.detect_cycle.assign(faults.size(), -1);

  // Good machine trace at the observation points.
  std::vector<std::vector<Val>> good_obs(seq.size());
  {
    SeqSim good(lv_);
    good.reset(initial_state);
    for (std::size_t t = 0; t < seq.size(); ++t) {
      const auto& v = good.step(seq[t]);
      good_obs[t].reserve(observe_.size());
      for (NodeId n : observe_) good_obs[t].push_back(v[n]);
    }
  }

  std::uint64_t cycles = 0;
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Injection inj[1] = {to_injection(faults[fi])};
    SeqSim faulty(lv_);
    faulty.reset(initial_state);
    for (std::size_t t = 0; t < seq.size() && res.detect_cycle[fi] < 0; ++t) {
      ++cycles;
      const auto& v = faulty.step(seq[t], inj);
      for (std::size_t o = 0; o < observe_.size(); ++o) {
        const Val g = good_obs[t][o];
        const Val f = v[observe_[o]];
        if (g != Val::X && f != Val::X && g != f) {
          res.detect_cycle[fi] = static_cast<int>(t);
          break;
        }
      }
    }
  }
  if (obs) {
    obs->add(Ctr::SeqSimSerialRuns);
    obs->add(Ctr::SeqSimCycles, cycles);
    obs->add(Ctr::SeqSimFaultsDropped, res.num_detected());
  }
  return res;
}

SeqFaultSimResult SeqFaultSim::run(const TestSequence& seq,
                                   std::span<const Fault> faults,
                                   Val initial_state,
                                   ThreadPool* pool,
                                   ObsRegistry* obs) const {
  SeqFaultSimResult res;
  res.detect_cycle.assign(faults.size(), -1);
  const Netlist& nl = lv_.netlist();

  // One packed pass: the good machine plus 63 faulty machines starting at
  // fault index `base`, writing the pass's disjoint result slice.
  auto packed_pass = [&](std::size_t base) {
    const ObsSpan span(obs, "seqsim.pass");
    const std::size_t chunk = std::min<std::size_t>(63, faults.size() - base);
    std::vector<PackedVal> pi_packed(nl.inputs().size());
    std::vector<PackedInjection> inj;
    inj.reserve(chunk);
    for (std::size_t k = 0; k < chunk; ++k) {
      inj.push_back(to_packed_injection(faults[base + k], 1ull << (k + 1)));
    }

    PackedSeqSim sim(lv_);
    sim.reset(initial_state);
    std::uint64_t cycles = 0, dropped = 0;
    std::uint64_t undet = ((chunk == 63) ? ~1ull : ((1ull << (chunk + 1)) - 2));
    for (std::size_t t = 0; t < seq.size() && undet != 0; ++t) {
      ++cycles;
      for (std::size_t i = 0; i < pi_packed.size(); ++i) {
        pi_packed[i] = PackedVal::broadcast(seq[t][i]);
      }
      const auto& v = sim.step(pi_packed, inj);
      for (NodeId n : observe_) {
        const PackedVal pv = v[n];
        const Val g = pv.at(0);
        std::uint64_t det = 0;
        if (g == Val::Zero) det = pv.one;
        if (g == Val::One) det = pv.zero;
        det &= undet;
        while (det != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(det));
          det &= det - 1;
          undet &= ~(1ull << bit);
          res.detect_cycle[base + bit - 1] = static_cast<int>(t);
          ++dropped;
        }
      }
    }
    if (obs) {
      obs->add(Ctr::SeqSimPackedPasses);
      obs->add(Ctr::SeqSimCycles, cycles);
      obs->add(Ctr::SeqSimFaultsDropped, dropped);
    }
  };

  const std::size_t passes = (faults.size() + 62) / 63;
  if (pool != nullptr && pool->jobs() > 1 && passes > 1) {
    parallel_for(*pool, passes, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t p = b; p < e; ++p) packed_pass(p * 63);
    });
  } else {
    for (std::size_t p = 0; p < passes; ++p) packed_pass(p * 63);
  }
  return res;
}

}  // namespace fsct
