#include "fault/seq_fault_sim.h"

#include <algorithm>
#include <bit>

#include "core/obs.h"

namespace fsct {

SeqFaultSim::SeqFaultSim(const Levelizer& lv, std::vector<NodeId> observe,
                         int simd_width)
    : lv_(lv),
      observe_(std::move(observe)),
      soa_(SoaCircuit::compile(lv)),
      width_(simd_width ? simd_width : default_simd_width()) {
  if (!is_valid_simd_width(width_)) {
    throw std::invalid_argument("SIMD width must be 64, 256 or 512");
  }
}

SeqFaultSimResult SeqFaultSim::run_serial(
    const TestSequence& seq, std::span<const Fault> faults, Val initial_state,
    ObsRegistry* obs, std::span<const std::size_t> attr_ids) const {
  SeqFaultSimResult res;
  res.detect_cycle.assign(faults.size(), -1);

  // Good machine trace at the observation points.
  std::vector<std::vector<Val>> good_obs(seq.size());
  {
    SeqSim good(lv_);
    good.reset(initial_state);
    for (std::size_t t = 0; t < seq.size(); ++t) {
      const auto& v = good.step(seq[t]);
      good_obs[t].reserve(observe_.size());
      for (NodeId n : observe_) good_obs[t].push_back(v[n]);
    }
  }

  std::uint64_t cycles = 0;
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Injection inj[1] = {to_injection(faults[fi])};
    SeqSim faulty(lv_);
    faulty.reset(initial_state);
    for (std::size_t t = 0; t < seq.size() && res.detect_cycle[fi] < 0; ++t) {
      ++cycles;
      const auto& v = faulty.step(seq[t], inj);
      for (std::size_t o = 0; o < observe_.size(); ++o) {
        const Val g = good_obs[t][o];
        const Val f = v[observe_[o]];
        if (g != Val::X && f != Val::X && g != f) {
          res.detect_cycle[fi] = static_cast<int>(t);
          break;
        }
      }
    }
  }
  if (obs) {
    obs->add(Ctr::SeqSimSerialRuns);
    obs->add(Ctr::SeqSimCycles, cycles);
    obs->add(Ctr::SeqSimFaultsDropped, res.num_detected());
    if (!attr_ids.empty()) {
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        const int dc = res.detect_cycle[fi];
        obs->charge(Attr::SeqSims, attr_ids[fi]);
        obs->charge(Attr::SeqCycles, attr_ids[fi],
                    dc >= 0 ? static_cast<std::uint64_t>(dc) + 1
                            : static_cast<std::uint64_t>(seq.size()));
      }
    }
  }
  return res;
}

namespace {

template <int NW>
WideInjection<NW> to_wide_injection(const Fault& f, unsigned lane) {
  WideInjection<NW> w;
  w.node = f.node;
  w.pin = f.pin;
  w.value = f.stuck_one ? Val::One : Val::Zero;
  w.mask[lane >> 6] = 1ull << (lane & 63u);
  return w;
}

template <int NW>
bool all_zero(const std::uint64_t (&m)[NW]) {
  std::uint64_t acc = 0;
  for (int w = 0; w < NW; ++w) acc |= m[w];
  return acc == 0;
}

}  // namespace

// One packed pass: per 64-bit word, bit 0 carries the good machine and bits
// 1..63 carry faulty machines, NW words per lane block.  Broadcast PI loading
// replicates the good machine into bit 0 of every word for free, so each
// word's detection test is local: good-binary vs the word's faulty planes.
template <int NW>
void SeqFaultSim::run_width(const TestSequence& seq,
                            std::span<const Fault> faults, Val initial_state,
                            ThreadPool* pool, ObsRegistry* obs,
                            std::span<const std::size_t> attr_ids,
                            SeqFaultSimResult& res) const {
  constexpr std::size_t kPerWord = 63;
  constexpr std::size_t kPerPass = kPerWord * NW;

  auto packed_pass = [&](std::size_t base) {
    const ObsSpan span(obs, "seqsim.pass");
    const std::size_t chunk = std::min(kPerPass, faults.size() - base);
    std::vector<WideVal<NW>> pi(soa_->inputs().size());
    std::vector<WideInjection<NW>> inj;
    inj.reserve(chunk);
    for (std::size_t k = 0; k < chunk; ++k) {
      // Fault k rides word k/63, bit 1 + k%63 (bit 0 = good machine).
      inj.push_back(to_wide_injection<NW>(
          faults[base + k],
          static_cast<unsigned>(((k / kPerWord) << 6) + 1 + k % kPerWord)));
    }

    std::uint64_t undet[NW];
    for (int w = 0; w < NW; ++w) {
      const std::size_t in_word = std::min<std::size_t>(
          kPerWord, chunk > w * kPerWord ? chunk - w * kPerWord : 0);
      undet[w] =
          (in_word == kPerWord) ? ~1ull : ((1ull << (in_word + 1)) - 2);
    }

    WideSeqSim<NW> sim(soa_);
    sim.reset(initial_state);
    std::uint64_t cycles = 0, dropped = 0;
    for (std::size_t t = 0; t < seq.size() && !all_zero<NW>(undet); ++t) {
      ++cycles;
      for (std::size_t i = 0; i < pi.size(); ++i) {
        pi[i] = WideVal<NW>::broadcast(seq[t][i]);
      }
      const WideSim<NW>& v = sim.step(pi, inj);
      for (NodeId n : observe_) {
        const WideVal<NW>& pv = v.value(n);
        for (int w = 0; w < NW; ++w) {
          const std::uint64_t z = pv.zero[w], o = pv.one[w];
          std::uint64_t det = (z & 1) ? o : (o & 1) ? z : 0;
          det &= undet[w];
          while (det != 0) {
            const unsigned bit = static_cast<unsigned>(std::countr_zero(det));
            det &= det - 1;
            undet[w] &= ~(1ull << bit);
            res.detect_cycle[base + w * kPerWord + bit - 1] =
                static_cast<int>(t);
            ++dropped;
          }
        }
      }
    }
    if (obs) {
      obs->add(Ctr::SeqSimPackedPasses);
      obs->add(Ctr::SeqSimCycles, cycles);
      obs->add(Ctr::SeqSimFaultsDropped, dropped);
      if (!attr_ids.empty()) {
        // Charged as resolved cycles (a pure per-fault function), not the
        // pass's shared cycle count — see the attribution contract in the
        // header.  Writes land in this pass's disjoint id slice, so the
        // parallel dispatch needs no extra synchronisation beyond the
        // sharded ledger itself.
        for (std::size_t k = 0; k < chunk; ++k) {
          const int dc = res.detect_cycle[base + k];
          obs->charge(Attr::SeqSims, attr_ids[base + k]);
          obs->charge(Attr::SeqCycles, attr_ids[base + k],
                      dc >= 0 ? static_cast<std::uint64_t>(dc) + 1
                              : static_cast<std::uint64_t>(seq.size()));
        }
      }
    }
  };

  const std::size_t passes = (faults.size() + kPerPass - 1) / kPerPass;
  if (pool != nullptr && pool->jobs() > 1 && passes > 1) {
    parallel_for(*pool, passes, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t p = b; p < e; ++p) packed_pass(p * kPerPass);
    });
  } else {
    for (std::size_t p = 0; p < passes; ++p) packed_pass(p * kPerPass);
  }
}

SeqFaultSimResult SeqFaultSim::run(const TestSequence& seq,
                                   std::span<const Fault> faults,
                                   Val initial_state,
                                   ThreadPool* pool,
                                   ObsRegistry* obs,
                                   std::span<const std::size_t> attr_ids) const {
  SeqFaultSimResult res;
  res.detect_cycle.assign(faults.size(), -1);
  // Small batches clamp to the narrowest lane width that still fits in one
  // pass: lanes past the fault count simulate nothing, so a wide pass over a
  // tiny batch is pure overhead.  Outcomes are width-independent, and the
  // counter contract is preserved — a batch that fits one narrow pass also
  // takes exactly one pass at the configured width, with identical early
  // exit, so passes/cycles stay a pure function of (count, width).
  int w = width_;
  if (faults.size() <= 63) w = 64;
  else if (faults.size() <= 63 * 4 && w > 256) w = 256;
  switch (w) {
    case 64:
      run_width<1>(seq, faults, initial_state, pool, obs, attr_ids, res);
      break;
    case 256:
      run_width<4>(seq, faults, initial_state, pool, obs, attr_ids, res);
      break;
    default:
      run_width<8>(seq, faults, initial_state, pool, obs, attr_ids, res);
      break;
  }
  return res;
}

// One pair pass: pair q of the pass rides word q/32, lanes 2*(q%32) (good)
// and 2*(q%32)+1 (faulty).  Each pair follows its own sequence, so PI lanes
// are loaded per pair rather than broadcast; a pair's lanes go X (and its
// undet bit is retired) once its sequence is exhausted.
template <int NW>
void SeqFaultSim::run_pairs_width(std::span<const FaultSeqPair> pairs,
                                  Val initial_state, ThreadPool* pool,
                                  ObsRegistry* obs,
                                  std::span<const std::size_t> attr_ids,
                                  std::vector<int>& out) const {
  constexpr std::size_t kPerWord = 32;
  constexpr std::size_t kPerPass = kPerWord * NW;
  constexpr std::uint64_t kEven = 0x5555555555555555ull;

  auto pair_pass = [&](std::size_t base) {
    const ObsSpan span(obs, "seqsim.pass");
    const std::size_t chunk = std::min(kPerPass, pairs.size() - base);
    std::size_t max_len = 0;
    std::vector<WideInjection<NW>> inj;
    inj.reserve(chunk);
    std::uint64_t undet[NW] = {};
    for (std::size_t q = 0; q < chunk; ++q) {
      inj.push_back(to_wide_injection<NW>(
          pairs[base + q].fault,
          static_cast<unsigned>(((q / kPerWord) << 6) + 2 * (q % kPerWord) +
                                1)));
      undet[q / kPerWord] |= 1ull << (2 * (q % kPerWord));
      max_len = std::max(max_len, pairs[base + q].seq->size());
    }

    std::vector<WideVal<NW>> pi(soa_->inputs().size());
    WideSeqSim<NW> sim(soa_);
    sim.reset(initial_state);
    std::uint64_t cycles = 0, dropped = 0;
    for (std::size_t t = 0; t < max_len; ++t) {
      // Retire pairs whose sequence ended; stop when none are live.
      for (std::size_t q = 0; q < chunk; ++q) {
        if (pairs[base + q].seq->size() == t) {
          undet[q / kPerWord] &= ~(1ull << (2 * (q % kPerWord)));
        }
      }
      if (all_zero<NW>(undet)) break;
      ++cycles;
      for (auto& v : pi) v = WideVal<NW>::broadcast(Val::X);
      for (std::size_t q = 0; q < chunk; ++q) {
        const TestSequence& s = *pairs[base + q].seq;
        if (t >= s.size()) continue;
        const unsigned lane = static_cast<unsigned>(
            ((q / kPerWord) << 6) + 2 * (q % kPerWord));
        for (std::size_t i = 0; i < pi.size(); ++i) {
          pi[i].set(lane, s[t][i]);
          pi[i].set(lane + 1, s[t][i]);
        }
      }
      const WideSim<NW>& v = sim.step(pi, inj);
      for (NodeId n : observe_) {
        const WideVal<NW>& pv = v.value(n);
        for (int w = 0; w < NW; ++w) {
          const std::uint64_t gz = pv.zero[w] & kEven;
          const std::uint64_t go = pv.one[w] & kEven;
          const std::uint64_t fz = (pv.zero[w] >> 1) & kEven;
          const std::uint64_t fo = (pv.one[w] >> 1) & kEven;
          std::uint64_t det = ((gz & fo) | (go & fz)) & undet[w];
          while (det != 0) {
            const unsigned bit = static_cast<unsigned>(std::countr_zero(det));
            det &= det - 1;
            undet[w] &= ~(1ull << bit);
            out[base + w * kPerWord + bit / 2] = static_cast<int>(t);
            ++dropped;
          }
        }
      }
    }
    if (obs) {
      obs->add(Ctr::SeqSimPackedPasses);
      obs->add(Ctr::SeqSimCycles, cycles);
      obs->add(Ctr::SeqSimFaultsDropped, dropped);
      if (!attr_ids.empty()) {
        // Resolved cycles against the pair's own sequence length (pairs in
        // one pass can follow sequences of different lengths).
        for (std::size_t q = 0; q < chunk; ++q) {
          const int dc = out[base + q];
          obs->charge(Attr::PairReplays, attr_ids[base + q]);
          obs->charge(
              Attr::SeqCycles, attr_ids[base + q],
              dc >= 0 ? static_cast<std::uint64_t>(dc) + 1
                      : static_cast<std::uint64_t>(pairs[base + q].seq->size()));
        }
      }
    }
  };

  const std::size_t passes = (pairs.size() + kPerPass - 1) / kPerPass;
  if (pool != nullptr && pool->jobs() > 1 && passes > 1) {
    parallel_for(*pool, passes, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t p = b; p < e; ++p) pair_pass(p * kPerPass);
    });
  } else {
    for (std::size_t p = 0; p < passes; ++p) pair_pass(p * kPerPass);
  }
}

std::vector<int> SeqFaultSim::run_pairs(
    std::span<const FaultSeqPair> pairs, Val initial_state, ThreadPool* pool,
    ObsRegistry* obs, std::span<const std::size_t> attr_ids) const {
  std::vector<int> out(pairs.size(), -1);
  // Same small-batch clamp as run(): 32 pairs per word.
  int w = width_;
  if (pairs.size() <= 32) w = 64;
  else if (pairs.size() <= 32 * 4 && w > 256) w = 256;
  switch (w) {
    case 64:
      run_pairs_width<1>(pairs, initial_state, pool, obs, attr_ids, out);
      break;
    case 256:
      run_pairs_width<4>(pairs, initial_state, pool, obs, attr_ids, out);
      break;
    default:
      run_pairs_width<8>(pairs, initial_state, pool, obs, attr_ids, out);
      break;
  }
  return out;
}

}  // namespace fsct
