#include "fault/comb_fault_sim.h"

#include <bit>
#include <stdexcept>

#include "core/obs.h"

namespace fsct {

CombFaultSim::CombFaultSim(const Levelizer& lv, std::vector<NodeId> observe)
    : lv_(lv), observe_(std::move(observe)) {
  const Netlist& nl = lv_.netlist();
  observed_net_.assign(nl.size(), 0);
  for (NodeId n : observe_) {
    if (nl.type(n) == GateType::Dff) {
      observed_net_[nl.fanins(n)[0]] = 1;  // observe the D pin's net
    } else {
      observed_net_[n] = 1;
    }
  }
}

CombFaultSim::Scratch CombFaultSim::make_scratch(
    const std::vector<PackedVal>& good) const {
  Scratch s;
  s.cur = good;
  s.buckets.resize(static_cast<std::size_t>(lv_.max_level()) + 1);
  s.queued.assign(lv_.netlist().size(), 0);
  return s;
}

std::uint64_t CombFaultSim::simulate_fault(const Fault& f,
                                           const std::vector<PackedVal>& good,
                                           Scratch& s) const {
  const Netlist& nl = lv_.netlist();
  std::uint64_t det = 0;

  PackedVal ins[64];
  auto eval_cur = [&](NodeId id, const Fault* pin_fault) {
    const auto fins = nl.fanins(id);
    if (fins.size() > 64) throw std::runtime_error("gate arity > 64");
    for (std::size_t p = 0; p < fins.size(); ++p) {
      ins[p] = s.cur[fins[p]];
      if (pin_fault && pin_fault->node == id &&
          pin_fault->pin == static_cast<int>(p)) {
        ins[p] = PackedVal::broadcast(pin_fault->stuck_one ? Val::One
                                                           : Val::Zero);
      }
    }
    return eval_gate_packed(nl.type(id), ins, fins.size());
  };

  // Seed the event queue with the fault site's effect.
  auto touch = [&](NodeId id, PackedVal v) {
    if (v == s.cur[id]) return;
    ++s.events;
    s.cur[id] = v;
    s.dirty.push_back(id);
    if (observed_net_[id]) {
      det |= (good[id].zero & v.one) | (good[id].one & v.zero);
    }
    for (NodeId n : lv_.fanouts(id)) {
      if (is_combinational(nl.type(n)) && !s.queued[n]) {
        s.queued[n] = 1;
        s.buckets[static_cast<std::size_t>(lv_.level(n))].push_back(n);
      }
    }
  };

  const Val sv = f.stuck_one ? Val::One : Val::Zero;
  if (f.pin == -1) {
    touch(f.node, PackedVal::broadcast(sv));
  } else if (!s.queued[f.node] && is_combinational(nl.type(f.node))) {
    s.queued[f.node] = 1;
    s.buckets[static_cast<std::size_t>(lv_.level(f.node))].push_back(f.node);
  } else if (nl.type(f.node) == GateType::Dff) {
    // D-pin fault of a DFF: the observed D net is healthy, but the value
    // captured is stuck.  In the combinational view this is equivalent to
    // observing a constant at that D pin; we model it by direct compare.
    const NodeId dnet = nl.fanins(f.node)[0];
    if (observed_net_[dnet]) {
      const PackedVal g = good[dnet];
      det |= (sv == Val::One) ? g.zero : g.one;
    }
  }

  // Propagate level by level.
  for (auto& bucket : s.buckets) {
    for (std::size_t bi = 0; bi < bucket.size(); ++bi) {
      const NodeId id = bucket[bi];
      s.queued[id] = 0;
      const bool site = (f.pin >= 0 && f.node == id);
      PackedVal v = eval_cur(id, site ? &f : nullptr);
      if (f.pin == -1 && f.node == id) v = PackedVal::broadcast(sv);
      touch(id, v);
    }
    bucket.clear();
  }

  // Restore good values.
  for (NodeId id : s.dirty) s.cur[id] = good[id];
  s.dirty.clear();
  return det;
}

CombFaultSimResult CombFaultSim::run(std::span<const CombPattern> patterns,
                                     std::span<const Fault> faults,
                                     ThreadPool* pool,
                                     ObsRegistry* obs) const {
  const ObsSpan run_span(obs, "ppsfp.run");
  const Netlist& nl = lv_.netlist();
  const std::size_t n_pi = nl.inputs().size();
  const std::size_t n_ff = nl.dffs().size();

  CombFaultSimResult res;
  res.detect_pattern.assign(faults.size(), -1);

  PackedCombSim psim(lv_);
  std::vector<PackedVal> good(nl.size());

  for (std::size_t pbase = 0; pbase < patterns.size(); pbase += 64) {
    const std::size_t pchunk = std::min<std::size_t>(64, patterns.size() - pbase);

    // Load sources for this block of patterns.
    for (std::size_t i = 0; i < n_pi; ++i) good[nl.inputs()[i]] = {};
    for (std::size_t i = 0; i < n_ff; ++i) good[nl.dffs()[i]] = {};
    for (std::size_t k = 0; k < pchunk; ++k) {
      const CombPattern& pat = patterns[pbase + k];
      if (pat.size() != n_pi + n_ff) {
        throw std::invalid_argument("pattern size != #PI + #FF");
      }
      for (std::size_t i = 0; i < n_pi; ++i) {
        good[nl.inputs()[i]].set(static_cast<unsigned>(k), pat[i]);
      }
      for (std::size_t i = 0; i < n_ff; ++i) {
        good[nl.dffs()[i]].set(static_cast<unsigned>(k), pat[n_pi + i]);
      }
    }
    psim.run(good);

    if (obs) obs->add(Ctr::PpsfpBlocks);
    const std::uint64_t valid =
        (pchunk == 64) ? ~0ull : ((1ull << pchunk) - 1);
    auto record = [&](std::size_t fi, std::uint64_t det) {
      det &= valid;
      if (det != 0) {
        res.detect_pattern[fi] =
            static_cast<int>(pbase) + std::countr_zero(det);
        return true;
      }
      return false;
    };

    if (pool != nullptr && pool->jobs() > 1) {
      const std::size_t grain = parallel_grain(faults.size(), pool->jobs(), 16);
      parallel_for(*pool, faults.size(), grain,
                   [&](std::size_t b, std::size_t e) {
                     const ObsSpan span(obs, "ppsfp.chunk");
                     Scratch s = make_scratch(good);
                     std::uint64_t sims = 0, dropped = 0;
                     for (std::size_t fi = b; fi < e; ++fi) {
                       if (res.detect_pattern[fi] >= 0) continue;  // dropped
                       ++sims;
                       dropped += record(fi, simulate_fault(faults[fi], good, s));
                     }
                     if (obs) {
                       obs->add(Ctr::PpsfpFaultSims, sims);
                       obs->add(Ctr::PpsfpEvents, s.events);
                       obs->add(Ctr::PpsfpFaultsDropped, dropped);
                     }
                   });
    } else {
      Scratch s = make_scratch(good);
      std::uint64_t sims = 0, dropped = 0;
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        if (res.detect_pattern[fi] >= 0) continue;  // fault dropping
        ++sims;
        dropped += record(fi, simulate_fault(faults[fi], good, s));
      }
      if (obs) {
        obs->add(Ctr::PpsfpFaultSims, sims);
        obs->add(Ctr::PpsfpEvents, s.events);
        obs->add(Ctr::PpsfpFaultsDropped, dropped);
      }
    }
  }
  return res;
}

}  // namespace fsct
