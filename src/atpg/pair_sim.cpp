#include "atpg/pair_sim.h"

#include <algorithm>
#include <stdexcept>

namespace fsct {

PairSim::PairSim(const Levelizer& lv)
    : lv_(lv), soa_(SoaCircuit::compile(lv)) {
  const std::size_t n = soa_->size();
  values_.assign(n, {});
  out_override_.assign(n, Val::X);
  pin_sites_.assign(n, {});
  has_pin_sites_.assign(n, 0);
  effect_flag_.assign(n, 0);
  in_effect_list_.assign(n, 0);
  observed_.assign(n, 0);
  buckets_.resize(static_cast<std::size_t>(soa_->max_level()) + 1);
  queued_.assign(n, 0);
}

void PairSim::set_observed(std::span<const char> mask) {
  observed_.assign(mask.begin(), mask.end());
  observed_.resize(soa_->size(), 0);
  observed_effect_count_ = 0;
  for (NodeId id = 0; id < observed_.size(); ++id) {
    if (observed_[id] && effect_flag_[id]) ++observed_effect_count_;
  }
}

void PairSim::init(std::span<const FaultSite> sites) {
  const std::size_t n = soa_->size();
  values_.assign(n, PairVal{});
  out_override_.assign(n, Val::X);
  for (NodeId id = 0; id < n; ++id) {
    if (has_pin_sites_[id]) {
      pin_sites_[id].clear();
      has_pin_sites_[id] = 0;
    }
  }
  effect_flag_.assign(n, 0);
  in_effect_list_.assign(n, 0);
  effect_list_.clear();
  effect_count_ = 0;
  observed_effect_count_ = 0;

  for (const FaultSite& s : sites) {
    if (s.pin == -1) {
      out_override_[s.node] = s.value;
    } else {
      pin_sites_[s.node].push_back(s);
      has_pin_sites_[s.node] = 1;
    }
  }

  // Full settle: sources, then evaluation order.
  for (NodeId id = 0; id < n; ++id) {
    const GateType t = soa_->type(id);
    if (t == GateType::Const0 || t == GateType::Const1) {
      const Val v = (t == GateType::Const1) ? Val::One : Val::Zero;
      PairVal pv{v, v};
      if (out_override_[id] != Val::X) pv.f = out_override_[id];
      note_change(id, pv);
    } else if (t == GateType::Input) {
      PairVal pv{Val::X, Val::X};
      if (out_override_[id] != Val::X) pv.f = out_override_[id];
      note_change(id, pv);
    } else if (t == GateType::Dff) {
      throw std::logic_error("PairSim requires a pure combinational netlist");
    }
  }
  for (NodeId id : lv_.topo_order()) {
    note_change(id, eval_node(id));
  }
}

PairVal PairSim::eval_node(NodeId id) const {
  const NodeId* fins = soa_->fanin(id);
  const std::uint32_t n = soa_->fanin_count(id);
  Val gin[64], fin[64];
  if (n > 64) throw std::runtime_error("gate arity > 64");
  bool diverge = has_pin_sites_[id] != 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    gin[p] = values_[fins[p]].g;
    fin[p] = values_[fins[p]].f;
    diverge |= gin[p] != fin[p];
  }
  if (has_pin_sites_[id]) {
    for (const FaultSite& s : pin_sites_[id]) {
      fin[s.pin] = s.value;
    }
  }
  PairVal pv;
  const GateType t = soa_->type(id);
  pv.g = eval_gate(t, gin, n);
  pv.f = diverge ? eval_gate(t, fin, n) : pv.g;
  if (out_override_[id] != Val::X) pv.f = out_override_[id];
  return pv;
}

void PairSim::note_change(NodeId id, PairVal nv) {
  if (values_[id] == nv && effect_flag_[id] == (has_effect(nv) ? 1 : 0)) {
    values_[id] = nv;
    return;
  }
  values_[id] = nv;
  const bool eff = has_effect(nv);
  if (eff && !effect_flag_[id]) {
    effect_flag_[id] = 1;
    ++effect_count_;
    observed_effect_count_ += observed_[id];
    if (!in_effect_list_[id]) {
      in_effect_list_[id] = 1;
      effect_list_.push_back(id);
    }
  } else if (!eff && effect_flag_[id]) {
    effect_flag_[id] = 0;
    --effect_count_;
    observed_effect_count_ -= observed_[id];
    // lazy removal from effect_list_ (compacted in effect_nets())
  }
}

void PairSim::set_source(NodeId src, Val v) {
  const GateType t = soa_->type(src);
  if (is_combinational(t) || t == GateType::Dff) {
    throw std::invalid_argument("set_source on non-source node");
  }
  PairVal pv{v, v};
  if (out_override_[src] != Val::X) pv.f = out_override_[src];
  if (values_[src] == pv) return;
  note_change(src, pv);
  propagate_from(src);
}

void PairSim::propagate_from(NodeId src) {
  const SoaCircuit& c = *soa_;
  // The sweep is bounded to [lo, hi] — the level range actually enqueued —
  // instead of walking every bucket; on deep unrolled models a PODEM
  // assignment cone touches a narrow band of the level space.  Fanouts are
  // strictly higher-level, so hi only grows ahead of the sweep and the
  // processing order (ascending level, push order within a bucket) is
  // exactly that of a full-sweep walk.
  std::size_t lo = buckets_.size(), hi = 0;
  const auto enqueue = [&](NodeId s) {
    if (!queued_[s]) {
      queued_[s] = 1;
      const auto levl = static_cast<std::size_t>(c.level(s));
      lo = std::min(lo, levl);
      hi = std::max(hi, levl);
      buckets_[levl].push_back(s);
    }
  };
  {
    const NodeId* fo = c.fanout(src);
    const std::uint32_t nfo = c.fanout_count(src);
    for (std::uint32_t i = 0; i < nfo; ++i) enqueue(fo[i]);
  }
  for (std::size_t l = lo; l <= hi; ++l) {
    auto& bucket = buckets_[l];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      queued_[id] = 0;
      const PairVal nv = eval_node(id);
      if (nv == values_[id]) continue;
      note_change(id, nv);
      const NodeId* fo = c.fanout(id);
      const std::uint32_t nfo = c.fanout_count(id);
      for (std::uint32_t k = 0; k < nfo; ++k) enqueue(fo[k]);
    }
    bucket.clear();
  }
}

const std::vector<NodeId>& PairSim::effect_nets() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < effect_list_.size(); ++r) {
    const NodeId id = effect_list_[r];
    if (effect_flag_[id]) {
      effect_list_[w++] = id;
    } else {
      in_effect_list_[id] = 0;
    }
  }
  effect_list_.resize(w);
  return effect_list_;
}

}  // namespace fsct
