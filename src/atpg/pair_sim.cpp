#include "atpg/pair_sim.h"

#include <stdexcept>

namespace fsct {

PairSim::PairSim(const Levelizer& lv) : lv_(lv) {
  const Netlist& nl = lv.netlist();
  values_.assign(nl.size(), {});
  out_override_.assign(nl.size(), Val::X);
  pin_sites_.assign(nl.size(), {});
  has_pin_sites_.assign(nl.size(), 0);
  effect_flag_.assign(nl.size(), 0);
  in_effect_list_.assign(nl.size(), 0);
  buckets_.resize(static_cast<std::size_t>(lv.max_level()) + 1);
  queued_.assign(nl.size(), 0);
}

void PairSim::init(std::span<const FaultSite> sites) {
  const Netlist& nl = lv_.netlist();
  values_.assign(nl.size(), PairVal{});
  out_override_.assign(nl.size(), Val::X);
  for (NodeId id = 0; id < nl.size(); ++id) {
    if (has_pin_sites_[id]) {
      pin_sites_[id].clear();
      has_pin_sites_[id] = 0;
    }
  }
  effect_flag_.assign(nl.size(), 0);
  in_effect_list_.assign(nl.size(), 0);
  effect_list_.clear();
  effect_count_ = 0;

  for (const FaultSite& s : sites) {
    if (s.pin == -1) {
      out_override_[s.node] = s.value;
    } else {
      pin_sites_[s.node].push_back(s);
      has_pin_sites_[s.node] = 1;
    }
  }

  // Full settle: sources, then topo order.
  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    if (t == GateType::Const0 || t == GateType::Const1) {
      const Val v = (t == GateType::Const1) ? Val::One : Val::Zero;
      PairVal pv{v, v};
      if (out_override_[id] != Val::X) pv.f = out_override_[id];
      note_change(id, pv);
    } else if (t == GateType::Input) {
      PairVal pv{Val::X, Val::X};
      if (out_override_[id] != Val::X) pv.f = out_override_[id];
      note_change(id, pv);
    } else if (t == GateType::Dff) {
      throw std::logic_error("PairSim requires a pure combinational netlist");
    }
  }
  for (NodeId id : lv_.topo_order()) {
    note_change(id, eval_node(id));
  }
}

PairVal PairSim::eval_node(NodeId id) const {
  const Netlist& nl = lv_.netlist();
  const auto fins = nl.fanins(id);
  Val gin[64], fin[64];
  if (fins.size() > 64) throw std::runtime_error("gate arity > 64");
  for (std::size_t p = 0; p < fins.size(); ++p) {
    gin[p] = values_[fins[p]].g;
    fin[p] = values_[fins[p]].f;
  }
  if (has_pin_sites_[id]) {
    for (const FaultSite& s : pin_sites_[id]) {
      fin[s.pin] = s.value;
    }
  }
  PairVal pv;
  pv.g = eval_gate(nl.type(id), gin, fins.size());
  pv.f = eval_gate(nl.type(id), fin, fins.size());
  if (out_override_[id] != Val::X) pv.f = out_override_[id];
  return pv;
}

void PairSim::note_change(NodeId id, PairVal nv) {
  if (values_[id] == nv && effect_flag_[id] == (has_effect(nv) ? 1 : 0)) {
    values_[id] = nv;
    return;
  }
  values_[id] = nv;
  const bool eff = has_effect(nv);
  if (eff && !effect_flag_[id]) {
    effect_flag_[id] = 1;
    ++effect_count_;
    if (!in_effect_list_[id]) {
      in_effect_list_[id] = 1;
      effect_list_.push_back(id);
    }
  } else if (!eff && effect_flag_[id]) {
    effect_flag_[id] = 0;
    --effect_count_;
    // lazy removal from effect_list_ (compacted in effect_nets())
  }
}

void PairSim::set_source(NodeId src, Val v) {
  const Netlist& nl = lv_.netlist();
  if (is_combinational(nl.type(src)) || nl.type(src) == GateType::Dff) {
    throw std::invalid_argument("set_source on non-source node");
  }
  PairVal pv{v, v};
  if (out_override_[src] != Val::X) pv.f = out_override_[src];
  if (values_[src] == pv) return;
  note_change(src, pv);
  propagate_from(src);
}

void PairSim::propagate_from(NodeId src) {
  const Netlist& nl = lv_.netlist();
  for (NodeId s : lv_.fanouts(src)) {
    if (is_combinational(nl.type(s)) && !queued_[s]) {
      queued_[s] = 1;
      buckets_[static_cast<std::size_t>(lv_.level(s))].push_back(s);
    }
  }
  for (auto& bucket : buckets_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      queued_[id] = 0;
      const PairVal nv = eval_node(id);
      if (nv == values_[id]) continue;
      note_change(id, nv);
      for (NodeId s : lv_.fanouts(id)) {
        if (is_combinational(nl.type(s)) && !queued_[s]) {
          queued_[s] = 1;
          buckets_[static_cast<std::size_t>(lv_.level(s))].push_back(s);
        }
      }
    }
    bucket.clear();
  }
}

const std::vector<NodeId>& PairSim::effect_nets() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < effect_list_.size(); ++r) {
    const NodeId id = effect_list_[r];
    if (effect_flag_[id]) {
      effect_list_[w++] = id;
    } else {
      in_effect_list_[id] = 0;
    }
  }
  effect_list_.resize(w);
  return effect_list_;
}

}  // namespace fsct
