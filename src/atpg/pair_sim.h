// Good/faulty pair simulation for ATPG (the 5-valued D-calculus: a net whose
// pair is (1,0) carries D, (0,1) carries D').
//
// PairSim works on a *pure combinational* netlist (sources are Input/Const
// nodes only — sequential circuits are first unrolled, see unroll.h).  The
// fault is a set of FaultSite overrides applied to the faulty component only;
// multiple sites model the same stuck-at fault replicated across time frames.
//
// set_source() performs event-driven forward update, so PODEM's
// assign/unassign cycle costs only the affected cone.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "netlist/levelize.h"
#include "sim/soa_circuit.h"
#include "sim/value.h"

namespace fsct {

/// Good/faulty value pair of one net.
struct PairVal {
  Val g = Val::X;  ///< fault-free machine
  Val f = Val::X;  ///< faulty machine
  friend bool operator==(const PairVal&, const PairVal&) = default;
};

/// True when the net carries a definite fault effect (D or D').
inline bool has_effect(PairVal v) {
  return v.g != Val::X && v.f != Val::X && v.g != v.f;
}

/// One stuck-at override in the faulty machine.  pin == -1 forces the node's
/// output; pin >= 0 forces what the node sees on that fanin pin.
struct FaultSite {
  NodeId node = kNullNode;
  int pin = -1;
  Val value = Val::X;
};

/// Event-driven good/faulty pair simulator.
class PairSim {
 public:
  explicit PairSim(const Levelizer& lv);

  /// Resets all nets to X, installs the fault sites, and settles the circuit
  /// (constants propagate).  Must be called before set_source.
  void init(std::span<const FaultSite> sites);

  /// Assigns the good value of a source node (Val::X un-assigns) and
  /// propagates.  The faulty component follows the good one except where a
  /// site overrides it.
  void set_source(NodeId src, Val v);

  /// Current pair value of a net.
  PairVal value(NodeId n) const { return values_[n]; }

  /// True if any net currently carries D/D'.
  bool any_effect() const { return effect_count_ > 0; }

  /// Marks the nets whose effects any_observed_effect() reports (`mask`
  /// sized netlist.size()).  Survives init(); PODEM sets its observation
  /// points once and gets an O(1) "detected" predicate.
  void set_observed(std::span<const char> mask);

  /// True if any net marked by set_observed() currently carries D/D'.
  bool any_observed_effect() const { return observed_effect_count_ > 0; }

  /// Nets currently carrying D/D' (compacted on call).
  const std::vector<NodeId>& effect_nets();

  const Levelizer& levelizer() const { return lv_; }

  /// The flat compiled view this simulator runs on (shared with PODEM for
  /// combinational-fanout walks).
  const SoaCircuit& soa() const { return *soa_; }

 private:
  PairVal eval_node(NodeId id) const;
  void propagate_from(NodeId src);
  void note_change(NodeId id, PairVal nv);

  const Levelizer& lv_;
  std::shared_ptr<const SoaCircuit> soa_;
  std::vector<PairVal> values_;
  std::vector<Val> out_override_;          // faulty output forces (X = none)
  std::vector<std::vector<FaultSite>> pin_sites_;  // per node, sparse
  std::vector<char> has_pin_sites_;
  std::vector<char> effect_flag_;
  std::vector<char> in_effect_list_;
  std::vector<NodeId> effect_list_;  // may contain stale entries; compacted
  std::size_t effect_count_ = 0;
  std::vector<char> observed_;
  std::size_t observed_effect_count_ = 0;
  // scratch for propagation
  std::vector<std::vector<NodeId>> buckets_;
  std::vector<char> queued_;
};

}  // namespace fsct
