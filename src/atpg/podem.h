// PODEM test generation on a pure combinational model with good/faulty pair
// simulation.  Works unchanged for sequential targets: unroll the circuit
// first (unroll.h) and pass the per-frame fault sites.
//
// Decisions are made only at controllable Input nodes; implication is full
// event-driven forward simulation (PairSim), so the search is the classic
// PODEM decision tree over primary-input assignments with backtrace guided by
// SCOAP controllability and a static distance-to-observation measure.
#pragma once

#include <span>
#include <vector>

#include "atpg/pair_sim.h"
#include "atpg/scoap.h"
#include "netlist/levelize.h"

namespace fsct {

class ObsRegistry;

enum class AtpgStatus : std::uint8_t {
  Detected,    ///< a test was found; see AtpgResult::assignment
  Untestable,  ///< decision space exhausted — no test exists in this model
  Aborted,     ///< backtrack limit hit — undecided
};

struct AtpgOptions {
  int backtrack_limit = 2000;
  /// Wall-clock budget per generate() call; 0 = unlimited.  Exceeding it
  /// returns Aborted (the role of the CPU limit the paper gives stg3).
  int time_limit_ms = 0;
  /// D-frontier gates considered per objective round (closest-to-observation
  /// first); bounds per-iteration work on very wide cones.
  int frontier_cap = 16;
  /// Observability sink (counters + decision-depth histogram, recorded once
  /// per generate() call).  nullptr = record nothing.
  ObsRegistry* obs = nullptr;
};

struct AtpgResult {
  AtpgStatus status = AtpgStatus::Aborted;
  /// Binary values of the controllable inputs of the detecting test
  /// (unlisted inputs are don't-care).
  std::vector<std::pair<NodeId, Val>> assignment;
  int decisions = 0;
  int backtracks = 0;
  /// True when an Aborted status was caused by the wall-clock budget rather
  /// than the backtrack limit.
  bool hit_time_limit = false;
};

/// PODEM engine bound to one (unrolled) combinational model.  Reusable across
/// many faults on the same model.
class Podem {
 public:
  /// `controllable` sized nl.size(), true at assignable Input nodes;
  /// `observe` lists the nets checked for fault effects.
  Podem(const Levelizer& lv, std::vector<char> controllable,
        std::vector<NodeId> observe, AtpgOptions opt = {});

  /// Generates a test for the fault given by its site overrides.  When
  /// `attr_fault` >= 0 and the obs sink has attribution enabled, the call's
  /// work (calls/decisions/backtracks, the wall-truncation exclusion rule
  /// matching the counters, plus wall nanoseconds) is charged to that fault
  /// id in the per-fault attribution ledger.
  AtpgResult generate(std::span<const FaultSite> sites,
                      std::int64_t attr_fault = -1);

  const Levelizer& levelizer() const { return lv_; }

 private:
  struct Objective {
    NodeId net = kNullNode;
    Val val = Val::X;
  };

  AtpgResult generate_impl(std::span<const FaultSite> sites);
  bool detected() const;
  void find_objectives(std::span<const FaultSite> sites,
                       std::vector<Objective>& out);
  void side_input_objectives(NodeId gate, std::vector<Objective>& out) const;
  bool backtrace(Objective obj, NodeId& pi, Val& pv) const;
  bool x_path_exists(NodeId from);

  const Levelizer& lv_;
  std::vector<char> controllable_;
  std::vector<NodeId> observe_;
  std::vector<char> observed_;
  std::vector<int> obs_dist_;  // static gate-distance to nearest observation
  Scoap scoap_;
  AtpgOptions opt_;
  PairSim sim_;
  std::vector<char> xpath_mark_;     // scratch
  std::vector<char> frontier_mark_;  // scratch: D-frontier dedupe
};

}  // namespace fsct
