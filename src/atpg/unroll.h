// Time-frame expansion: turns a sequential circuit into a pure combinational
// "iterative array" model suitable for PairSim/PODEM.
//
// Per frame, every combinational gate is copied.  Flip-flop boundaries become
// explicit capture buffers: frame f's "ff@f" BUF node carries the value the
// flip-flop captures at the end of frame f, and feeds the flip-flop's Q uses
// in frame f+1.  Frame-0 Q values are fresh Input nodes — controllable if the
// caller says so (enhanced-controllability prefix of a scan chain), otherwise
// left X (unknown power-up state).
//
// A stuck-at fault of the base circuit maps to one FaultSite per frame
// (stuck-at faults are permanent): gate faults map onto the per-frame copies,
// DFF D-pin faults onto the capture buffers, DFF Q (output) faults onto the
// frame-0 state Input *and* every capture buffer.
#pragma once

#include <span>
#include <vector>

#include "atpg/pair_sim.h"
#include "fault/fault.h"
#include "netlist/netlist.h"
#include "sim/value.h"

namespace fsct {

/// What to unroll and how the environment constrains it.
struct UnrollSpec {
  const Netlist* base = nullptr;
  int frames = 1;
  /// PI -> constant held at that value in every frame (TPI scan-mode pins,
  /// including scan_mode = 1).
  std::vector<std::pair<NodeId, Val>> fixed_pis;
  /// Per base-FF index (netlist dffs() order): may ATPG choose the frame-0
  /// state of this FF?  (True for the fault-free controllable chain prefix.)
  std::vector<char> controllable_state;
  /// Per base-FF index: is the value captured by this FF observed in every
  /// frame?  (True for the fault-free observable chain suffix / scan-out.)
  std::vector<char> observable_ff;
  /// Observe the primary outputs of every frame.
  bool observe_pos = true;

  // ---- optional value-aware pruning ---------------------------------------
  // When `keep` is set, only flagged base nodes are materialised per frame;
  // a reference to an unflagged node is replaced by a constant of its
  // scan-mode value (`fold_values`, which must then be binary there).  Build
  // the mask with compute_keep_mask() so this invariant holds.
  const std::vector<char>* keep = nullptr;        // base-sized node mask
  const std::vector<Val>* fold_values = nullptr;  // base-sized scan-mode values
};

/// Computes a pruning mask for `unroll`: the backward closure (crossing
/// flip-flop boundaries) of `roots`, stopped at nodes that are *frozen* —
/// binary under `scan_values` and outside the fault's forward closure
/// (`fault_cone`, a node mask; pass empty to freeze on value alone).  Frozen
/// boundary nodes are left out of the mask and will be folded to constants.
std::vector<char> compute_keep_mask(const Levelizer& lv,
                                    const std::vector<Val>& scan_values,
                                    const std::vector<char>& fault_cone,
                                    std::span<const NodeId> roots);

/// Forward closure of a fault site across flip-flop boundaries (node mask).
std::vector<char> fault_forward_closure(const Levelizer& lv, NodeId site);

/// The expanded model plus the bookkeeping needed to map a PODEM solution
/// back into a clocked test.
struct UnrolledModel {
  Netlist nl;
  /// controllable[n] for every node of `nl` (Input nodes ATPG may assign).
  std::vector<char> controllable;
  /// Nets checked for fault effects.
  std::vector<NodeId> observe;
  /// map[f][base_id] = node id in `nl` of frame-f copy (combinational gates
  /// and PIs).  For a DFF base id it is the frame-f *Q* value node.
  std::vector<std::vector<NodeId>> map;
  /// cap[f][ff_index] = frame-f capture buffer of that FF.
  std::vector<std::vector<NodeId>> cap;
  /// frame_pi[f][pi_index] = frame-f node of that base PI (Input or Const).
  std::vector<std::vector<NodeId>> frame_pi;
  /// init_state[ff_index] = frame-0 Q Input node.
  std::vector<NodeId> init_state;

  /// FaultSites in `nl` equivalent to base fault `f` in every frame.
  std::vector<FaultSite> map_fault(const Fault& f) const;

  int frames() const { return static_cast<int>(map.size()); }
};

/// Builds the iterative-array model.  Throws on bad spec sizes.
UnrolledModel unroll(const UnrollSpec& spec);

}  // namespace fsct
