#include "atpg/podem.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/obs.h"

namespace fsct {

namespace {
constexpr int kInfDist = std::numeric_limits<int>::max() / 2;
}

Podem::Podem(const Levelizer& lv, std::vector<char> controllable,
             std::vector<NodeId> observe, AtpgOptions opt)
    : lv_(lv),
      controllable_(std::move(controllable)),
      observe_(std::move(observe)),
      scoap_(compute_scoap(lv, controllable_)),
      opt_(opt),
      sim_(lv) {
  const Netlist& nl = lv_.netlist();
  observed_.assign(nl.size(), 0);
  for (NodeId o : observe_) observed_[o] = 1;
  sim_.set_observed(observed_);

  // Static distance (in gates) from each net to the nearest observation,
  // computed over reversed topological order.
  obs_dist_.assign(nl.size(), kInfDist);
  for (NodeId o : observe_) obs_dist_[o] = 0;
  const auto& topo = lv_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId id = *it;
    if (obs_dist_[id] < kInfDist) {
      for (NodeId f : nl.fanins(id)) {
        obs_dist_[f] = std::min(obs_dist_[f], obs_dist_[id] + 1);
      }
    }
  }
  xpath_mark_.assign(nl.size(), 0);
  frontier_mark_.assign(nl.size(), 0);
}

bool Podem::detected() const { return sim_.any_observed_effect(); }

// Objectives that would help propagate an effect through `gate` (a gate whose
// output is still X-ish but which sees an effect on some input).
void Podem::side_input_objectives(NodeId gate,
                                  std::vector<Objective>& out) const {
  const SoaCircuit& soa = sim_.soa();
  const GateType t = soa.type(gate);
  const std::span<const NodeId> fins(soa.fanin(gate), soa.fanin_count(gate));
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      const Val nc = !controlling_value(t);
      for (NodeId in : fins) {
        if (sim_.value(in).g == Val::X && !has_effect(sim_.value(in))) {
          out.push_back({in, nc});
        }
      }
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      for (NodeId in : fins) {
        if (sim_.value(in).g == Val::X && !has_effect(sim_.value(in))) {
          const Val v =
              (scoap_.cc0[in] <= scoap_.cc1[in]) ? Val::Zero : Val::One;
          out.push_back({in, v});
        }
      }
      break;
    }
    case GateType::Mux: {
      const NodeId sel = fins[0], d0 = fins[1], d1 = fins[2];
      if (has_effect(sim_.value(d0)) && sim_.value(sel).g == Val::X) {
        out.push_back({sel, Val::Zero});
      }
      if (has_effect(sim_.value(d1)) && sim_.value(sel).g == Val::X) {
        out.push_back({sel, Val::One});
      }
      if (has_effect(sim_.value(sel))) {
        // Need d0 != d1; aim for d0=0, d1=1 (or follow what's already set).
        const PairVal v0 = sim_.value(d0), v1 = sim_.value(d1);
        if (v0.g == Val::X) {
          out.push_back({d0, v1.g == Val::X ? Val::Zero : !v1.g});
        } else if (v1.g == Val::X) {
          out.push_back({d1, !v0.g});
        }
      }
      break;
    }
    default:
      break;  // Buf/Not have no side inputs
  }
}

void Podem::find_objectives(std::span<const FaultSite> sites,
                            std::vector<Objective>& out) {
  const Netlist& nl = lv_.netlist();
  out.clear();
  if (!sim_.any_effect()) {
    // Activation phase.
    for (const FaultSite& s : sites) {
      const NodeId anet = (s.pin < 0)
                              ? s.node
                              : nl.fanins(s.node)[static_cast<std::size_t>(
                                    s.pin)];
      const Val need = !s.value;
      const Val cur = sim_.value(anet).g;
      if (cur == Val::X) {
        out.push_back({anet, need});
      } else if (cur == need && s.pin >= 0) {
        // The faulty gate already sees a divergent input but its output
        // swallowed it: treat the site gate like a D-frontier member.
        side_input_objectives(s.node, out);
      }
      // cur == s.value: this site is blocked; try the others.
    }
    return;
  }

  // Propagation phase: build the D-frontier from nets carrying effects.
  // First-occurrence order (mark-array dedupe == the old linear-find dedupe).
  const SoaCircuit& soa = sim_.soa();
  std::vector<NodeId> frontier;
  for (NodeId net : sim_.effect_nets()) {
    const NodeId* fo = soa.fanout(net);
    const std::uint32_t nfo = soa.fanout_count(net);
    for (std::uint32_t i = 0; i < nfo; ++i) {
      const NodeId g = fo[i];
      if (frontier_mark_[g]) continue;
      const PairVal gv = sim_.value(g);
      if (has_effect(gv)) continue;
      if (gv.g != Val::X && gv.f != Val::X) continue;  // blocked binary
      frontier_mark_[g] = 1;
      frontier.push_back(g);
    }
  }
  for (NodeId g : frontier) frontier_mark_[g] = 0;
  // Closest-to-observation first; keep only gates with a live X-path and
  // bound the per-round work on very wide cones.
  std::sort(frontier.begin(), frontier.end(), [&](NodeId a, NodeId b) {
    return obs_dist_[a] < obs_dist_[b];
  });
  if (frontier.size() > static_cast<std::size_t>(opt_.frontier_cap)) {
    frontier.resize(static_cast<std::size_t>(opt_.frontier_cap));
  }
  std::erase_if(frontier, [&](NodeId g) { return !x_path_exists(g); });
  for (NodeId g : frontier) side_input_objectives(g, out);
}

bool Podem::x_path_exists(NodeId from) {
  const SoaCircuit& soa = sim_.soa();
  if (obs_dist_[from] >= kInfDist) return false;
  // The DFS is capped: on large mostly-X models an exact answer costs more
  // than an occasional wasted objective, so past the cap we optimistically
  // report "path exists".
  constexpr std::size_t kVisitCap = 600;
  std::vector<NodeId> stack{from};
  std::vector<NodeId> visited{from};
  xpath_mark_[from] = 1;
  bool found = false;
  while (!stack.empty() && !found) {
    if (visited.size() > kVisitCap) {
      found = true;
      break;
    }
    const NodeId id = stack.back();
    stack.pop_back();
    const PairVal v = sim_.value(id);
    const bool passable = (v.g == Val::X || v.f == Val::X);
    if (!passable && id != from) continue;
    if (observed_[id] && (passable || id == from)) {
      found = true;
      break;
    }
    const NodeId* fo = soa.fanout(id);
    const std::uint32_t nfo = soa.fanout_count(id);
    for (std::uint32_t i = 0; i < nfo; ++i) {
      const NodeId s = fo[i];
      if (xpath_mark_[s] || obs_dist_[s] >= kInfDist) continue;
      xpath_mark_[s] = 1;
      visited.push_back(s);
      stack.push_back(s);
    }
  }
  for (NodeId id : visited) xpath_mark_[id] = 0;
  return found;
}

bool Podem::backtrace(Objective obj, NodeId& pi, Val& pv) const {
  const SoaCircuit& soa = sim_.soa();
  NodeId net = obj.net;
  Val val = obj.val;
  // The walk strictly descends in level, so it terminates.
  for (;;) {
    const GateType t = soa.type(net);
    if (t == GateType::Input || t == GateType::Dff) {
      if (t == GateType::Input && controllable_[net] &&
          sim_.value(net).g == Val::X) {
        pi = net;
        pv = val;
        return true;
      }
      return false;
    }
    if (t == GateType::Const0 || t == GateType::Const1) return false;
    const std::span<const NodeId> fins(soa.fanin(net), soa.fanin_count(net));
    if (t == GateType::Buf) {
      net = fins[0];
      continue;
    }
    if (t == GateType::Not) {
      net = fins[0];
      val = !val;
      continue;
    }
    if (t == GateType::And || t == GateType::Nand || t == GateType::Or ||
        t == GateType::Nor) {
      const Val c = controlling_value(t);
      const Val inner = is_inverting(t) ? !val : val;
      NodeId best = kNullNode;
      Cost best_cost = 0;
      if (inner == c) {
        // Any single input at the controlling value suffices: easiest first.
        best_cost = kInfCost + 1;
        for (NodeId in : fins) {
          if (sim_.value(in).g != Val::X) continue;
          const Cost cc = scoap_.cc(in, c == Val::One);
          if (cc < best_cost) {
            best_cost = cc;
            best = in;
          }
        }
        val = c;
      } else {
        // All inputs must be non-controlling: hardest X input first.
        for (NodeId in : fins) {
          if (sim_.value(in).g != Val::X) continue;
          const Cost cc = scoap_.cc(in, c == Val::Zero);
          if (best == kNullNode || cc > best_cost) {
            best_cost = cc;
            best = in;
          }
        }
        val = !c;
      }
      if (best == kNullNode) return false;
      net = best;
      continue;
    }
    if (t == GateType::Xor || t == GateType::Xnor) {
      // Required parity of one-valued inputs: XOR outputs 1 on odd parity,
      // XNOR on even.
      const bool parity =
          (t == GateType::Xor) ? (val == Val::One) : (val == Val::Zero);
      NodeId chosen = kNullNode;
      int unknowns = 0;
      bool known_par = false;
      for (NodeId in : fins) {
        const Val v = sim_.value(in).g;
        if (v == Val::X) {
          ++unknowns;
          if (chosen == kNullNode) chosen = in;
        } else {
          known_par ^= (v == Val::One);
        }
      }
      if (chosen == kNullNode) return false;
      Val target;
      if (unknowns == 1) {
        target = (parity != known_par) ? Val::One : Val::Zero;
      } else {
        target = (scoap_.cc0[chosen] <= scoap_.cc1[chosen]) ? Val::Zero
                                                            : Val::One;
      }
      net = chosen;
      val = target;
      continue;
    }
    if (t == GateType::Mux) {
      const NodeId sel = fins[0], d0 = fins[1], d1 = fins[2];
      const Val sv = sim_.value(sel).g;
      if (sv == Val::Zero) {
        net = d0;
        continue;
      }
      if (sv == Val::One) {
        net = d1;
        continue;
      }
      // Select the cheaper branch and justify the select line first.
      const Cost c0 = scoap_.cc(d0, val == Val::One);
      const Cost c1 = scoap_.cc(d1, val == Val::One);
      net = sel;
      val = (c0 <= c1) ? Val::Zero : Val::One;
      continue;
    }
    return false;
  }
}

AtpgResult Podem::generate(std::span<const FaultSite> sites,
                           std::int64_t attr_fault) {
  ObsRegistry* aobs = opt_.obs;
  const bool attributed =
      aobs && attr_fault >= 0 && aobs->attribution_enabled();
  // The wall clock is read only on attributed calls, so the disabled path
  // stays at one branch per generate() (the null-sink rule).
  std::chrono::steady_clock::time_point at0;
  if (attributed) at0 = std::chrono::steady_clock::now();
  AtpgResult res = generate_impl(sites);
  if (attributed) {
    const std::size_t f = static_cast<std::size_t>(attr_fault);
    aobs->charge(Attr::PodemCalls, f);
    if (!res.hit_time_limit) {
      aobs->charge(Attr::PodemDecisions, f,
                   static_cast<std::uint64_t>(res.decisions));
      aobs->charge(Attr::PodemBacktracks, f,
                   static_cast<std::uint64_t>(res.backtracks));
    }
    aobs->charge(Attr::WallNanos, f,
                 static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - at0)
                         .count()));
  }
  if (ObsRegistry* obs = opt_.obs) {
    obs->add(Ctr::PodemCalls);
    switch (res.status) {
      case AtpgStatus::Detected: obs->add(Ctr::PodemDetected); break;
      case AtpgStatus::Untestable: obs->add(Ctr::PodemUntestable); break;
      case AtpgStatus::Aborted: obs->add(Ctr::PodemAborts); break;
    }
    if (res.hit_time_limit) {
      // Work truncated by the wall-clock budget is not a function of the
      // input (it depends on host speed and scheduling), so it stays out of
      // the deterministic decision/backtrack counters; this counter records
      // that truncation happened.
      obs->add(Ctr::PodemTimeLimitHits);
    } else {
      obs->add(Ctr::PodemDecisions, static_cast<std::uint64_t>(res.decisions));
      obs->add(Ctr::PodemBacktracks,
               static_cast<std::uint64_t>(res.backtracks));
      obs->observe(Hist::PodemDecisionDepth,
                   static_cast<std::uint64_t>(res.decisions));
      obs->observe(Hist::PodemBacktracksPerCall,
                   static_cast<std::uint64_t>(res.backtracks));
    }
  }
  return res;
}

AtpgResult Podem::generate_impl(std::span<const FaultSite> sites) {
  const Netlist& nl = lv_.netlist();
  sim_.init(sites);

  struct Decision {
    NodeId pi;
    Val val;
    bool flipped;
  };
  std::vector<Decision> stack;
  AtpgResult res;
  std::vector<Objective> objectives;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(opt_.time_limit_ms > 0 ? opt_.time_limit_ms
                                                       : 1 << 30);
  int ticks = 0;

  for (;;) {
    if (opt_.time_limit_ms > 0 && (++ticks & 63) == 0 &&
        std::chrono::steady_clock::now() > deadline) {
      res.status = AtpgStatus::Aborted;
      res.hit_time_limit = true;
      return res;
    }
    if (detected()) {
      res.status = AtpgStatus::Detected;
      for (NodeId id = 0; id < nl.size(); ++id) {
        if (controllable_[id] && sim_.value(id).g != Val::X) {
          res.assignment.emplace_back(id, sim_.value(id).g);
        }
      }
      return res;
    }

    find_objectives(sites, objectives);
    NodeId pi = kNullNode;
    Val pv = Val::X;
    bool ok = false;
    for (const Objective& obj : objectives) {
      if (backtrace(obj, pi, pv)) {
        ok = true;
        break;
      }
    }

    if (ok) {
      stack.push_back({pi, pv, false});
      sim_.set_source(pi, pv);
      ++res.decisions;
    } else {
      // Backtrack: unwind fully-tried decisions, flip the last open one.
      while (!stack.empty() && stack.back().flipped) {
        sim_.set_source(stack.back().pi, Val::X);
        stack.pop_back();
      }
      if (stack.empty()) {
        res.status = AtpgStatus::Untestable;
        return res;
      }
      if (++res.backtracks > opt_.backtrack_limit) {
        res.status = AtpgStatus::Aborted;
        return res;
      }
      Decision& d = stack.back();
      d.val = (d.val == Val::One) ? Val::Zero : Val::One;
      d.flipped = true;
      sim_.set_source(d.pi, d.val);
    }
  }
}

}  // namespace fsct
