#include "atpg/unroll.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "netlist/levelize.h"

namespace fsct {

std::vector<char> fault_forward_closure(const Levelizer& lv, NodeId site) {
  const Netlist& nl = lv.netlist();
  std::vector<char> cone(nl.size(), 0);
  std::vector<NodeId> stack{site};
  cone[site] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId s : lv.fanouts(id)) {
      if (!cone[s]) {
        cone[s] = 1;
        stack.push_back(s);  // crosses DFFs: stuck-at faults persist
      }
    }
  }
  return cone;
}

std::vector<char> compute_keep_mask(const Levelizer& lv,
                                    const std::vector<Val>& scan_values,
                                    const std::vector<char>& fault_cone,
                                    std::span<const NodeId> roots) {
  const Netlist& nl = lv.netlist();
  auto frozen = [&](NodeId n) {
    if (!fault_cone.empty() && fault_cone[n]) return false;
    return scan_values[n] != Val::X;
  };
  std::vector<char> keep(nl.size(), 0);
  std::vector<NodeId> stack;
  for (NodeId r : roots) {
    if (!keep[r]) {
      keep[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : nl.fanins(id)) {
      if (keep[f] || frozen(f)) continue;
      keep[f] = 1;
      stack.push_back(f);  // DFF fanins cross the frame boundary uniformly
    }
  }
  return keep;
}

UnrolledModel unroll(const UnrollSpec& spec) {
  if (spec.base == nullptr || spec.frames < 1) {
    throw std::invalid_argument("unroll: bad spec");
  }
  if (spec.keep != nullptr && spec.fold_values == nullptr) {
    throw std::invalid_argument("unroll: keep requires fold_values");
  }
  const Netlist& b = *spec.base;
  const std::size_t n_ff = b.dffs().size();
  if (spec.controllable_state.size() != n_ff ||
      spec.observable_ff.size() != n_ff) {
    throw std::invalid_argument("unroll: per-FF vector size mismatch");
  }
  Levelizer lv(b);

  auto kept = [&](NodeId id) {
    return spec.keep == nullptr || (*spec.keep)[id] != 0;
  };

  UnrolledModel m;
  m.nl.set_name(b.name() + "_x" + std::to_string(spec.frames));
  m.map.assign(static_cast<std::size_t>(spec.frames),
               std::vector<NodeId>(b.size(), kNullNode));
  m.cap.assign(static_cast<std::size_t>(spec.frames),
               std::vector<NodeId>(n_ff, kNullNode));
  m.frame_pi.assign(static_cast<std::size_t>(spec.frames), {});
  m.init_state.assign(n_ff, kNullNode);

  NodeId const0 = kNullNode, const1 = kNullNode;
  auto get_const = [&](Val v) {
    if (v == Val::X) {
      throw std::logic_error("unroll: folding an X-valued node");
    }
    if (v == Val::Zero) {
      if (const0 == kNullNode) const0 = m.nl.add_const(false, "_const0");
      return const0;
    }
    if (const1 == kNullNode) const1 = m.nl.add_const(true, "_const1");
    return const1;
  };

  // Maps a base fanin reference within frame `fmap` to an unrolled node,
  // folding pruned nodes to their scan-mode constants.
  auto ref = [&](const std::vector<NodeId>& fmap, NodeId id) -> NodeId {
    if (!kept(id)) return get_const((*spec.fold_values)[id]);
    if (fmap[id] == kNullNode) {
      throw std::logic_error("unroll: reference to unbuilt node " +
                             b.node_name(id));
    }
    return fmap[id];
  };

  std::unordered_map<NodeId, Val> fixed;
  for (auto [pi, v] : spec.fixed_pis) fixed.emplace(pi, v);

  // Frame-0 state inputs (only for kept flip-flops).
  for (std::size_t i = 0; i < n_ff; ++i) {
    const NodeId ff = b.dffs()[i];
    if (!kept(ff)) continue;
    m.init_state[i] = m.nl.add_input(b.node_name(ff) + "@s0");
    m.map[0][ff] = m.init_state[i];
  }

  for (int f = 0; f < spec.frames; ++f) {
    const std::string suf = "@" + std::to_string(f);
    auto& fmap = m.map[static_cast<std::size_t>(f)];
    // PIs.
    m.frame_pi[static_cast<std::size_t>(f)].assign(b.inputs().size(),
                                                   kNullNode);
    for (std::size_t i = 0; i < b.inputs().size(); ++i) {
      const NodeId pi = b.inputs()[i];
      NodeId u = kNullNode;
      if (auto it = fixed.find(pi); it != fixed.end()) {
        u = get_const(it->second);
      } else if (kept(pi)) {
        u = m.nl.add_input(b.node_name(pi) + suf);
      }
      fmap[pi] = u;
      m.frame_pi[static_cast<std::size_t>(f)][i] = u;
    }
    // Base constants.
    for (NodeId id = 0; id < b.size(); ++id) {
      if (b.type(id) == GateType::Const0) fmap[id] = get_const(Val::Zero);
      if (b.type(id) == GateType::Const1) fmap[id] = get_const(Val::One);
    }
    // Q values for frame f > 0 come from frame f-1 capture buffers.
    if (f > 0) {
      for (std::size_t i = 0; i < n_ff; ++i) {
        if (kept(b.dffs()[i])) {
          fmap[b.dffs()[i]] = m.cap[static_cast<std::size_t>(f - 1)][i];
        }
      }
    }
    // Combinational gates.
    for (NodeId g : lv.topo_order()) {
      if (!kept(g)) continue;
      std::vector<NodeId> fins;
      fins.reserve(b.fanins(g).size());
      for (NodeId x : b.fanins(g)) fins.push_back(ref(fmap, x));
      fmap[g] = m.nl.add_gate(b.type(g), std::move(fins), b.node_name(g) + suf);
    }
    // Capture buffers.
    for (std::size_t i = 0; i < n_ff; ++i) {
      const NodeId ff = b.dffs()[i];
      if (!kept(ff)) continue;
      const NodeId dnet = b.fanins(ff)[0];
      m.cap[static_cast<std::size_t>(f)][i] = m.nl.add_gate(
          GateType::Buf, {ref(fmap, dnet)},
          b.node_name(ff) + "@c" + std::to_string(f));
    }
    // Observations.
    if (spec.observe_pos) {
      for (NodeId po : b.outputs()) {
        if (kept(po) && fmap[po] != kNullNode) m.observe.push_back(fmap[po]);
      }
    }
    for (std::size_t i = 0; i < n_ff; ++i) {
      if (spec.observable_ff[i] && kept(b.dffs()[i])) {
        m.observe.push_back(m.cap[static_cast<std::size_t>(f)][i]);
      }
    }
  }

  // Controllability flags.
  m.controllable.assign(m.nl.size(), 0);
  for (int f = 0; f < spec.frames; ++f) {
    for (std::size_t i = 0; i < b.inputs().size(); ++i) {
      const NodeId u = m.frame_pi[static_cast<std::size_t>(f)][i];
      if (u != kNullNode && m.nl.type(u) == GateType::Input) {
        m.controllable[u] = 1;
      }
    }
  }
  for (std::size_t i = 0; i < n_ff; ++i) {
    if (spec.controllable_state[i] && m.init_state[i] != kNullNode) {
      m.controllable[m.init_state[i]] = 1;
    }
  }

  return m;
}

std::vector<FaultSite> UnrolledModel::map_fault(const Fault& f) const {
  std::vector<FaultSite> sites;
  const Val sv = f.stuck_one ? Val::One : Val::Zero;
  auto add = [&](NodeId node, int pin) {
    if (node == kNullNode) return;
    FaultSite s{node, pin, sv};
    for (const FaultSite& e : sites) {
      if (e.node == s.node && e.pin == s.pin) return;
    }
    sites.push_back(s);
  };
  // A base node is a DFF iff its frame-0 Q maps to one of the state inputs.
  bool is_dff = false;
  std::size_t ffi = 0;
  for (std::size_t i = 0; i < init_state.size(); ++i) {
    if (init_state[i] != kNullNode && map[0][f.node] == init_state[i]) {
      is_dff = true;
      ffi = i;
      break;
    }
  }
  if (is_dff) {
    if (f.pin == -1) {
      add(init_state[ffi], -1);
      for (int fr = 0; fr < frames(); ++fr) {
        add(cap[static_cast<std::size_t>(fr)][ffi], -1);
      }
    } else {
      for (int fr = 0; fr < frames(); ++fr) {
        add(cap[static_cast<std::size_t>(fr)][ffi], 0);
      }
    }
  } else {
    for (int fr = 0; fr < frames(); ++fr) {
      add(map[static_cast<std::size_t>(fr)][f.node], f.pin);
    }
  }
  return sites;
}

}  // namespace fsct
