// SCOAP-style testability measures used to guide PODEM's backtrace.
//
// CC0/CC1 are the classic combinational controllability costs (Goldstein's
// rules, saturating arithmetic).  DFF outputs and uncontrollable sources are
// given infinite cost so backtrace steers toward assignable primary inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/levelize.h"

namespace fsct {

/// Saturating cost type; kInfCost means "cannot be controlled".
using Cost = std::uint32_t;
inline constexpr Cost kInfCost = 0x3fffffff;

/// Combinational controllability of every net.
struct Scoap {
  std::vector<Cost> cc0;  ///< cost of setting the net to 0
  std::vector<Cost> cc1;  ///< cost of setting the net to 1

  Cost cc(NodeId n, bool one) const { return one ? cc1[n] : cc0[n]; }
};

/// Computes CC0/CC1.  `controllable` flags the source nodes (PIs / pseudo-PIs)
/// that ATPG may assign; all other sources get kInfCost for both values
/// except constants, which are free for their own value.
Scoap compute_scoap(const Levelizer& lv, const std::vector<char>& controllable);

}  // namespace fsct
