#include "atpg/scoap.h"

#include <algorithm>

namespace fsct {
namespace {

Cost sat_add(Cost a, Cost b) { return std::min<Cost>(kInfCost, a + b); }

}  // namespace

Scoap compute_scoap(const Levelizer& lv,
                    const std::vector<char>& controllable) {
  const Netlist& nl = lv.netlist();
  Scoap s;
  s.cc0.assign(nl.size(), kInfCost);
  s.cc1.assign(nl.size(), kInfCost);

  for (NodeId id = 0; id < nl.size(); ++id) {
    switch (nl.type(id)) {
      case GateType::Input:
        if (controllable[id]) {
          s.cc0[id] = 1;
          s.cc1[id] = 1;
        }
        break;
      case GateType::Const0: s.cc0[id] = 0; break;
      case GateType::Const1: s.cc1[id] = 0; break;
      case GateType::Dff:
        if (controllable[id]) {
          s.cc0[id] = 1;
          s.cc1[id] = 1;
        }
        break;
      default:
        break;
    }
  }

  for (NodeId id : lv.topo_order()) {
    const auto fins = nl.fanins(id);
    auto min0 = [&] {
      Cost c = kInfCost;
      for (NodeId f : fins) c = std::min(c, s.cc0[f]);
      return c;
    };
    auto min1 = [&] {
      Cost c = kInfCost;
      for (NodeId f : fins) c = std::min(c, s.cc1[f]);
      return c;
    };
    auto sum0 = [&] {
      Cost c = 0;
      for (NodeId f : fins) c = sat_add(c, s.cc0[f]);
      return c;
    };
    auto sum1 = [&] {
      Cost c = 0;
      for (NodeId f : fins) c = sat_add(c, s.cc1[f]);
      return c;
    };
    Cost c0 = kInfCost, c1 = kInfCost;
    switch (nl.type(id)) {
      case GateType::Buf: c0 = s.cc0[fins[0]]; c1 = s.cc1[fins[0]]; break;
      case GateType::Not: c0 = s.cc1[fins[0]]; c1 = s.cc0[fins[0]]; break;
      case GateType::And: c0 = min0(); c1 = sum1(); break;
      case GateType::Nand: c1 = min0(); c0 = sum1(); break;
      case GateType::Or: c1 = min1(); c0 = sum0(); break;
      case GateType::Nor: c0 = min1(); c1 = sum0(); break;
      case GateType::Xor:
      case GateType::Xnor: {
        // Two-value parity cost over the fanins: cheapest assignments giving
        // even/odd parity (dynamic programming over pins).
        Cost even = 0, odd = kInfCost;
        for (NodeId f : fins) {
          const Cost e2 = std::min(sat_add(even, s.cc0[f]),
                                   sat_add(odd, s.cc1[f]));
          const Cost o2 = std::min(sat_add(even, s.cc1[f]),
                                   sat_add(odd, s.cc0[f]));
          even = e2;
          odd = o2;
        }
        if (nl.type(id) == GateType::Xor) {
          c0 = even;
          c1 = odd;
        } else {
          c0 = odd;
          c1 = even;
        }
        break;
      }
      case GateType::Mux: {
        const NodeId sel = fins[0], d0 = fins[1], d1 = fins[2];
        c0 = std::min(sat_add(s.cc0[sel], s.cc0[d0]),
                      sat_add(s.cc1[sel], s.cc0[d1]));
        c1 = std::min(sat_add(s.cc0[sel], s.cc1[d0]),
                      sat_add(s.cc1[sel], s.cc1[d1]));
        break;
      }
      default:
        break;
    }
    s.cc0[id] = (c0 == kInfCost) ? kInfCost : sat_add(c0, 1);
    s.cc1[id] = (c1 == kInfCost) ? kInfCost : sat_add(c1, 1);
  }
  return s;
}

}  // namespace fsct
