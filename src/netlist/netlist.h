// Gate-level netlist representation for the functional-scan-chain-testing
// (FSCT) library.
//
// A Netlist is a directed graph of typed nodes.  Every node drives exactly
// one net, so nodes and nets are identified: `NodeId` names both the gate and
// the signal at its output.  Primary inputs and constant generators are
// source nodes with no fanins; D flip-flops (GateType::Dff) have a single
// fanin (the D input) and their output is the Q signal, which acts as a
// combinational source.  Primary outputs are a list of node ids (a node may
// be both an internal signal and a PO, as in ISCAS'89 .bench semantics).
//
// The netlist is mutable: the TPI engine inserts test points by splicing new
// gates into fan-in edges (see replace_fanin / insert_on_edge), and the
// MUX-scan inserter rewires DFF D-pins.  Derived structures (fanout lists,
// levels, topological order) are provided by Levelizer (levelize.h) and must
// be recomputed after mutation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fsct {

/// Identifier of a node (== the net driven by that node).
using NodeId = std::uint32_t;

/// Sentinel "no node".
inline constexpr NodeId kNullNode = static_cast<NodeId>(-1);

/// Gate/node types.  The combinational set matches what ISCAS'89 .bench files
/// and a NAND/NOR/NOT technology mapping produce; Mux exists for conventional
/// MUX-scan insertion (fanins: sel, d0, d1 -> out = sel ? d1 : d0).
enum class GateType : std::uint8_t {
  Input,   ///< primary input, no fanins
  Const0,  ///< constant 0 generator, no fanins
  Const1,  ///< constant 1 generator, no fanins
  Buf,     ///< 1 fanin
  Not,     ///< 1 fanin
  And,     ///< >=1 fanins
  Nand,    ///< >=1 fanins
  Or,      ///< >=1 fanins
  Nor,     ///< >=1 fanins
  Xor,     ///< >=1 fanins
  Xnor,    ///< >=1 fanins
  Mux,     ///< exactly 3 fanins: sel, d0, d1
  Dff,     ///< 1 fanin (D); node output is Q
};

/// Human-readable gate-type name ("NAND", "DFF", ...).
std::string_view gate_type_name(GateType t);

/// True for types with no fanins (Input, Const0, Const1).
inline bool is_source(GateType t) {
  return t == GateType::Input || t == GateType::Const0 ||
         t == GateType::Const1;
}

/// True for combinational gate types (everything except Input/Const/Dff).
inline bool is_combinational(GateType t) {
  return !is_source(t) && t != GateType::Dff;
}

/// One node of the netlist.  Plain data; invariants (arity, acyclicity) are
/// maintained by Netlist and checked by Netlist::validate().
struct Node {
  GateType type = GateType::Buf;
  std::vector<NodeId> fanins;
  std::string name;
};

/// Mutable gate-level netlist.  See file comment for the data model.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  /// Circuit name (e.g. "s1423like").
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------

  /// Adds a primary input. Name must be unique.
  NodeId add_input(std::string name);

  /// Adds a constant-0 / constant-1 source.
  NodeId add_const(bool value, std::string name);

  /// Adds a combinational gate. Arity is checked against the type.
  NodeId add_gate(GateType type, std::vector<NodeId> fanins, std::string name);

  /// Adds a D flip-flop whose D input is `d`. The returned id is Q.
  NodeId add_dff(NodeId d, std::string name);

  /// Adds a D flip-flop whose D input will be connected later via set_fanin.
  NodeId add_dff_floating(std::string name);

  /// Marks an existing node as a primary output (idempotent).
  void mark_output(NodeId id);

  /// Removes PO marking from a node (no-op if not marked).
  void unmark_output(NodeId id);

  // ---- mutation (used by TPI / scan insertion) -----------------------------

  /// Replaces every occurrence of `old_in` in `node`'s fanin list by `new_in`.
  /// Returns the number of pins rewired.
  int replace_fanin(NodeId node, NodeId old_in, NodeId new_in);

  /// Replaces fanin pin `pin` of `node` by `new_in`.
  void set_fanin(NodeId node, std::size_t pin, NodeId new_in);

  /// Splices a new gate of `type` into the edge `driver -> (sink, pin)`:
  /// creates g = type(driver, extra...), rewires the sink pin to g, and
  /// returns g.  Other fanouts of `driver` are untouched.  This is exactly
  /// the test-point insertion primitive.
  NodeId insert_on_edge(NodeId driver, NodeId sink, std::size_t pin,
                        GateType type, std::vector<NodeId> extra_fanins,
                        std::string name);

  // ---- access --------------------------------------------------------------

  std::size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  GateType type(NodeId id) const { return nodes_[id].type; }
  std::span<const NodeId> fanins(NodeId id) const { return nodes_[id].fanins; }
  const std::string& node_name(NodeId id) const { return nodes_[id].name; }

  /// All primary inputs, in creation order.
  const std::vector<NodeId>& inputs() const { return inputs_; }
  /// All primary outputs, in marking order.
  const std::vector<NodeId>& outputs() const { return outputs_; }
  /// All flip-flops (node id == Q signal), in creation order.
  const std::vector<NodeId>& dffs() const { return dffs_; }

  bool is_output(NodeId id) const;

  /// Looks up a node by name; returns kNullNode if absent.
  NodeId find(std::string_view name) const;

  /// Number of combinational gates (excludes PIs, constants and DFFs).
  std::size_t num_gates() const;

  // ---- integrity -----------------------------------------------------------

  /// Checks structural invariants: arities, fanin ids in range, unique names,
  /// no combinational cycles, every DFF has a driven D pin.  Returns an empty
  /// string when the netlist is well formed, else a diagnostic.
  std::string validate() const;

 private:
  NodeId add_node(Node n);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> dffs_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace fsct
