// Structural statistics of a netlist: gate-type histogram, logic depth,
// fanout distribution.  Used by the reporting tools and handy when sanity-
// checking generated or parsed circuits against published benchmark data.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace fsct {

struct NetlistStats {
  std::size_t nodes = 0;
  std::size_t gates = 0;  ///< combinational gates
  std::size_t pis = 0;
  std::size_t pos = 0;
  std::size_t ffs = 0;
  std::size_t constants = 0;

  /// Per-GateType node counts, indexed by static_cast<size_t>(GateType).
  std::array<std::size_t, 13> by_type{};

  int max_depth = 0;          ///< deepest combinational level
  double avg_fanin = 0;       ///< mean fanin over combinational gates
  std::size_t max_fanout = 0;
  double avg_fanout = 0;      ///< mean fanout over driving nodes
  std::size_t inverting_gates = 0;  ///< NOT/NAND/NOR/XNOR

  std::size_t count(GateType t) const {
    return by_type[static_cast<std::size_t>(t)];
  }
};

/// Computes all statistics in one pass (plus a levelization for depth).
NetlistStats compute_stats(const Netlist& nl);

/// Multi-line human-readable rendering.
void print_stats(std::ostream& os, const NetlistStats& s);
std::string stats_string(const NetlistStats& s);

}  // namespace fsct
