// Derived structural views of a Netlist: fanout lists, logic levels and a
// topological order of the combinational gates.  These are consumed by every
// simulator and by ATPG.  A Levelizer snapshot is invalidated by any netlist
// mutation; rebuild after TPI / scan insertion.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "netlist/netlist.h"

namespace fsct {

/// Per-snapshot memo cell for artifacts derived from one Levelizer (today:
/// the SoaCircuit flat compilation, see SoaCircuit::compile).  Type-erased so
/// this layer stays below the simulators that fill it.  Copies of a Levelizer
/// share the cell — a copy is the same snapshot — which is also why the cell
/// lives behind a shared_ptr instead of as direct members (a mutex member
/// would make Levelizer non-copyable).
struct LevelizerMemo {
  std::mutex m;
  std::shared_ptr<const void> value;
};

/// Immutable structural snapshot of a netlist.
class Levelizer {
 public:
  /// Builds fanouts, levels and topological order.  Throws std::runtime_error
  /// if the netlist has combinational cycles or unconnected pins.
  explicit Levelizer(const Netlist& nl);

  /// Fanout node ids of `id` (sinks whose fanin list contains `id`).  A sink
  /// appears once per pin it connects on.
  const std::vector<NodeId>& fanouts(NodeId id) const { return fanouts_[id]; }

  /// Logic level: 0 for PIs, constants and DFF outputs; otherwise
  /// 1 + max(level of fanins).
  int level(NodeId id) const { return levels_[id]; }

  /// Maximum level over all nodes.
  int max_level() const { return max_level_; }

  /// Combinational gates in topological (level-compatible) order.
  const std::vector<NodeId>& topo_order() const { return topo_; }

  /// All node ids reachable from `from` through combinational gates (forward,
  /// including `from` itself).  Propagation stops at DFF D-pins: the DFF node
  /// itself is included (the fault reaches its D input) but nothing beyond.
  std::vector<NodeId> forward_cone(NodeId from) const;

  /// All node ids in the transitive fanin of `to` (backward, including `to`),
  /// stopping at PIs, constants and DFF outputs (which are included).
  std::vector<NodeId> backward_cone(NodeId to) const;

  const Netlist& netlist() const { return nl_; }

  /// The snapshot's derived-artifact memo (never null).
  const std::shared_ptr<LevelizerMemo>& memo() const { return memo_; }

 private:
  const Netlist& nl_;
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<int> levels_;
  std::vector<NodeId> topo_;
  int max_level_ = 0;
  std::shared_ptr<LevelizerMemo> memo_ = std::make_shared<LevelizerMemo>();
};

}  // namespace fsct
