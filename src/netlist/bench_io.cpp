#include "netlist/bench_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fsct {
namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct Def {
  GateType type;
  std::vector<std::string> fanins;
  int line;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("bench parse error, line " + std::to_string(line) +
                           ": " + msg);
}

GateType parse_type(const std::string& kw, int line) {
  const std::string k = upper(kw);
  if (k == "AND") return GateType::And;
  if (k == "NAND") return GateType::Nand;
  if (k == "OR") return GateType::Or;
  if (k == "NOR") return GateType::Nor;
  if (k == "XOR") return GateType::Xor;
  if (k == "XNOR") return GateType::Xnor;
  if (k == "NOT" || k == "INV") return GateType::Not;
  if (k == "BUF" || k == "BUFF") return GateType::Buf;
  if (k == "DFF") return GateType::Dff;
  if (k == "MUX") return GateType::Mux;
  if (k == "CONST0") return GateType::Const0;
  if (k == "CONST1") return GateType::Const1;
  fail(line, "unknown gate type '" + kw + "'");
}

}  // namespace

Netlist read_bench(std::istream& in, std::string circuit_name) {
  std::vector<std::string> input_names;
  std::vector<std::pair<std::string, int>> output_names;  // name, line
  std::vector<std::pair<std::string, Def>> defs;          // in file order
  std::unordered_map<std::string, std::size_t> def_index;
  // Every signal-defining line (INPUT or gate), for duplicate reporting.
  std::unordered_map<std::string, int> first_def_line;

  std::string raw;
  int line_no = 0;
  auto define = [&](const std::string& name) {
    const auto [it, fresh] = first_def_line.emplace(name, line_no);
    if (!fresh) {
      fail(line_no, "redefinition of '" + name + "' (first defined at line " +
                        std::to_string(it->second) + ")");
    }
  };
  while (std::getline(in, raw)) {
    ++line_no;
    if (auto h = raw.find('#'); h != std::string::npos) raw.erase(h);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto lp = line.find('(');
      const auto rp = line.rfind(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
        fail(line_no, "expected INPUT(...) / OUTPUT(...)");
      }
      const std::string kw = upper(trim(line.substr(0, lp)));
      const std::string arg = trim(line.substr(lp + 1, rp - lp - 1));
      if (arg.empty()) fail(line_no, "empty signal name");
      if (kw == "INPUT") {
        define(arg);
        input_names.push_back(arg);
      } else if (kw == "OUTPUT") {
        output_names.emplace_back(arg, line_no);
      } else {
        fail(line_no, "unknown directive '" + kw + "'");
      }
      continue;
    }

    const std::string lhs = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));
    const auto lp = rhs.find('(');
    const auto rp = rhs.rfind(')');
    if (lhs.empty() || lp == std::string::npos || rp == std::string::npos ||
        rp < lp) {
      fail(line_no, "expected 'name = GATE(a, b, ...)'");
    }
    Def d;
    d.type = parse_type(trim(rhs.substr(0, lp)), line_no);
    d.line = line_no;
    std::stringstream args(rhs.substr(lp + 1, rp - lp - 1));
    std::string tok;
    while (std::getline(args, tok, ',')) {
      const std::string t = trim(tok);
      if (t.empty()) fail(line_no, "empty fanin name");
      d.fanins.push_back(t);
    }
    if ((d.type == GateType::Const0 || d.type == GateType::Const1) &&
        !d.fanins.empty()) {
      fail(line_no, "constant takes no fanins");
    }
    define(lhs);
    def_index.emplace(lhs, defs.size());
    defs.emplace_back(lhs, std::move(d));
  }

  Netlist nl(std::move(circuit_name));
  // Netlist mutators throw std::invalid_argument (bad arity, bad names);
  // re-throw those with the defining line attached.
  auto guarded = [&](int line, auto&& fn) {
    try {
      fn();
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
  };

  // Pass 1: sources.
  for (const std::string& n : input_names) {
    guarded(first_def_line.at(n), [&] { nl.add_input(n); });
  }
  for (const auto& [name, d] : defs) {
    if (d.type == GateType::Dff) {
      guarded(d.line, [&] { nl.add_dff_floating(name); });
    } else if (d.type == GateType::Const0 || d.type == GateType::Const1) {
      guarded(d.line, [&] { nl.add_const(d.type == GateType::Const1, name); });
    }
  }

  // Pass 2: combinational gates in dependency order (Kahn over name graph).
  auto resolved = [&](const std::string& n) { return nl.find(n) != kNullNode; };
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (is_combinational(defs[i].second.type)) todo.push_back(i);
  }
  while (!todo.empty()) {
    bool progress = false;
    std::vector<std::size_t> next;
    for (std::size_t i : todo) {
      const auto& [name, d] = defs[i];
      if (std::all_of(d.fanins.begin(), d.fanins.end(), resolved)) {
        std::vector<NodeId> fins;
        for (const std::string& f : d.fanins) fins.push_back(nl.find(f));
        try {
          nl.add_gate(d.type, std::move(fins), name);
        } catch (const std::invalid_argument& e) {
          fail(d.line, e.what());
        }
        progress = true;
      } else {
        next.push_back(i);
      }
    }
    if (!progress) {
      const auto& [name, d] = defs[next.front()];
      for (const std::string& f : d.fanins) {
        if (!resolved(f)) {
          fail(d.line, "undefined signal '" + f + "' feeding " + name +
                           " (or combinational cycle)");
        }
      }
      fail(d.line, "combinational cycle through " + name);
    }
    todo = std::move(next);
  }

  // Pass 3: connect DFF D-pins, mark outputs.
  for (const auto& [name, d] : defs) {
    if (d.type != GateType::Dff) continue;
    if (d.fanins.size() != 1) fail(d.line, "DFF takes exactly one fanin");
    const NodeId dn = nl.find(d.fanins[0]);
    if (dn == kNullNode) fail(d.line, "undefined signal '" + d.fanins[0] + "'");
    nl.set_fanin(nl.find(name), 0, dn);
  }
  for (const auto& [n, out_line] : output_names) {
    const NodeId id = nl.find(n);
    if (id == kNullNode) {
      fail(out_line, "OUTPUT(" + n + ") references undefined signal");
    }
    nl.mark_output(id);
  }

  if (std::string err = nl.validate(); !err.empty()) {
    throw std::runtime_error("bench parse produced invalid netlist: " + err);
  }
  return nl;
}

Netlist read_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream in(text);
  return read_bench(in, std::move(circuit_name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name.erase(0, slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name.erase(dot);
  }
  return read_bench(in, std::move(name));
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << "\n";
  for (NodeId id : nl.inputs()) out << "INPUT(" << nl.node_name(id) << ")\n";
  for (NodeId id : nl.outputs()) out << "OUTPUT(" << nl.node_name(id) << ")\n";
  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    if (t == GateType::Input) continue;
    out << nl.node_name(id) << " = " << gate_type_name(t) << "(";
    bool first = true;
    for (NodeId f : nl.fanins(id)) {
      if (!first) out << ", ";
      first = false;
      out << nl.node_name(f);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  return out.str();
}

}  // namespace fsct
