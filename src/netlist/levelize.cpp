#include "netlist/levelize.h"

#include <algorithm>
#include <stdexcept>

namespace fsct {

Levelizer::Levelizer(const Netlist& nl) : nl_(nl) {
  const std::size_t n = nl.size();
  fanouts_.assign(n, {});
  levels_.assign(n, 0);

  std::vector<int> pending(n, 0);  // unprocessed combinational fanins
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId f : nl.fanins(id)) {
      if (f == kNullNode) {
        throw std::runtime_error("levelize: unconnected pin at " +
                                 nl.node_name(id));
      }
      fanouts_[f].push_back(id);
      if (is_combinational(nl.type(id)) && is_combinational(nl.type(f))) {
        ++pending[id];
      }
    }
  }

  // Kahn's algorithm over combinational gates only.
  topo_.reserve(n);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (is_combinational(nl.type(id)) && pending[id] == 0) {
      ready.push_back(id);
    }
  }
  std::size_t head = 0;
  while (head < ready.size()) {
    const NodeId id = ready[head++];
    topo_.push_back(id);
    int lvl = 0;
    for (NodeId f : nl.fanins(id)) {
      lvl = std::max(lvl, levels_[f] + 1);
    }
    levels_[id] = lvl;
    max_level_ = std::max(max_level_, lvl);
    for (NodeId s : fanouts_[id]) {
      if (is_combinational(nl.type(s)) && --pending[s] == 0) {
        ready.push_back(s);
      }
    }
  }
  std::size_t comb = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (is_combinational(nl.type(id))) ++comb;
  }
  if (topo_.size() != comb) {
    throw std::runtime_error("levelize: combinational cycle in " + nl.name());
  }
}

std::vector<NodeId> Levelizer::forward_cone(NodeId from) const {
  std::vector<char> seen(nl_.size(), 0);
  std::vector<NodeId> cone;
  std::vector<NodeId> stack{from};
  seen[from] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    cone.push_back(id);
    if (nl_.type(id) == GateType::Dff && id != from) {
      continue;  // stop at DFF D-pin; Q side is a new time frame
    }
    for (NodeId s : fanouts_[id]) {
      if (!seen[s]) {
        seen[s] = 1;
        stack.push_back(s);
      }
    }
  }
  return cone;
}

std::vector<NodeId> Levelizer::backward_cone(NodeId to) const {
  std::vector<char> seen(nl_.size(), 0);
  std::vector<NodeId> cone;
  std::vector<NodeId> stack{to};
  seen[to] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    cone.push_back(id);
    if (!is_combinational(nl_.type(id)) && id != to) {
      continue;  // PI / const / DFF-Q boundary
    }
    if (nl_.type(id) == GateType::Dff && id == to) {
      // starting at a DFF means "cone of its D input"
    }
    for (NodeId f : nl_.fanins(id)) {
      if (!seen[f]) {
        seen[f] = 1;
        stack.push_back(f);
      }
    }
  }
  return cone;
}

}  // namespace fsct
