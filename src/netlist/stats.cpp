#include "netlist/stats.h"

#include <ostream>
#include <sstream>

#include "netlist/levelize.h"

namespace fsct {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.nodes = nl.size();
  s.pis = nl.inputs().size();
  s.pos = nl.outputs().size();
  s.ffs = nl.dffs().size();

  std::size_t fanin_sum = 0;
  std::vector<std::size_t> fanout(nl.size(), 0);
  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    ++s.by_type[static_cast<std::size_t>(t)];
    if (t == GateType::Const0 || t == GateType::Const1) ++s.constants;
    if (is_combinational(t)) {
      ++s.gates;
      fanin_sum += nl.fanins(id).size();
      if (t == GateType::Not || t == GateType::Nand || t == GateType::Nor ||
          t == GateType::Xnor) {
        ++s.inverting_gates;
      }
    }
    for (NodeId f : nl.fanins(id)) {
      if (f != kNullNode) ++fanout[f];
    }
  }
  s.avg_fanin = s.gates ? static_cast<double>(fanin_sum) /
                              static_cast<double>(s.gates)
                        : 0.0;

  std::size_t fanout_sum = 0, drivers = 0;
  for (NodeId id = 0; id < nl.size(); ++id) {
    if (fanout[id] > 0) {
      ++drivers;
      fanout_sum += fanout[id];
      s.max_fanout = std::max(s.max_fanout, fanout[id]);
    }
  }
  s.avg_fanout = drivers ? static_cast<double>(fanout_sum) /
                               static_cast<double>(drivers)
                         : 0.0;

  if (nl.validate().empty()) {
    const Levelizer lv(nl);
    s.max_depth = lv.max_level();
  }
  return s;
}

void print_stats(std::ostream& os, const NetlistStats& s) {
  os << "nodes " << s.nodes << " (gates " << s.gates << ", PIs " << s.pis
     << ", POs " << s.pos << ", FFs " << s.ffs << ", consts " << s.constants
     << ")\n";
  os << "depth " << s.max_depth << ", avg fanin "
     << static_cast<int>(s.avg_fanin * 100) / 100.0 << ", avg fanout "
     << static_cast<int>(s.avg_fanout * 100) / 100.0 << ", max fanout "
     << s.max_fanout << "\n";
  os << "mix:";
  static constexpr GateType kTypes[] = {
      GateType::And, GateType::Nand, GateType::Or,  GateType::Nor,
      GateType::Not, GateType::Buf,  GateType::Xor, GateType::Xnor,
      GateType::Mux,
  };
  for (GateType t : kTypes) {
    if (s.count(t) > 0) {
      os << ' ' << gate_type_name(t) << '=' << s.count(t);
    }
  }
  os << "\n";
}

std::string stats_string(const NetlistStats& s) {
  std::ostringstream os;
  print_stats(os, s);
  return os.str();
}

}  // namespace fsct
