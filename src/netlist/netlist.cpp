#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace fsct {

std::string_view gate_type_name(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux: return "MUX";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

namespace {

// Minimum/maximum legal fanin count per gate type.
void arity_range(GateType t, std::size_t& lo, std::size_t& hi) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      lo = hi = 0;
      break;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff:
      lo = hi = 1;
      break;
    case GateType::Mux:
      lo = hi = 3;
      break;
    default:
      lo = 1;
      hi = static_cast<std::size_t>(-1);
      break;
  }
}

bool arity_ok(GateType t, std::size_t n) {
  std::size_t lo = 0, hi = 0;
  arity_range(t, lo, hi);
  return n >= lo && n <= hi;
}

}  // namespace

NodeId Netlist::add_node(Node n) {
  if (n.name.empty()) {
    throw std::invalid_argument("node name must not be empty");
  }
  if (by_name_.contains(n.name)) {
    throw std::invalid_argument("duplicate node name: " + n.name);
  }
  if (!arity_ok(n.type, n.fanins.size())) {
    throw std::invalid_argument("bad fanin count for " +
                                std::string(gate_type_name(n.type)) + " " +
                                n.name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId f : n.fanins) {
    if (f != kNullNode && f >= id) {
      // Forward references are only legal via add_dff_floating + set_fanin.
      throw std::invalid_argument("fanin id out of range in " + n.name);
    }
  }
  by_name_.emplace(n.name, id);
  nodes_.push_back(std::move(n));
  return id;
}

NodeId Netlist::add_input(std::string name) {
  const NodeId id = add_node({GateType::Input, {}, std::move(name)});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(bool value, std::string name) {
  return add_node(
      {value ? GateType::Const1 : GateType::Const0, {}, std::move(name)});
}

NodeId Netlist::add_gate(GateType type, std::vector<NodeId> fanins,
                         std::string name) {
  if (!is_combinational(type)) {
    throw std::invalid_argument("add_gate requires a combinational type");
  }
  return add_node({type, std::move(fanins), std::move(name)});
}

NodeId Netlist::add_dff(NodeId d, std::string name) {
  const NodeId id = add_node({GateType::Dff, {d}, std::move(name)});
  dffs_.push_back(id);
  return id;
}

NodeId Netlist::add_dff_floating(std::string name) {
  const NodeId id = add_node({GateType::Dff, {kNullNode}, std::move(name)});
  dffs_.push_back(id);
  return id;
}

void Netlist::mark_output(NodeId id) {
  if (std::find(outputs_.begin(), outputs_.end(), id) == outputs_.end()) {
    outputs_.push_back(id);
  }
}

void Netlist::unmark_output(NodeId id) {
  outputs_.erase(std::remove(outputs_.begin(), outputs_.end(), id),
                 outputs_.end());
}

bool Netlist::is_output(NodeId id) const {
  return std::find(outputs_.begin(), outputs_.end(), id) != outputs_.end();
}

int Netlist::replace_fanin(NodeId node, NodeId old_in, NodeId new_in) {
  int n = 0;
  for (NodeId& f : nodes_[node].fanins) {
    if (f == old_in) {
      f = new_in;
      ++n;
    }
  }
  return n;
}

void Netlist::set_fanin(NodeId node, std::size_t pin, NodeId new_in) {
  nodes_[node].fanins.at(pin) = new_in;
}

NodeId Netlist::insert_on_edge(NodeId driver, NodeId sink, std::size_t pin,
                               GateType type, std::vector<NodeId> extra_fanins,
                               std::string name) {
  if (nodes_[sink].fanins.at(pin) != driver) {
    throw std::invalid_argument("insert_on_edge: pin is not driven by driver");
  }
  std::vector<NodeId> fanins;
  fanins.push_back(driver);
  fanins.insert(fanins.end(), extra_fanins.begin(), extra_fanins.end());
  const NodeId g = add_gate(type, std::move(fanins), std::move(name));
  nodes_[sink].fanins[pin] = g;
  return g;
}

NodeId Netlist::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNullNode : it->second;
}

std::size_t Netlist::num_gates() const {
  std::size_t n = 0;
  for (const Node& nd : nodes_) {
    if (is_combinational(nd.type)) ++n;
  }
  return n;
}

std::string Netlist::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (!arity_ok(nd.type, nd.fanins.size())) {
      return "bad arity at node " + nd.name;
    }
    for (NodeId f : nd.fanins) {
      if (f == kNullNode) return "unconnected fanin at node " + nd.name;
      if (f >= nodes_.size()) return "fanin out of range at node " + nd.name;
    }
  }
  // Combinational cycle check: iterative DFS over combinational edges only
  // (DFF outputs break cycles).
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> color(nodes_.size(), White);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (NodeId root = 0; root < nodes_.size(); ++root) {
    if (color[root] != White || !is_combinational(nodes_[root].type)) continue;
    color[root] = Grey;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [id, pin] = stack.back();
      if (pin == nodes_[id].fanins.size()) {
        color[id] = Black;
        stack.pop_back();
        continue;
      }
      const NodeId f = nodes_[id].fanins[pin++];
      if (!is_combinational(nodes_[f].type)) continue;  // PI/const/DFF-Q
      if (color[f] == Grey) {
        return "combinational cycle through node " + nodes_[f].name;
      }
      if (color[f] == White) {
        color[f] = Grey;
        stack.emplace_back(f, 0);
      }
    }
  }
  return {};
}

}  // namespace fsct
