// ISCAS'89 ".bench" reader / writer.
//
// Grammar accepted (case-insensitive keywords, '#' comments):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(a, b, ...)     GATE in {AND OR NAND NOR XOR XNOR NOT BUF BUFF
//                                        DFF MUX CONST0 CONST1}
// OUTPUT may reference a signal defined later; definitions may reference
// signals defined later (two-pass resolution).  MUX fanin order is
// (sel, d0, d1).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace fsct {

/// Parses a .bench description.  Throws std::runtime_error with a
/// line-numbered message on malformed input.
Netlist read_bench(std::istream& in, std::string circuit_name);

/// Convenience overload for in-memory text (used by embedded circuits).
Netlist read_bench_string(const std::string& text, std::string circuit_name);

/// Parses a .bench file from disk.
Netlist read_bench_file(const std::string& path);

/// Writes `nl` as .bench text.  Round-trips with read_bench (node order may
/// differ; names and connectivity are preserved).
void write_bench(std::ostream& out, const Netlist& nl);

/// Returns the .bench text of `nl` as a string.
std::string write_bench_string(const Netlist& nl);

}  // namespace fsct
