// Ablation: the paper notes that "different orderings will lead to faults
// affecting the scan chain in different locations, and thus potentially
// increasing or decreasing the fault coverage", and leaves the ordering
// flexibility to the designer.  We measure it: the same circuit scanned with
// different chain counts (which permutes run placement) and report how the
// classification and final coverage move.
#include <cstdio>

#include "bench/common.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace fsct;
  auto circuits = benchtool::select_circuits(argc, argv);
  if (argc <= 1) circuits = {suite_entry("s5378")};
  for (const SuiteEntry& e : circuits) {
    std::printf("Ablation: chain configuration on %s\n", e.name.c_str());
    std::printf("%-8s %-8s | %-8s %-8s | %-8s %-8s %-8s\n", "chains",
                "maxlen", "easy", "hard", "s2det", "s3det", "undet");
    for (int chains : {1, 2, 4, 8}) {
      if (chains > e.ffs) break;
      Netlist nl = build_suite_circuit(e);
      TpiOptions topt;
      topt.num_chains = chains;
      const ScanDesign d = run_tpi(nl, topt);
      const Levelizer lv(nl);
      const ScanModeModel model(lv, d);
      const auto faults = collapsed_fault_list(nl);
      const PipelineResult r = run_fsct_pipeline(model, faults);
      std::printf("%-8d %-8zu | %-8zu %-8zu | %-8zu %-8zu %-8zu\n", chains,
                  model.max_chain_length(), r.easy, r.hard, r.s2_detected,
                  r.s3_detected, r.s3_undetected);
    }
  }
  return 0;
}
