// Microbenchmarks for the ATPG stack: PODEM on the combinational scan-mode
// model, classification throughput, and reduced-model construction — the
// pieces whose cost shapes Tables 2 and 3.
#include <benchmark/benchmark.h>

#include "atpg/podem.h"
#include "atpg/unroll.h"
#include "bench_circuits/generator.h"
#include "core/classify.h"
#include "core/reduced_atpg.h"
#include "netlist/levelize.h"
#include "scan/tpi.h"

namespace {

using namespace fsct;

struct World {
  Netlist nl;
  ScanDesign design;
  std::unique_ptr<Levelizer> lv;
  std::unique_ptr<ScanModeModel> model;
  std::vector<Fault> faults;
};

World& world() {
  static World w = [] {
    World x;
    RandomCircuitSpec spec;
    spec.num_gates = 1500;
    spec.num_ffs = 80;
    spec.num_pis = 16;
    spec.num_pos = 12;
    spec.seed = 55;
    x.nl = make_random_sequential(spec);
    x.design = run_tpi(x.nl);
    x.lv = std::make_unique<Levelizer>(x.nl);
    x.model = std::make_unique<ScanModeModel>(*x.lv, x.design);
    x.faults = collapsed_fault_list(x.nl);
    return x;
  }();
  return w;
}

void BM_Classify(benchmark::State& state) {
  World& w = world();
  ChainFaultClassifier cls(*w.model);
  std::size_t i = 0;
  for (auto _ : state) {
    auto info = cls.classify(w.faults[i++ % w.faults.size()]);
    benchmark::DoNotOptimize(&info);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Classify);

void BM_CombPodem(benchmark::State& state) {
  World& w = world();
  UnrollSpec spec;
  spec.base = &w.nl;
  spec.frames = 1;
  spec.fixed_pis = w.design.pi_constraints;
  spec.controllable_state.assign(w.nl.dffs().size(), 1);
  spec.observable_ff.assign(w.nl.dffs().size(), 1);
  static const UnrolledModel um = unroll(spec);
  static const Levelizer ulv(um.nl);
  Podem podem(ulv, um.controllable, um.observe, AtpgOptions{200});
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = podem.generate(um.map_fault(w.faults[i++ % w.faults.size()]));
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CombPodem);

void BM_ReducedModelBuild(benchmark::State& state) {
  World& w = world();
  ChainFaultClassifier cls(*w.model);
  // Find one hard fault to build models for.
  Fault target = w.faults.front();
  ChainFaultInfo info;
  for (const Fault& f : w.faults) {
    info = cls.classify(f);
    if (info.category == ChainFaultCategory::Hard) {
      target = f;
      break;
    }
  }
  ReducedCircuitBuilder builder(*w.model);
  AtpgGroup g;
  g.kind = 1;
  g.fault_indices = {0};
  g.window = make_fault_window(0, info).chains;
  if (g.window.empty()) g.window = {{0, 0, 0}};
  for (auto _ : state) {
    auto rm = builder.build(g, std::span(&target, 1));
    benchmark::DoNotOptimize(&rm);
  }
}
BENCHMARK(BM_ReducedModelBuild);

void BM_TpiWholeCircuit(benchmark::State& state) {
  for (auto _ : state) {
    RandomCircuitSpec spec;
    spec.num_gates = 1500;
    spec.num_ffs = 80;
    spec.num_pis = 16;
    spec.seed = 55;
    Netlist nl = make_random_sequential(spec);
    auto d = run_tpi(nl);
    benchmark::DoNotOptimize(&d);
  }
}
BENCHMARK(BM_TpiWholeCircuit);

}  // namespace
