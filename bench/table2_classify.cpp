// Regenerates Table 2: per circuit, the number of chain-affecting faults
// detectable by the alternating sequence (#easy, category 1) and the number
// that may escape it (#hard, category 2), with the classification CPU time.
//
// Paper totals for comparison: 22% of all faults are easy, 3% hard — i.e.
// about a quarter of all faults touch the functional scan chain at all.
#include <chrono>
#include <iostream>

#include "bench/common.h"
#include "core/classify.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace fsct;
  std::cout << "Table 2: finding easy and hard faults\n";
  print_table2_header(std::cout);
  Table2Row total{"total", 0, 0, 0, 0};
  for (const SuiteEntry& e : benchtool::select_circuits(argc, argv)) {
    const benchtool::Prepared p = benchtool::prepare(e);
    const auto t0 = std::chrono::steady_clock::now();
    ChainFaultClassifier cls(*p.model);
    Table2Row r{e.name, p.faults.size(), 0, 0, 0};
    for (const Fault& f : p.faults) {
      switch (cls.classify(f).category) {
        case ChainFaultCategory::Easy: ++r.easy; break;
        case ChainFaultCategory::Hard: ++r.hard; break;
        default: break;
      }
    }
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    print_table2_row(std::cout, r);
    total.total_faults += r.total_faults;
    total.easy += r.easy;
    total.hard += r.hard;
    total.seconds += r.seconds;
  }
  print_table2_total(std::cout, total);
  std::cout << "paper shape: easy ~22% of all faults, hard ~3%, "
               "affecting ~25%\n";
  return 0;
}
