// Regenerates Table 2: per circuit, the number of chain-affecting faults
// detectable by the alternating sequence (#easy, category 1) and the number
// that may escape it (#hard, category 2), with the classification CPU time.
//
// Paper totals for comparison: 22% of all faults are easy, 3% hard — i.e.
// about a quarter of all faults touch the functional scan chain at all.
#include <chrono>
#include <iostream>

#include "bench/common.h"
#include "core/classify.h"
#include "core/obs.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace fsct;
  benchtool::JsonReport json(benchtool::select_json_path(argc, argv));
  ThreadPool pool(benchtool::select_jobs(argc, argv));
  benchtool::warn_if_oversubscribed(pool.jobs());
  std::cout << "Table 2: finding easy and hard faults (jobs=" << pool.jobs()
            << ")\n";
  print_table2_header(std::cout);
  Table2Row total{"total", 0, 0, 0, 0};
  for (const SuiteEntry& e : benchtool::select_circuits(argc, argv)) {
    const benchtool::Prepared p = benchtool::prepare(e);
    ObsRegistry reg;
    const auto t0 = std::chrono::steady_clock::now();
    const auto infos = ChainFaultClassifier::classify_all_parallel(
        *p.model, p.faults, pool, &reg);
    Table2Row r{e.name, p.faults.size(), 0, 0, 0};
    for (const ChainFaultInfo& info : infos) {
      switch (info.category) {
        case ChainFaultCategory::Easy: ++r.easy; break;
        case ChainFaultCategory::Hard: ++r.hard; break;
        default: break;
      }
    }
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    print_table2_row(std::cout, r);
    benchtool::JsonObject jrow;
    jrow.set("circuit", e.name);
    benchtool::add_jobs_fields(jrow, pool.jobs());
    json.add(jrow.set("faults", r.total_faults)
                 .set("easy", r.easy)
                 .set("hard", r.hard)
                 .raw("phase_seconds",
                      benchtool::JsonObject()
                          .set("classify", r.seconds)
                          .render())
                 .raw("counters", reg.counters_json()));
    total.total_faults += r.total_faults;
    total.easy += r.easy;
    total.hard += r.hard;
    total.seconds += r.seconds;
  }
  print_table2_total(std::cout, total);
  std::cout << "paper shape: easy ~22% of all faults, hard ~3%, "
               "affecting ~25%\n";
  return json.write() ? 0 : 1;
}
