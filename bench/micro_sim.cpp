// Microbenchmarks for the simulation engines: scalar vs 64-way packed logic
// simulation, and serial vs parallel-fault sequential fault simulation (the
// ablation behind using parallel-fault simulation in step 2).
#include <benchmark/benchmark.h>

#include <random>

#include "bench_circuits/generator.h"
#include "fault/seq_fault_sim.h"
#include "netlist/levelize.h"
#include "sim/seq_sim.h"

namespace {

using namespace fsct;

Netlist& circuit() {
  static Netlist nl = [] {
    RandomCircuitSpec spec;
    spec.num_gates = 2000;
    spec.num_ffs = 100;
    spec.num_pis = 20;
    spec.num_pos = 20;
    spec.seed = 99;
    return make_random_sequential(spec);
  }();
  return nl;
}

void BM_ScalarCombSim(benchmark::State& state) {
  const Netlist& nl = circuit();
  const Levelizer lv(nl);
  CombSim sim(lv);
  std::vector<Val> v(nl.size(), Val::X);
  std::mt19937_64 rng(1);
  for (NodeId s : nl.inputs()) v[s] = (rng() & 1) ? Val::One : Val::Zero;
  for (NodeId s : nl.dffs()) v[s] = (rng() & 1) ? Val::One : Val::Zero;
  for (auto _ : state) {
    sim.run(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_ScalarCombSim);

void BM_PackedCombSim64Patterns(benchmark::State& state) {
  const Netlist& nl = circuit();
  const Levelizer lv(nl);
  PackedCombSim sim(lv);
  std::vector<PackedVal> v(nl.size());
  std::mt19937_64 rng(2);
  for (NodeId s : nl.inputs()) v[s] = {rng(), 0};
  for (NodeId s : nl.dffs()) v[s] = {rng(), 0};
  for (NodeId s : nl.inputs()) v[s].one = ~v[s].zero;
  for (NodeId s : nl.dffs()) v[s].one = ~v[s].zero;
  for (auto _ : state) {
    sim.run(v);
    benchmark::DoNotOptimize(v.data());
  }
  // 64 patterns per run.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_PackedCombSim64Patterns);

void BM_SerialSeqFaultSim(benchmark::State& state) {
  const Netlist& nl = circuit();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, nl.outputs());
  const auto all = collapsed_fault_list(nl);
  const std::vector<Fault> faults(all.begin(),
                                  all.begin() + std::min<std::size_t>(
                                                    all.size(), 32));
  TestSequence seq;
  std::mt19937_64 rng(3);
  for (int t = 0; t < 10; ++t) {
    std::vector<Val> v(nl.inputs().size());
    for (auto& x : v) x = (rng() & 1) ? Val::One : Val::Zero;
    seq.push_back(std::move(v));
  }
  for (auto _ : state) {
    auto r = sim.run_serial(seq, faults);
    benchmark::DoNotOptimize(r.detect_cycle.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(faults.size()));
}
BENCHMARK(BM_SerialSeqFaultSim);

void BM_ParallelSeqFaultSim(benchmark::State& state) {
  const Netlist& nl = circuit();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, nl.outputs());
  const auto all = collapsed_fault_list(nl);
  const std::vector<Fault> faults(all.begin(),
                                  all.begin() + std::min<std::size_t>(
                                                    all.size(), 32));
  TestSequence seq;
  std::mt19937_64 rng(3);
  for (int t = 0; t < 10; ++t) {
    std::vector<Val> v(nl.inputs().size());
    for (auto& x : v) x = (rng() & 1) ? Val::One : Val::Zero;
    seq.push_back(std::move(v));
  }
  for (auto _ : state) {
    auto r = sim.run(seq, faults);
    benchmark::DoNotOptimize(r.detect_cycle.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(faults.size()));
}
BENCHMARK(BM_ParallelSeqFaultSim);

}  // namespace
