// Ablation: test-set size versus coverage — the paper's Figure-5 punchline
// that the step-2 set can be truncated cheaply, plus lossless reverse-order
// compaction on top.
//
// Default circuit: s9234 (pass suite names to change).
#include <cstdio>

#include "bench/common.h"
#include "core/compaction.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace fsct;
  auto circuits = benchtool::select_circuits(argc, argv);
  if (argc <= 1) circuits = {suite_entry("s9234")};
  for (const SuiteEntry& e : circuits) {
    const benchtool::Prepared p = benchtool::prepare(e);
    const PipelineResult r = run_fsct_pipeline(*p.model, p.faults);
    std::vector<Fault> hard;
    for (std::size_t i = 0; i < p.faults.size(); ++i) {
      if (r.info[i].category == ChainFaultCategory::Hard) {
        hard.push_back(p.faults[i]);
      }
    }
    std::printf("Compaction ablation on %s: %zu vectors cover %zu faults\n",
                e.name.c_str(), r.vectors.size(), r.s2_detected);
    const auto det = per_vector_detections(*p.model, r.vectors, hard);
    const auto curve = truncation_curve(det, hard.size());
    std::printf("%-12s %-12s %-10s\n", "kept", "detected", "coverage");
    for (int pct : {10, 25, 50, 75, 100}) {
      const std::size_t k =
          std::max<std::size_t>(1, curve.size() * static_cast<std::size_t>(pct) / 100);
      if (k <= curve.size() && !curve.empty()) {
        std::printf("%-3d%% (%4zu) %-12zu %.1f%%\n", pct, k, curve[k - 1],
                    curve.back() ? 100.0 * static_cast<double>(curve[k - 1]) /
                                       static_cast<double>(curve.back())
                                 : 0.0);
      }
    }
    const CompactionResult c = compact_vectors(*p.model, r.vectors, hard);
    std::printf("lossless compaction: %zu -> %zu vectors (%.1f%%), coverage "
                "kept at %zu faults\n\n",
                r.vectors.size(), c.kept.size(),
                r.vectors.empty() ? 0.0
                                  : 100.0 * static_cast<double>(c.kept.size()) /
                                        static_cast<double>(r.vectors.size()),
                c.covered_kept);
  }
  return 0;
}
