// Ablation: the LARGE_DIST / MED_DIST / DIST grouping parameters trade the
// number of sequential-ATPG circuit models against per-model ctrl/obs.  The
// paper fixes them at max(0.6/0.25/0.15 * maxsize, 50/25/20); here we sweep a
// scale factor and report #circuit models vs undetected faults.
//
// Default circuit: s13207 (mid-size, several chains).
#include <cstdio>

#include "bench/common.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace fsct;
  auto circuits = benchtool::select_circuits(argc, argv);
  if (argc <= 1) circuits = {suite_entry("s13207")};
  for (const SuiteEntry& e : circuits) {
    const benchtool::Prepared p = benchtool::prepare(e);
    const std::size_t maxsize = p.model->max_chain_length();
    std::printf("Ablation: distance parameters on %s (maxsize=%zu)\n",
                e.name.c_str(), maxsize);
    std::printf("%-8s %-6s %-5s %-5s | %-8s %-8s | %-6s %-6s | %-8s\n",
                "scale", "LARGE", "MED", "DIST", "circG", "circF", "det",
                "undet", "CPU(s)");
    const double scales[] = {0.25, 0.5, 1.0, 2.0, 4.0};
    for (double s : scales) {
      PipelineOptions opt;
      opt.auto_dist = false;
      opt.dist.large_dist =
          std::max(1, static_cast<int>(0.6 * s * static_cast<double>(maxsize)));
      opt.dist.med_dist =
          std::max(1, static_cast<int>(0.25 * s * static_cast<double>(maxsize)));
      opt.dist.dist =
          std::max(1, static_cast<int>(0.15 * s * static_cast<double>(maxsize)));
      const PipelineResult r = run_fsct_pipeline(*p.model, p.faults, opt);
      std::printf("%-8.2f %-6d %-5d %-5d | %-8zu %-8zu | %-6zu %-6zu | %-8.2f\n",
                  s, opt.dist.large_dist, opt.dist.med_dist, opt.dist.dist,
                  r.s3_circuits_group, r.s3_circuits_final, r.s3_detected,
                  r.s3_undetected, r.s3_seconds);
    }
  }
  return 0;
}
