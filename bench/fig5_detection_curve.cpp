// Regenerates Figure 5: number of sequentially simulated step-2 test vectors
// versus cumulative detected faults.  The paper plots s38584 and observes
// that the large majority of detected faults fall to the first few vectors,
// so the test set can be truncated cheaply.
//
// Default circuit: s38584 (pass another suite name to change it).
#include <cstdio>

#include "bench/common.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace fsct;
  benchtool::JsonReport json(benchtool::select_json_path(argc, argv));
  PipelineOptions opt;
  opt.jobs = benchtool::select_jobs(argc, argv);
  benchtool::warn_if_oversubscribed(resolve_jobs(opt.jobs));
  auto circuits = benchtool::select_circuits(argc, argv);
  // Default to the paper's circuit when none was named.
  bool named = false;
  for (int i = 1; i < argc; ++i) {
    if (benchtool::option_with_value(argv[i])) {
      ++i;
    } else if (argv[i][0] != '-') {
      named = true;
    }
  }
  if (!named) circuits = {suite_entry("s38584")};
  for (const SuiteEntry& e : circuits) {
    const benchtool::Prepared p = benchtool::prepare(e);
    const PipelineResult r = run_fsct_pipeline(*p.model, p.faults, opt);
    {
      std::string curve = "[";
      for (std::size_t i = 0; i < r.detection_curve.size(); ++i) {
        if (i) curve += ",";
        curve += std::to_string(r.detection_curve[i]);
      }
      curve += "]";
      benchtool::JsonObject jrow;
      jrow.set("circuit", e.name);
      benchtool::add_jobs_fields(jrow, r.jobs_used);
      json.add(jrow.set("faults", r.total_faults)
                   .set("detected", r.s2_detected + r.s3_detected)
                   .raw("phase_seconds", benchtool::JsonObject()
                                             .set("classify", r.classify_seconds)
                                             .set("s2", r.s2_seconds)
                                             .set("s3", r.s3_seconds)
                                             .render())
                   .raw("detection_curve", curve));
    }
    std::printf("Figure 5: %s — detected faults vs simulated vectors\n",
                e.name.c_str());
    std::printf("%-10s %-10s\n", "#vectors", "#detected");
    // Print a decimated curve plus the exact head (the interesting region).
    const auto& curve = r.detection_curve;
    const std::size_t step = curve.size() > 40 ? curve.size() / 40 : 1;
    for (std::size_t i = 0; i < curve.size(); ++i) {
      if (i < 10 || i % step == 0 || i + 1 == curve.size()) {
        std::printf("%-10zu %-10zu\n", i + 1, curve[i]);
      }
    }
    if (!curve.empty()) {
      const std::size_t half = curve.size() / 2;
      std::printf(
          "shape: first half of the vectors detect %.1f%% of all step-2 "
          "detections (paper: strongly front-loaded)\n",
          100.0 * static_cast<double>(curve[half]) /
              static_cast<double>(curve.back() ? curve.back() : 1));
    }
  }
  return json.write() ? 0 : 1;
}
