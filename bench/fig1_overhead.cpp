// Regenerates the Figure 1 claim: TPI functional scan needs far fewer scan
// muxes (and no dedicated chain wiring) than conventional full MUX scan.
//
// Area is compared in gate equivalents (GE): a 2:1 scan mux costs ~3.5 GE,
// a test point (one AND/OR gate) ~1.5 GE; dedicated scan wiring — the other
// half of the paper's motivation — is counted as chain links that need no
// new route because they ride existing functional paths.
#include <cstdio>

#include "bench/common.h"
#include "scan/mux_scan.h"

namespace {
constexpr double kMuxGe = 3.5;
constexpr double kTpGe = 1.5;
}  // namespace

int main(int argc, char** argv) {
  using namespace fsct;
  benchtool::JsonReport json(benchtool::select_json_path(argc, argv));
  std::printf("Figure 1: scan overhead, conventional MUX scan vs TPI\n");
  std::printf("%-10s %-8s %-6s | %-9s | %-9s %-9s %-5s %-9s | %-9s %-9s\n",
              "name", "gates", "FFs", "mux-scan", "func", "muxes", "TPs",
              "pinnedPI", "GE saved", "no-route");
  double total_saved = 0;
  long total_ffs = 0, total_func = 0;
  for (const SuiteEntry& e : benchtool::select_circuits(argc, argv)) {
    Netlist mux_nl = build_suite_circuit(e);
    MuxScanOptions mopt;
    mopt.num_chains = e.chains;
    const ScanDesign md = insert_mux_scan(mux_nl, mopt);

    Netlist tpi_nl = build_suite_circuit(e);
    TpiOptions topt;
    topt.num_chains = e.chains;
    TpiStats stats;
    run_tpi(tpi_nl, topt, &stats);

    const double full_ge = kMuxGe * md.scan_muxes;
    const double tpi_ge =
        kMuxGe * stats.mux_segments + kTpGe * stats.test_points;
    const double saved = full_ge - tpi_ge;
    std::printf(
        "%-10s %-8d %-6d | %-9.0f | %-9d %-9d %-5d %-9d | %-9.0f %-9d\n",
        e.name.c_str(), e.gates, e.ffs, full_ge, stats.functional_segments,
        stats.mux_segments, stats.test_points, stats.assigned_pis, saved,
        stats.functional_segments);
    json.add(benchtool::JsonObject()
                 .set("circuit", e.name)
                 .set("gates", static_cast<std::size_t>(e.gates))
                 .set("ffs", static_cast<std::size_t>(e.ffs))
                 .set("mux_scan_ge", full_ge)
                 .set("tpi_ge", tpi_ge)
                 .set("ge_saved", saved)
                 .set("functional_segments",
                      static_cast<std::size_t>(stats.functional_segments))
                 .set("test_points",
                      static_cast<std::size_t>(stats.test_points)));
    total_saved += saved;
    total_ffs += e.ffs;
    total_func += stats.functional_segments;
  }
  std::printf(
      "total: %.0f GE of scan-mux area saved across %ld scanned FFs, and\n"
      "%ld chain links need no dedicated scan route at all (they ride\n"
      "sensitised functional paths) — the paper's Figure-1 motivation.\n",
      total_saved, total_ffs, total_func);
  return json.write() ? 0 : 1;
}
