// Shared plumbing for the table/figure reproduction binaries: builds each
// suite circuit, applies TPI with the paper's chain counts, and offers a
// simple circuit filter plus the cross-bench options:
//   <bench> [circuit ...]        run only the named circuits
//   <bench> --max-gates N        skip circuits above N gates
//   <bench> --jobs N             executors for the fault-parallel phases
//                                (0 = one per hardware thread, 1 = serial)
//   <bench> --json <path>        also write one machine-readable JSON record
//                                per circuit (BENCH_*.json trajectories)
//   <bench> --progress           periodic heartbeat lines on stderr; a
//                                SIGUSR1 prints a full live status dump
// With no arguments every suite circuit runs (paper configuration).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_circuits/suite.h"
#include "fault/fault.h"
#include "netlist/levelize.h"
#include "scan/scan_mode_model.h"
#include "scan/tpi.h"

namespace fsct::benchtool {

/// True when argv[i] is an option that consumes the next argument.
inline bool option_with_value(const char* s) {
  return std::strcmp(s, "--max-gates") == 0 || std::strcmp(s, "--jobs") == 0 ||
         std::strcmp(s, "--json") == 0;
}

inline std::vector<SuiteEntry> select_circuits(int argc, char** argv) {
  std::vector<std::string> names;
  int max_gates = 1 << 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-gates") == 0 && i + 1 < argc) {
      max_gates = std::atoi(argv[++i]);
    } else if (option_with_value(argv[i]) && i + 1 < argc) {
      ++i;  // not ours; skip its value so it is not taken for a circuit name
    } else if (argv[i][0] != '-') {
      names.emplace_back(argv[i]);
    }
  }
  std::vector<SuiteEntry> out;
  for (const SuiteEntry& e : paper_suite()) {
    if (!names.empty()) {
      bool want = false;
      for (const std::string& n : names) want |= (n == e.name);
      if (!want) continue;
    }
    if (e.gates > max_gates) continue;
    out.push_back(e);
  }
  return out;
}

/// --jobs value (default 0 = one executor per hardware thread).
inline int select_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) return std::atoi(argv[i + 1]);
  }
  return 0;
}

/// --json value, or empty when no JSON output was requested.
inline std::string select_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return {};
}

/// Host hardware threads (0 when the runtime cannot tell).
inline unsigned hardware_threads() { return std::thread::hardware_concurrency(); }

/// True when `jobs_used` oversubscribes the host: more executors than
/// hardware threads.  Timings are then wall-clock of time-sliced threads and
/// speedup numbers are not meaningful (results are still correct).
inline bool jobs_oversubscribed(unsigned jobs_used) {
  const unsigned hc = hardware_threads();
  return hc != 0 && jobs_used > hc;
}

/// Warns on stderr when the resolved job count oversubscribes the host —
/// once per process, not once per circuit (benches call this in a loop).
/// The per-row `jobs_oversubscribed` JSON field carries the same fact
/// machine-readably for every record.
inline void warn_if_oversubscribed(unsigned jobs_used) {
  static bool warned = false;
  if (jobs_oversubscribed(jobs_used) && !warned) {
    warned = true;
    std::fprintf(stderr,
                 "warning: --jobs %u oversubscribes this host "
                 "(%u hardware threads); timings will not reflect real "
                 "parallel speedup\n",
                 jobs_used, hardware_threads());
  }
}

/// --progress: periodic heartbeat lines from an ObsMonitor.
inline bool select_progress(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--progress") == 0) return true;
  }
  return false;
}


/// One JSON object, built field by field in insertion order.
class JsonObject {
 public:
  JsonObject& set(const char* key, const std::string& v) {
    return raw(key, "\"" + escape(v) + "\"");
  }
  JsonObject& set(const char* key, const char* v) {
    return set(key, std::string(v));
  }
  JsonObject& set(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& set(const char* key, std::size_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& set(const char* key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& set(const char* key, unsigned v) {
    return raw(key, std::to_string(v));
  }
  /// Nested object / array / preformatted literal.
  JsonObject& raw(const char* key, const std::string& json) {
    fields_.emplace_back(key, json);
    return *this;
  }

  std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    return out + "}";
  }

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Adds the standard job-accounting fields to a bench JSON row.
inline JsonObject& add_jobs_fields(JsonObject& row, unsigned jobs_used) {
  return row.set("jobs", jobs_used)
      .set("hardware_concurrency", hardware_threads())
      .raw("jobs_oversubscribed",
           jobs_oversubscribed(jobs_used) ? "true" : "false");
}

/// Collects one JSON record per circuit and writes them as an array.  With an
/// empty path every call is a no-op, so benches can emit unconditionally.
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  void add(const JsonObject& row) {
    if (!path_.empty()) rows_.push_back(row.render());
  }

  /// Writes the array; returns false (with a message) on I/O failure.
  bool write() const {
    if (path_.empty()) return true;
    std::ofstream os(path_);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    os << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << "  " << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "]\n";
    std::printf("wrote %s (%zu records)\n", path_.c_str(), rows_.size());
    return true;
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

/// One fully prepared circuit: netlist + TPI scan design + scan-mode model.
struct Prepared {
  SuiteEntry entry;
  Netlist nl;
  std::size_t base_gates = 0;  ///< mapped gates before DFT insertion
  ScanDesign design;
  TpiStats tpi_stats;
  std::unique_ptr<Levelizer> lv;
  std::unique_ptr<ScanModeModel> model;
  std::vector<Fault> faults;
};

inline Prepared prepare(const SuiteEntry& e) {
  Prepared p;
  p.entry = e;
  p.nl = build_suite_circuit(e);
  p.base_gates = p.nl.num_gates();
  TpiOptions topt;
  topt.num_chains = e.chains;
  p.design = run_tpi(p.nl, topt, &p.tpi_stats);
  p.lv = std::make_unique<Levelizer>(p.nl);
  p.model = std::make_unique<ScanModeModel>(*p.lv, p.design);
  p.faults = collapsed_fault_list(p.nl);
  return p;
}

}  // namespace fsct::benchtool
