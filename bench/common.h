// Shared plumbing for the table/figure reproduction binaries: builds each
// suite circuit, applies TPI with the paper's chain counts, and offers a
// simple circuit filter:
//   <bench> [circuit ...]        run only the named circuits
//   <bench> --max-gates N        skip circuits above N gates
// With no arguments every suite circuit runs (paper configuration).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_circuits/suite.h"
#include "fault/fault.h"
#include "netlist/levelize.h"
#include "scan/scan_mode_model.h"
#include "scan/tpi.h"

namespace fsct::benchtool {

inline std::vector<SuiteEntry> select_circuits(int argc, char** argv) {
  std::vector<std::string> names;
  int max_gates = 1 << 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-gates") == 0 && i + 1 < argc) {
      max_gates = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      names.emplace_back(argv[i]);
    }
  }
  std::vector<SuiteEntry> out;
  for (const SuiteEntry& e : paper_suite()) {
    if (!names.empty()) {
      bool want = false;
      for (const std::string& n : names) want |= (n == e.name);
      if (!want) continue;
    }
    if (e.gates > max_gates) continue;
    out.push_back(e);
  }
  return out;
}

/// One fully prepared circuit: netlist + TPI scan design + scan-mode model.
struct Prepared {
  SuiteEntry entry;
  Netlist nl;
  std::size_t base_gates = 0;  ///< mapped gates before DFT insertion
  ScanDesign design;
  TpiStats tpi_stats;
  std::unique_ptr<Levelizer> lv;
  std::unique_ptr<ScanModeModel> model;
  std::vector<Fault> faults;
};

inline Prepared prepare(const SuiteEntry& e) {
  Prepared p;
  p.entry = e;
  p.nl = build_suite_circuit(e);
  p.base_gates = p.nl.num_gates();
  TpiOptions topt;
  topt.num_chains = e.chains;
  p.design = run_tpi(p.nl, topt, &p.tpi_stats);
  p.lv = std::make_unique<Levelizer>(p.nl);
  p.model = std::make_unique<ScanModeModel>(*p.lv, p.design);
  p.faults = collapsed_fault_list(p.nl);
  return p;
}

}  // namespace fsct::benchtool
