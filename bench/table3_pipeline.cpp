// Regenerates Table 3: detecting the faults in f_hard.
// Left half: combinational ATPG + sequential fault simulation of the
// converted scan sequences (step 2).  Right half: grouped sequential ATPG on
// enhanced-controllability/observability circuit models (step 3).
//
// Paper totals for comparison: after step 2 only 0.159% of all faults remain
// undetected; after step 3 just 0.006% (0.022% of the chain-affecting ones).
#include <iostream>

#include "bench/common.h"
#include "core/obs.h"
#include "core/pipeline.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace fsct;
  benchtool::JsonReport json(benchtool::select_json_path(argc, argv));
  PipelineOptions opt;
  opt.jobs = benchtool::select_jobs(argc, argv);
  benchtool::warn_if_oversubscribed(resolve_jobs(opt.jobs));
  // Long-run visibility: SIGUSR1 prints a live status dump; --progress adds
  // a heartbeat line (phase, done/total, rate, ETA, RSS) every second.
  install_sigusr1_handler();
  ObsMonitor::Options mopt;
  mopt.heartbeat = benchtool::select_progress(argc, argv);
  const ObsMonitor monitor(mopt);
  std::cout << "Table 3: detecting the faults in f_hard\n";
  print_table3_header(std::cout);
  Table3Row total{"total"};
  std::size_t total_faults = 0, total_affecting = 0;
  for (const SuiteEntry& e : benchtool::select_circuits(argc, argv)) {
    const benchtool::Prepared p = benchtool::prepare(e);
    ObsRegistry reg;
    opt.obs = &reg;
    const PipelineResult r = run_fsct_pipeline(*p.model, p.faults, opt);
    const Table3Row row = to_table3(e.name, r);
    print_table3_row(std::cout, row);
    benchtool::JsonObject jrow;
    jrow.set("circuit", e.name);
    benchtool::add_jobs_fields(jrow, r.jobs_used);
    json.add(jrow.set("faults", r.total_faults)
                 .set("easy", r.easy)
                 .set("hard", r.hard)
                 .set("detected", r.s2_detected + r.s3_detected)
                 .set("s2_detected", r.s2_detected)
                 .set("s2_vectors", r.s2_vectors)
                 .set("s3_detected", r.s3_detected)
                 .set("s3_undetectable", r.s3_undetectable)
                 .set("s3_undetected", r.s3_undetected)
                 .raw("phase_seconds",
                      benchtool::JsonObject()
                          .set("classify", r.classify_seconds)
                          .set("s2", r.s2_seconds)
                          .set("s3", r.s3_seconds)
                          .render())
                 .raw("counters", reg.counters_json()));
    total.s2_det += row.s2_det;
    total.s2_undetectable += row.s2_undetectable;
    total.s2_undetected += row.s2_undetected;
    total.s2_seconds += row.s2_seconds;
    total.circ_group += row.circ_group;
    total.circ_final += row.circ_final;
    total.s3_det += row.s3_det;
    total.s3_undetectable += row.s3_undetectable;
    total.s3_undetected += row.s3_undetected;
    total.s3_seconds += row.s3_seconds;
    total_faults += r.total_faults;
    total_affecting += r.affecting();
  }
  print_table3_total(std::cout, total);
  if (total_faults > 0) {
    std::cout << "\nundetected after step 2: " << total.s2_undetected << " = "
              << 100.0 * static_cast<double>(total.s2_undetected) /
                     static_cast<double>(total_faults)
              << "% of all faults (paper: 0.159%)\n";
    std::cout << "undetected after step 3: " << total.s3_undetected << " = "
              << 100.0 * static_cast<double>(total.s3_undetected) /
                     static_cast<double>(total_faults)
              << "% of all faults (paper: 0.006%), "
              << 100.0 * static_cast<double>(total.s3_undetected) /
                     static_cast<double>(total_affecting ? total_affecting : 1)
              << "% of chain-affecting faults (paper: 0.022%)\n";
  }
  return json.write() ? 0 : 1;
}
