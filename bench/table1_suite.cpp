// Regenerates Table 1: the test suite (name, #gates, #FFs, #faults, #chains).
// Gate/FF counts are the published ISCAS'89 post-SIS sizes the generator
// targets; fault counts come from our collapsed single-stuck-at universe.
#include <iostream>

#include "bench/common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace fsct;
  benchtool::JsonReport json(benchtool::select_json_path(argc, argv));
  std::cout << "Table 1: test suite\n";
  print_table1_header(std::cout);
  Table1Row total{"total", 0, 0, 0, 0};
  for (const SuiteEntry& e : benchtool::select_circuits(argc, argv)) {
    const benchtool::Prepared p = benchtool::prepare(e);
    Table1Row r{e.name, p.base_gates, p.nl.dffs().size(), p.faults.size(),
                p.design.chains.size()};
    print_table1_row(std::cout, r);
    json.add(benchtool::JsonObject()
                 .set("circuit", e.name)
                 .set("gates", r.gates)
                 .set("ffs", r.ffs)
                 .set("faults", r.faults)
                 .set("chains", r.chains));
    total.gates += r.gates;
    total.ffs += r.ffs;
    total.faults += r.faults;
    total.chains += r.chains;
  }
  print_table1_row(std::cout, total);
  return json.write() ? 0 : 1;
}
