// Ablation: partial functional scan.  The paper notes that in a partial-scan
// environment step 2 falls back to random test sets; here we sweep the
// scanned fraction and report how much of the fault population still touches
// the (smaller) chain and how well the flow resolves it.
//
// Default circuit: s5378.
#include <cstdio>

#include "bench/common.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace fsct;
  auto circuits = benchtool::select_circuits(argc, argv);
  if (argc <= 1) circuits = {suite_entry("s5378")};
  for (const SuiteEntry& e : circuits) {
    std::printf("Partial-scan ablation on %s (%d FFs)\n", e.name.c_str(),
                e.ffs);
    std::printf("%-8s %-8s | %-8s %-8s | %-8s %-8s %-8s\n", "scanned",
                "maxlen", "easy", "hard", "det", "undetectable", "open");
    for (int permille : {250, 500, 750, 1000}) {
      Netlist nl = build_suite_circuit(e);
      TpiOptions topt;
      topt.num_chains = e.chains;
      topt.scan_permille = permille;
      const ScanDesign d = run_tpi(nl, topt);
      const Levelizer lv(nl);
      const ScanModeModel model(lv, d);
      const auto faults = collapsed_fault_list(nl);
      const PipelineResult r = run_fsct_pipeline(model, faults);
      std::printf("%-7.1f%% %-8zu | %-8zu %-8zu | %-8zu %-8zu %-8zu\n",
                  permille / 10.0, model.max_chain_length(), r.easy, r.hard,
                  r.easy + r.s2_detected + r.s3_detected,
                  r.s2_undetectable + r.s3_undetectable, r.s3_undetected);
    }
    std::printf("\n");
  }
  return 0;
}
