#!/usr/bin/env bash
# Build + test, then rebuild with ThreadSanitizer and re-run the tests that
# drive the fault-parallel execution layer — the race detector must be clean
# on the new parallel paths — and with UBSan over the wide SIMD kernels
# (alignment, shifts, aliasing in the multi-word lane code).
#
#   tools/check.sh              # full check (plain build + full ctest +
#                               # width sweep + TSan + UBSan)
#   tools/check.sh --tsan-only  # only the TSan build + concurrency tests
#   tools/check.sh --coverage   # only the gcov build + line-floor check on
#                               # src/fault and src/core (opt-in; slow -O0)
#
# Extra arguments after the flags are passed to both cmake configure steps.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$PWD"

TSAN_ONLY=0
if [[ "${1:-}" == "--tsan-only" ]]; then
  TSAN_ONLY=1
  shift
fi

if [[ "${1:-}" == "--coverage" ]]; then
  shift
  # Line floors, percent.  Raise them as tests grow; never lower them to make
  # a regression pass.
  FAULT_FLOOR=85
  CORE_FLOOR=75
  cmake -B build-cov -S . -DFSCT_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug "$@"
  COV_TESTS=(fault_test dominance_test seq_fault_sim_test comb_fault_sim_test
             classify_test classify_multichain_test chain_reorder_test
             grouping_test reduced_atpg_test pipeline_test
             pipeline_options_test compaction_test diagnose_test
             test_export_test selfcheck_test report_test obs_test
             profile_test json_test parallel_test bench_harness_test)
  cmake --build build-cov -j --target "${COV_TESTS[@]}"
  for t in "${COV_TESTS[@]}"; do
    "./build-cov/tests/$t" --gtest_brief=1
  done
  COV_TMP="$(mktemp -d)"
  trap 'rm -rf "$COV_TMP"' EXIT
  (
    cd "$COV_TMP"
    find "$ROOT/build-cov/src/fault" "$ROOT/build-cov/src/core" \
      -name '*.gcda' -exec gcov {} + > /dev/null
  )
  python3 - "$COV_TMP" "$FAULT_FLOOR" "$CORE_FLOOR" <<'EOF'
import glob, os, sys
scratch, fault_floor, core_floor = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
floors = {"src/fault": fault_floor, "src/core": core_floor}
groups = {g: [0, 0] for g in floors}  # group -> [executable lines, hit lines]
for path in glob.glob(os.path.join(scratch, "*.gcov")):
    group = None
    with open(path) as f:
        for line in f:
            parts = line.split(":", 2)
            if len(parts) < 3:
                continue
            count, lineno = parts[0].strip(), parts[1].strip()
            if lineno == "0":
                if parts[2].startswith("Source:"):
                    src = parts[2][len("Source:"):].strip()
                    # Library .cpp files only: each is compiled exactly once,
                    # so same-named .gcov outputs never clobber real counts
                    # (headers show up per translation unit and are skipped).
                    if src.endswith(".cpp"):
                        group = next((g for g in floors if f"/{g}/" in src), None)
                continue
            if group is None or count == "-":
                continue
            groups[group][0] += 1
            if count not in ("#####", "====="):
                groups[group][1] += 1
fail = False
for g, (total, hit) in sorted(groups.items()):
    pct = 100.0 * hit / total if total else 0.0
    status = "OK" if pct >= floors[g] else "BELOW FLOOR"
    print(f"coverage {g}: {hit}/{total} lines = {pct:.1f}% "
          f"(floor {floors[g]:.0f}%) {status}")
    fail |= pct < floors[g]
if not any(total for total, _ in groups.values()):
    print("coverage: no .gcda data found — did the instrumented tests run?")
    fail = True
sys.exit(1 if fail else 0)
EOF
  echo "check.sh: coverage OK (gcov line floors hold)"
  exit 0
fi

# Tests that exercise the thread pool and every pool-driven phase (the obs
# registry records from every executor, so its tests belong in the TSan set;
# Bench. covers the heartbeat/status-dump monitor thread racing the pipeline;
# Serve. covers the daemon's reader/worker threads sharing the model cache;
# Shard. covers the coordinator threads driving forked workers plus the
# crash-injection killer thread racing the checkpoint writer).
CONCURRENCY_TESTS='Parallel\.|Determinism\.|Obs\.|Selfcheck\.|Bench\.|Serve\.|Shard\.'

if [[ "$TSAN_ONLY" == 0 ]]; then
  cmake -B build -S . "$@"
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"

  # Observability smoke: a real CLI run must emit parseable trace/metrics JSON.
  OBS_TMP="$(mktemp -d)"
  trap 'rm -rf "$OBS_TMP"' EXIT
  cat > "$OBS_TMP/s27.bench" <<'EOF'
# ISCAS'89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
EOF
  ./build/tools/fsct test "$OBS_TMP/s27.bench" --jobs 2 -v \
    --trace "$OBS_TMP/trace.json" --metrics "$OBS_TMP/metrics.json" \
    --trace-max-mb 64 --profile "$OBS_TMP/profile.json" \
    --folded "$OBS_TMP/profile.folded" --metrics-out "$OBS_TMP/metrics.prom"
  python3 -m json.tool "$OBS_TMP/trace.json" > /dev/null
  python3 -m json.tool "$OBS_TMP/metrics.json" > /dev/null
  python3 -m json.tool "$OBS_TMP/profile.json" > /dev/null
  python3 tools/promtext_lint.py "$OBS_TMP/metrics.prom"
  # The saved profile and the run report's attribution section both render.
  ./build/tools/fsct profile "$OBS_TMP/profile.json" > /dev/null
  ./build/tools/fsct profile "$OBS_TMP/metrics.json" --top 5 > /dev/null
  echo "check.sh: observability smoke OK (trace/metrics/profile JSON parse," \
       "OpenMetrics lint, profile render)"

  # Differential fuzz smoke: a fixed-seed sweep of the seven in-process
  # selfcheck oracles plus a replay of the checked-in minimized corpus (see
  # core/selfcheck.h), then a shorter sweep of the opt-in O8 shard oracle
  # (single-process vs a forked 2-4 shard run on every generated circuit).
  ./build/tools/fsct fuzz --seed 1 --iters 100 -o "$OBS_TMP/fuzz"
  ./build/tools/fsct fuzz --corpus tests/integration/fuzz_corpus
  ./build/tools/fsct fuzz --seed 1 --iters 25 --oracles shard --jobs 2
  echo "check.sh: fuzz smoke OK (100 in-process + 25 shard iterations" \
       "+ corpus replay)"

  # Bench smoke: run the smallest suite circuit through the statistics-aware
  # harness, check the document parses, and self-compare (must be exit 0 —
  # the noise model has to accept a document against itself).
  ./build/tools/fsct bench run s1488 --reps 2 --warmup 0 --jobs 1 \
    --label smoke -o "$OBS_TMP/bench_smoke.json"
  python3 -m json.tool "$OBS_TMP/bench_smoke.json" > /dev/null
  ./build/tools/fsct bench compare "$OBS_TMP/bench_smoke.json" \
    "$OBS_TMP/bench_smoke.json"
  echo "check.sh: bench smoke OK (run + JSON parse + self-compare)"

  # Attribution overhead gate: the per-fault ledger must stay inside the
  # compare harness's noise window (max(rel, 3*MAD, 5ms floor)) — the
  # null-sink rule says observation never becomes the workload.
  ./build/tools/fsct bench run s1488 --reps 3 --warmup 1 --jobs 2 \
    --label attr-off -o "$OBS_TMP/bench_attr_off.json"
  ./build/tools/fsct bench run s1488 --reps 3 --warmup 1 --jobs 2 \
    --attribution --label attr-on -o "$OBS_TMP/bench_attr_on.json"
  ./build/tools/fsct bench compare "$OBS_TMP/bench_attr_off.json" \
    "$OBS_TMP/bench_attr_on.json"
  echo "check.sh: attribution overhead gate OK (ledger within noise)"

  # Width sweep: the full pipeline at every SIMD lane width must produce an
  # identical run report (timings and RSS stripped — wider lanes legitimately
  # use more memory; only results and deterministic counters are compared).
  cat > "$OBS_TMP/strip.py" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
def strip(o):
    if isinstance(o, dict):
        # Mirror of normalized_report() in src/serve/serve.cpp: volatile
        # substrings plus the per-run stamps ("serve" request_id, "shard"
        # topology, "pool" sizing) that legitimately vary across runs.
        return {k: strip(v) for k, v in sorted(o.items())
                if "seconds" not in k and "time" not in k and "passes" not in k
                and "cycles" not in k and "rss" not in k
                and k not in ("serve", "shard", "pool")}
    if isinstance(o, list):
        return [strip(v) for v in o]
    return o
json.dump(strip(doc), open(sys.argv[2], "w"), indent=1)
EOF
  for W in 64 256 512; do
    ./build/tools/fsct test "$OBS_TMP/s27.bench" --jobs 1 --simd-width "$W" \
      --metrics "$OBS_TMP/metrics_w$W.json" > /dev/null
    python3 "$OBS_TMP/strip.py" "$OBS_TMP/metrics_w$W.json" \
      "$OBS_TMP/metrics_w$W.norm"
  done
  cmp "$OBS_TMP/metrics_w64.norm" "$OBS_TMP/metrics_w256.norm"
  cmp "$OBS_TMP/metrics_w64.norm" "$OBS_TMP/metrics_w512.norm"
  echo "check.sh: width sweep OK (identical run reports at 64/256/512)"

  # Serve smoke: the daemon must serve the same normalized run report as the
  # CLI (the serve determinism contract, DESIGN.md §5j), answer a repeated
  # request from its result cache, expose its observability plane (GET
  # /metrics, /healthz, /readyz, /statusz + the NDJSON request log), and
  # drain cleanly on SIGTERM.
  ./build/tools/fsct serve --socket "$OBS_TMP/serve.sock" --http-port 0 \
    --request-log "$OBS_TMP/requests.ndjson" > "$OBS_TMP/serve.log" &
  SERVE_PID=$!
  for _ in $(seq 50); do [[ -S "$OBS_TMP/serve.sock" ]] && break; sleep 0.1; done
  HTTP_PORT="$(python3 - "$OBS_TMP/serve.log" <<'EOF'
import re, sys, time
for _ in range(50):
    m = re.search(r"metrics on 127\.0\.0\.1:(\d+)", open(sys.argv[1]).read())
    if m:
        print(m.group(1))
        break
    time.sleep(0.1)
else:
    sys.exit("serve smoke: no metrics port announced in serve.log")
EOF
)"
  python3 - "$OBS_TMP" <<'EOF'
import json, socket, sys
tmp = sys.argv[1]
bench = open(tmp + "/s27.bench").read()
s = socket.socket(socket.AF_UNIX)
s.connect(tmp + "/serve.sock")
f = s.makefile("r")
def ask(rid):
    s.sendall((json.dumps({"id": rid, "circuit": bench,
                           "config": {"jobs": 1}}) + "\n").encode())
    while True:
        ev = json.loads(f.readline())
        if ev.get("event") == "result":
            return ev
r1 = ask("smoke1")
assert r1["status"] == "ok", r1
r2 = ask("smoke2")
assert r2["status"] == "ok", r2
assert r2["result_cache"] == "hit", r2
# The replay is verbatim apart from the per-response serve stamp: each
# response carries its own server-assigned request_id.
def unstamped(report):
    return {k: v for k, v in report.items() if k != "serve"}
assert unstamped(r1["report"]) == unstamped(r2["report"])
assert r1["report"]["serve"]["request_id"] != r2["report"]["serve"]["request_id"]
assert r1["request_id"] == r1["report"]["serve"]["request_id"], r1
json.dump(r1["report"], open(tmp + "/served.json", "w"))
s.close()
EOF
  # Scrape the live daemon's observability plane and hold the page to the
  # same OpenMetrics rules as the CLI exposition (plus the histogram
  # invariants a scraper depends on: cumulative le buckets ending at +Inf).
  python3 - "$OBS_TMP" "$HTTP_PORT" <<'EOF'
import http.client, json, re, sys
tmp, port = sys.argv[1], int(sys.argv[2])
def get(path):
    c = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    c.request("GET", path)
    r = c.getresponse()
    body = r.read().decode()
    c.close()
    return r.status, body
st, _ = get("/healthz"); assert st == 200, st
st, _ = get("/readyz"); assert st == 200, st
st, body = get("/statusz"); assert st == 200, st
doc = json.loads(body)
assert len(doc["recent"]) == 2, doc
assert doc["active_sessions"] == [], doc
st, body = get("/metrics"); assert st == 200, st
open(tmp + "/daemon_metrics.prom", "w").write(body)
assert body.endswith("# EOF\n"), body[-80:]
for name in ("fsct_serve_uptime_seconds", "fsct_serve_requests_total",
             "fsct_serve_result_cache_hits_total",
             "fsct_serve_latency_pipeline_us_bucket",
             "fsct_classify_faults_total"):
    assert name in body, name
hists = {}
for line in body.splitlines():
    m = re.match(r'(\w+)_bucket\{le="([^"]+)"\} (\d+)', line)
    if m:
        hists.setdefault(m.group(1), []).append((m.group(2), int(m.group(3))))
assert hists, "no histogram buckets in /metrics"
for fam, buckets in hists.items():
    counts = [c for _, c in buckets]
    assert counts == sorted(counts), (fam, "buckets not cumulative")
    assert buckets[-1][0] == "+Inf", (fam, "missing +Inf bucket")
st, _ = get("/nope"); assert st == 404, st
EOF
  python3 tools/promtext_lint.py "$OBS_TMP/daemon_metrics.prom"
  # `fsct stat` renders a one-screen status against the same live daemon.
  ./build/tools/fsct stat --port "$HTTP_PORT" > "$OBS_TMP/stat.out"
  grep -q "fsct daemon: up" "$OBS_TMP/stat.out"
  grep -q "requests 2: 2 ok" "$OBS_TMP/stat.out"
  grep -q "latency p50/p90/p99" "$OBS_TMP/stat.out"
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  # The request log is one well-formed NDJSON record per request, in order,
  # with the phase latencies and cache outcomes the daemon reported.
  python3 - "$OBS_TMP/requests.ndjson" <<'EOF'
import json, sys
recs = [json.loads(l) for l in open(sys.argv[1])]
assert [r["request_id"] for r in recs] == [1, 2], recs
assert recs[0]["result_cache"] == "miss" and recs[1]["result_cache"] == "hit"
for r in recs:
    assert r["status"] == "ok", r
    for k in ("id", "circuit", "priority", "model_cache",
              "queue_us", "compile_us", "pipeline_us", "serialize_us"):
        assert k in r, (k, r)
EOF
  python3 "$OBS_TMP/strip.py" "$OBS_TMP/served.json" "$OBS_TMP/served.norm"
  cmp "$OBS_TMP/served.norm" "$OBS_TMP/metrics_w64.norm"
  echo "check.sh: serve smoke OK (served report identical to CLI," \
       "result-cache hit, /metrics lint, fsct stat, request log," \
       "SIGTERM drain)"

  # Observability overhead gate: a daemon carrying the full plane (request
  # log + a scraper hitting /metrics after every request) must serve inside
  # the bench harness's noise window (max(rel, 3*MAD, 5ms floor)) of a plain
  # daemon — the null-sink rule extends to the serve path.
  cat > "$OBS_TMP/serve_bench.py" <<'EOF'
import http.client, json, socket, sys, time
tmp, sock_path, out, label = sys.argv[1:5]
port = int(sys.argv[5]) if len(sys.argv) > 5 else -1
bench = open(tmp + "/s27.bench").read()
s = socket.socket(socket.AF_UNIX)
s.connect(sock_path)
f = s.makefile("r")
walls = []
for i in range(6):  # 1 warmup + 5 measured
    t0 = time.monotonic()
    s.sendall((json.dumps({"id": "%s%d" % (label, i), "circuit": bench,
                           "use_result_cache": False,
                           "config": {"jobs": 1}}) + "\n").encode())
    while True:
        ev = json.loads(f.readline())
        if ev.get("event") == "result":
            break
    assert ev["status"] == "ok", ev
    if i:
        walls.append(time.monotonic() - t0)
    if port > 0:
        c = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        c.request("GET", "/metrics")
        assert c.getresponse().read().endswith(b"# EOF\n")
        c.close()
s.close()
walls.sort()
doc = {"schema": "fsct-bench-v2",
       "rows": [{"circuit": "s27",
                 "phases": [{"name": "serve_request",
                             "wall": {"median": walls[len(walls) // 2]}}]}]}
json.dump(doc, open(out, "w"))
EOF
  ./build/tools/fsct serve --socket "$OBS_TMP/plain.sock" \
    > "$OBS_TMP/plain.log" &
  PLAIN_PID=$!
  for _ in $(seq 50); do [[ -S "$OBS_TMP/plain.sock" ]] && break; sleep 0.1; done
  python3 "$OBS_TMP/serve_bench.py" "$OBS_TMP" "$OBS_TMP/plain.sock" \
    "$OBS_TMP/bench_obs_off.json" plain
  kill -TERM "$PLAIN_PID"; wait "$PLAIN_PID"
  ./build/tools/fsct serve --socket "$OBS_TMP/instr.sock" --http-port 0 \
    --request-log "$OBS_TMP/instr_requests.ndjson" > "$OBS_TMP/instr.log" &
  INSTR_PID=$!
  for _ in $(seq 50); do [[ -S "$OBS_TMP/instr.sock" ]] && break; sleep 0.1; done
  INSTR_PORT="$(sed -n 's/.*metrics on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$OBS_TMP/instr.log" | head -1)"
  python3 "$OBS_TMP/serve_bench.py" "$OBS_TMP" "$OBS_TMP/instr.sock" \
    "$OBS_TMP/bench_obs_on.json" instr "$INSTR_PORT"
  kill -TERM "$INSTR_PID"; wait "$INSTR_PID"
  ./build/tools/fsct bench compare "$OBS_TMP/bench_obs_off.json" \
    "$OBS_TMP/bench_obs_on.json"
  echo "check.sh: observability overhead gate OK (request log + scraping" \
       "within noise)"

  # Shard smoke: a 3-shard run on s1423 is SIGTERMed mid-run (a test-only env
  # hook widens the window), must exit 3 with a checkpoint and no partial
  # report, and the --resume continuation's normalized report must be
  # byte-identical to a plain single-process CLI run (DESIGN.md §5l).
  # (s1423 exits 1 by design: one fault stays undetected at these budgets.)
  ./build/tools/fsct test s1423 --jobs 2 \
    --metrics "$OBS_TMP/shard_single.json" > /dev/null || [[ $? == 1 ]]
  FSCT_TEST_PHASE_SLEEP="s3:2500" ./build/tools/fsct test s1423 --jobs 2 \
    --shards 3 --checkpoint "$OBS_TMP/shard.ckpt" \
    --metrics "$OBS_TMP/shard_metrics.json" \
    > /dev/null 2> "$OBS_TMP/shard_err.log" &
  SHARD_PID=$!
  for _ in $(seq 100); do [[ -f "$OBS_TMP/shard.ckpt" ]] && break; sleep 0.1; done
  [[ -f "$OBS_TMP/shard.ckpt" ]]
  kill -TERM "$SHARD_PID"
  SHARD_RC=0
  wait "$SHARD_PID" || SHARD_RC=$?
  [[ "$SHARD_RC" == 3 ]]
  grep -q -- "--resume" "$OBS_TMP/shard_err.log"
  [[ ! -f "$OBS_TMP/shard_metrics.json" ]]
  ./build/tools/fsct test s1423 --jobs 2 --shards 3 \
    --resume "$OBS_TMP/shard.ckpt" \
    --metrics "$OBS_TMP/shard_metrics.json" > /dev/null || [[ $? == 1 ]]
  python3 "$OBS_TMP/strip.py" "$OBS_TMP/shard_single.json" \
    "$OBS_TMP/shard_single.norm"
  python3 "$OBS_TMP/strip.py" "$OBS_TMP/shard_metrics.json" \
    "$OBS_TMP/shard_resumed.norm"
  cmp "$OBS_TMP/shard_single.norm" "$OBS_TMP/shard_resumed.norm"
  echo "check.sh: shard smoke OK (SIGTERM -> checkpoint -> resume identical" \
       "to single-process)"

  # Shard overhead gate: the execution layer itself must be free when unused —
  # a --shards 1 run (one forked worker, full RPC protocol) has to land inside
  # the bench harness's noise window of a plain in-process run.
  cat > "$OBS_TMP/shard_bench.py" <<'EOF'
import json, subprocess, sys, time
fsct, out = sys.argv[1], sys.argv[2]
extra = sys.argv[3:]
walls = []
for i in range(8):  # 2 warmup + 6 measured
    t0 = time.monotonic()
    subprocess.run([fsct, "test", "s1494", "--jobs", "2"] + extra,
                   check=True, stdout=subprocess.DEVNULL)
    if i >= 2:
        walls.append(time.monotonic() - t0)
walls.sort()
doc = {"schema": "fsct-bench-v2",
       "rows": [{"circuit": "s1494",
                 "phases": [{"name": "fsct_test",
                             "wall": {"median": walls[len(walls) // 2]}}]}]}
json.dump(doc, open(out, "w"))
EOF
  python3 "$OBS_TMP/shard_bench.py" ./build/tools/fsct \
    "$OBS_TMP/bench_shard_off.json"
  python3 "$OBS_TMP/shard_bench.py" ./build/tools/fsct \
    "$OBS_TMP/bench_shard_on.json" --shards 1
  ./build/tools/fsct bench compare "$OBS_TMP/bench_shard_off.json" \
    "$OBS_TMP/bench_shard_on.json"
  echo "check.sh: shard overhead gate OK (--shards 1 within noise of" \
       "in-process)"
fi

cmake -B build-tsan -S . -DFSCT_SANITIZE=thread "$@"
cmake --build build-tsan -j \
  --target parallel_test determinism_test pipeline_test \
           seq_fault_sim_test comb_fault_sim_test classify_test obs_test \
           selfcheck_test bench_harness_test serve_test shard_test
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
  --output-on-failure -R "$CONCURRENCY_TESTS"

if [[ "$TSAN_ONLY" == 0 ]]; then
  # UBSan over the new SoA/wide kernels: the multi-word lane types lean on
  # alignas + fixed-trip-count word loops, so shifts, alignment and aliasing
  # must be provably clean at every width.
  cmake -B build-ubsan -S . -DFSCT_SANITIZE=undefined "$@"
  cmake --build build-ubsan -j \
    --target soa_sim_test seq_fault_sim_test pair_sim_test podem_test
  UBSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-ubsan \
    --output-on-failure -R 'SoaCircuit\.|WideSim\.|WideSeqSim\.|SimdWidth\.|SeqFaultSim\.|PairSim\.|Podem\.'
  echo "check.sh: UBSan clean over the SoA/wide kernels"
fi
echo "check.sh: OK (plain tests $( [[ $TSAN_ONLY == 1 ]] && echo skipped || echo passed ), TSan clean)"
