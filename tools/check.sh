#!/usr/bin/env bash
# Build + test, then rebuild with ThreadSanitizer and re-run the tests that
# drive the fault-parallel execution layer — the race detector must be clean
# on the new parallel paths.
#
#   tools/check.sh              # full check (plain build + full ctest + TSan)
#   tools/check.sh --tsan-only  # only the TSan build + concurrency tests
#
# Extra arguments after the flags are passed to both cmake configure steps.
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN_ONLY=0
if [[ "${1:-}" == "--tsan-only" ]]; then
  TSAN_ONLY=1
  shift
fi

# Tests that exercise the thread pool and every pool-driven phase.
CONCURRENCY_TESTS='Parallel\.|Determinism\.'

if [[ "$TSAN_ONLY" == 0 ]]; then
  cmake -B build -S . "$@"
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

cmake -B build-tsan -S . -DFSCT_SANITIZE=thread "$@"
cmake --build build-tsan -j \
  --target parallel_test determinism_test pipeline_test \
           seq_fault_sim_test comb_fault_sim_test classify_test
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
  --output-on-failure -R "$CONCURRENCY_TESTS"
echo "check.sh: OK (plain tests $( [[ $TSAN_ONLY == 1 ]] && echo skipped || echo passed ), TSan clean)"
