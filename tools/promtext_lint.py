#!/usr/bin/env python3
"""Validator for the OpenMetrics text exposition fsct writes (--metrics-out).

Checks the subset of the OpenMetrics spec the writer uses:
  * every sample line matches  name[{labels}] value
  * every sample's metric family has a preceding # TYPE line
  * counter samples use the _total suffix
  * histogram bucket counts are cumulative (monotone in le, capped by _count)
    and every histogram has _sum and _count
  * exactly one terminating # EOF line, nothing after it

Exit 0 clean, 1 on any violation (each printed with its line number).
"""
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'       # metric name
    r'(\{[a-zA-Z0-9_="+.,%\- ]*\})?'     # optional label set
    r' (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$')
TYPE_RE = re.compile(r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) '
                     r'(counter|gauge|histogram|summary|unknown)$')
LE_RE = re.compile(r'le="([^"]*)"')


def base_family(name):
    for suffix in ('_total', '_bucket', '_sum', '_count'):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(lines):
    errors = []
    types = {}           # family -> type
    buckets = {}         # family -> [(le, value, lineno)]
    hist_parts = {}      # family -> set of seen parts
    saw_eof = False

    for no, line in enumerate(lines, 1):
        line = line.rstrip('\n')
        if saw_eof:
            errors.append(f'line {no}: content after # EOF')
            continue
        if line == '# EOF':
            saw_eof = True
            continue
        if not line:
            errors.append(f'line {no}: blank line (not allowed)')
            continue
        if line.startswith('#'):
            m = TYPE_RE.match(line)
            if m:
                family, kind = m.group(1), m.group(2)
                if family in types:
                    errors.append(f'line {no}: duplicate # TYPE for {family}')
                types[family] = kind
            elif not line.startswith('# HELP') and not line.startswith('# UNIT'):
                errors.append(f'line {no}: unrecognized comment line: {line!r}')
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f'line {no}: malformed sample line: {line!r}')
            continue
        name, labels, value = m.group(1), m.group(2) or '', m.group(3)
        family = base_family(name)
        if family not in types:
            errors.append(f'line {no}: sample {name} has no preceding # TYPE')
            continue
        kind = types[family]
        if kind == 'counter' and not name.endswith('_total'):
            errors.append(
                f'line {no}: counter sample {name} must end in _total')
        if kind == 'histogram':
            parts = hist_parts.setdefault(family, set())
            if name.endswith('_bucket'):
                parts.add('bucket')
                le = LE_RE.search(labels)
                if not le:
                    errors.append(
                        f'line {no}: histogram bucket without le label')
                else:
                    bound = (float('inf') if le.group(1) == '+Inf'
                             else float(le.group(1)))
                    buckets.setdefault(family, []).append(
                        (bound, float(value), no))
            elif name.endswith('_sum'):
                parts.add('sum')
            elif name.endswith('_count'):
                parts.add('count')

    if not saw_eof:
        errors.append('missing terminating # EOF line')

    for family, bs in buckets.items():
        prev = None
        for bound, value, no in bs:  # writer emits in ascending-le order
            if prev is not None:
                if bound <= prev[0]:
                    errors.append(
                        f'line {no}: {family} bucket le out of order')
                if value < prev[1]:
                    errors.append(
                        f'line {no}: {family} bucket counts not cumulative')
            prev = (bound, value)
        if bs and bs[-1][0] != float('inf'):
            errors.append(f'{family}: histogram missing +Inf bucket')
    for family, parts in hist_parts.items():
        for need in ('bucket', 'sum', 'count'):
            if need not in parts:
                errors.append(f'{family}: histogram missing _{need}')
    return errors


def main():
    if len(sys.argv) != 2:
        print('usage: promtext_lint.py <metrics.prom>', file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        errors = lint(f.readlines())
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f'{sys.argv[1]}: OK')
    return 1 if errors else 0


if __name__ == '__main__':
    sys.exit(main())
