// fsct — command-line front end for the functional-scan-chain-testing
// library.  The workflows a test engineer actually runs:
//
//   fsct stats    <circuit.bench>
//       structural statistics of a netlist.
//
//   fsct scan     <circuit.bench> [--chains N] [--partial permille]
//                 [-o scanned.bench]
//       insert a TPI functional scan chain, report the overhead, optionally
//       write the scanned netlist.
//
//   fsct test     <circuit.bench> [--chains N] [--partial permille]
//                 [--jobs N] [-o program.fsct] [--trace t.json]
//                 [--metrics m.json] [-v]
//       full flow: TPI + three-step screening pipeline; prints the paper's
//       Table-2/3 style summary and (with -o) writes the complete chain test
//       program (flush + vectors + verified sequential tests) plus the
//       scanned netlist it applies to (<out>.bench).  --trace writes a
//       Chrome trace-event JSON of the run, --metrics a structured JSON run
//       report, -v streams per-phase progress to stderr.
//
//   fsct replay   <program.fsct> <circuit.bench> [--fault NET 0|1]
//       run a test program against a (possibly faulty) device; exit status 1
//       when strobes mismatch.
//
//   fsct diagnose <circuit.bench> --fault NET 0|1 [--chains N]
//       inject a defect, apply the flush + marker loads, and rank suspects.
//
//   fsct selftest
//       end-to-end smoke test on the embedded ISCAS'89 s27.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>

#include "bench_circuits/paper_examples.h"
#include "core/diagnose.h"
#include "core/obs.h"
#include "core/pipeline.h"
#include "core/test_export.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "scan/tpi.h"

namespace {

using namespace fsct;

struct Args {
  std::vector<std::string> positional;
  int chains = 1;
  int partial = 1000;
  int jobs = 0;  // 0 = one executor per hardware thread
  std::string out;
  std::string fault_net;
  int fault_value = -1;
  std::string trace_path;    // --trace: Chrome trace-event JSON
  std::string metrics_path;  // --metrics: structured run report JSON
  bool verbose = false;      // -v: per-phase progress on stderr
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (s == "--chains" && i + 1 < argc) {
      a.chains = std::atoi(argv[++i]);
    } else if (s == "--partial" && i + 1 < argc) {
      a.partial = std::atoi(argv[++i]);
    } else if (s == "--jobs" && i + 1 < argc) {
      a.jobs = std::atoi(argv[++i]);
    } else if (s == "-o" && i + 1 < argc) {
      a.out = argv[++i];
    } else if (s == "--fault" && i + 2 < argc) {
      a.fault_net = argv[++i];
      a.fault_value = std::atoi(argv[++i]);
    } else if (s == "--trace" && i + 1 < argc) {
      a.trace_path = argv[++i];
    } else if (s == "--metrics" && i + 1 < argc) {
      a.metrics_path = argv[++i];
    } else if (s == "-v" || s == "--verbose") {
      a.verbose = true;
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

void require_unscanned(const Netlist& nl) {
  if (nl.find("scan_mode") != kNullNode) {
    throw std::runtime_error(
        "circuit already contains a scan_mode input — pass the pre-scan "
        "netlist (this command inserts the scan chain itself)");
  }
}

Fault find_fault(const Netlist& nl, const Args& a) {
  const NodeId n = nl.find(a.fault_net);
  if (n == kNullNode) {
    throw std::runtime_error("unknown net: " + a.fault_net);
  }
  return Fault{n, -1, a.fault_value != 0};
}

int cmd_stats(const Args& a) {
  const Netlist nl = read_bench_file(a.positional.at(0));
  std::printf("%s\n%s", nl.name().c_str(),
              stats_string(compute_stats(nl)).c_str());
  return 0;
}

int cmd_scan(const Args& a) {
  Netlist nl = read_bench_file(a.positional.at(0));
  require_unscanned(nl);
  TpiOptions topt;
  topt.num_chains = a.chains;
  topt.scan_permille = a.partial;
  TpiStats stats;
  const ScanDesign d = run_tpi(nl, topt, &stats);
  std::printf("%s: %d functional links, %d scan muxes, %d test points, "
              "%d pinned PIs\n",
              nl.name().c_str(), stats.functional_segments,
              stats.mux_segments, stats.test_points, stats.assigned_pis);
  for (std::size_t c = 0; c < d.chains.size(); ++c) {
    std::printf("chain %zu: scan_in=%s length=%zu scan_out=%s\n", c,
                nl.node_name(d.chains[c].scan_in).c_str(),
                d.chains[c].length(),
                nl.node_name(d.chains[c].scan_out()).c_str());
  }
  if (!a.out.empty()) {
    std::ofstream os(a.out);
    write_bench(os, nl);
    std::printf("wrote %s\n", a.out.c_str());
  }
  return 0;
}

int cmd_test(const Args& a) {
  Netlist nl = read_bench_file(a.positional.at(0));
  require_unscanned(nl);
  TpiOptions topt;
  topt.num_chains = a.chains;
  topt.scan_permille = a.partial;
  const ScanDesign d = run_tpi(nl, topt);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  if (const std::string err = model.check(); !err.empty()) {
    std::printf("scan-mode invariant violated: %s\n", err.c_str());
    return 2;
  }
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_easy = true;
  opt.jobs = a.jobs;

  ObsRegistry reg;
  const bool want_obs =
      !a.trace_path.empty() || !a.metrics_path.empty() || a.verbose;
  if (want_obs) {
    opt.obs = &reg;
    reg.enable_trace(!a.trace_path.empty());
    if (a.verbose) {
      reg.progress = [](const std::string& line) {
        std::fprintf(stderr, "[fsct] %s\n", line.c_str());
      };
    }
  }
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);

  if (!a.trace_path.empty()) {
    std::ofstream ts(a.trace_path);
    if (!ts) throw std::runtime_error("cannot open " + a.trace_path);
    reg.write_trace(ts);
    std::printf("wrote trace %s (%zu spans)\n", a.trace_path.c_str(),
                reg.trace_event_count());
  }
  if (!a.metrics_path.empty()) {
    std::ofstream ms(a.metrics_path);
    if (!ms) throw std::runtime_error("cannot open " + a.metrics_path);
    reg.write_run_report(ms, r);
    std::printf("wrote metrics %s\n", a.metrics_path.c_str());
  }

  std::printf("jobs: %u | classify %.3fs | step 2 %.3fs | step 3 %.3fs\n",
              r.jobs_used, r.classify_seconds, r.s2_seconds, r.s3_seconds);
  std::printf("%zu faults | affecting %zu (%.1f%%) | easy %zu (verified %zu) "
              "| hard %zu\n",
              r.total_faults, r.affecting(),
              100.0 * static_cast<double>(r.affecting()) /
                  static_cast<double>(r.total_faults ? r.total_faults : 1),
              r.easy, r.easy_verified, r.hard);
  std::printf("step 2: %zu detected with %zu vectors, %zu undetectable\n",
              r.s2_detected, r.s2_vectors, r.s2_undetectable);
  std::printf("step 3: %zu detected, %zu undetectable, %zu undetected "
              "(%zu+%zu circuit models)\n",
              r.s3_detected, r.s3_undetectable, r.s3_undetected,
              r.s3_circuits_group, r.s3_circuits_final);

  if (!a.out.empty()) {
    const TestProgram p = make_chain_test_program(model, r);
    std::ofstream os(a.out);
    write_test_program(os, p);
    // The program runs on the *scanned* device: ship that netlist alongside.
    std::ofstream bos(a.out + ".bench");
    write_bench(bos, nl);
    std::printf("wrote %s (%zu cycles) and %s.bench\n", a.out.c_str(),
                p.stimulus.size(), a.out.c_str());
  }
  return r.s3_undetected == 0 ? 0 : 1;
}

int cmd_replay(const Args& a) {
  std::ifstream is(a.positional.at(0));
  if (!is) throw std::runtime_error("cannot open " + a.positional.at(0));
  const TestProgram p = read_test_program(is);
  const Netlist nl = read_bench_file(a.positional.at(1));
  const Levelizer lv(nl);
  std::size_t mismatches;
  if (!a.fault_net.empty()) {
    const Fault f = find_fault(nl, a);
    mismatches = run_test_program(lv, p, &f);
    std::printf("with %s: ", fault_name(nl, f).c_str());
  } else {
    mismatches = run_test_program(lv, p);
  }
  std::printf("%zu strobe mismatches -> %s\n", mismatches,
              mismatches ? "FAIL" : "PASS");
  return mismatches ? 1 : 0;
}

int cmd_diagnose(const Args& a) {
  Netlist nl = read_bench_file(a.positional.at(0));
  require_unscanned(nl);
  TpiOptions topt;
  topt.num_chains = a.chains;
  const ScanDesign d = run_tpi(nl, topt);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const Fault defect = find_fault(nl, a);

  ScanSequenceBuilder sb(nl, d);
  TestSequence seq = sb.alternating(2 * model.max_chain_length() + 8);
  std::mt19937_64 rng(7);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<Val>> marker(d.chains.size());
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      marker[c].resize(d.chains[c].length());
      for (auto& v : marker[c]) v = (rng() & 1) ? Val::One : Val::Zero;
    }
    const TestSequence load = sb.load_state(marker);
    seq.insert(seq.end(), load.begin(), load.end());
    for (std::size_t i = 0; i < model.max_chain_length() + 2; ++i) {
      seq.push_back(sb.base_vector(Val::Zero));
    }
  }
  ChainDiagnoser diag(model);
  const ObservedResponse obs = diag.make_response(seq, defect);
  const auto faults = collapsed_fault_list(nl);
  const auto ranked = diag.diagnose(obs, faults, 8);
  std::printf("%-4s %-30s %-10s %-12s\n", "#", "suspect", "explained",
              "contradicts");
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%-4zu %-30s %-10d %-12d%s\n", i + 1,
                fault_name(nl, ranked[i].fault).c_str(), ranked[i].explained,
                ranked[i].contradictions,
                ranked[i].fault == defect ? "  <-- injected" : "");
  }
  return 0;
}

int cmd_selftest() {
  // End-to-end on the embedded s27: scan, test, export, replay, diagnose.
  Netlist nl = iscas_s27();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  if (!model.check().empty()) return 1;
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);
  if (r.easy_verified != r.easy || r.s3_undetected != 0) return 1;

  const TestProgram p = make_chain_test_program(model, r);
  if (run_test_program(lv, p) != 0) return 1;
  std::size_t covered = 0, killed = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultOutcome o = r.outcome[i];
    if (o == FaultOutcome::EasyAlternating || o == FaultOutcome::DetectedComb ||
        o == FaultOutcome::DetectedSeq || o == FaultOutcome::DetectedFinal) {
      ++covered;
      killed += (run_test_program(lv, p, &faults[i]) > 0);
    }
  }
  std::printf("selftest: %zu/%zu covered faults killed by the program\n",
              killed, covered);
  return killed == covered ? 0 : 1;
}

void print_usage() {
  std::printf(
      "usage: fsct <command> [args] [options]\n"
      "\n"
      "commands:\n"
      "  stats    <circuit.bench>                netlist statistics\n"
      "  scan     <circuit.bench> [-o out.bench] insert a TPI scan chain\n"
      "  test     <circuit.bench> [-o prog.fsct] full screening pipeline\n"
      "  replay   <prog.fsct> <circuit.bench>    run a program on a device\n"
      "  diagnose <circuit.bench> --fault NET V  rank chain-defect suspects\n"
      "  selftest                                end-to-end check on s27\n"
      "\n"
      "options:\n"
      "  --chains N        number of scan chains to insert (default 1)\n"
      "  --partial M       permille of flip-flops scanned (default 1000)\n"
      "  --jobs N          parallel executors; 0 = one per hardware thread\n"
      "                    (default), 1 = serial — results are identical\n"
      "  -o FILE           output file (scan: netlist, test: program +\n"
      "                    FILE.bench)\n"
      "  --fault NET 0|1   stuck-at fault to inject (replay, diagnose)\n"
      "  --trace FILE      write a Chrome trace-event JSON of the run;\n"
      "                    load in chrome://tracing or Perfetto (test)\n"
      "  --metrics FILE    write a structured JSON run report: results,\n"
      "                    counters, histograms, pool stats (test)\n"
      "  -v, --verbose     per-phase progress lines on stderr (test)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_usage();
    return 0;
  }
  try {
    const Args a = parse(argc, argv);
    if (cmd == "stats") return cmd_stats(a);
    if (cmd == "scan") return cmd_scan(a);
    if (cmd == "test") return cmd_test(a);
    if (cmd == "replay") return cmd_replay(a);
    if (cmd == "diagnose") return cmd_diagnose(a);
    if (cmd == "selftest") return cmd_selftest();
    std::printf("unknown command '%s'\n", cmd.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    return 2;
  }
}
