// fsct — command-line front end for the functional-scan-chain-testing
// library.  The workflows a test engineer actually runs:
//
//   fsct stats    <circuit.bench>
//       structural statistics of a netlist.
//
//   fsct scan     <circuit.bench> [--chains N] [--partial permille]
//                 [-o scanned.bench]
//       insert a TPI functional scan chain, report the overhead, optionally
//       write the scanned netlist.
//
//   fsct test     <circuit.bench> [--chains N] [--partial permille]
//                 [--jobs N] [--simd-width W] [-o program.fsct]
//                 [--shards K] [--checkpoint F] [--checkpoint-interval MS]
//                 [--resume F]
//                 [--trace t.json] [--metrics m.json] [--profile p.json]
//                 [--folded p.folded] [--metrics-out m.prom] [-v]
//                 (alias: fsct run)
//       full flow: TPI + three-step screening pipeline; prints the paper's
//       Table-2/3 style summary and (with -o) writes the complete chain test
//       program (flush + vectors + verified sequential tests) plus the
//       scanned netlist it applies to (<out>.bench).  --trace writes a
//       Chrome trace-event JSON of the run, --metrics a structured JSON run
//       report, --profile a per-fault work-attribution hotspot profile
//       (fsct-profile-v1), --folded flamegraph folded stacks, --metrics-out
//       an OpenMetrics text exposition, -v streams per-phase progress to
//       stderr.
//
//   fsct profile  <profile.json|report.json> [--top K]
//       render a saved hotspot profile (or the attribution section of a
//       fsct-run-report-v2) as the hardest-fault table.
//
//   fsct replay   <program.fsct> <circuit.bench> [--fault NET 0|1]
//       run a test program against a (possibly faulty) device; exit status 1
//       when strobes mismatch.
//
//   fsct diagnose <circuit.bench> --fault NET 0|1 [--chains N]
//       inject a defect, apply the flush + marker loads, and rank suspects.
//
//   fsct selftest
//       end-to-end smoke test on the embedded ISCAS'89 s27.
//
//   fsct fuzz     [--seed S] [--iters N] [--offset K] [--oracles LIST]
//                 [--max-gates N] [--max-ffs N] [--jobs N] [--no-shrink]
//                 [-o DIR] | [--corpus DIR]
//       differential fuzzing of the library against itself (see
//       core/selfcheck.h); --corpus replays checked-in minimized repros.
//
//   fsct bench run [circuit ...] [--label L] [--reps N] [--warmup N]
//                  [--jobs N|N,M,...] [--max-gates N] [-o FILE]
//                  [--progress] [-v]
//       statistics-aware benchmark over the paper suite: warmup + N timed
//       repetitions per (circuit, jobs) point, median/MAD summaries, machine
//       fingerprint; writes BENCH_<label>.json (fsct-bench-v2).
//
//   fsct bench compare <old.json> <new.json> [--rel-threshold P] [--mad-k K]
//       noise-aware diff of two bench documents; exit 1 on regression,
//       2 on structural mismatch or malformed input.
//
//   fsct serve    --socket PATH | --port N [--workers N] [--queue N]
//                 [--cache-mb N] [--http-port N | --http-socket PATH]
//                 [--request-log FILE] [-v]
//       long-running screening daemon: newline-delimited JSON requests over
//       a Unix-domain or loopback-TCP socket, compiled-circuit and result
//       caches, bounded priority queue with backpressure, per-session
//       progress streaming, graceful drain on SIGTERM (see src/serve/).
//       --http-port/--http-socket mount the observability plane (/metrics,
//       /healthz, /readyz, /statusz); --request-log appends one NDJSON line
//       per request (id, circuit hash, cache outcomes, phase latencies).
//
//   fsct stat     --socket PATH | --port N | http://127.0.0.1:N
//       scrape a running daemon's /metrics + /statusz and render a
//       one-screen status: uptime, queue, caches, latency quantiles,
//       in-flight sessions.
//
// Long runs: every pipeline-running command accepts SIGUSR1 and prints a
// live status dump (phase progress, worker stats, RSS, counters) without
// disturbing the run; --progress adds a periodic heartbeat line with ETA.
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <random>
#include <sstream>
#include <string>

#include "bench_circuits/paper_examples.h"
#include "bench_circuits/suite.h"
#include "core/bench_harness.h"
#include "core/diagnose.h"
#include "core/obs.h"
#include "core/pipeline.h"
#include "core/profile.h"
#include "core/selfcheck.h"
#include "core/test_export.h"
#include "core/json.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "scan/tpi.h"
#include "serve/http.h"
#include "serve/net.h"
#include "serve/serve.h"
#include "shard/shard.h"
#include "sim/soa_circuit.h"

namespace {

using namespace fsct;

/// Thrown for command-line mistakes; main() prints it to stderr, exit 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::vector<std::string> positional;
  int chains = 1;
  int partial = 1000;
  int jobs = 0;  // 0 = one executor per hardware thread
  int simd_width = 0;  // 0 = build-time default (FSCT_SIMD_WIDTH)
  std::string out;
  std::string fault_net;
  int fault_value = -1;
  std::string trace_path;    // --trace: Chrome trace-event JSON
  std::string metrics_path;  // --metrics: structured run report JSON
  std::string profile_path;  // --profile: fsct-profile-v1 hotspot JSON
  std::string folded_path;   // --folded: flamegraph folded-stack lines
  std::string metrics_out;   // --metrics-out: OpenMetrics text exposition
  int trace_max_mb = 0;      // --trace-max-mb: trace buffer cap, 0 = unbounded
  int top = 20;              // --top: hotlist size for profile output
  bool attribution = false;  // --attribution: per-fault ledger, no profile
  bool verbose = false;      // -v: per-phase progress on stderr
  bool progress = false;     // --progress: heartbeat lines on stderr
  bool no_dominance = false; // --no-dominance: plain target order, no credit
  // shard / checkpoint (test)
  int shards = 1;                  // --shards: worker process count
  std::string checkpoint_path;     // --checkpoint: fsct-ckpt-v1 snapshot file
  int checkpoint_interval_ms = 0;  // --checkpoint-interval: min ms between
  std::string resume_path;         // --resume: continue from a checkpoint
  // bench
  std::string label = "run";
  std::string note;
  int reps = 5;
  int warmup = 1;
  double rel_threshold = 0.10;
  double mad_k = 3.0;
  std::vector<int> jobs_list;  // --jobs N,M,... (bench run only)
  bool max_gates_set = false;
  // fuzz
  std::uint64_t seed = 1;
  int iters = 100;
  int offset = 0;
  int max_gates = 70;
  int max_ffs = 10;
  std::string oracles = "all";
  bool no_shrink = false;
  std::string corpus;
  // serve / stat
  std::string serve_socket;  // --socket: Unix-domain socket path
  int serve_port = -1;       // --port: loopback TCP port (0 = ephemeral)
  int workers = 1;           // --workers: concurrent screening sessions
  int queue_limit = 16;      // --queue: queued requests beyond in-flight
  int cache_mb = 256;        // --cache-mb: compiled-model cache budget
  std::string http_socket;   // --http-socket: observability HTTP unix socket
  int http_port = -1;        // --http-port: observability HTTP TCP port
  std::string request_log;   // --request-log: NDJSON request log file
};

/// Checked integer parse: the whole token must be a number and it must land
/// in [lo, hi].  std::atoi would silently turn "banana" into 0.
long long parse_int(const std::string& flag, const char* text, long long lo,
                    long long hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    throw UsageError(flag + ": invalid integer '" + text + "'");
  }
  if (errno == ERANGE || v < lo || v > hi) {
    throw UsageError(flag + ": value " + text + " out of range [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

/// Checked floating-point parse for threshold flags.
double parse_double(const std::string& flag, const char* text, double lo,
                    double hi) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    throw UsageError(flag + ": invalid number '" + text + "'");
  }
  if (errno == ERANGE || v < lo || v > hi) {
    throw UsageError(flag + ": value " + text + " out of range");
  }
  return v;
}

Args parse(int argc, char** argv) {
  Args a;
  const bool bench_cmd = std::strcmp(argv[1], "bench") == 0;
  int i = 2;
  // Consumes the flag's operand; rejects a missing one ("fsct test --jobs").
  auto operand = [&](const std::string& flag) -> const char* {
    if (i + 1 >= argc) throw UsageError(flag + " requires a value");
    return argv[++i];
  };
  auto int_operand = [&](const std::string& flag, long long lo, long long hi) {
    return parse_int(flag, operand(flag), lo, hi);
  };
  for (; i < argc; ++i) {
    const std::string s = argv[i];
    if (s == "--chains") {
      a.chains = static_cast<int>(int_operand(s, 1, 64));
    } else if (s == "--partial") {
      a.partial = static_cast<int>(int_operand(s, 0, 1000));
    } else if (s == "--jobs") {
      const std::string v = operand(s);
      if (bench_cmd && v.find(',') != std::string::npos) {
        // bench run sweeps several job counts: --jobs 1,4
        std::size_t start = 0;
        while (start <= v.size()) {
          const std::size_t comma = v.find(',', start);
          const std::string tok =
              v.substr(start, comma == std::string::npos ? comma
                                                         : comma - start);
          a.jobs_list.push_back(
              static_cast<int>(parse_int(s, tok.c_str(), 0, 4096)));
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      } else {
        a.jobs = static_cast<int>(parse_int(s, v.c_str(), 0, 4096));
        a.jobs_list = {a.jobs};
      }
    } else if (s == "--simd-width") {
      a.simd_width = static_cast<int>(int_operand(s, 1, 4096));
      if (!is_valid_simd_width(a.simd_width)) {
        throw UsageError("--simd-width: expected 64, 256 or 512, got " +
                         std::to_string(a.simd_width));
      }
    } else if (s == "--label") {
      a.label = operand(s);
    } else if (s == "--note") {
      a.note = operand(s);
    } else if (s == "--reps") {
      a.reps = static_cast<int>(int_operand(s, 1, 1000));
    } else if (s == "--warmup") {
      a.warmup = static_cast<int>(int_operand(s, 0, 100));
    } else if (s == "--rel-threshold") {
      a.rel_threshold = parse_double(s, operand(s), 0.0, 100.0);
    } else if (s == "--mad-k") {
      a.mad_k = parse_double(s, operand(s), 0.0, 1000.0);
    } else if (s == "--progress") {
      a.progress = true;
    } else if (s == "-o") {
      a.out = operand(s);
    } else if (s == "--fault") {
      a.fault_net = operand(s);
      a.fault_value = static_cast<int>(int_operand("--fault value", 0, 1));
    } else if (s == "--trace") {
      a.trace_path = operand(s);
    } else if (s == "--metrics") {
      a.metrics_path = operand(s);
    } else if (s == "--profile") {
      a.profile_path = operand(s);
    } else if (s == "--folded") {
      a.folded_path = operand(s);
    } else if (s == "--metrics-out") {
      a.metrics_out = operand(s);
    } else if (s == "--trace-max-mb") {
      a.trace_max_mb = static_cast<int>(int_operand(s, 1, 65536));
    } else if (s == "--top") {
      a.top = static_cast<int>(int_operand(s, 1, 1000000));
    } else if (s == "--attribution") {
      a.attribution = true;
    } else if (s == "--seed") {
      a.seed = static_cast<std::uint64_t>(
          int_operand(s, 0, std::numeric_limits<long long>::max()));
    } else if (s == "--iters") {
      a.iters = static_cast<int>(int_operand(s, 1, 100000000));
    } else if (s == "--offset") {
      a.offset = static_cast<int>(int_operand(s, 0, 100000000));
    } else if (s == "--max-gates") {
      a.max_gates = static_cast<int>(int_operand(s, 15, 100000));
      a.max_gates_set = true;
    } else if (s == "--max-ffs") {
      a.max_ffs = static_cast<int>(int_operand(s, 2, 10000));
    } else if (s == "--oracles") {
      a.oracles = operand(s);
    } else if (s == "--socket") {
      a.serve_socket = operand(s);
    } else if (s == "--port") {
      a.serve_port = static_cast<int>(int_operand(s, 0, 65535));
    } else if (s == "--workers") {
      a.workers = static_cast<int>(int_operand(s, 1, 256));
    } else if (s == "--queue") {
      a.queue_limit = static_cast<int>(int_operand(s, 1, 100000));
    } else if (s == "--cache-mb") {
      a.cache_mb = static_cast<int>(int_operand(s, 1, 1 << 20));
    } else if (s == "--http-socket") {
      a.http_socket = operand(s);
    } else if (s == "--http-port") {
      a.http_port = static_cast<int>(int_operand(s, 0, 65535));
    } else if (s == "--request-log") {
      a.request_log = operand(s);
    } else if (s == "--shards") {
      a.shards = static_cast<int>(int_operand(s, 1, 64));
    } else if (s == "--checkpoint") {
      a.checkpoint_path = operand(s);
    } else if (s == "--checkpoint-interval") {
      a.checkpoint_interval_ms = static_cast<int>(int_operand(s, 0, 86400000));
    } else if (s == "--resume") {
      a.resume_path = operand(s);
    } else if (s == "--no-shrink") {
      a.no_shrink = true;
    } else if (s == "--no-dominance") {
      a.no_dominance = true;
    } else if (s == "--corpus") {
      a.corpus = operand(s);
    } else if (s == "-v" || s == "--verbose") {
      a.verbose = true;
    } else if (!s.empty() && s[0] == '-' && s != "-") {
      throw UsageError("unknown option '" + s + "' (see 'fsct help')");
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

const std::string& positional(const Args& a, std::size_t k,
                              const char* what) {
  if (k >= a.positional.size()) {
    throw UsageError(std::string("missing ") + what + " operand");
  }
  return a.positional[k];
}

void require_unscanned(const Netlist& nl) {
  if (nl.find("scan_mode") != kNullNode) {
    throw std::runtime_error(
        "circuit already contains a scan_mode input — pass the pre-scan "
        "netlist (this command inserts the scan chain itself)");
  }
}

Fault find_fault(const Netlist& nl, const Args& a) {
  const NodeId n = nl.find(a.fault_net);
  if (n == kNullNode) {
    throw std::runtime_error("unknown net: " + a.fault_net);
  }
  return Fault{n, -1, a.fault_value != 0};
}

int cmd_stats(const Args& a) {
  const Netlist nl = read_bench_file(positional(a, 0, "<circuit.bench>"));
  std::printf("%s\n%s", nl.name().c_str(),
              stats_string(compute_stats(nl)).c_str());
  return 0;
}

int cmd_scan(const Args& a) {
  Netlist nl = read_bench_file(positional(a, 0, "<circuit.bench>"));
  require_unscanned(nl);
  TpiOptions topt;
  topt.num_chains = a.chains;
  topt.scan_permille = a.partial;
  TpiStats stats;
  const ScanDesign d = run_tpi(nl, topt, &stats);
  std::printf("%s: %d functional links, %d scan muxes, %d test points, "
              "%d pinned PIs\n",
              nl.name().c_str(), stats.functional_segments,
              stats.mux_segments, stats.test_points, stats.assigned_pis);
  for (std::size_t c = 0; c < d.chains.size(); ++c) {
    std::printf("chain %zu: scan_in=%s length=%zu scan_out=%s\n", c,
                nl.node_name(d.chains[c].scan_in).c_str(),
                d.chains[c].length(),
                nl.node_name(d.chains[c].scan_out()).c_str());
  }
  if (!a.out.empty()) {
    std::ofstream os(a.out);
    write_bench(os, nl);
    std::printf("wrote %s\n", a.out.c_str());
  }
  return 0;
}

/// Resolves a circuit operand: an existing .bench file wins; otherwise a
/// paper-suite name ("s1423") builds the synthetic stand-in, the same
/// resolution `fsct bench run` uses.
Netlist load_circuit(const std::string& arg) {
  if (!std::filesystem::exists(arg)) {
    try {
      return build_suite_circuit(suite_entry(arg));
    } catch (const std::exception&) {
      // Not a suite name either: fall through to the file error below,
      // which names the path the user asked for.
    }
  }
  return read_bench_file(arg);
}

int cmd_test(const Args& a) {
  Netlist nl = load_circuit(positional(a, 0, "<circuit.bench>"));
  require_unscanned(nl);
  TpiOptions topt;
  topt.num_chains = a.chains;
  topt.scan_permille = a.partial;
  const ScanDesign d = run_tpi(nl, topt);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  if (const std::string err = model.check(); !err.empty()) {
    std::printf("scan-mode invariant violated: %s\n", err.c_str());
    return 2;
  }
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_easy = true;
  opt.jobs = a.jobs;
  opt.simd_width = a.simd_width;
  opt.dominance = !a.no_dominance;

  ObsRegistry reg;
  // --profile / --folded imply the attribution ledger; the phase breakdown in
  // the profile additionally needs trace spans.
  const bool want_profile =
      !a.profile_path.empty() || !a.folded_path.empty();
  const bool want_attr = a.attribution || want_profile;
  const bool want_obs = !a.trace_path.empty() || !a.metrics_path.empty() ||
                        !a.metrics_out.empty() || want_attr || a.verbose ||
                        a.progress;
  if (want_obs) {
    opt.obs = &reg;
    reg.enable_trace(!a.trace_path.empty() || want_profile);
    if (a.trace_max_mb) {
      reg.set_trace_limit_bytes(static_cast<std::size_t>(a.trace_max_mb) *
                                1024 * 1024);
    }
    if (want_attr) reg.request_attribution();
    reg.set_context(nl.name());
    if (a.verbose) {
      reg.progress = [](const std::string& line) {
        std::fprintf(stderr, "[fsct] %s\n", line.c_str());
      };
    }
  }
  // Sharded execution kicks in for --shards > 1 and whenever a checkpoint
  // is involved (--checkpoint/--resume run through the shard runner even at
  // one shard, so the checkpoint cadence is shard-count independent).
  const bool use_shards = a.shards > 1 || !a.checkpoint_path.empty() ||
                          !a.resume_path.empty();
  PipelineResult r;
  if (use_shards) {
    ShardOptions shopt;
    shopt.shards = a.shards;
    shopt.checkpoint_path = a.checkpoint_path;
    shopt.checkpoint_interval_ms = a.checkpoint_interval_ms;
    shopt.resume_path = a.resume_path;
    shopt.catch_sigterm = !a.checkpoint_path.empty();
    // Fork the workers BEFORE any thread exists in this process (the
    // ObsMonitor heartbeat thread, the pipeline pool): a fork after that
    // would clone locked mutexes into the children.
    ShardRunner runner(model, faults, opt, shopt);
    install_sigusr1_handler();
    try {
      ObsMonitor::Options mopt;
      mopt.heartbeat = a.progress;
      const ObsMonitor monitor(mopt);
      r = runner.run();
    } catch (const PipelineStopped& e) {
      std::fprintf(stderr, "fsct test: %s\n", e.what());
      if (!a.checkpoint_path.empty()) {
        std::fprintf(stderr,
                     "fsct test: checkpoint written to %s — resume with "
                     "--resume %s\n",
                     a.checkpoint_path.c_str(), a.checkpoint_path.c_str());
      }
      return 3;
    }
  } else {
    install_sigusr1_handler();
    ObsMonitor::Options mopt;
    mopt.heartbeat = a.progress;
    const ObsMonitor monitor(mopt);  // SIGUSR1 dumps; heartbeat on --progress
    r = run_fsct_pipeline(model, faults, opt);
  }

  if (!a.trace_path.empty()) {
    std::ofstream ts(a.trace_path);
    if (!ts) throw std::runtime_error("cannot open " + a.trace_path);
    reg.write_trace(ts);
    std::printf("wrote trace %s (%zu spans)\n", a.trace_path.c_str(),
                reg.trace_event_count());
  }
  AttrContext actx;
  if (want_attr) actx = make_attr_context(lv, faults, !a.no_dominance);
  if (!a.metrics_path.empty()) {
    std::ofstream ms(a.metrics_path);
    if (!ms) throw std::runtime_error("cannot open " + a.metrics_path);
    if (use_shards) {
      // Stamp process-topology provenance the same way the daemon stamps
      // "serve": inside the report, stripped by normalized_report, so the
      // sharded-vs-single-process bitwise identity contract never sees it.
      std::ostringstream rs;
      reg.write_run_report(rs, r, want_attr ? &actx : nullptr);
      std::string report = rs.str();
      const std::size_t brace = report.rfind('}');
      if (brace != std::string::npos) {
        report.insert(brace, ", \"shard\": {\"shards\": " +
                                 std::to_string(a.shards) +
                                 ", \"resumed\": " +
                                 (a.resume_path.empty() ? "false" : "true") +
                                 "}");
      }
      ms << report;
    } else {
      reg.write_run_report(ms, r, want_attr ? &actx : nullptr);
    }
    std::printf("wrote metrics %s\n", a.metrics_path.c_str());
  }
  if (!a.metrics_out.empty()) {
    std::ofstream os(a.metrics_out);
    if (!os) throw std::runtime_error("cannot open " + a.metrics_out);
    reg.write_openmetrics(os);
    std::printf("wrote OpenMetrics %s\n", a.metrics_out.c_str());
  }
  if (want_profile) {
    const ProfileDoc doc = build_profile(reg, actx, nl.name(),
                                         static_cast<std::size_t>(a.top));
    if (!a.profile_path.empty()) {
      std::ofstream ps(a.profile_path);
      if (!ps) throw std::runtime_error("cannot open " + a.profile_path);
      write_profile_json(ps, doc);
      std::printf("wrote profile %s (%zu active faults)\n",
                  a.profile_path.c_str(), doc.active);
    }
    if (!a.folded_path.empty()) {
      std::ofstream fs(a.folded_path);
      if (!fs) throw std::runtime_error("cannot open " + a.folded_path);
      write_folded(fs, doc);
      std::printf("wrote folded stacks %s (%zu phase nodes)\n",
                  a.folded_path.c_str(), doc.phases.size());
    }
  }

  std::printf("jobs: %u | classify %.3fs | step 2 %.3fs | step 3 %.3fs\n",
              r.jobs_used, r.classify_seconds, r.s2_seconds, r.s3_seconds);
  if (use_shards) {
    std::printf("shards: %d worker process%s%s\n", a.shards,
                a.shards == 1 ? "" : "es",
                a.resume_path.empty() ? "" : " (resumed from checkpoint)");
  }
  std::printf("%zu faults | affecting %zu (%.1f%%) | easy %zu (verified %zu) "
              "| hard %zu\n",
              r.total_faults, r.affecting(),
              100.0 * static_cast<double>(r.affecting()) /
                  static_cast<double>(r.total_faults ? r.total_faults : 1),
              r.easy, r.easy_verified, r.hard);
  if (!a.no_dominance) {
    std::printf("dominance: %zu targets, %zu flush-credited, "
                "%zu ledger-dropped\n",
                r.dominance_targets, r.flush_detected, r.ledger_dropped);
  }
  std::printf("step 2: %zu detected with %zu vectors, %zu undetectable\n",
              r.s2_detected, r.s2_vectors, r.s2_undetectable);
  std::printf("step 3: %zu detected, %zu undetectable, %zu undetected "
              "(%zu+%zu circuit models)\n",
              r.s3_detected, r.s3_undetectable, r.s3_undetected,
              r.s3_circuits_group, r.s3_circuits_final);

  if (!a.out.empty()) {
    const TestProgram p = make_chain_test_program(model, r);
    std::ofstream os(a.out);
    write_test_program(os, p);
    // The program runs on the *scanned* device: ship that netlist alongside.
    std::ofstream bos(a.out + ".bench");
    write_bench(bos, nl);
    std::printf("wrote %s (%zu cycles) and %s.bench\n", a.out.c_str(),
                p.stimulus.size(), a.out.c_str());
  }
  return r.s3_undetected == 0 ? 0 : 1;
}

int cmd_replay(const Args& a) {
  const std::string& prog = positional(a, 0, "<program.fsct>");
  const std::string& bench = positional(a, 1, "<circuit.bench>");
  std::ifstream is(prog);
  if (!is) throw std::runtime_error("cannot open " + prog);
  const TestProgram p = read_test_program(is);
  const Netlist nl = read_bench_file(bench);
  const Levelizer lv(nl);
  std::size_t mismatches;
  if (!a.fault_net.empty()) {
    const Fault f = find_fault(nl, a);
    mismatches = run_test_program(lv, p, &f);
    std::printf("with %s: ", fault_name(nl, f).c_str());
  } else {
    mismatches = run_test_program(lv, p);
  }
  std::printf("%zu strobe mismatches -> %s\n", mismatches,
              mismatches ? "FAIL" : "PASS");
  return mismatches ? 1 : 0;
}

int cmd_diagnose(const Args& a) {
  Netlist nl = read_bench_file(positional(a, 0, "<circuit.bench>"));
  require_unscanned(nl);
  TpiOptions topt;
  topt.num_chains = a.chains;
  const ScanDesign d = run_tpi(nl, topt);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const Fault defect = find_fault(nl, a);

  ScanSequenceBuilder sb(nl, d);
  TestSequence seq = sb.alternating(2 * model.max_chain_length() + 8);
  std::mt19937_64 rng(7);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<Val>> marker(d.chains.size());
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      marker[c].resize(d.chains[c].length());
      for (auto& v : marker[c]) v = (rng() & 1) ? Val::One : Val::Zero;
    }
    const TestSequence load = sb.load_state(marker);
    seq.insert(seq.end(), load.begin(), load.end());
    for (std::size_t i = 0; i < model.max_chain_length() + 2; ++i) {
      seq.push_back(sb.base_vector(Val::Zero));
    }
  }
  ChainDiagnoser diag(model);
  const ObservedResponse obs = diag.make_response(seq, defect);
  const auto faults = collapsed_fault_list(nl);
  const auto ranked = diag.diagnose(obs, faults, 8);
  std::printf("%-4s %-30s %-10s %-12s\n", "#", "suspect", "explained",
              "contradicts");
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%-4zu %-30s %-10d %-12d%s\n", i + 1,
                fault_name(nl, ranked[i].fault).c_str(), ranked[i].explained,
                ranked[i].contradictions,
                ranked[i].fault == defect ? "  <-- injected" : "");
  }
  return 0;
}

int cmd_selftest() {
  // End-to-end on the embedded s27: scan, test, export, replay, diagnose.
  Netlist nl = iscas_s27();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  if (!model.check().empty()) return 1;
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);
  if (r.easy_verified != r.easy || r.s3_undetected != 0) return 1;

  const TestProgram p = make_chain_test_program(model, r);
  if (run_test_program(lv, p) != 0) return 1;
  std::size_t covered = 0, killed = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultOutcome o = r.outcome[i];
    if (o == FaultOutcome::EasyAlternating ||
        o == FaultOutcome::DetectedFlush || o == FaultOutcome::DetectedComb ||
        o == FaultOutcome::DetectedSeq || o == FaultOutcome::DetectedFinal) {
      ++covered;
      killed += (run_test_program(lv, p, &faults[i]) > 0);
    }
  }
  std::printf("selftest: %zu/%zu covered faults killed by the program\n",
              killed, covered);
  return killed == covered ? 0 : 1;
}

/// Replays every minimized .bench repro in `dir` through all the oracles in
/// both scan styles (a fixed spread of check seeds); these are the bugs the
/// fuzzer has found historically, kept as cheap regressions.
int run_corpus(const Args& a) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& ent : fs::directory_iterator(a.corpus)) {
    if (ent.path().extension() == ".bench") files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "fuzz: no .bench files under %s\n",
                 a.corpus.c_str());
    return 2;
  }
  int bad = 0;
  for (const fs::path& f : files) {
    const Netlist nl = read_bench_file(f.string());
    std::string diag;
    for (int style = 0; style < 2 && diag.empty(); ++style) {
      for (std::uint64_t cs : {1ull, 7ull, 1234567ull}) {
        SelfcheckConfig cfg;
        cfg.oracles = parse_oracle_mask(a.oracles);
        cfg.use_tpi = style == 0;
        cfg.jobs = a.jobs > 0 ? a.jobs : 4;
        cfg.check_seed = cs;
        diag = selfcheck_circuit(nl, cfg);
        if (!diag.empty()) break;
      }
    }
    if (diag.empty()) {
      std::printf("corpus %-40s OK\n", f.filename().c_str());
    } else {
      std::printf("corpus %-40s FAIL: %s\n", f.filename().c_str(),
                  diag.c_str());
      ++bad;
    }
  }
  std::printf("corpus: %zu circuits, %d failing\n", files.size(), bad);
  return bad ? 1 : 0;
}

int cmd_fuzz(const Args& a) {
  if (!a.corpus.empty()) return run_corpus(a);

  FuzzOptions opt;
  opt.seed = a.seed;
  opt.iterations = a.iters;
  opt.offset = a.offset;
  opt.oracles = parse_oracle_mask(a.oracles);
  opt.jobs = a.jobs > 0 ? a.jobs : 4;
  opt.max_gates = a.max_gates;
  opt.max_ffs = a.max_ffs;
  opt.shrink = !a.no_shrink;
  if (a.verbose) {
    opt.progress = [](const std::string& line) {
      std::fprintf(stderr, "[fuzz] %s\n", line.c_str());
    };
  }
  const FuzzReport rep = run_fuzz(opt);

  std::printf("fuzz: %d iterations (seed %llu, offset %d), oracle runs:",
              rep.iterations, static_cast<unsigned long long>(a.seed),
              a.offset);
  for (std::size_t i = 0; i < kNumOracles; ++i) {
    std::printf(" %s=%llu", oracle_name(i),
                static_cast<unsigned long long>(rep.oracle_runs[i]));
  }
  std::printf(" parser-probes=%llu\n",
              static_cast<unsigned long long>(rep.parser_probes));

  for (const FuzzFailure& f : rep.failures) {
    std::printf("FAIL iteration %d: %s\n", f.iteration, f.diagnostic.c_str());
    std::printf("  scan style: %s, chains %d, permille %d, check seed %llu\n",
                f.config.use_tpi ? "tpi" : "mux", f.config.chains,
                f.config.scan_permille,
                static_cast<unsigned long long>(f.config.check_seed));
    std::printf("  repro: %s\n", f.repro.c_str());
    const std::string dir = a.out.empty() ? "." : a.out;
    std::filesystem::create_directories(dir);
    const std::string path =
        dir + "/fuzz_min_" + std::to_string(f.iteration) + ".bench";
    std::ofstream os(path);
    os << write_bench_string(f.minimized);
    std::printf("  minimized circuit (%zu nodes): %s\n", f.minimized.size(),
                path.c_str());
  }
  std::printf("fuzz: %zu failure(s)\n", rep.failures.size());
  return rep.ok() ? 0 : 1;
}

int cmd_bench_run(const Args& a) {
  if (!valid_bench_label(a.label)) {
    throw UsageError("invalid label '" + a.label +
                     "' (allowed characters: A-Z a-z 0-9 . _ -)");
  }
  BenchRunConfig cfg;
  cfg.label = a.label;
  cfg.note = a.note;
  cfg.circuits.assign(a.positional.begin() + 1, a.positional.end());
  if (a.max_gates_set) cfg.max_gates = a.max_gates;
  if (!a.jobs_list.empty()) cfg.jobs = a.jobs_list;
  cfg.reps = a.reps;
  cfg.warmup = a.warmup;
  cfg.attribution = a.attribution;
  if (a.verbose || a.progress) {
    cfg.progress = [](const std::string& line) {
      std::fprintf(stderr, "[bench] %s\n", line.c_str());
    };
  }

  install_sigusr1_handler();
  BenchDocument doc;
  {
    ObsMonitor::Options mopt;
    mopt.heartbeat = a.progress;
    const ObsMonitor monitor(mopt);
    doc = run_bench(cfg);
  }
  for (const std::string& w : doc.warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }

  const std::string path =
      a.out.empty() ? "BENCH_" + a.label + ".json" : a.out;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path);
  os << write_bench_json(doc);
  std::printf("wrote %s (%zu rows, %d reps + %d warmup)\n", path.c_str(),
              doc.rows.size(), doc.reps, doc.warmup);
  return 0;
}

int cmd_bench_compare(const Args& a) {
  const std::string& old_path = positional(a, 1, "<old.json>");
  const std::string& new_path = positional(a, 2, "<new.json>");
  const BenchDocument old_doc = read_bench_document(old_path);
  const BenchDocument new_doc = read_bench_document(new_path);
  CompareOptions copt;
  copt.rel_threshold = a.rel_threshold;
  copt.mad_k = a.mad_k;
  const CompareReport rep = compare_bench(old_doc, new_doc, copt);
  print_compare_report(std::cout, rep);
  return rep.exit_code();
}

int cmd_profile(const Args& a) {
  const std::string& path = positional(a, 0, "<profile.json|report.json>");
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  const ProfileDoc doc = parse_profile_json(ss.str(), path);
  print_profile(std::cout, doc, static_cast<std::size_t>(a.top));
  return 0;
}

int cmd_serve(const Args& a) {
  if (a.serve_socket.empty() && a.serve_port < 0) {
    throw UsageError("serve: pass --socket PATH or --port N");
  }
  if (!a.serve_socket.empty() && a.serve_port >= 0) {
    throw UsageError("serve: --socket and --port are mutually exclusive");
  }
  if (!a.http_socket.empty() && a.http_port >= 0) {
    throw UsageError(
        "serve: --http-socket and --http-port are mutually exclusive");
  }
  ServeOptions sopt;
  sopt.unix_path = a.serve_socket;
  sopt.tcp_port = a.serve_port;
  sopt.workers = a.workers;
  sopt.queue_limit = static_cast<std::size_t>(a.queue_limit);
  sopt.cache_mb = static_cast<std::size_t>(a.cache_mb);
  sopt.http_unix_path = a.http_socket;
  sopt.http_port = a.http_port;
  sopt.request_log_path = a.request_log;
  sopt.verbose = true;  // a daemon's lifecycle lines are ops, not chatter
  ServeServer server(sopt);
  if (a.serve_port >= 0) {
    std::printf("fsct serve: listening on 127.0.0.1:%d\n", server.port());
    std::fflush(stdout);
  }
  if (a.http_port >= 0) {
    std::printf("fsct serve: metrics on 127.0.0.1:%d\n", server.http_port());
    std::fflush(stdout);
  }
  // SIGUSR1 prints the status of whatever request is in flight (the global
  // status registry is set per pipeline run), pinned for the daemon's life.
  install_sigusr1_handler();
  const ObsMonitor monitor;
  server.run();  // returns after the SIGTERM/SIGINT drain completes
  return 0;
}

/// One GET against the daemon's observability plane; target resolved from
/// --socket (HTTP over the unix socket), --port, or a http://127.0.0.1:N
/// positional URL.  A fresh connection per request (the server closes after
/// each response).
HttpResult stat_get(const Args& a, const std::string& target) {
  int fd;
  if (!a.serve_socket.empty()) {
    fd = connect_unix(a.serve_socket);
  } else if (a.serve_port >= 0) {
    fd = connect_tcp(a.serve_port);
  } else {
    const std::string& url =
        positional(a, 0, "<--socket PATH | --port N | URL>");
    const std::string prefix = "http://";
    if (url.compare(0, prefix.size(), prefix) != 0) {
      throw UsageError("stat: expected --socket, --port or a http:// URL");
    }
    const std::size_t colon = url.rfind(':');
    const std::string host = url.substr(prefix.size(),
                                        colon - prefix.size());
    if (colon == std::string::npos || colon < prefix.size() ||
        (host != "127.0.0.1" && host != "localhost")) {
      throw UsageError("stat: only http://127.0.0.1:PORT (or localhost) URLs "
                       "are supported — the daemon listens on loopback only");
    }
    std::string port_str = url.substr(colon + 1);
    if (const std::size_t slash = port_str.find('/');
        slash != std::string::npos) {
      port_str.erase(slash);
    }
    fd = connect_tcp(static_cast<int>(
        parse_int("stat URL port", port_str.c_str(), 1, 65535)));
  }
  return http_get_fd(fd, target);
}

/// Parsed /metrics scrape: plain (label-free) samples by name, histogram
/// families by their cumulative bucket sequence in exposition order.
struct MetricsScrape {
  std::map<std::string, double> flat;
  std::map<std::string, std::vector<double>> bucket_cum;
};

MetricsScrape parse_metrics(const std::string& text) {
  MetricsScrape m;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string name = line;
    std::size_t value_at;
    const std::size_t brace = line.find('{');
    if (brace != std::string::npos) {
      name = line.substr(0, brace);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) continue;
      value_at = close + 2;
    } else {
      const std::size_t sp = line.find(' ');
      if (sp == std::string::npos) continue;
      name = line.substr(0, sp);
      value_at = sp + 1;
    }
    if (value_at >= line.size()) continue;
    const double v = std::strtod(line.c_str() + value_at, nullptr);
    const std::string bucket_suffix = "_bucket";
    if (name.size() > bucket_suffix.size() &&
        name.compare(name.size() - bucket_suffix.size(), bucket_suffix.size(),
                     bucket_suffix) == 0) {
      m.bucket_cum[name.substr(0, name.size() - bucket_suffix.size())]
          .push_back(v);
    } else {
      m.flat[name] = v;
    }
  }
  return m;
}

/// De-cumulates a scraped bucket sequence back into the log2 bucket array
/// hist_quantile expects.  Sequences of the wrong length (not an fsct
/// histogram) come back empty.
std::array<std::uint64_t, kHistBuckets> decumulate(
    const std::vector<double>& cum) {
  std::array<std::uint64_t, kHistBuckets> b{};
  if (cum.size() != kHistBuckets) return b;
  double prev = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    b[i] = static_cast<std::uint64_t>(cum[i] - prev);
    prev = cum[i];
  }
  return b;
}

int cmd_stat(const Args& a) {
  const HttpResult metrics = stat_get(a, "/metrics");
  if (metrics.status != 200) {
    throw std::runtime_error("stat: /metrics returned HTTP " +
                             std::to_string(metrics.status));
  }
  const HttpResult statusz = stat_get(a, "/statusz");
  if (statusz.status != 200) {
    throw std::runtime_error("stat: /statusz returned HTTP " +
                             std::to_string(statusz.status));
  }
  const MetricsScrape m = parse_metrics(metrics.body);
  const auto flat = [&m](const char* name) -> double {
    const auto it = m.flat.find(name);
    return it == m.flat.end() ? 0 : it->second;
  };

  std::printf("fsct daemon: up %.1fs%s\n",
              flat("fsct_serve_uptime_seconds"),
              flat("fsct_serve_draining") != 0 ? "  [DRAINING]" : "");
  std::printf("  workers %lld | queue %lld (high-water %lld) | "
              "active sessions %lld\n",
              static_cast<long long>(flat("fsct_serve_workers")),
              static_cast<long long>(flat("fsct_serve_queue_depth")),
              static_cast<long long>(flat("fsct_serve_queue_highwater")),
              static_cast<long long>(flat("fsct_serve_active_sessions")));
  std::printf("  requests %lld: %lld ok, %lld error, %lld busy-rejected, "
              "%lld drain-rejected\n",
              static_cast<long long>(flat("fsct_serve_requests_total")),
              static_cast<long long>(flat("fsct_serve_requests_ok_total")),
              static_cast<long long>(flat("fsct_serve_requests_error_total")),
              static_cast<long long>(flat("fsct_serve_rejected_busy_total")),
              static_cast<long long>(
                  flat("fsct_serve_rejected_draining_total")));
  std::printf("  model cache: %lld hits / %lld misses / %lld evictions | "
              "%lld entries, %.1f MB\n",
              static_cast<long long>(flat("fsct_serve_model_cache_hits_total")),
              static_cast<long long>(
                  flat("fsct_serve_model_cache_misses_total")),
              static_cast<long long>(
                  flat("fsct_serve_model_cache_evictions_total")),
              static_cast<long long>(flat("fsct_serve_model_cache_entries")),
              flat("fsct_serve_model_cache_bytes") / (1024.0 * 1024.0));
  std::printf("  result cache: %lld hits / %lld misses / %lld evictions | "
              "%lld entries\n",
              static_cast<long long>(
                  flat("fsct_serve_result_cache_hits_total")),
              static_cast<long long>(
                  flat("fsct_serve_result_cache_misses_total")),
              static_cast<long long>(
                  flat("fsct_serve_result_cache_evictions_total")),
              static_cast<long long>(flat("fsct_serve_result_cache_entries")));

  std::printf("  latency p50/p90/p99 (ms):\n");
  const struct { const char* label; const char* family; } kPhases[] = {
      {"queue-wait", "fsct_serve_latency_queue_us"},
      {"compile", "fsct_serve_latency_compile_us"},
      {"pipeline", "fsct_serve_latency_pipeline_us"},
      {"serialize", "fsct_serve_latency_serialize_us"},
  };
  for (const auto& ph : kPhases) {
    const auto it = m.bucket_cum.find(ph.family);
    if (it == m.bucket_cum.end()) continue;
    const auto buckets = decumulate(it->second);
    const double p50 = hist_quantile(buckets, 0.50);
    const double p90 = hist_quantile(buckets, 0.90);
    const double p99 = hist_quantile(buckets, 0.99);
    if (p50 < 0) {
      std::printf("    %-10s (no samples)\n", ph.label);
    } else {
      std::printf("    %-10s %8.2f / %8.2f / %8.2f\n", ph.label, p50 / 1e3,
                  p90 / 1e3, p99 / 1e3);
    }
  }

  // In-flight sessions from /statusz (phase/done/total come from each
  // session's live registry).
  JsonParser p(statusz.body, "/statusz");
  const JVal v = p.parse();
  if (const JVal* sessions = v.find("active_sessions");
      sessions && sessions->kind == JVal::Arr && !sessions->arr.empty()) {
    std::printf("  in-flight:\n");
    for (const JVal& s : sessions->arr) {
      const JVal* rid = s.find("request_id");
      const JVal* id = s.find("id");
      const JVal* circuit = s.find("circuit");
      const JVal* phase = s.find("phase");
      const JVal* done = s.find("done");
      const JVal* total = s.find("total");
      const JVal* elapsed = s.find("elapsed_seconds");
      std::printf("    #%lld id=%s circuit=%s %.1fs",
                  rid && rid->kind == JVal::Num
                      ? static_cast<long long>(rid->num)
                      : 0LL,
                  id && id->kind == JVal::Str && !id->str.empty()
                      ? id->str.c_str()
                      : "-",
                  circuit && circuit->kind == JVal::Str
                      ? circuit->str.c_str()
                      : "?",
                  elapsed && elapsed->kind == JVal::Num ? elapsed->num : 0.0);
      if (phase && phase->kind == JVal::Str) {
        std::printf("  %s %lld/%lld", phase->str.c_str(),
                    done && done->kind == JVal::Num
                        ? static_cast<long long>(done->num)
                        : 0LL,
                    total && total->kind == JVal::Num
                        ? static_cast<long long>(total->num)
                        : 0LL);
      }
      std::printf("\n");
    }
  }
  if (const JVal* recent = v.find("recent");
      recent && recent->kind == JVal::Arr) {
    std::printf("  recent requests in ring: %zu (full detail on /statusz)\n",
                recent->arr.size());
  }
  return 0;
}

int cmd_bench(const Args& a) {
  const std::string& sub = positional(a, 0, "<run|compare>");
  if (sub == "run") return cmd_bench_run(a);
  if (sub == "compare") return cmd_bench_compare(a);
  throw UsageError("unknown bench subcommand '" + sub +
                   "' (expected 'run' or 'compare')");
}

void print_usage(std::FILE* f = stdout) {
  std::fputs(
      "usage: fsct <command> [args] [options]\n"
      "\n"
      "commands:\n"
      "  stats    <circuit.bench>                netlist statistics\n"
      "  scan     <circuit.bench> [-o out.bench] insert a TPI scan chain\n"
      "  test     <circuit.bench> [-o prog.fsct] full screening pipeline\n"
      "           (alias: run)                   sharded + resumable with\n"
      "                                          --shards / --checkpoint /\n"
      "                                          --resume\n"
      "  replay   <prog.fsct> <circuit.bench>    run a program on a device\n"
      "  diagnose <circuit.bench> --fault NET V  rank chain-defect suspects\n"
      "  selftest                                end-to-end check on s27\n"
      "  fuzz     [--seed S] [--iters N]         differential self-fuzzing\n"
      "  profile  <profile.json|report.json>     render a saved hotspot\n"
      "                                          profile as tables\n"
      "  bench    run [circuit ...]              timed suite benchmark ->\n"
      "                                          BENCH_<label>.json\n"
      "  bench    compare <old.json> <new.json>  noise-aware regression diff\n"
      "                                          (exit 1 regression,\n"
      "                                          2 mismatch)\n"
      "  serve    --socket PATH | --port N       screening daemon with a\n"
      "                                          compiled-circuit cache;\n"
      "                                          NDJSON requests, graceful\n"
      "                                          SIGTERM drain\n"
      "  stat     --socket PATH | --port N | URL scrape a running daemon's\n"
      "                                          /metrics + /statusz into a\n"
      "                                          one-screen status\n"
      "\n"
      "options:\n"
      "  --chains N        number of scan chains to insert (default 1)\n"
      "  --partial M       permille of flip-flops scanned (default 1000)\n"
      "  --jobs N          parallel executors; 0 = one per hardware thread\n"
      "                    (default), 1 = serial — results are identical\n"
      "  --simd-width W    packed-simulation lane width in bits: 64, 256 or\n"
      "                    512 (default: build-time FSCT_SIMD_WIDTH); affects\n"
      "                    throughput only, per-fault results are identical\n"
      "  -o FILE           output file (scan: netlist, test: program +\n"
      "                    FILE.bench)\n"
      "  --fault NET 0|1   stuck-at fault to inject (replay, diagnose)\n"
      "  --no-dominance    disable dominance collapsing, SCOAP target\n"
      "                    ordering and cross-phase detection credit (test);\n"
      "                    restores the plain per-fault targeting order\n"
      "  --shards K        run the pipeline across K forked worker processes\n"
      "                    (1-64); the report is bitwise identical to a\n"
      "                    single-process run at any K (test)\n"
      "  --checkpoint F    write an fsct-ckpt-v1 snapshot to F atomically at\n"
      "                    pipeline safe points and on SIGTERM; a stopped run\n"
      "                    exits 3 with the checkpoint on disk (test)\n"
      "  --checkpoint-interval MS  minimum milliseconds between periodic\n"
      "                    checkpoint writes (default 0 = every safe point)\n"
      "  --resume F        continue from checkpoint F: completed work is\n"
      "                    skipped and the final report is bitwise identical\n"
      "                    to an uninterrupted run; refused if F was written\n"
      "                    by a different circuit or configuration (test)\n"
      "  --trace FILE      write a Chrome trace-event JSON of the run;\n"
      "                    load in chrome://tracing or Perfetto (test)\n"
      "  --metrics FILE    write a structured JSON run report: results,\n"
      "                    counters, histograms, pool stats, attribution\n"
      "                    top list when the ledger is on (test)\n"
      "  --profile FILE    write a fsct-profile-v1 hotspot profile: top-K\n"
      "                    hardest faults, per-gate/per-level activity,\n"
      "                    phase self/total tree; implies attribution (test)\n"
      "  --folded FILE     write flamegraph folded stacks of the phase tree\n"
      "                    (flamegraph.pl / speedscope format; test)\n"
      "  --metrics-out FILE  write counters/gauges/histograms as OpenMetrics\n"
      "                    text for Prometheus scraping (test)\n"
      "  --attribution     charge per-fault work to the attribution ledger\n"
      "                    without writing a profile (test, bench run)\n"
      "  --top K           hotlist rows in profile output (default 20)\n"
      "  --trace-max-mb N  cap the in-memory trace buffer; past the cap new\n"
      "                    spans are dropped (counted + truncation marker)\n"
      "  -v, --verbose     per-phase progress lines on stderr (test, fuzz)\n"
      "  --progress        periodic heartbeat line with phase, done/total,\n"
      "                    rate, ETA, RSS on stderr (test, bench run); a\n"
      "                    SIGUSR1 at any time prints a full status dump\n"
      "\n"
      "bench options:\n"
      "  --label L         document label; output defaults to\n"
      "                    BENCH_<L>.json (characters A-Z a-z 0-9 . _ -)\n"
      "  --note TEXT       free-form provenance note stored in the document\n"
      "  --reps N          timed repetitions per (circuit, jobs) (default 5)\n"
      "  --warmup N        discarded warmup repetitions (default 1)\n"
      "  --jobs N,M        sweep several job counts, one row each\n"
      "  --max-gates N     skip suite circuits above N gates\n"
      "  --rel-threshold P relative regression threshold (default 0.10)\n"
      "  --mad-k K         noise window in MAD multiples (default 3.0)\n"
      "\n"
      "serve options:\n"
      "  --socket PATH     listen on a Unix-domain socket at PATH\n"
      "  --port N          listen on loopback TCP port N (0 = ephemeral;\n"
      "                    the chosen port is printed)\n"
      "  --workers N       concurrent screening sessions (default 1)\n"
      "  --queue N         request-queue capacity; beyond it requests are\n"
      "                    rejected with code \"busy\" (default 16)\n"
      "  --cache-mb N      compiled-model cache budget, LRU-evicted\n"
      "                    (default 256)\n"
      "  --http-port N     mount the observability HTTP plane on loopback\n"
      "                    TCP port N (0 = ephemeral): GET /metrics\n"
      "                    (OpenMetrics), /healthz, /readyz (503 while\n"
      "                    draining), /statusz (in-flight sessions + recent\n"
      "                    requests as JSON)\n"
      "  --http-socket P   same observability plane on a Unix socket at P\n"
      "  --request-log F   append one NDJSON line per request to F:\n"
      "                    request_id, circuit hash, priority, cache\n"
      "                    outcomes, per-phase latencies, status\n"
      "\n"
      "fuzz options:\n"
      "  --seed S          base seed; (seed, offset) fixes every iteration\n"
      "  --iters N         iterations to run (default 100)\n"
      "  --offset K        start at global iteration K (reproduce a failure\n"
      "                    with --offset K --iters 1)\n"
      "  --oracles LIST    comma-separated subset: packed-sim, ppsfp-seq,\n"
      "                    cat3-scanout, jobs-identity, export-replay,\n"
      "                    dominance, simd, shard, all (shard — single vs\n"
      "                    multi-process equivalence — is opt-in by name)\n"
      "  --max-gates N     largest random circuit drawn (default 70)\n"
      "  --max-ffs N       largest flip-flop count drawn (default 10)\n"
      "  --no-shrink       emit failing circuits unminimized\n"
      "  -o DIR            where minimized .bench repros are written\n"
      "  --corpus DIR      instead of fuzzing, replay every .bench in DIR\n"
      "                    through all oracles (regression mode)\n",
      f);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_usage();
    return 0;
  }
  // The multi-process runner registers itself as the fuzzer's `shard`
  // oracle; without this call `--oracles shard` is a loud failure.
  register_shard_oracle();
  try {
    const Args a = parse(argc, argv);
    // Process-wide: every engine constructed with width 0 (the default)
    // reads this, so one flag covers test/bench/selftest/fuzz alike.
    if (a.simd_width) set_default_simd_width(a.simd_width);
    if (cmd == "stats") return cmd_stats(a);
    if (cmd == "scan") return cmd_scan(a);
    if (cmd == "test" || cmd == "run") return cmd_test(a);
    if (cmd == "replay") return cmd_replay(a);
    if (cmd == "diagnose") return cmd_diagnose(a);
    if (cmd == "selftest") return cmd_selftest();
    if (cmd == "fuzz") return cmd_fuzz(a);
    if (cmd == "profile") return cmd_profile(a);
    if (cmd == "bench") return cmd_bench(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "stat") return cmd_stat(a);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    print_usage(stderr);
    return 2;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "fsct: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
