# Empty compiler generated dependencies file for comb_fault_sim_test.
# This may be replaced when dependencies are built.
