file(REMOVE_RECURSE
  "CMakeFiles/tpi_test.dir/scan/tpi_test.cpp.o"
  "CMakeFiles/tpi_test.dir/scan/tpi_test.cpp.o.d"
  "tpi_test"
  "tpi_test.pdb"
  "tpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
