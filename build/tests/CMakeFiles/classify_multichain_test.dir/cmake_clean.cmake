file(REMOVE_RECURSE
  "CMakeFiles/classify_multichain_test.dir/core/classify_multichain_test.cpp.o"
  "CMakeFiles/classify_multichain_test.dir/core/classify_multichain_test.cpp.o.d"
  "classify_multichain_test"
  "classify_multichain_test.pdb"
  "classify_multichain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_multichain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
