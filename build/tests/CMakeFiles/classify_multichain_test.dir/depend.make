# Empty dependencies file for classify_multichain_test.
# This may be replaced when dependencies are built.
