# Empty dependencies file for scan_sequences_test.
# This may be replaced when dependencies are built.
