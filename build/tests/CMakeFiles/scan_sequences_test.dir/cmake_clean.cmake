file(REMOVE_RECURSE
  "CMakeFiles/scan_sequences_test.dir/scan/scan_sequences_test.cpp.o"
  "CMakeFiles/scan_sequences_test.dir/scan/scan_sequences_test.cpp.o.d"
  "scan_sequences_test"
  "scan_sequences_test.pdb"
  "scan_sequences_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_sequences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
