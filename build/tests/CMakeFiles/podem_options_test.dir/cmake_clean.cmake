file(REMOVE_RECURSE
  "CMakeFiles/podem_options_test.dir/atpg/podem_options_test.cpp.o"
  "CMakeFiles/podem_options_test.dir/atpg/podem_options_test.cpp.o.d"
  "podem_options_test"
  "podem_options_test.pdb"
  "podem_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/podem_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
