# Empty dependencies file for podem_options_test.
# This may be replaced when dependencies are built.
