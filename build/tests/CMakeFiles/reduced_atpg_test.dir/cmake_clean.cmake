file(REMOVE_RECURSE
  "CMakeFiles/reduced_atpg_test.dir/core/reduced_atpg_test.cpp.o"
  "CMakeFiles/reduced_atpg_test.dir/core/reduced_atpg_test.cpp.o.d"
  "reduced_atpg_test"
  "reduced_atpg_test.pdb"
  "reduced_atpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduced_atpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
