# Empty compiler generated dependencies file for reduced_atpg_test.
# This may be replaced when dependencies are built.
