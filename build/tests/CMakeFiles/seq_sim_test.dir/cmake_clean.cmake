file(REMOVE_RECURSE
  "CMakeFiles/seq_sim_test.dir/sim/seq_sim_test.cpp.o"
  "CMakeFiles/seq_sim_test.dir/sim/seq_sim_test.cpp.o.d"
  "seq_sim_test"
  "seq_sim_test.pdb"
  "seq_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
