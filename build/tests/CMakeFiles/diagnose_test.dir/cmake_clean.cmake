file(REMOVE_RECURSE
  "CMakeFiles/diagnose_test.dir/core/diagnose_test.cpp.o"
  "CMakeFiles/diagnose_test.dir/core/diagnose_test.cpp.o.d"
  "diagnose_test"
  "diagnose_test.pdb"
  "diagnose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
