file(REMOVE_RECURSE
  "CMakeFiles/mux_scan_test.dir/scan/mux_scan_test.cpp.o"
  "CMakeFiles/mux_scan_test.dir/scan/mux_scan_test.cpp.o.d"
  "mux_scan_test"
  "mux_scan_test.pdb"
  "mux_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
