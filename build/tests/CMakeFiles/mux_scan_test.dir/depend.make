# Empty dependencies file for mux_scan_test.
# This may be replaced when dependencies are built.
