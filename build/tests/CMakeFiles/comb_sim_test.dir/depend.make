# Empty dependencies file for comb_sim_test.
# This may be replaced when dependencies are built.
