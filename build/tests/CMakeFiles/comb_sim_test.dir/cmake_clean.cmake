file(REMOVE_RECURSE
  "CMakeFiles/comb_sim_test.dir/sim/comb_sim_test.cpp.o"
  "CMakeFiles/comb_sim_test.dir/sim/comb_sim_test.cpp.o.d"
  "comb_sim_test"
  "comb_sim_test.pdb"
  "comb_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comb_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
