file(REMOVE_RECURSE
  "CMakeFiles/seq_fault_sim_test.dir/fault/seq_fault_sim_test.cpp.o"
  "CMakeFiles/seq_fault_sim_test.dir/fault/seq_fault_sim_test.cpp.o.d"
  "seq_fault_sim_test"
  "seq_fault_sim_test.pdb"
  "seq_fault_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_fault_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
