file(REMOVE_RECURSE
  "CMakeFiles/scan_mode_model_test.dir/scan/scan_mode_model_test.cpp.o"
  "CMakeFiles/scan_mode_model_test.dir/scan/scan_mode_model_test.cpp.o.d"
  "scan_mode_model_test"
  "scan_mode_model_test.pdb"
  "scan_mode_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_mode_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
