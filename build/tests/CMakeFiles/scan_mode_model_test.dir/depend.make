# Empty dependencies file for scan_mode_model_test.
# This may be replaced when dependencies are built.
