# Empty compiler generated dependencies file for test_export_test.
# This may be replaced when dependencies are built.
