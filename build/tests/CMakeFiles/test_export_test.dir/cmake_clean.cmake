file(REMOVE_RECURSE
  "CMakeFiles/test_export_test.dir/core/test_export_test.cpp.o"
  "CMakeFiles/test_export_test.dir/core/test_export_test.cpp.o.d"
  "test_export_test"
  "test_export_test.pdb"
  "test_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
