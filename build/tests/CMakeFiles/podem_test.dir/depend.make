# Empty dependencies file for podem_test.
# This may be replaced when dependencies are built.
