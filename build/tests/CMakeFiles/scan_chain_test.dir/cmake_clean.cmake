file(REMOVE_RECURSE
  "CMakeFiles/scan_chain_test.dir/scan/scan_chain_test.cpp.o"
  "CMakeFiles/scan_chain_test.dir/scan/scan_chain_test.cpp.o.d"
  "scan_chain_test"
  "scan_chain_test.pdb"
  "scan_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
