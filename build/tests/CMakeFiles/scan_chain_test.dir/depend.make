# Empty dependencies file for scan_chain_test.
# This may be replaced when dependencies are built.
