file(REMOVE_RECURSE
  "CMakeFiles/pair_sim_test.dir/atpg/pair_sim_test.cpp.o"
  "CMakeFiles/pair_sim_test.dir/atpg/pair_sim_test.cpp.o.d"
  "pair_sim_test"
  "pair_sim_test.pdb"
  "pair_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
