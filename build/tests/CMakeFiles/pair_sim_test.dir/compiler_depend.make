# Empty compiler generated dependencies file for pair_sim_test.
# This may be replaced when dependencies are built.
