file(REMOVE_RECURSE
  "CMakeFiles/chain_reorder_test.dir/core/chain_reorder_test.cpp.o"
  "CMakeFiles/chain_reorder_test.dir/core/chain_reorder_test.cpp.o.d"
  "chain_reorder_test"
  "chain_reorder_test.pdb"
  "chain_reorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
