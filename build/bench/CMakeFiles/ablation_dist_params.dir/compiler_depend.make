# Empty compiler generated dependencies file for ablation_dist_params.
# This may be replaced when dependencies are built.
