file(REMOVE_RECURSE
  "CMakeFiles/ablation_dist_params.dir/ablation_dist_params.cpp.o"
  "CMakeFiles/ablation_dist_params.dir/ablation_dist_params.cpp.o.d"
  "ablation_dist_params"
  "ablation_dist_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dist_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
