file(REMOVE_RECURSE
  "CMakeFiles/table3_pipeline.dir/table3_pipeline.cpp.o"
  "CMakeFiles/table3_pipeline.dir/table3_pipeline.cpp.o.d"
  "table3_pipeline"
  "table3_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
