file(REMOVE_RECURSE
  "CMakeFiles/ablation_partial_scan.dir/ablation_partial_scan.cpp.o"
  "CMakeFiles/ablation_partial_scan.dir/ablation_partial_scan.cpp.o.d"
  "ablation_partial_scan"
  "ablation_partial_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partial_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
