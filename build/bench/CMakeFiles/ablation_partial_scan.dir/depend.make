# Empty dependencies file for ablation_partial_scan.
# This may be replaced when dependencies are built.
