# Empty dependencies file for table2_classify.
# This may be replaced when dependencies are built.
