file(REMOVE_RECURSE
  "CMakeFiles/table2_classify.dir/table2_classify.cpp.o"
  "CMakeFiles/table2_classify.dir/table2_classify.cpp.o.d"
  "table2_classify"
  "table2_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
