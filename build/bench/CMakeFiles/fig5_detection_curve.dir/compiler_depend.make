# Empty compiler generated dependencies file for fig5_detection_curve.
# This may be replaced when dependencies are built.
