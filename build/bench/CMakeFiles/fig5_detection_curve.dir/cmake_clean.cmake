file(REMOVE_RECURSE
  "CMakeFiles/fig5_detection_curve.dir/fig5_detection_curve.cpp.o"
  "CMakeFiles/fig5_detection_curve.dir/fig5_detection_curve.cpp.o.d"
  "fig5_detection_curve"
  "fig5_detection_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_detection_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
