# Empty dependencies file for fsct.
# This may be replaced when dependencies are built.
