
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/fsct_cli.cpp" "tools/CMakeFiles/fsct.dir/fsct_cli.cpp.o" "gcc" "tools/CMakeFiles/fsct.dir/fsct_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fsct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_circuits/CMakeFiles/fsct_benchcircuits.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/fsct_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/fsct_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/fsct_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fsct_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
