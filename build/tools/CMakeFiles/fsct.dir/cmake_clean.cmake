file(REMOVE_RECURSE
  "CMakeFiles/fsct.dir/fsct_cli.cpp.o"
  "CMakeFiles/fsct.dir/fsct_cli.cpp.o.d"
  "fsct"
  "fsct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
