# Empty compiler generated dependencies file for paper_figure2.
# This may be replaced when dependencies are built.
