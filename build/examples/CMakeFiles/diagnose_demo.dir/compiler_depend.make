# Empty compiler generated dependencies file for diagnose_demo.
# This may be replaced when dependencies are built.
