file(REMOVE_RECURSE
  "CMakeFiles/diagnose_demo.dir/diagnose_demo.cpp.o"
  "CMakeFiles/diagnose_demo.dir/diagnose_demo.cpp.o.d"
  "diagnose_demo"
  "diagnose_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
