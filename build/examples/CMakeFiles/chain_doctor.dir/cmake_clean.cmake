file(REMOVE_RECURSE
  "CMakeFiles/chain_doctor.dir/chain_doctor.cpp.o"
  "CMakeFiles/chain_doctor.dir/chain_doctor.cpp.o.d"
  "chain_doctor"
  "chain_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
