# Empty compiler generated dependencies file for overhead_explorer.
# This may be replaced when dependencies are built.
