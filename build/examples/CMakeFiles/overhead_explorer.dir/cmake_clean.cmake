file(REMOVE_RECURSE
  "CMakeFiles/overhead_explorer.dir/overhead_explorer.cpp.o"
  "CMakeFiles/overhead_explorer.dir/overhead_explorer.cpp.o.d"
  "overhead_explorer"
  "overhead_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
