# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_figure2 "/root/repo/build/examples/paper_figure2")
set_tests_properties(example_paper_figure2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_chain_doctor "/root/repo/build/examples/chain_doctor")
set_tests_properties(example_chain_doctor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overhead_explorer "/root/repo/build/examples/overhead_explorer")
set_tests_properties(example_overhead_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diagnose_demo "/root/repo/build/examples/diagnose_demo")
set_tests_properties(example_diagnose_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
