# Empty compiler generated dependencies file for fsct_scan.
# This may be replaced when dependencies are built.
