file(REMOVE_RECURSE
  "libfsct_scan.a"
)
