
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/mux_scan.cpp" "src/scan/CMakeFiles/fsct_scan.dir/mux_scan.cpp.o" "gcc" "src/scan/CMakeFiles/fsct_scan.dir/mux_scan.cpp.o.d"
  "/root/repo/src/scan/scan_mode_model.cpp" "src/scan/CMakeFiles/fsct_scan.dir/scan_mode_model.cpp.o" "gcc" "src/scan/CMakeFiles/fsct_scan.dir/scan_mode_model.cpp.o.d"
  "/root/repo/src/scan/scan_sequences.cpp" "src/scan/CMakeFiles/fsct_scan.dir/scan_sequences.cpp.o" "gcc" "src/scan/CMakeFiles/fsct_scan.dir/scan_sequences.cpp.o.d"
  "/root/repo/src/scan/tpi.cpp" "src/scan/CMakeFiles/fsct_scan.dir/tpi.cpp.o" "gcc" "src/scan/CMakeFiles/fsct_scan.dir/tpi.cpp.o.d"
  "/root/repo/src/scan/transparency.cpp" "src/scan/CMakeFiles/fsct_scan.dir/transparency.cpp.o" "gcc" "src/scan/CMakeFiles/fsct_scan.dir/transparency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fsct_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
