file(REMOVE_RECURSE
  "CMakeFiles/fsct_scan.dir/mux_scan.cpp.o"
  "CMakeFiles/fsct_scan.dir/mux_scan.cpp.o.d"
  "CMakeFiles/fsct_scan.dir/scan_mode_model.cpp.o"
  "CMakeFiles/fsct_scan.dir/scan_mode_model.cpp.o.d"
  "CMakeFiles/fsct_scan.dir/scan_sequences.cpp.o"
  "CMakeFiles/fsct_scan.dir/scan_sequences.cpp.o.d"
  "CMakeFiles/fsct_scan.dir/tpi.cpp.o"
  "CMakeFiles/fsct_scan.dir/tpi.cpp.o.d"
  "CMakeFiles/fsct_scan.dir/transparency.cpp.o"
  "CMakeFiles/fsct_scan.dir/transparency.cpp.o.d"
  "libfsct_scan.a"
  "libfsct_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
