file(REMOVE_RECURSE
  "libfsct_benchcircuits.a"
)
