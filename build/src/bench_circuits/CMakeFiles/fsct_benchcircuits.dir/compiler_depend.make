# Empty compiler generated dependencies file for fsct_benchcircuits.
# This may be replaced when dependencies are built.
