file(REMOVE_RECURSE
  "CMakeFiles/fsct_benchcircuits.dir/generator.cpp.o"
  "CMakeFiles/fsct_benchcircuits.dir/generator.cpp.o.d"
  "CMakeFiles/fsct_benchcircuits.dir/paper_examples.cpp.o"
  "CMakeFiles/fsct_benchcircuits.dir/paper_examples.cpp.o.d"
  "CMakeFiles/fsct_benchcircuits.dir/suite.cpp.o"
  "CMakeFiles/fsct_benchcircuits.dir/suite.cpp.o.d"
  "libfsct_benchcircuits.a"
  "libfsct_benchcircuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct_benchcircuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
