file(REMOVE_RECURSE
  "CMakeFiles/fsct_fault.dir/comb_fault_sim.cpp.o"
  "CMakeFiles/fsct_fault.dir/comb_fault_sim.cpp.o.d"
  "CMakeFiles/fsct_fault.dir/fault.cpp.o"
  "CMakeFiles/fsct_fault.dir/fault.cpp.o.d"
  "CMakeFiles/fsct_fault.dir/seq_fault_sim.cpp.o"
  "CMakeFiles/fsct_fault.dir/seq_fault_sim.cpp.o.d"
  "libfsct_fault.a"
  "libfsct_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
