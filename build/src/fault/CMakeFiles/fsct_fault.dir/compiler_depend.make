# Empty compiler generated dependencies file for fsct_fault.
# This may be replaced when dependencies are built.
