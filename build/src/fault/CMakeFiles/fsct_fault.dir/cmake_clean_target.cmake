file(REMOVE_RECURSE
  "libfsct_fault.a"
)
