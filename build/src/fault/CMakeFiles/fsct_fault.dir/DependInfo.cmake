
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/comb_fault_sim.cpp" "src/fault/CMakeFiles/fsct_fault.dir/comb_fault_sim.cpp.o" "gcc" "src/fault/CMakeFiles/fsct_fault.dir/comb_fault_sim.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/fsct_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/fsct_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/seq_fault_sim.cpp" "src/fault/CMakeFiles/fsct_fault.dir/seq_fault_sim.cpp.o" "gcc" "src/fault/CMakeFiles/fsct_fault.dir/seq_fault_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fsct_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
