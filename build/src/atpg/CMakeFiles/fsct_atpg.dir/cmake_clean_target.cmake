file(REMOVE_RECURSE
  "libfsct_atpg.a"
)
