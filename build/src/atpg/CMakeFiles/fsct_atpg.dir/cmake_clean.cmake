file(REMOVE_RECURSE
  "CMakeFiles/fsct_atpg.dir/pair_sim.cpp.o"
  "CMakeFiles/fsct_atpg.dir/pair_sim.cpp.o.d"
  "CMakeFiles/fsct_atpg.dir/podem.cpp.o"
  "CMakeFiles/fsct_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/fsct_atpg.dir/scoap.cpp.o"
  "CMakeFiles/fsct_atpg.dir/scoap.cpp.o.d"
  "CMakeFiles/fsct_atpg.dir/unroll.cpp.o"
  "CMakeFiles/fsct_atpg.dir/unroll.cpp.o.d"
  "libfsct_atpg.a"
  "libfsct_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
