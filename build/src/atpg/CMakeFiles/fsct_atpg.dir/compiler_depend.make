# Empty compiler generated dependencies file for fsct_atpg.
# This may be replaced when dependencies are built.
