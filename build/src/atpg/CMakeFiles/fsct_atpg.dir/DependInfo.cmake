
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/pair_sim.cpp" "src/atpg/CMakeFiles/fsct_atpg.dir/pair_sim.cpp.o" "gcc" "src/atpg/CMakeFiles/fsct_atpg.dir/pair_sim.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/atpg/CMakeFiles/fsct_atpg.dir/podem.cpp.o" "gcc" "src/atpg/CMakeFiles/fsct_atpg.dir/podem.cpp.o.d"
  "/root/repo/src/atpg/scoap.cpp" "src/atpg/CMakeFiles/fsct_atpg.dir/scoap.cpp.o" "gcc" "src/atpg/CMakeFiles/fsct_atpg.dir/scoap.cpp.o.d"
  "/root/repo/src/atpg/unroll.cpp" "src/atpg/CMakeFiles/fsct_atpg.dir/unroll.cpp.o" "gcc" "src/atpg/CMakeFiles/fsct_atpg.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/fsct_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fsct_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
