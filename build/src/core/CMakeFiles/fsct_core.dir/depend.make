# Empty dependencies file for fsct_core.
# This may be replaced when dependencies are built.
