file(REMOVE_RECURSE
  "libfsct_core.a"
)
