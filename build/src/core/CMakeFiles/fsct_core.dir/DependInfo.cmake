
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chain_reorder.cpp" "src/core/CMakeFiles/fsct_core.dir/chain_reorder.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/chain_reorder.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/fsct_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/compaction.cpp" "src/core/CMakeFiles/fsct_core.dir/compaction.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/compaction.cpp.o.d"
  "/root/repo/src/core/diagnose.cpp" "src/core/CMakeFiles/fsct_core.dir/diagnose.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/diagnose.cpp.o.d"
  "/root/repo/src/core/grouping.cpp" "src/core/CMakeFiles/fsct_core.dir/grouping.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/grouping.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/fsct_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/reduced_atpg.cpp" "src/core/CMakeFiles/fsct_core.dir/reduced_atpg.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/reduced_atpg.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/fsct_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/report.cpp.o.d"
  "/root/repo/src/core/test_export.cpp" "src/core/CMakeFiles/fsct_core.dir/test_export.cpp.o" "gcc" "src/core/CMakeFiles/fsct_core.dir/test_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atpg/CMakeFiles/fsct_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/fsct_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/fsct_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fsct_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
