file(REMOVE_RECURSE
  "CMakeFiles/fsct_core.dir/chain_reorder.cpp.o"
  "CMakeFiles/fsct_core.dir/chain_reorder.cpp.o.d"
  "CMakeFiles/fsct_core.dir/classify.cpp.o"
  "CMakeFiles/fsct_core.dir/classify.cpp.o.d"
  "CMakeFiles/fsct_core.dir/compaction.cpp.o"
  "CMakeFiles/fsct_core.dir/compaction.cpp.o.d"
  "CMakeFiles/fsct_core.dir/diagnose.cpp.o"
  "CMakeFiles/fsct_core.dir/diagnose.cpp.o.d"
  "CMakeFiles/fsct_core.dir/grouping.cpp.o"
  "CMakeFiles/fsct_core.dir/grouping.cpp.o.d"
  "CMakeFiles/fsct_core.dir/pipeline.cpp.o"
  "CMakeFiles/fsct_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/fsct_core.dir/reduced_atpg.cpp.o"
  "CMakeFiles/fsct_core.dir/reduced_atpg.cpp.o.d"
  "CMakeFiles/fsct_core.dir/report.cpp.o"
  "CMakeFiles/fsct_core.dir/report.cpp.o.d"
  "CMakeFiles/fsct_core.dir/test_export.cpp.o"
  "CMakeFiles/fsct_core.dir/test_export.cpp.o.d"
  "libfsct_core.a"
  "libfsct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
