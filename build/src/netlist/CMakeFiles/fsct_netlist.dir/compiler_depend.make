# Empty compiler generated dependencies file for fsct_netlist.
# This may be replaced when dependencies are built.
