file(REMOVE_RECURSE
  "libfsct_netlist.a"
)
