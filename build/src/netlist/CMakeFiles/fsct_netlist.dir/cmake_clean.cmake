file(REMOVE_RECURSE
  "CMakeFiles/fsct_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/fsct_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/fsct_netlist.dir/levelize.cpp.o"
  "CMakeFiles/fsct_netlist.dir/levelize.cpp.o.d"
  "CMakeFiles/fsct_netlist.dir/netlist.cpp.o"
  "CMakeFiles/fsct_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/fsct_netlist.dir/stats.cpp.o"
  "CMakeFiles/fsct_netlist.dir/stats.cpp.o.d"
  "libfsct_netlist.a"
  "libfsct_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
