file(REMOVE_RECURSE
  "libfsct_sim.a"
)
