# Empty compiler generated dependencies file for fsct_sim.
# This may be replaced when dependencies are built.
