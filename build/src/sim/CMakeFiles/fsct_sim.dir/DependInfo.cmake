
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/comb_sim.cpp" "src/sim/CMakeFiles/fsct_sim.dir/comb_sim.cpp.o" "gcc" "src/sim/CMakeFiles/fsct_sim.dir/comb_sim.cpp.o.d"
  "/root/repo/src/sim/seq_sim.cpp" "src/sim/CMakeFiles/fsct_sim.dir/seq_sim.cpp.o" "gcc" "src/sim/CMakeFiles/fsct_sim.dir/seq_sim.cpp.o.d"
  "/root/repo/src/sim/value.cpp" "src/sim/CMakeFiles/fsct_sim.dir/value.cpp.o" "gcc" "src/sim/CMakeFiles/fsct_sim.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fsct_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
