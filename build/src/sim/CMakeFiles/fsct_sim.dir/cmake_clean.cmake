file(REMOVE_RECURSE
  "CMakeFiles/fsct_sim.dir/comb_sim.cpp.o"
  "CMakeFiles/fsct_sim.dir/comb_sim.cpp.o.d"
  "CMakeFiles/fsct_sim.dir/seq_sim.cpp.o"
  "CMakeFiles/fsct_sim.dir/seq_sim.cpp.o.d"
  "CMakeFiles/fsct_sim.dir/value.cpp.o"
  "CMakeFiles/fsct_sim.dir/value.cpp.o.d"
  "libfsct_sim.a"
  "libfsct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
