// Reproduces the paper's Figure 2 discussion as a runnable demo:
//
//   * a 6-stage functional scan chain whose last link rides an and-or
//     selector with `en` forced to 1 in scan mode,
//   * the fault `en s-a-0` shortens the chain by exactly 4 stages,
//   * the classic alternating flush (period 4) cannot see it,
//   * the FSCT classifier flags it category 2 and sequential ATPG on the
//     reduced model produces a test that does detect it.
#include <cstdio>

#include "bench_circuits/paper_examples.h"
#include "core/classify.h"
#include "core/reduced_atpg.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_sequences.h"

int main() {
  using namespace fsct;
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  const ScanModeModel model(lv, e.design);
  const Fault fault = paper_figure2_fault(e.nl);
  std::printf("circuit: %s, fault: %s\n", e.nl.name().c_str(),
              fault_name(e.nl, fault).c_str());

  // 1. The alternating sequence misses it.
  const ScanSequenceBuilder sb(e.nl, e.design);
  SeqFaultSim sim(lv, {e.nl.find("f6")});
  const Fault faults[] = {fault};
  const auto alt = sim.run_serial(sb.alternating(40), faults);
  std::printf("alternating flush (40 cycles): %s\n",
              alt.detect_cycle[0] < 0 ? "MISSED (as the paper predicts)"
                                      : "detected");

  // 2. The classifier sees a category-2 fault at the last chain location.
  ChainFaultClassifier cls(model);
  const ChainFaultInfo info = cls.classify(fault);
  std::printf("classifier: category %s, %zu location(s), last at segment %d\n",
              info.category == ChainFaultCategory::Hard ? "2 (hard)"
              : info.category == ChainFaultCategory::Easy ? "1 (easy)"
                                                          : "3 (none)",
              info.locations.size(), info.locations.back().segment);

  // 3. Sequential ATPG on the enhanced-ctrl/obs reduced model finds a test.
  ReducedCircuitBuilder builder(model);
  AtpgGroup g;
  g.kind = 1;
  g.fault_indices = {0};
  g.window = make_fault_window(0, info).chains;
  const ReducedModel rm = builder.build(g, std::span(&fault, 1));
  std::printf("reduced model: %zu nodes, %d frames\n", rm.um.nl.size(),
              rm.frames);
  const AtpgResult r = rm.podem->generate(rm.um.map_fault(fault));
  if (r.status != AtpgStatus::Detected) {
    std::printf("ATPG failed unexpectedly\n");
    return 1;
  }
  std::printf("ATPG: detected with %d decisions, %d backtracks\n", r.decisions,
              r.backtracks);

  // 4. Verify the extracted test end-to-end on the real circuit.
  const SeqTest t = builder.extract_test(rm, r);
  const TestSequence seq = builder.realize(t, 8);
  const auto verdict = sim.run_serial(seq, faults);
  std::printf("end-to-end verification (%zu cycles): %s at cycle %d\n",
              seq.size(),
              verdict.detect_cycle[0] >= 0 ? "DETECTED" : "missed",
              verdict.detect_cycle[0]);
  return verdict.detect_cycle[0] >= 0 && alt.detect_cycle[0] < 0 ? 0 : 1;
}
