// Overhead explorer: compares conventional full MUX-scan against TPI
// functional scan across generated circuits of increasing size — the
// trade-off Figure 1 of the paper motivates (fewer muxes and no dedicated
// scan wiring, at the cost of a few test points and pinned PIs).
//
//   ./build/examples/overhead_explorer
#include <cstdio>

#include "bench_circuits/generator.h"
#include "scan/mux_scan.h"
#include "scan/tpi.h"

int main() {
  using namespace fsct;
  std::printf("%-8s %-6s | %-10s | %-28s\n", "gates", "FFs", "mux-scan",
              "TPI functional scan");
  std::printf("%-8s %-6s | %-10s | %-10s %-6s %-8s\n", "", "", "muxes",
              "func/mux", "TPs", "pinnedPI");

  for (int scale = 1; scale <= 8; scale *= 2) {
    RandomCircuitSpec spec;
    spec.num_gates = 200 * scale;
    spec.num_ffs = 16 * scale;
    spec.num_pis = 8 + 2 * scale;
    spec.num_pos = 8;
    spec.seed = 1234 + static_cast<std::uint64_t>(scale);

    Netlist mux_nl = make_random_sequential(spec);
    const ScanDesign md = insert_mux_scan(mux_nl);

    Netlist tpi_nl = make_random_sequential(spec);
    TpiStats stats;
    run_tpi(tpi_nl, {}, &stats);

    std::printf("%-8d %-6d | %-10d | %4d/%-5d %-6d %-8d\n", spec.num_gates,
                spec.num_ffs, md.scan_muxes, stats.functional_segments,
                stats.mux_segments, stats.test_points, stats.assigned_pis);
  }
  std::printf(
      "\nreading: every functional link replaces one scan mux and its\n"
      "dedicated wiring; test points are single gates, each often shared\n"
      "between several paths, so TPI wins whenever func >> TPs.\n");
  return 0;
}
