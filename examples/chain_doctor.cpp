// "Chain doctor": a small command-line tool a test engineer would actually
// use.  Takes a .bench file (or a built-in demo circuit), inserts a
// functional scan chain, and prints a per-chain health report: which
// faults threaten each chain segment, which are covered by the flush test,
// and the generated chain test set.
//
//   ./build/examples/chain_doctor [circuit.bench] [num_chains]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_circuits/paper_examples.h"
#include "core/pipeline.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "scan/tpi.h"

int main(int argc, char** argv) {
  using namespace fsct;
  Netlist nl = (argc > 1) ? read_bench_file(argv[1]) : iscas_s27();
  TpiOptions topt;
  if (argc > 2) topt.num_chains = std::atoi(argv[2]);

  TpiStats stats;
  const ScanDesign design = run_tpi(nl, topt, &stats);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, design);
  if (std::string err = model.check(); !err.empty()) {
    std::printf("scan-mode invariant violated: %s\n", err.c_str());
    return 2;
  }

  std::printf("== %s ==\n%s", nl.name().c_str(),
              stats_string(compute_stats(nl)).c_str());
  std::printf("scan style: %d functional links / %d muxes, %d test points\n\n",
              stats.functional_segments, stats.mux_segments,
              stats.test_points);

  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);

  // Per-segment threat map.
  std::map<std::pair<int, int>, std::pair<int, int>> seg_counts;  // easy,hard
  for (std::size_t i = 0; i < faults.size(); ++i) {
    for (const ChainLocation& loc : r.info[i].locations) {
      auto& c = seg_counts[{loc.chain, loc.segment}];
      if (r.info[i].category == ChainFaultCategory::Easy) {
        ++c.first;
      } else {
        ++c.second;
      }
    }
  }
  for (std::size_t ci = 0; ci < design.chains.size(); ++ci) {
    const ScanChain& chain = design.chains[ci];
    std::printf("chain %zu (%zu FFs, scan_in=%s):\n", ci, chain.length(),
                nl.node_name(chain.scan_in).c_str());
    for (std::size_t k = 0; k < chain.segments.size(); ++k) {
      const auto it = seg_counts.find({static_cast<int>(ci),
                                       static_cast<int>(k)});
      const int easy = it == seg_counts.end() ? 0 : it->second.first;
      const int hard = it == seg_counts.end() ? 0 : it->second.second;
      const ScanSegment& s = chain.segments[k];
      std::printf("  seg %3zu -> %-12s %s%s  threats: %d flush-covered, %d hard\n",
                  k, nl.node_name(chain.ffs[k]).c_str(),
                  s.functional ? "functional" : "mux",
                  s.inverting ? " (inverting)" : "", easy, hard);
    }
  }

  std::printf("\nchain test plan:\n");
  std::printf("  1. alternating flush: %zu cycles (covers %zu faults)\n",
              2 * model.max_chain_length() + 8, r.easy);
  std::printf("  2. %zu converted combinational vectors (cover %zu faults)\n",
              r.s2_vectors, r.s2_detected);
  std::printf("  3. %zu sequential-ATPG circuit models (cover %zu faults)\n",
              r.s3_circuits_group + r.s3_circuits_final, r.s3_detected);
  std::printf("result: %zu/%zu chain-affecting faults covered, "
              "%zu undetectable, %zu open\n",
              r.easy + r.s2_detected + r.s3_detected, r.affecting(),
              r.s2_undetectable + r.s3_undetectable, r.s3_undetected);
  return 0;
}
