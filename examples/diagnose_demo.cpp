// Chain diagnosis demo: a part fails the chain test on the tester — which
// fault is it?
//
//   1. build a circuit with a TPI functional scan chain,
//   2. secretly inject a chain-affecting stuck-at fault,
//   3. apply the flush test + a marker load and record the responses,
//   4. run the diagnoser over every collapsed fault and print the suspects.
#include <cstdio>
#include <random>

#include "bench_circuits/generator.h"
#include "core/classify.h"
#include "core/diagnose.h"
#include "scan/scan_sequences.h"
#include "scan/tpi.h"

int main(int argc, char** argv) {
  using namespace fsct;
  RandomCircuitSpec spec;
  spec.num_gates = 400;
  spec.num_ffs = 32;
  spec.num_pis = 10;
  spec.num_pos = 8;
  spec.seed = (argc > 1) ? std::strtoull(argv[1], nullptr, 10) : 2024;
  Netlist nl = make_random_sequential(spec);
  const ScanDesign design = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, design);
  const auto faults = collapsed_fault_list(nl);

  // Pick the "real" defect: a chain-affecting fault chosen by the seed.
  ChainFaultClassifier cls(model);
  std::mt19937_64 rng(spec.seed ^ 0xd1a6);
  Fault defect{};
  for (int tries = 0; tries < 1000; ++tries) {
    const Fault& f = faults[rng() % faults.size()];
    if (cls.classify(f).category != ChainFaultCategory::NotAffecting) {
      defect = f;
      break;
    }
  }
  std::printf("injected defect (hidden from the diagnoser): %s\n",
              fault_name(nl, defect).c_str());

  // Tester stimulus: flush + random marker loads.
  ScanSequenceBuilder sb(nl, design);
  TestSequence seq = sb.alternating(2 * model.max_chain_length() + 8);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<Val>> marker(design.chains.size());
    for (std::size_t c = 0; c < design.chains.size(); ++c) {
      marker[c].resize(design.chains[c].length());
      for (auto& v : marker[c]) v = (rng() & 1) ? Val::One : Val::Zero;
    }
    const TestSequence load = sb.load_state(marker);
    seq.insert(seq.end(), load.begin(), load.end());
    for (std::size_t i = 0; i < model.max_chain_length() + 2; ++i) {
      seq.push_back(sb.base_vector(Val::Zero));
    }
  }
  std::printf("stimulus: %zu scan-mode cycles\n", seq.size());

  ChainDiagnoser diag(model);
  const ObservedResponse obs = diag.make_response(seq, defect);

  std::size_t symptoms = 0;  // mismatches vs the good machine
  {
    SeqSim good(lv);
    for (std::size_t t = 0; t < seq.size(); ++t) {
      const auto& v = good.step(seq[t]);
      for (std::size_t o = 0; o < diag.observe().size(); ++o) {
        const Val g = v[diag.observe()[o]];
        const Val ob = obs.observed[t][o];
        if (g != Val::X && ob != Val::X && g != ob) ++symptoms;
      }
    }
  }
  std::printf("observed symptoms: %zu mismatching strobe points\n\n", symptoms);

  const auto ranked = diag.diagnose(obs, faults, 8);
  std::printf("%-4s %-30s %-10s %-14s\n", "#", "suspect", "explained",
              "contradicts");
  bool hit = false;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const bool is_it = ranked[i].fault == defect;
    hit |= is_it;
    std::printf("%-4zu %-30s %-10d %-14d%s\n", i + 1,
                fault_name(nl, ranked[i].fault).c_str(), ranked[i].explained,
                ranked[i].contradictions, is_it ? "   <-- the defect" : "");
  }
  std::printf("\n%s\n", hit ? "defect found in the top suspects"
                            : "defect not in top suspects (signature-"
                              "equivalent faults rank above it)");
  return 0;
}
