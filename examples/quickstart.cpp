// Quickstart: the whole library in ~60 lines.
//
//   1. load a circuit (ISCAS'89 s27),
//   2. establish a functional scan chain with TPI,
//   3. run the paper's three-step screening pipeline,
//   4. print what the chain test set looks like.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bench_circuits/paper_examples.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "scan/tpi.h"

int main() {
  using namespace fsct;

  // 1. A small sequential circuit.
  Netlist nl = iscas_s27();
  std::printf("circuit %s: %zu gates, %zu FFs, %zu PIs\n", nl.name().c_str(),
              nl.num_gates(), nl.dffs().size(), nl.inputs().size());

  // 2. Functional scan via test point insertion.
  TpiStats stats;
  const ScanDesign design = run_tpi(nl, {}, &stats);
  std::printf(
      "TPI: %d functional links, %d scan muxes, %d test points, "
      "%d PIs pinned in scan mode\n",
      stats.functional_segments, stats.mux_segments, stats.test_points,
      stats.assigned_pis);
  for (const ScanChain& c : design.chains) {
    std::printf("chain: scan_in=%s length=%zu scan_out=%s\n",
                nl.node_name(c.scan_in).c_str(), c.length(),
                nl.node_name(c.scan_out()).c_str());
  }

  // 3. The scan-mode model + the three-step screening flow.
  const Levelizer lv(nl);
  const ScanModeModel model(lv, design);
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);

  // 4. Summary.
  std::printf("\n%zu collapsed faults\n", r.total_faults);
  std::printf("  affect the chain : %zu (%.1f%%)\n", r.affecting(),
              100.0 * static_cast<double>(r.affecting()) /
                  static_cast<double>(r.total_faults));
  std::printf("  easy (flush)     : %zu, all verified: %s\n", r.easy,
              r.easy_verified == r.easy ? "yes" : "NO");
  std::printf("  hard             : %zu\n", r.hard);
  std::printf("  step-2 detected  : %zu with %zu vectors\n", r.s2_detected,
              r.s2_vectors);
  std::printf("  step-3 detected  : %zu using %zu+%zu circuit models\n",
              r.s3_detected, r.s3_circuits_group, r.s3_circuits_final);
  std::printf("  undetectable     : %zu, undetected: %zu\n",
              r.s2_undetectable + r.s3_undetectable, r.s3_undetected);
  return r.s3_undetected == 0 ? 0 : 1;
}
