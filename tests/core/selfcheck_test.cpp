// Tests for the differential self-check subsystem (core/selfcheck.h): the
// oracles pass on known-good circuits, the result differ catches fabricated
// divergence, the shrinker minimizes under a structural predicate, and the
// fuzz loop is deterministic in (seed, offset).
#include "core/selfcheck.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "core/pipeline.h"
#include "netlist/bench_io.h"
#include "netlist/levelize.h"
#include "scan/scan_mode_model.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

TEST(Selfcheck, OracleMaskParsing) {
  EXPECT_EQ(parse_oracle_mask("all"), kOracleAll);
  EXPECT_EQ(parse_oracle_mask("packed-sim"), kOraclePackedSim);
  EXPECT_EQ(parse_oracle_mask("cat3-scanout,jobs-identity"),
            kOracleCat3 | kOracleJobs);
  EXPECT_THROW(parse_oracle_mask("frobnicate"), std::runtime_error);
  for (std::size_t i = 0; i < kNumOracles; ++i) {
    EXPECT_EQ(parse_oracle_mask(oracle_name(i)), 1u << i);
  }
}

TEST(Selfcheck, S27CleanBothScanStyles) {
  const Netlist s27 = iscas_s27();
  for (const bool tpi : {true, false}) {
    SelfcheckConfig cfg;
    cfg.use_tpi = tpi;
    cfg.jobs = 3;
    std::uint64_t ran[kNumOracles] = {};
    EXPECT_EQ(selfcheck_circuit(s27, cfg, &ran), "");
    // Every default (in-process) oracle runs; the fork-based shard oracle
    // is opt-in by name and must NOT run under `all`.
    for (std::size_t i = 0; i < kNumOracles; ++i) {
      EXPECT_EQ(ran[i], (kOracleAll >> i) & 1u) << oracle_name(i);
    }
  }
}

TEST(Selfcheck, RandomCircuitsClean) {
  for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
    RandomCircuitSpec spec;
    spec.name = "sc" + std::to_string(seed);
    spec.seed = seed;
    spec.num_gates = 40;
    spec.num_ffs = 6;
    SelfcheckConfig cfg;
    cfg.use_tpi = (seed & 1) != 0;
    cfg.check_seed = seed;
    EXPECT_EQ(selfcheck_circuit(make_random_sequential(spec), cfg), "")
        << "seed " << seed;
  }
}

TEST(Selfcheck, DiffCatchesFabricatedDivergence) {
  Netlist nl = iscas_s27();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.jobs = 1;
  const PipelineResult a = run_fsct_pipeline(model, faults, opt);
  EXPECT_EQ(diff_pipeline_results(a, a), "");

  PipelineResult b = a;
  ++b.s2_detected;
  EXPECT_NE(diff_pipeline_results(a, b).find("s2_detected"),
            std::string::npos);

  PipelineResult c = a;
  ASSERT_FALSE(c.outcome.empty());
  c.outcome[0] = c.outcome[0] == FaultOutcome::Undetected
                     ? FaultOutcome::DetectedComb
                     : FaultOutcome::Undetected;
  EXPECT_NE(diff_pipeline_results(a, c), "");

  PipelineResult e = a;
  if (!e.vectors.empty()) {
    e.vectors[0].pi_vals[0] =
        e.vectors[0].pi_vals[0] == Val::One ? Val::Zero : Val::One;
    EXPECT_NE(diff_pipeline_results(a, e).find("vector"), std::string::npos);
  }
}

TEST(Selfcheck, ShrinkerMinimizesUnderStructuralPredicate) {
  RandomCircuitSpec spec;
  spec.name = "shrinkme";
  spec.seed = 99;
  spec.num_gates = 120;
  spec.num_ffs = 8;
  const Netlist start = make_random_sequential(spec);

  auto has_xor = [](const Netlist& nl) {
    for (NodeId id = 0; id < nl.size(); ++id) {
      if (nl.type(id) == GateType::Xor || nl.type(id) == GateType::Xnor) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(has_xor(start));
  const Netlist min = shrink_netlist(start, has_xor, 400);
  EXPECT_TRUE(has_xor(min));
  EXPECT_LT(min.size(), start.size() / 2);
  EXPECT_EQ(min.validate(), "");
  // The minimized circuit round-trips through .bench text.
  const Netlist reread = read_bench_string(write_bench_string(min), "rt");
  EXPECT_EQ(reread.size(), min.size());
}

TEST(Selfcheck, ShrinkerReturnsInputWhenPredicateNeverHolds) {
  RandomCircuitSpec spec;
  spec.name = "noshrink";
  spec.seed = 7;
  spec.num_gates = 30;
  const Netlist start = make_random_sequential(spec);
  const Netlist out = shrink_netlist(
      start, [](const Netlist&) { return false; }, 50);
  EXPECT_EQ(out.size(), start.size());
}

TEST(Selfcheck, FuzzSmokeAndDeterminism) {
  FuzzOptions opt;
  opt.seed = 77;
  opt.iterations = 6;
  opt.jobs = 2;
  opt.max_gates = 40;
  opt.max_ffs = 6;
  const FuzzReport a = run_fuzz(opt);
  EXPECT_TRUE(a.ok()) << (a.failures.empty() ? "" : a.failures[0].diagnostic);
  EXPECT_EQ(a.iterations, 6);
  for (std::size_t i = 0; i < kNumOracles; ++i) {
    EXPECT_EQ(a.oracle_runs[i], ((kOracleAll >> i) & 1u) ? 6u : 0u)
        << oracle_name(i);
  }
  EXPECT_EQ(a.parser_probes, 6u);

  // Same options → identical report; offset slicing → same per-iteration work.
  const FuzzReport b = run_fuzz(opt);
  EXPECT_EQ(b.failures.size(), a.failures.size());
  FuzzOptions tail = opt;
  tail.offset = 4;
  tail.iterations = 2;
  const FuzzReport c = run_fuzz(tail);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.iterations, 2);
}

TEST(Selfcheck, OracleSubsetRunsOnlySelected) {
  FuzzOptions opt;
  opt.seed = 5;
  opt.iterations = 3;
  opt.oracles = kOraclePackedSim | kOracleCat3;
  opt.parser_stress = false;
  const FuzzReport r = run_fuzz(opt);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.oracle_runs[0], 3u);
  EXPECT_EQ(r.oracle_runs[1], 0u);
  EXPECT_EQ(r.oracle_runs[2], 3u);
  EXPECT_EQ(r.oracle_runs[3], 0u);
  EXPECT_EQ(r.oracle_runs[4], 0u);
  EXPECT_EQ(r.oracle_runs[5], 0u);
  EXPECT_EQ(r.parser_probes, 0u);
}

}  // namespace
}  // namespace fsct
