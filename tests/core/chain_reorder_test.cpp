#include "core/chain_reorder.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "core/classify.h"
#include "netlist/levelize.h"
#include "scan/mux_scan.h"
#include "scan/scan_mode_model.h"
#include "scan/scan_sequences.h"
#include "scan/tpi.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

Netlist circuit(std::uint64_t seed) {
  RandomCircuitSpec spec;
  spec.num_gates = 260;
  spec.num_ffs = 24;
  spec.num_pis = 8;
  spec.num_pos = 6;
  spec.seed = seed;
  return make_random_sequential(spec);
}

void check_shift(const Netlist& nl, const ScanDesign& d) {
  const Levelizer lv(nl);
  const ScanModeModel m(lv, d);
  ASSERT_EQ(m.check(), "");
  SeqSim sim(lv);
  sim.reset(k0);
  std::vector<int> ff_index(nl.size(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    ff_index[nl.dffs()[i]] = static_cast<int>(i);
  }
  const ScanSequenceBuilder sb(nl, d);
  std::mt19937_64 rng(12);
  for (int t = 0; t < 30; ++t) {
    std::vector<Val> v = sb.base_vector(k0);
    std::vector<Val> bits(d.chains.size());
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      bits[c] = (rng() & 1) ? k1 : k0;
      for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        if (nl.inputs()[i] == d.chains[c].scan_in) v[i] = bits[c];
      }
    }
    const std::vector<Val> before = sim.state();
    sim.step(v);
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      const ScanChain& chain = d.chains[c];
      for (std::size_t k = 0; k < chain.length(); ++k) {
        const Val prev =
            (k == 0) ? bits[c]
                     : before[static_cast<std::size_t>(
                           ff_index[chain.ffs[k - 1]])];
        const Val want = chain.segments[k].inverting ? !prev : prev;
        ASSERT_EQ(
            sim.state()[static_cast<std::size_t>(ff_index[chain.ffs[k]])],
            want)
            << "chain " << c << " pos " << k;
      }
    }
  }
}

TEST(ChainReorder, PreservesShiftInvariantAndMembership) {
  Netlist nl = circuit(700);
  const ScanDesign d = run_tpi(nl);
  std::vector<NodeId> before;
  for (const ScanChain& c : d.chains) {
    before.insert(before.end(), c.ffs.begin(), c.ffs.end());
  }
  ReorderStats stats;
  const ScanDesign r = reorder_chains(nl, d, &stats);
  EXPECT_EQ(nl.validate(), "");
  EXPECT_GT(stats.runs, 0);
  std::vector<NodeId> after;
  for (const ScanChain& c : r.chains) {
    after.insert(after.end(), c.ffs.begin(), c.ffs.end());
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after) << "reorder must not add/drop flip-flops";
  check_shift(nl, r);
}

TEST(ChainReorder, WorksOnMuxScanToo) {
  Netlist nl = circuit(701);
  const ScanDesign d = insert_mux_scan(nl);
  ReorderStats stats;
  const ScanDesign r = reorder_chains(nl, d, &stats);
  EXPECT_EQ(stats.runs, 24);  // every FF its own run under MUX scan
  check_shift(nl, r);
}

TEST(ChainReorder, DoesNotIncreaseMeanSpreadMuch) {
  Netlist nl = circuit(702);
  const ScanDesign d = run_tpi(nl);
  ReorderStats stats;
  reorder_chains(nl, d, &stats);
  // Coupled runs adjacent: mean multi-location window spread should not grow
  // (small tolerance for re-balancing artifacts).
  EXPECT_LE(stats.mean_spread_after, stats.mean_spread_before + 1.0)
      << stats.mean_spread_before << " -> " << stats.mean_spread_after;
}

TEST(ChainReorder, MultiChainRewiring) {
  Netlist nl = circuit(703);
  TpiOptions topt;
  topt.num_chains = 3;
  const ScanDesign d = run_tpi(nl, topt);
  const ScanDesign r = reorder_chains(nl, d);
  std::size_t total = 0;
  for (const ScanChain& c : r.chains) total += c.length();
  EXPECT_EQ(total, 24u);
  check_shift(nl, r);
}

TEST(ChainReorder, DeterministicResult) {
  Netlist nl1 = circuit(704);
  Netlist nl2 = circuit(704);
  const ScanDesign d1 = run_tpi(nl1);
  const ScanDesign d2 = run_tpi(nl2);
  const ScanDesign r1 = reorder_chains(nl1, d1);
  const ScanDesign r2 = reorder_chains(nl2, d2);
  ASSERT_EQ(r1.chains.size(), r2.chains.size());
  for (std::size_t c = 0; c < r1.chains.size(); ++c) {
    EXPECT_EQ(r1.chains[c].ffs, r2.chains[c].ffs);
  }
}

}  // namespace
}  // namespace fsct
