// The statistics-aware bench harness: aggregation math, the fsct-bench-v2
// round trip (plus the v1 shim for legacy BENCH_*.json files), noise-aware
// compare exit codes, and the long-run visibility machinery (heartbeat,
// SIGUSR1 status dumps) — including the promise that a status dump never
// perturbs the monitored run.
#include "core/bench_harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <mutex>
#include <sstream>
#include <thread>

#include "bench_circuits/paper_examples.h"
#include "core/obs.h"
#include "core/pipeline.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

TEST(Bench, MedianMadAggregation) {
  const BenchStat s = summarize_samples({3.0, 1.0, 2.0, 10.0, 2.5});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  // deviations: {0.5, 1.5, 0.5, 7.5, 0} -> sorted {0, 0.5, 0.5, 1.5, 7.5}
  EXPECT_DOUBLE_EQ(s.mad, 0.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);

  const BenchStat even = summarize_samples({4.0, 2.0});
  EXPECT_DOUBLE_EQ(even.median, 3.0);
  EXPECT_DOUBLE_EQ(even.mad, 1.0);

  const BenchStat empty = summarize_samples({});
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

/// A one-row document with the given s2 wall stats (seconds).
BenchDocument doc_with(double median, double mad,
                       const std::string& circuit = "s1488") {
  BenchDocument d;
  BenchRow row;
  row.circuit = circuit;
  row.jobs = 1;
  BenchPhase p;
  p.name = "s2";
  p.wall.median = p.wall.min = p.wall.max = median;
  p.wall.mad = mad;
  row.phases.push_back(p);
  d.rows.push_back(std::move(row));
  return d;
}

TEST(Bench, CompareFlagsTrueRegression) {
  // 1.0s -> 1.5s with tiny MAD: beyond every noise component.
  const CompareReport rep =
      compare_bench(doc_with(1.0, 0.001), doc_with(1.5, 0.001));
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_TRUE(rep.deltas[0].regression);
  EXPECT_EQ(rep.deltas[0].circuit, "s1488");
  EXPECT_EQ(rep.deltas[0].phase, "s2");
  EXPECT_EQ(rep.exit_code(), 1);

  std::ostringstream os;
  print_compare_report(os, rep);
  EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(os.str().find("s1488"), std::string::npos);
  EXPECT_NE(os.str().find("s2"), std::string::npos);
}

TEST(Bench, CompareWithinNoiseJitter) {
  // +8% is inside the 10% relative threshold.
  EXPECT_EQ(compare_bench(doc_with(1.0, 0.0), doc_with(1.08, 0.0)).exit_code(),
            0);
  // +20% but the old run was noisy (MAD 0.1 -> 3*MAD = 0.3 window).
  EXPECT_EQ(compare_bench(doc_with(1.0, 0.1), doc_with(1.2, 0.0)).exit_code(),
            0);
  // Sub-millisecond phases can double without tripping the 5 ms floor.
  EXPECT_EQ(
      compare_bench(doc_with(0.001, 0.0), doc_with(0.004, 0.0)).exit_code(),
      0);
  // An *improvement* beyond the noise is informational, never an error.
  const CompareReport faster =
      compare_bench(doc_with(1.0, 0.0), doc_with(0.5, 0.0));
  EXPECT_EQ(faster.exit_code(), 0);
  EXPECT_TRUE(faster.deltas[0].improvement);
}

TEST(Bench, CompareMissingCircuitMismatch) {
  // Same circuit missing from the new doc -> structural mismatch, exit 2,
  // even when nothing regressed.
  const CompareReport rep =
      compare_bench(doc_with(1.0, 0.0), doc_with(1.0, 0.0, "s5378"));
  EXPECT_FALSE(rep.has_regression());
  ASSERT_EQ(rep.mismatches.size(), 2u);  // one per direction
  EXPECT_EQ(rep.exit_code(), 2);
  std::ostringstream os;
  print_compare_report(os, rep);
  EXPECT_NE(os.str().find("MISMATCH"), std::string::npos);
}

TEST(Bench, MismatchOutranksRegression) {
  BenchDocument new_doc = doc_with(9.0, 0.0);  // clear regression...
  new_doc.rows.push_back(doc_with(1.0, 0.0, "extra").rows[0]);  // ...+ extra
  const CompareReport rep = compare_bench(doc_with(1.0, 0.0), new_doc);
  EXPECT_TRUE(rep.has_regression());
  EXPECT_EQ(rep.exit_code(), 2);
}

TEST(Bench, MalformedJsonHasLineAnchor) {
  const std::string bad = "{\n  \"schema\": \"fsct-bench-v2\",\n  oops\n}\n";
  try {
    parse_bench_document(bad, "bad.json");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.json: line 3:"),
              std::string::npos)
        << e.what();
  }
}

TEST(Bench, UnsupportedSchemaRejected) {
  const std::string other =
      "{\n  \"schema\": \"fsct-bench-v99\",\n  \"rows\": []\n}\n";
  try {
    parse_bench_document(other, "future.json");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unsupported bench schema"), std::string::npos);
    EXPECT_NE(msg.find("line 2"), std::string::npos);
  }
}

TEST(Bench, V1ShimReadsLegacyBaseline) {
  // The original BENCH_baseline.json shape: {"note", "rows": [...]} with
  // per-row phase_seconds and no schema marker.
  const std::string v1 = R"({
    "note": "seed baseline",
    "rows": [
      {"circuit": "s1488", "jobs": 1, "faults": 100, "easy": 40, "hard": 2,
       "jobs_oversubscribed": false,
       "phase_seconds": {"classify": 0.01, "s2": 0.2, "s3": 0.05},
       "counters": {"podem_calls": 7}}
    ]
  })";
  const BenchDocument doc = parse_bench_document(v1, "BENCH_baseline.json");
  EXPECT_EQ(doc.schema_version, 1);
  EXPECT_EQ(doc.note, "seed baseline");
  ASSERT_EQ(doc.rows.size(), 1u);
  const BenchRow& row = doc.rows[0];
  EXPECT_EQ(row.circuit, "s1488");
  EXPECT_EQ(row.reps, 1);
  ASSERT_EQ(row.phases.size(), 4u);  // classify, s2, s3 + synthesized total
  EXPECT_EQ(row.phases[1].name, "s2");
  EXPECT_DOUBLE_EQ(row.phases[1].wall.median, 0.2);
  EXPECT_DOUBLE_EQ(row.phases[1].wall.mad, 0.0);  // single-shot: no spread
  EXPECT_EQ(row.phases[3].name, "total");
  EXPECT_NEAR(row.phases[3].wall.median, 0.26, 1e-12);
  ASSERT_EQ(row.counters.size(), 1u);
  EXPECT_EQ(row.counters[0].second, 7u);
  ASSERT_GE(row.results.size(), 3u);

  // Shape B: the bare row array the table benches emit with --json.
  const BenchDocument arr = parse_bench_document(
      "[{\"circuit\": \"s953\", \"jobs\": 4,"
      " \"phase_seconds\": {\"s2\": 1.5}}]",
      "rows.json");
  EXPECT_EQ(arr.schema_version, 1);
  ASSERT_EQ(arr.rows.size(), 1u);
  EXPECT_EQ(arr.rows[0].jobs, 4u);

  // A v1 document self-compares clean through the shim.
  EXPECT_EQ(compare_bench(doc, doc).exit_code(), 0);
}

TEST(Bench, LabelValidation) {
  EXPECT_TRUE(valid_bench_label("baseline"));
  EXPECT_TRUE(valid_bench_label("pr-12_rc.2"));
  EXPECT_FALSE(valid_bench_label(""));
  EXPECT_FALSE(valid_bench_label("has space"));
  EXPECT_FALSE(valid_bench_label("a/b"));      // would escape the directory
  EXPECT_FALSE(valid_bench_label("semi;rm"));  // shell metacharacters
}

TEST(Bench, MachineFingerprint) {
  const BenchMachine m = fingerprint_machine();
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_FALSE(m.os.empty());
  EXPECT_FALSE(m.sanitizer.empty());
  EXPECT_FALSE(m.governor.empty());
  EXPECT_FALSE(m.git_sha.empty());
}

TEST(Bench, RunTinyCircuitRoundTrips) {
  BenchRunConfig cfg;
  cfg.label = "test";
  cfg.circuits = {"s1488"};
  cfg.reps = 2;
  cfg.warmup = 0;
  cfg.jobs = {1};
  int progress_lines = 0;
  cfg.progress = [&](const std::string&) { ++progress_lines; };

  const BenchDocument doc = run_bench(cfg);
  EXPECT_EQ(progress_lines, 2);
  ASSERT_EQ(doc.rows.size(), 1u);
  const BenchRow& row = doc.rows[0];
  EXPECT_EQ(row.circuit, "s1488");
  EXPECT_EQ(row.jobs, 1u);
  EXPECT_EQ(row.reps, 2);
  ASSERT_EQ(row.phases.size(), 4u);
  EXPECT_EQ(row.phases.back().name, "total");
  EXPECT_GT(row.phases.back().wall.median, 0.0);
  EXPECT_TRUE(row.phases.back().has_cpu);
  EXPECT_GE(row.phases.back().wall.max, row.phases.back().wall.min);
  EXPECT_FALSE(row.counters.empty());
  EXPECT_FALSE(row.results.empty());
#ifdef __linux__
  EXPECT_GT(row.peak_rss_kb, 0);
#endif

  // Serialize -> parse -> identical structure; self-compare is clean.
  const std::string json = write_bench_json(doc);
  const BenchDocument back = parse_bench_document(json, "roundtrip.json");
  EXPECT_EQ(back.schema_version, 2);
  EXPECT_EQ(back.label, "test");
  ASSERT_EQ(back.rows.size(), 1u);
  EXPECT_EQ(back.rows[0].phases.size(), row.phases.size());
  EXPECT_DOUBLE_EQ(back.rows[0].phases.back().wall.median,
                   row.phases.back().wall.median);
  EXPECT_EQ(back.rows[0].counters, row.counters);
  EXPECT_EQ(back.machine.compiler, doc.machine.compiler);
  EXPECT_EQ(compare_bench(doc, back).exit_code(), 0);
}

TEST(Bench, RunWithAttributionKeepsCountersIdentical) {
  BenchRunConfig cfg;
  cfg.label = "attr";
  cfg.circuits = {"s1488"};
  cfg.reps = 1;
  cfg.warmup = 0;
  cfg.jobs = {2};
  const BenchDocument off = run_bench(cfg);
  cfg.attribution = true;
  const BenchDocument on = run_bench(cfg);
  ASSERT_EQ(off.rows.size(), 1u);
  ASSERT_EQ(on.rows.size(), 1u);
  // The ledger is pure observation: the deterministic counters and results
  // are unchanged whether it is charging or not.
  EXPECT_EQ(off.rows[0].counters, on.rows[0].counters);
  EXPECT_EQ(off.rows[0].results, on.rows[0].results);
}

TEST(Bench, RunRejectsUnknownCircuit) {
  BenchRunConfig cfg;
  cfg.circuits = {"not-a-circuit"};
  EXPECT_THROW(run_bench(cfg), std::invalid_argument);
}

/// Collects monitor output lines thread-safely.
struct SinkLines {
  std::mutex m;
  std::vector<std::string> lines;
  std::function<void(const std::string&)> sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(m);
      lines.push_back(line);
    };
  }
  bool any_contains(const std::string& needle) {
    std::lock_guard<std::mutex> lock(m);
    for (const std::string& l : lines) {
      if (l.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

TEST(Bench, MonitorHeartbeatEmitsLines) {
  ObsRegistry reg;
  ObsRegistry* prev = set_status_registry(&reg);
  reg.begin_phase("step2.atpg", 100);
  reg.phase_tick(25);
  SinkLines out;
  {
    ObsMonitor::Options mopt;
    mopt.poll_ms = 5;
    mopt.heartbeat = true;
    mopt.heartbeat_ms = 10;
    mopt.sink = out.sink();
    const ObsMonitor monitor(mopt);
    for (int i = 0; i < 100 && !out.any_contains("heartbeat"); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  reg.end_phase();
  set_status_registry(prev);
  EXPECT_TRUE(out.any_contains("heartbeat"));
  EXPECT_TRUE(out.any_contains("phase=step2.atpg"));
  EXPECT_TRUE(out.any_contains("done=25/100"));
}

TEST(Bench, HeartbeatCarriesRunContext) {
  // What run_bench sets per repetition: the context labels every heartbeat
  // so a long multi-circuit bench is attributable mid-flight.
  ObsRegistry reg;
  reg.set_context("s1488 jobs=2 rep 3/5");
  ObsRegistry* prev = set_status_registry(&reg);
  reg.begin_phase("classify", 10);
  SinkLines out;
  {
    ObsMonitor::Options mopt;
    mopt.poll_ms = 5;
    mopt.heartbeat = true;
    mopt.heartbeat_ms = 10;
    mopt.sink = out.sink();
    const ObsMonitor monitor(mopt);
    for (int i = 0; i < 100 && !out.any_contains("heartbeat"); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  reg.end_phase();
  set_status_registry(prev);
  EXPECT_TRUE(out.any_contains("[s1488 jobs=2 rep 3/5]"));
}

TEST(Bench, Sigusr1StatusDump) {
#ifdef SIGUSR1
  install_sigusr1_handler();
  ObsRegistry reg;
  ObsRegistry* prev = set_status_registry(&reg);
  reg.begin_phase("step3.groups", 8);
  reg.phase_tick(3);
  reg.add(Ctr::PodemCalls, 42);
  SinkLines out;
  {
    ObsMonitor::Options mopt;
    mopt.poll_ms = 5;
    mopt.sink = out.sink();
    const ObsMonitor monitor(mopt);
    std::raise(SIGUSR1);
    for (int i = 0; i < 200 && !out.any_contains("end status"); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  reg.end_phase();
  set_status_registry(prev);
  EXPECT_TRUE(out.any_contains("=== fsct status ==="));
  EXPECT_TRUE(out.any_contains("step3.groups"));
  EXPECT_TRUE(out.any_contains("=== end status ==="));
#else
  GTEST_SKIP() << "no SIGUSR1 on this platform";
#endif
}

TEST(Bench, StatusDumpDoesNotPerturbResults) {
  // Reference run, unmonitored.
  Netlist nl = small_pipeline();
  const ScanDesign design = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, design);
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.jobs = 2;
  const PipelineResult ref = run_fsct_pipeline(model, faults, opt);

  // Monitored run: heartbeat at maximum rate plus concurrent status dumps
  // hammering the live registry while the pipeline works.
  ObsRegistry reg;
  opt.obs = &reg;
  SinkLines out;
  ObsMonitor::Options mopt;
  mopt.poll_ms = 1;
  mopt.heartbeat = true;
  mopt.heartbeat_ms = 1;
  mopt.sink = out.sink();
  ObsMonitor monitor(mopt);
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load()) monitor.dump_now();
  });
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);
  stop.store(true);
  dumper.join();

  // Bitwise-identical outcome: observation is read-only.
  EXPECT_EQ(r.outcome, ref.outcome);
  EXPECT_EQ(r.vectors, ref.vectors);
  EXPECT_EQ(r.s2_detected, ref.s2_detected);
  EXPECT_EQ(r.s3_detected, ref.s3_detected);
  EXPECT_EQ(r.detection_curve, ref.detection_curve);
}

}  // namespace
}  // namespace fsct
