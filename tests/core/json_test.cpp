#include "core/json.h"

#include <gtest/gtest.h>

namespace fsct {
namespace {

TEST(Json, ParsesScalarsArraysObjects) {
  const std::string text = R"({
  "s": "a\nb\"c\\d",
  "n": -12.5e1,
  "t": true, "f": false, "z": null,
  "a": [1, 2, 3],
  "o": {"k": 7}
})";
  JsonParser p(text, "t.json");
  const JVal root = p.parse();
  ASSERT_EQ(root.kind, JVal::Obj);
  EXPECT_EQ(root.find("s")->str, "a\nb\"c\\d");
  EXPECT_DOUBLE_EQ(root.find("n")->num, -125.0);
  EXPECT_TRUE(root.find("t")->b);
  EXPECT_FALSE(root.find("f")->b);
  EXPECT_EQ(root.find("z")->kind, JVal::Null);
  ASSERT_EQ(root.find("a")->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(root.find("a")->arr[2].num, 3.0);
  EXPECT_DOUBLE_EQ(root.find("o")->find("k")->num, 7.0);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(Json, ErrorsCarryNameAndLineAnchor) {
  const std::string text = "{\n  \"a\": 1,\n  \"b\": bogus\n}";
  JsonParser p(text, "broken.json");
  try {
    p.parse();
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("broken.json: line 3"),
              std::string::npos)
        << e.what();
  }
}

TEST(Json, RejectsTrailingContent) {
  const std::string text = "{} extra";
  JsonParser p(text, "t.json");
  EXPECT_THROW(p.parse(), JsonParseError);
}

TEST(Json, HelpersValidateTypesAndRequiredness) {
  const std::string text = R"({"n": 3, "s": "x", "m": {"a": 1, "b": "skip"}})";
  JsonParser p(text, "t.json");
  const JVal root = p.parse();
  EXPECT_DOUBLE_EQ(json_num(p, root, "n"), 3.0);
  EXPECT_DOUBLE_EQ(json_num(p, root, "absent", 9.0), 9.0);
  EXPECT_THROW(json_num(p, root, "absent", 0, /*required=*/true),
               JsonParseError);
  EXPECT_THROW(json_num(p, root, "s"), JsonParseError);
  EXPECT_EQ(json_str(p, root, "s"), "x");
  EXPECT_EQ(json_str(p, root, "absent", "d"), "d");
  std::vector<std::pair<std::string, std::uint64_t>> out;
  json_uint_map(p, *root.find("m"), out);
  ASSERT_EQ(out.size(), 1u);  // the string member is tolerated and skipped
  EXPECT_EQ(out[0].first, "a");
  EXPECT_EQ(out[0].second, 1u);
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string raw = "a\"b\\c\nd\te\x01f";
  const std::string doc = "{\"k\": \"" + json_escape(raw) + "\"}";
  JsonParser p(doc, "t.json");
  const JVal root = p.parse();
  EXPECT_EQ(root.find("k")->str, raw);
}

TEST(Json, EscapePassesValidUtf8Through) {
  EXPECT_EQ(json_escape("caf\xC3\xA9"), "caf\xC3\xA9");          // U+00E9
  EXPECT_EQ(json_escape("\xE2\x82\xAC"), "\xE2\x82\xAC");        // U+20AC
  EXPECT_EQ(json_escape("\xF0\x9F\x99\x82"), "\xF0\x9F\x99\x82");  // U+1F642
}

TEST(Json, EscapeReplacesInvalidBytesWithReplacementChar) {
  const std::string fffd = "\xEF\xBF\xBD";  // U+FFFD
  // A Latin-1 gate name ("café" as 0xE9): the lone byte is not UTF-8 and
  // must come out as U+FFFD, never as a raw byte that breaks the document.
  EXPECT_EQ(json_escape("caf\xE9"), "caf" + fffd);
  // Lone continuation byte.
  EXPECT_EQ(json_escape("\x80"), fffd);
  // Sequence truncated by end of string: lead and stray continuation each
  // become one replacement.
  EXPECT_EQ(json_escape("a\xE2\x82"), "a" + fffd + fffd);
  // Overlong encoding (of '/') and a UTF-16 surrogate are invalid UTF-8.
  EXPECT_EQ(json_escape("\xE0\x80\xAF"), fffd + fffd + fffd);
  EXPECT_EQ(json_escape("\xED\xA0\x80"), fffd + fffd + fffd);
  // Above U+10FFFF.
  EXPECT_EQ(json_escape("\xF4\x90\x80\x80"), fffd + fffd + fffd + fffd);
}

}  // namespace
}  // namespace fsct
