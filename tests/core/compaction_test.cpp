#include "core/compaction.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct World {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  std::vector<Fault> faults;
  PipelineResult result;

  explicit World(std::uint64_t seed) : nl(make(seed)), design(run_tpi(nl)),
                                       lv(nl), model(lv, design),
                                       faults(collapsed_fault_list(nl)) {
    PipelineOptions opt;
    opt.random_patterns = 32;
    // Compaction reasons about the step-2 vector set alone, so run without
    // flush/ledger credit: every hard fault's coverage must be attributable
    // to a vector for the union-coverage identity below to hold.
    opt.dominance = false;
    result = run_fsct_pipeline(model, faults, opt);
  }
  static Netlist make(std::uint64_t seed) {
    RandomCircuitSpec spec;
    spec.num_gates = 240;
    spec.num_ffs = 18;
    spec.num_pis = 8;
    spec.num_pos = 5;
    spec.seed = seed;
    return make_random_sequential(spec);
  }

  std::vector<Fault> hard_faults() const {
    std::vector<Fault> h;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (result.info[i].category == ChainFaultCategory::Hard) {
        h.push_back(faults[i]);
      }
    }
    return h;
  }
};

TEST(Compaction, DetectionSetsMatchPipelineTotals) {
  World w(90);
  ASSERT_GT(w.result.vectors.size(), 0u);
  const auto hard = w.hard_faults();
  const auto det = per_vector_detections(w.model, w.result.vectors, hard);
  ASSERT_EQ(det.size(), w.result.vectors.size());
  std::vector<char> covered(hard.size(), 0);
  for (const auto& d : det) {
    for (std::size_t f : d) covered[f] = 1;
  }
  const auto n = static_cast<std::size_t>(
      std::count(covered.begin(), covered.end(), 1));
  // Union coverage equals the pipeline's sequentially verified detections.
  EXPECT_EQ(n, w.result.s2_detected);
}

TEST(Compaction, CompactionIsLossless) {
  World w(91);
  const auto hard = w.hard_faults();
  const CompactionResult c =
      compact_vectors(w.model, w.result.vectors, hard);
  EXPECT_EQ(c.covered_kept, c.covered_full);
  EXPECT_LE(c.kept.size(), w.result.vectors.size());
  EXPECT_TRUE(std::is_sorted(c.kept.begin(), c.kept.end()));
}

TEST(Compaction, CompactedSetStillCoversEverything) {
  World w(92);
  const auto hard = w.hard_faults();
  const CompactionResult c = compact_vectors(w.model, w.result.vectors, hard);
  // Re-simulate only the kept vectors and confirm identical coverage.
  std::vector<ScanVector> kept;
  for (std::size_t i : c.kept) kept.push_back(w.result.vectors[i]);
  const auto det = per_vector_detections(w.model, kept, hard);
  std::vector<char> covered(hard.size(), 0);
  for (const auto& d : det) {
    for (std::size_t f : d) covered[f] = 1;
  }
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(covered.begin(), covered.end(), 1)),
            c.covered_full);
}

TEST(Compaction, TruncationCurveMonotoneAndEndsAtFullCoverage) {
  World w(93);
  const auto hard = w.hard_faults();
  const auto det = per_vector_detections(w.model, w.result.vectors, hard);
  const auto curve = truncation_curve(det, hard.size());
  ASSERT_EQ(curve.size(), det.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  if (!curve.empty()) {
    const CompactionResult c =
        compact_vectors(w.model, w.result.vectors, hard);
    EXPECT_EQ(curve.back(), c.covered_full);
  }
}

TEST(Compaction, FrontLoadedDetection) {
  // The paper's Figure-5 observation: the first half of the set detects the
  // large majority.
  World w(94);
  const auto hard = w.hard_faults();
  const auto det = per_vector_detections(w.model, w.result.vectors, hard);
  const auto curve = truncation_curve(det, hard.size());
  if (curve.size() >= 4 && curve.back() > 0) {
    EXPECT_GE(curve[curve.size() / 2] * 10, curve.back() * 5)
        << "first half detects under 50% — not front-loaded";
  }
}

TEST(Compaction, EmptyInputsAreFine) {
  World w(95);
  const auto hard = w.hard_faults();
  const CompactionResult c = compact_vectors(w.model, {}, hard);
  EXPECT_TRUE(c.kept.empty());
  EXPECT_EQ(c.covered_full, 0u);
  const auto curve = truncation_curve({}, hard.size());
  EXPECT_TRUE(curve.empty());
}

}  // namespace
}  // namespace fsct
