#include "core/classify.h"

#include <gtest/gtest.h>

#include "bench_circuits/paper_examples.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_sequences.h"

namespace fsct {
namespace {

struct Built {
  ExampleDesign e;
  Levelizer lv;
  ScanModeModel model;
  ChainFaultClassifier cls;
  explicit Built(ExampleDesign ed)
      : e(std::move(ed)), lv(e.nl), model(lv, e.design), cls(model) {}
};

TEST(Classify, Figure2FaultIsCategory2AtLastLocation) {
  Built b(paper_figure2());
  const Fault f = paper_figure2_fault(b.e.nl);
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::Hard);
  ASSERT_EQ(info.locations.size(), 1u);
  EXPECT_EQ(info.locations[0].segment, 5);
  EXPECT_FALSE(info.multi_chain);
}

TEST(Classify, Figure2AlternatingSequenceMissesTheFault) {
  // The paper's headline: a period-4 shortened chain hides from 0011....
  Built b(paper_figure2());
  const Fault f = paper_figure2_fault(b.e.nl);
  const ScanSequenceBuilder sb(b.e.nl, b.e.design);
  SeqFaultSim sim(b.lv, {b.e.nl.find("f6")});
  const Fault faults[] = {f};
  const auto r = sim.run_serial(sb.alternating(40), faults);
  EXPECT_EQ(r.detect_cycle[0], -1) << "alternating sequence must miss it";
}

TEST(Classify, Figure2Category1FaultCaughtByAlternating) {
  // en s-a-1 is the opposite: the OR side b stays 0... en s-a-1 equals the
  // good assignment, so take a chain-net stuck instead: a s-a-1 makes d6=1.
  Built b(paper_figure2());
  const Fault f{b.e.nl.find("a"), -1, true};
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::Easy);
  const ScanSequenceBuilder sb(b.e.nl, b.e.design);
  SeqFaultSim sim(b.lv, {b.e.nl.find("f6")});
  const Fault faults[] = {f};
  const auto r = sim.run_serial(sb.alternating(40), faults);
  EXPECT_GE(r.detect_cycle[0], 0) << "alternating sequence must catch cat-1";
}

TEST(Classify, Figure3MultipleLocationsLastDecides) {
  Built b(paper_figure3());
  const Fault f = paper_figure3_fault(b.e.nl);
  const ChainFaultInfo info = b.cls.classify(f);
  // pi1 s-a-0: g1 = AND(f1, 0) = 0 (cat-1 at segment 1; in steady state
  // f2/f3 latch the constant, extending it to segments 2 and 3), while
  // s = AND(NOT(0)=1, f1) = X is a cat-2 side of g2 at segment 3.  The last
  // location carries a category-2 event, so category 2 takes priority.
  EXPECT_EQ(info.category, ChainFaultCategory::Hard);
  ASSERT_EQ(info.locations.size(), 3u);
  EXPECT_EQ(info.locations[0].segment, 1);
  EXPECT_EQ(info.locations[2].segment, 3);
}

TEST(Classify, Figure3ReversedPriorityWhenLastIsStuck) {
  // pi1 s-a-1 matches the good value: no effect at all (category 3).
  Built b(paper_figure3());
  const Fault f{b.e.nl.find("pi1"), -1, true};
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::NotAffecting);
  EXPECT_TRUE(info.locations.empty());
}

TEST(Classify, ChainNetStuckIsCategory1) {
  Built b(paper_figure3());
  // g1 output s-a-0 pins the chain net between f1 and f2.
  const Fault f{b.e.nl.find("g1"), -1, false};
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::Easy);
  ASSERT_GE(info.locations.size(), 1u);
  EXPECT_EQ(info.locations[0].segment, 1);
}

TEST(Classify, ScanInStuckIsCategory1AtSegmentZero) {
  Built b(paper_figure3());
  const Fault f{b.e.nl.find("si"), -1, true};
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::Easy);
  EXPECT_EQ(info.locations[0].segment, 0);
}

TEST(Classify, DffPinFaultIsStuckCapture) {
  Built b(paper_figure3());
  const NodeId f3 = b.e.nl.find("f3");
  const Fault f{f3, 0, true};  // D pin of f3 s-a-1
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::Easy);
  // f3 = ffs[2]: capture location is segment 2.
  EXPECT_EQ(info.locations[0].segment, 2);
}

TEST(Classify, DffOutputFaultPropagates) {
  Built b(paper_figure3());
  const Fault f{b.e.nl.find("f4"), -1, false};  // scan-out Q stuck
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::Easy);
  EXPECT_EQ(info.locations[0].segment, 4);  // "at the scan-out"
}

TEST(Classify, FaultOffTheChainIsCategory3) {
  // Fig-2 PO-side logic: nothing besides the chain exists, so craft one: the
  // en_n net's s-a-0 equals its good value -> category 3.
  Built b(paper_figure2());
  const Fault f{b.e.nl.find("en_n"), -1, false};
  const ChainFaultInfo info = b.cls.classify(f);
  EXPECT_EQ(info.category, ChainFaultCategory::NotAffecting);
}

TEST(Classify, ClassifyAllMatchesIndividualCalls) {
  Built b(paper_figure3());
  const auto faults = collapsed_fault_list(b.e.nl);
  const auto all = b.cls.classify_all(faults);
  ASSERT_EQ(all.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ChainFaultInfo one = b.cls.classify(faults[i]);
    EXPECT_EQ(all[i].category, one.category) << fault_name(b.e.nl, faults[i]);
    EXPECT_EQ(all[i].locations, one.locations);
  }
}

TEST(Classify, ScratchStateFullyRestoredBetweenFaults) {
  Built b(paper_figure2());
  const Fault f = paper_figure2_fault(b.e.nl);
  const ChainFaultInfo a1 = b.cls.classify(f);
  // Classify something unrelated, then the same fault again.
  b.cls.classify({b.e.nl.find("si"), -1, false});
  const ChainFaultInfo a2 = b.cls.classify(f);
  EXPECT_EQ(a1.category, a2.category);
  EXPECT_EQ(a1.locations, a2.locations);
}

}  // namespace
}  // namespace fsct
