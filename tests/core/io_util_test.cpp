#include "core/io_util.h"

#include <gtest/gtest.h>

#ifndef _WIN32

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace fsct {
namespace {

TEST(IoUtil, WriteAllResumesAcrossShortWrites) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Far beyond the default pipe buffer, so write(2) is forced to return
  // short counts and write_all has to resume from the right offset.
  const std::string payload(1 << 20, 'x');
  std::string got;
  std::thread reader([&] {
    char buf[4096];
    long n;
    while ((n = read_retry(fds[0], buf, sizeof buf)) > 0) got.append(buf, n);
  });
  EXPECT_TRUE(write_all(fds[1], payload.data(), payload.size()));
  close(fds[1]);
  reader.join();
  close(fds[0]);
  EXPECT_EQ(got, payload);
}

TEST(IoUtil, WriteLineAppendsNewlineInOneBuffer) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  EXPECT_TRUE(write_line(fds[1], "hello"));
  char buf[16];
  const long n = read_retry(fds[0], buf, sizeof buf);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), "hello\n");
  close(fds[0]);
  close(fds[1]);
}

TEST(IoUtil, ReadRetryAbsorbsEintr) {
  // The fsct SIGUSR1 handler is installed without SA_RESTART, so a daemon's
  // blocking reads really do come back EINTR.  Install a no-op handler the
  // same way and pepper a blocked reader with signals: read_retry must keep
  // retrying until real data arrives instead of surfacing the interrupt.
  struct sigaction sa {};
  sa.sa_handler = +[](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: EINTR is real
  struct sigaction prev {};
  ASSERT_EQ(sigaction(SIGUSR2, &sa, &prev), 0);

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::atomic<bool> started{false};
  long got = -2;
  char buf[8] = {};
  std::thread t([&] {
    started = true;
    got = read_retry(fds[0], buf, sizeof buf);
  });
  while (!started) std::this_thread::yield();
  for (int i = 0; i < 20; ++i) {
    pthread_kill(t.native_handle(), SIGUSR2);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(write_all(fds[1], "ok", 2));
  t.join();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(std::string(buf, 2), "ok");
  close(fds[0]);
  close(fds[1]);
  sigaction(SIGUSR2, &prev, nullptr);
}

}  // namespace
}  // namespace fsct

#endif  // _WIN32
