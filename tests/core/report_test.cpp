#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fsct {
namespace {

TEST(Report, Table1RowFormats) {
  std::ostringstream os;
  print_table1_header(os);
  print_table1_row(os, {"s1423", 657, 74, 1515, 1});
  const std::string s = os.str();
  EXPECT_NE(s.find("s1423"), std::string::npos);
  EXPECT_NE(s.find("657"), std::string::npos);
  EXPECT_NE(s.find("#chains"), std::string::npos);
}

TEST(Report, Table2PercentagesAgainstTotal) {
  std::ostringstream os;
  Table2Row r;
  r.name = "x";
  r.total_faults = 200;
  r.easy = 50;
  r.hard = 10;
  r.seconds = 1.5;
  print_table2_row(os, r);
  const std::string s = os.str();
  EXPECT_NE(s.find("(25.0%)"), std::string::npos);
  EXPECT_NE(s.find("(5.0%)"), std::string::npos);
  EXPECT_NE(s.find("1.50s"), std::string::npos);
}

TEST(Report, Table2ZeroTotalIsSafe) {
  std::ostringstream os;
  Table2Row r;
  r.name = "empty";
  print_table2_row(os, r);
  EXPECT_NE(os.str().find("(0.0%)"), std::string::npos);
}

TEST(Report, Table3RowCarriesBothHalves) {
  std::ostringstream os;
  Table3Row r;
  r.name = "y";
  r.s2_det = 123;
  r.s2_undetectable = 4;
  r.s2_undetected = 5;
  r.circ_group = 6;
  r.circ_final = 7;
  r.s3_det = 3;
  r.s3_undetectable = 1;
  r.s3_undetected = 1;
  print_table3_header(os);
  print_table3_row(os, r);
  const std::string s = os.str();
  EXPECT_NE(s.find("123"), std::string::npos);
  EXPECT_NE(s.find("6,7"), std::string::npos);
  EXPECT_NE(s.find("#undetectable"), std::string::npos);
}

TEST(Report, ConversionFromPipelineResult) {
  PipelineResult pr;
  pr.total_faults = 100;
  pr.easy = 20;
  pr.hard = 10;
  pr.classify_seconds = 0.5;
  pr.s2_detected = 8;
  pr.s2_undetectable = 1;
  pr.s2_undetected = 1;
  pr.s3_circuits_group = 2;
  pr.s3_circuits_final = 1;
  pr.s3_detected = 1;

  const Table2Row t2 = to_table2("c", pr);
  EXPECT_EQ(t2.total_faults, 100u);
  EXPECT_EQ(t2.easy, 20u);
  EXPECT_EQ(t2.seconds, 0.5);

  const Table3Row t3 = to_table3("c", pr);
  EXPECT_EQ(t3.s2_det, 8u);
  EXPECT_EQ(t3.circ_group, 2u);
  EXPECT_EQ(t3.s3_det, 1u);
}

}  // namespace
}  // namespace fsct
