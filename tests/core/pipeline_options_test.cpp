// Option coverage for the screening pipeline: every knob must keep the
// accounting invariants, and the verified-sequence bookkeeping must line up.
#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "core/pipeline.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct World {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  std::vector<Fault> faults;
  explicit World(std::uint64_t seed)
      : nl(make(seed)), design(run_tpi(nl)), lv(nl), model(lv, design),
        faults(collapsed_fault_list(nl)) {}
  static Netlist make(std::uint64_t seed) {
    RandomCircuitSpec spec;
    spec.num_gates = 220;
    spec.num_ffs = 16;
    spec.num_pis = 7;
    spec.num_pos = 5;
    spec.seed = seed;
    return make_random_sequential(spec);
  }
};

void check_invariants(const PipelineResult& r) {
  EXPECT_EQ(r.affecting(), r.easy + r.hard);
  EXPECT_EQ(r.hard, r.flush_detected + r.s2_detected + r.s2_undetectable +
                        r.s2_undetected);
  EXPECT_EQ(r.s2_undetected,
            r.s3_detected + r.s3_undetectable + r.s3_undetected);
}

TEST(PipelineOptions, NoRandomPatternsPureAtpg) {
  World w(500);
  PipelineOptions opt;
  opt.random_patterns = 0;
  const PipelineResult r = run_fsct_pipeline(w.model, w.faults, opt);
  check_invariants(r);
  // Pure deterministic step 2 can now prove faults undetectable.
  EXPECT_GT(r.s2_detected + r.s2_undetectable, 0u);
}

TEST(PipelineOptions, WithAndWithoutPoObservation) {
  World w(501);
  PipelineOptions with;
  PipelineOptions without;
  without.observe_pos = false;
  const PipelineResult a = run_fsct_pipeline(w.model, w.faults, with);
  const PipelineResult b = run_fsct_pipeline(w.model, w.faults, without);
  check_invariants(a);
  check_invariants(b);
  // Dropping the PO observation can only lose step-3 coverage.
  EXPECT_LE(b.s3_detected, a.s3_detected + a.s3_undetectable +
                               a.s3_undetected);
}

TEST(PipelineOptions, ManualDistanceParams) {
  World w(502);
  PipelineOptions opt;
  opt.auto_dist = false;
  opt.dist.large_dist = 4;
  opt.dist.med_dist = 2;
  opt.dist.dist = 1;
  const PipelineResult r = run_fsct_pipeline(w.model, w.faults, opt);
  check_invariants(r);
}

TEST(PipelineOptions, VerifiedSequencesAlignWithDetections) {
  World w(503);
  PipelineOptions opt;
  opt.verify_seq = true;
  const PipelineResult r = run_fsct_pipeline(w.model, w.faults, opt);
  EXPECT_EQ(r.s3_sequences.size(), r.s3_sequence_fault.size());
  EXPECT_EQ(r.s3_sequences.size(), r.s3_detected);
  for (std::size_t k = 0; k < r.s3_sequence_fault.size(); ++k) {
    const FaultOutcome o = r.outcome[r.s3_sequence_fault[k]];
    EXPECT_TRUE(o == FaultOutcome::DetectedSeq ||
                o == FaultOutcome::DetectedFinal);
    EXPECT_FALSE(r.s3_sequences[k].empty());
  }
}

TEST(PipelineOptions, TinyFrameCapDegradesGracefully) {
  World w(504);
  PipelineOptions opt;
  opt.frame_cap = 3;
  const PipelineResult r = run_fsct_pipeline(w.model, w.faults, opt);
  check_invariants(r);  // fewer frames may cost coverage, never consistency
}

TEST(PipelineOptions, ZeroTimeBudgetsStillTerminate) {
  World w(505);
  PipelineOptions opt;
  opt.comb_time_limit_ms = 1;
  opt.seq_time_limit_ms = 1;
  opt.final_time_limit_ms = 1;
  const PipelineResult r = run_fsct_pipeline(w.model, w.faults, opt);
  check_invariants(r);
}

TEST(PipelineOptions, ExplicitObserveCyclesRespected) {
  World w(506);
  PipelineOptions a;
  a.observe_cycles = 1;  // too short to flush everything out
  PipelineOptions b;
  b.observe_cycles = 2 * w.model.max_chain_length();
  const PipelineResult ra = run_fsct_pipeline(w.model, w.faults, a);
  const PipelineResult rb = run_fsct_pipeline(w.model, w.faults, b);
  check_invariants(ra);
  check_invariants(rb);
  // Longer observation windows never reduce step-2 coverage.
  EXPECT_LE(ra.s2_detected, rb.s2_detected);
}

}  // namespace
}  // namespace fsct
