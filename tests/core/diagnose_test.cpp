#include "core/diagnose.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "scan/scan_sequences.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct World {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  explicit World(std::uint64_t seed)
      : nl(make(seed)), design(run_tpi(nl)), lv(nl), model(lv, design) {}
  static Netlist make(std::uint64_t seed) {
    RandomCircuitSpec spec;
    spec.num_gates = 220;
    spec.num_ffs = 16;
    spec.num_pis = 7;
    spec.num_pos = 5;
    spec.seed = seed;
    return make_random_sequential(spec);
  }
  TestSequence stimulus() const {
    ScanSequenceBuilder sb(nl, design);
    TestSequence seq = sb.alternating(2 * model.max_chain_length() + 8);
    // A second phase with inverted fill exercises more of the chain logic.
    TestSequence more = sb.alternating(model.max_chain_length(), Val::One);
    seq.insert(seq.end(), more.begin(), more.end());
    return seq;
  }
};

TEST(Diagnose, DefaultObservationPointsArePosAndScanOuts) {
  World w(70);
  ChainDiagnoser diag(w.model);
  EXPECT_GE(diag.observe().size(),
            w.nl.outputs().size());
}

TEST(Diagnose, TrueFaultRanksFirst) {
  World w(71);
  ChainDiagnoser diag(w.model);
  const auto faults = collapsed_fault_list(w.nl);
  // Pick a handful of chain-affecting injected "defects" and check ranking.
  ChainFaultClassifier cls(w.model);
  int tried = 0, top5 = 0;
  const TestSequence seq = w.stimulus();
  for (const Fault& f : faults) {
    const ChainFaultInfo info = cls.classify(f);
    if (info.category == ChainFaultCategory::NotAffecting) continue;
    if (++tried > 10) break;
    const ObservedResponse obs = diag.make_response(seq, f);
    const auto ranked = diag.diagnose(obs, faults, 5);
    ASSERT_FALSE(ranked.empty());
    // The injected fault must be perfectly consistent.
    bool in_top5 = false;
    for (const auto& c : ranked) {
      if (c.fault == f) {
        in_top5 = true;
        EXPECT_EQ(c.contradictions, 0) << fault_name(w.nl, f);
      }
    }
    top5 += in_top5;
  }
  ASSERT_GT(tried, 5);
  // The true defect (or an equivalent fault with identical signature) must
  // essentially always make the top-5.
  EXPECT_GE(top5 * 10, (tried - 1) * 9) << top5 << "/" << tried;
}

TEST(Diagnose, HealthyResponseHasNoSymptoms) {
  World w(72);
  ChainDiagnoser diag(w.model);
  const TestSequence seq = w.stimulus();
  // Observe the good machine itself.
  SeqSim sim(w.lv);
  ObservedResponse obs;
  obs.sequence = seq;
  for (const auto& pi : seq) {
    const auto& v = sim.step(pi);
    std::vector<Val> row;
    for (NodeId o : diag.observe()) row.push_back(v[o]);
    obs.observed.push_back(std::move(row));
  }
  const auto faults = collapsed_fault_list(w.nl);
  const auto ranked = diag.diagnose(obs, faults, 0);
  for (const auto& c : ranked) {
    EXPECT_EQ(c.explained, 0) << fault_name(w.nl, c.fault);
  }
}

TEST(Diagnose, MaskedObservationsAreNeutral) {
  World w(73);
  ChainDiagnoser diag(w.model);
  const auto faults = collapsed_fault_list(w.nl);
  const Fault f = faults[faults.size() / 2];
  const TestSequence seq = w.stimulus();
  ObservedResponse obs = diag.make_response(seq, f);
  // Mask everything: every candidate becomes perfectly consistent.
  for (auto& row : obs.observed) {
    for (Val& v : row) v = Val::X;
  }
  const auto ranked = diag.diagnose(obs, faults, 0);
  for (const auto& c : ranked) {
    EXPECT_EQ(c.contradictions, 0);
    EXPECT_EQ(c.explained, 0);
  }
}

TEST(Diagnose, TopKLimitsOutput) {
  World w(74);
  ChainDiagnoser diag(w.model);
  const auto faults = collapsed_fault_list(w.nl);
  const ObservedResponse obs = diag.make_response(w.stimulus(), faults[0]);
  EXPECT_EQ(diag.diagnose(obs, faults, 3).size(), 3u);
  EXPECT_EQ(diag.diagnose(obs, faults, 0).size(), faults.size());
}

TEST(Diagnose, Figure2FaultLocalisedToLastSegment) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  const ScanModeModel model(lv, e.design);
  ChainDiagnoser diag(model);
  ScanSequenceBuilder sb(e.nl, e.design);
  // Alternating alone cannot see this fault; add a marker load.
  TestSequence seq = sb.alternating(24);
  std::vector<std::vector<Val>> marker = {{Val::One, Val::Zero, Val::Zero,
                                           Val::One, Val::Zero, Val::One}};
  const TestSequence load = sb.load_state(marker);
  seq.insert(seq.end(), load.begin(), load.end());
  for (int i = 0; i < 8; ++i) seq.push_back(sb.base_vector(Val::Zero));

  const Fault f = paper_figure2_fault(e.nl);
  const ObservedResponse obs = diag.make_response(seq, f);
  const auto faults = collapsed_fault_list(e.nl);
  const auto ranked = diag.diagnose(obs, faults, 5);
  ASSERT_FALSE(ranked.empty());
  EXPECT_GT(ranked.front().explained, 0) << "symptoms must exist";
  bool found = false;
  for (const auto& c : ranked) found |= (c.fault == f);
  EXPECT_TRUE(found) << "the real defect must rank in the top 5";
}

}  // namespace
}  // namespace fsct
