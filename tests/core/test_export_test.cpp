#include "core/test_export.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "core/classify.h"
#include "scan/scan_sequences.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct World {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  explicit World(std::uint64_t seed)
      : nl(make(seed)), design(run_tpi(nl)), lv(nl), model(lv, design) {}
  static Netlist make(std::uint64_t seed) {
    RandomCircuitSpec spec;
    spec.num_gates = 180;
    spec.num_ffs = 12;
    spec.num_pis = 6;
    spec.num_pos = 4;
    spec.seed = seed;
    return make_random_sequential(spec);
  }
  TestSequence stimulus() const {
    const ScanSequenceBuilder sb(nl, design);
    return sb.alternating(2 * model.max_chain_length() + 8);
  }
};

TEST(TestExport, ProgramRecordsGoodResponses) {
  World w(80);
  const TestProgram p = make_test_program(w.model, w.stimulus());
  EXPECT_EQ(p.circuit, w.nl.name());
  EXPECT_EQ(p.input_names.size(), w.nl.inputs().size());
  ASSERT_EQ(p.stimulus.size(), p.expected.size());
  // A healthy device must pass its own program.
  EXPECT_EQ(run_test_program(w.lv, p), 0u);
}

TEST(TestExport, RoundTripsThroughText) {
  World w(81);
  const TestProgram p = make_test_program(w.model, w.stimulus());
  const std::string text = write_test_program_string(p);
  const TestProgram q = read_test_program_string(text);
  EXPECT_EQ(q.circuit, p.circuit);
  EXPECT_EQ(q.input_names, p.input_names);
  EXPECT_EQ(q.observe_names, p.observe_names);
  EXPECT_EQ(q.stimulus, p.stimulus);
  EXPECT_EQ(q.expected, p.expected);
}

TEST(TestExport, FaultyDeviceFailsTheProgram) {
  World w(82);
  const TestProgram p = make_test_program(w.model, w.stimulus());
  ChainFaultClassifier cls(w.model);
  const auto faults = collapsed_fault_list(w.nl);
  int easy_checked = 0;
  for (const Fault& f : faults) {
    if (cls.classify(f).category != ChainFaultCategory::Easy) continue;
    EXPECT_GT(run_test_program(w.lv, p, &f), 0u) << fault_name(w.nl, f);
    if (++easy_checked >= 10) break;
  }
  EXPECT_GE(easy_checked, 3);
}

TEST(TestExport, BindReordersInputsByName) {
  World w(83);
  TestProgram p = make_test_program(w.model, w.stimulus());
  // Shuffle the input columns; binding must undo it.
  std::reverse(p.input_names.begin(), p.input_names.end());
  for (auto& row : p.stimulus) std::reverse(row.begin(), row.end());
  EXPECT_EQ(run_test_program(w.lv, p), 0u);
}

TEST(TestExport, BindRejectsUnknownNames) {
  World w(84);
  TestProgram p = make_test_program(w.model, w.stimulus());
  p.observe_names.push_back("ghost_net");
  for (auto& row : p.expected) row.push_back(Val::X);
  EXPECT_THROW(bind_test_program(w.nl, p), std::runtime_error);
}

TEST(TestExport, ParserRejectsMalformedInput) {
  EXPECT_THROW(read_test_program_string("nonsense"), std::runtime_error);
  EXPECT_THROW(read_test_program_string("FSCT-TEST 1\ncycles 1\n"),
               std::runtime_error);
  EXPECT_THROW(read_test_program_string(
                   "FSCT-TEST 1\ninputs a\nobserve y\ncycles 1\nv 01 | 0\n"),
               std::runtime_error);  // stimulus width mismatch
}

TEST(TestExport, CommentsAndBlankLinesIgnored) {
  World w(85);
  const TestProgram p = make_test_program(w.model, w.stimulus());
  std::string text = "# tester program\n\n" + write_test_program_string(p);
  const TestProgram q = read_test_program_string(text);
  EXPECT_EQ(q.stimulus, p.stimulus);
}

TEST(TestExport, Figure2ProgramFromPipelineVectors) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  const ScanModeModel model(lv, e.design);
  const ScanSequenceBuilder sb(e.nl, e.design);
  const TestProgram p = make_test_program(model, sb.alternating(20));
  EXPECT_EQ(run_test_program(lv, p), 0u);
  const Fault f{e.nl.find("a"), -1, true};  // category-1 chain fault
  EXPECT_GT(run_test_program(lv, p, &f), 0u);
}

}  // namespace
}  // namespace fsct
