#include "core/profile.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench_circuits/paper_examples.h"
#include "core/json.h"
#include "core/pipeline.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct Built {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  std::vector<Fault> faults;
  explicit Built(Netlist n)
      : nl(std::move(n)),
        design(run_tpi(nl)),
        lv(nl),
        model(lv, design),
        faults(collapsed_fault_list(nl)) {}
};

TEST(Profile, AttrContextNamesGatesLevelsAndReps) {
  Built b(small_pipeline());
  const AttrContext plain = make_attr_context(b.lv, b.faults, false);
  ASSERT_EQ(plain.fault_names.size(), b.faults.size());
  for (std::size_t i = 0; i < b.faults.size(); ++i) {
    EXPECT_EQ(plain.fault_names[i], fault_name(b.nl, b.faults[i]));
    EXPECT_EQ(plain.gate[i], static_cast<std::int32_t>(b.faults[i].node));
    EXPECT_EQ(plain.level[i],
              static_cast<std::int32_t>(b.lv.level(b.faults[i].node)));
    // Without dominance every fault represents itself.
    EXPECT_EQ(plain.rep[i], static_cast<std::int32_t>(i));
  }
  const AttrContext dom = make_attr_context(b.lv, b.faults, true);
  const DominanceInfo info = collapse_dominant(b.nl, b.faults);
  for (std::size_t i = 0; i < b.faults.size(); ++i) {
    EXPECT_EQ(dom.rep[i], static_cast<std::int32_t>(info.rep[i])) << i;
  }
}

// Builds a 4-fault synthetic ledger with a known ranking:
//   fault 2: most wall           -> rank 1
//   fault 0: no wall, 50 decisions -> rank 2
//   fault 3: no wall, 10 decisions -> rank 3
//   fault 1: cycles only           -> rank 4
void charge_synthetic(ObsRegistry& reg) {
  reg.request_attribution();
  reg.init_attribution(4);
  reg.charge(Attr::WallNanos, 2, 5000);
  reg.charge(Attr::PodemDecisions, 2, 1);
  reg.charge(Attr::PodemDecisions, 0, 50);
  reg.charge(Attr::PodemDecisions, 3, 10);
  reg.charge(Attr::SeqCycles, 1, 7);
  reg.charge(Attr::SeqSims, 1, 1);
}

AttrContext synthetic_ctx() {
  AttrContext ctx;
  ctx.fault_names = {"a s-a-0", "a s-a-1", "b/1 s-a-0", "c s-a-1"};
  ctx.rep = {0, 0, 2, 3};
  ctx.gate = {7, 7, 9, 11};  // faults 0 and 1 share a gate
  ctx.level = {1, 1, 2, 2};
  return ctx;
}

TEST(Profile, RanksFaultsAndRollsUpGatesAndLevels) {
  ObsRegistry reg;
  charge_synthetic(reg);
  const ProfileDoc doc = build_profile(reg, synthetic_ctx(), "tiny", 3);

  EXPECT_EQ(doc.circuit, "tiny");
  EXPECT_EQ(doc.faults, 4u);
  EXPECT_EQ(doc.active, 4u);
  ASSERT_EQ(doc.top.size(), 3u);  // top_k truncates the hotlist
  EXPECT_EQ(doc.top[0].id, 2u);   // wall dominates
  EXPECT_EQ(doc.top[1].id, 0u);   // then decisions
  EXPECT_EQ(doc.top[2].id, 3u);
  EXPECT_EQ(doc.top[0].name, "b/1 s-a-0");
  EXPECT_EQ(doc.top[0].gate, 9);
  EXPECT_EQ(doc.top[0].level, 2);

  // Gate 7 carries faults 0 and 1 merged; the gate name drops the s-a part.
  const ProfileAgg* g7 = nullptr;
  for (const ProfileAgg& g : doc.gates) {
    if (g.key == 7) g7 = &g;
  }
  ASSERT_NE(g7, nullptr);
  EXPECT_EQ(g7->faults, 2u);
  EXPECT_EQ(g7->name, "a");
  EXPECT_EQ(g7->work[static_cast<std::size_t>(Attr::PodemDecisions)], 50u);
  EXPECT_EQ(g7->work[static_cast<std::size_t>(Attr::SeqCycles)], 7u);

  ASSERT_EQ(doc.levels.size(), 2u);  // ascending by level
  EXPECT_EQ(doc.levels[0].key, 1);
  EXPECT_EQ(doc.levels[0].faults, 2u);
  EXPECT_EQ(doc.levels[1].key, 2);
  EXPECT_EQ(doc.levels[1].faults, 2u);
}

TEST(Profile, SpanTreeNestsByContainmentAndComputesSelf) {
  ObsRegistry reg;
  reg.enable_trace();
  {
    const ObsSpan root(&reg, "phase.outer");
    { const ObsSpan child(&reg, "inner"); }
    { const ObsSpan child(&reg, "inner"); }
  }
  const ProfileDoc doc = build_profile(reg, AttrContext{}, "spans", 0);
  const ProfilePhase* outer = nullptr;
  const ProfilePhase* inner = nullptr;
  for (const ProfilePhase& p : doc.phases) {
    if (p.path == "phase.outer") outer = &p;
    if (p.path == "phase.outer;inner") inner = &p;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);  // same-path spans merge
  EXPECT_GE(outer->total_us, inner->total_us);
  // Self excludes the children; both stay non-negative.
  EXPECT_GE(outer->self_us, 0.0);
  EXPECT_LE(outer->self_us, outer->total_us);
  EXPECT_DOUBLE_EQ(inner->self_us, inner->total_us);  // leaf
}

TEST(Profile, JsonRoundTripsThroughParser) {
  ObsRegistry reg;
  charge_synthetic(reg);
  const ProfileDoc doc = build_profile(reg, synthetic_ctx(), "tiny", 0);
  std::ostringstream os;
  write_profile_json(os, doc);
  const ProfileDoc back = parse_profile_json(os.str(), "p.json");
  EXPECT_EQ(back.circuit, doc.circuit);
  EXPECT_EQ(back.faults, doc.faults);
  EXPECT_EQ(back.active, doc.active);
  ASSERT_EQ(back.top.size(), doc.top.size());
  for (std::size_t i = 0; i < doc.top.size(); ++i) {
    EXPECT_EQ(back.top[i].id, doc.top[i].id);
    EXPECT_EQ(back.top[i].name, doc.top[i].name);
    EXPECT_EQ(back.top[i].rep, doc.top[i].rep);
    EXPECT_EQ(back.top[i].gate, doc.top[i].gate);
    EXPECT_EQ(back.top[i].level, doc.top[i].level);
    EXPECT_EQ(back.top[i].work, doc.top[i].work);
  }
  ASSERT_EQ(back.gates.size(), doc.gates.size());
  ASSERT_EQ(back.levels.size(), doc.levels.size());
  EXPECT_EQ(back.gates[0].work, doc.gates[0].work);
}

TEST(Profile, ParsesRunReportAttributionSection) {
  Built b(small_pipeline());
  ObsRegistry reg;
  reg.request_attribution();
  PipelineOptions opt;
  opt.jobs = 2;
  opt.obs = &reg;
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults, opt);
  const AttrContext ctx = make_attr_context(b.lv, b.faults, true);
  std::ostringstream os;
  reg.write_run_report(os, r, &ctx);
  const ProfileDoc doc = parse_profile_json(os.str(), "report.json");
  EXPECT_EQ(doc.faults, b.faults.size());
  EXPECT_GT(doc.active, 0u);
  ASSERT_FALSE(doc.top.empty());
  EXPECT_FALSE(doc.top[0].name.empty());
}

TEST(Profile, RejectsDisabledReportAndUnknownSchema) {
  Built b(small_pipeline());
  ObsRegistry reg;
  PipelineOptions opt;
  opt.obs = &reg;
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults, opt);
  std::ostringstream os;
  reg.write_run_report(os, r);  // attribution never requested
  EXPECT_THROW(parse_profile_json(os.str(), "r.json"), JsonParseError);
  EXPECT_THROW(parse_profile_json("{\"schema\": \"bogus-v9\"}", "b.json"),
               JsonParseError);
  EXPECT_THROW(parse_profile_json("[1, 2]", "a.json"), JsonParseError);
}

TEST(Profile, FoldedStacksAndTableRender) {
  ObsRegistry reg;
  reg.enable_trace();
  charge_synthetic(reg);
  {
    const ObsSpan root(&reg, "outer");
    const ObsSpan child(&reg, "inner");
  }
  const ProfileDoc doc = build_profile(reg, synthetic_ctx(), "tiny", 10);
  std::ostringstream folded;
  write_folded(folded, doc);
  // Each folded line is "path value"; only printable content, no JSON.
  for (char c : folded.str()) {
    EXPECT_TRUE(c == '\n' || c >= ' ') << static_cast<int>(c);
  }
  std::ostringstream table;
  print_profile(table, doc, 10);
  const std::string t = table.str();
  EXPECT_NE(t.find("hardest faults"), std::string::npos);
  EXPECT_NE(t.find("b/1 s-a-0"), std::string::npos);
  EXPECT_NE(t.find("hottest gates"), std::string::npos);
  EXPECT_NE(t.find("activity by level"), std::string::npos);
}

}  // namespace
}  // namespace fsct
